package mpq_test

import (
	"testing"

	"mpq"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: generate a workload, build the cloud model, optimize, inspect
// the Pareto plan set, and select a plan at run time.
func TestFacadeEndToEnd(t *testing.T) {
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables: 4, Params: 1, Shape: mpq.Chain, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := mpq.DefaultOptions()
	opts.Context = ctx
	res, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("empty Pareto plan set")
	}
	if res.Stats.Geometry.LPs == 0 || res.Stats.CreatedPlans == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	// Every kept plan joins all tables.
	for _, info := range res.Plans {
		if info.Plan.Set != schema.AllTables() {
			t.Errorf("plan %v does not join all tables", info.Plan)
		}
		if info.RR == nil {
			t.Errorf("plan %v missing relevance region", info.Plan)
		}
	}
	// Run-time plan selection at a concrete parameter value.
	algebra := mpq.NewPWLAlgebra(mpq.NewContext(), 2)
	front := res.ParetoFrontAt(algebra, mpq.Vector{0.3})
	if len(front) == 0 {
		t.Fatal("empty Pareto front at x=0.3")
	}
}

// TestFacadeStaticModel builds plan alternatives by hand using the cost
// constructors.
func TestFacadeStaticModel(t *testing.T) {
	space := mpq.Interval(0, 1)
	alts := []mpq.Alternative{
		{Op: "cheap", Cost: mpq.MultiCost(
			mpq.LinearCost(space, mpq.Vector{2}, 0),
			mpq.ConstantCost(space, 1),
		)},
		{Op: "fast", Cost: mpq.MultiCost(
			mpq.ConstantCost(space, 0.5),
			mpq.ConstantCost(space, 4),
		)},
	}
	schema := mpq.StaticSchema(1, []float64{0}, []float64{1})
	model := &mpq.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
	res, err := mpq.Optimize(schema, model, mpq.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 2 {
		t.Fatalf("plan set size = %d, want 2 (tradeoff plans)", len(res.Plans))
	}
}

// TestFacadeEnumerate cross-checks the exhaustive enumeration export.
func TestFacadeEnumerate(t *testing.T) {
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables: 3, Params: 1, Shape: mpq.Star, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	algebra := mpq.NewPWLAlgebra(ctx, 2)
	all := mpq.EnumerateAllPlans(schema, model, algebra, true)
	if len(all) == 0 {
		t.Fatal("no plans enumerated")
	}
	opts := mpq.DefaultOptions()
	res, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) > len(all) {
		t.Errorf("Pareto set (%d) larger than full plan space (%d)", len(res.Plans), len(all))
	}
}
