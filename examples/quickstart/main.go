// Quickstart: optimize a randomly generated chain query with one
// unspecified predicate selectivity and two cost metrics (execution
// time, monetary fees), then select plans at run time for a concrete
// selectivity.
package main

import (
	"fmt"
	"log"

	"mpq"
)

func main() {
	// A 4-table chain query; the predicate selectivity of T1 is a
	// parameter in [0.001, 1] unknown until run time.
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables: 4,
		Params: 1,
		Shape:  mpq.Chain,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query:")
	for _, t := range schema.Tables {
		pred := ""
		if t.Pred != nil {
			pred = fmt.Sprintf("  predicate on %s (selectivity = parameter x%d)", t.Pred.Column, t.Pred.ParamIndex+1)
		}
		fmt.Printf("  %s: %.0f rows%s\n", t.Name, t.Card, pred)
	}
	for _, e := range schema.Edges {
		fmt.Printf("  join T%d-T%d selectivity %.2g\n", e.A+1, e.B+1, e.Sel)
	}

	// Optimize once, before run time (Figure 2 of the paper).
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		log.Fatal(err)
	}
	opts := mpq.DefaultOptions()
	opts.Context = ctx
	result, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPareto plan set (%d plans, %d created, %d LPs, %v):\n",
		len(result.Plans), result.Stats.CreatedPlans, result.Stats.Geometry.LPs, result.Stats.Duration)
	algebra := mpq.NewPWLAlgebra(ctx, 2)
	for i, info := range result.Plans {
		c, _ := info.Cost.(*mpq.PWLMulti).Eval(mpq.Vector{0.5})
		fmt.Printf("  [%d] %v\n      time=%.3fs fees=$%.6f at x=0.5\n", i+1, info.Plan, c[0], c[1])
	}

	// Run time: the user reports selectivity 0.05 — print the Pareto
	// frontier they can choose from.
	for _, sel := range []float64{0.05, 0.9} {
		fmt.Printf("\nPareto frontier at selectivity %.2f:\n", sel)
		for _, info := range result.ParetoFrontAt(algebra, mpq.Vector{sel}) {
			c := algebra.Eval(info.Cost, mpq.Vector{sel})
			fmt.Printf("  time=%8.3fs  fees=$%.6f  %v\n", c[0], c[1], info.Plan)
		}
	}
}
