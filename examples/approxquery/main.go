// Approximate query processing (Scenario 2 of the paper): embedded SQL
// queries are optimized once at compile time; at run time a plan is
// selected based on the concrete parameter values AND a policy trading
// execution time against result precision (e.g. depending on system
// load or minimum precision requirements).
//
// This example implements a custom CostModel: every table can be
// scanned fully (no precision loss) or via a 10% sample (much faster,
// but lossy); losses accumulate over joins. The two cost metrics are
// execution time and precision loss; the optimizer keeps all plans
// realizing Pareto-optimal tradeoffs for some selectivity.
package main

import (
	"fmt"
	"log"

	"mpq"
)

// sampleModel is a custom cost model over a schema: metric 0 is
// execution time (seconds), metric 1 is precision loss in [0, 1].
type sampleModel struct {
	schema *mpq.Schema
	space  *mpq.Polytope
}

const (
	tupleCPUSec  = 1e-6
	sampleFrac   = 0.1
	sampleLoss   = 0.05 // precision loss contributed by one sampled scan
	fullScanName = "scan"
	sampleName   = "sample10"
	joinName     = "hash"
)

func (m *sampleModel) Space() *mpq.Polytope { return m.space }

func (m *sampleModel) MetricNames() []string { return []string{"time", "precision-loss"} }

func (m *sampleModel) ScanAlternatives(t mpq.TableID) []mpq.Alternative {
	card := m.schema.Tables[t].Card
	full := mpq.MultiCost(
		mpq.ConstantCost(m.space, card*tupleCPUSec*3),
		mpq.ConstantCost(m.space, 0),
	)
	sampled := mpq.MultiCost(
		mpq.ConstantCost(m.space, card*tupleCPUSec*3*sampleFrac),
		mpq.ConstantCost(m.space, sampleLoss),
	)
	return []mpq.Alternative{
		{Op: fullScanName, Cost: full},
		{Op: sampleName, Cost: sampled},
	}
}

func (m *sampleModel) JoinAlternatives(left, right mpq.TableSet) []mpq.Alternative {
	// Join step time proportional to the input cardinalities, which
	// depend linearly on the (single) parametric selectivity; the join
	// itself adds no precision loss.
	dim := m.schema.NumParams
	wTime := make(mpq.Vector, dim)
	base := 0.0
	for _, set := range []mpq.TableSet{left, right} {
		c := m.cardCoeffs(set)
		for i := 0; i < dim; i++ {
			wTime[i] += c.w[i] * tupleCPUSec
		}
		base += c.b * tupleCPUSec
	}
	cost := mpq.MultiCost(
		mpq.LinearCost(m.space, wTime, base),
		mpq.ConstantCost(m.space, 0),
	)
	return []mpq.Alternative{{Op: joinName, Cost: cost}}
}

// cardCoeffs returns the output cardinality of a table set as a linear
// function of the parameters (valid because at most one parametric
// predicate participates per set in this example's schema).
type coeffs struct {
	w mpq.Vector
	b float64
}

func (m *sampleModel) cardCoeffs(set mpq.TableSet) coeffs {
	prod := 1.0
	paramIdx := -1
	for _, t := range set.Tables() {
		tab := m.schema.Tables[t]
		prod *= tab.Card
		if tab.Pred != nil && tab.Pred.ParamIndex >= 0 {
			paramIdx = tab.Pred.ParamIndex
		}
	}
	for _, e := range m.schema.Edges {
		if set.Contains(e.A) && set.Contains(e.B) {
			prod *= e.Sel
		}
	}
	w := make(mpq.Vector, m.schema.NumParams)
	if paramIdx >= 0 {
		w[paramIdx] = prod
		return coeffs{w: w, b: 0}
	}
	return coeffs{w: w, b: prod}
}

func main() {
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables: 3,
		Params: 1,
		Shape:  mpq.Chain,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := &sampleModel{schema: schema, space: schema.ParameterSpace()}

	// Compile time: optimize the embedded query once.
	opts := mpq.DefaultOptions()
	result, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Embedded query compiled: %d Pareto plans stored.\n\n", len(result.Plans))

	// Run time: the selectivity is now known; apply two different
	// policies.
	algebra := mpq.NewPWLAlgebra(mpq.NewContext(), 2)
	x := mpq.Vector{0.4}
	front := result.ParetoFrontAt(algebra, x)
	fmt.Printf("Pareto tradeoffs at selectivity %.1f:\n", x[0])
	for _, info := range front {
		c := algebra.Eval(info.Cost, x)
		fmt.Printf("  time=%8.4fs  loss=%.3f  %v\n", c[0], c[1], info.Plan)
	}

	policies := []struct {
		name    string
		maxLoss float64
	}{
		{"exact results required (maxLoss = 0)", 0},
		{"dashboard mode (maxLoss = 0.10)", 0.10},
		{"exploratory mode (maxLoss = 0.30)", 0.30},
	}
	for _, pol := range policies {
		var best *mpq.PlanInfo
		var bestTime float64
		for _, info := range front {
			c := algebra.Eval(info.Cost, x)
			if c[1] <= pol.maxLoss+1e-12 && (best == nil || c[0] < bestTime) {
				best = info
				bestTime = c[0]
			}
		}
		if best == nil {
			fmt.Printf("\nPolicy %q: no feasible plan\n", pol.name)
			continue
		}
		fmt.Printf("\nPolicy %q selects:\n  %v (time %.4fs)\n", pol.name, best.Plan, bestTime)
	}
}
