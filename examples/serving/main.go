// Serving: the embedded-SQL workflow of examples/embeddedsql run as a
// long-lived service. A server owns the solver pool and the plan-set
// cache; concurrent clients prepare query templates (optimized once,
// persisted through the store format) and pick plans for concrete
// parameter values — the two halves of the paper's Figure 2 behind one
// API.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"mpq"
)

func main() {
	server := mpq.NewServer(mpq.ServeOptions{Workers: 4})
	defer server.Close()

	// Deployment time: prepare two query templates. The second Prepare
	// of a template is a cache hit.
	templates := []mpq.ServeTemplate{
		{Workload: mpq.WorkloadConfig{Tables: 4, Params: 1, Shape: mpq.Chain, Seed: 21}},
		{Workload: mpq.WorkloadConfig{Tables: 5, Params: 1, Shape: mpq.Star, Seed: 7}},
	}
	keys := make([]string, len(templates))
	for i, tpl := range templates {
		prep, err := server.Prepare(context.Background(), tpl)
		if err != nil {
			log.Fatal(err)
		}
		keys[i] = prep.Key
		fmt.Printf("prepared %s: %d plans in %v (cached=%v)\n",
			prep.Key[:8], prep.NumPlans, prep.Duration, prep.Cached)
	}
	again, err := server.Prepare(context.Background(), templates[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-prepared %s: cached=%v\n", again.Key[:8], again.Cached)

	// Run time: concurrent clients pick plans under different policies.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := mpq.Vector{0.2 + 0.3*float64(c)}
			res, err := server.Pick(context.Background(), mpq.PickRequest{
				Key:     keys[c%len(keys)],
				Point:   x,
				Policy:  mpq.PolicyWeightedSum,
				Weights: []float64{1, 10000}, // 1s worth 0.0001 USD
			})
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			choice := res.Choices[0]
			fmt.Printf("client %d at sel=%.1f: time=%.3fs fees=$%.6f  %v\n",
				c, x[0], choice.Cost[0], choice.Cost[1], choice.Plan)
		}(c)
	}
	wg.Wait()

	// The tradeoff frontier a user would be shown (Scenario 1).
	front, err := server.Pick(context.Background(), mpq.PickRequest{Key: keys[0], Point: mpq.Vector{0.6}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frontier at sel=0.6:")
	for _, c := range front.Choices {
		fmt.Printf("  time=%8.3fs fees=$%.6f  %v\n", c.Cost[0], c.Cost[1], c.Plan)
	}

	stats := server.Stats()
	fmt.Printf("server stats: prepares=%d hits=%d picks=%d cachedSets=%d LPs=%d\n",
		stats.Prepares, stats.PrepareHits, stats.Picks, stats.CachedPlanSets, stats.Geometry.LPs)
}
