// Cloud tradeoff (Scenario 1 of the paper): a Cloud provider serves a
// query template "SELECT * FROM ... WHERE P1 AND P2" whose predicates
// are specified by users at run time. All relevant query plans are
// precomputed once per template; when a user submits concrete
// predicates, the provider instantly shows the achievable tradeoffs
// between execution time and monetary fees (Figure 1 of the paper) and
// executes the plan matching the user's preference.
package main

import (
	"fmt"
	"log"
	"sort"

	"mpq"
)

func main() {
	// The template joins 4 large tables (a scientific data set, as in
	// Scenario 1); predicates on T1 and T2 are unspecified: their
	// selectivities are the two parameters. The table sizes make
	// parallelization worthwhile for unselective predicates, so genuine
	// time/fees tradeoffs appear.
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables:  4,
		Params:  2,
		Shape:   mpq.Star,
		Seed:    7,
		MinCard: 5e5,
		MaxCard: 2e7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Preprocessing the query template (computing all relevant plans)...")
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		log.Fatal(err)
	}
	opts := mpq.DefaultOptions()
	opts.Context = ctx
	result, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Template ready: %d relevant plans precomputed in %v (%d LPs solved).\n",
		len(result.Plans), result.Stats.Duration, result.Stats.Geometry.LPs)

	// Run time: two different users submit different predicates
	// (parameter points x1 and x2, as in Figure 1).
	algebra := mpq.NewPWLAlgebra(ctx, 2)
	users := []struct {
		name string
		x    mpq.Vector
	}{
		{"user A (selective predicates)", mpq.Vector{0.02, 0.05}},
		{"user B (unselective predicates)", mpq.Vector{0.8, 0.9}},
	}
	for _, u := range users {
		front := result.ParetoFrontAt(algebra, u.x)
		type choice struct {
			time, fees float64
			plan       *mpq.Plan
		}
		choices := make([]choice, 0, len(front))
		for _, info := range front {
			c := algebra.Eval(info.Cost, u.x)
			choices = append(choices, choice{c[0], c[1], info.Plan})
		}
		sort.Slice(choices, func(i, j int) bool { return choices[i].time < choices[j].time })
		fmt.Printf("\n%s at x=%v can trade time against fees:\n", u.name, u.x)
		for _, c := range choices {
			fmt.Printf("  time=%9.3fs  fees=$%.6f  %v\n", c.time, c.fees, c.plan)
		}
		// The user's preference: cheapest plan within a latency budget.
		budget := choices[len(choices)-1].time*0.5 + choices[0].time*0.5
		best := choices[0]
		for _, c := range choices {
			if c.time <= budget && c.fees < best.fees {
				best = c
			}
		}
		fmt.Printf("  -> picked for latency budget %.3fs: %v ($%.6f)\n", budget, best.plan, best.fees)
	}
}
