// Generic RRPA (Section 5 of the paper): the relevance region pruning
// algorithm is not tied to piecewise-linear cost functions. This example
// optimizes plan alternatives with genuinely nonlinear cost closures
// (quadratics and exponentials) using the grid-sampled cost algebra.
package main

import (
	"fmt"
	"log"
	"math"

	"mpq"
)

func main() {
	space := mpq.Interval(0, 1)
	lo, hi := mpq.Vector{0}, mpq.Vector{1}

	// Alternative plans for one query, with nonlinear vector-valued
	// cost functions (time, fees):
	alts := []mpq.Alternative{
		{Op: "indexed-nested-loops", Cost: mpq.SampledCost{F: func(x mpq.Vector) mpq.Vector {
			// Superlinear blowup with selectivity; cheap infrastructure.
			return mpq.Vector{5 * x[0] * x[0], 1}
		}}},
		{Op: "hash-join", Cost: mpq.SampledCost{F: func(x mpq.Vector) mpq.Vector {
			// Mild growth, medium fees.
			return mpq.Vector{0.8 + 0.5*x[0], 2}
		}}},
		{Op: "parallel-hash", Cost: mpq.SampledCost{F: func(x mpq.Vector) mpq.Vector {
			// Fast but saturating; expensive.
			return mpq.Vector{0.4 + 0.3*(1-math.Exp(-2*x[0])), 6}
		}}},
		{Op: "dominated-variant", Cost: mpq.SampledCost{F: func(x mpq.Vector) mpq.Vector {
			// Strictly worse than hash-join everywhere.
			return mpq.Vector{1.0 + 0.6*x[0], 3}
		}}},
	}

	algebra := mpq.NewSampledAlgebra(lo, hi, 32, 2)
	schema := mpq.StaticSchema(1, []float64{0}, []float64{1})
	model := &mpq.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
	opts := mpq.DefaultOptions()
	opts.Algebra = algebra
	result, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Kept %d of %d plans (generic RRPA over sampled nonlinear costs):\n",
		len(result.Plans), len(alts))
	for _, info := range result.Plans {
		fmt.Printf("  %v\n", info.Plan)
	}

	fmt.Println("\nPareto front across selectivities:")
	for _, sel := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		x := mpq.Vector{sel}
		fmt.Printf("  x=%.2f:", sel)
		for _, info := range result.ParetoFrontAt(algebra, x) {
			c := algebra.Eval(info.Cost, x)
			fmt.Printf("  %s(t=%.2f,$%.0f)", info.Plan.Op, c[0], c[1])
		}
		fmt.Println()
	}
}
