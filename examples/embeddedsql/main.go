// Embedded SQL (the classical parametric-optimization use case the
// paper builds on): a query inside an application is optimized once at
// deployment time; the Pareto plan set is serialized next to the
// application. At run time — for every execution — the stored set is
// loaded and a plan is selected for the current parameter values and
// preference policy, without invoking the optimizer.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mpq"
	"mpq/internal/selection"
	"mpq/internal/store"
)

func main() {
	// ---------- deployment time ----------
	schema, err := mpq.GenerateWorkload(mpq.WorkloadConfig{
		Tables:  4,
		Params:  1,
		Shape:   mpq.Chain,
		Seed:    21,
		MinCard: 1e5,
		MaxCard: 5e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := mpq.NewContext()
	model, err := mpq.NewCloudModel(schema, mpq.DefaultCloudConfig(), ctx)
	if err != nil {
		log.Fatal(err)
	}
	opts := mpq.DefaultOptions()
	opts.Context = ctx
	result, err := mpq.Optimize(schema, model, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Serialize the plan set (to a buffer here; a file in practice).
	var planFile bytes.Buffer
	if err := store.Save(&planFile, model.MetricNames(), model.Space(), result.Plans); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: optimized once (%v), stored %d plans in %d bytes\n",
		result.Stats.Duration, len(result.Plans), planFile.Len())

	// ---------- run time (every query execution) ----------
	ps, err := store.Load(&planFile)
	if err != nil {
		log.Fatal(err)
	}
	candidates := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		candidates[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}

	executions := []struct {
		selectivity float64
		policy      string
	}{
		{0.02, "deadline"},
		{0.6, "deadline"},
		{0.6, "cheapest"},
		{0.6, "weighted"},
	}
	for _, e := range executions {
		x := mpq.Vector{e.selectivity}
		var choice selection.Choice
		var err error
		switch e.policy {
		case "deadline":
			// Cheapest plan finishing within 2 seconds.
			choice, err = selection.MinimizeSubjectTo(candidates, x, 1,
				[]selection.Bound{{Metric: 0, Max: 2.0}})
			if err != nil {
				// Deadline infeasible: fall back to fastest plan.
				choice, err = selection.Lexicographic(candidates, x, []int{0, 1})
			}
		case "cheapest":
			choice, err = selection.Lexicographic(candidates, x, []int{1, 0})
		case "weighted":
			// One second is worth as much as 0.0001 USD.
			choice, err = selection.WeightedSum(candidates, x, []float64{1, 10000})
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexecute(sel=%.2f, policy=%s):\n  %v\n  time=%.3fs fees=$%.6f\n",
			e.selectivity, e.policy, choice.Plan, choice.Cost[0], choice.Cost[1])
	}

	// Show the user-facing frontier for one execution.
	fmt.Println("\nfrontier at sel=0.6:")
	for _, c := range selection.Frontier(candidates, mpq.Vector{0.6}) {
		fmt.Printf("  time=%8.3fs fees=$%.6f  %v\n", c.Cost[0], c.Cost[1], c.Plan)
	}
}
