// Command mpqlint runs the repo's invariant analyzers (determinism,
// context flow, atomic discipline, float-epsilon) over package
// patterns:
//
//	go run ./cmd/mpqlint ./...
//
// It is a go/analysis unitchecker: invoked with package patterns it
// re-executes itself through `go vet -vettool`, which drives the
// analyzers package-by-package with full type information and
// cross-package fact propagation, entirely offline. Invoked by the go
// tool (with a *.cfg file or a -flags/-V query) it acts as the vet
// tool directly.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"mpq/internal/analysis/atomicfield"
	"mpq/internal/analysis/ctxflow"
	"mpq/internal/analysis/determinism"
	"mpq/internal/analysis/floateq"
)

func main() {
	args := os.Args[1:]
	if vetToolMode(args) {
		unitchecker.Main( // never returns
			determinism.Analyzer,
			ctxflow.Analyzer,
			atomicfield.Analyzer,
			floateq.Analyzer,
		)
	}

	// Wrapper mode: re-exec through go vet with ourselves as the tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpqlint:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "mpqlint:", err)
		os.Exit(1)
	}
}

// vetToolMode reports whether the go tool is driving us as a vet tool:
// it passes -flags / -V=full queries or per-package *.cfg files, never
// bare package patterns.
func vetToolMode(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if strings.HasPrefix(args[0], "-") {
		return true
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
