// expolint validates Prometheus text-exposition scrapes with the
// repo's in-tree linter (internal/obs): HELP/TYPE pairing, label
// escaping, duplicate samples, counter naming, and cumulative
// histogram-bucket invariants.
//
//	expolint scrape.txt             # lint one scrape
//	expolint scrape1.txt scrape2.txt  # lint both, then check that no
//	                                  # counter regressed between them
//
// With two files, the first is treated as the earlier scrape: every
// counter, histogram bucket, and histogram _count present in both must
// be monotonically non-decreasing. Exit status 1 on any finding; the
// findings are printed one per line, prefixed with the file they came
// from. CI uses this to gate the live /metrics endpoint of a booted
// mpqserve.
package main

import (
	"fmt"
	"os"

	"mpq/internal/obs"
)

func main() {
	args := os.Args[1:]
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: expolint scrape.txt [later-scrape.txt]")
		os.Exit(2)
	}
	failed := false
	var parsed [][]*obs.Family
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expolint: %v\n", err)
			os.Exit(2)
		}
		fams, err := obs.ParseExposition(f)
		f.Close()
		if err != nil {
			fmt.Printf("%s: parse: %v\n", path, err)
			os.Exit(1)
		}
		for _, finding := range obs.Lint(fams) {
			fmt.Printf("%s: %v\n", path, finding)
			failed = true
		}
		parsed = append(parsed, fams)
	}
	if len(parsed) == 2 {
		for _, finding := range obs.CheckMonotonic(parsed[0], parsed[1]) {
			fmt.Printf("%s -> %s: %v\n", args[0], args[1], finding)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("expolint: %d file(s) clean\n", len(args))
}
