// mpqbench reproduces the experimental evaluation of the paper
// (Section 7): Figure 12's six panels (optimization time, number of
// created plans, number of solved linear programs; for chain and star
// queries with one and two parameters), plus the Section 1.1 result-set
// blow-up experiment and ablations of the Section 6.2 refinements.
//
// Usage:
//
//	mpqbench -experiment figure12 [-quick] [-reps 25] [-csv] [-json] [-workers N]
//	mpqbench -experiment figure12 -shapes chain,star,cycle,clique -params 1,2,3
//	mpqbench -experiment figure12 -quick -json -baseline BENCH_baseline.json
//	mpqbench -experiment figure12 -parallel clique:1:6,star:1:8
//	mpqbench -experiment figure12 -picks clique:2:6 [-pick-points 256]
//	mpqbench -experiment figure12 -epsilon 0,0.01,0.1 -epsilon-specs chain:1:8,star:1:7
//	mpqbench -experiment figure12 -anytime 0.5,0.1 -anytime-specs chain:1:8
//	mpqbench -experiment figure12 -cpuprofile cpu.out -memprofile mem.out
//	mpqbench -experiment pqblowup
//	mpqbench -experiment ablation [-tables 6]
//
// -picks is the pick-throughput mode: each listed plan set is prepared
// once, a point-location pick index is built over it, all four
// selection policies are verified byte-identical through the index and
// through the linear scan at random points, and both paths' per-pick
// latency is measured (reported as pick_cases in the JSON output).
//
// -epsilon runs the ε-approximation experiment over the -epsilon-specs
// plan sets: each spec is prepared exactly (the reference) and once per
// requested ε, the served ε frontier's max regret is certified against
// the exact frontier at random points, and the plan-set and LP savings
// are reported (epsilon_cases). Under -baseline, ε = 0 rows gate on
// exact counts and ε > 0 rows gate on the certified regret contract.
//
// -anytime walks the refinement ladder an anytime server (mpqserve
// -refine-ladder) walks over the -anytime-specs plan sets: each
// generation — coarsest first, down to the implicit exact ε = 0 step —
// is prepared and timed, and its regret is certified against the final
// exact generation (anytime_cases). Under -baseline, coarse rows gate
// on the per-step (1+ε) regret contract and the final exact row gates
// on exact counts, like the epsilon rows.
//
// With -baseline, the run is additionally diffed against the given
// snapshot (the CI regression gate): plan-count or LP-count drift
// beyond tolerance exits non-zero — for pick cases too — and time
// drift only warns.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the CPU
// profile covers the whole experiment; the heap profile is captured
// after the final collection), for digging into regressions the gate
// surfaces.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mpq/internal/baseline"
	"mpq/internal/bench"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/region"
	"mpq/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "figure12", "experiment to run: figure12, pqblowup, ablation")
		quick      = flag.Bool("quick", false, "reduced ranges and repetitions for a fast run")
		reps       = flag.Int("reps", 0, "random queries per data point (default: 25, quick: 5)")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON (per-case ns/op, LPs, plans, workers)")
		workers    = flag.Int("workers", 0, "optimizer worker count (0 = GOMAXPROCS, 1 = sequential)")
		seed       = flag.Int64("seed", 1, "base random seed")
		shapes     = flag.String("shapes", "chain,star", "comma-separated join graph shapes (chain,star,cycle,clique)")
		params     = flag.String("params", "1,2", "comma-separated parameter counts per curve")
		maxTables  = flag.Int("max-tables", 0, "cap on the table count of every curve (0 = per-shape defaults)")
		parallel   = flag.String("parallel", "", "parallel reference points shape:params:tables[,...], run at workers=GOMAXPROCS and reported as parallel_cases (not gated)")
		picks      = flag.String("picks", "", "pick-throughput specs shape:params:tables[,...]: prepare once, verify index = linear scan, measure per-pick latency (pick_cases, gated)")
		pickPoints = flag.Int("pick-points", 0, "random pick points per -picks spec (0 = 256)")
		fleetSpec  = flag.String("fleet", "", "fleet-serving specs shape:params:tables[,...]: N servers over one shared store, gate hit rate and fleet pick throughput (fleet_cases)")
		fleetSrv   = flag.Int("fleet-servers", 3, "fleet size for -fleet")
		fleetPts   = flag.Int("fleet-points", 0, "pick points per server per -fleet round (0 = 256)")
		epsilons   = flag.String("epsilon", "", "comma-separated ε approximation factors (e.g. 0,0.01,0.1): certify regret and measure plan/LP savings per -epsilon-specs plan set (epsilon_cases)")
		epsSpecs   = flag.String("epsilon-specs", "", "ε-experiment specs shape:params:tables[,...] (default: chain:1:8,star:1:7 when -epsilon is set)")
		epsPoints  = flag.Int("epsilon-points", 0, "random certification points per -epsilon plan set (0 = 256)")
		anytime    = flag.String("anytime", "", "descending refinement ladder (e.g. 0.5,0.1): walk each -anytime-specs plan set coarse-to-exact, certify per-step regret and measure per-step prepare cost (anytime_cases)")
		anySpecs   = flag.String("anytime-specs", "", "anytime-experiment specs shape:params:tables[,...] (default: chain:1:8,star:1:7 when -anytime is set)")
		anyPoints  = flag.Int("anytime-points", 0, "random certification points per -anytime plan set (0 = 256)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after final GC) to this file")
		maxChain1  = flag.Int("max-chain-1p", 12, "max tables for chain, 1 parameter")
		maxStar1   = flag.Int("max-star-1p", 12, "max tables for star, 1 parameter")
		maxChain2  = flag.Int("max-chain-2p", 10, "max tables for chain, 2 parameters")
		maxStar2   = flag.Int("max-star-2p", 10, "max tables for star, 2 parameters")
		tables     = flag.Int("tables", 6, "query size for the ablation experiment")
		baseline   = flag.String("baseline", "", "JSON snapshot to diff against (CI regression gate)")
		planTol    = flag.Float64("plan-tol", bench.DefaultCompareOptions().PlanTol, "relative plan-count drift tolerance (failure beyond it)")
		lpTol      = flag.Float64("lp-tol", bench.DefaultCompareOptions().LPTol, "relative LP-count drift tolerance (failure beyond it)")
		timeTol    = flag.Float64("time-tol", bench.DefaultCompareOptions().TimeTol, "relative time drift tolerance (warning only)")
	)
	flag.Parse()

	finishProfiles := startProfiles(*cpuProfile, *memProfile)
	ok := true
	switch *experiment {
	case "figure12":
		ok = runFigure12(figure12Config{
			quick: *quick, reps: *reps, csv: *csv, json: *jsonOut,
			seed: *seed, workers: *workers,
			shapes: *shapes, params: *params, maxTables: *maxTables,
			parallel: *parallel,
			picks:    *picks, pickPoints: *pickPoints,
			fleet: *fleetSpec, fleetServers: *fleetSrv, fleetPoints: *fleetPts,
			epsilons: *epsilons, epsilonSpecs: *epsSpecs, epsilonPoints: *epsPoints,
			anytime: *anytime, anytimeSpecs: *anySpecs, anytimePoints: *anyPoints,
			maxChain1: *maxChain1, maxStar1: *maxStar1,
			maxChain2: *maxChain2, maxStar2: *maxStar2,
			baseline: *baseline,
			compare:  bench.CompareOptions{PlanTol: *planTol, LPTol: *lpTol, TimeTol: *timeTol},
		})
	case "pqblowup":
		runPQBlowup()
	case "ablation":
		runAblation(*tables, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	finishProfiles()
	if !ok {
		os.Exit(1)
	}
}

// startProfiles begins the requested pprof captures and returns the
// finalizer that stops the CPU profile and writes the heap profile
// after a final collection. Error paths that os.Exit before the
// finalizer runs lose the profiles — a profile of a failed run would
// mostly profile the failure.
func startProfiles(cpu, mem string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "error: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cpu)
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(2)
			}
			runtime.GC() // materialize the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "error: -memprofile: %v\n", err)
				os.Exit(2)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", mem)
		}
	}
}

// figure12Config bundles the flags of the figure12 experiment.
type figure12Config struct {
	quick, csv, json                         bool
	reps, workers                            int
	seed                                     int64
	shapes, params                           string
	maxTables                                int
	parallel                                 string
	picks                                    string
	pickPoints                               int
	fleet                                    string
	fleetServers, fleetPoints                int
	epsilons, epsilonSpecs                   string
	epsilonPoints                            int
	anytime, anytimeSpecs                    string
	anytimePoints                            int
	maxChain1, maxStar1, maxChain2, maxStar2 int
	baseline                                 string
	compare                                  bench.CompareOptions
}

// curve is one Figure 12 series to measure.
type curve struct {
	shape  workload.Shape
	params int
	max    int
}

// maxFor resolves the curve length for a shape/parameter combination:
// the legacy per-curve flags for the four paper curves, the package
// defaults (quick-reduced with -quick) for the extension shapes and
// parameter counts, and the global -max-tables cap on top.
func (cfg figure12Config) maxFor(shape workload.Shape, params int) int {
	m := bench.DefaultMaxTables(shape, params)
	if cfg.quick {
		if q := bench.QuickMaxTables(shape, params); q < m {
			m = q
		}
	}
	switch {
	case shape == workload.Chain && params == 1:
		m = cfg.maxChain1
	case shape == workload.Star && params == 1:
		m = cfg.maxStar1
	case shape == workload.Chain && params == 2:
		m = cfg.maxChain2
	case shape == workload.Star && params == 2:
		m = cfg.maxStar2
	}
	if cfg.maxTables > 0 && m > cfg.maxTables {
		m = cfg.maxTables
	}
	return m
}

// buildCurves expands the -shapes and -params lists into the curve set.
func buildCurves(cfg figure12Config) ([]curve, error) {
	var shapes []workload.Shape
	for _, name := range strings.Split(cfg.shapes, ",") {
		s, err := workload.ParseShape(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		shapes = append(shapes, s)
	}
	var paramCounts []int
	for _, p := range strings.Split(cfg.params, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -params entry %q", p)
		}
		paramCounts = append(paramCounts, n)
	}
	var curves []curve
	for _, s := range shapes {
		for _, p := range paramCounts {
			curves = append(curves, curve{shape: s, params: p, max: cfg.maxFor(s, p)})
		}
	}
	return curves, nil
}

// parseSpecList parses a shape:params:tables list (the -parallel and
// -picks formats); flagName labels errors. An empty spec is valid and
// yields no points.
func parseSpecList(spec, flagName string) ([]curve, error) {
	if spec == "" {
		return nil, nil
	}
	var points []curve
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("invalid %s entry %q (want shape:params:tables)", flagName, item)
		}
		s, err := workload.ParseShape(parts[0])
		if err != nil {
			return nil, err
		}
		p, err1 := strconv.Atoi(parts[1])
		n, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || p < 1 || n < 2 {
			return nil, fmt.Errorf("invalid %s entry %q", flagName, item)
		}
		if s == workload.Cycle && n < 3 {
			return nil, fmt.Errorf("invalid %s entry %q: a cycle needs at least 3 tables", flagName, item)
		}
		points = append(points, curve{shape: s, params: p, max: n})
	}
	return points, nil
}

// runFigure12 executes the figure12 experiment and its optional
// sub-experiments; it returns false when the baseline gate fails (hard
// errors still exit directly).
func runFigure12(cfg figure12Config) bool {
	if cfg.reps == 0 {
		if cfg.quick {
			cfg.reps = 5
		} else {
			cfg.reps = 25
		}
	}
	if cfg.quick {
		if cfg.maxChain1 > 10 {
			cfg.maxChain1 = 10
		}
		if cfg.maxStar1 > 9 {
			cfg.maxStar1 = 9
		}
		if cfg.maxChain2 > 7 {
			cfg.maxChain2 = 7
		}
		if cfg.maxStar2 > 6 {
			cfg.maxStar2 = 6
		}
	}
	curves, err := buildCurves(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	// Validate the -parallel and -picks specs up front: a typo must
	// fail in milliseconds, not after the sequential sweep.
	parallelPoints, err := parseSpecList(cfg.parallel, "-parallel")
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	pickSpecs, err := parseSpecList(cfg.picks, "-picks")
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	fleetSpecs, err := parseSpecList(cfg.fleet, "-fleet")
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	epsList, epsilonSpecs, err := parseEpsilonFlags(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	ladder, anytimeSpecs, err := parseAnytimeFlags(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	var series []*bench.Series
	start := time.Now()
	for _, c := range curves {
		s, err := bench.RunSeries(bench.Config{
			Shape:       c.shape,
			Params:      c.params,
			MinTables:   2,
			MaxTables:   c.max,
			Repetitions: cfg.reps,
			Seed:        cfg.seed,
			Workers:     cfg.workers,
			Progress:    os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		series = append(series, s)
	}
	rep := bench.BuildJSONReport(series)
	rep.NumCPU = runtime.NumCPU()
	rep.ParallelCases = runParallelPoints(cfg, parallelPoints)
	rep.PickCases = runPickSpecs(cfg, pickSpecs)
	rep.FleetCases = runFleetSpecs(cfg, fleetSpecs)
	rep.EpsilonCases = runEpsilonSpecs(cfg, epsilonSpecs, epsList)
	rep.AnytimeCases = runAnytimeSpecs(cfg, anytimeSpecs, ladder)
	fmt.Fprintf(os.Stderr, "total experiment time: %v\n", time.Since(start))
	switch {
	case cfg.json:
		if err := bench.WriteJSONReport(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	case cfg.csv:
		bench.FormatCSV(os.Stdout, series)
	default:
		bench.FormatTable(os.Stdout, series)
	}
	if cfg.baseline != "" {
		return compareAgainstBaseline(cfg, rep)
	}
	return true
}

// parseEpsilonFlags expands -epsilon and -epsilon-specs. An empty
// -epsilon disables the experiment; a set -epsilon with no explicit
// specs measures a small default pair of plan sets.
func parseEpsilonFlags(cfg figure12Config) ([]float64, []curve, error) {
	if cfg.epsilons == "" {
		if cfg.epsilonSpecs != "" {
			return nil, nil, fmt.Errorf("-epsilon-specs requires -epsilon")
		}
		return nil, nil, nil
	}
	var eps []float64
	for _, item := range strings.Split(cfg.epsilons, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(item), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, nil, fmt.Errorf("invalid -epsilon entry %q (want a float in [0, 1))", item)
		}
		eps = append(eps, v)
	}
	specStr := cfg.epsilonSpecs
	if specStr == "" {
		specStr = "chain:1:8,star:1:7"
	}
	specs, err := parseSpecList(specStr, "-epsilon-specs")
	if err != nil {
		return nil, nil, err
	}
	return eps, specs, nil
}

// parseAnytimeFlags expands -anytime and -anytime-specs. An empty
// -anytime disables the experiment. The ladder itself is validated by
// bench.RunAnytime (descending, [0, 1), final exact step appended).
func parseAnytimeFlags(cfg figure12Config) ([]float64, []curve, error) {
	if cfg.anytime == "" {
		if cfg.anytimeSpecs != "" {
			return nil, nil, fmt.Errorf("-anytime-specs requires -anytime")
		}
		return nil, nil, nil
	}
	var ladder []float64
	for _, item := range strings.Split(cfg.anytime, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(item), 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, nil, fmt.Errorf("invalid -anytime entry %q (want a float in [0, 1))", item)
		}
		ladder = append(ladder, v)
	}
	specStr := cfg.anytimeSpecs
	if specStr == "" {
		specStr = "chain:1:8,star:1:7"
	}
	specs, err := parseSpecList(specStr, "-anytime-specs")
	if err != nil {
		return nil, nil, err
	}
	return ladder, specs, nil
}

// runAnytimeSpecs executes the -anytime experiment: walk the
// refinement ladder coarse-to-exact per spec, certifying each
// generation's regret against the final exact one and measuring what
// each step costs to prepare.
func runAnytimeSpecs(cfg figure12Config, specs []curve, ladder []float64) []bench.JSONCase {
	if len(specs) == 0 || len(ladder) == 0 {
		return nil
	}
	acfg := bench.AnytimeConfig{
		Ladder:   ladder,
		Points:   cfg.anytimePoints,
		Seed:     cfg.seed,
		Progress: os.Stderr,
	}
	for _, c := range specs {
		acfg.Specs = append(acfg.Specs, bench.PickSpec{Shape: c.shape, Params: c.params, Tables: c.max})
	}
	ms, err := bench.RunAnytime(acfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	return bench.AnytimeMeasurementCases(ms)
}

// runEpsilonSpecs executes the -epsilon experiment: certify each
// tier's max regret against the exact frontier and measure the plan-set
// and LP savings the approximation factor bought.
func runEpsilonSpecs(cfg figure12Config, specs []curve, epsilons []float64) []bench.JSONCase {
	if len(specs) == 0 || len(epsilons) == 0 {
		return nil
	}
	ecfg := bench.EpsilonConfig{
		Epsilons: epsilons,
		Points:   cfg.epsilonPoints,
		Seed:     cfg.seed,
		Progress: os.Stderr,
	}
	for _, c := range specs {
		ecfg.Specs = append(ecfg.Specs, bench.PickSpec{Shape: c.shape, Params: c.params, Tables: c.max})
	}
	ms, err := bench.RunEpsilon(ecfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	return bench.EpsilonMeasurementCases(ms)
}

// runPickSpecs executes the -picks pick-throughput mode: prepare each
// spec once, verify index and linear-scan results are byte-identical
// across all four selection policies, and measure per-pick latency on
// both paths.
func runPickSpecs(cfg figure12Config, specs []curve) []bench.JSONCase {
	if len(specs) == 0 {
		return nil
	}
	pcfg := bench.PicksConfig{
		Points:   cfg.pickPoints,
		Seed:     cfg.seed,
		Progress: os.Stderr,
	}
	for _, c := range specs {
		pcfg.Specs = append(pcfg.Specs, bench.PickSpec{Shape: c.shape, Params: c.params, Tables: c.max})
	}
	ms, err := bench.RunPicks(pcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	return bench.PickMeasurementCases(ms)
}

// runFleetSpecs executes the -fleet fleet-serving mode: N in-process
// servers over one shared on-disk store; the hit-rate floor (≥ (N−1)/N
// of Prepares served from the store) is enforced by the run itself,
// and the resulting cases are gated against the baseline.
func runFleetSpecs(cfg figure12Config, specs []curve) []bench.JSONCase {
	if len(specs) == 0 {
		return nil
	}
	fcfg := bench.FleetConfig{
		Servers:  cfg.fleetServers,
		Points:   cfg.fleetPoints,
		Seed:     cfg.seed,
		Progress: os.Stderr,
	}
	for _, c := range specs {
		fcfg.Specs = append(fcfg.Specs, bench.PickSpec{Shape: c.shape, Params: c.params, Tables: c.max})
	}
	ms, err := bench.RunFleet(context.Background(), fcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	return bench.FleetMeasurementCases(ms)
}

// runParallelPoints measures the -parallel reference points at the
// pipelined scheduler's full parallelism (workers = GOMAXPROCS).
func runParallelPoints(cfg figure12Config, points []curve) []bench.JSONCase {
	var cases []bench.JSONCase
	for _, c := range points {
		p, err := bench.RunPoint(bench.Config{
			Shape:       c.shape,
			Params:      c.params,
			Repetitions: cfg.reps,
			Seed:        cfg.seed,
			// Workers 0 keeps the optimizer default: GOMAXPROCS.
		}, c.max)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		jc := bench.PointCase(c.shape, c.params, p, "parallel/")
		// Parallel wall-clock is only meaningful relative to the
		// machine's core count; record it with the case.
		jc.NumCPU = runtime.NumCPU()
		cases = append(cases, jc)
		fmt.Fprintf(os.Stderr, "parallel %s-%dp n=%-2d workers=%d time=%v plans=%d LPs=%d\n",
			c.shape, c.params, c.max, p.Workers, p.MedianTime, p.MedianPlans, p.MedianLPs)
	}
	return cases
}

// compareAgainstBaseline diffs the measured report (Figure 12 cases
// and pick cases) against the snapshot, printing drifts to stderr.
// Returns false when the gate fails.
func compareAgainstBaseline(cfg figure12Config, rep *bench.JSONReport) bool {
	f, err := os.Open(cfg.baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	defer f.Close()
	base, err := bench.LoadJSONReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	failures, warnings := bench.Compare(base, rep, cfg.compare)
	for _, d := range warnings {
		fmt.Fprintln(os.Stderr, d)
	}
	for _, d := range failures {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "bench regression gate: %d failure(s) against %s\n", len(failures), cfg.baseline)
		return false
	}
	fmt.Fprintf(os.Stderr, "bench regression gate: OK against %s (%d cases, %d warning(s))\n",
		cfg.baseline, len(base.Cases)+len(base.PickCases), len(warnings))
	return true
}

// runPQBlowup demonstrates the Section 1.1 argument: encoding a cost
// metric as a parameter makes the PQ result set larger than the MPQ
// result set by an arbitrary factor.
func runPQBlowup() {
	fmt.Println("Result-set sizes when encoding the fee metric as a parameter (Section 1.1):")
	fmt.Printf("%-12s %-12s %-16s %s\n", "plans (k)", "MPQ result", "PQ-encoded", "blow-up")
	for _, k := range []int{10, 20, 50, 100, 200} {
		mStar := 5
		alts, space := baseline.BlowupInstance(k, mStar)
		schema := core.StaticSchema(1, []float64{0}, []float64{1})
		model := &core.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
		res, err := core.Optimize(schema, model, core.DefaultOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
		pqSize := baseline.PQEncodedSetSize(alts, algebra, geometry.Vector{0.5})
		fmt.Printf("%-12d %-12d %-16d %.1fx\n", k, len(res.Plans), pqSize, float64(pqSize)/float64(len(res.Plans)))
	}
}

// runAblation measures the Section 6.2 refinements: relevance points,
// redundant-cutout elimination, and the emptiness strategy.
func runAblation(tables int, seed int64) {
	type variant struct {
		name string
		opts core.Options
	}
	mk := func(strategy region.EmptinessStrategy, points int, elim bool) core.Options {
		return core.Options{
			Region: region.Options{
				Strategy:                  strategy,
				RelevancePoints:           points,
				EliminateRedundantCutouts: elim,
			},
			PostponeCartesian: true,
		}
	}
	variants := []variant{
		{"all refinements (bemporad)", mk(region.StrategyBemporad, 16, true)},
		{"all refinements (coverdiff)", mk(region.StrategyCoverDiff, 16, true)},
		{"no relevance points", mk(region.StrategyBemporad, 0, true)},
		{"no cutout elimination", mk(region.StrategyBemporad, 16, false)},
		{"no refinements", mk(region.StrategyBemporad, 0, false)},
		{"no cartesian postponement", func() core.Options {
			o := mk(region.StrategyBemporad, 16, true)
			o.PostponeCartesian = false
			return o
		}()},
	}
	fmt.Printf("Ablation on chain queries, %d tables, 1 parameter (medians of 5):\n", tables)
	fmt.Printf("%-30s %-14s %-14s %-12s\n", "variant", "time(ms)", "LPs", "plans")
	for _, v := range variants {
		opts := v.opts
		cfg := bench.Config{
			Shape:       workload.Chain,
			Params:      1,
			Repetitions: 5,
			Seed:        seed,
			Options:     &opts,
		}
		p, err := bench.RunPoint(cfg, tables)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-30s %-14.1f %-14d %-12d\n", v.name,
			float64(p.MedianTime.Microseconds())/1000, p.MedianLPs, p.MedianPlans)
	}
	_ = cloud.DefaultConfig()
}
