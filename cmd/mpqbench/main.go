// mpqbench reproduces the experimental evaluation of the paper
// (Section 7): Figure 12's six panels (optimization time, number of
// created plans, number of solved linear programs; for chain and star
// queries with one and two parameters), plus the Section 1.1 result-set
// blow-up experiment and ablations of the Section 6.2 refinements.
//
// Usage:
//
//	mpqbench -experiment figure12 [-quick] [-reps 25] [-csv] [-json] [-workers N]
//	mpqbench -experiment figure12 -quick -json -baseline BENCH_baseline.json
//	mpqbench -experiment pqblowup
//	mpqbench -experiment ablation [-tables 6]
//
// With -baseline, the run is additionally diffed against the given
// snapshot (the CI regression gate): plan-count or LP-count drift
// beyond tolerance exits non-zero, time drift only warns.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpq/internal/baseline"
	"mpq/internal/bench"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/region"
	"mpq/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "figure12", "experiment to run: figure12, pqblowup, ablation")
		quick      = flag.Bool("quick", false, "reduced ranges and repetitions for a fast run")
		reps       = flag.Int("reps", 0, "random queries per data point (default: 25, quick: 5)")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON (per-case ns/op, LPs, plans, workers)")
		workers    = flag.Int("workers", 0, "optimizer worker count (0 = GOMAXPROCS, 1 = sequential)")
		seed       = flag.Int64("seed", 1, "base random seed")
		maxChain1  = flag.Int("max-chain-1p", 12, "max tables for chain, 1 parameter")
		maxStar1   = flag.Int("max-star-1p", 12, "max tables for star, 1 parameter")
		maxChain2  = flag.Int("max-chain-2p", 10, "max tables for chain, 2 parameters")
		maxStar2   = flag.Int("max-star-2p", 10, "max tables for star, 2 parameters")
		tables     = flag.Int("tables", 6, "query size for the ablation experiment")
		baseline   = flag.String("baseline", "", "JSON snapshot to diff against (CI regression gate)")
		planTol    = flag.Float64("plan-tol", bench.DefaultCompareOptions().PlanTol, "relative plan-count drift tolerance (failure beyond it)")
		lpTol      = flag.Float64("lp-tol", bench.DefaultCompareOptions().LPTol, "relative LP-count drift tolerance (failure beyond it)")
		timeTol    = flag.Float64("time-tol", bench.DefaultCompareOptions().TimeTol, "relative time drift tolerance (warning only)")
	)
	flag.Parse()

	switch *experiment {
	case "figure12":
		runFigure12(figure12Config{
			quick: *quick, reps: *reps, csv: *csv, json: *jsonOut,
			seed: *seed, workers: *workers,
			maxChain1: *maxChain1, maxStar1: *maxStar1,
			maxChain2: *maxChain2, maxStar2: *maxStar2,
			baseline: *baseline,
			compare:  bench.CompareOptions{PlanTol: *planTol, LPTol: *lpTol, TimeTol: *timeTol},
		})
	case "pqblowup":
		runPQBlowup()
	case "ablation":
		runAblation(*tables, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// figure12Config bundles the flags of the figure12 experiment.
type figure12Config struct {
	quick, csv, json                         bool
	reps, workers                            int
	seed                                     int64
	maxChain1, maxStar1, maxChain2, maxStar2 int
	baseline                                 string
	compare                                  bench.CompareOptions
}

func runFigure12(cfg figure12Config) {
	if cfg.reps == 0 {
		if cfg.quick {
			cfg.reps = 5
		} else {
			cfg.reps = 25
		}
	}
	if cfg.quick {
		if cfg.maxChain1 > 10 {
			cfg.maxChain1 = 10
		}
		if cfg.maxStar1 > 9 {
			cfg.maxStar1 = 9
		}
		if cfg.maxChain2 > 7 {
			cfg.maxChain2 = 7
		}
		if cfg.maxStar2 > 6 {
			cfg.maxStar2 = 6
		}
	}
	type curve struct {
		shape  workload.Shape
		params int
		max    int
	}
	curves := []curve{
		{workload.Chain, 1, cfg.maxChain1},
		{workload.Chain, 2, cfg.maxChain2},
		{workload.Star, 1, cfg.maxStar1},
		{workload.Star, 2, cfg.maxStar2},
	}
	var series []*bench.Series
	start := time.Now()
	for _, c := range curves {
		s, err := bench.RunSeries(bench.Config{
			Shape:       c.shape,
			Params:      c.params,
			MinTables:   2,
			MaxTables:   c.max,
			Repetitions: cfg.reps,
			Seed:        cfg.seed,
			Workers:     cfg.workers,
			Progress:    os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		series = append(series, s)
	}
	fmt.Fprintf(os.Stderr, "total experiment time: %v\n", time.Since(start))
	switch {
	case cfg.json:
		if err := bench.FormatJSON(os.Stdout, series); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	case cfg.csv:
		bench.FormatCSV(os.Stdout, series)
	default:
		bench.FormatTable(os.Stdout, series)
	}
	if cfg.baseline != "" {
		if !compareAgainstBaseline(cfg, series) {
			os.Exit(1)
		}
	}
}

// compareAgainstBaseline diffs the measured series against the
// snapshot, printing drifts to stderr. Returns false when the gate
// fails.
func compareAgainstBaseline(cfg figure12Config, series []*bench.Series) bool {
	f, err := os.Open(cfg.baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	defer f.Close()
	base, err := bench.LoadJSONReport(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	failures, warnings := bench.Compare(base, bench.BuildJSONReport(series), cfg.compare)
	for _, d := range warnings {
		fmt.Fprintln(os.Stderr, d)
	}
	for _, d := range failures {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "bench regression gate: %d failure(s) against %s\n", len(failures), cfg.baseline)
		return false
	}
	fmt.Fprintf(os.Stderr, "bench regression gate: OK against %s (%d cases, %d warning(s))\n",
		cfg.baseline, len(base.Cases), len(warnings))
	return true
}

// runPQBlowup demonstrates the Section 1.1 argument: encoding a cost
// metric as a parameter makes the PQ result set larger than the MPQ
// result set by an arbitrary factor.
func runPQBlowup() {
	fmt.Println("Result-set sizes when encoding the fee metric as a parameter (Section 1.1):")
	fmt.Printf("%-12s %-12s %-16s %s\n", "plans (k)", "MPQ result", "PQ-encoded", "blow-up")
	for _, k := range []int{10, 20, 50, 100, 200} {
		mStar := 5
		alts, space := baseline.BlowupInstance(k, mStar)
		schema := core.StaticSchema(1, []float64{0}, []float64{1})
		model := &core.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
		res, err := core.Optimize(schema, model, core.DefaultOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
		pqSize := baseline.PQEncodedSetSize(alts, algebra, geometry.Vector{0.5})
		fmt.Printf("%-12d %-12d %-16d %.1fx\n", k, len(res.Plans), pqSize, float64(pqSize)/float64(len(res.Plans)))
	}
}

// runAblation measures the Section 6.2 refinements: relevance points,
// redundant-cutout elimination, and the emptiness strategy.
func runAblation(tables int, seed int64) {
	type variant struct {
		name string
		opts core.Options
	}
	mk := func(strategy region.EmptinessStrategy, points int, elim bool) core.Options {
		return core.Options{
			Region: region.Options{
				Strategy:                  strategy,
				RelevancePoints:           points,
				EliminateRedundantCutouts: elim,
			},
			PostponeCartesian: true,
		}
	}
	variants := []variant{
		{"all refinements (bemporad)", mk(region.StrategyBemporad, 16, true)},
		{"all refinements (coverdiff)", mk(region.StrategyCoverDiff, 16, true)},
		{"no relevance points", mk(region.StrategyBemporad, 0, true)},
		{"no cutout elimination", mk(region.StrategyBemporad, 16, false)},
		{"no refinements", mk(region.StrategyBemporad, 0, false)},
		{"no cartesian postponement", func() core.Options {
			o := mk(region.StrategyBemporad, 16, true)
			o.PostponeCartesian = false
			return o
		}()},
	}
	fmt.Printf("Ablation on chain queries, %d tables, 1 parameter (medians of 5):\n", tables)
	fmt.Printf("%-30s %-14s %-14s %-12s\n", "variant", "time(ms)", "LPs", "plans")
	for _, v := range variants {
		opts := v.opts
		cfg := bench.Config{
			Shape:       workload.Chain,
			Params:      1,
			Repetitions: 5,
			Seed:        seed,
			Options:     &opts,
		}
		p, err := bench.RunPoint(cfg, tables)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-30s %-14.1f %-14d %-12d\n", v.name,
			float64(p.MedianTime.Microseconds())/1000, p.MedianLPs, p.MedianPlans)
	}
	_ = cloud.DefaultConfig()
}
