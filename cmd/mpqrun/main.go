// mpqrun optimizes a single randomly generated query and explains the
// resulting Pareto plan set: plans, their costs at a chosen parameter
// point, and their relevance regions.
//
// Usage:
//
//	mpqrun -tables 5 -params 1 -shape chain -seed 3 -x 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/diagram"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/workload"
)

func main() {
	var (
		tables      = flag.Int("tables", 5, "number of tables")
		params      = flag.Int("params", 1, "number of parameters")
		shapeName   = flag.String("shape", "chain", "join graph shape: chain, star, cycle, clique")
		seed        = flag.Int64("seed", 1, "random seed")
		xFlag       = flag.String("x", "", "comma-separated parameter values for run-time plan selection")
		explain     = flag.Bool("explain", false, "print full operator trees")
		showDiagram = flag.Bool("diagram", false, "render Pareto-front-size and winner plan diagrams")
	)
	flag.Parse()

	shape, err := workload.ParseShape(*shapeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	schema, err := workload.Generate(workload.Config{
		Tables: *tables, Params: *params, Shape: shape, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("query: %d tables, %s join graph, %d parameter(s), seed %d\n",
		*tables, shape, *params, *seed)
	for _, t := range schema.Tables {
		pred := ""
		if t.Pred != nil {
			pred = fmt.Sprintf(" pred(x%d)", t.Pred.ParamIndex+1)
		}
		fmt.Printf("  %-4s %10.0f rows%s\n", t.Name, t.Card, pred)
	}

	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := res.Stats
	fmt.Printf("\noptimized in %v: %d plans created, %d pruned, %d kept, %d LPs solved\n",
		st.Duration, st.CreatedPlans, st.PrunedPlans, st.FinalPlans, st.Geometry.LPs)

	algebra := core.NewPWLAlgebra(ctx, 2)
	mid := midpoint(schema)
	fmt.Printf("\nPareto plan set (costs shown at x=%v):\n", mid)
	for i, info := range res.Plans {
		c := algebra.Eval(info.Cost, mid)
		fmt.Printf("  [%2d] time=%10.3fs fees=$%.6f cutouts=%d\n", i+1, c[0], c[1], info.RR.NumCutouts())
		if *explain {
			fmt.Print(indent(info.Plan.Explain(), "       "))
		} else {
			fmt.Printf("       %v\n", info.Plan)
		}
	}

	if *xFlag != "" {
		x, err := parseVector(*xFlag, schema.NumParams)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("\nrun-time Pareto front at x=%v:\n", x)
		for _, info := range res.ParetoFrontAt(algebra, x) {
			c := algebra.Eval(info.Cost, x)
			fmt.Printf("  time=%10.3fs fees=$%.6f  %v\n", c[0], c[1], info.Plan)
		}
	}

	if *showDiagram && schema.NumParams <= 2 {
		names := make([]string, len(res.Plans))
		costs := make([]*pwl.Multi, len(res.Plans))
		for i, info := range res.Plans {
			names[i] = info.Plan.String()
			costs[i] = info.Cost.(*pwl.Multi)
		}
		plans := &diagram.MultiSlice{Names: names, Costs: costs}
		lo, hi := schema.ParameterBounds()
		resolution := 40
		if schema.NumParams == 2 {
			resolution = 24
		}
		front, err := diagram.FrontSize(plans, lo, hi, resolution)
		if err == nil {
			fmt.Println("\nPareto front size across the parameter space:")
			front.RenderASCII(os.Stdout)
		}
		win, err := diagram.Winner(plans, lo, hi, resolution, []float64{1, 0})
		if err == nil {
			fmt.Println("\ntime-optimal plan diagram:")
			win.RenderASCII(os.Stdout)
		}
	}
}

func midpoint(schema interface {
	ParameterBounds() (geometry.Vector, geometry.Vector)
}) geometry.Vector {
	lo, hi := schema.ParameterBounds()
	return lo.Add(hi).Scale(0.5)
}

func parseVector(s string, dim int) (geometry.Vector, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("-x needs %d comma-separated values, got %d", dim, len(parts))
	}
	v := geometry.NewVector(dim)
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid parameter value %q: %v", p, err)
		}
		v[i] = f
	}
	return v, nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
