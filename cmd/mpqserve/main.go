// mpqserve runs the MPQ optimizer as a service: the preprocessing and
// run-time halves of the paper's Figure 2 behind a concurrent API.
// Clients prepare query templates (optimize once, persist, cache) and
// pick plans for concrete parameter values and preference policies.
//
// Two transports share one JSON protocol:
//
//	mpqserve -addr :8080        # JSON over HTTP
//	mpqserve -stdin             # one JSON request per line on stdin
//
// HTTP endpoints:
//
//	POST /prepare   {"workload":{"tables":4,"params":1,"shape":"chain","seed":21}}
//	POST /pick      {"key":"...","point":[0.5],"policy":"weighted","weights":[1,10000]}
//	POST /pickbatch {"key":"...","points":[[0.2],[0.5],[0.8]],"policy":"frontier"}
//	GET  /stats
//
// The stdin protocol wraps the same bodies with an "op" field:
//
//	{"op":"prepare","workload":{...}}
//	{"op":"pick","key":"...","point":[0.5],"policy":"frontier"}
//	{"op":"pickbatch","key":"...","points":[[0.2],[0.8]]}
//	{"op":"stats"}
//
// By default each prepared plan set gets a point-location pick index
// (built at prepare time, persisted with the plan set) so picks —
// batched ones especially — are cell lookups instead of full candidate
// scans; -index=false keeps the linear scan. Results are byte-identical
// either way.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"mpq/internal/selection"
	"mpq/internal/serve"
	"mpq/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		stdin   = flag.Bool("stdin", false, "serve the line protocol on stdin instead of HTTP")
		workers = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "request queue depth (0 = 8×workers)")
		dir     = flag.String("dir", "", "directory persisting prepared plan sets across restarts")
		useIdx  = flag.Bool("index", true, "build a point-location pick index per prepared plan set")
	)
	flag.Parse()

	s := serve.New(serve.Options{Workers: *workers, QueueDepth: *queue, Dir: *dir, Index: *useIdx})
	defer s.Close()

	if *stdin {
		if err := runStdin(s, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	log.Printf("mpqserve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(s)))
}

// Wire types of the JSON protocol.

type workloadJS struct {
	Tables  int     `json:"tables"`
	Params  int     `json:"params"`
	Shape   string  `json:"shape"`
	Seed    int64   `json:"seed"`
	MinCard float64 `json:"min_card,omitempty"`
	MaxCard float64 `json:"max_card,omitempty"`
}

type prepareReqJS struct {
	Workload *workloadJS `json:"workload"`
}

type prepareRespJS struct {
	Key        string  `json:"key"`
	Plans      int     `json:"plans"`
	Cached     bool    `json:"cached"`
	DurationMs float64 `json:"duration_ms"`
}

type boundJS struct {
	Metric int     `json:"metric"`
	Max    float64 `json:"max"`
}

type pickReqJS struct {
	Key      string    `json:"key"`
	Point    []float64 `json:"point"`
	Policy   string    `json:"policy"`
	Weights  []float64 `json:"weights,omitempty"`
	Minimize int       `json:"minimize,omitempty"`
	Bounds   []boundJS `json:"bounds,omitempty"`
	Order    []int     `json:"order,omitempty"`
}

type pickBatchReqJS struct {
	Key      string      `json:"key"`
	Points   [][]float64 `json:"points"`
	Policy   string      `json:"policy"`
	Weights  []float64   `json:"weights,omitempty"`
	Minimize int         `json:"minimize,omitempty"`
	Bounds   []boundJS   `json:"bounds,omitempty"`
	Order    []int       `json:"order,omitempty"`
}

type choiceJS struct {
	Plan string    `json:"plan"`
	Cost []float64 `json:"cost"`
}

type pickRespJS struct {
	Metrics []string   `json:"metrics"`
	Choices []choiceJS `json:"choices"`
}

type pickBatchRespJS struct {
	Metrics []string     `json:"metrics"`
	Choices [][]choiceJS `json:"choices"`
}

type errorJS struct {
	Error string `json:"error"`
}

func (r prepareReqJS) template() (serve.Template, error) {
	if r.Workload == nil {
		return serve.Template{}, errors.New("missing workload")
	}
	shape, err := workload.ParseShape(r.Workload.Shape)
	if err != nil {
		return serve.Template{}, err
	}
	return serve.Template{Workload: workload.Config{
		Tables:  r.Workload.Tables,
		Params:  r.Workload.Params,
		Shape:   shape,
		Seed:    r.Workload.Seed,
		MinCard: r.Workload.MinCard,
		MaxCard: r.Workload.MaxCard,
	}}, nil
}

func (r pickReqJS) request() serve.PickRequest {
	req := serve.PickRequest{
		Key:      r.Key,
		Point:    append([]float64(nil), r.Point...),
		Policy:   serve.Policy(r.Policy),
		Weights:  r.Weights,
		Minimize: r.Minimize,
		Order:    r.Order,
	}
	for _, b := range r.Bounds {
		req.Bounds = append(req.Bounds, selection.Bound{Metric: b.Metric, Max: b.Max})
	}
	return req
}

func doPrepare(s *serve.Server, body prepareReqJS) (prepareRespJS, error) {
	tpl, err := body.template()
	if err != nil {
		return prepareRespJS{}, err
	}
	res, err := s.Prepare(tpl)
	if err != nil {
		return prepareRespJS{}, err
	}
	return prepareRespJS{
		Key:        res.Key,
		Plans:      res.NumPlans,
		Cached:     res.Cached,
		DurationMs: float64(res.Duration.Microseconds()) / 1000,
	}, nil
}

func doPick(s *serve.Server, body pickReqJS) (pickRespJS, error) {
	res, err := s.Pick(body.request())
	if err != nil {
		return pickRespJS{}, err
	}
	out := pickRespJS{Metrics: res.Metrics, Choices: choicesJS(res.Choices)}
	return out, nil
}

func (r pickBatchReqJS) request() serve.PickBatchRequest {
	req := serve.PickBatchRequest{
		Key:      r.Key,
		Policy:   serve.Policy(r.Policy),
		Weights:  r.Weights,
		Minimize: r.Minimize,
		Order:    r.Order,
	}
	for _, p := range r.Points {
		// The decoder already allocated each point slice fresh; adopt it.
		req.Points = append(req.Points, p)
	}
	for _, b := range r.Bounds {
		req.Bounds = append(req.Bounds, selection.Bound{Metric: b.Metric, Max: b.Max})
	}
	return req
}

func doPickBatch(s *serve.Server, body pickBatchReqJS) (pickBatchRespJS, error) {
	res, err := s.PickBatch(body.request())
	if err != nil {
		return pickBatchRespJS{}, err
	}
	out := pickBatchRespJS{Metrics: res.Metrics, Choices: [][]choiceJS{}}
	for _, cs := range res.Choices {
		out.Choices = append(out.Choices, choicesJS(cs))
	}
	return out, nil
}

func choicesJS(cs []selection.Choice) []choiceJS {
	out := []choiceJS{}
	for _, c := range cs {
		out = append(out, choiceJS{Plan: c.Plan.String(), Cost: c.Cost})
	}
	return out
}

// newHandler wires the server behind HTTP. Queue saturation maps to
// 429, a closed server to 503, an unknown key to 404, malformed
// requests to 400.
func newHandler(s *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /prepare", func(w http.ResponseWriter, r *http.Request) {
		var body prepareReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := doPrepare(s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /pick", func(w http.ResponseWriter, r *http.Request) {
		var body pickReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := doPick(s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /pickbatch", func(w http.ResponseWriter, r *http.Request) {
		var body pickBatchReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := doPickBatch(s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrUnknownPlanSet):
		return http.StatusNotFound
	case errors.Is(err, selection.ErrNoFeasiblePlan):
		return http.StatusUnprocessableEntity
	case errors.Is(err, serve.ErrInternal):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJS{Error: err.Error()})
}

// runStdin serves the line protocol: one JSON request per input line,
// one JSON response per output line.
func runStdin(s *serve.Server, in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var op struct {
			Op string `json:"op"`
		}
		if err := json.Unmarshal(line, &op); err != nil {
			enc.Encode(errorJS{Error: err.Error()})
			continue
		}
		var resp any
		var err error
		switch op.Op {
		case "prepare":
			var body prepareReqJS
			if err = json.Unmarshal(line, &body); err == nil {
				resp, err = doPrepare(s, body)
			}
		case "pick":
			var body pickReqJS
			if err = json.Unmarshal(line, &body); err == nil {
				resp, err = doPick(s, body)
			}
		case "pickbatch":
			var body pickBatchReqJS
			if err = json.Unmarshal(line, &body); err == nil {
				resp, err = doPickBatch(s, body)
			}
		case "stats":
			resp = s.Stats()
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			enc.Encode(errorJS{Error: err.Error()})
			continue
		}
		if encodeErr := enc.Encode(resp); encodeErr != nil {
			return encodeErr
		}
	}
	return sc.Err()
}
