// mpqserve runs the MPQ optimizer as a service: the preprocessing and
// run-time halves of the paper's Figure 2 behind a concurrent API.
// Clients prepare query templates (optimize once, persist, cache) and
// pick plans for concrete parameter values and preference policies.
//
// Two transports share one JSON protocol:
//
//	mpqserve -addr :8080        # JSON over HTTP
//	mpqserve -stdin             # one JSON request per line on stdin
//
// HTTP endpoints:
//
//	POST /prepare      {"workload":{"tables":4,"params":1,"shape":"chain","seed":21},"epsilon":0.05}
//	POST /pick         {"key":"...","point":[0.5],"policy":"weighted","weights":[1,10000]}
//	POST /pickbatch    {"key":"...","points":[[0.2],[0.5],[0.8]],"policy":"frontier"}
//	GET  /planset/<key>  serialized plan-set document (the peer-fetch endpoint)
//	GET  /stats
//	GET  /metrics          Prometheus text exposition (every /stats field)
//	GET  /debug/traces     recent Prepare flights with per-phase timings
//	GET  /debug/telemetry  per-template pick-point histograms
//	GET  /debug/pprof/*    Go profiling handlers (only with -pprof)
//
// Scraping the server:
//
//	curl -s localhost:8080/metrics | grep mpq_prepares_total
//
// -metrics-addr moves /metrics and the /debug endpoints to their own
// listener so scrapes and profiles never contend with the request path.
// -telemetry-dir persists per-template histograms of requested pick
// points across restarts (flushed every -telemetry-flush and on
// shutdown; -telemetry-sample thins the stream for extreme pick
// rates). -log writes a JSON-lines access log to stderr: op, template
// key, status, latency, the answering generation's epsilon/generation
// (anytime servers), and the deadline outcome per request.
//
// The stdin protocol wraps the same bodies with an "op" field:
//
//	{"op":"prepare","workload":{...}}
//	{"op":"pick","key":"...","point":[0.5],"policy":"frontier"}
//	{"op":"pickbatch","key":"...","points":[[0.2],[0.8]]}
//	{"op":"stats"}
//
// By default each prepared plan set gets a point-location pick index
// (built at prepare time, persisted with the plan set) so picks —
// batched ones especially — are cell lookups instead of full candidate
// scans; -index=false keeps the linear scan. Results are byte-identical
// either way.
//
// Fleet deployment: -cache-bytes bounds the in-memory plan-set cache
// (size-aware LRU; evicted sets reload transparently), -shared-dir
// points a fleet of mpqserve processes at one shared on-disk plan-set
// store so each template is computed once per fleet, and -peers lists
// sibling servers to fetch prepared documents from before computing.
// -prepare-max caps concurrently optimizing Prepares; -donate lends
// idle pool workers to in-flight Prepares' split jobs.
//
// -epsilon sets the server's default precision tier: ε > 0 prepares
// ε-approximate Pareto frontiers (every served plan within a (1+ε)
// cost factor of some exact Pareto plan, everywhere in the parameter
// space) in exchange for smaller plan sets and cheaper optimization.
// A request's "epsilon" field overrides the default per template; the
// factor is part of the plan-set key, so exact and approximate tiers
// of the same template coexist in one cache, store, and fleet.
//
// -refine-ladder enables anytime Prepares: a deadline-bounded Prepare
// of a cold template (deadline_ms or -prepare-deadline) computes the
// ladder's coarsest ε step within the deadline and refines to the
// template's final factor in the background, each finished generation
// atomically replacing the previous one. Prepare, pick, and pickbatch
// responses carry "epsilon", "generation", and "final" so clients see
// which generation answered; the access log and /debug/traces carry
// the same fields. See DESIGN.md, "Anytime Prepare & generation
// refinement".
//
// On SIGINT or SIGTERM the server shuts down gracefully: the HTTP listener drains
// in-flight requests (up to -drain), background refinement is aborted,
// the request queue is drained, and the shared store is flushed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpq/internal/core"
	"mpq/internal/fleet"
	"mpq/internal/obs"
	"mpq/internal/refine"
	"mpq/internal/selection"
	"mpq/internal/serve"
	"mpq/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		stdin      = flag.Bool("stdin", false, "serve the line protocol on stdin instead of HTTP")
		workers    = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "request queue depth (0 = 8×workers)")
		dir        = flag.String("dir", "", "directory persisting prepared plan sets across restarts")
		useIdx     = flag.Bool("index", true, "build a point-location pick index per prepared plan set")
		cacheBytes = flag.Int64("cache-bytes", 0, "in-memory plan-set cache budget in bytes (0 = unbounded)")
		sharedDir  = flag.String("shared-dir", "", "shared plan-set store directory for a fleet of servers")
		peers      = flag.String("peers", "", "comma-separated peer base URLs to fetch prepared plan sets from")
		prepMax    = flag.Int("prepare-max", 0, "max concurrently optimizing Prepares (0 = no cap)")
		donate     = flag.Bool("donate", true, "donate idle pool workers to in-flight Prepares' split jobs")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight HTTP requests")
		epsilon    = flag.Float64("epsilon", 0, "default ε approximation factor for Prepares (0 = exact Pareto sets; a request's \"epsilon\" field overrides)")
		ladderSpec = flag.String("refine-ladder", "", "comma-separated descending ε ladder (e.g. 0.5,0.1) enabling anytime Prepares: deadline-bounded Prepares return the coarsest step and refine in the background (empty disables)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug endpoints on a separate ops listener (empty = same mux as the HTTP API)")
		pprofOn     = flag.Bool("pprof", false, "expose /debug/pprof profiling handlers on the metrics mux")
		traceCap    = flag.Int("trace", 256, "Prepare trace ring capacity: recent flights kept for /debug/traces (0 disables phase tracing)")
		telDir      = flag.String("telemetry-dir", "", "directory persisting per-template pick-point histograms across restarts (empty disables recording)")
		telSample   = flag.Int64("telemetry-sample", 1, "record every Nth pick point (sampling knob for extreme pick rates)")
		telFlush    = flag.Duration("telemetry-flush", 30*time.Second, "interval between telemetry flushes to -telemetry-dir")
		logReqs     = flag.Bool("log", false, "JSON-lines access log on stderr (op, key, status, latency, outcome)")
	)
	flag.DurationVar(&prepareDeadline, "prepare-deadline", 0, "default deadline per Prepare request (0 = none; per-request deadline_ms overrides)")
	flag.IntVar(&stdinMaxLine, "max-line", stdinMaxLine, "stdin protocol line-length cap in bytes")
	flag.Parse()

	if *epsilon < 0 || *epsilon >= 1 {
		log.Fatalf("-epsilon %v out of range [0, 1)", *epsilon)
	}
	// The lifecycle context: background refinement inherits it, so
	// SIGINT/SIGTERM aborts in-flight refinement before Close drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := serve.Options{
		Workers: *workers, QueueDepth: *queue, Dir: *dir, Index: *useIdx,
		CacheBytes:            *cacheBytes,
		MaxConcurrentPrepares: *prepMax,
		DonateWorkers:         *donate,
	}
	if *epsilon > 0 {
		// A zero Optimizer selects core.DefaultOptions inside serve.New;
		// materialize the defaults here so setting the factor does not
		// silently discard the paper's refinements.
		opts.Optimizer = core.DefaultOptions()
		opts.Optimizer.Epsilon = *epsilon
	}
	if *sharedDir != "" {
		shared, err := fleet.NewDirStore(*sharedDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Shared = shared
	}
	if *peers != "" {
		opts.Peers = fleet.NewPeerClient(strings.Split(*peers, ","), 0)
	}
	if *ladderSpec != "" {
		ladder, err := refine.ParseLadder(*ladderSpec)
		if err != nil {
			log.Fatalf("-refine-ladder: %v", err)
		}
		opts.RefineLadder = ladder
		opts.BaseContext = ctx
	}

	if *logReqs {
		// Stderr keeps the stdin transport's protocol stream (stdout)
		// clean; HTTP logs to the same stream for symmetry.
		accessLog = newAccessLogger(os.Stderr)
	}
	ob := &obsState{reg: obs.NewRegistry(), ring: obs.NewTraceRing(*traceCap), pprof: *pprofOn}
	ob.ring.Instrument(ob.reg)
	if *telDir != "" {
		tel, err := obs.OpenTelemetry(*telDir, obs.TelemetryOptions{SampleEvery: *telSample})
		if err != nil {
			log.Fatal(err)
		}
		ob.tel = tel
	}
	opts.Trace, opts.Telemetry = ob.ring, ob.tel

	s := serve.New(opts)
	s.RegisterMetrics(ob.reg)
	if ob.tel != nil {
		// Registered before the Close defer so it runs after it: the
		// final flush sees every pick the drained queue recorded.
		defer func() {
			if err := ob.tel.Flush(); err != nil {
				log.Printf("mpqserve: final telemetry flush: %v", err)
			}
		}()
	}
	// Close aborts background refinement, drains the request queue and
	// flushes the shared store; it runs on every exit path below.
	defer s.Close()

	if ob.tel != nil {
		go flushLoop(ctx, ob.tel, *telFlush)
	}
	if *metricsAddr != "" {
		startOps(ctx, *metricsAddr, ob)
	}

	if *stdin {
		if err := runStdin(ctx, s, os.Stdin, os.Stdout); err != nil {
			s.Close()
			log.Fatal(err)
		}
		return
	}
	mux := newMux(s)
	if *metricsAddr == "" {
		ob.mount(mux)
	}
	if err := runHTTP(ctx, s, *addr, *drain, mux); err != nil {
		s.Close()
		log.Fatal(err)
	}
}

// runHTTP serves until the listener fails or ctx is cancelled (SIGINT/
// SIGTERM), then shuts the listener down gracefully within the drain
// deadline. The caller's deferred Server.Close drains the request
// queue and flushes the shared store afterwards.
func runHTTP(ctx context.Context, s *serve.Server, addr string, drain time.Duration, h http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("mpqserve listening on %s", addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("mpqserve: shutting down, draining requests for up to %v", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("mpqserve: shutdown: %v", err)
	}
	return nil
}

// Wire types of the JSON protocol.

type workloadJS struct {
	Tables  int     `json:"tables"`
	Params  int     `json:"params"`
	Shape   string  `json:"shape"`
	Seed    int64   `json:"seed"`
	MinCard float64 `json:"min_card,omitempty"`
	MaxCard float64 `json:"max_card,omitempty"`
}

type prepareReqJS struct {
	Workload *workloadJS `json:"workload"`
	// DeadlineMs bounds this request (0 = the -prepare-deadline
	// default); an expired deadline answers 504 / an in-band error.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Epsilon, when present, selects this template's precision tier:
	// 0 the exact Pareto set, ε > 0 an ε-approximate frontier. Absent,
	// the server's -epsilon default applies. The factor is part of the
	// plan-set key, so tiers coexist without answering for each other.
	Epsilon *float64 `json:"epsilon,omitempty"`
}

type prepareRespJS struct {
	Key        string  `json:"key"`
	Plans      int     `json:"plans"`
	Cached     bool    `json:"cached"`
	DurationMs float64 `json:"duration_ms"`
	// Epsilon is the approximation factor of the generation this answer
	// describes; Generation its index in the template's refinement
	// ladder, and Final whether it is the template's resolved factor
	// (always true without -refine-ladder). A non-final answer refines
	// in the background under the same key.
	Epsilon    float64 `json:"epsilon"`
	Generation int     `json:"generation"`
	Final      bool    `json:"final"`
}

type boundJS struct {
	Metric int     `json:"metric"`
	Max    float64 `json:"max"`
}

type pickReqJS struct {
	Key        string    `json:"key"`
	Point      []float64 `json:"point"`
	Policy     string    `json:"policy"`
	Weights    []float64 `json:"weights,omitempty"`
	Minimize   int       `json:"minimize,omitempty"`
	Bounds     []boundJS `json:"bounds,omitempty"`
	Order      []int     `json:"order,omitempty"`
	DeadlineMs int64     `json:"deadline_ms,omitempty"`
}

type pickBatchReqJS struct {
	Key        string      `json:"key"`
	Points     [][]float64 `json:"points"`
	Policy     string      `json:"policy"`
	Weights    []float64   `json:"weights,omitempty"`
	Minimize   int         `json:"minimize,omitempty"`
	Bounds     []boundJS   `json:"bounds,omitempty"`
	Order      []int       `json:"order,omitempty"`
	DeadlineMs int64       `json:"deadline_ms,omitempty"`
}

type choiceJS struct {
	Plan string    `json:"plan"`
	Cost []float64 `json:"cost"`
}

type pickRespJS struct {
	Metrics []string   `json:"metrics"`
	Choices []choiceJS `json:"choices"`
	// Epsilon/Generation/Final describe the generation that answered;
	// see prepareRespJS.
	Epsilon    float64 `json:"epsilon"`
	Generation int     `json:"generation"`
	Final      bool    `json:"final"`
}

type pickBatchRespJS struct {
	Metrics []string     `json:"metrics"`
	Choices [][]choiceJS `json:"choices"`
	// Epsilon/Generation/Final describe the generation that answered
	// the whole batch (a batch never straddles a refinement swap).
	Epsilon    float64 `json:"epsilon"`
	Generation int     `json:"generation"`
	Final      bool    `json:"final"`
}

type errorJS struct {
	Error string `json:"error"`
}

func (r prepareReqJS) template() (serve.Template, error) {
	if r.Workload == nil {
		return serve.Template{}, errors.New("missing workload")
	}
	shape, err := workload.ParseShape(r.Workload.Shape)
	if err != nil {
		return serve.Template{}, err
	}
	if r.Epsilon != nil && (*r.Epsilon < 0 || *r.Epsilon >= 1) {
		return serve.Template{}, fmt.Errorf("epsilon %v out of range [0, 1)", *r.Epsilon)
	}
	return serve.Template{Workload: workload.Config{
		Tables:  r.Workload.Tables,
		Params:  r.Workload.Params,
		Shape:   shape,
		Seed:    r.Workload.Seed,
		MinCard: r.Workload.MinCard,
		MaxCard: r.Workload.MaxCard,
	}, Epsilon: r.Epsilon}, nil
}

func (r pickReqJS) request() serve.PickRequest {
	req := serve.PickRequest{
		Key:      r.Key,
		Point:    append([]float64(nil), r.Point...),
		Policy:   serve.Policy(r.Policy),
		Weights:  r.Weights,
		Minimize: r.Minimize,
		Order:    r.Order,
	}
	for _, b := range r.Bounds {
		req.Bounds = append(req.Bounds, selection.Bound{Metric: b.Metric, Max: b.Max})
	}
	return req
}

// prepareDeadline and stdinMaxLine are the -prepare-deadline and
// -max-line flag values (package-level so both transports and their
// tests share them).
var (
	prepareDeadline time.Duration
	stdinMaxLine    = 1 << 20
)

// reqContext derives one request's context: an explicit deadline_ms
// wins, then the def fallback (the -prepare-deadline flag for
// Prepares); zero for both leaves the parent untouched.
func reqContext(parent context.Context, deadlineMs int64, def time.Duration) (context.Context, context.CancelFunc) {
	switch {
	case deadlineMs > 0:
		return context.WithTimeout(parent, time.Duration(deadlineMs)*time.Millisecond)
	case def > 0:
		return context.WithTimeout(parent, def)
	}
	return parent, func() {}
}

func doPrepare(ctx context.Context, s *serve.Server, body prepareReqJS) (prepareRespJS, error) {
	tpl, err := body.template()
	if err != nil {
		return prepareRespJS{}, err
	}
	ctx, cancel := reqContext(ctx, body.DeadlineMs, prepareDeadline)
	defer cancel()
	res, err := s.Prepare(ctx, tpl)
	if err != nil {
		return prepareRespJS{}, err
	}
	return prepareRespJS{
		Key:        res.Key,
		Plans:      res.NumPlans,
		Cached:     res.Cached,
		DurationMs: float64(res.Duration.Microseconds()) / 1000,
		Epsilon:    res.Epsilon,
		Generation: res.Generation,
		Final:      res.Final,
	}, nil
}

func doPick(ctx context.Context, s *serve.Server, body pickReqJS) (pickRespJS, error) {
	ctx, cancel := reqContext(ctx, body.DeadlineMs, 0)
	defer cancel()
	res, err := s.Pick(ctx, body.request())
	if err != nil {
		return pickRespJS{}, err
	}
	out := pickRespJS{
		Metrics: res.Metrics, Choices: choicesJS(res.Choices),
		Epsilon: res.Epsilon, Generation: res.Generation, Final: res.Final,
	}
	return out, nil
}

func (r pickBatchReqJS) request() serve.PickBatchRequest {
	req := serve.PickBatchRequest{
		Key:      r.Key,
		Policy:   serve.Policy(r.Policy),
		Weights:  r.Weights,
		Minimize: r.Minimize,
		Order:    r.Order,
	}
	for _, p := range r.Points {
		// The decoder already allocated each point slice fresh; adopt it.
		req.Points = append(req.Points, p)
	}
	for _, b := range r.Bounds {
		req.Bounds = append(req.Bounds, selection.Bound{Metric: b.Metric, Max: b.Max})
	}
	return req
}

func doPickBatch(ctx context.Context, s *serve.Server, body pickBatchReqJS) (pickBatchRespJS, error) {
	ctx, cancel := reqContext(ctx, body.DeadlineMs, 0)
	defer cancel()
	res, err := s.PickBatch(ctx, body.request())
	if err != nil {
		return pickBatchRespJS{}, err
	}
	out := pickBatchRespJS{
		Metrics: res.Metrics, Choices: [][]choiceJS{},
		Epsilon: res.Epsilon, Generation: res.Generation, Final: res.Final,
	}
	for _, cs := range res.Choices {
		out.Choices = append(out.Choices, choicesJS(cs))
	}
	return out, nil
}

func choicesJS(cs []selection.Choice) []choiceJS {
	out := []choiceJS{}
	for _, c := range cs {
		out = append(out, choiceJS{Plan: c.Plan.String(), Cost: c.Cost})
	}
	return out
}

// newMux wires the server behind HTTP. Queue saturation maps to
// 429, a closed server to 503, an unknown key to 404, malformed
// requests to 400. Every handler feeds the access log (a nil logger
// costs one branch).
func newMux(s *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /prepare", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var body prepareReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			accessLog.record("http", "prepare", "", http.StatusBadRequest, start, err, nil)
			return
		}
		resp, err := doPrepare(r.Context(), s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			accessLog.record("http", "prepare", "", statusOf(err), start, err, nil)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		accessLog.record("http", "prepare", resp.Key, http.StatusOK, start, nil, &genInfo{resp.Epsilon, resp.Generation})
	})
	mux.HandleFunc("POST /pick", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var body pickReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			accessLog.record("http", "pick", "", http.StatusBadRequest, start, err, nil)
			return
		}
		resp, err := doPick(r.Context(), s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			accessLog.record("http", "pick", body.Key, statusOf(err), start, err, nil)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		accessLog.record("http", "pick", body.Key, http.StatusOK, start, nil, &genInfo{resp.Epsilon, resp.Generation})
	})
	mux.HandleFunc("POST /pickbatch", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var body pickBatchReqJS
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			accessLog.record("http", "pickbatch", "", http.StatusBadRequest, start, err, nil)
			return
		}
		resp, err := doPickBatch(r.Context(), s, body)
		if err != nil {
			writeError(w, statusOf(err), err)
			accessLog.record("http", "pickbatch", body.Key, statusOf(err), start, err, nil)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		accessLog.record("http", "pickbatch", body.Key, http.StatusOK, start, nil, &genInfo{resp.Epsilon, resp.Generation})
	})
	mux.HandleFunc("GET /planset/{key}", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		key := r.PathValue("key")
		// The peer-fetch endpoint: the serialized plan-set document,
		// byte-identical to what this server loaded or computed. Serves
		// from the cache or the shared store only — never by computing,
		// and never by asking peers (no fetch cascades).
		doc, err := s.Document(key)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			accessLog.record("http", "planset", key, http.StatusNotFound, start, err, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// The content hash lets a fetching peer reject a response
		// corrupted in flight (fleet.PeerClient validates it).
		w.Header().Set(fleet.DocHashHeader, fleet.ContentHash(doc))
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
		accessLog.record("http", "planset", key, http.StatusOK, start, nil, nil)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// newHandler is newMux as an http.Handler (transport tests exercise
// the API surface without the observability endpoints).
func newHandler(s *serve.Server) http.Handler {
	return newMux(s)
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrUnknownPlanSet):
		return http.StatusNotFound
	case errors.Is(err, selection.ErrNoFeasiblePlan):
		return http.StatusUnprocessableEntity
	case errors.Is(err, serve.ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJS{Error: err.Error()})
}

// stdinLine is one unit of stdin input: a complete line, or the
// marker of one that exceeded the cap (its content already drained).
type stdinLine struct {
	data    []byte
	tooLong bool
}

// readLine reads one newline-terminated line of at most max bytes. A
// longer line is drained to its newline and reported with tooLong —
// the protocol answers a structured error and keeps serving, instead
// of tearing the whole loop on one oversized request.
func readLine(br *bufio.Reader, max int) (stdinLine, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			if len(buf) > max {
				// Over the cap: discard the rest of the line.
				for err == bufio.ErrBufferFull {
					_, err = br.ReadSlice('\n')
				}
				if err != nil && err != io.EOF {
					return stdinLine{tooLong: true}, err
				}
				return stdinLine{tooLong: true}, nil
			}
			continue
		}
		if n := len(buf); n > 0 && buf[n-1] == '\n' {
			buf = buf[:n-1]
		}
		if len(buf) > max {
			return stdinLine{tooLong: true}, err
		}
		return stdinLine{data: buf}, err
	}
}

// runStdin serves the line protocol: one JSON request per input line,
// one JSON response per output line, until EOF or ctx cancellation
// (SIGINT/SIGTERM) — whichever comes first. Requests already read are
// answered before returning; the caller's Server.Close drains the
// queue and flushes the shared store. Malformed JSON and lines over
// the -max-line cap are answered with a structured error object
// in-band; the loop keeps serving.
func runStdin(ctx context.Context, s *serve.Server, in io.Reader, out io.Writer) error {
	enc := json.NewEncoder(out)
	lines := make(chan stdinLine)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		br := bufio.NewReader(in)
		for {
			line, err := readLine(br, stdinMaxLine)
			if len(line.data) > 0 || line.tooLong {
				select {
				case lines <- line:
				case <-ctx.Done():
					return
				}
			}
			if err != nil {
				if err != io.EOF {
					scanErr <- err
				}
				return
			}
		}
	}()
	for {
		select {
		case <-ctx.Done():
			log.Printf("mpqserve: shutting down stdin protocol")
			// Answer anything the reader already read but has not yet
			// handed over: the unbuffered send may be parked an instant
			// behind the signal, so give each pending line a short
			// grace window, bounded overall so a firehose client cannot
			// hold shutdown open.
			deadline := time.After(500 * time.Millisecond)
			for {
				select {
				case line, ok := <-lines:
					if !ok {
						return nil
					}
					// The session context is already done; answer the
					// pending line on its own context so the grace
					// window actually serves it.
					if err := handleLine(context.Background(), s, enc, line); err != nil {
						return err
					}
				case <-time.After(50 * time.Millisecond):
					return nil
				case <-deadline:
					return nil
				}
			}
		case line, ok := <-lines:
			if !ok {
				select {
				case err := <-scanErr:
					return err
				default:
					return nil
				}
			}
			if err := handleLine(ctx, s, enc, line); err != nil {
				return err
			}
		}
	}
}

// handleLine answers one stdin-protocol request; the returned error is
// an output-encoding failure (request errors, including oversized and
// malformed lines, are answered in-band). The access log gets the same
// op/key/status/latency fields as the HTTP transport, with statuses
// mapped as statusOf would map them.
func handleLine(ctx context.Context, s *serve.Server, enc *json.Encoder, line stdinLine) error {
	start := time.Now()
	if line.tooLong {
		accessLog.record("stdin", "", "", http.StatusBadRequest, start, errors.New("line too long"), nil)
		return enc.Encode(errorJS{Error: fmt.Sprintf("line exceeds %d bytes", stdinMaxLine)})
	}
	var op struct {
		Op string `json:"op"`
	}
	if err := json.Unmarshal(line.data, &op); err != nil {
		accessLog.record("stdin", "", "", http.StatusBadRequest, start, err, nil)
		return enc.Encode(errorJS{Error: err.Error()})
	}
	var resp any
	var err error
	var key string
	var gen *genInfo
	switch op.Op {
	case "prepare":
		var body prepareReqJS
		if err = json.Unmarshal(line.data, &body); err == nil {
			var r prepareRespJS
			if r, err = doPrepare(ctx, s, body); err == nil {
				key, resp = r.Key, r
				gen = &genInfo{r.Epsilon, r.Generation}
			}
		}
	case "pick":
		var body pickReqJS
		if err = json.Unmarshal(line.data, &body); err == nil {
			key = body.Key
			var r pickRespJS
			if r, err = doPick(ctx, s, body); err == nil {
				resp = r
				gen = &genInfo{r.Epsilon, r.Generation}
			}
		}
	case "pickbatch":
		var body pickBatchReqJS
		if err = json.Unmarshal(line.data, &body); err == nil {
			key = body.Key
			var r pickBatchRespJS
			if r, err = doPickBatch(ctx, s, body); err == nil {
				resp = r
				gen = &genInfo{r.Epsilon, r.Generation}
			}
		}
	case "stats":
		resp = s.Stats()
	default:
		err = fmt.Errorf("unknown op %q", op.Op)
	}
	if err != nil {
		accessLog.record("stdin", op.Op, key, statusOf(err), start, err, nil)
		return enc.Encode(errorJS{Error: err.Error()})
	}
	accessLog.record("stdin", op.Op, key, http.StatusOK, start, nil, gen)
	return enc.Encode(resp)
}
