package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpq/internal/serve"
)

// slowPrepareLine is a template that optimizes for seconds — long
// enough that a millisecond deadline reliably expires first.
const slowPrepareLine = `"workload":{"tables":5,"params":2,"shape":"clique","seed":3}`

// TestReadLine covers the stdin framing layer: the cap applies per
// line, an oversized line is drained to its newline, and the lines
// after it are delivered intact.
func TestReadLine(t *testing.T) {
	const max = 32
	cases := []struct {
		name    string
		input   string
		want    []string // per read: the line content, or "" with tooLong
		tooLong []bool
	}{
		{"short lines", "a\nbb\n", []string{"a", "bb"}, []bool{false, false}},
		{"exactly max", strings.Repeat("x", max) + "\n", []string{strings.Repeat("x", max)}, []bool{false}},
		{"one over max", strings.Repeat("x", max+1) + "\n", []string{""}, []bool{true}},
		{"oversized then fine", strings.Repeat("y", 100) + "\nok\n", []string{"", "ok"}, []bool{true, false}},
		{"oversized spanning buffers", strings.Repeat("z", 4000) + "\nafter\n", []string{"", "after"}, []bool{true, false}},
		{"unterminated tail", "tail", []string{"tail"}, []bool{false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A deliberately tiny buffer so long lines span many
			// ReadSlice calls.
			br := bufio.NewReaderSize(strings.NewReader(tc.input), 16)
			for i := range tc.want {
				line, err := readLine(br, max)
				if err != nil && i < len(tc.want)-1 {
					t.Fatalf("read %d: %v", i, err)
				}
				if line.tooLong != tc.tooLong[i] {
					t.Errorf("read %d: tooLong = %v, want %v", i, line.tooLong, tc.tooLong[i])
				}
				if string(line.data) != tc.want[i] {
					t.Errorf("read %d: data = %q, want %q", i, line.data, tc.want[i])
				}
			}
		})
	}
}

// TestStdinProtocolResilience is the table-driven malformed-input
// test: every bad line gets a structured error object in-band, and
// the loop keeps serving — the valid request at the end still works.
func TestStdinProtocolResilience(t *testing.T) {
	saved := stdinMaxLine
	stdinMaxLine = 256
	defer func() { stdinMaxLine = saved }()

	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()

	lines := []struct {
		name      string
		line      string
		wantError string // substring of the in-band error, "" = success
	}{
		{"malformed json", `{"op":"pick",`, "unexpected end"},
		{"not json at all", `GET / HTTP/1.1`, "invalid character"},
		{"oversized line", strings.Repeat("a", 600), "exceeds 256 bytes"},
		{"unknown op", `{"op":"explode"}`, "unknown op"},
		{"unknown key", `{"op":"pick","key":"nope","point":[0.5]}`, "unknown plan-set key"},
		{"expired deadline", `{"op":"prepare","deadline_ms":1,` + slowPrepareLine + `}`, "deadline"},
		{"valid prepare", prepareLine[:1] + `"op":"prepare",` + prepareLine[1:], ""},
		{"valid stats", `{"op":"stats"}`, ""},
	}
	var in strings.Builder
	for _, l := range lines {
		in.WriteString(l.line)
		in.WriteByte('\n')
	}
	var out bytes.Buffer
	if err := runStdin(t.Context(), s, strings.NewReader(in.String()), &out); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(got) != len(lines) {
		t.Fatalf("%d responses for %d requests:\n%s", len(got), len(lines), out.String())
	}
	for i, l := range lines {
		var e errorJS
		if err := json.Unmarshal([]byte(got[i]), &e); err != nil {
			t.Errorf("%s: response %q is not JSON: %v", l.name, got[i], err)
			continue
		}
		if l.wantError == "" {
			if e.Error != "" {
				t.Errorf("%s: unexpected error %q", l.name, e.Error)
			}
		} else if !strings.Contains(e.Error, l.wantError) {
			t.Errorf("%s: error %q does not mention %q", l.name, e.Error, l.wantError)
		}
	}
}

// TestHTTPDeadlines covers the deadline knobs on the HTTP transport:
// a per-request deadline_ms expires as 504, the -prepare-deadline
// default applies when the request carries none, and an explicit
// deadline_ms overrides the flag.
func TestHTTPDeadlines(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	post := func(body string) (int, errorJS) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/prepare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorJS
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}

	cases := []struct {
		name       string
		body       string
		flag       time.Duration
		wantStatus int
	}{
		{"deadline_ms expires", `{"deadline_ms":50,` + slowPrepareLine + `}`,
			0, http.StatusGatewayTimeout},
		{"flag default applies", `{` + slowPrepareLine + `}`,
			50 * time.Millisecond, http.StatusGatewayTimeout},
		{"deadline_ms beats a generous flag", `{"deadline_ms":50,` + slowPrepareLine + `}`,
			time.Hour, http.StatusGatewayTimeout},
		{"no deadline at all succeeds", prepareLine, 0, http.StatusOK},
	}
	saved := prepareDeadline
	defer func() { prepareDeadline = saved }()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prepareDeadline = tc.flag
			start := time.Now()
			status, e := post(tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", status, e.Error, tc.wantStatus)
			}
			if tc.wantStatus == http.StatusGatewayTimeout {
				if !strings.Contains(e.Error, "deadline") {
					t.Errorf("error %q does not mention the deadline", e.Error)
				}
				// The full optimization takes seconds; an enforced
				// deadline must come back long before that.
				if d := time.Since(start); d > 2*time.Second {
					t.Errorf("deadline-bounded prepare took %v", d)
				}
			}
		})
	}

	// The server survives all those abandoned prepares: stats still
	// count them and a fresh pick works end to end.
	var stats serve.Stats
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.DeadlineExpiries != 3 {
		t.Errorf("deadline expiries = %d, want 3", stats.DeadlineExpiries)
	}
}

// TestStatusOfContextErrors pins the HTTP mappings of the new failure
// kinds.
func TestStatusOfContextErrors(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrapped: %w", serve.ErrQueueFull), http.StatusTooManyRequests},
		{fmt.Errorf("core: optimize: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("core: optimize: %w", context.Canceled), http.StatusRequestTimeout},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.want {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
