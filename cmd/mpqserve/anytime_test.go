package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpq/internal/serve"
)

// TestHTTPAnytimePrepare: on a -refine-ladder server, a deadline-bound
// Prepare of a cold template answers with the coarse generation — the
// epsilon/generation/final response fields and the access-log record
// say so — and once background refinement settles, picks on the same
// key answer from the final generation.
func TestHTTPAnytimePrepare(t *testing.T) {
	var logBuf bytes.Buffer
	accessLog = newAccessLogger(&logBuf)
	defer func() { accessLog = nil }()

	s := serve.New(serve.Options{Workers: 2, RefineLadder: []float64{0.5, 0.1}})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	status, body := httpPost(t, ts.URL+"/prepare",
		`{"workload":{"tables":4,"params":1,"shape":"chain","seed":21},"deadline_ms":120000}`)
	if status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Cached || prep.Final || prep.Epsilon != 0.5 || prep.Generation != 0 {
		t.Fatalf("anytime prepare = %+v, want the coarse ε=0.5 generation", prep)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer wcancel()
	if err := s.WaitRefinement(wctx); err != nil {
		t.Fatal(err)
	}

	status, body = httpPost(t, ts.URL+"/pick", `{"key":"`+prep.Key+`","point":[0.5]}`)
	if status != http.StatusOK {
		t.Fatalf("pick: %d %s", status, body)
	}
	var pick pickRespJS
	if err := json.Unmarshal(body, &pick); err != nil {
		t.Fatal(err)
	}
	if !pick.Final || pick.Epsilon != 0 || pick.Generation != 2 {
		t.Errorf("post-refinement pick = eps %g gen %d final %v, want the final generation",
			pick.Epsilon, pick.Generation, pick.Final)
	}

	var recs []accessRecord
	dec := json.NewDecoder(&logBuf)
	for dec.More() {
		var rec accessRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("logged %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Op != "prepare" || recs[0].Epsilon != 0.5 || recs[0].Generation != 0 {
		t.Errorf("prepare record = %+v, want epsilon 0.5 generation 0", recs[0])
	}
	if recs[1].Op != "pick" || recs[1].Epsilon != 0 || recs[1].Generation != 2 {
		t.Errorf("pick record = %+v, want epsilon 0 generation 2", recs[1])
	}
}
