package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpq/internal/fleet"
	"mpq/internal/serve"
)

// TestPlanSetEndpoint: GET /planset/{key} serves the serialized
// document for peers, and a second server configured with the first as
// a peer prepares from it without computing.
func TestPlanSetEndpoint(t *testing.T) {
	shared, err := fleet.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := serve.New(serve.Options{Workers: 1, Index: true, Shared: shared})
	defer a.Close()
	tsA := httptest.NewServer(newHandler(a))
	defer tsA.Close()

	resp, err := http.Post(tsA.URL+"/prepare", "application/json", strings.NewReader(prepareLine))
	if err != nil {
		t.Fatal(err)
	}
	var prep prepareRespJS
	if err := json.NewDecoder(resp.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prep.Key == "" {
		t.Fatalf("prepare response %+v", prep)
	}

	// The document endpoint serves the exact bytes.
	resp, err = http.Get(tsA.URL + fleet.PlanSetPath + prep.Key)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(doc) == 0 {
		t.Fatalf("planset status %d, %d bytes", resp.StatusCode, len(doc))
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil || probe.Version == 0 {
		t.Fatalf("planset endpoint returned a non-document: %v (%q...)", err, doc[:min(len(doc), 40)])
	}
	if resp, err := http.Get(tsA.URL + fleet.PlanSetPath + "unknown"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown planset status = %d, want 404", resp.StatusCode)
		}
	}
	// A %2F-encoded path-traversal "key" must 404 without ever reaching
	// the filesystem (ServeMux decodes the escapes after routing, so the
	// raw PathValue carries the dots and slashes).
	if resp, err := http.Get(tsA.URL + fleet.PlanSetPath + "..%2F..%2Fetc%2Fpasswd"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("traversal planset status = %d, want 404", resp.StatusCode)
		}
	}

	// Server B fetches from A instead of computing.
	b := serve.New(serve.Options{
		Workers: 1, Index: true,
		Peers: fleet.NewPeerClient([]string{tsA.URL}, 0),
	})
	defer b.Close()
	tsB := httptest.NewServer(newHandler(b))
	defer tsB.Close()
	resp, err = http.Post(tsB.URL+"/prepare", "application/json", strings.NewReader(prepareLine))
	if err != nil {
		t.Fatal(err)
	}
	var prepB prepareRespJS
	if err := json.NewDecoder(resp.Body).Decode(&prepB); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !prepB.Cached || prepB.Key != prep.Key {
		t.Errorf("peer prepare: cached=%v key match=%v", prepB.Cached, prepB.Key == prep.Key)
	}
	if st := b.Stats(); st.PeerHits != 1 {
		t.Errorf("peer hits = %d, want 1", st.PeerHits)
	}

	// Picks through both servers agree byte-identically.
	pick := fmt.Sprintf(`{"key":%q,"point":[0.5],"policy":"frontier"}`, prep.Key)
	var got [2]string
	for i, ts := range []*httptest.Server{tsA, tsB} {
		resp, err := http.Post(ts.URL+"/pick", "application/json", strings.NewReader(pick))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		got[i] = buf.String()
	}
	if got[0] != got[1] {
		t.Errorf("picks differ between compute and peer server:\n  a: %s\n  b: %s", got[0], got[1])
	}
}

// TestGracefulShutdownHTTP: cancelling the run context makes runHTTP
// drain and return instead of killing in-flight requests.
func TestGracefulShutdownHTTP(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runHTTP(ctx, s, addr, 2*time.Second, newMux(s)) }()

	// Wait for the listener, issue a request, then signal shutdown.
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get("http://" + addr + "/stats")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runHTTP returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runHTTP did not return after cancellation")
	}
	// The server still drains its queue and flushes cleanly.
	s.Close()
}

// syncBuffer is a mutex-guarded buffer so the test can poll output
// written from the server goroutine without a data race.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

// TestGracefulShutdownStdin: cancelling the context stops the line
// protocol cleanly even with the input still open.
func TestGracefulShutdownStdin(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	defer pw.Close()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- runStdin(ctx, s, pr, &out) }()
	// One answered request, then shutdown with the pipe still open.
	if _, err := pw.Write([]byte(`{"op":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runStdin returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runStdin did not return after cancellation")
	}
	if out.Len() == 0 {
		t.Error("stats request was not answered before shutdown")
	}
}
