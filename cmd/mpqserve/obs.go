package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"mpq/internal/obs"
)

// Observability wiring for mpqserve: the /metrics and /debug endpoints
// (same mux by default, a separate -metrics-addr ops listener when
// isolation from the request path is wanted), the JSON-lines access
// log behind -log, and the telemetry flush loop.

// obsState bundles the process's observability plumbing.
type obsState struct {
	reg   *obs.Registry
	ring  *obs.TraceRing
	tel   *obs.Telemetry
	pprof bool
}

// mount registers the observability endpoints on a mux: the Prometheus
// exposition at /metrics, the trace-ring dump at /debug/traces, the
// telemetry snapshots at /debug/telemetry, and (opt-in) the standard
// pprof handlers.
func (o *obsState) mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.reg.WriteText(w); err != nil {
			log.Printf("mpqserve: rendering /metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		events := o.ring.Events()
		if events == nil {
			events = []obs.TraceEvent{}
		}
		writeJSON(w, http.StatusOK, struct {
			Total  int64            `json:"total"`
			Events []obs.TraceEvent `json:"events"`
		}{o.ring.Total(), events})
	})
	mux.HandleFunc("GET /debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		out := []obs.TelemetrySnapshot{}
		if o.tel != nil {
			for _, key := range o.tel.Keys() {
				if snap, ok := o.tel.Snapshot(key); ok {
					out = append(out, snap)
				}
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	if o.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// startOps serves the observability endpoints on their own listener
// (the -metrics-addr deployment: scrapes and profiles never contend
// with the request path) until ctx is cancelled.
func startOps(ctx context.Context, addr string, o *obsState) {
	mux := http.NewServeMux()
	o.mount(mux)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mpqserve: metrics listener: %v", err)
		}
	}()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	log.Printf("mpqserve: metrics on %s", addr)
}

// flushLoop persists dirty telemetry histograms every interval until
// ctx is cancelled; the final flush on the shutdown path is a deferred
// call in main, after the server has drained.
func flushLoop(ctx context.Context, tel *obs.Telemetry, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := tel.Flush(); err != nil {
				log.Printf("mpqserve: telemetry flush: %v", err)
			}
		}
	}
}

// accessLog is the process's request logger; nil (the -log default)
// disables logging with one branch per request. Package-level so both
// transports and their tests share it, like prepareDeadline.
var accessLog *accessLogger

// accessLogger writes one JSON object per request. The stdin transport
// must log away from stdout (the protocol stream); HTTP uses the same
// stderr stream for symmetry.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	return &accessLogger{enc: json.NewEncoder(w)}
}

// accessRecord is one logged request.
type accessRecord struct {
	Time      string  `json:"time"`
	Transport string  `json:"transport"`
	Op        string  `json:"op"`
	Key       string  `json:"key,omitempty"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
	// Epsilon and Generation describe the plan-set generation that
	// answered (anytime servers; mirrors the /debug/traces fields).
	Epsilon    float64 `json:"epsilon,omitempty"`
	Generation int     `json:"generation,omitempty"`
	// Outcome is "ok", "error", or the context verdicts "deadline" /
	// "canceled" (the deadline outcome the satellite task asks for).
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// genInfo tags a logged request with the generation that answered it;
// nil on requests that carry no generation (errors, stats, planset).
type genInfo struct {
	Epsilon    float64
	Generation int
}

// record logs one request; safe on a nil receiver.
func (l *accessLogger) record(transport, op, key string, status int, start time.Time, err error, gen *genInfo) {
	if l == nil {
		return
	}
	rec := accessRecord{
		Time:      start.UTC().Format(time.RFC3339Nano),
		Transport: transport,
		Op:        op,
		Key:       key,
		Status:    status,
		LatencyMs: float64(time.Since(start).Microseconds()) / 1000,
		Outcome:   "ok",
	}
	if gen != nil {
		rec.Epsilon = gen.Epsilon
		rec.Generation = gen.Generation
	}
	if err != nil {
		rec.Error = err.Error()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			rec.Outcome = "deadline"
		case errors.Is(err, context.Canceled):
			rec.Outcome = "canceled"
		default:
			rec.Outcome = "error"
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if eerr := l.enc.Encode(rec); eerr != nil {
		log.Printf("mpqserve: access log: %v", eerr)
	}
}
