package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpq/internal/obs"
	"mpq/internal/serve"
)

// newObsServer wires a server the way main does: traced, telemetered,
// metrics-registered, observability endpoints mounted on the API mux.
func newObsServer(t *testing.T, telDir string) (*serve.Server, *obsState, *httptest.Server) {
	t.Helper()
	ob := &obsState{reg: obs.NewRegistry(), ring: obs.NewTraceRing(16)}
	ob.ring.Instrument(ob.reg)
	if telDir != "" {
		tel, err := obs.OpenTelemetry(telDir, obs.TelemetryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ob.tel = tel
	}
	s := serve.New(serve.Options{Workers: 2, Trace: ob.ring, Telemetry: ob.tel})
	t.Cleanup(s.Close)
	s.RegisterMetrics(ob.reg)
	mux := newMux(s)
	ob.mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ob, ts
}

func httpPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestMetricsEndpoint drives the API then scrapes /metrics: the scrape
// must carry the right content type, pass the exposition lint, agree
// with /stats on the headline counters, and stay monotonic.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newObsServer(t, t.TempDir())

	scrape := func() (string, []*obs.Family) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("content type %q", ct)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		fams, err := obs.ParseExposition(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("scrape does not parse: %v", err)
		}
		if errs := obs.Lint(fams); len(errs) != 0 {
			t.Fatalf("scrape fails lint: %v", errs)
		}
		return buf.String(), fams
	}
	_, before := scrape()

	status, body := httpPost(t, ts.URL+"/prepare", prepareLine)
	if status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if status, body := httpPost(t, ts.URL+"/pick",
			fmt.Sprintf(`{"key":%q,"point":[0.5],"policy":"frontier"}`, prep.Key)); status != http.StatusOK {
			t.Fatalf("pick: %d %s", status, body)
		}
	}

	text, after := scrape()
	if errs := obs.CheckMonotonic(before, after); len(errs) != 0 {
		t.Fatalf("counters regressed: %v", errs)
	}
	want := map[string]float64{
		"mpq_prepares_total":              1,
		"mpq_picks_total":                 3,
		"mpq_telemetry_recorded":          3,
		"mpq_prepare_seconds_count":       1,
		"mpq_cached_plan_sets":            1,
		"mpq_telemetry_templates":         1,
		"mpq_telemetry_load_errors_total": 0,
	}
	got := map[string]float64{}
	for _, f := range after {
		for _, smp := range f.Samples {
			if len(smp.Labels) == 0 {
				got[smp.Name] = smp.Value
			}
		}
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v\nscrape:\n%s", name, got[name], v, text)
		}
	}
}

// TestDebugTracesEndpoint: computed prepares show up as JSON trace
// events with their phase breakdown.
func TestDebugTracesEndpoint(t *testing.T) {
	_, _, ts := newObsServer(t, "")

	if status, body := httpPost(t, ts.URL+"/prepare", prepareLine); status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Total  int64            `json:"total"`
		Events []obs.TraceEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Events) != 1 {
		t.Fatalf("traces = %+v", out)
	}
	ev := out.Events[0]
	if ev.Op != "prepare" || ev.Source != "computed" || ev.Key == "" || len(ev.Phases) == 0 {
		t.Fatalf("event = %+v", ev)
	}
}

// TestDebugTelemetryEndpoint: recorded picks surface as snapshots; a
// server without -telemetry-dir answers an empty array, not an error.
func TestDebugTelemetryEndpoint(t *testing.T) {
	_, _, ts := newObsServer(t, t.TempDir())

	status, body := httpPost(t, ts.URL+"/prepare", prepareLine)
	if status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if status, body := httpPost(t, ts.URL+"/pick",
		fmt.Sprintf(`{"key":%q,"point":[0.25],"policy":"frontier"}`, prep.Key)); status != http.StatusOK {
		t.Fatalf("pick: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snaps []obs.TelemetrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Key != prep.Key || snaps[0].Recorded != 1 {
		t.Fatalf("telemetry = %+v", snaps)
	}

	_, _, bare := newObsServer(t, "")
	resp2, err := http.Get(bare.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty []obs.TelemetrySnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("telemetry without a dir = %+v", empty)
	}
}

// TestPprofOptIn: the profiling handlers exist only when asked for.
func TestPprofOptIn(t *testing.T) {
	for _, on := range []bool{false, true} {
		ob := &obsState{reg: obs.NewRegistry(), pprof: on}
		mux := http.NewServeMux()
		ob.mount(mux)
		req := httptest.NewRequest("GET", "/debug/pprof/cmdline", nil)
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		if on && rr.Code != http.StatusOK {
			t.Errorf("pprof on: /debug/pprof/cmdline = %d", rr.Code)
		}
		if !on && rr.Code != http.StatusNotFound {
			t.Errorf("pprof off: /debug/pprof/cmdline = %d, want 404", rr.Code)
		}
	}
}

// TestAccessLogHTTP checks the JSON-lines shape on the HTTP transport:
// one object per request with op, key, status, latency, and outcome.
func TestAccessLogHTTP(t *testing.T) {
	var logBuf bytes.Buffer
	accessLog = newAccessLogger(&logBuf)
	defer func() { accessLog = nil }()

	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	status, body := httpPost(t, ts.URL+"/prepare", prepareLine)
	if status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if status, _ := httpPost(t, ts.URL+"/pick", `{"key":"missing","point":[0.5]}`); status != http.StatusNotFound {
		t.Fatalf("missing key: %d", status)
	}

	var recs []accessRecord
	dec := json.NewDecoder(&logBuf)
	for dec.More() {
		var rec accessRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("logged %d records, want 2: %+v", len(recs), recs)
	}
	ok, bad := recs[0], recs[1]
	if ok.Transport != "http" || ok.Op != "prepare" || ok.Key != prep.Key ||
		ok.Status != 200 || ok.Outcome != "ok" || ok.Error != "" || ok.LatencyMs < 0 {
		t.Errorf("prepare record = %+v", ok)
	}
	if _, err := time.Parse(time.RFC3339Nano, ok.Time); err != nil {
		t.Errorf("timestamp %q: %v", ok.Time, err)
	}
	if bad.Op != "pick" || bad.Key != "missing" || bad.Status != 404 ||
		bad.Outcome != "error" || bad.Error == "" {
		t.Errorf("error record = %+v", bad)
	}
}

// TestAccessLogStdin: the stdin transport logs the same shape, with
// the protocol stream untouched (the log goes to its own writer).
func TestAccessLogStdin(t *testing.T) {
	var logBuf bytes.Buffer
	accessLog = newAccessLogger(&logBuf)
	defer func() { accessLog = nil }()

	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()

	in := strings.NewReader(`{"op":"prepare","workload":{"tables":4,"params":1,"shape":"chain","seed":21}}` + "\n" + `{"op":"nope"}` + "\n")
	var out bytes.Buffer
	if err := runStdin(context.Background(), s, in, &out); err != nil {
		t.Fatal(err)
	}
	// Two protocol responses on stdout, two log records on the side.
	if lines := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; lines != 2 {
		t.Fatalf("protocol stream has %d lines: %s", lines, out.String())
	}
	var recs []accessRecord
	dec := json.NewDecoder(&logBuf)
	for dec.More() {
		var rec accessRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("logged %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Transport != "stdin" || recs[0].Op != "prepare" || recs[0].Status != 200 || recs[0].Key == "" {
		t.Errorf("prepare record = %+v", recs[0])
	}
	if recs[1].Op != "nope" || recs[1].Status != 400 || recs[1].Outcome != "error" {
		t.Errorf("unknown-op record = %+v", recs[1])
	}
}

// TestNilAccessLogIsSilent: the -log default records nothing and
// (being a nil method receiver) costs a single branch.
func TestNilAccessLogIsSilent(t *testing.T) {
	accessLog = nil
	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()
	if status, body := httpPost(t, ts.URL+"/prepare", prepareLine); status != http.StatusOK {
		t.Fatalf("prepare: %d %s", status, body)
	}
}
