package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mpq/internal/serve"
)

const prepareLine = `{"workload":{"tables":4,"params":1,"shape":"chain","seed":21}}`

func TestHTTPProtocol(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	status, body := post("/prepare", prepareLine)
	if status != http.StatusOK {
		t.Fatalf("prepare status %d: %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Key == "" || prep.Plans == 0 || prep.Cached {
		t.Fatalf("prepare response %+v", prep)
	}

	// Concurrent clients hammer pick against the cached set.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	var first pickRespJS
	status, body = post("/pick", fmt.Sprintf(`{"key":%q,"point":[0.5],"policy":"frontier"}`, prep.Key))
	if status != http.StatusOK {
		t.Fatalf("pick status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Choices) == 0 || len(first.Metrics) != 2 {
		t.Fatalf("pick response %+v", first)
	}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/pick", "application/json",
				strings.NewReader(fmt.Sprintf(`{"key":%q,"point":[0.5],"policy":"frontier"}`, prep.Key)))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			var got pickRespJS
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errCh <- err
				return
			}
			if fmt.Sprint(got) != fmt.Sprint(first) {
				errCh <- fmt.Errorf("concurrent pick %v != %v", got, first)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Error mapping.
	if status, _ := post("/pick", `{"key":"missing","point":[0.5]}`); status != http.StatusNotFound {
		t.Errorf("unknown key status = %d, want 404", status)
	}
	if status, _ := post("/pick", `{`); status != http.StatusBadRequest {
		t.Errorf("bad json status = %d, want 400", status)
	}
	if status, _ := post("/prepare", `{"workload":{"tables":3,"shape":"dodecahedron"}}`); status != http.StatusBadRequest {
		t.Errorf("bad shape status = %d, want 400", status)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Prepares != 1 || stats.Picks < 9 || stats.CachedPlanSets != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestHTTPPickBatch: /pickbatch on an index-enabled server answers in
// point order and matches individual /pick responses exactly.
func TestHTTPPickBatch(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2, Index: true})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	status, body := post("/prepare", prepareLine)
	if status != http.StatusOK {
		t.Fatalf("prepare status %d: %s", status, body)
	}
	var prep prepareRespJS
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}

	points := []string{"[0.1]", "[0.5]", "[0.9]"}
	singles := make([]pickRespJS, len(points))
	for i, p := range points {
		status, body := post("/pick", fmt.Sprintf(`{"key":%q,"point":%s,"policy":"weighted","weights":[1,10000]}`, prep.Key, p))
		if status != http.StatusOK {
			t.Fatalf("pick %s status %d: %s", p, status, body)
		}
		if err := json.Unmarshal(body, &singles[i]); err != nil {
			t.Fatal(err)
		}
	}

	status, body = post("/pickbatch", fmt.Sprintf(
		`{"key":%q,"points":[%s],"policy":"weighted","weights":[1,10000]}`,
		prep.Key, strings.Join(points, ",")))
	if status != http.StatusOK {
		t.Fatalf("pickbatch status %d: %s", status, body)
	}
	var batch pickBatchRespJS
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Choices) != len(points) {
		t.Fatalf("batch returned %d answers for %d points", len(batch.Choices), len(points))
	}
	for i := range points {
		if fmt.Sprint(batch.Choices[i]) != fmt.Sprint(singles[i].Choices) {
			t.Errorf("batch point %d: %v != single pick %v", i, batch.Choices[i], singles[i].Choices)
		}
	}

	// Error mapping: a bad point in the batch is the client's fault.
	if status, _ := post("/pickbatch", fmt.Sprintf(`{"key":%q,"points":[[0.5],[9]]}`, prep.Key)); status != http.StatusBadRequest {
		t.Errorf("bad batch point status = %d, want 400", status)
	}
	if status, _ := post("/pickbatch", `{"key":"missing","points":[[0.5]]}`); status != http.StatusNotFound {
		t.Errorf("unknown key batch status = %d, want 404", status)
	}

	// The stdin protocol shares the handler logic.
	var out bytes.Buffer
	line := fmt.Sprintf(`{"op":"pickbatch","key":%q,"points":[%s],"policy":"weighted","weights":[1,10000]}`,
		prep.Key, strings.Join(points, ","))
	if err := runStdin(context.Background(), s, strings.NewReader(line+"\n"), &out); err != nil {
		t.Fatal(err)
	}
	var stdinBatch pickBatchRespJS
	if err := json.Unmarshal(out.Bytes(), &stdinBatch); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stdinBatch) != fmt.Sprint(batch) {
		t.Errorf("stdin batch %v != http batch %v", stdinBatch, batch)
	}

	// Per-point accounting via the handler stack: 3 single picks plus
	// two 3-point batches (HTTP and stdin) = 9 pick points.
	st := s.Stats()
	if want := int64(3 * len(points)); st.Picks != want {
		t.Errorf("Picks = %d, want %d", st.Picks, want)
	}
	if st.Index.BatchRequests != 2 || st.Index.BatchPoints != int64(2*len(points)) ||
		st.Index.IndexPicks != st.Picks {
		t.Errorf("index stats = %+v", st.Index)
	}
}

func TestStdinProtocol(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()

	var out bytes.Buffer
	in := strings.NewReader(
		`{"op":"prepare","workload":{"tables":4,"params":1,"shape":"chain","seed":21}}` + "\n" +
			`{"op":"stats"}` + "\n" +
			`{"op":"bogus"}` + "\n")
	if err := runStdin(context.Background(), s, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d response lines: %q", len(lines), out.String())
	}
	var prep prepareRespJS
	if err := json.Unmarshal([]byte(lines[0]), &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Key == "" || prep.Plans == 0 {
		t.Fatalf("prepare response %+v", prep)
	}

	// Use the key from the first round in a second stdin session
	// against the same server: the cache carries over.
	var out2 bytes.Buffer
	pick := fmt.Sprintf(`{"op":"pick","key":%q,"point":[0.5],"policy":"weighted","weights":[1,10000]}`, prep.Key)
	if err := runStdin(context.Background(), s, strings.NewReader(pick+"\n"), &out2); err != nil {
		t.Fatal(err)
	}
	var res pickRespJS
	if err := json.Unmarshal(out2.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Choices) != 1 || res.Choices[0].Plan == "" || len(res.Choices[0].Cost) != 2 {
		t.Fatalf("pick response %+v", res)
	}
	if !strings.Contains(lines[2], "unknown op") {
		t.Errorf("bogus op response = %q", lines[2])
	}
}

// TestHTTPEpsilonTiers: a template prepared exact and at ε = 0.05 over
// the HTTP protocol yields two distinct plan sets (the factor is part
// of the key), and an out-of-range factor is a 400.
func TestHTTPEpsilonTiers(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(newHandler(s))
	defer ts.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/prepare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	status, body := post(prepareLine)
	if status != http.StatusOK {
		t.Fatalf("exact prepare status %d: %s", status, body)
	}
	var exact prepareRespJS
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}

	status, body = post(`{"workload":{"tables":4,"params":1,"shape":"chain","seed":21},"epsilon":0.05}`)
	if status != http.StatusOK {
		t.Fatalf("epsilon prepare status %d: %s", status, body)
	}
	var approx prepareRespJS
	if err := json.Unmarshal(body, &approx); err != nil {
		t.Fatal(err)
	}
	if approx.Key == exact.Key {
		t.Errorf("epsilon tier shares the exact tier's key %q", exact.Key)
	}
	if approx.Cached {
		t.Errorf("epsilon tier answered from the exact tier's cache entry")
	}
	// An explicit "epsilon":0 addresses the exact tier.
	status, body = post(`{"workload":{"tables":4,"params":1,"shape":"chain","seed":21},"epsilon":0}`)
	if status != http.StatusOK {
		t.Fatalf("explicit-zero prepare status %d: %s", status, body)
	}
	var zero prepareRespJS
	if err := json.Unmarshal(body, &zero); err != nil {
		t.Fatal(err)
	}
	if zero.Key != exact.Key || !zero.Cached {
		t.Errorf("explicit epsilon 0 response %+v, want cached key %q", zero, exact.Key)
	}

	if status, _ := post(`{"workload":{"tables":4,"params":1,"shape":"chain","seed":21},"epsilon":1.5}`); status != http.StatusBadRequest {
		t.Errorf("out-of-range epsilon status = %d, want 400", status)
	}
}
