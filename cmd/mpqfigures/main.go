// mpqfigures regenerates the data behind the paper's illustrative
// figures and examples: Figure 1 (Pareto frontiers of a Cloud query
// template at two parameter points), Example 2 (dominance relations),
// Figures 4-6 (the counter-examples of Table 1 / Section 4), and
// Figure 7 (relevance-region pruning of a parallel vs single-node
// join).
//
// Usage:
//
//	mpqfigures -fig all|1|4|5|6|7|ex2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 4, 5, 6, 7, ex2")
	flag.Parse()
	switch *fig {
	case "all":
		figure1()
		example2()
		figure4()
		figure5()
		figure6()
		figure7()
	case "1":
		figure1()
	case "ex2":
		example2()
	case "4":
		figure4()
	case "5":
		figure5()
	case "6":
		figure6()
	case "7":
		figure7()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) { fmt.Printf("\n================ %s ================\n", title) }

// figure1 rebuilds the Scenario-1 picture: the Pareto-optimal
// time/fees combinations of a preprocessed query template at two
// points of the (two-dimensional) parameter space.
func figure1() {
	header("Figure 1: Pareto plans of a Cloud template at two parameter points")
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 8e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a1", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 5e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a2", ParamIndex: 1}, HasIndex: true},
			{Name: "T3", Card: 2e6, TupleBytes: 100},
		},
		Edges: []catalog.JoinEdge{
			{A: 0, B: 1, Sel: 2e-7},
			{A: 1, B: 2, Sel: 5e-7},
		},
		NumParams: 2,
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("plan set: %d relevant plans\n", len(res.Plans))
	algebra := core.NewPWLAlgebra(ctx, 2)
	for _, point := range []geometry.Vector{{0.1, 0.2}, {0.7, 0.8}} {
		fmt.Printf("\nPareto front at x = %v (cf. Figure 1b/1c):\n", point)
		front := res.ParetoFrontAt(algebra, point)
		type row struct{ t, f float64 }
		rows := make([]row, 0, len(front))
		for _, info := range front {
			c := algebra.Eval(info.Cost, point)
			rows = append(rows, row{c[0], c[1]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
		for i, r := range rows {
			fmt.Printf("  p%d: time=%8.2fs fees=$%.6f\n", i+1, r.t, r.f)
		}
	}
}

// example2 prints the dominance relations of the paper's Example 2.
func example2() {
	header("Example 2: dominance and Pareto regions")
	space := geometry.Interval(0, 1)
	p1 := pwl.NewMulti(pwl.Linear(space, geometry.Vector{2}, 0), pwl.Constant(space, 3))
	p2 := pwl.NewMulti(pwl.Linear(space, geometry.Vector{1}, 0.5), pwl.Constant(space, 2))
	p3 := pwl.NewMulti(pwl.Linear(space, geometry.Vector{1}, 0.5), pwl.Constant(space, 2))
	ctx := geometry.NewContext()
	show := func(name string, polys []*geometry.Polytope) {
		fmt.Printf("  %s:", name)
		if len(polys) == 0 {
			fmt.Println(" empty")
			return
		}
		for _, p := range polys {
			lo, hi, ok := ctx.Vertices1D(p)
			if ok {
				fmt.Printf(" [%.2f, %.2f]", lo, hi)
			}
		}
		fmt.Println()
	}
	show("Dom(p2, p3)", pwl.Dom(ctx, p2, p3))
	show("Dom(p3, p2)", pwl.Dom(ctx, p3, p2))
	show("Dom(p2, p1) (p2 strictly dominates p1 for sigma > 0.5)", pwl.Dom(ctx, p2, p1))
	show("Dom(p1, p2)", pwl.Dom(ctx, p1, p2))
	fmt.Println("  => Pareto region of p1 is [0, 0.5]; {p1,p2} and {p1,p3} are Pareto plan sets")
}

func tabulate1D(res *core.Result, algebra core.Algebra, points []float64, dim int) {
	fmt.Printf("  %-14s Pareto plans\n", "x")
	for _, x := range points {
		vec := geometry.Vector{x}
		if dim == 2 {
			vec = geometry.Vector{x, x}
		}
		front := res.ParetoFrontAt(algebra, vec)
		fmt.Printf("  %-14.2f", x)
		for _, info := range front {
			fmt.Printf(" %s", info.Plan.Op)
		}
		fmt.Println()
	}
}

func staticOptimize(space *geometry.Polytope, alts []core.Alternative) (*core.Result, core.Algebra) {
	ctx := geometry.NewContext()
	lo, hi, _ := ctx.BoundingBox(space)
	schema := core.StaticSchema(space.Dim(), lo, hi)
	model := &core.StaticModel{ParamSpace: space, Metrics: []string{"m1", "m2"}, Plans: alts}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res, core.NewPWLAlgebra(ctx, 2)
}

// figure4 regenerates the M1 counter-example: a plan Pareto-optimal at
// two points but not between them.
func figure4() {
	header("Figure 4 (M1): Pareto at two points, dominated in between")
	space := geometry.Interval(0, 3)
	res, algebra := staticOptimize(space, []core.Alternative{
		{Op: "plan1", Cost: pwl.NewMulti(
			pwl.Linear(space, geometry.Vector{-1}, 2),
			pwl.Linear(space, geometry.Vector{1}, 0))},
		{Op: "plan2", Cost: pwl.NewMulti(
			pwl.Constant(space, 1),
			pwl.Constant(space, 2))},
	})
	tabulate1D(res, algebra, []float64{0, 0.5, 1.5, 2.5, 3}, 1)
	fmt.Println("  => plan2 is Pareto-optimal on [0,1) and (2,3] but not on [1,2]")
}

// figure5 regenerates the M2 counter-example: a non-convex Pareto
// region in a two-dimensional parameter space.
func figure5() {
	header("Figure 5 (M2): non-convex Pareto region")
	space := geometry.Box(geometry.Vector{0, 0}, geometry.Vector{2, 2})
	res, algebra := staticOptimize(space, []core.Alternative{
		{Op: "plan1", Cost: pwl.NewMulti(
			pwl.Linear(space, geometry.Vector{1, 0}, 0),
			pwl.Linear(space, geometry.Vector{0, 1}, 0))},
		{Op: "plan2", Cost: pwl.NewMulti(
			pwl.Constant(space, 1),
			pwl.Constant(space, 1))},
	})
	fmt.Printf("  %-14s Pareto plans\n", "(x1,x2)")
	for _, pt := range []geometry.Vector{{0.5, 0.5}, {1.5, 0.5}, {0.5, 1.5}, {1.5, 1.5}, {0.95, 0.95}} {
		front := res.ParetoFrontAt(algebra, pt)
		fmt.Printf("  (%.2f,%.2f)   ", pt[0], pt[1])
		for _, info := range front {
			fmt.Printf(" %s", info.Plan.Op)
		}
		fmt.Println()
	}
	fmt.Println("  => plan2's Pareto region is the square minus the unit box: not convex")
}

// figure6 regenerates the M3b counter-example: a plan Pareto-optimal
// strictly inside a region but on none of its vertices.
func figure6() {
	header("Figure 6 (M3b): Pareto inside, not on the vertices")
	space := geometry.Interval(0, 2)
	p3B := pwl.NewFunction(
		pwl.Piece{Region: geometry.Interval(0, 0.75), W: geometry.Vector{-2}, B: 2.5},
		pwl.Piece{Region: geometry.Interval(0.75, 1.25), W: geometry.Vector{0}, B: 1},
		pwl.Piece{Region: geometry.Interval(1.25, 2), W: geometry.Vector{2}, B: -1.5},
	)
	res, algebra := staticOptimize(space, []core.Alternative{
		{Op: "plan1", Cost: pwl.NewMulti(
			pwl.Linear(space, geometry.Vector{1}, 0),
			pwl.Linear(space, geometry.Vector{-1}, 2))},
		{Op: "plan2", Cost: pwl.NewMulti(
			pwl.Linear(space, geometry.Vector{-1}, 2),
			pwl.Linear(space, geometry.Vector{1}, 0))},
		{Op: "plan3", Cost: pwl.NewMulti(pwl.Constant(space, 1), p3B)},
	})
	tabulate1D(res, algebra, []float64{0, 0.25, 0.9, 1.1, 1.75, 2}, 1)
	fmt.Println("  => plan3 is Pareto-optimal on (0.5, 1.5) only; the vertices x=0, x=2 miss it")
}

// figure7 reproduces Example 3 / Figure 7: pruning the parallel join
// plan with the single-node join plan reduces its relevance region to
// [0.25, 1].
func figure7() {
	header("Figure 7: relevance region pruning (single-node vs parallel join)")
	space := geometry.Interval(0, 1)
	// Idealized costs of the paper's figure: plan1 (single-node) time
	// 4x, fees x; plan2 (parallel) time 1+... — we use the shapes of
	// Figure 7: time1 = 4x, time2 = 1 + 2x  (crossover x = 0.5... the
	// figure's crossover is 0.25 with time1 = 4x, time2 = x + 0.75).
	plan1 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{4}, 0), // single-node time
		pwl.Linear(space, geometry.Vector{1}, 0), // fees proportional to work
	)
	plan2 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{1}, 0.75), // parallel: startup + less slope
		pwl.Linear(space, geometry.Vector{2}, 0.5),  // fees always higher
	)
	ctx := geometry.NewContext()
	dom := pwl.Dom(ctx, plan1, plan2)
	fmt.Println("  RR of plan 2 after creation: [0.00, 1.00]")
	for _, p := range dom {
		lo, hi, ok := ctx.Vertices1D(p)
		if ok {
			fmt.Printf("  plan 1 dominates plan 2 on: [%.2f, %.2f]\n", lo, hi)
		}
	}
	res, algebra := staticOptimize(space, []core.Alternative{
		{Op: "single-node", Cost: plan1},
		{Op: "parallel", Cost: plan2},
	})
	_ = algebra
	for _, info := range res.Plans {
		if info.Plan.Op == "parallel" {
			pieces := info.RR.Pieces(ctx)
			fmt.Print("  RR of plan 2 after pruning with plan 1:")
			for _, p := range pieces {
				lo, hi, ok := ctx.Vertices1D(p)
				if ok {
					fmt.Printf(" [%.2f, %.2f]", lo, hi)
				}
			}
			fmt.Println()
		}
	}
}
