package mpq

import (
	"io"
	"time"

	"mpq/internal/baseline"
	"mpq/internal/bench"
	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/diagram"
	"mpq/internal/fleet"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
	"mpq/internal/sampled"
	"mpq/internal/selection"
	"mpq/internal/serve"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// Schema and statistics types.
type (
	// Schema describes a query: tables, predicates, join edges, and the
	// parameter space of unspecified selectivities.
	Schema = catalog.Schema
	// Table is a base table with cardinality and optional predicate.
	Table = catalog.Table
	// Predicate is an equality predicate with constant or parametric
	// selectivity.
	Predicate = catalog.Predicate
	// JoinEdge is a join predicate between two tables.
	JoinEdge = catalog.JoinEdge
	// TableID identifies a table within a schema.
	TableID = catalog.TableID
	// TableSet is a bitmask set of tables.
	TableSet = catalog.TableSet
)

// Geometry types.
type (
	// Vector is a point of the parameter space or a cost vector.
	Vector = geometry.Vector
	// Polytope is a convex polytope in H-representation.
	Polytope = geometry.Polytope
	// Halfspace is a linear inequality W·x <= B.
	Halfspace = geometry.Halfspace
	// Context carries numeric tolerances and LP counters. It is the
	// historical name of Solver.
	Context = geometry.Context
	// Solver performs geometric operations for one worker: shared
	// immutable SolverConfig plus per-worker scratch buffers and Stats.
	// Fork one per goroutine; see Options.Workers.
	Solver = geometry.Solver
	// SolverConfig is the immutable numeric configuration (tolerances,
	// iteration caps) shared by concurrent solvers.
	SolverConfig = geometry.Config
	// GeometryStats counts geometric work (solved LPs, simplex pivots).
	GeometryStats = geometry.Stats
)

// Piecewise-linear cost function types.
type (
	// PWLFunction is a single-objective piecewise-linear cost function.
	PWLFunction = pwl.Function
	// PWLMulti is a multi-objective piecewise-linear cost function.
	PWLMulti = pwl.Multi
	// PWLPiece is a linear piece of a PWL function.
	PWLPiece = pwl.Piece
)

// Optimizer types.
type (
	// Options configures an optimizer run.
	Options = core.Options
	// Result is a Pareto plan set with statistics.
	Result = core.Result
	// PlanInfo is a plan with cost function and relevance region.
	PlanInfo = core.PlanInfo
	// Stats summarizes optimizer work (plans created, LPs solved, ...).
	Stats = core.Stats
	// CostModel supplies operator alternatives with parametric costs.
	CostModel = core.CostModel
	// Alternative pairs an operator with its cost.
	Alternative = core.Alternative
	// Cost is an opaque cost function handled by an Algebra.
	Cost = core.Cost
	// Algebra abstracts cost operations, making RRPA generic.
	Algebra = core.Algebra
	// EpsilonAlgebra extends Algebra with the scaled dominance regions
	// the ε-approximate prune needs (Options.Epsilon > 0). PWLAlgebra
	// implements it.
	EpsilonAlgebra = core.EpsilonAlgebra
	// PWLAlgebra is the exact algebra for PWL cost functions
	// (PWL-RRPA).
	PWLAlgebra = core.PWLAlgebra
	// StaticModel is a cost model listing explicit plan alternatives.
	StaticModel = core.StaticModel
	// Plan is a query plan operator tree.
	Plan = plan.Node
	// RelevanceRegion is the parameter-space region for which a plan is
	// relevant.
	RelevanceRegion = region.Region
	// RegionOptions configures relevance-region refinements.
	RegionOptions = region.Options
)

// Cloud cost model types.
type (
	// CloudModel is the time/fees cost model of the paper's evaluation.
	CloudModel = cloud.Model
	// CloudConfig describes the simulated cluster and pricing.
	CloudConfig = cloud.Config
)

// Workload generation types.
type (
	// WorkloadConfig controls random query generation.
	WorkloadConfig = workload.Config
	// Shape is the join graph shape.
	Shape = workload.Shape
	// BenchConfig controls the Figure 12 experiment harness.
	BenchConfig = bench.Config
	// BenchSeries is one measured curve of the experiment.
	BenchSeries = bench.Series
	// SampledCost is an arbitrary cost closure for the generic
	// (non-PWL) algebra.
	SampledCost = sampled.Cost
	// SampledAlgebra under-approximates dominance by sampling.
	SampledAlgebra = sampled.Algebra
)

// Join graph shapes.
const (
	Chain  = workload.Chain
	Star   = workload.Star
	Cycle  = workload.Cycle
	Clique = workload.Clique
)

// Relevance-region emptiness strategies.
const (
	// StrategyBemporad is the paper's Algorithm 2 emptiness check via
	// convexity recognition of the cutout union.
	StrategyBemporad = region.StrategyBemporad
	// StrategyCoverDiff checks cutout coverage via region difference.
	StrategyCoverDiff = region.StrategyCoverDiff
)

// Optimize runs RRPA / PWL-RRPA and returns a Pareto plan set for the
// query (Algorithm 1 of the paper). Options.Workers selects the number
// of goroutines pulling runnable table sets from the pipelined
// dependency scheduler (0 = GOMAXPROCS, 1 = sequential); results and
// aggregate LP statistics are identical for every worker count.
// Options.Epsilon > 0 trades precision for speed: the returned set is
// an ε-approximate Pareto frontier — every dropped plan is within a
// (1+ε) cost factor of a kept one, on every metric, everywhere in the
// parameter space — and is typically much smaller than the exact set.
func Optimize(schema *Schema, model CostModel, opts Options) (*Result, error) {
	return core.Optimize(schema, model, opts)
}

// DefaultOptions mirrors the configuration of the paper's experiments:
// all Section 6.2 refinements enabled, Cartesian products postponed.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewContext returns a geometry context with default tolerances.
func NewContext() *Context { return geometry.NewContext() }

// NewSolver returns a geometry solver with the given configuration;
// zero fields take the defaults.
func NewSolver(cfg SolverConfig) *Solver { return geometry.NewSolver(cfg) }

// NewPWLAlgebra returns the exact PWL cost algebra with sum
// accumulation over the given number of metrics.
func NewPWLAlgebra(ctx *Context, metrics int) *PWLAlgebra {
	return core.NewPWLAlgebra(ctx, metrics)
}

// NewCloudModel builds the cloud cost model (execution time and
// monetary fees) over a schema.
func NewCloudModel(schema *Schema, cfg CloudConfig, ctx *Context) (*CloudModel, error) {
	return cloud.NewModel(schema, cfg, ctx)
}

// DefaultCloudConfig returns the EC2-style cluster model of the paper's
// evaluation.
func DefaultCloudConfig() CloudConfig { return cloud.DefaultConfig() }

// GenerateWorkload builds a random query following Steinbrunn et al.,
// the generator used by the paper's experiments.
func GenerateWorkload(cfg WorkloadConfig) (*Schema, error) { return workload.Generate(cfg) }

// RunBenchSeries executes one curve of the Figure 12 experiment.
func RunBenchSeries(cfg BenchConfig) (*BenchSeries, error) { return bench.RunSeries(cfg) }

// NewSampledAlgebra builds the grid-sampled cost algebra for arbitrary
// cost closures, demonstrating the generic RRPA of Section 5.
func NewSampledAlgebra(lo, hi Vector, cellsPerDim, metrics int) *SampledAlgebra {
	return sampled.NewAlgebra(lo, hi, cellsPerDim, metrics)
}

// Box returns the axis-aligned box polytope {x : lo <= x <= hi}.
func Box(lo, hi Vector) *Polytope { return geometry.Box(lo, hi) }

// Interval returns the one-dimensional polytope [lo, hi].
func Interval(lo, hi float64) *Polytope { return geometry.Interval(lo, hi) }

// LinearCost returns the single-metric cost function W·x + B on domain.
func LinearCost(domain *Polytope, w Vector, b float64) *PWLFunction {
	return pwl.Linear(domain, w, b)
}

// ConstantCost returns the constant single-metric cost function c.
func ConstantCost(domain *Polytope, c float64) *PWLFunction {
	return pwl.Constant(domain, c)
}

// MultiCost combines per-metric PWL functions into a multi-objective
// cost function.
func MultiCost(components ...*PWLFunction) *PWLMulti { return pwl.NewMulti(components...) }

// StaticSchema returns the one-pseudo-table schema used with
// StaticModel.
func StaticSchema(numParams int, lo, hi []float64) *Schema {
	return core.StaticSchema(numParams, lo, hi)
}

// EnumerateAllPlans generates every bushy plan without pruning — the
// exhaustive ground truth used to validate completeness (Theorem 3).
func EnumerateAllPlans(schema *Schema, model CostModel, algebra Algebra, postponeCartesian bool) []baseline.EnumPlan {
	return baseline.EnumerateAll(schema, model, algebra, postponeCartesian)
}

// Run-time plan selection types (the right half of the paper's
// Figure 2).
type (
	// Candidate is a plan available for run-time selection.
	Candidate = selection.Candidate
	// Choice is a selected plan with its cost vector.
	Choice = selection.Choice
	// Bound is an upper limit on one metric during selection.
	Bound = selection.Bound
	// PlanSet is a deserialized plan set.
	PlanSet = store.PlanSet
	// Diagram is a discretized plan/front map over the parameter space.
	Diagram = diagram.Diagram
)

// SavePlanSet serializes a Pareto plan set (plans, PWL cost functions,
// relevance regions) for later run-time use.
func SavePlanSet(w io.Writer, metrics []string, space *Polytope, plans []*PlanInfo) error {
	return store.Save(w, metrics, space, plans)
}

// SavePlanSetEpsilon is SavePlanSet for an ε-approximate plan set: the
// approximation factor the set was optimized with is recorded in the
// document, round-trips through LoadPlanSet (PlanSet.Epsilon), and
// keeps the tier addressable — an ε = 0 set serializes byte-identically
// to SavePlanSet.
func SavePlanSetEpsilon(w io.Writer, metrics []string, space *Polytope, plans []*PlanInfo, epsilon float64) error {
	return store.SaveIndexedEpsilon(w, metrics, space, plans, nil, epsilon)
}

// LoadPlanSet reads a serialized plan set.
func LoadPlanSet(r io.Reader) (*PlanSet, error) { return store.Load(r) }

// SelectionCandidates adapts a loaded plan set for the selection
// policies.
func SelectionCandidates(ps *PlanSet) []Candidate {
	out := make([]Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		out[i] = Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	return out
}

// SelectFrontier evaluates candidates at x and returns the Pareto
// frontier sorted by the first metric.
func SelectFrontier(candidates []Candidate, x Vector) []Choice {
	return selection.Frontier(candidates, x)
}

// SelectWeightedSum picks the plan minimizing the weighted metric sum.
func SelectWeightedSum(candidates []Candidate, x Vector, weights []float64) (Choice, error) {
	return selection.WeightedSum(candidates, x, weights)
}

// SelectMinimizeSubjectTo picks the plan minimizing one metric under
// upper bounds on others.
func SelectMinimizeSubjectTo(candidates []Candidate, x Vector, minimize int, bounds []Bound) (Choice, error) {
	return selection.MinimizeSubjectTo(candidates, x, minimize, bounds)
}

// Serving-layer types: the optimizer as a long-lived service
// (preprocessing and run time of the paper's Figure 2 behind one
// concurrent API).
type (
	// Server is a long-lived optimizer service: solver pool, plan-set
	// cache, bounded request queue.
	Server = serve.Server
	// ServeOptions configures a Server (pool size, queue depth,
	// optimizer configuration, persistence directory).
	ServeOptions = serve.Options
	// ServeTemplate describes a query template for Server.Prepare.
	ServeTemplate = serve.Template
	// ServeStats is a snapshot of a Server's counters.
	ServeStats = serve.Stats
	// PrepareResult reports the outcome of Server.Prepare.
	PrepareResult = serve.PrepareResult
	// PickRequest selects a plan from a prepared plan set.
	PickRequest = serve.PickRequest
	// PickResult is the response to a PickRequest.
	PickResult = serve.PickResult
	// PickBatchRequest selects plans for many parameter points against
	// one prepared plan set in a single request; points are sorted into
	// pick-index cells to amortize traversals.
	PickBatchRequest = serve.PickBatchRequest
	// PickBatchResult is the response to a PickBatchRequest, in request
	// point order.
	PickBatchResult = serve.PickBatchResult
	// PickPolicy selects the run-time preference policy of a pick.
	PickPolicy = serve.Policy
	// PickIndex is a point-location index over a plan set's parameter
	// space: leaves hold the candidates relevant in each cell, so picks
	// scan a cell's subset instead of every candidate.
	PickIndex = index.Index
	// PickIndexOptions tunes a pick-index build (leaf target, depth and
	// leaf bounds, build parallelism).
	PickIndexOptions = index.Options
	// ServeIndexStats is the pick-index slice of ServeStats.
	ServeIndexStats = serve.IndexStats
	// RefineStats is the anytime-refinement slice of ServeStats
	// (ServeOptions.RefineLadder).
	RefineStats = serve.RefineStats
)

// The run-time preference policies of a PickRequest.
const (
	PolicyFrontier          = serve.PolicyFrontier
	PolicyWeightedSum       = serve.PolicyWeightedSum
	PolicyMinimizeSubjectTo = serve.PolicyMinimizeSubjectTo
	PolicyLexicographic     = serve.PolicyLexicographic
)

// Serving-layer errors.
var (
	// ErrServeQueueFull reports that the server's bounded request queue
	// is at capacity; retry later.
	ErrServeQueueFull = serve.ErrQueueFull
	// ErrServerClosed reports a request after Server.Close.
	ErrServerClosed = serve.ErrServerClosed
	// ErrUnknownPlanSet reports a Pick for an unprepared key.
	ErrUnknownPlanSet = serve.ErrUnknownPlanSet
)

// NewServer starts a long-lived optimizer service: Prepare optimizes a
// template once, persists its Pareto plan set through the store format
// and caches it; Pick (and PickBatch) select plans for concrete
// parameter values against the cached set. With ServeOptions.Index,
// Prepare also builds a point-location pick index that turns each pick
// into a cell lookup, with byte-identical results to the linear scan.
// All methods are safe for concurrent use; see DESIGN.md, "Serving
// layer" and "Pick index".
func NewServer(opts ServeOptions) *Server { return serve.New(opts) }

// Fleet-serving types: the subsystem that lets a fleet of servers
// share preparations and survive real traffic — a memory-bounded
// cache, a shared plan-set store, HTTP peer fetches, and per-template
// admission control. See DESIGN.md, "Fleet serving".
type (
	// SharedPlanSetStore is the shared plan-set document store a fleet
	// of servers publishes to and consults before optimizing
	// (ServeOptions.Shared).
	SharedPlanSetStore = fleet.SharedStore
	// DirPlanSetStore is the concurrency-safe on-disk SharedPlanSetStore:
	// immutable content-addressed blobs behind an fsync'd manifest.
	DirPlanSetStore = fleet.DirStore
	// PlanSetPeers fetches prepared plan-set documents from sibling
	// servers over HTTP (ServeOptions.Peers).
	PlanSetPeers = fleet.PeerClient
	// ServeCacheStats is the memory-accounted plan-set cache's
	// accounting (admitted − evicted = resident).
	ServeCacheStats = fleet.CacheStats
	// ServeAdmissionStats reports the Prepare admission controller.
	ServeAdmissionStats = fleet.AdmissionStats
	// PeerStats counts peer-fetch traffic, including the resilience
	// counters (retries, breaker trips and skips, corrupt responses)
	// and each peer's circuit-breaker state.
	PeerStats = fleet.PeerStats
	// PeerOptions parameterizes a PlanSetPeers client: per-request
	// timeout, bounded retries with jittered exponential backoff, the
	// per-peer circuit breaker, and the response size limit. The zero
	// value selects production defaults.
	PeerOptions = fleet.PeerOptions
	// DonorPool lends idle goroutines to an optimizer run's split jobs
	// (Options.Donor; the serving layer implements it over its own
	// pool when ServeOptions.DonateWorkers is set).
	DonorPool = core.DonorPool
)

// PlanSetPath is the HTTP path prefix under which servers expose
// prepared plan-set documents to peers (GET <peer>/planset/<key>).
const PlanSetPath = fleet.PlanSetPath

// NewSharedDirStore opens (creating if needed) an on-disk shared
// plan-set store rooted at dir, for ServeOptions.Shared.
func NewSharedDirStore(dir string) (*DirPlanSetStore, error) { return fleet.NewDirStore(dir) }

// NewPlanSetPeers returns a peer client over the given base URLs, for
// ServeOptions.Peers. Zero timeout selects 5s per peer request; the
// default retry and circuit-breaker parameters apply (see PeerOptions
// and NewPlanSetPeersOptions to tune them).
func NewPlanSetPeers(peers []string, timeout time.Duration) *PlanSetPeers {
	return fleet.NewPeerClient(peers, timeout)
}

// NewPlanSetPeersOptions is NewPlanSetPeers with explicit resilience
// parameters: bounded retries with jittered exponential backoff, a
// per-peer circuit breaker (open after BreakerThreshold consecutive
// failures, half-open probe after BreakerCooldown), and a response
// size limit. A corrupt or oversized peer response degrades to a
// counted miss, never a poisoned cache entry.
func NewPlanSetPeersOptions(peers []string, opts PeerOptions) *PlanSetPeers {
	return fleet.NewPeerClientOptions(peers, opts)
}

// BuildPickIndex builds a point-location pick index over a loaded plan
// set, for embedding the run-time half without a Server: pass the
// index's leaf candidates to the selection policies instead of the full
// candidate set. For points *inside the plan set's parameter space*
// (ps.Space.ContainsPoint(x, 1e-9) — validate before selecting, as the
// Server does), results are byte-identical to scanning all candidates;
// the leaf views elide the per-candidate space test, so out-of-space
// points must not be routed through them. When Locate reports a point
// outside the index box, fall back to the full candidate scan.
func BuildPickIndex(s *Solver, ps *PlanSet, opts PickIndexOptions) (*PickIndex, error) {
	return index.Build(s, ps.Space, SelectionCandidates(ps), opts)
}

// FrontSizeDiagram maps Pareto-front cardinality over the parameter
// space.
func FrontSizeDiagram(plans *diagram.MultiSlice, lo, hi Vector, resolution int) (*Diagram, error) {
	return diagram.FrontSize(plans, lo, hi, resolution)
}

// WinnerDiagram maps the weighted-sum winning plan over the parameter
// space (a plan diagram in the sense of Reddy & Haritsa).
func WinnerDiagram(plans *diagram.MultiSlice, lo, hi Vector, resolution int, weights []float64) (*Diagram, error) {
	return diagram.Winner(plans, lo, hi, resolution, weights)
}

// DiagramPlans adapts (name, cost) pairs for diagram construction.
func DiagramPlans(names []string, costs []*PWLMulti) *diagram.MultiSlice {
	return &diagram.MultiSlice{Names: names, Costs: costs}
}
