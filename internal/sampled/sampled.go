// Package sampled provides a cost algebra over arbitrary (non-PWL) cost
// closures, demonstrating that RRPA is generic in the class of cost
// functions (Section 5 of the paper): the dynamic program only needs the
// dominance-region and accumulation operations supplied here.
//
// Dominance regions are under-approximated on a grid of parameter-space
// cells: a cell belongs to the returned dominance region only when
// dominance holds at all cell corners and the cell center. For cost
// functions that are monotone (or piecewise-monotone at the grid
// resolution) per cell, the check is exact; for adversarial functions it
// is a heuristic — under-approximating dominance errs on the side of
// keeping plans, preserving the completeness direction of Theorem 3
// while possibly keeping extra plans. The exact algebra for PWL cost
// functions lives in the core package (PWLAlgebra).
package sampled

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/geometry"
)

// Cost is an arbitrary vector-valued cost closure over the parameter
// space.
type Cost struct {
	F func(geometry.Vector) geometry.Vector
}

// Eval evaluates the closure.
func (c Cost) Eval(x geometry.Vector) geometry.Vector { return c.F(x) }

// Algebra implements core.Algebra for sampled cost closures.
type Algebra struct {
	// Lo and Hi bound the parameter box.
	Lo, Hi geometry.Vector
	// CellsPerDim is the dominance-sampling resolution.
	CellsPerDim int
	// Metrics is the number of cost metrics.
	Metrics int
}

// NewAlgebra builds a sampled algebra over the box [lo, hi].
func NewAlgebra(lo, hi geometry.Vector, cellsPerDim, metrics int) *Algebra {
	if cellsPerDim < 1 {
		cellsPerDim = 1
	}
	return &Algebra{Lo: lo.Clone(), Hi: hi.Clone(), CellsPerDim: cellsPerDim, Metrics: metrics}
}

// Accumulate implements core.Algebra: sub-plan and operator costs add
// up pointwise.
func (a *Algebra) Accumulate(step, c1, c2 core.Cost) core.Cost {
	fs, f1, f2 := toCost(step), toCost(c1), toCost(c2)
	return Cost{F: func(x geometry.Vector) geometry.Vector {
		return fs.F(x).Add(f1.F(x)).Add(f2.F(x))
	}}
}

// Fork implements core.ForkableAlgebra: the sampled algebra holds no
// solver state, so the same instance serves every worker of a parallel
// wavefront.
func (a *Algebra) Fork(*geometry.Solver) core.Algebra { return a }

// Eval implements core.Algebra.
func (a *Algebra) Eval(c core.Cost, x geometry.Vector) geometry.Vector {
	return toCost(c).F(x)
}

// Dom implements core.Algebra: the returned boxes cover cells where c1
// dominates c2 at all corners and the center.
func (a *Algebra) Dom(c1, c2 core.Cost) []*geometry.Polytope {
	f1, f2 := toCost(c1), toCost(c2)
	dim := len(a.Lo)
	var out []*geometry.Polytope
	idx := make([]int, dim)
	cellW := geometry.NewVector(dim)
	for i := 0; i < dim; i++ {
		cellW[i] = (a.Hi[i] - a.Lo[i]) / float64(a.CellsPerDim)
	}
	for {
		lo := geometry.NewVector(dim)
		hi := geometry.NewVector(dim)
		for i := 0; i < dim; i++ {
			lo[i] = a.Lo[i] + float64(idx[i])*cellW[i]
			hi[i] = lo[i] + cellW[i]
		}
		if a.cellDominated(f1, f2, lo, hi) {
			out = append(out, geometry.Box(lo, hi))
		}
		i := 0
		for ; i < dim; i++ {
			idx[i]++
			if idx[i] < a.CellsPerDim {
				break
			}
			idx[i] = 0
		}
		if i == dim {
			break
		}
	}
	return out
}

// cellDominated samples all corners and the center of the cell.
func (a *Algebra) cellDominated(f1, f2 Cost, lo, hi geometry.Vector) bool {
	dim := len(lo)
	n := 1 << uint(dim)
	check := func(x geometry.Vector) bool {
		v1, v2 := f1.F(x), f2.F(x)
		for m := range v1 {
			if v1[m] > v2[m]+1e-12 {
				return false
			}
		}
		return true
	}
	for mask := 0; mask < n; mask++ {
		x := geometry.NewVector(dim)
		for i := 0; i < dim; i++ {
			if mask&(1<<uint(i)) != 0 {
				x[i] = hi[i]
			} else {
				x[i] = lo[i]
			}
		}
		if !check(x) {
			return false
		}
	}
	center := lo.Add(hi).Scale(0.5)
	return check(center)
}

func toCost(c core.Cost) Cost {
	v, ok := c.(Cost)
	if !ok {
		panic(fmt.Sprintf("sampled: unsupported cost type %T", c))
	}
	return v
}

var _ core.Algebra = (*Algebra)(nil)
