package sampled

import (
	"math"
	"testing"

	"mpq/internal/core"
	"mpq/internal/geometry"
)

func TestDomBoxes(t *testing.T) {
	a := NewAlgebra(geometry.Vector{0}, geometry.Vector{1}, 8, 2)
	// c1 = (x, 1), c2 = (0.5, 1): c1 dominates where x <= 0.5.
	c1 := Cost{F: func(x geometry.Vector) geometry.Vector { return geometry.Vector{x[0], 1} }}
	c2 := Cost{F: func(x geometry.Vector) geometry.Vector { return geometry.Vector{0.5, 1} }}
	boxes := a.Dom(c1, c2)
	if len(boxes) != 4 {
		t.Fatalf("got %d cells, want 4 (half of 8)", len(boxes))
	}
	for _, b := range boxes {
		if !b.ContainsPoint(geometry.Vector{0.1}, 1e-9) && !b.ContainsPoint(geometry.Vector{0.4}, 1e-9) &&
			!b.ContainsPoint(geometry.Vector{0.2}, 1e-9) && !b.ContainsPoint(geometry.Vector{0.45}, 1e-9) {
			// every box must be within [0, 0.5]
			c, _, _ := geometry.NewContext().Chebyshev(b)
			if c[0] > 0.5 {
				t.Errorf("dominance cell centered at %v beyond crossover", c)
			}
		}
	}
}

func TestAccumulateAndEval(t *testing.T) {
	a := NewAlgebra(geometry.Vector{0}, geometry.Vector{1}, 4, 2)
	c1 := Cost{F: func(x geometry.Vector) geometry.Vector { return geometry.Vector{1, 2} }}
	c2 := Cost{F: func(x geometry.Vector) geometry.Vector { return geometry.Vector{x[0], 0} }}
	step := Cost{F: func(x geometry.Vector) geometry.Vector { return geometry.Vector{0.5, 0.5} }}
	acc := a.Accumulate(step, c1, c2)
	v := a.Eval(acc, geometry.Vector{0.25})
	want := geometry.Vector{1.75, 2.5}
	if !v.Equal(want, 1e-12) {
		t.Errorf("accumulated = %v, want %v", v, want)
	}
}

// TestGenericRRPAWithSampledCosts runs the generic RRPA end to end on
// nonlinear (quadratic/exponential) cost closures — the algorithm of
// Section 5 without the PWL specialization.
func TestGenericRRPAWithSampledCosts(t *testing.T) {
	space := geometry.Interval(0, 1)
	algebra := NewAlgebra(geometry.Vector{0}, geometry.Vector{1}, 16, 2)
	// Three plans with nonlinear costs:
	// pA: time = x^2,       fees = 3          (best time for small x)
	// pB: time = e^x - 1,   fees = 2          (cheaper, slower for x>~0)
	// pC: time = x^2 + 1,   fees = 4          (dominated by pA everywhere)
	alts := []core.Alternative{
		{Op: "pA", Cost: Cost{F: func(x geometry.Vector) geometry.Vector {
			return geometry.Vector{x[0] * x[0], 3}
		}}},
		{Op: "pB", Cost: Cost{F: func(x geometry.Vector) geometry.Vector {
			return geometry.Vector{math.Exp(x[0]) - 1, 2}
		}}},
		{Op: "pC", Cost: Cost{F: func(x geometry.Vector) geometry.Vector {
			return geometry.Vector{x[0]*x[0] + 1, 4}
		}}},
	}
	schema := core.StaticSchema(1, []float64{0}, []float64{1})
	model := &core.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
	opts := core.DefaultOptions()
	opts.Algebra = algebra
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	names := map[string]bool{}
	for _, p := range res.Plans {
		names[p.Plan.Op] = true
	}
	if !names["pA"] || !names["pB"] {
		t.Errorf("expected pA and pB in result, got %v", names)
	}
	if names["pC"] {
		t.Error("dominated pC survived")
	}
}
