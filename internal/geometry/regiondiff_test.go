package geometry

import (
	"math/rand"
	"testing"
)

func TestRegionDiffBasic1D(t *testing.T) {
	ctx := NewContext()
	x := Interval(0, 1)
	// Subtract [0, 0.25]: residual should be [0.25, 1].
	res := ctx.RegionDiff(x, []*Polytope{Interval(0, 0.25)})
	if len(res) != 1 {
		t.Fatalf("got %d pieces, want 1", len(res))
	}
	lo, hi, ok := ctx.Vertices1D(res[0])
	if !ok || !almostEqual(lo, 0.25, 1e-6) || !almostEqual(hi, 1, 1e-6) {
		t.Errorf("residual = [%v,%v], want [0.25,1]", lo, hi)
	}
}

func TestRegionDiffFullCover1D(t *testing.T) {
	ctx := NewContext()
	x := Interval(0, 1)
	// Two closed cutouts meeting at 0.5 cover the interval; the shared
	// boundary point must not be reported as a residual.
	cutouts := []*Polytope{Interval(0, 0.5), Interval(0.5, 1)}
	res := ctx.RegionDiff(x, cutouts)
	if len(res) != 0 {
		t.Fatalf("got %d residual pieces, want 0: %v", len(res), res)
	}
	if !ctx.UnionCovers(x, cutouts) {
		t.Error("UnionCovers = false, want true")
	}
}

func TestRegionDiffGapLeft(t *testing.T) {
	ctx := NewContext()
	x := Interval(0, 1)
	cutouts := []*Polytope{Interval(0, 0.4), Interval(0.6, 1)}
	if ctx.UnionCovers(x, cutouts) {
		t.Error("UnionCovers = true, want false (gap at (0.4,0.6))")
	}
	w := ctx.UncoveredWitness(x, cutouts)
	if w == nil {
		t.Fatal("no witness for uncovered gap")
	}
	c, _, ok := ctx.Chebyshev(w)
	if !ok {
		t.Fatal("witness empty")
	}
	if c[0] < 0.4-1e-6 || c[0] > 0.6+1e-6 {
		t.Errorf("witness center %v not inside gap", c)
	}
}

func TestRegionDiffFigure10(t *testing.T) {
	// Figure 10 of the paper: a triangular cutout is subtracted from a
	// square region; the residual is non-empty.
	ctx := NewContext()
	square := UnitBox(2)
	// Triangle with corners (0,1), (1,1), (0,0): y >= x region of square.
	triangle := UnitBox(2).With(Halfspace{W: Vector{1, -1}, B: 0}) // x - y <= 0
	res := ctx.RegionDiff(square, []*Polytope{triangle})
	if len(res) == 0 {
		t.Fatal("residual empty, want lower-right triangle")
	}
	// Residual must be the lower-right triangle x >= y; every residual
	// piece must satisfy x >= y on its Chebyshev center.
	for _, p := range res {
		c, _, ok := ctx.Chebyshev(p)
		if !ok {
			t.Fatal("residual piece empty")
		}
		if c[0] < c[1]-1e-6 {
			t.Errorf("residual center %v inside cutout", c)
		}
	}
	// Subtracting both triangles covers the square.
	lower := UnitBox(2).With(Halfspace{W: Vector{-1, 1}, B: 0}) // y <= x
	if !ctx.UnionCovers(square, []*Polytope{triangle, lower}) {
		t.Error("two triangles should cover the square")
	}
}

func TestRegionDiffEmptyPiece(t *testing.T) {
	ctx := NewContext()
	empty := UnitBox(2).With(Halfspace{W: Vector{1, 0}, B: -1})
	res := ctx.RegionDiff(empty, []*Polytope{UnitBox(2)})
	if len(res) != 0 {
		t.Errorf("empty minuend produced %d pieces", len(res))
	}
	// Subtracting nothing returns the region itself.
	res = ctx.RegionDiff(UnitBox(2), nil)
	if len(res) != 1 {
		t.Fatalf("got %d pieces, want 1", len(res))
	}
}

// TestRegionDiffProperties checks, on random instances, the defining
// properties of the region difference: (1) residual pieces lie inside P,
// (2) residual piece interiors avoid every cutout, (3) P is covered by
// residual pieces plus cutouts.
func TestRegionDiffProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ctx := NewContext()
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(2)
		p := UnitBox(dim)
		nCut := 1 + rng.Intn(3)
		cutouts := make([]*Polytope, 0, nCut)
		for k := 0; k < nCut; k++ {
			lo, hi := NewVector(dim), NewVector(dim)
			for i := 0; i < dim; i++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
			}
			cutouts = append(cutouts, Box(lo, hi))
		}
		res := ctx.RegionDiff(p, cutouts)
		for _, piece := range res {
			c, r, ok := ctx.Chebyshev(piece)
			if !ok || r <= ctx.RadiusTol {
				t.Fatalf("trial %d: thin piece survived (r=%v)", trial, r)
			}
			if !p.ContainsPoint(c, 1e-6) {
				t.Fatalf("trial %d: piece center %v outside P", trial, c)
			}
			for _, cut := range cutouts {
				if cut.ContainsPoint(c, -1e-9) { // strictly inside a cutout
					t.Fatalf("trial %d: piece center %v strictly inside cutout", trial, c)
				}
			}
		}
		// Coverage: P ⊆ cutouts ∪ residual pieces.
		all := append(append([]*Polytope{}, cutouts...), res...)
		if !ctx.UnionCovers(p, all) {
			t.Fatalf("trial %d: residual + cutouts do not cover P", trial)
		}
	}
}

func TestUnionConvex(t *testing.T) {
	ctx := NewContext()
	// Two halves of the unit square: union is convex (the square itself).
	left := Box(Vector{0, 0}, Vector{0.5, 1})
	right := Box(Vector{0.5, 0}, Vector{1, 1})
	u, convex := ctx.UnionConvex([]*Polytope{left, right})
	if !convex {
		t.Fatal("union of two halves of a square must be convex")
	}
	if !ctx.Equal(u, UnitBox(2)) {
		t.Errorf("union = %v, want unit square", u)
	}
	// An L-shape is not convex.
	bottom := Box(Vector{0, 0}, Vector{1, 0.5})
	leftCol := Box(Vector{0, 0}, Vector{0.5, 1})
	if _, convex := ctx.UnionConvex([]*Polytope{bottom, leftCol}); convex {
		t.Error("L-shaped union reported convex")
	}
	// Two disjoint boxes are not convex.
	a := Box(Vector{0, 0}, Vector{0.2, 0.2})
	b := Box(Vector{0.8, 0.8}, Vector{1, 1})
	if _, convex := ctx.UnionConvex([]*Polytope{a, b}); convex {
		t.Error("disjoint union reported convex")
	}
}

func TestUnionConvexDegenerate(t *testing.T) {
	ctx := NewContext()
	if _, convex := ctx.UnionConvex(nil); !convex {
		t.Error("empty union should be convex")
	}
	p := UnitBox(2)
	u, convex := ctx.UnionConvex([]*Polytope{p})
	if !convex || u != p {
		t.Error("singleton union should be the polytope itself")
	}
	// Nested polytopes: union is the outer one.
	inner := Box(Vector{0.2, 0.2}, Vector{0.4, 0.4})
	u, convex = ctx.UnionConvex([]*Polytope{p, inner})
	if !convex {
		t.Fatal("nested union must be convex")
	}
	if !ctx.Equal(u, p) {
		t.Errorf("nested union = %v, want unit box", u)
	}
}

func TestUnionConvex1DIntervals(t *testing.T) {
	ctx := NewContext()
	// Overlapping intervals: convex.
	u, convex := ctx.UnionConvex([]*Polytope{Interval(0, 0.6), Interval(0.4, 1)})
	if !convex {
		t.Fatal("overlapping intervals union must be convex")
	}
	lo, hi, _ := ctx.Vertices1D(u)
	if !almostEqual(lo, 0, 1e-6) || !almostEqual(hi, 1, 1e-6) {
		t.Errorf("union = [%v,%v], want [0,1]", lo, hi)
	}
	// Touching intervals: convex (closed sets share the point).
	if _, convex := ctx.UnionConvex([]*Polytope{Interval(0, 0.5), Interval(0.5, 1)}); !convex {
		t.Error("touching intervals union must be convex")
	}
	// Intervals with a gap: not convex.
	if _, convex := ctx.UnionConvex([]*Polytope{Interval(0, 0.4), Interval(0.6, 1)}); convex {
		t.Error("gapped intervals union reported convex")
	}
}
