package geometry

// UnionConvex recognizes whether the union of the given polytopes is
// convex, following the algorithm of Bemporad, Fukuda and Torrisi
// ("Convexity Recognition of the Union of Polyhedra", Computational
// Geometry 2001), cited as [6] by the paper and used by Theorem 5's
// emptiness check:
//
//  1. Build the envelope E: keep a constraint of some polytope iff it is
//     valid for (i.e. satisfied everywhere on) every other polytope. The
//     envelope always contains the union.
//  2. The union is convex iff E \ union is empty, in which case the union
//     equals E.
//
// The returned polytope is the union (=envelope) when convex is true.
// Emptiness of E \ union is decided up to lower-dimensional slivers,
// consistent with the rest of the package.
//
// The validity checks are evaluated polytope-major: all support values
// over one polytope q share a single phase-1 basis (see supportSolver),
// and constraints already invalidated by an earlier polytope are
// skipped. The set of linear programs solved — and hence Stats.LPs —
// is identical to the classical constraint-major loop with early exit.
//
// Degenerate inputs: an empty list yields (nil, true) — the union of zero
// polytopes is the empty set, which is convex; a single polytope is its
// own union.
func (s *Solver) UnionConvex(polys []*Polytope) (*Polytope, bool) {
	s.Stats.ConvexityChecks++
	switch len(polys) {
	case 0:
		return nil, true
	case 1:
		return polys[0], true
	}
	dim := polys[0].Dim()
	type candidate struct {
		owner int
		h     Halfspace
	}
	var cands []candidate
	for i, p := range polys {
		for _, h := range p.Constraints() {
			cands = append(cands, candidate{owner: i, h: h})
		}
	}
	valid := make([]bool, len(cands))
	for i := range valid {
		valid[i] = true
	}
	for qi, q := range polys {
		var ss *supportSolver
		for ci, c := range cands {
			if c.owner == qi || !valid[ci] {
				continue
			}
			if ss == nil {
				ss = s.newSupportSolver(q.hs, dim)
			}
			val, ok, unbounded := ss.Value(c.h.W)
			if unbounded {
				valid[ci] = false
				continue
			}
			if !ok {
				continue // q empty: vacuously valid
			}
			if val > c.h.B+1e-7 {
				valid[ci] = false
			}
		}
	}
	env := make([]Halfspace, 0, len(cands))
	for ci, c := range cands {
		if valid[ci] {
			env = append(env, c.h)
		}
	}
	e := NewPolytope(dim, env...)
	if s.UnionCovers(e, polys) {
		return e, true
	}
	return nil, false
}
