package geometry

// UnionConvex recognizes whether the union of the given polytopes is
// convex, following the algorithm of Bemporad, Fukuda and Torrisi
// ("Convexity Recognition of the Union of Polyhedra", Computational
// Geometry 2001), cited as [6] by the paper and used by Theorem 5's
// emptiness check:
//
//  1. Build the envelope E: keep a constraint of some polytope iff it is
//     valid for (i.e. satisfied everywhere on) every other polytope. The
//     envelope always contains the union.
//  2. The union is convex iff E \ union is empty, in which case the union
//     equals E.
//
// The returned polytope is the union (=envelope) when convex is true.
// Emptiness of E \ union is decided up to lower-dimensional slivers,
// consistent with the rest of the package.
//
// Degenerate inputs: an empty list yields (nil, true) — the union of zero
// polytopes is the empty set, which is convex; a single polytope is its
// own union.
func (ctx *Context) UnionConvex(polys []*Polytope) (*Polytope, bool) {
	ctx.Stats.ConvexityChecks++
	switch len(polys) {
	case 0:
		return nil, true
	case 1:
		return polys[0], true
	}
	dim := polys[0].Dim()
	var env []Halfspace
	for i, p := range polys {
		for _, h := range p.Constraints() {
			valid := true
			for j, q := range polys {
				if j == i {
					continue
				}
				val, ok, unbounded := ctx.SupportValue(q, h.W)
				if unbounded {
					valid = false
					break
				}
				if !ok {
					continue // q empty: vacuously valid
				}
				if val > h.B+1e-7 {
					valid = false
					break
				}
			}
			if valid {
				env = append(env, h)
			}
		}
	}
	e := NewPolytope(dim, env...)
	if ctx.UnionCovers(e, polys) {
		return e, true
	}
	return nil, false
}
