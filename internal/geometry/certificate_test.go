package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBallCertificate(t *testing.T) {
	ctx := NewContext()
	box := Box(Vector{0, 0}, Vector{1, 1})
	// A cut keeping well over half the box: certificate must fire.
	h := Halfspace{W: Vector{1, 0}, B: 0.9}
	if !ctx.BallCertifiesFullDim(box, h) {
		t.Error("certificate failed for a generous cut")
	}
	// A cut through the center: the ball of the box is halved — the
	// certificate is inconclusive or positive depending on margins, but
	// the cut IS full-dimensional; verify consistency with IsFullDim.
	h = Halfspace{W: Vector{1, 0}, B: 0.5}
	if ctx.BallCertifiesFullDim(box, h) {
		// fine — but then the cut must indeed be full-dim
		if !ctx.IsFullDim(box.With(h)) {
			t.Error("certificate fired for a thin cut")
		}
	}
	// A cut removing everything: certificate must NOT fire.
	h = Halfspace{W: Vector{1, 0}, B: -0.5}
	if ctx.BallCertifiesFullDim(box, h) {
		t.Error("certificate fired for an infeasible cut")
	}
	// A cut keeping only the boundary: must not fire.
	h = Halfspace{W: Vector{1, 0}, B: 0}
	if ctx.BallCertifiesFullDim(box, h) {
		t.Error("certificate fired for a boundary-only cut")
	}
}

// TestBallCertificateSoundness: whenever the certificate fires, the cut
// polytope must truly be full-dimensional.
func TestBallCertificateSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ctx := NewContext()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(3)
		lo, hi := NewVector(dim), NewVector(dim)
		for i := 0; i < dim; i++ {
			hi[i] = 0.5 + r.Float64()
		}
		base := Box(lo, hi)
		var hs []Halfspace
		for k := 0; k < 1+r.Intn(3); k++ {
			w := NewVector(dim)
			for i := range w {
				w[i] = r.Float64()*2 - 1
			}
			hs = append(hs, Halfspace{W: w, B: r.Float64()*2 - 0.5})
		}
		if ctx.BallCertifiesFullDim(base, hs...) {
			return ctx.IsFullDim(base.With(hs...))
		}
		return true // inconclusive is always fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestChebyshevMemoization(t *testing.T) {
	ctx := NewContext()
	p := Box(Vector{0}, Vector{2})
	before := ctx.Stats.LPs
	ctx.Chebyshev(p)
	mid := ctx.Stats.LPs
	ctx.Chebyshev(p)
	ctx.IsFullDim(p)
	after := ctx.Stats.LPs
	if mid == before {
		t.Fatal("first Chebyshev call did not solve an LP")
	}
	if after != mid {
		t.Errorf("repeat Chebyshev/IsFullDim solved %d extra LPs, want 0", after-mid)
	}
}

func TestSameFamilyDisjoint(t *testing.T) {
	fam := NewFamily("test")
	a := Interval(0, 0.5)
	b := Interval(0.5, 1)
	c := Interval(0, 1)
	a.MarkFamily(fam)
	b.MarkFamily(fam)
	if !SameFamilyDisjoint(a, b) {
		t.Error("same-family distinct cells not recognized")
	}
	if SameFamilyDisjoint(a, a) {
		t.Error("a polytope is not disjoint from itself")
	}
	if SameFamilyDisjoint(a, c) {
		t.Error("untagged polytope reported disjoint")
	}
	other := NewFamily("other")
	d := Interval(0.2, 0.3)
	d.MarkFamily(other)
	if SameFamilyDisjoint(a, d) {
		t.Error("different families reported disjoint")
	}
}

func TestSameHalfspace(t *testing.T) {
	a := Halfspace{W: Vector{1, 2}, B: 3}
	b := Halfspace{W: Vector{2, 4}, B: 6} // same after scaling
	c := Halfspace{W: Vector{1, 2}, B: 4}
	d := Halfspace{W: Vector{-1, -2}, B: -3} // flipped: different halfspace
	if !sameHalfspace(a, b) {
		t.Error("scaled duplicates not recognized")
	}
	if sameHalfspace(a, c) {
		t.Error("different bounds reported equal")
	}
	if sameHalfspace(a, d) {
		t.Error("flipped halfspace reported equal")
	}
	z1 := Halfspace{W: Vector{0, 0}, B: 1}
	z2 := Halfspace{W: Vector{0, 0}, B: 1}
	if !sameHalfspace(z1, z2) {
		t.Error("degenerate duplicates not recognized")
	}
}

func TestDedupDropsScaledDuplicates(t *testing.T) {
	p := NewPolytope(2,
		Halfspace{W: Vector{1, 0}, B: 1},
		Halfspace{W: Vector{2, 0}, B: 2},
		Halfspace{W: Vector{0.5, 0}, B: 0.5},
		Halfspace{W: Vector{0, 1}, B: 1},
	)
	if p.NumConstraints() != 2 {
		t.Errorf("got %d constraints, want 2", p.NumConstraints())
	}
}

// TestSlackBasisFastPath: LPs whose constraints all have non-negative
// bounds skip phase 1; correctness must be unaffected.
func TestSlackBasisFastPath(t *testing.T) {
	ctx := NewContext()
	// All bounds >= 0.
	res := ctx.Maximize(Vector{1, 1}, Box(Vector{0, 0}, Vector{1, 2}).Constraints())
	if res.Status != LPOptimal || !almostEqual(res.Value, 3, 1e-7) {
		t.Errorf("fast path: got %v %v, want optimal 3", res.Status, res.Value)
	}
	// Mixed bounds (negative lower bound => negative B rows).
	res = ctx.Maximize(Vector{-1, 0}, Box(Vector{-3, 1}, Vector{-1, 2}).Constraints())
	if res.Status != LPOptimal || !almostEqual(res.Value, 3, 1e-7) {
		t.Errorf("mixed path: got %v %v, want optimal 3", res.Status, res.Value)
	}
}
