package geometry

import (
	"fmt"
	"math"
	"strings"
)

// Halfspace is the set of solutions to the linear inequality W·x <= B.
// A halfspace with a zero weight vector is degenerate: it is either the
// whole space (B >= 0) or empty (B < 0).
type Halfspace struct {
	W Vector
	B float64
}

// NewHalfspace builds a halfspace W·x <= B.
func NewHalfspace(w Vector, b float64) Halfspace {
	return Halfspace{W: w.Clone(), B: b}
}

// Dim returns the dimension of the ambient space.
func (h Halfspace) Dim() int { return len(h.W) }

// Contains reports whether x satisfies the inequality within eps.
func (h Halfspace) Contains(x Vector, eps float64) bool {
	return h.W.Dot(x) <= h.B+eps
}

// Flip returns the halfspace describing the closed complement,
// W·x >= B, normalized to -W·x <= -B.
func (h Halfspace) Flip() Halfspace {
	return Halfspace{W: h.W.Scale(-1), B: -h.B}
}

// Normalize scales the inequality so that the weight vector has unit
// infinity norm, which keeps the simplex tableau well conditioned.
// Degenerate (zero-weight) halfspaces are returned unchanged.
func (h Halfspace) Normalize() Halfspace {
	m := h.W.NormInf()
	if m < 1e-300 {
		return h
	}
	return Halfspace{W: h.W.Scale(1 / m), B: h.B / m}
}

// IsTrivial reports whether the halfspace is satisfied by every point
// (zero weights and non-negative bound, within eps).
func (h Halfspace) IsTrivial(eps float64) bool {
	return h.W.IsZero(eps) && h.B >= -eps
}

// IsInfeasible reports whether the halfspace excludes every point
// (zero weights and negative bound beyond eps).
func (h Halfspace) IsInfeasible(eps float64) bool {
	return h.W.IsZero(eps) && h.B < -eps
}

// Equal reports whether h and g describe the same inequality after
// normalization, within eps.
func (h Halfspace) Equal(g Halfspace, eps float64) bool {
	hn, gn := h.Normalize(), g.Normalize()
	return hn.W.Equal(gn.W, eps) && math.Abs(hn.B-gn.B) <= eps
}

// String renders the halfspace as a linear inequality.
func (h Halfspace) String() string {
	var sb strings.Builder
	first := true
	for i, w := range h.W {
		if w == 0 {
			continue
		}
		if !first && w >= 0 {
			sb.WriteString(" + ")
		} else if w < 0 {
			if first {
				sb.WriteString("-")
			} else {
				sb.WriteString(" - ")
			}
			w = -w
		}
		if w == 1 {
			fmt.Fprintf(&sb, "x%d", i+1)
		} else {
			fmt.Fprintf(&sb, "%g*x%d", w, i+1)
		}
		first = false
	}
	if first {
		sb.WriteString("0")
	}
	fmt.Fprintf(&sb, " <= %g", h.B)
	return sb.String()
}
