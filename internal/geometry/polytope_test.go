package geometry

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxContainsPoint(t *testing.T) {
	p := Box(Vector{0, 0}, Vector{1, 2})
	cases := []struct {
		x    Vector
		want bool
	}{
		{Vector{0.5, 1}, true},
		{Vector{0, 0}, true},
		{Vector{1, 2}, true},
		{Vector{1.1, 1}, false},
		{Vector{0.5, -0.1}, false},
	}
	for _, c := range cases {
		if got := p.ContainsPoint(c.x, 1e-9); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestIntersectDedup(t *testing.T) {
	p := UnitBox(2)
	q := UnitBox(2)
	r := p.Intersect(q)
	if r.NumConstraints() != 4 {
		t.Errorf("intersection has %d constraints, want 4 (duplicates removed)", r.NumConstraints())
	}
}

func TestIsEmpty(t *testing.T) {
	ctx := NewContext()
	p := UnitBox(2)
	if ctx.IsEmpty(p) {
		t.Error("unit box reported empty")
	}
	q := p.With(Halfspace{W: Vector{1, 0}, B: -1}) // x <= -1 conflicts with x >= 0
	if !ctx.IsEmpty(q) {
		t.Error("infeasible polytope reported non-empty")
	}
	// A single point is not empty (but is lower-dimensional).
	pt := p.With(
		Halfspace{W: Vector{1, 0}, B: 0},
		Halfspace{W: Vector{0, 1}, B: 0},
	)
	if ctx.IsEmpty(pt) {
		t.Error("single point reported empty")
	}
	if ctx.IsFullDim(pt) {
		t.Error("single point reported full-dimensional")
	}
}

func TestChebyshev(t *testing.T) {
	ctx := NewContext()
	p := Box(Vector{0, 0}, Vector{2, 4})
	c, r, ok := ctx.Chebyshev(p)
	if !ok {
		t.Fatal("chebyshev failed on box")
	}
	if !almostEqual(r, 1, 1e-6) {
		t.Errorf("radius = %v, want 1", r)
	}
	if !almostEqual(c[0], 1, 1e-6) {
		t.Errorf("center x = %v, want 1", c[0])
	}
	if c[1] < 1-1e-6 || c[1] > 3+1e-6 {
		t.Errorf("center y = %v, want within [1,3]", c[1])
	}
}

func TestChebyshevUnbounded(t *testing.T) {
	ctx := NewContext()
	// Halfplane x >= 0 in 2D: unbounded inscribed balls.
	p := NewPolytope(2, Halfspace{W: Vector{-1, 0}, B: 0})
	_, r, ok := ctx.Chebyshev(p)
	if !ok {
		t.Fatal("chebyshev failed on halfplane")
	}
	if !math.IsInf(r, 1) {
		t.Errorf("radius = %v, want +Inf", r)
	}
}

func TestContains(t *testing.T) {
	ctx := NewContext()
	outer := Box(Vector{0, 0}, Vector{10, 10})
	inner := Box(Vector{2, 2}, Vector{3, 3})
	if !ctx.Contains(outer, inner) {
		t.Error("outer should contain inner")
	}
	if ctx.Contains(inner, outer) {
		t.Error("inner should not contain outer")
	}
	if !ctx.Contains(outer, outer) {
		t.Error("polytope should contain itself")
	}
	empty := inner.With(Halfspace{W: Vector{1, 0}, B: 0})
	if !ctx.Contains(inner, empty) {
		t.Error("everything contains the empty set")
	}
}

func TestEqual(t *testing.T) {
	ctx := NewContext()
	// Same square described two ways.
	a := Box(Vector{0, 0}, Vector{1, 1})
	b := UnitBox(2).With(Halfspace{W: Vector{1, 1}, B: 5}) // redundant extra constraint
	if !ctx.Equal(a, b) {
		t.Error("equal polytopes not recognized")
	}
	c := Box(Vector{0, 0}, Vector{1, 0.5})
	if ctx.Equal(a, c) {
		t.Error("different polytopes reported equal")
	}
}

func TestRemoveRedundant(t *testing.T) {
	ctx := NewContext()
	p := UnitBox(2).With(
		Halfspace{W: Vector{1, 1}, B: 10}, // redundant
		Halfspace{W: Vector{1, 0}, B: 5},  // redundant (x <= 1 tighter)
	)
	r := ctx.RemoveRedundant(p)
	if r.NumConstraints() != 4 {
		t.Errorf("got %d constraints, want 4; %v", r.NumConstraints(), r)
	}
	if !ctx.Equal(p, r) {
		t.Error("redundancy removal changed the set")
	}
}

func TestRemoveRedundantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := NewContext()
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(3)
		lo, hi := NewVector(dim), NewVector(dim)
		for i := 0; i < dim; i++ {
			hi[i] = 1 + rng.Float64()
		}
		p := Box(lo, hi)
		// Add random constraints, some cutting, some redundant.
		for k := 0; k < 6; k++ {
			w := NewVector(dim)
			for i := range w {
				w[i] = rng.Float64()*2 - 1
			}
			p = p.With(Halfspace{W: w, B: rng.Float64() * 3})
		}
		if ctx.IsEmpty(p) {
			continue
		}
		r := ctx.RemoveRedundant(p)
		if r.NumConstraints() > p.NumConstraints() {
			t.Fatalf("redundancy removal added constraints")
		}
		if !ctx.Equal(p, r) {
			t.Fatalf("trial %d: redundancy removal changed the set\np=%v\nr=%v", trial, p, r)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	ctx := NewContext()
	// Triangle x,y >= 0, x + y <= 2.
	p := NewPolytope(2,
		Halfspace{W: Vector{-1, 0}, B: 0},
		Halfspace{W: Vector{0, -1}, B: 0},
		Halfspace{W: Vector{1, 1}, B: 2},
	)
	lo, hi, ok := ctx.BoundingBox(p)
	if !ok {
		t.Fatal("bounding box failed")
	}
	if !lo.Equal(Vector{0, 0}, 1e-6) || !hi.Equal(Vector{2, 2}, 1e-6) {
		t.Errorf("bbox = %v..%v, want (0,0)..(2,2)", lo, hi)
	}
}

func TestVertices1D(t *testing.T) {
	ctx := NewContext()
	p := Interval(0.25, 1)
	lo, hi, ok := ctx.Vertices1D(p)
	if !ok || !almostEqual(lo, 0.25, 1e-7) || !almostEqual(hi, 1, 1e-7) {
		t.Errorf("Vertices1D = %v..%v ok=%v, want 0.25..1", lo, hi, ok)
	}
}

func TestSamplePointsInBox(t *testing.T) {
	pts := SamplePointsInBox(Vector{0, 0}, Vector{1, 1}, 3, 100)
	if len(pts) != 9 {
		t.Fatalf("got %d points, want 9", len(pts))
	}
	box := UnitBox(2)
	for _, p := range pts {
		if !box.ContainsPoint(p, 1e-9) {
			t.Errorf("sample %v outside box", p)
		}
	}
	// Cap respected.
	pts = SamplePointsInBox(Vector{0, 0, 0}, Vector{1, 1, 1}, 10, 50)
	if len(pts) > 50 {
		t.Errorf("cap exceeded: %d points", len(pts))
	}
	// Degenerate single point.
	pts = SamplePointsInBox(Vector{0.5}, Vector{0.5}, 1, 10)
	if len(pts) != 1 || !almostEqual(pts[0][0], 0.5, 1e-12) {
		t.Errorf("single-point sampling = %v", pts)
	}
}
