package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if !v.Add(w).Equal(Vector{5, 7, 9}, 0) {
		t.Error("Add wrong")
	}
	if !w.Sub(v).Equal(Vector{3, 3, 3}, 0) {
		t.Error("Sub wrong")
	}
	if !v.Scale(2).Equal(Vector{2, 4, 6}, 0) {
		t.Error("Scale wrong")
	}
	if v.NormInf() != 3 {
		t.Error("NormInf wrong")
	}
	if !almostEqual(Vector{3, 4}.Norm2(), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases memory")
	}
	if !(Vector{0, 1e-12}).IsZero(1e-9) {
		t.Error("IsZero wrong")
	}
	if (Vector{0, 1e-3}).IsZero(1e-9) {
		t.Error("IsZero accepted non-zero")
	}
	if v.String() != "(1, 2, 3)" {
		t.Errorf("String = %q", v.String())
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Dot did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestSolveLinearSystem(t *testing.T) {
	// 2x + y = 5, x - y = 1 => x = 2, y = 1.
	x, ok := SolveLinearSystem([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if !ok || !x.Equal(Vector{2, 1}, 1e-9) {
		t.Errorf("solution = %v ok=%v", x, ok)
	}
	// Singular system.
	if _, ok := SolveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system solved")
	}
	// Empty system.
	if _, ok := SolveLinearSystem(nil, nil); !ok {
		t.Error("empty system rejected")
	}
}

// TestSolveLinearSystemRoundTrip: random well-conditioned systems round
// trip A·x == b.
func TestSolveLinearSystemRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + int(abs64(seed))%4
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Float64()*4 - 2
			}
			a[i][i] += 5 // diagonally dominant => invertible
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*4 - 2
		}
		x, ok := SolveLinearSystem(a, b)
		if !ok {
			return false
		}
		for i := range a {
			s := 0.0
			for j := range a[i] {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHalfspaceBasics(t *testing.T) {
	h := Halfspace{W: Vector{2, 0}, B: 4}
	if !h.Contains(Vector{1, 7}, 0) || h.Contains(Vector{3, 0}, 0) {
		t.Error("Contains wrong")
	}
	f := h.Flip()
	if f.Contains(Vector{1, 0}, 0) || !f.Contains(Vector{3, 0}, 0) {
		t.Error("Flip wrong")
	}
	n := h.Normalize()
	if n.W.NormInf() != 1 || n.B != 2 {
		t.Errorf("Normalize = %v", n)
	}
	if h.Dim() != 2 {
		t.Error("Dim wrong")
	}
	if !(Halfspace{W: Vector{0, 0}, B: 1}).IsTrivial(1e-9) {
		t.Error("IsTrivial wrong")
	}
	if !(Halfspace{W: Vector{0, 0}, B: -1}).IsInfeasible(1e-9) {
		t.Error("IsInfeasible wrong")
	}
	if got := h.String(); got != "2*x1 <= 4" {
		t.Errorf("String = %q", got)
	}
	neg := Halfspace{W: Vector{-1, 1}, B: 0}
	if got := neg.String(); got != "-x1 + x2 <= 0" {
		t.Errorf("String = %q", got)
	}
	zero := Halfspace{W: Vector{0, 0}, B: 3}
	if got := zero.String(); got != "0 <= 3" {
		t.Errorf("String = %q", got)
	}
}

func TestHalfspaceEqual(t *testing.T) {
	a := Halfspace{W: Vector{1, 2}, B: 3}
	b := Halfspace{W: Vector{0.5, 1}, B: 1.5}
	if !a.Equal(b, 1e-9) {
		t.Error("scaled halfspaces not equal")
	}
	c := Halfspace{W: Vector{1, 2}, B: 3.1}
	if a.Equal(c, 1e-9) {
		t.Error("different halfspaces equal")
	}
}

func TestLPStatusString(t *testing.T) {
	for st, want := range map[LPStatus]string{
		LPOptimal:    "optimal",
		LPInfeasible: "infeasible",
		LPUnbounded:  "unbounded",
		LPMaxIter:    "max-iterations",
		LPStatus(99): "unknown",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestStatsAddString(t *testing.T) {
	a := Stats{LPs: 1, LPIterations: 2, RegionDiffs: 3, ConvexityChecks: 4}
	b := Stats{LPs: 10, LPIterations: 20, RegionDiffs: 30, ConvexityChecks: 40}
	a.Add(b)
	if a.LPs != 11 || a.LPIterations != 22 || a.RegionDiffs != 33 || a.ConvexityChecks != 44 {
		t.Errorf("Add = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func newTestRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// testRand is a tiny deterministic generator for property tests that
// need per-seed randomness without importing math/rand in helpers.
type testRand struct{ state uint64 }

func (r *testRand) Float64() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / (1 << 53)
}
