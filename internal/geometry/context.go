package geometry

import "fmt"

// Stats counts the work performed through a Solver. The LP counter is
// the quantity reported as "number of solved linear programs" in
// Figure 12 of the paper; linear programs resolved by the interval and
// point-probe fast paths (see fastpath.go) still count as solved LPs so
// the metric stays comparable across optimizer versions.
type Stats struct {
	// LPs is the number of linear programs solved.
	LPs int64
	// LPIterations is the total number of simplex pivots across all LPs.
	LPIterations int64
	// FastPathLPs is the subset of LPs resolved without running the
	// simplex (interval prescreens, point probes, closed-form boxes).
	FastPathLPs int64
	// RegionDiffs counts region-difference computations.
	RegionDiffs int64
	// ConvexityChecks counts union-convexity recognitions.
	ConvexityChecks int64
}

// Add accumulates other into s. It is the merge operation used to
// combine per-worker solver counters into the aggregate Figure 12
// quantities; integer addition makes the aggregate independent of how
// work was partitioned across workers — including the out-of-order
// task completion of a dependency-scheduled run, where workers plan
// masks of different cardinalities concurrently.
func (s *Stats) Add(other Stats) {
	s.LPs += other.LPs
	s.LPIterations += other.LPIterations
	s.FastPathLPs += other.FastPathLPs
	s.RegionDiffs += other.RegionDiffs
	s.ConvexityChecks += other.ConvexityChecks
}

// Sub subtracts other from s, for computing the counters of one run
// from cumulative solver totals.
func (s *Stats) Sub(other Stats) {
	s.LPs -= other.LPs
	s.LPIterations -= other.LPIterations
	s.FastPathLPs -= other.FastPathLPs
	s.RegionDiffs -= other.RegionDiffs
	s.ConvexityChecks -= other.ConvexityChecks
}

func (s Stats) String() string {
	return fmt.Sprintf("LPs=%d pivots=%d fastLPs=%d regionDiffs=%d convexityChecks=%d",
		s.LPs, s.LPIterations, s.FastPathLPs, s.RegionDiffs, s.ConvexityChecks)
}

// CompareEps is the shared comparison tolerance of the numeric layers:
// the default solver Eps, the relevance-region containment tolerance of
// the selection policies (selection.ContainsEps aliases it), the piece
// location tolerance of pwl evaluation, and the cell-exclusion margin
// of the point-location index all use this one constant, so a plan
// admitted by one layer is never rejected by another over a smaller
// epsilon. The mpqfloateq analyzer's approved-helper discipline refers
// to this constant: exact float ==/!= in the epsilon-disciplined
// packages must be replaced by comparisons against CompareEps-scaled
// margins (or carry an //mpq:floatexact waiver).
const CompareEps = 1e-9

// Config is the immutable numerical configuration of the geometry
// layer: tolerances and iteration caps. A Config carries no mutable
// state, so one value can be shared (by copy) between any number of
// concurrent Solvers.
type Config struct {
	// Eps is the basic numerical tolerance for comparisons against zero.
	Eps float64
	// RadiusTol is the Chebyshev-radius threshold below which a polytope
	// is treated as lower-dimensional ("thin") and therefore empty for
	// the purposes of cover checks. See DESIGN.md, "Emptiness with
	// tolerance".
	RadiusTol float64
	// MaxSimplexIter bounds the pivots of a single LP before the solver
	// switches from Dantzig to Bland's anti-cycling rule.
	MaxSimplexIter int
}

// DefaultConfig returns the default tolerances.
func DefaultConfig() Config {
	return Config{
		Eps:            CompareEps,
		RadiusTol:      1e-7,
		MaxSimplexIter: 500,
	}
}

// Solver performs the geometric operations (linear programs, emptiness
// tests, region differences) of one worker. It embeds the shared
// immutable Config and owns the simplex scratch buffers plus a local
// Stats block, so a Solver is cheap to call repeatedly but is NOT safe
// for concurrent use. To run several workers, Fork one Solver per
// worker and merge their Stats with Stats.Add afterwards; the per-
// polytope Chebyshev memo is internally synchronized, so concurrent
// Solvers may safely share Polytope values.
type Solver struct {
	// Config is the shared immutable configuration.
	Config
	// Stats accumulates this solver's counters.
	Stats Stats

	// Scratch buffers reused across the many small LPs of an optimizer
	// run (a Solver is single-threaded and LPs never nest).
	scratchTableau     tableau
	scratchRows        [][]float64
	scratchBasis       []int
	scratchBacking     []float64
	scratchObj1        []float64
	scratchObj2        []float64
	scratchSnapRows    []float64
	scratchSnapBasis   []int
	scratchLo          []float64
	scratchHi          []float64
	scratchProbe       []float64
	scratchHalfspaces  []Halfspace
	scratchChebBacking []float64
	scratchKeep        []bool
}

// Context is the historical name of Solver, kept as an alias so that
// existing call sites (and the public facade) keep compiling. New code
// should use Solver and fork one per worker.
type Context = Solver

// NewContext returns a Solver with default tolerances.
func NewContext() *Context { return NewSolver(DefaultConfig()) }

// NewSolver returns a Solver using the given configuration. Zero
// tolerances are replaced by the defaults.
func NewSolver(cfg Config) *Solver {
	def := DefaultConfig()
	if cfg.Eps == 0 { //mpq:floatexact zero-value Config sentinel meaning "use default", not a numeric comparison
		cfg.Eps = def.Eps
	}
	if cfg.RadiusTol == 0 { //mpq:floatexact zero-value Config sentinel meaning "use default", not a numeric comparison
		cfg.RadiusTol = def.RadiusTol
	}
	if cfg.MaxSimplexIter == 0 {
		cfg.MaxSimplexIter = def.MaxSimplexIter
	}
	return &Solver{Config: cfg}
}

// Fork returns a fresh Solver sharing s's configuration, with its own
// scratch buffers and zeroed Stats. The fork is independent of s and
// safe to use from another goroutine.
func (s *Solver) Fork() *Solver { return &Solver{Config: s.Config} }

// ResetStats zeroes the counters.
func (s *Solver) ResetStats() { s.Stats = Stats{} }

// DrainStats returns the accumulated counters and zeroes them, so a
// coordinator can merge per-worker counters into a run aggregate
// exactly once even when workers complete tasks out of order or are
// reused across phases. The caller must not race the solver's owner;
// drain at join points only.
func (s *Solver) DrainStats() Stats {
	st := s.Stats
	s.Stats = Stats{}
	return st
}
