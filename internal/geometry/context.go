package geometry

import "fmt"

// Stats counts the work performed through a Context. The LP counter is
// the quantity reported as "number of solved linear programs" in
// Figure 12 of the paper.
type Stats struct {
	// LPs is the number of linear programs solved.
	LPs int64
	// LPIterations is the total number of simplex pivots across all LPs.
	LPIterations int64
	// RegionDiffs counts region-difference computations.
	RegionDiffs int64
	// ConvexityChecks counts union-convexity recognitions.
	ConvexityChecks int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LPs += other.LPs
	s.LPIterations += other.LPIterations
	s.RegionDiffs += other.RegionDiffs
	s.ConvexityChecks += other.ConvexityChecks
}

func (s Stats) String() string {
	return fmt.Sprintf("LPs=%d pivots=%d regionDiffs=%d convexityChecks=%d",
		s.LPs, s.LPIterations, s.RegionDiffs, s.ConvexityChecks)
}

// Context carries numerical tolerances and work counters for geometric
// operations. A Context is not safe for concurrent use; create one per
// optimizer run.
type Context struct {
	// Eps is the basic numerical tolerance for comparisons against zero.
	Eps float64
	// RadiusTol is the Chebyshev-radius threshold below which a polytope
	// is treated as lower-dimensional ("thin") and therefore empty for
	// the purposes of cover checks. See DESIGN.md, "Emptiness with
	// tolerance".
	RadiusTol float64
	// MaxSimplexIter bounds the pivots of a single LP before the solver
	// switches from Dantzig to Bland's anti-cycling rule.
	MaxSimplexIter int
	// Stats accumulates counters.
	Stats Stats

	// Scratch buffers reused across the many small LPs of an optimizer
	// run (a Context is single-threaded and LPs never nest).
	scratchTableau tableau
	scratchRows    [][]float64
	scratchBasis   []int
	scratchBacking []float64
	scratchObj1    []float64
	scratchObj2    []float64
}

// NewContext returns a Context with default tolerances.
func NewContext() *Context {
	return &Context{
		Eps:            1e-9,
		RadiusTol:      1e-7,
		MaxSimplexIter: 500,
	}
}

// ResetStats zeroes the counters.
func (ctx *Context) ResetStats() { ctx.Stats = Stats{} }
