package geometry

// RegionDiff computes a set of convex polytopes whose union is the
// closure of P minus the union of the cutouts, up to lower-dimensional
// (thin) slivers: residual pieces with Chebyshev radius below
// Config.RadiusTol are dropped, because such pieces lie on the boundary of a
// closed cutout and are therefore covered by it. The returned pieces have
// pairwise disjoint interiors.
//
// This is the classical staircase subdivision used by parametric
// optimization toolkits: the first cutout splits P into at most
// len(C.Constraints()) pieces, each of which is recursively reduced by
// the remaining cutouts.
func (s *Solver) RegionDiff(p *Polytope, cutouts []*Polytope) []*Polytope {
	s.Stats.RegionDiffs++
	var out []*Polytope
	s.regionDiffRec(p, cutouts, func(res *Polytope) bool {
		out = append(out, res)
		return false
	})
	return out
}

// UnionCovers reports whether the union of the cutouts covers P up to
// lower-dimensional slivers. It is the early-exit form of RegionDiff.
func (s *Solver) UnionCovers(p *Polytope, cutouts []*Polytope) bool {
	s.Stats.RegionDiffs++
	covered := true
	s.regionDiffRec(p, cutouts, func(res *Polytope) bool {
		covered = false
		return true // stop at first witness
	})
	return covered
}

// UncoveredWitness returns a full-dimensional polytope inside P that is
// disjoint from all cutouts, or nil when the cutouts cover P.
func (s *Solver) UncoveredWitness(p *Polytope, cutouts []*Polytope) *Polytope {
	s.Stats.RegionDiffs++
	var witness *Polytope
	s.regionDiffRec(p, cutouts, func(res *Polytope) bool {
		witness = res
		return true
	})
	return witness
}

// regionDiffRec enumerates the full-dimensional pieces of
// piece \ union(cutouts) depth-first, invoking visit for each; visit
// returning true stops the enumeration. Returns whether enumeration was
// stopped. knownFullDim skips the entry check when the caller already
// certified the piece.
func (s *Solver) regionDiffRec(piece *Polytope, cutouts []*Polytope, visit func(*Polytope) bool) bool {
	return s.regionDiffRecKnown(piece, false, cutouts, visit)
}

func (s *Solver) regionDiffRecKnown(piece *Polytope, knownFullDim bool, cutouts []*Polytope, visit func(*Polytope) bool) bool {
	if !knownFullDim && !s.IsFullDim(piece) {
		return false
	}
	if len(cutouts) == 0 {
		return visit(piece)
	}
	c := cutouts[0]
	rest := cutouts[1:]
	if !s.BallCertifiesFullDim(piece, c.Constraints()...) {
		inter := piece.Intersect(c)
		if !s.IsFullDim(inter) {
			// The cutout misses this piece (or only touches its
			// boundary).
			return s.regionDiffRecKnown(piece, true, rest, visit)
		}
	}
	// Staircase subdivision of piece \ c: for constraints h1..hk of c,
	// the pieces are piece ∩ !h1, piece ∩ h1 ∩ !h2, ... Each !hi is the
	// flipped (closed-complement) halfspace. Trivial constraints have an
	// empty complement and are skipped.
	base := piece
	for _, h := range c.Constraints() {
		if h.IsTrivial(1e-12) {
			continue
		}
		flipped := h.Flip()
		if s.BallCertifiesFullDim(base, flipped) {
			if s.regionDiffRecKnown(base.With(flipped), true, rest, visit) {
				return true
			}
		} else if outPiece := base.With(flipped); s.IsFullDim(outPiece) {
			if s.regionDiffRecKnown(outPiece, true, rest, visit) {
				return true
			}
		}
		base = base.With(h)
	}
	return false
}
