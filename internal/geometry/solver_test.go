package geometry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestForkIndependence: a fork shares the configuration but starts with
// zero counters and its own scratch, and solving on the fork leaves the
// parent's counters untouched.
func TestForkIndependence(t *testing.T) {
	parent := NewSolver(Config{Eps: 1e-10, RadiusTol: 1e-6, MaxSimplexIter: 123})
	parent.Maximize(Vector{1}, Interval(0, 1).Constraints())
	before := parent.Stats

	f := parent.Fork()
	if f.Config != parent.Config {
		t.Errorf("fork config = %+v, parent %+v", f.Config, parent.Config)
	}
	if f.Stats != (Stats{}) {
		t.Errorf("fork starts with nonzero stats: %+v", f.Stats)
	}
	f.Maximize(Vector{1, 0}, UnitBox(2).Constraints())
	if parent.Stats != before {
		t.Errorf("solving on the fork changed parent stats: %+v -> %+v", before, parent.Stats)
	}
	if f.Stats.LPs != 1 {
		t.Errorf("fork LPs = %d, want 1", f.Stats.LPs)
	}
}

// TestStatsAddSub: merging per-worker counters is plain field-wise
// integer arithmetic.
func TestStatsAddSub(t *testing.T) {
	a := Stats{LPs: 3, LPIterations: 10, FastPathLPs: 1, RegionDiffs: 2, ConvexityChecks: 4}
	b := Stats{LPs: 5, LPIterations: 7, FastPathLPs: 2, RegionDiffs: 1, ConvexityChecks: 6}
	sum := a
	sum.Add(b)
	want := Stats{LPs: 8, LPIterations: 17, FastPathLPs: 3, RegionDiffs: 3, ConvexityChecks: 10}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
	sum.Sub(b)
	if sum != a {
		t.Errorf("Sub = %+v, want %+v", sum, a)
	}
}

// TestConcurrentChebyshevMemo: many solvers racing on shared polytopes
// must agree on the memoized values and solve each polytope's LP
// exactly once in total. Run with -race to exercise the memo's
// synchronization.
func TestConcurrentChebyshevMemo(t *testing.T) {
	const nPolys, nWorkers = 40, 8
	base := NewContext()
	polys := make([]*Polytope, nPolys)
	for i := range polys {
		// Triangles (non-axis rows) so every solve takes the simplex.
		f := 1 + float64(i)/nPolys
		polys[i] = UnitBox(2).With(Halfspace{W: Vector{f, 1}, B: f})
	}
	solvers := make([]*Solver, nWorkers)
	for i := range solvers {
		solvers[i] = base.Fork()
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(s *Solver) {
			defer wg.Done()
			for _, p := range polys {
				s.Chebyshev(p)
			}
		}(solvers[w])
	}
	wg.Wait()

	var merged Stats
	for _, s := range solvers {
		merged.Add(s.Stats)
	}
	if merged.LPs != nPolys {
		t.Errorf("merged LPs = %d, want exactly one per polytope (%d)", merged.LPs, nPolys)
	}
	// Memo hits return identical values on every solver.
	check := base.Fork()
	for i, p := range polys {
		c, r, ok := check.Chebyshev(p)
		if !ok || r <= 0 {
			t.Fatalf("polytope %d: ok=%v r=%v", i, ok, r)
		}
		if !p.ContainsPoint(c, 1e-9) {
			t.Errorf("polytope %d: memoized center %v outside polytope", i, c)
		}
	}
	if check.Stats.LPs != 0 {
		t.Errorf("memo hits solved %d LPs, want 0", check.Stats.LPs)
	}
}

// TestScreenAgreesWithTableauOnTinyWeights: rows with weight norms at
// or below the solver tolerance are trivial (or degenerate-infeasible)
// for the tableau; the interval screens must not derive hard bounds
// from them. Regression test: a sub-Eps row like 1e-10*x <= -1e-10
// once made IsEmpty report infeasible for a system phase 1 accepts.
func TestScreenAgreesWithTableauOnTinyWeights(t *testing.T) {
	s := NewContext()
	p := &Polytope{dim: 2, hs: []Halfspace{
		{W: Vector{1e-10, 0}, B: -1e-10}, // trivial for the tableau (|W| <= Eps, B >= -Eps)
		{W: Vector{-1, 0}, B: -2},        // x0 >= 2
	}}
	if s.IsEmpty(p) {
		t.Fatal("IsEmpty = true for a feasible system (x0 >= 2)")
	}
	if res := s.FeasiblePoint(p.hs, 2); res.Status != LPOptimal {
		t.Fatalf("FeasiblePoint status = %v, want optimal", res.Status)
	}
	if res := s.Maximize(Vector{-1, 0}, p.hs); res.Status != LPOptimal || math.Abs(res.Value+2) > 1e-7 {
		t.Fatalf("Maximize = %v value %v, want optimal -2", res.Status, res.Value)
	}
	// The memoized Chebyshev must also see the system as feasible.
	if _, _, ok := s.Chebyshev(p); !ok {
		t.Fatal("Chebyshev reported empty for a feasible system")
	}
	// A degenerate-infeasible row must still make everything empty.
	bad := &Polytope{dim: 2, hs: []Halfspace{{W: Vector{1e-10, 0}, B: -1}}}
	if !s.IsEmpty(bad) {
		t.Fatal("IsEmpty = false for 0·x <= -1")
	}
}

// TestContainsConservativeOnMaxIter: an iteration-capped feasibility
// solve must not be treated as emptiness — Contains historically
// returned false (not contained) in that case, never true.
func TestContainsConservativeOnMaxIter(t *testing.T) {
	s := NewContext()
	s.MaxSimplexIter = 1 // hard cap = 50: force LPMaxIter on a nontrivial phase 1
	rng := rand.New(rand.NewSource(99))
	var q *Polytope
	for dim := 20; dim <= 60 && q == nil; dim += 10 {
		var hs []Halfspace
		for i := 0; i < 3*dim; i++ {
			w := NewVector(dim)
			for j := range w {
				w[j] = rng.Float64()*2 - 1
			}
			hs = append(hs, Halfspace{W: w, B: -rng.Float64()})
		}
		cand := &Polytope{dim: dim, hs: hs}
		probe := s.newSupportSolver(cand.hs, dim)
		probe.Empty()
		if probe.status == LPMaxIter {
			q = cand
		}
	}
	if q == nil {
		t.Fatal("could not construct an iteration-capped system")
	}
	if got := s.Contains(UnitBox(q.dim), q); got {
		t.Fatal("Contains = true on an iteration-capped solve; must stay conservative")
	}
}

// TestScreenSystemSoundness: the interval prescreen may only report
// infeasibility when the simplex agrees, and row dropping must not
// change feasibility or support values.
func TestScreenSystemSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	plain := NewContext() // uses screens like every solver; reference below disables dropping
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(3)
		lo, hi := NewVector(dim), NewVector(dim)
		for i := 0; i < dim; i++ {
			a, b := rng.Float64()*4-2, rng.Float64()*4-2
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		p := Box(lo, hi)
		for k := rng.Intn(4); k > 0; k-- {
			w := NewVector(dim)
			for i := range w {
				w[i] = rng.Float64()*2 - 1
			}
			p = p.With(Halfspace{W: w, B: rng.Float64()*2 - 0.7})
		}
		obj := NewVector(dim)
		for i := range obj {
			obj[i] = rng.Float64()*2 - 1
		}
		// Value-only path (with dropping) vs. vertex-preserving path.
		dropRes := plain.maximize(obj, p.Constraints(), true)
		fullRes := plain.maximize(obj, p.Constraints(), false)
		if dropRes.Status != fullRes.Status {
			t.Fatalf("trial %d: dropped rows changed status %v -> %v on %v",
				trial, fullRes.Status, dropRes.Status, p)
		}
		if fullRes.Status == LPOptimal && math.Abs(dropRes.Value-fullRes.Value) > 1e-6 {
			t.Fatalf("trial %d: dropped rows changed optimum %v -> %v on %v",
				trial, fullRes.Value, dropRes.Value, p)
		}
	}
}

// TestSupportSolverMatchesSupportValue: repeated queries against one
// snapshotted basis must reproduce the one-shot support values.
func TestSupportSolverMatchesSupportValue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewContext()
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(3)
		p := UnitBox(dim)
		for k := rng.Intn(3); k > 0; k-- {
			w := NewVector(dim)
			for i := range w {
				w[i] = rng.Float64()*2 - 1
			}
			p = p.With(Halfspace{W: w, B: rng.Float64()})
		}
		ss := s.newSupportSolver(p.Constraints(), dim)
		for q := 0; q < 4; q++ {
			obj := NewVector(dim)
			for i := range obj {
				obj[i] = rng.Float64()*2 - 1
			}
			got, gotOK, gotUnb := ss.Value(obj)
			want, wantOK, wantUnb := s.SupportValue(p, obj)
			if gotOK != wantOK || gotUnb != wantUnb {
				t.Fatalf("trial %d query %d: (ok,unb)=(%v,%v), want (%v,%v)",
					trial, q, gotOK, gotUnb, wantOK, wantUnb)
			}
			if gotOK && math.Abs(got-want) > 1e-7 {
				t.Fatalf("trial %d query %d: value %v, want %v", trial, q, got, want)
			}
		}
	}
}

// TestChebyshevAxisAlignedMatchesLP: the closed-form ball of a box must
// match the simplex answer for the same geometry (forced through the
// LP by a redundant diagonal row, which disables the axis fast path
// but not the ball).
func TestChebyshevAxisAlignedMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(3)
		lo, hi := NewVector(dim), NewVector(dim)
		for i := 0; i < dim; i++ {
			a := rng.Float64()*4 - 2
			lo[i], hi[i] = a, a+0.1+rng.Float64()*3
		}
		sFast := NewContext()
		cFast, rFast, okFast := sFast.Chebyshev(Box(lo, hi))
		if !okFast {
			t.Fatalf("trial %d: box reported empty", trial)
		}
		if sFast.Stats.FastPathLPs != 1 {
			t.Fatalf("trial %d: box did not take the closed form (fastLPs=%d)",
				trial, sFast.Stats.FastPathLPs)
		}
		// Same box plus a far-away diagonal row: same ball, LP path.
		w := NewVector(dim)
		for i := range w {
			w[i] = 1
		}
		slack := Halfspace{W: w, B: w.Dot(hi) + 100}
		sLP := NewContext()
		_, rLP, okLP := sLP.Chebyshev(Box(lo, hi).With(slack))
		if !okLP {
			t.Fatalf("trial %d: LP box reported empty", trial)
		}
		if math.Abs(rFast-rLP) > 1e-7*(1+math.Abs(rLP)) {
			t.Fatalf("trial %d: closed-form radius %v, LP radius %v", trial, rFast, rLP)
		}
		if !Box(lo, hi).ContainsPoint(cFast, 1e-9) {
			t.Fatalf("trial %d: closed-form center %v outside box", trial, cFast)
		}
	}
}
