package geometry

import "math"

// LP fast paths: cheap prescreens run before the dense simplex. They
// only fire on conclusive evidence — every margin below is chosen so
// that borderline systems (within the solver tolerances) fall through
// to the simplex, keeping fast-path and simplex answers consistent.
//
// The screens work on the interval relaxation of the halfspace system:
// axis-aligned constraints (a single nonzero weight) induce per-variable
// bounds; general rows are then tested against the resulting bounding
// box via interval arithmetic. Because the box is a relaxation of the
// feasible set, "empty box" and "row violated everywhere on the box"
// are sound for infeasibility, and "row valid everywhere on the box" is
// sound for redundancy of that row. See DESIGN.md, "LP fast paths".

// fastMargin is the conclusiveness margin of the interval screens. It
// sits well above the simplex feasibility tolerance (1e-7 on normalized
// rows), so the screens never decide a system the simplex would
// consider borderline.
const fastMargin = 1e-6

// axisVar returns the index of the single nonzero weight of w, or -1
// when w has zero or more than one nonzero weight.
func axisVar(w Vector) int {
	idx := -1
	for j, v := range w {
		if v != 0 { //mpq:floatexact structural sparsity test on caller-provided weights; any nonzero entry counts, no tolerance is meaningful
			if idx >= 0 {
				return -1
			}
			idx = j
		}
	}
	return idx
}

// intervalBounds derives per-variable bounds from the axis-aligned rows
// of hs into the solver scratch. Missing bounds are ±Inf. Rows whose
// weight norm is within the solver tolerance are skipped: the tableau
// treats them as trivial or degenerate-infeasible (see newTableau), so
// deriving a hard bound from them would let the screens contradict the
// simplex.
func (s *Solver) intervalBounds(hs []Halfspace, dim int) (lo, hi []float64) {
	lo = growFloats(&s.scratchLo, dim)
	hi = growFloats(&s.scratchHi, dim)
	for i := 0; i < dim; i++ {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	for _, h := range hs {
		if h.W.NormInf() <= s.Eps {
			continue
		}
		j := axisVar(h.W)
		if j < 0 {
			continue
		}
		w := h.W[j]
		if w > 0 {
			if b := h.B / w; b < hi[j] {
				hi[j] = b
			}
		} else {
			if b := h.B / w; b > lo[j] {
				lo[j] = b
			}
		}
	}
	return lo, hi
}

// rowIntervalMin returns the minimum of w·x over the box [lo, hi]
// (-Inf when an unbounded direction contributes).
func rowIntervalMin(w Vector, lo, hi []float64) float64 {
	min := 0.0
	for j, v := range w {
		switch {
		case v > 0:
			min += v * lo[j]
		case v < 0:
			min += v * hi[j]
		}
	}
	return min
}

// rowIntervalMax returns the maximum of w·x over the box [lo, hi].
func rowIntervalMax(w Vector, lo, hi []float64) float64 {
	max := 0.0
	for j, v := range w {
		switch {
		case v > 0:
			max += v * hi[j]
		case v < 0:
			max += v * lo[j]
		}
	}
	return max
}

// boundScale is the magnitude scale of the finite interval bounds, used
// to make the screen margins relative.
func boundScale(lo, hi []float64) float64 {
	s := 1.0
	for i := range lo {
		if v := math.Abs(lo[i]); !math.IsInf(v, 1) && v > s {
			s = v
		}
		if v := math.Abs(hi[i]); !math.IsInf(v, 1) && v > s {
			s = v
		}
	}
	return s
}

// screenSystem runs the interval prescreens over the halfspace system.
// It reports conclusive infeasibility, or (when feasibility cannot be
// decided) a keep mask marking rows implied by the interval box — those
// may be dropped from the tableau without changing the feasible set. A
// nil mask keeps every row. The mask lives in solver scratch and is
// only valid until the next screen.
func (s *Solver) screenSystem(hs []Halfspace, dim int, dropImplied bool) (infeasible bool, keep []bool) {
	lo, hi := s.intervalBounds(hs, dim)
	scale := boundScale(lo, hi)
	tol := fastMargin * scale
	for i := 0; i < dim; i++ {
		if lo[i]-hi[i] > tol {
			return true, nil
		}
	}
	dropped := false
	if dropImplied {
		keep = growBools(&s.scratchKeep, len(hs))
	}
	for i, h := range hs {
		if dropImplied {
			keep[i] = true
		}
		if h.W.NormInf() <= s.Eps {
			continue // trivial or degenerate: the tableau decides
		}
		j := axisVar(h.W)
		if j >= 0 {
			if !dropImplied {
				continue
			}
			// Axis rows slacker than the derived bound are implied by
			// the (kept) tightest row of their direction.
			w := h.W[j]
			if w > 0 {
				if h.B/w > hi[j]+tol {
					keep[i] = false
					dropped = true
				}
			} else if h.B/w < lo[j]-tol {
				keep[i] = false
				dropped = true
			}
			continue
		}
		n := h.W.NormInf()
		min := rowIntervalMin(h.W, lo, hi)
		if min-h.B > tol*n {
			return true, nil // violated everywhere on the relaxation
		}
		if dropImplied && rowIntervalMax(h.W, lo, hi) <= h.B-tol*n {
			keep[i] = false // valid everywhere on the relaxation
			dropped = true
		}
	}
	if !dropped {
		return false, nil
	}
	return false, keep
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
