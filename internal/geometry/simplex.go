package geometry

import "math"

// LPStatus classifies the outcome of a linear program.
type LPStatus int

const (
	// LPOptimal means an optimal solution was found.
	LPOptimal LPStatus = iota
	// LPInfeasible means the constraint set is empty.
	LPInfeasible
	// LPUnbounded means the objective is unbounded above.
	LPUnbounded
	// LPMaxIter means the solver gave up after the iteration cap;
	// callers should treat the result conservatively.
	LPMaxIter
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	case LPMaxIter:
		return "max-iterations"
	}
	return "unknown"
}

// LPResult is the outcome of a linear program solve.
type LPResult struct {
	Status LPStatus
	// Value is the optimal objective value (for LPOptimal).
	Value float64
	// X is the optimizing point (for LPOptimal) or a feasible point
	// (for FeasiblePoint).
	X Vector
}

// Maximize solves
//
//	max  obj·x
//	s.t. h.W·x <= h.B  for every h in hs,
//
// with x free, using a dense two-phase simplex method. Degenerate
// halfspaces (zero weight vectors) are resolved directly. Every call
// increments ctx.Stats.LPs.
func (ctx *Context) Maximize(obj Vector, hs []Halfspace) LPResult {
	ctx.Stats.LPs++
	dim := len(obj)
	t, infeasible := newTableau(ctx, dim, hs)
	if infeasible {
		return LPResult{Status: LPInfeasible}
	}
	if st := t.phase1(); st != LPOptimal {
		return LPResult{Status: st}
	}
	st := t.phase2(obj)
	if st != LPOptimal {
		return LPResult{Status: st}
	}
	x := t.solution()
	return LPResult{Status: LPOptimal, Value: obj.Dot(x), X: x}
}

// FeasiblePoint returns a point satisfying all halfspaces, if one exists.
// It runs only phase 1 of the simplex method and counts as one LP.
func (ctx *Context) FeasiblePoint(hs []Halfspace, dim int) LPResult {
	ctx.Stats.LPs++
	t, infeasible := newTableau(ctx, dim, hs)
	if infeasible {
		return LPResult{Status: LPInfeasible}
	}
	if st := t.phase1(); st != LPOptimal {
		return LPResult{Status: st}
	}
	x := t.solution()
	return LPResult{Status: LPOptimal, X: x}
}

// tableau is a dense simplex tableau for the standard-form program
//
//	min c·y  s.t.  A y = b, y >= 0, b >= 0,
//
// derived from free variables x = u - v plus one slack per row and one
// artificial per row. Column layout: u(0..d-1), v(d..2d-1),
// s(2d..2d+m-1), artificials(2d+m..2d+2m-1).
type tableau struct {
	ctx   *Context
	dim   int
	m     int // active rows
	n     int // total columns (incl. artificials), excl. RHS
	noArt int // first artificial column
	nArt  int // number of artificial columns
	rows  [][]float64
	obj   []float64 // reduced costs, len n+1; [n] = -objective value
	basis []int
}

// newTableau builds the tableau, filtering degenerate halfspaces and
// normalizing rows in place. Scratch buffers on the Context are reused
// across LPs to keep allocation pressure low (Contexts are
// single-threaded; no LP nests inside another). infeasible is true when
// a degenerate constraint 0·x <= b with b < 0 is present.
//
// Rows with non-negative bounds start with their slack variable basic;
// only rows with negative bounds need an artificial variable. When no
// artificials are needed, phase 1 is skipped entirely.
func newTableau(ctx *Context, dim int, hs []Halfspace) (t *tableau, infeasible bool) {
	// Count usable rows and needed artificials first.
	m, nArt := 0, 0
	for _, h := range hs {
		if h.IsInfeasible(ctx.Eps) {
			return nil, true
		}
		if !h.IsTrivial(ctx.Eps) {
			m++
			if h.B < 0 {
				nArt++
			}
		}
	}
	noArt := 2*dim + m
	n := noArt + nArt
	t = &ctx.scratchTableau
	*t = tableau{ctx: ctx, dim: dim, m: m, n: n, noArt: noArt, nArt: nArt}
	t.rows = growRows(&ctx.scratchRows, m)
	t.basis = growInts(&ctx.scratchBasis, m)
	backing := growFloats(&ctx.scratchBacking, m*(n+1))
	for i := range backing {
		backing[i] = 0
	}
	i, art := 0, 0
	for _, h := range hs {
		if h.IsTrivial(ctx.Eps) {
			continue
		}
		row := backing[i*(n+1) : (i+1)*(n+1)]
		scale := 1.0
		if mInf := h.W.NormInf(); mInf > 1e-300 {
			scale = 1 / mInf
		}
		sign := scale
		if h.B < 0 {
			sign = -scale
		}
		for j := 0; j < dim; j++ {
			row[j] = sign * h.W[j]
			row[dim+j] = -sign * h.W[j]
		}
		if h.B < 0 {
			row[2*dim+i] = -1 // slack (sign-flipped row)
			row[noArt+art] = 1
			t.basis[i] = noArt + art
			art++
		} else {
			row[2*dim+i] = 1
			t.basis[i] = 2*dim + i // slack starts basic
		}
		row[n] = sign * h.B
		t.rows[i] = row
		i++
	}
	return t, false
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func growRows(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	return (*buf)[:n]
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// phase1 minimizes the sum of artificials. On success the artificials are
// driven out of the basis (redundant rows are deleted) and the tableau is
// feasible for phase 2.
func (t *tableau) phase1() LPStatus {
	if t.nArt == 0 {
		// All slacks basic with non-negative bounds: feasible as built.
		return LPOptimal
	}
	// Phase-1 objective: cost 1 on artificials. Reduced costs after
	// eliminating the basic artificial columns (rows whose basis entry
	// is an artificial).
	obj := growFloats(&t.ctx.scratchObj1, t.n+1)
	for i := range obj {
		obj[i] = 0
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.noArt {
			continue
		}
		for j := 0; j <= t.n; j++ {
			if j < t.noArt || j == t.n {
				obj[j] -= t.rows[i][j]
			}
		}
	}
	t.obj = obj
	st := t.iterate(false)
	if st == LPUnbounded {
		// Phase 1 is bounded below by 0; unbounded indicates a numerical
		// failure, treat as iteration cap.
		return LPMaxIter
	}
	if st != LPOptimal {
		return st
	}
	if -t.obj[t.n] > 1e-7 {
		return LPInfeasible
	}
	t.driveOutArtificials()
	return LPOptimal
}

// driveOutArtificials pivots basic artificials to structural columns or
// deletes redundant rows.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; {
		if t.basis[i] < t.noArt {
			i++
			continue
		}
		// Find a structural column with a nonzero entry.
		col := -1
		for j := 0; j < t.noArt; j++ {
			if math.Abs(t.rows[i][j]) > 1e-8 {
				col = j
				break
			}
		}
		if col >= 0 {
			t.pivot(i, col)
			i++
			continue
		}
		// Redundant row: delete it.
		t.rows[i] = t.rows[t.m-1]
		t.basis[i] = t.basis[t.m-1]
		t.rows = t.rows[:t.m-1]
		t.basis = t.basis[:t.m-1]
		t.m--
	}
}

// phase2 maximizes objX·x, i.e. minimizes -objX·(u-v).
func (t *tableau) phase2(objX Vector) LPStatus {
	obj := growFloats(&t.ctx.scratchObj2, t.n+1)
	for i := range obj {
		obj[i] = 0
	}
	for j := 0; j < t.dim; j++ {
		obj[j] = -objX[j]
		obj[t.dim+j] = objX[j]
	}
	// Eliminate basic columns from the objective row.
	for i := 0; i < t.m; i++ {
		c := obj[t.basis[i]]
		if c == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			obj[j] -= c * t.rows[i][j]
		}
	}
	t.obj = obj
	return t.iterate(true)
}

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration cap. Artificial columns are blocked from entering when
// blockArt is set (phase 2).
func (t *tableau) iterate(blockArt bool) LPStatus {
	eps := t.ctx.Eps
	maxIter := t.ctx.MaxSimplexIter
	if maxIter <= 0 {
		maxIter = 500
	}
	hardCap := 50 * maxIter
	bland := false
	for iter := 0; ; iter++ {
		if iter > maxIter {
			bland = true
		}
		if iter > hardCap {
			return LPMaxIter
		}
		t.ctx.Stats.LPIterations++
		limit := t.n
		if blockArt {
			limit = t.noArt
		}
		col := -1
		if bland {
			for j := 0; j < limit; j++ {
				if t.obj[j] < -eps {
					col = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < limit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					col = j
				}
			}
		}
		if col < 0 {
			return LPOptimal
		}
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a <= eps {
				continue
			}
			r := t.rows[i][t.n] / a
			if r < 0 {
				r = 0
			}
			if r < bestRatio-eps {
				bestRatio = r
				row = i
			} else if r < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row] {
				row = i // Bland tie-break on leaving variable
			}
		}
		if row < 0 {
			return LPUnbounded
		}
		t.pivot(row, col)
	}
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	p := t.rows[row][col]
	inv := 1 / p
	r := t.rows[row]
	for j := 0; j <= t.n; j++ {
		r[j] *= inv
	}
	r[col] = 1
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.n; j++ {
			ri[j] -= f * r[j]
		}
		ri[col] = 0
		if ri[t.n] < 0 && ri[t.n] > -1e-12 {
			ri[t.n] = 0
		}
	}
	f := t.obj[col]
	if f != 0 {
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * r[j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
}

// solution reads x = u - v from the basic variables.
func (t *tableau) solution() Vector {
	x := NewVector(t.dim)
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		val := t.rows[i][t.n]
		switch {
		case b < t.dim:
			x[b] += val
		case b < 2*t.dim:
			x[b-t.dim] -= val
		}
	}
	return x
}
