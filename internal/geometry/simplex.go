package geometry

import "math"

// LPStatus classifies the outcome of a linear program.
type LPStatus int

const (
	// LPOptimal means an optimal solution was found.
	LPOptimal LPStatus = iota
	// LPInfeasible means the constraint set is empty.
	LPInfeasible
	// LPUnbounded means the objective is unbounded above.
	LPUnbounded
	// LPMaxIter means the solver gave up after the iteration cap;
	// callers should treat the result conservatively.
	LPMaxIter
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	case LPMaxIter:
		return "max-iterations"
	}
	return "unknown"
}

// LPResult is the outcome of a linear program solve.
type LPResult struct {
	Status LPStatus
	// Value is the optimal objective value (for LPOptimal).
	Value float64
	// X is the optimizing point (for LPOptimal) or a feasible point
	// (for FeasiblePoint).
	X Vector
}

// Maximize solves
//
//	max  obj·x
//	s.t. h.W·x <= h.B  for every h in hs,
//
// with x free, using a dense two-phase simplex method preceded by the
// interval prescreen of fastpath.go. Degenerate halfspaces (zero weight
// vectors) are resolved directly. Every call increments s.Stats.LPs,
// whether the simplex ran or a fast path concluded.
func (s *Solver) Maximize(obj Vector, hs []Halfspace) LPResult {
	// Row dropping is disabled so the returned vertex is the exact
	// point the historical solver produced (callers read X).
	return s.maximize(obj, hs, false)
}

func (s *Solver) maximize(obj Vector, hs []Halfspace, dropImplied bool) LPResult {
	s.Stats.LPs++
	dim := len(obj)
	infeasible, keep := s.screenSystem(hs, dim, dropImplied)
	if infeasible {
		s.Stats.FastPathLPs++
		return LPResult{Status: LPInfeasible}
	}
	t, infeasible := newTableau(s, dim, hs, keep)
	if infeasible {
		return LPResult{Status: LPInfeasible}
	}
	if st := t.phase1(); st != LPOptimal {
		return LPResult{Status: st}
	}
	st := t.phase2(obj)
	if st != LPOptimal {
		return LPResult{Status: st}
	}
	x := t.solution()
	return LPResult{Status: LPOptimal, Value: obj.Dot(x), X: x}
}

// FeasiblePoint returns a point satisfying all halfspaces, if one exists.
// It runs only phase 1 of the simplex method and counts as one LP.
func (s *Solver) FeasiblePoint(hs []Halfspace, dim int) LPResult {
	s.Stats.LPs++
	infeasible, _ := s.screenSystem(hs, dim, false)
	if infeasible {
		s.Stats.FastPathLPs++
		return LPResult{Status: LPInfeasible}
	}
	t, infeasible := newTableau(s, dim, hs, nil)
	if infeasible {
		return LPResult{Status: LPInfeasible}
	}
	if st := t.phase1(); st != LPOptimal {
		return LPResult{Status: st}
	}
	x := t.solution()
	return LPResult{Status: LPOptimal, X: x}
}

// feasibleStatus decides feasibility of the system, status only. On top
// of the prescreens of FeasiblePoint it probes candidate points (box
// corners always satisfy axis-aligned systems), resolving many systems
// without touching the simplex. Counts as one LP.
func (s *Solver) feasibleStatus(hs []Halfspace, dim int) LPStatus {
	s.Stats.LPs++
	infeasible, keep := s.screenSystem(hs, dim, true)
	if infeasible {
		s.Stats.FastPathLPs++
		return LPInfeasible
	}
	if s.probeFeasible(hs, dim) {
		s.Stats.FastPathLPs++
		return LPOptimal
	}
	t, infeasible := newTableau(s, dim, hs, keep)
	if infeasible {
		return LPInfeasible
	}
	return t.phase1()
}

// probeFeasible tests a candidate point derived from the interval
// bounds (the box midpoint, with unbounded directions clamped) against
// every row. A satisfying point certifies feasibility; failure is
// inconclusive. intervalBounds scratch is still valid from the
// preceding screenSystem call.
func (s *Solver) probeFeasible(hs []Halfspace, dim int) bool {
	lo, hi := s.scratchLo, s.scratchHi
	if len(lo) != dim || len(hi) != dim {
		return false
	}
	x := growFloats(&s.scratchProbe, dim)
	for i := 0; i < dim; i++ {
		l, h := lo[i], hi[i]
		switch {
		case math.IsInf(l, -1) && math.IsInf(h, 1):
			x[i] = 0
		case math.IsInf(l, -1):
			x[i] = h
		case math.IsInf(h, 1):
			x[i] = l
		default:
			x[i] = (l + h) / 2
		}
	}
	for _, h := range hs {
		if h.W.Dot(x) > h.B {
			return false
		}
	}
	return true
}

// supportSolver answers repeated support-value queries (max obj·x over
// a fixed halfspace system) while running phase 1 only once: after the
// first query the feasible basis is snapshotted and every further query
// restores it and runs phase 2 alone. Each query still counts as one
// solved LP, so aggregate Stats.LPs is unchanged relative to solving
// every query from scratch.
//
// The snapshot lives in solver scratch: at most one supportSolver may
// be active per Solver at a time (queries of a second one would corrupt
// the first's snapshot). All current users (Contains, BoundingBox,
// UnionConvex) respect this by construction.
type supportSolver struct {
	s        *Solver
	hs       []Halfspace
	dim      int
	prepared bool
	status   LPStatus // preparation outcome: LPOptimal, LPInfeasible or LPMaxIter
	// Snapshot of the post-phase-1 tableau.
	m, n, noArt int
	rows        []float64 // m*(n+1) flattened
	basis       []int
}

func (s *Solver) newSupportSolver(hs []Halfspace, dim int) *supportSolver {
	return &supportSolver{s: s, hs: hs, dim: dim}
}

// prepare runs the prescreens and phase 1 once and snapshots the
// feasible basis. It does not count an LP by itself; the callers'
// queries do.
func (ss *supportSolver) prepare() {
	ss.prepared = true
	s := ss.s
	infeasible, keep := s.screenSystem(ss.hs, ss.dim, true)
	if infeasible {
		s.Stats.FastPathLPs++
		ss.status = LPInfeasible
		return
	}
	t, infeasible := newTableau(s, ss.dim, ss.hs, keep)
	if infeasible {
		ss.status = LPInfeasible
		return
	}
	if st := t.phase1(); st != LPOptimal {
		ss.status = st
		return
	}
	ss.status = LPOptimal
	ss.m, ss.n, ss.noArt = t.m, t.n, t.noArt
	ss.rows = growFloats(&s.scratchSnapRows, t.m*(t.n+1))
	for i := 0; i < t.m; i++ {
		copy(ss.rows[i*(t.n+1):(i+1)*(t.n+1)], t.rows[i])
	}
	ss.basis = growInts(&s.scratchSnapBasis, t.m)
	copy(ss.basis, t.basis)
}

// Empty reports whether the system is conclusively infeasible. Counts
// as one LP (it replaces a FeasiblePoint-based IsEmpty call). An
// iteration-capped preparation is NOT empty — the historical
// conservative behavior: callers proceed and their value queries
// report ok=false.
func (ss *supportSolver) Empty() bool {
	ss.s.Stats.LPs++
	if !ss.prepared {
		ss.prepare()
	}
	return ss.status == LPInfeasible
}

// Value solves max obj·x over the system, reusing the snapshotted
// feasible basis. Counts as one LP. The result semantics match
// Solver.SupportValue.
func (ss *supportSolver) Value(obj Vector) (val float64, ok bool, unbounded bool) {
	ss.s.Stats.LPs++
	if !ss.prepared {
		ss.prepare()
	}
	if ss.status != LPOptimal {
		return 0, false, false
	}
	t := ss.restore()
	st := t.phase2(obj)
	switch st {
	case LPOptimal:
		x := t.solution()
		return obj.Dot(x), true, false
	case LPUnbounded:
		return 0, false, true
	default:
		return 0, false, false
	}
}

// restore rebuilds the scratch tableau from the snapshot. The backing
// buffers may have been reused by unrelated solves in between; the
// snapshot is authoritative.
func (ss *supportSolver) restore() *tableau {
	s := ss.s
	t := &s.scratchTableau
	*t = tableau{ctx: s, dim: ss.dim, m: ss.m, n: ss.n, noArt: ss.noArt, nArt: ss.n - ss.noArt}
	t.rows = growRows(&s.scratchRows, ss.m)
	backing := growFloats(&s.scratchBacking, ss.m*(ss.n+1))
	copy(backing, ss.rows)
	for i := 0; i < ss.m; i++ {
		t.rows[i] = backing[i*(ss.n+1) : (i+1)*(ss.n+1)]
	}
	t.basis = growInts(&s.scratchBasis, ss.m)
	copy(t.basis, ss.basis)
	return t
}

// tableau is a dense simplex tableau for the standard-form program
//
//	min c·y  s.t.  A y = b, y >= 0, b >= 0,
//
// derived from free variables x = u - v plus one slack per row and one
// artificial per row. Column layout: u(0..d-1), v(d..2d-1),
// s(2d..2d+m-1), artificials(2d+m..2d+2m-1).
type tableau struct {
	ctx   *Solver
	dim   int
	m     int // active rows
	n     int // total columns (incl. artificials), excl. RHS
	noArt int // first artificial column
	nArt  int // number of artificial columns
	rows  [][]float64
	obj   []float64 // reduced costs, len n+1; [n] = -objective value
	basis []int
}

// newTableau builds the tableau, filtering degenerate halfspaces and
// normalizing rows in place. Scratch buffers on the Solver are reused
// across LPs to keep allocation pressure low (Solvers are
// single-threaded; no LP nests inside another). infeasible is true when
// a degenerate constraint 0·x <= b with b < 0 is present. A non-nil
// keep mask (index-aligned with hs) excludes rows the interval screen
// proved redundant.
//
// Rows with non-negative bounds start with their slack variable basic;
// only rows with negative bounds need an artificial variable. When no
// artificials are needed, phase 1 is skipped entirely.
func newTableau(ctx *Solver, dim int, hs []Halfspace, keep []bool) (t *tableau, infeasible bool) {
	// Count usable rows and needed artificials first.
	m, nArt := 0, 0
	for hi, h := range hs {
		if h.IsInfeasible(ctx.Eps) {
			return nil, true
		}
		if keep != nil && !keep[hi] {
			continue
		}
		if !h.IsTrivial(ctx.Eps) {
			m++
			if h.B < 0 {
				nArt++
			}
		}
	}
	noArt := 2*dim + m
	n := noArt + nArt
	t = &ctx.scratchTableau
	*t = tableau{ctx: ctx, dim: dim, m: m, n: n, noArt: noArt, nArt: nArt}
	t.rows = growRows(&ctx.scratchRows, m)
	t.basis = growInts(&ctx.scratchBasis, m)
	backing := growFloats(&ctx.scratchBacking, m*(n+1))
	for i := range backing {
		backing[i] = 0
	}
	i, art := 0, 0
	for hi, h := range hs {
		if keep != nil && !keep[hi] {
			continue
		}
		if h.IsTrivial(ctx.Eps) {
			continue
		}
		row := backing[i*(n+1) : (i+1)*(n+1)]
		scale := 1.0
		if mInf := h.W.NormInf(); mInf > 1e-300 {
			scale = 1 / mInf
		}
		sign := scale
		if h.B < 0 {
			sign = -scale
		}
		for j := 0; j < dim; j++ {
			row[j] = sign * h.W[j]
			row[dim+j] = -sign * h.W[j]
		}
		if h.B < 0 {
			row[2*dim+i] = -1 // slack (sign-flipped row)
			row[noArt+art] = 1
			t.basis[i] = noArt + art
			art++
		} else {
			row[2*dim+i] = 1
			t.basis[i] = 2*dim + i // slack starts basic
		}
		row[n] = sign * h.B
		t.rows[i] = row
		i++
	}
	return t, false
}

// The grow helpers resize a scratch buffer to exactly n elements,
// reallocating only when capacity is exceeded. The resized header is
// stored back so that code reading the scratch field directly (the
// interval fast paths) always sees the length of the most recent use.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growRows(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// phase1 minimizes the sum of artificials. On success the artificials are
// driven out of the basis (redundant rows are deleted) and the tableau is
// feasible for phase 2.
func (t *tableau) phase1() LPStatus {
	if t.nArt == 0 {
		// All slacks basic with non-negative bounds: feasible as built.
		return LPOptimal
	}
	// Phase-1 objective: cost 1 on artificials. Reduced costs after
	// eliminating the basic artificial columns (rows whose basis entry
	// is an artificial).
	obj := growFloats(&t.ctx.scratchObj1, t.n+1)
	for i := range obj {
		obj[i] = 0
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.noArt {
			continue
		}
		for j := 0; j <= t.n; j++ {
			if j < t.noArt || j == t.n {
				obj[j] -= t.rows[i][j]
			}
		}
	}
	t.obj = obj
	st := t.iterate(false)
	if st == LPUnbounded {
		// Phase 1 is bounded below by 0; unbounded indicates a numerical
		// failure, treat as iteration cap.
		return LPMaxIter
	}
	if st != LPOptimal {
		return st
	}
	if -t.obj[t.n] > 1e-7 {
		return LPInfeasible
	}
	t.driveOutArtificials()
	return LPOptimal
}

// driveOutArtificials pivots basic artificials to structural columns or
// deletes redundant rows.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; {
		if t.basis[i] < t.noArt {
			i++
			continue
		}
		// Find a structural column with a nonzero entry.
		col := -1
		for j := 0; j < t.noArt; j++ {
			if math.Abs(t.rows[i][j]) > 1e-8 {
				col = j
				break
			}
		}
		if col >= 0 {
			t.pivot(i, col)
			i++
			continue
		}
		// Redundant row: delete it.
		t.rows[i] = t.rows[t.m-1]
		t.basis[i] = t.basis[t.m-1]
		t.rows = t.rows[:t.m-1]
		t.basis = t.basis[:t.m-1]
		t.m--
	}
}

// phase2 maximizes objX·x, i.e. minimizes -objX·(u-v).
func (t *tableau) phase2(objX Vector) LPStatus {
	obj := growFloats(&t.ctx.scratchObj2, t.n+1)
	for i := range obj {
		obj[i] = 0
	}
	for j := 0; j < t.dim; j++ {
		obj[j] = -objX[j]
		obj[t.dim+j] = objX[j]
	}
	// Eliminate basic columns from the objective row.
	for i := 0; i < t.m; i++ {
		c := obj[t.basis[i]]
		if c == 0 { //mpq:floatexact exact-zero skip: eliminating a zero coefficient is algebraically a no-op; a tolerance would alter the tableau
			continue
		}
		for j := 0; j <= t.n; j++ {
			obj[j] -= c * t.rows[i][j]
		}
	}
	t.obj = obj
	return t.iterate(true)
}

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration cap. Artificial columns are blocked from entering when
// blockArt is set (phase 2).
func (t *tableau) iterate(blockArt bool) LPStatus {
	eps := t.ctx.Eps
	maxIter := t.ctx.MaxSimplexIter
	if maxIter <= 0 {
		maxIter = 500
	}
	hardCap := 50 * maxIter
	bland := false
	for iter := 0; ; iter++ {
		if iter > maxIter {
			bland = true
		}
		if iter > hardCap {
			return LPMaxIter
		}
		t.ctx.Stats.LPIterations++
		limit := t.n
		if blockArt {
			limit = t.noArt
		}
		col := -1
		if bland {
			for j := 0; j < limit; j++ {
				if t.obj[j] < -eps {
					col = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < limit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					col = j
				}
			}
		}
		if col < 0 {
			return LPOptimal
		}
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a <= eps {
				continue
			}
			r := t.rows[i][t.n] / a
			if r < 0 {
				r = 0
			}
			if r < bestRatio-eps {
				bestRatio = r
				row = i
			} else if r < bestRatio+eps && row >= 0 && t.basis[i] < t.basis[row] {
				row = i // Bland tie-break on leaving variable
			}
		}
		if row < 0 {
			return LPUnbounded
		}
		t.pivot(row, col)
	}
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	p := t.rows[row][col]
	inv := 1 / p
	r := t.rows[row]
	for j := 0; j <= t.n; j++ {
		r[j] *= inv
	}
	r[col] = 1
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 { //mpq:floatexact exact-zero skip: a zero multiplier makes the row update a no-op; a tolerance would alter the tableau
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.n; j++ {
			ri[j] -= f * r[j]
		}
		ri[col] = 0
		if ri[t.n] < 0 && ri[t.n] > -1e-12 {
			ri[t.n] = 0
		}
	}
	f := t.obj[col]
	if f != 0 { //mpq:floatexact exact-zero skip: a zero multiplier makes the objective update a no-op
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * r[j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
}

// solution reads x = u - v from the basic variables.
func (t *tableau) solution() Vector {
	x := NewVector(t.dim)
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		val := t.rows[i][t.n]
		switch {
		case b < t.dim:
			x[b] += val
		case b < 2*t.dim:
			x[b-t.dim] -= val
		}
	}
	return x
}
