package geometry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Polytope is a convex polyhedron in H-representation: the intersection
// of finitely many halfspaces W·x <= B (Figure 3 of the paper). A
// polytope with no constraints is the whole space R^dim. Polytopes are
// immutable: all operations return new values.
//
// The Chebyshev center computation is memoized per polytope. The memo
// is published through an atomic pointer and computed under a per-
// polytope mutex, so concurrent Solvers may share polytopes: exactly
// one solver performs the LP (and counts it), all others block and read
// the memo — the aggregate LP count is therefore independent of how
// work is scheduled. A cache hit does not count as a solved LP.
type Polytope struct {
	dim int
	hs  []Halfspace

	cheb   atomic.Pointer[chebMemo]
	chebMu sync.Mutex

	family *Family
}

// chebMemo is the immutable memoized Chebyshev result of a polytope.
type chebMemo struct {
	ok     bool
	center Vector
	radius float64
}

// Family identifies a partition of the parameter space: polytopes marked
// with the same family are asserted to have pairwise disjoint interiors
// (e.g. the simplices of one triangulation grid). Dominance-region
// computations use this to skip intersections that are lower-dimensional
// by construction.
type Family struct{ name string }

// NewFamily creates a partition family.
func NewFamily(name string) *Family { return &Family{name: name} }

// MarkFamily tags p as a cell of the partition family f. It must be
// called at construction time, before the polytope is shared; the caller
// asserts disjoint interiors with all other members of f.
func (p *Polytope) MarkFamily(f *Family) { p.family = f }

// SameFamilyDisjoint reports whether p and q are distinct cells of the
// same partition family, i.e. their intersection is lower-dimensional by
// construction.
func SameFamilyDisjoint(p, q *Polytope) bool {
	return p != q && p.family != nil && p.family == q.family
}

// NewPolytope builds a polytope in R^dim from the given halfspaces.
// Exact duplicate constraints are removed.
func NewPolytope(dim int, hs ...Halfspace) *Polytope {
	p := &Polytope{dim: dim, hs: dedupHalfspaces(hs)}
	return p
}

// Box returns the axis-aligned box {x : lo <= x <= hi} as a polytope.
func Box(lo, hi Vector) *Polytope {
	if len(lo) != len(hi) {
		panic("geometry: Box bounds with different dimensions")
	}
	dim := len(lo)
	hs := make([]Halfspace, 0, 2*dim)
	for i := 0; i < dim; i++ {
		w := NewVector(dim)
		w[i] = 1
		hs = append(hs, Halfspace{W: w, B: hi[i]})
		wn := NewVector(dim)
		wn[i] = -1
		hs = append(hs, Halfspace{W: wn, B: -lo[i]})
	}
	return &Polytope{dim: dim, hs: hs}
}

// UnitBox returns [0,1]^dim.
func UnitBox(dim int) *Polytope {
	lo, hi := NewVector(dim), NewVector(dim)
	for i := range hi {
		hi[i] = 1
	}
	return Box(lo, hi)
}

// Interval returns the one-dimensional polytope [lo, hi].
func Interval(lo, hi float64) *Polytope {
	return Box(Vector{lo}, Vector{hi})
}

// Dim returns the dimension of the ambient space.
func (p *Polytope) Dim() int { return p.dim }

// Constraints returns the halfspaces defining p. The returned slice must
// not be modified.
func (p *Polytope) Constraints() []Halfspace { return p.hs }

// NumConstraints returns the number of stored halfspaces.
func (p *Polytope) NumConstraints() int { return len(p.hs) }

// Intersect returns the intersection of p and q.
//
// Both inputs uphold the package invariant that stored constraint lists
// are already deduplicated and free of trivial rows, so only q's rows
// are checked against p's (and each other) — a single allocation and no
// re-scan of p.
func (p *Polytope) Intersect(q *Polytope) *Polytope {
	if p.dim != q.dim {
		panic(fmt.Sprintf("geometry: intersect of polytopes with dims %d and %d", p.dim, q.dim))
	}
	hs := make([]Halfspace, len(p.hs), len(p.hs)+len(q.hs))
	copy(hs, p.hs)
	hs = appendDedup(hs, q.hs)
	return &Polytope{dim: p.dim, hs: hs}
}

// With returns p intersected with additional halfspaces.
func (p *Polytope) With(hs ...Halfspace) *Polytope {
	all := make([]Halfspace, len(p.hs), len(p.hs)+len(hs))
	copy(all, p.hs)
	all = appendDedup(all, hs)
	return &Polytope{dim: p.dim, hs: all}
}

// appendDedup appends the non-trivial members of extra to dst, skipping
// entries that duplicate (up to positive scaling) a constraint already
// present. dst is assumed deduplicated.
func appendDedup(dst, extra []Halfspace) []Halfspace {
	for _, h := range extra {
		if h.IsTrivial(1e-12) {
			continue
		}
		dup := false
		for _, k := range dst {
			if sameHalfspace(h, k) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, h)
		}
	}
	return dst
}

// ContainsPoint reports whether x satisfies all constraints within eps.
func (p *Polytope) ContainsPoint(x Vector, eps float64) bool {
	for _, h := range p.hs {
		if !h.Contains(x, eps) {
			return false
		}
	}
	return true
}

// String renders the polytope's constraints.
func (p *Polytope) String() string {
	if len(p.hs) == 0 {
		return fmt.Sprintf("R^%d", p.dim)
	}
	parts := make([]string, len(p.hs))
	for i, h := range p.hs {
		parts[i] = h.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// dedupHalfspaces removes exact duplicates (after normalization) and
// trivial constraints (satisfied by every point) while preserving order.
// It is a cheap syntactic reduction; semantic redundancy is removed by
// Solver.RemoveRedundant.
func dedupHalfspaces(hs []Halfspace) []Halfspace {
	if len(hs) <= smallDedup {
		return dedupSmall(hs)
	}
	seen := make(map[string]bool, len(hs))
	out := make([]Halfspace, 0, len(hs))
	key := make([]byte, 0, 128)
	for _, h := range hs {
		if h.IsTrivial(1e-12) {
			continue
		}
		n := h.Normalize()
		key = key[:0]
		for _, w := range n.W {
			key = appendFloatKey(key, w)
		}
		key = appendFloatKey(key, n.B)
		k := string(key)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, h)
	}
	return out
}

// smallDedup is the constraint count below which quadratic, allocation-
// free duplicate detection beats map-based hashing.
const smallDedup = 24

func dedupSmall(hs []Halfspace) []Halfspace {
	out := make([]Halfspace, 0, len(hs))
	for _, h := range hs {
		if h.IsTrivial(1e-12) {
			continue
		}
		dup := false
		for _, k := range out {
			if sameHalfspace(h, k) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}

// sameHalfspace compares two inequalities up to positive scaling without
// allocating: a and b describe the same halfspace iff a.W*|b|∞ equals
// b.W*|a|∞ (and likewise for the bounds).
func sameHalfspace(a, b Halfspace) bool {
	if len(a.W) != len(b.W) {
		return false
	}
	na, nb := a.W.NormInf(), b.W.NormInf()
	if na < 1e-300 || nb < 1e-300 {
		return na < 1e-300 && nb < 1e-300 && math.Abs(a.B-b.B) <= 1e-10
	}
	const eps = 1e-10
	scale := eps * (1 + na*nb)
	for i := range a.W {
		if math.Abs(a.W[i]*nb-b.W[i]*na) > scale {
			return false
		}
	}
	return math.Abs(a.B*nb-b.B*na) <= scale
}

// appendFloatKey encodes a float rounded to ~12 significant digits for
// duplicate detection.
func appendFloatKey(b []byte, v float64) []byte {
	// Quantize the mantissa so that values differing only in the last
	// couple of bits collide.
	bits := math.Float64bits(v) &^ 0x3F
	for i := 0; i < 8; i++ {
		b = append(b, byte(bits>>(8*i)))
	}
	return b
}

// IsEmpty reports whether p has no points at all (infeasible constraint
// set). Lower-dimensional polytopes are NOT empty by this predicate; use
// IsFullDim for the tolerance-based full-dimensionality test.
func (s *Solver) IsEmpty(p *Polytope) bool {
	return s.feasibleStatus(p.hs, p.dim) == LPInfeasible
}

// Chebyshev computes the Chebyshev center and radius of p: the center and
// radius of the largest inscribed ball. It returns ok=false when p is
// empty. When p is unbounded in a direction allowing arbitrarily large
// balls, radius is +Inf. Results are memoized on the polytope; the memo
// is safe against concurrent solvers and the underlying LP is solved
// (and counted) exactly once per polytope.
func (s *Solver) Chebyshev(p *Polytope) (center Vector, radius float64, ok bool) {
	if m := p.cheb.Load(); m != nil {
		return m.center, m.radius, m.ok
	}
	p.chebMu.Lock()
	defer p.chebMu.Unlock()
	if m := p.cheb.Load(); m != nil {
		return m.center, m.radius, m.ok
	}
	center, radius, ok = s.chebyshevUncached(p)
	p.cheb.Store(&chebMemo{ok: ok, center: center, radius: radius})
	return center, radius, ok
}

// chebPeek returns the memoized Chebyshev result without computing it.
func (p *Polytope) chebPeek() *chebMemo { return p.cheb.Load() }

func (s *Solver) chebyshevUncached(p *Polytope) (center Vector, radius float64, ok bool) {
	d := p.dim
	// Fast path: a clearly infeasible system needs no LP.
	if infeasible, _ := s.screenSystem(p.hs, d, false); infeasible {
		s.Stats.LPs++
		s.Stats.FastPathLPs++
		return nil, 0, false
	}
	// Fast path: for purely axis-aligned systems the Chebyshev ball has
	// a closed form — the interval box's midpoint and smallest half-
	// width. Only conclusive (clearly nonempty) boxes are taken; the
	// interval bounds are still valid from the screen above.
	if c, r, conclusive := s.chebyshevAxisAligned(p.hs, d); conclusive {
		s.Stats.LPs++
		s.Stats.FastPathLPs++
		return c, r, true
	}
	// Variables (x, r); maximize r subject to W·x + ||W||2 * r <= B and
	// r >= 0. The transformed system lives in solver scratch; newTableau
	// copies it before the next LP could reuse the buffer.
	hs := growHalfspaces(&s.scratchHalfspaces, len(p.hs)+1)
	backing := growFloats(&s.scratchChebBacking, (len(p.hs)+2)*(d+1))
	for i, h := range p.hs {
		w := Vector(backing[i*(d+1) : (i+1)*(d+1)])
		copy(w, h.W)
		w[d] = h.W.Norm2()
		hs[i] = Halfspace{W: w, B: h.B}
	}
	wr := Vector(backing[len(p.hs)*(d+1) : (len(p.hs)+1)*(d+1)])
	for i := range wr {
		wr[i] = 0
	}
	wr[d] = -1
	hs[len(p.hs)] = Halfspace{W: wr, B: 0} // r >= 0
	obj := Vector(backing[(len(p.hs)+1)*(d+1) : (len(p.hs)+2)*(d+1)])
	for i := range obj {
		obj[i] = 0
	}
	obj[d] = 1
	res := s.Maximize(obj, hs)
	switch res.Status {
	case LPInfeasible:
		return nil, 0, false
	case LPUnbounded:
		// Need any feasible point for the center.
		fp := s.FeasiblePoint(p.hs, d)
		if fp.Status != LPOptimal {
			return nil, 0, false
		}
		return fp.X, math.Inf(1), true
	case LPMaxIter:
		// Conservative: report feasible with unknown radius.
		fp := s.FeasiblePoint(p.hs, d)
		if fp.Status != LPOptimal {
			return nil, 0, false
		}
		return fp.X, 0, true
	}
	return Vector(res.X[:d]).Clone(), res.Value, true
}

// chebyshevAxisAligned computes the exact Chebyshev ball of a system
// whose rows are all axis-aligned (a box): the interval midpoint and
// the smallest half-width. conclusive is false when the system has a
// general row, or the box is borderline empty — those fall back to the
// LP. The caller must have just run screenSystem (interval scratch).
func (s *Solver) chebyshevAxisAligned(hs []Halfspace, dim int) (Vector, float64, bool) {
	for _, h := range hs {
		if h.W.NormInf() <= s.Eps {
			// The tableau treats these rows as trivial or degenerate-
			// infeasible (newTableau's IsTrivial/IsInfeasible); mirror it.
			if h.B < -s.Eps {
				return nil, 0, false // degenerate infeasible row: let the LP decide
			}
			continue
		}
		if axisVar(h.W) < 0 {
			return nil, 0, false
		}
	}
	lo, hi := s.scratchLo, s.scratchHi
	if len(lo) != dim {
		return nil, 0, false
	}
	radius := math.Inf(1)
	for i := 0; i < dim; i++ {
		if hw := (hi[i] - lo[i]) / 2; hw < radius {
			radius = hw
		}
	}
	if !math.IsInf(radius, 1) && radius <= fastMargin*boundScale(lo, hi) {
		// Thin or borderline-empty boxes keep the LP's tolerance
		// behavior.
		return nil, 0, false
	}
	c := NewVector(dim)
	for i := 0; i < dim; i++ {
		l, h := lo[i], hi[i]
		switch {
		case math.IsInf(l, -1) && math.IsInf(h, 1):
			c[i] = 0
		case math.IsInf(l, -1):
			c[i] = h - math.Max(radiusOr(radius, 1), 1)
		case math.IsInf(h, 1):
			c[i] = l + math.Max(radiusOr(radius, 1), 1)
		default:
			c[i] = (l + h) / 2
		}
	}
	return c, radius, true
}

// radiusOr returns r when finite, fallback otherwise.
func radiusOr(r, fallback float64) float64 {
	if math.IsInf(r, 1) {
		return fallback
	}
	return r
}

func growHalfspaces(buf *[]Halfspace, n int) []Halfspace {
	if cap(*buf) < n {
		*buf = make([]Halfspace, n)
	}
	return (*buf)[:n]
}

// IsFullDim reports whether p contains a ball of radius larger than
// s.RadiusTol, i.e. whether p is "meaningfully" full-dimensional. This
// is the emptiness predicate used by region difference and cover checks.
func (s *Solver) IsFullDim(p *Polytope) bool {
	_, r, ok := s.Chebyshev(p)
	return ok && r > s.RadiusTol
}

// BallCertifiesFullDim reports whether the (memoized) Chebyshev ball of
// base shrunk by the margins of the additional halfspaces certifies that
// base ∩ hs is full-dimensional, without solving an LP for the cut
// polytope: the ball of radius min(r, margins) around the center lies
// inside the intersection. A false result is inconclusive — callers fall
// back to IsFullDim on the cut polytope.
func (s *Solver) BallCertifiesFullDim(base *Polytope, hs ...Halfspace) bool {
	c, r, ok := s.Chebyshev(base)
	if !ok || math.IsInf(r, 1) {
		return false
	}
	for _, h := range hs {
		n := h.W.Norm2()
		if n < 1e-300 {
			if h.B < 0 {
				return false
			}
			continue
		}
		margin := (h.B - h.W.Dot(c)) / n
		if margin < r {
			r = margin
		}
		if r <= s.RadiusTol {
			return false
		}
	}
	return r > s.RadiusTol
}

// SupportValue returns max w·x over p. The boolean result is false when
// the maximum does not exist (empty polytope, unbounded direction, or
// solver failure); in that case bounded distinguishes emptiness
// (bounded=false means unbounded above).
func (s *Solver) SupportValue(p *Polytope, w Vector) (val float64, ok bool, unbounded bool) {
	res := s.maximize(w, p.hs, true)
	switch res.Status {
	case LPOptimal:
		return res.Value, true, false
	case LPUnbounded:
		return 0, false, true
	default:
		return 0, false, false
	}
}

// Contains reports whether q is a subset of p (within tolerance), by
// checking that every constraint of p is valid over q. An empty q is
// contained in everything. The support values over q share one phase-1
// basis (see supportSolver), so only the first of the up to
// len(p.hs)+1 linear programs pays the feasibility pivots.
func (s *Solver) Contains(p, q *Polytope) bool {
	// Fast rejection: if q's (memoized) Chebyshev center is known and
	// lies outside p, q cannot be a subset.
	if m := q.chebPeek(); m != nil && m.ok && !p.ContainsPoint(m.center, 1e-7) {
		return false
	}
	ss := s.newSupportSolver(q.hs, q.dim)
	if ss.Empty() {
		return true
	}
	for _, h := range p.hs {
		val, ok, unbounded := ss.Value(h.W)
		if unbounded {
			return false
		}
		if !ok {
			return false
		}
		if val > h.B+1e-7 {
			return false
		}
	}
	return true
}

// Equal reports whether p and q describe the same point set, by mutual
// containment.
func (s *Solver) Equal(p, q *Polytope) bool {
	return s.Contains(p, q) && s.Contains(q, p)
}

// RemoveRedundant returns a polytope describing the same set with
// semantically redundant constraints removed: a constraint is dropped
// when it is implied by the remaining ones. This is the first refinement
// of Section 6.2 of the paper.
func (s *Solver) RemoveRedundant(p *Polytope) *Polytope {
	if len(p.hs) <= 1 {
		return p
	}
	// Process constraints from the end so earlier (often domain) bounds
	// are preferentially kept; keep set shrinks as we go.
	kept := append([]Halfspace(nil), p.hs...)
	for i := len(kept) - 1; i >= 0; i-- {
		if len(kept) == 1 {
			break
		}
		rest := make([]Halfspace, 0, len(kept)-1)
		rest = append(rest, kept[:i]...)
		rest = append(rest, kept[i+1:]...)
		val, ok, unbounded := s.SupportValue(&Polytope{dim: p.dim, hs: rest}, kept[i].W)
		if unbounded {
			continue // constraint is binding
		}
		if !ok {
			// Rest is empty: everything redundant, keep a single
			// infeasible certificate set.
			continue
		}
		if val <= kept[i].B+s.Eps*10 {
			kept = rest
		}
	}
	return &Polytope{dim: p.dim, hs: kept}
}

// Vertices1D returns the endpoints of a one-dimensional polytope
// (interval), useful for rendering experiment output. ok is false when
// p is not one-dimensional, empty, or unbounded.
func (s *Solver) Vertices1D(p *Polytope) (lo, hi float64, ok bool) {
	if p.dim != 1 {
		return 0, 0, false
	}
	vhi, okHi, _ := s.SupportValue(p, Vector{1})
	vlo, okLo, _ := s.SupportValue(p, Vector{-1})
	if !okHi || !okLo {
		return 0, 0, false
	}
	return -vlo, vhi, true
}

// SamplePointsInBox returns a deterministic grid of points covering the
// bounding box [lo,hi], at most cap points, used for relevance points
// (third refinement of Section 6.2).
func SamplePointsInBox(lo, hi Vector, perDim, capTotal int) []Vector {
	dim := len(lo)
	if perDim < 1 {
		perDim = 1
	}
	total := 1
	for i := 0; i < dim; i++ {
		total *= perDim
		if total > capTotal {
			total = capTotal
			break
		}
	}
	pts := make([]Vector, 0, total)
	idx := make([]int, dim)
	for {
		x := NewVector(dim)
		for i := 0; i < dim; i++ {
			if perDim == 1 {
				x[i] = (lo[i] + hi[i]) / 2
			} else {
				x[i] = lo[i] + (hi[i]-lo[i])*float64(idx[i])/float64(perDim-1)
			}
		}
		pts = append(pts, x)
		if len(pts) >= capTotal {
			break
		}
		// Advance odometer.
		i := 0
		for ; i < dim; i++ {
			idx[i]++
			if idx[i] < perDim {
				break
			}
			idx[i] = 0
		}
		if i == dim {
			break
		}
	}
	return pts
}

// BoundingBox computes per-dimension bounds of p via 2*dim support LPs
// sharing one phase-1 basis. ok is false if p is empty or unbounded in
// some direction.
func (s *Solver) BoundingBox(p *Polytope) (lo, hi Vector, ok bool) {
	d := p.dim
	lo, hi = NewVector(d), NewVector(d)
	ss := s.newSupportSolver(p.hs, d)
	w := NewVector(d)
	for i := 0; i < d; i++ {
		w[i] = 1
		vhi, okHi, _ := ss.Value(w)
		w[i] = -1
		vlo, okLo, _ := ss.Value(w)
		w[i] = 0
		if !okHi || !okLo {
			return nil, nil, false
		}
		lo[i], hi[i] = -vlo, vhi
	}
	return lo, hi, true
}
