package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeSimple2D(t *testing.T) {
	ctx := NewContext()
	// max x + y s.t. x <= 2, y <= 3, x >= 0, y >= 0.
	p := Box(Vector{0, 0}, Vector{2, 3})
	res := ctx.Maximize(Vector{1, 1}, p.Constraints())
	if res.Status != LPOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if !almostEqual(res.Value, 5, 1e-7) {
		t.Errorf("value = %v, want 5", res.Value)
	}
	if !res.X.Equal(Vector{2, 3}, 1e-7) {
		t.Errorf("x = %v, want (2,3)", res.X)
	}
}

func TestMaximizeNegativeRegion(t *testing.T) {
	ctx := NewContext()
	// Region entirely in the negative orthant: [-5,-1]^2.
	p := Box(Vector{-5, -5}, Vector{-1, -1})
	res := ctx.Maximize(Vector{1, 1}, p.Constraints())
	if res.Status != LPOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if !almostEqual(res.Value, -2, 1e-7) {
		t.Errorf("value = %v, want -2", res.Value)
	}
	// Minimize x+y: maximize -(x+y).
	res = ctx.Maximize(Vector{-1, -1}, p.Constraints())
	if !almostEqual(res.Value, 10, 1e-7) {
		t.Errorf("value = %v, want 10", res.Value)
	}
}

func TestMaximizeGeneralConstraints(t *testing.T) {
	ctx := NewContext()
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x, y >= 0.
	hs := []Halfspace{
		{W: Vector{1, 1}, B: 4},
		{W: Vector{1, 3}, B: 6},
		{W: Vector{-1, 0}, B: 0},
		{W: Vector{0, -1}, B: 0},
	}
	res := ctx.Maximize(Vector{3, 2}, hs)
	if res.Status != LPOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	// Optimum at (4, 0): value 12.
	if !almostEqual(res.Value, 12, 1e-7) {
		t.Errorf("value = %v, want 12", res.Value)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	ctx := NewContext()
	hs := []Halfspace{
		{W: Vector{1}, B: 0},   // x <= 0
		{W: Vector{-1}, B: -1}, // x >= 1
	}
	res := ctx.Maximize(Vector{1}, hs)
	if res.Status != LPInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	ctx := NewContext()
	hs := []Halfspace{{W: Vector{-1, 0}, B: 0}} // x >= 0, y free
	res := ctx.Maximize(Vector{1, 0}, hs)
	if res.Status != LPUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestMaximizeDegenerateHalfspaces(t *testing.T) {
	ctx := NewContext()
	// A trivial constraint (0 <= 1) should be ignored; an infeasible one
	// (0 <= -1) makes the program infeasible.
	hs := []Halfspace{
		{W: Vector{0, 0}, B: 1},
		{W: Vector{1, 0}, B: 2},
		{W: Vector{-1, 0}, B: 0},
		{W: Vector{0, 1}, B: 2},
		{W: Vector{0, -1}, B: 0},
	}
	res := ctx.Maximize(Vector{1, 1}, hs)
	if res.Status != LPOptimal || !almostEqual(res.Value, 4, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 4", res.Status, res.Value)
	}
	hs = append(hs, Halfspace{W: Vector{0, 0}, B: -1})
	res = ctx.Maximize(Vector{1, 1}, hs)
	if res.Status != LPInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMaximizeEqualityViaPair(t *testing.T) {
	ctx := NewContext()
	// x + y == 1 encoded as two inequalities; maximize x over the segment
	// with 0 <= x, y.
	hs := []Halfspace{
		{W: Vector{1, 1}, B: 1},
		{W: Vector{-1, -1}, B: -1},
		{W: Vector{-1, 0}, B: 0},
		{W: Vector{0, -1}, B: 0},
	}
	res := ctx.Maximize(Vector{1, 0}, hs)
	if res.Status != LPOptimal || !almostEqual(res.Value, 1, 1e-7) {
		t.Fatalf("got %v value %v, want optimal 1", res.Status, res.Value)
	}
}

func TestFeasiblePoint(t *testing.T) {
	ctx := NewContext()
	p := Box(Vector{-1, 2}, Vector{0, 5})
	res := ctx.FeasiblePoint(p.Constraints(), 2)
	if res.Status != LPOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if !p.ContainsPoint(res.X, 1e-7) {
		t.Errorf("feasible point %v outside polytope", res.X)
	}
}

func TestLPCounter(t *testing.T) {
	ctx := NewContext()
	before := ctx.Stats.LPs
	p := UnitBox(2)
	ctx.Maximize(Vector{1, 0}, p.Constraints())
	ctx.FeasiblePoint(p.Constraints(), 2)
	if got := ctx.Stats.LPs - before; got != 2 {
		t.Errorf("LP counter advanced by %d, want 2", got)
	}
}

// TestMaximizeRandomBoxes cross-checks the simplex against the closed-form
// solution for random boxes: max c·x over a box picks per-coordinate
// bounds by the sign of c.
func TestMaximizeRandomBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := NewContext()
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(4)
		lo, hi, c := NewVector(dim), NewVector(dim), NewVector(dim)
		for i := 0; i < dim; i++ {
			a, b := rng.Float64()*20-10, rng.Float64()*20-10
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
			c[i] = rng.Float64()*10 - 5
		}
		want := 0.0
		for i := 0; i < dim; i++ {
			if c[i] >= 0 {
				want += c[i] * hi[i]
			} else {
				want += c[i] * lo[i]
			}
		}
		res := ctx.Maximize(c, Box(lo, hi).Constraints())
		if res.Status != LPOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if !almostEqual(res.Value, want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("trial %d: value %v, want %v", trial, res.Value, want)
		}
	}
}

// TestMaximizeRandomFeasibility property: for random constraint sets that
// contain a known point, the LP must report a feasible outcome and any
// reported optimum must satisfy the constraints.
func TestMaximizeRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := NewContext()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(3)
		x0 := NewVector(dim)
		for i := range x0 {
			x0[i] = r.Float64()*4 - 2
		}
		m := 1 + r.Intn(8)
		hs := make([]Halfspace, 0, m+2*dim)
		for k := 0; k < m; k++ {
			w := NewVector(dim)
			for i := range w {
				w[i] = r.Float64()*2 - 1
			}
			slack := r.Float64() * 3
			hs = append(hs, Halfspace{W: w, B: w.Dot(x0) + slack})
		}
		// Bound the region so the LP is bounded.
		for i := 0; i < dim; i++ {
			w := NewVector(dim)
			w[i] = 1
			hs = append(hs, Halfspace{W: w, B: x0[i] + 10})
			wn := NewVector(dim)
			wn[i] = -1
			hs = append(hs, Halfspace{W: wn, B: -(x0[i] - 10)})
		}
		obj := NewVector(dim)
		for i := range obj {
			obj[i] = r.Float64()*2 - 1
		}
		res := ctx.Maximize(obj, hs)
		if res.Status != LPOptimal {
			return false
		}
		if res.Value < obj.Dot(x0)-1e-6 {
			return false // optimum must be at least as good as x0
		}
		for _, h := range hs {
			if !h.Contains(res.X, 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
