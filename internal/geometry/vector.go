// Package geometry provides the computational-geometry substrate for
// multi-objective parametric query optimization: vectors, halfspaces,
// convex polytopes in H-representation, a dense two-phase simplex solver
// for the small linear programs the optimizer issues, region difference,
// and convexity recognition for unions of polytopes (Bemporad et al.).
//
// All operations that solve linear programs take a *Context, which carries
// numerical tolerances and counters. The LP counter is surfaced by the
// optimizer as the "number of solved linear programs" metric reported in
// Figure 12 of the paper.
package geometry

import (
	"fmt"
	"math"
	"strings"
)

// Vector is a point or direction in R^d.
type Vector []float64

// NewVector returns a zero vector of the given dimension.
func NewVector(dim int) Vector { return make(Vector, dim) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product of v and w. The vectors must have equal
// length.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geometry: dot of vectors with dims %d and %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] += w[i]
	}
	return c
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	c := v.Clone()
	for i := range c {
		c[i] -= w[i]
	}
	return c
}

// Scale returns s*v as a new vector.
func (v Vector) Scale(s float64) Vector {
	c := v.Clone()
	for i := range c {
		c[i] *= s
	}
	return c
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute component of v.
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// IsZero reports whether every component of v is within eps of zero.
func (v Vector) IsZero(eps float64) bool {
	for _, x := range v {
		if math.Abs(x) > eps {
			return false
		}
	}
	return true
}

// Equal reports whether v and w agree component-wise within eps.
func (v Vector) Equal(w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// String renders the vector as "(x1, x2, ...)".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%g", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SolveLinearSystem solves the square system A·x = b by Gaussian
// elimination with partial pivoting. It returns false when A is singular
// (within a relative tolerance). A and b are not modified.
func SolveLinearSystem(a [][]float64, b []float64) (Vector, bool) {
	n := len(a)
	if n == 0 {
		return Vector{}, true
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			if f == 0 { //mpq:floatexact exact-zero skip in Gaussian elimination: a zero factor makes the row update a no-op
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}
