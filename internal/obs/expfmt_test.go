package obs

import (
	"strings"
	"testing"
)

// lintText parses and lints one exposition document.
func lintText(t *testing.T, text string) []error {
	t.Helper()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Lint(fams)
}

func TestLintAcceptsOwnRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(7)
	r.Gauge("depth", "queue depth", Label{Name: "q", Value: "main"}).Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.01)
	h.Observe(5)
	if errs := lintText(t, render(t, r)); len(errs) != 0 {
		t.Fatalf("lint of own render found %v", errs)
	}
}

func TestLintFindings(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"missing TYPE", "# HELP a_total help\na_total 1\n", "missing # TYPE"},
		{"missing HELP", "# TYPE a_total counter\na_total 1\n", "missing # HELP"},
		{"negative counter", "# HELP a_total h\n# TYPE a_total counter\na_total -1\n", "has value -1"},
		{"counter naming", "# HELP a h\n# TYPE a counter\na 1\n", "should end in _total"},
		{"duplicate sample", "# HELP a h\n# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate sample"},
		{"unknown type", "# HELP a h\n# TYPE a summary\na 1\n", "unknown TYPE"},
		{"bad label name", "# HELP a h\n# TYPE a gauge\na{__x=\"1\"} 1\n", "invalid label name"},
		{
			"histogram without inf",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"without a +Inf bucket",
		},
		{
			"histogram count mismatch",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count 3 != +Inf bucket 2",
		},
		{
			"histogram non-cumulative",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative bucket counts decrease",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := lintText(t, tc.text)
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("want a finding containing %q, got %v", tc.want, errs)
		})
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, text := range []string{
		"a{x=\"1\" 1\n",                 // unterminated label set
		"a{x=1} 1\n",                    // unquoted value
		"a notanumber\n",                // bad value
		"{x=\"1\"} 1\n",                 // no name
		"a{x=\"1\\q\"} 1\n",             // bad escape
		"# HELP a h\n# HELP a h\na 1\n", // duplicate HELP
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Fatalf("parse accepted %q", text)
		}
	}
}

func TestCheckMonotonic(t *testing.T) {
	prev := `# HELP a_total h
# TYPE a_total counter
a_total{k="x"} 5
# HELP h h
# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
# HELP g h
# TYPE g gauge
g 10
`
	curOK := strings.ReplaceAll(prev, "a_total{k=\"x\"} 5", "a_total{k=\"x\"} 9")
	curOK = strings.ReplaceAll(curOK, "g 10", "g 1") // gauges may fall
	pf, err := ParseExposition(strings.NewReader(prev))
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ParseExposition(strings.NewReader(curOK))
	if err != nil {
		t.Fatal(err)
	}
	if errs := CheckMonotonic(pf, cf); len(errs) != 0 {
		t.Fatalf("monotonic scrape pair flagged: %v", errs)
	}

	curBad := strings.ReplaceAll(prev, "a_total{k=\"x\"} 5", "a_total{k=\"x\"} 4")
	curBad = strings.ReplaceAll(curBad, "h_count 3", "h_count 2")
	cb, err := ParseExposition(strings.NewReader(curBad))
	if err != nil {
		t.Fatal(err)
	}
	errs := CheckMonotonic(pf, cb)
	if len(errs) != 2 {
		t.Fatalf("want 2 monotonicity findings (counter + histogram count), got %v", errs)
	}
}
