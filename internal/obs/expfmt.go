package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer half of the exposition contract: a parser
// for the Prometheus text format (version 0.0.4) and a linter that CI
// runs against a live server's /metrics output, so a malformed scrape
// is a build failure here rather than a silent hole in a dashboard.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample name as written (for histograms this includes
	// the _bucket/_sum/_count suffix).
	Name string
	// Labels are the sample's label pairs in file order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

// labelString renders the label set canonically (sorted) so two
// samples with the same pairs in different order compare equal.
func (s Sample) labelString() string {
	ls := append([]Label(nil), s.Labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return renderLabels(ls)
}

// Family is one parsed metric family: the HELP/TYPE metadata and every
// sample whose base name belongs to it.
type Family struct {
	Name    string
	Help    string
	Type    string
	HasHelp bool
	HasType bool
	Samples []Sample
}

// ParseExposition parses text exposition into families, in file order.
// It is strict about line shape (a line that is neither a comment, a
// blank, nor a well-formed sample is an error) but does not judge
// semantics — that is Lint's job.
func ParseExposition(r io.Reader) ([]*Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byName := make(map[string]*Family)
	var order []*Family
	fam := func(name string) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &Family{Name: name}
		byName[name] = f
		order = append(order, f)
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			f := fam(name)
			switch kind {
			case "HELP":
				if f.HasHelp {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.Help, f.HasHelp = rest, true
			case "TYPE":
				if f.HasType {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				f.Type, f.HasType = rest, true
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam(baseName(s.Name, byName)).Samples = append(fam(baseName(s.Name, byName)).Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// baseName strips a histogram sample suffix when the stripped name is a
// known family (declared by TYPE/HELP before its samples, as the
// renderer emits and the format requires).
func baseName(name string, byName map[string]*Family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, exists := byName[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	rest = ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample parses `name{a="b",...} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		var err error
		s.Labels, i, err = parseLabelSet(line, i)
		if err != nil {
			return s, err
		}
	}
	rest := strings.TrimSpace(line[i:])
	// A trailing timestamp is allowed by the format; we never emit one,
	// but the parser tolerates it.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseFloat(rest)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

func parseLabelSet(line string, open int) ([]Label, int, error) {
	var labels []Label
	i := open + 1
	for {
		for i < len(line) && line[i] == ',' {
			i++
		}
		if i < len(line) && line[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(line) && line[i] != '=' {
			i++
		}
		if i >= len(line) {
			return nil, i, fmt.Errorf("unterminated label set in %q", line)
		}
		name := line[start:i]
		i++ // '='
		if i >= len(line) || line[i] != '"' {
			return nil, i, fmt.Errorf("unquoted label value in %q", line)
		}
		i++
		var val strings.Builder
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' && i+1 < len(line) {
				i++
				switch line[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(line[i])
				default:
					return nil, i, fmt.Errorf("invalid escape \\%c in %q", line[i], line)
				}
			} else {
				val.WriteByte(line[i])
			}
			i++
		}
		if i >= len(line) {
			return nil, i, fmt.Errorf("unterminated label value in %q", line)
		}
		i++ // closing quote
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, i int) bool {
	return c == '_' || c == ':' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
		(i > 0 && '0' <= c && c <= '9')
}

// Lint checks parsed families against the format's semantic rules:
// HELP/TYPE pairing, valid names, no duplicate samples, non-negative
// counters, counter naming, and histogram shape (ascending cumulative
// le buckets ending in +Inf, with _count matching the +Inf bucket).
// It returns one error per finding.
func Lint(fams []*Family) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, f := range fams {
		if !validMetricName(f.Name) {
			report("family %q: invalid metric name", f.Name)
		}
		if !f.HasHelp {
			report("family %s: missing # HELP", f.Name)
		}
		if !f.HasType {
			report("family %s: missing # TYPE", f.Name)
		}
		switch f.Type {
		case "counter", "gauge", "histogram":
		case "":
			if f.HasType {
				report("family %s: empty TYPE", f.Name)
			}
		default:
			report("family %s: unknown TYPE %q", f.Name, f.Type)
		}
		if !f.HasHelp && !f.HasType && len(f.Samples) > 0 {
			report("family %s: samples without any HELP/TYPE metadata", f.Name)
		}
		seen := make(map[string]bool)
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if !validLabelName(l.Name) {
					report("family %s: invalid label name %q", f.Name, l.Name)
				}
			}
			key := s.Name + s.labelString()
			if seen[key] {
				report("family %s: duplicate sample %s%s", f.Name, s.Name, s.labelString())
			}
			seen[key] = true
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				report("family %s: counter name should end in _total", f.Name)
			}
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					report("family %s: counter sample %s%s has value %v", f.Name, s.Name, s.labelString(), s.Value)
				}
			}
		case "histogram":
			lintHistogram(f, report)
		}
	}
	return errs
}

// lintHistogram groups one histogram family's samples by their
// non-le label set and checks each series' shape.
func lintHistogram(f *Family, report func(string, ...any)) {
	type series struct {
		lastLe    float64
		lastCum   float64
		sawInf    bool
		infCum    float64
		count     float64
		sawCount  bool
		sawSum    bool
		sawBucket bool
	}
	bySeries := make(map[string]*series)
	var order []string
	get := func(key string) *series {
		if s, ok := bySeries[key]; ok {
			return s
		}
		s := &series{lastLe: math.Inf(-1), lastCum: -1}
		bySeries[key] = s
		order = append(order, key)
		return s
	}
	for _, s := range f.Samples {
		var rest []Label
		le, hasLe := "", false
		for _, l := range s.Labels {
			if l.Name == "le" {
				le, hasLe = l.Value, true
			} else {
				rest = append(rest, l)
			}
		}
		key := Sample{Labels: rest}.labelString()
		sr := get(key)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			sr.sawBucket = true
			if !hasLe {
				report("family %s: bucket sample without le label", f.Name)
				continue
			}
			bound, err := parseFloat(le)
			if err != nil {
				report("family %s: bucket le=%q is not a number", f.Name, le)
				continue
			}
			if bound <= sr.lastLe {
				report("family %s%s: bucket bounds not ascending at le=%q", f.Name, key, le)
			}
			if s.Value < sr.lastCum {
				report("family %s%s: cumulative bucket counts decrease at le=%q", f.Name, key, le)
			}
			sr.lastLe, sr.lastCum = bound, s.Value
			if math.IsInf(bound, 1) {
				sr.sawInf, sr.infCum = true, s.Value
			}
		case strings.HasSuffix(s.Name, "_sum"):
			sr.sawSum = true
		case strings.HasSuffix(s.Name, "_count"):
			sr.sawCount, sr.count = true, s.Value
		}
	}
	for _, key := range order {
		sr := bySeries[key]
		if !sr.sawBucket {
			report("family %s%s: histogram series without _bucket samples", f.Name, key)
			continue
		}
		if !sr.sawInf {
			report("family %s%s: histogram series without a +Inf bucket", f.Name, key)
		}
		if !sr.sawSum {
			report("family %s%s: histogram series without _sum", f.Name, key)
		}
		if !sr.sawCount {
			report("family %s%s: histogram series without _count", f.Name, key)
		} else if sr.sawInf && sr.count != sr.infCum {
			report("family %s%s: _count %v != +Inf bucket %v", f.Name, key, sr.count, sr.infCum)
		}
	}
}

// CheckMonotonic compares two scrapes of one target: every counter
// sample (and histogram bucket/count/sum) present in both must not
// decrease. It returns one error per violation.
func CheckMonotonic(prev, cur []*Family) []error {
	var errs []error
	prevByName := make(map[string]*Family, len(prev))
	for _, f := range prev {
		prevByName[f.Name] = f
	}
	for _, f := range cur {
		if f.Type != "counter" && f.Type != "histogram" {
			continue
		}
		pf, ok := prevByName[f.Name]
		if !ok || pf.Type != f.Type {
			continue
		}
		prevVals := make(map[string]float64, len(pf.Samples))
		for _, s := range pf.Samples {
			prevVals[s.Name+s.labelString()] = s.Value
		}
		for _, s := range f.Samples {
			if f.Type == "histogram" && strings.HasSuffix(s.Name, "_sum") {
				// A sum of negative observations may legitimately
				// decrease; our histograms observe durations, but the
				// format does not forbid it.
				continue
			}
			pv, ok := prevVals[s.Name+s.labelString()]
			if ok && s.Value < pv {
				errs = append(errs, fmt.Errorf("%s%s decreased across scrapes: %v -> %v", s.Name, s.labelString(), pv, s.Value))
			}
		}
	}
	return errs
}
