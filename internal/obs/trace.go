package obs

import (
	"sync"
	"time"
)

// Prepare phase tracing: the serving layer starts a PrepareTrace per
// load-or-optimize flight, marks phase boundaries as it moves through
// the pipeline (admission wait, queue wait, source lookup, optimize,
// index build, save), and finishes it into a bounded in-memory ring of
// recent events. The ring is the /debug/traces JSON dump; with
// Instrument, every finished phase is also observed into per-phase
// latency histograms on a Registry, so /metrics carries the
// distributions while the ring carries the last N concrete requests.

// PhaseSpan is one timed phase of a traced request.
type PhaseSpan struct {
	Name string `json:"name"`
	// Duration is the phase's monotonic duration in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
}

// TraceEvent is one finished traced request.
type TraceEvent struct {
	// Op names the traced operation ("prepare").
	Op string `json:"op"`
	// Key is the plan-set key the request resolved to.
	Key string `json:"key"`
	// Source reports where the document came from: "computed", "disk",
	// "shared", "peer" — or "error" when the flight failed.
	Source string `json:"source"`
	// Error carries the failure message of an "error" event.
	Error string `json:"error,omitempty"`
	// Epsilon is the approximation factor of the generation the request
	// served or produced; Generation its index in the template's
	// effective refinement ladder (0 for single-generation templates).
	Epsilon    float64 `json:"epsilon,omitempty"`
	Generation int     `json:"generation,omitempty"`
	// Start is the wall-clock start of the request (for the dump; the
	// durations are what the histograms aggregate).
	Start time.Time `json:"start"`
	// Total is the request's end-to-end monotonic duration.
	Total time.Duration `json:"total_ns"`
	// Phases are the request's timed phases, in execution order.
	Phases []PhaseSpan `json:"phases"`
}

// TraceRing is a bounded ring of recent trace events. A nil *TraceRing
// is a valid no-op: Start returns a nil trace whose methods do
// nothing, so instrumented code needs no nil checks of its own.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	total int64

	reg       *Registry
	phaseHist func(phase string) *Histogram
	totalHist *Histogram
}

// NewTraceRing returns a ring keeping the last capacity events
// (capacity <= 0 returns nil, the disabled ring).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return nil
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// Instrument additionally observes every finished event into latency
// histograms on reg: mpq_prepare_phase_seconds{phase=...} per phase and
// mpq_prepare_seconds for the end-to-end duration.
func (r *TraceRing) Instrument(reg *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
	r.totalHist = reg.Histogram("mpq_prepare_seconds",
		"End-to-end duration of Prepare flights that reached the load-or-optimize pipeline.",
		DurationBuckets())
	r.phaseHist = func(phase string) *Histogram {
		return reg.Histogram("mpq_prepare_phase_seconds",
			"Duration of one phase of a Prepare flight.",
			DurationBuckets(), Label{Name: "phase", Value: phase})
	}
}

// add appends a finished event, evicting the oldest beyond capacity.
func (r *TraceRing) add(ev TraceEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	totalHist, phaseHist := r.totalHist, r.phaseHist
	r.mu.Unlock()
	if totalHist != nil {
		totalHist.Observe(ev.Total.Seconds())
	}
	if phaseHist != nil {
		for _, p := range ev.Phases {
			phaseHist(p.Name).Observe(p.Duration.Seconds())
		}
	}
}

// Events returns the ring's events, oldest first.
func (r *TraceRing) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events were ever added (including evicted
// ones).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Start opens a trace for one request. On a nil ring it returns nil,
// and every PrepareTrace method tolerates a nil receiver — tracing
// costs one branch when disabled.
func (r *TraceRing) Start(op, key string) *PrepareTrace {
	if r == nil {
		return nil
	}
	now := Now()
	return &PrepareTrace{ring: r, last: now, ev: TraceEvent{Op: op, Key: key, Start: now, Source: "computed"}}
}

// PrepareTrace accumulates one request's phase spans between Start and
// Finish. It is used from a single goroutine at a time (the request's
// own), so it needs no locking.
type PrepareTrace struct {
	ring *TraceRing
	last time.Time
	ev   TraceEvent
}

// Phase closes the span that began at the previous mark (or at Start)
// and names it.
func (t *PrepareTrace) Phase(name string) {
	if t == nil {
		return
	}
	now := Now()
	t.ev.Phases = append(t.ev.Phases, PhaseSpan{Name: name, Duration: now.Sub(t.last)})
	t.last = now
}

// SetSource records where the request's document came from.
func (t *PrepareTrace) SetSource(src string) {
	if t == nil {
		return
	}
	t.ev.Source = src
}

// SetGeneration records the approximation factor and ladder index of
// the generation the request served or produced.
func (t *PrepareTrace) SetGeneration(epsilon float64, generation int) {
	if t == nil {
		return
	}
	t.ev.Epsilon = epsilon
	t.ev.Generation = generation
}

// Finish seals the event and publishes it to the ring. A non-nil err
// overrides the source with "error".
func (t *PrepareTrace) Finish(err error) {
	if t == nil {
		return
	}
	t.ev.Total = Since(t.ev.Start)
	if err != nil {
		t.ev.Source = "error"
		t.ev.Error = err.Error()
	}
	t.ring.add(t.ev)
}
