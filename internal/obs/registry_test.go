package obs

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryRendersSortedExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last family").Add(3)
	r.Gauge("a_gauge", "first family").Set(-1.5)
	r.Counter("m_total", "middle", Label{Name: "shard", Value: "b"}).Inc()
	r.Counter("m_total", "middle", Label{Name: "shard", Value: "a"}).Add(2)

	got := render(t, r)
	want := `# HELP a_gauge first family
# TYPE a_gauge gauge
a_gauge -1.5
# HELP m_total middle
# TYPE m_total counter
m_total{shard="a"} 2
m_total{shard="b"} 1
# HELP z_total last family
# TYPE z_total counter
z_total 3
`
	if got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if again := render(t, r); again != got {
		t.Fatal("two scrapes of an unchanged registry differ")
	}
}

func TestRegistryRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	g1 := r.Gauge("g", "help", Label{Name: "x", Value: "1"})
	g2 := r.Gauge("g", "help", Label{Name: "x", Value: "2"})
	if g1 == g2 {
		t.Fatal("distinct label values returned the same gauge")
	}
}

func TestRegistryPanicsOnKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("c_total", "help")
}

func TestHistogramRendersCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)

	got := render(t, r)
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 101.05
lat_seconds_count 4
`
	if got != want {
		t.Fatalf("histogram render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "a help with \\ and\nnewline", Label{Name: "path", Value: `a"b\c` + "\n"}).Set(1)
	got := render(t, r)
	if !strings.Contains(got, `# HELP g a help with \\ and\nnewline`) {
		t.Fatalf("HELP not escaped: %q", got)
	}
	if !strings.Contains(got, `g{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label value not escaped: %q", got)
	}
	// The escaped output must survive our own parser.
	fams, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if v := fams[0].Samples[0].Labels[0].Value; v != `a"b\c`+"\n" {
		t.Fatalf("round-tripped label value %q", v)
	}
}

func TestCollectHookRunsPerScrape(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "refreshed at scrape time")
	n := 0.0
	r.OnCollect(func() { n++; g.Set(n) })
	if got := render(t, r); !strings.Contains(got, "g 1\n") {
		t.Fatalf("first scrape: %q", got)
	}
	if got := render(t, r); !strings.Contains(got, "g 2\n") {
		t.Fatalf("second scrape: %q", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	db := DurationBuckets()
	for i := 1; i < len(db); i++ {
		if db[i] <= db[i-1] {
			t.Fatal("DurationBuckets not ascending")
		}
	}
}
