package obs

import "time"

// Now and Since are the package's only wall-clock reads: trace spans
// and instrumented callers (the serving layer's phase timing) route
// through them so the waiver surface stays in one file. Instrumentation
// timestamps never reach plans, serialized bytes, or LP counts — the
// determinism contracts are untouched.

// Now returns the current wall-clock time for instrumentation.
func Now() time.Time {
	return time.Now() //mpq:wallclock observability timestamps (trace spans, access-log latency); never reach optimizer outputs
}

// Since returns the elapsed wall-clock time since t for instrumentation.
func Since(t time.Time) time.Duration {
	return time.Since(t) //mpq:wallclock observability durations (trace spans, phase histograms); never reach optimizer outputs
}
