// Package obs is the observability subsystem: a zero-dependency typed
// metrics registry rendering the Prometheus text exposition format, an
// exposition parser/linter (the format contract is enforced in-tree,
// not by an external scraper), a bounded ring of Prepare phase traces,
// and persisted per-template pick-point telemetry.
//
// Everything here is passive with respect to the optimizer's
// determinism contracts: instrumentation is atomic adds and scrape-time
// snapshots, never an input to a planning decision. The only wall-clock
// reads live in clock.go behind documented //mpq:wallclock waivers; the
// rest of the package is time-free. See DESIGN.md, "Observability".
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair of a metric's label set.
type Label struct {
	Name  string
	Value string
}

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — counters and gauges hold one so durations and byte totals
// render without integer truncation.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Counter is a monotonically increasing sample. Adapters that mirror an
// external cumulative source (a Stats snapshot) refresh it with
// SetTotal at collect time instead of Add.
type Counter struct {
	val atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.val.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta float64) {
	if delta < 0 || math.IsNaN(delta) {
		panic(fmt.Sprintf("obs: counter add %v (counters only increase)", delta))
	}
	c.val.Add(delta)
}

// SetTotal replaces the counter's value with a cumulative total read
// from an external monotonic source. The exposition linter's
// cross-scrape monotonicity check is the guard against a source that
// is not actually monotonic.
func (c *Counter) SetTotal(total float64) { c.val.Store(total) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.val.Load() }

// Gauge is a sample that can go up and down.
type Gauge struct {
	val atomicFloat
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.val.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) { g.val.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.Load() }

// Histogram is a fixed-bucket cumulative histogram: Observe is a
// binary search plus two atomic adds, so it is safe on request paths.
// Bucket bounds are fixed at registration (upper bounds, ascending; an
// implicit +Inf bucket is appended).
type Histogram struct {
	bounds []float64
	bins   []atomic.Int64 // len(bounds)+1; bins[i] counts v <= bounds[i]
	sum    atomicFloat
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.bins[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.bins {
		n += h.bins[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the default seconds buckets for request-phase
// histograms: 10µs to ~84s in ×2 steps.
func DurationBuckets() []float64 { return ExpBuckets(10e-6, 2, 23) }

// Kind names a metric kind in adapter tables (code that maps an
// external stats snapshot onto metrics and needs to say which kind
// each field becomes).
type Kind string

// The adapter-facing kinds. Histograms are registered directly, not
// through adapter tables.
const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
)

// metricKind discriminates the families.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: its metadata plus every label-set child.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only

	children map[string]*child // keyed by rendered label string
}

type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration is idempotent: asking for an existing
// (name, labels) returns the same metric, so collect hooks may
// re-register per-instance children (per peer, per phase) on every
// scrape. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	collectMu  sync.Mutex
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnCollect installs a hook run at the start of every WriteText — the
// seam adapters use to refresh mirrored snapshot values at scrape time.
func (r *Registry) OnCollect(fn func()) {
	r.collectMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collectMu.Unlock()
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.metric(name, help, kindCounter, nil, labels)
	return c.ctr
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.metric(name, help, kindGauge, nil, labels)
	return c.gauge
}

// Histogram registers (or returns the existing) histogram with the
// given upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	c := r.metric(name, help, kindHistogram, bounds, labels)
	return c.hist
}

func (r *Registry) metric(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Name, name))
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, children: make(map[string]*child)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			c.ctr = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = &Histogram{bounds: append([]float64(nil), f.bounds...), bins: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.children[key] = c
	}
	return c
}

// WriteText runs the collect hooks, then renders every family in the
// Prometheus text exposition format (version 0.0.4): families sorted
// by name, children sorted by label string, so two scrapes of an
// unchanged registry are byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	r.collectMu.Lock()
	hooks := make([]func(), len(r.collectors))
	copy(hooks, r.collectors)
	r.collectMu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := f.children[k]
		switch f.kind {
		case kindCounter:
			renderSample(b, f.name, c.labels, nil, c.ctr.Value())
		case kindGauge:
			renderSample(b, f.name, c.labels, nil, c.gauge.Value())
		case kindHistogram:
			var cum int64
			for i, bound := range c.hist.bounds {
				cum += c.hist.bins[i].Load()
				le := Label{Name: "le", Value: formatValue(bound)}
				renderSample(b, f.name+"_bucket", c.labels, &le, float64(cum))
			}
			cum += c.hist.bins[len(c.hist.bounds)].Load()
			le := Label{Name: "le", Value: "+Inf"}
			renderSample(b, f.name+"_bucket", c.labels, &le, float64(cum))
			renderSample(b, f.name+"_sum", c.labels, nil, c.hist.Sum())
			renderSample(b, f.name+"_count", c.labels, nil, float64(cum))
		}
	}
}

func renderSample(b *strings.Builder, name string, labels []Label, extra *Label, v float64) {
	b.WriteString(name)
	all := labels
	if extra != nil {
		all = append(append([]Label(nil), labels...), *extra)
	}
	if len(all) > 0 {
		b.WriteString(renderLabels(all))
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// renderLabels renders a label set as {a="x",b="y"} with exposition
// escaping; the empty set renders as the empty string (also the child
// map key of the unlabeled child).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline (the HELP line escapes of
// the text format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
