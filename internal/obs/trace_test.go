package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestNilTraceRingIsNoOp(t *testing.T) {
	var r *TraceRing
	if got := NewTraceRing(0); got != nil {
		t.Fatal("NewTraceRing(0) should return the disabled nil ring")
	}
	tr := r.Start("prepare", "k")
	if tr != nil {
		t.Fatal("nil ring should hand out nil traces")
	}
	// Every method must tolerate the nil receiver.
	tr.Phase("lookup")
	tr.SetSource("disk")
	tr.Finish(nil)
	r.Instrument(NewRegistry())
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil ring Events = %v", ev)
	}
	if n := r.Total(); n != 0 {
		t.Fatalf("nil ring Total = %d", n)
	}
}

func TestTraceRingRecordsPhasesAndEvicts(t *testing.T) {
	r := NewTraceRing(2)
	for _, key := range []string{"a", "b", "c"} {
		tr := r.Start("prepare", key)
		tr.Phase("lookup")
		tr.Phase("optimize")
		tr.SetSource("disk")
		tr.Finish(nil)
	}
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("ring kept %d events, want 2", len(ev))
	}
	if ev[0].Key != "b" || ev[1].Key != "c" {
		t.Fatalf("eviction order wrong: %q then %q", ev[0].Key, ev[1].Key)
	}
	if r.Total() != 3 {
		t.Fatalf("Total = %d, want 3", r.Total())
	}
	got := ev[1]
	if got.Op != "prepare" || got.Source != "disk" || got.Error != "" {
		t.Fatalf("event = %+v", got)
	}
	if len(got.Phases) != 2 || got.Phases[0].Name != "lookup" || got.Phases[1].Name != "optimize" {
		t.Fatalf("phases = %+v", got.Phases)
	}
	if got.Total < got.Phases[0].Duration {
		t.Fatalf("total %v shorter than first phase %v", got.Total, got.Phases[0].Duration)
	}
}

func TestTraceFinishWithErrorOverridesSource(t *testing.T) {
	r := NewTraceRing(4)
	tr := r.Start("prepare", "k")
	tr.SetSource("shared")
	tr.Finish(errors.New("boom"))
	ev := r.Events()
	if len(ev) != 1 || ev[0].Source != "error" || ev[0].Error != "boom" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestTraceInstrumentObservesHistograms(t *testing.T) {
	r := NewTraceRing(4)
	reg := NewRegistry()
	r.Instrument(reg)
	tr := r.Start("prepare", "k")
	tr.Phase("lookup")
	tr.Phase("optimize")
	tr.Finish(nil)

	text := render(t, reg)
	for _, want := range []string{
		"mpq_prepare_seconds_count 1",
		`mpq_prepare_phase_seconds_count{phase="lookup"} 1`,
		`mpq_prepare_phase_seconds_count{phase="optimize"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if errs := Lint(fams); len(errs) != 0 {
		t.Fatalf("instrumented scrape fails lint: %v", errs)
	}
}
