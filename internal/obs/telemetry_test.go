package obs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mpq/internal/faultfs"
)

func openTel(t *testing.T, dir string, opts TelemetryOptions) *Telemetry {
	t.Helper()
	tel, err := OpenTelemetry(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestTelemetryRecordAndSnapshot(t *testing.T) {
	tel := openTel(t, t.TempDir(), TelemetryOptions{Buckets: 4})
	lo, hi := []float64{0, 0}, []float64{1, 10}
	tel.Record("k", lo, hi, []float64{0.1, 1})  // buckets 0, 0
	tel.Record("k", lo, hi, []float64{0.6, 9})  // buckets 2, 3
	tel.Record("k", lo, hi, []float64{0.99, 5}) // buckets 3, 2

	snap, ok := tel.Snapshot("k")
	if !ok {
		t.Fatal("Snapshot miss for a recorded key")
	}
	if snap.Recorded != 3 || snap.OutOfRange != 0 {
		t.Fatalf("recorded=%d outOfRange=%d", snap.Recorded, snap.OutOfRange)
	}
	wantD0 := []int64{1, 0, 1, 1}
	wantD1 := []int64{1, 0, 1, 1}
	for b := range wantD0 {
		if snap.Counts[0][b] != wantD0[b] || snap.Counts[1][b] != wantD1[b] {
			t.Fatalf("counts = %v, want [%v %v]", snap.Counts, wantD0, wantD1)
		}
	}
	if got := tel.Keys(); len(got) != 1 || got[0] != "k" {
		t.Fatalf("Keys = %v", got)
	}
}

func TestTelemetryOutOfRangeClampsToEdges(t *testing.T) {
	tel := openTel(t, t.TempDir(), TelemetryOptions{Buckets: 4})
	lo, hi := []float64{0}, []float64{1}
	tel.Record("k", lo, hi, []float64{-5})
	tel.Record("k", lo, hi, []float64{7})
	tel.Record("k", lo, hi, []float64{1}) // exactly hi: top bucket, in range
	snap, _ := tel.Snapshot("k")
	if snap.Counts[0][0] != 1 || snap.Counts[0][3] != 2 {
		t.Fatalf("counts = %v", snap.Counts)
	}
	if snap.OutOfRange != 2 {
		t.Fatalf("OutOfRange = %d, want 2", snap.OutOfRange)
	}
	st := tel.Stats()
	if st.Offered != 3 || st.Recorded != 3 || st.OutOfRange != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTelemetrySampling(t *testing.T) {
	tel := openTel(t, t.TempDir(), TelemetryOptions{Buckets: 4, SampleEvery: 10})
	lo, hi := []float64{0}, []float64{1}
	for i := 0; i < 100; i++ {
		tel.Record("k", lo, hi, []float64{0.5})
	}
	st := tel.Stats()
	if st.Offered != 100 {
		t.Fatalf("Offered = %d", st.Offered)
	}
	if st.Recorded != 10 {
		t.Fatalf("Recorded = %d, want exactly every 10th of 100", st.Recorded)
	}
}

func TestTelemetryFlushReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tel := openTel(t, dir, TelemetryOptions{Buckets: 8})
	lo, hi := []float64{0, -1}, []float64{2, 1}
	for i := 0; i < 50; i++ {
		tel.Record("tmpl-a", lo, hi, []float64{float64(i%8) / 4, 0})
	}
	tel.Record("tmpl-b", []float64{0}, []float64{1}, []float64{0.5})
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	want, _ := tel.Snapshot("tmpl-a")

	// Idempotent: a second flush with nothing new writes nothing.
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := tel.Stats(); st.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2 (one per dirty histogram)", st.Flushes)
	}

	re := openTel(t, dir, TelemetryOptions{Buckets: 8})
	if got := re.Keys(); len(got) != 2 || got[0] != "tmpl-a" || got[1] != "tmpl-b" {
		t.Fatalf("reloaded keys = %v", got)
	}
	got, ok := re.Snapshot("tmpl-a")
	if !ok {
		t.Fatal("reload lost tmpl-a")
	}
	if got.Recorded != want.Recorded || got.OutOfRange != want.OutOfRange {
		t.Fatalf("reloaded recorded=%d want %d", got.Recorded, want.Recorded)
	}
	for d := range want.Counts {
		for b := range want.Counts[d] {
			if got.Counts[d][b] != want.Counts[d][b] {
				t.Fatalf("reloaded counts[%d][%d] = %d, want %d", d, b, got.Counts[d][b], want.Counts[d][b])
			}
		}
	}
	// Reloaded histograms keep accumulating against the persisted box.
	re.Record("tmpl-a", lo, hi, []float64{0, 0})
	snap, _ := re.Snapshot("tmpl-a")
	if snap.Recorded != want.Recorded+1 {
		t.Fatalf("post-reload Record did not accumulate: %d", snap.Recorded)
	}
}

func TestTelemetryTornFileRecoversEmpty(t *testing.T) {
	dir := t.TempDir()
	for name, raw := range map[string][]byte{
		"torn" + telemetrySuffix:     []byte(`{"version":1,"key":"torn","bucke`),
		"badkey" + telemetrySuffix:   []byte(`{"version":1,"key":"other","buckets":4,"lo":[0],"hi":[1],"counts":[[1,2,3,4]]}`),
		"badshape" + telemetrySuffix: []byte(`{"version":1,"key":"badshape","buckets":4,"lo":[0],"hi":[1],"counts":[[1,2]]}`),
		"badver" + telemetrySuffix:   []byte(`{"version":9,"key":"badver","buckets":4,"lo":[0],"hi":[1],"counts":[[1,2,3,4]]}`),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	tel := openTel(t, dir, TelemetryOptions{Buckets: 4})
	if got := tel.Keys(); len(got) != 0 {
		t.Fatalf("defective files loaded as %v", got)
	}
	if st := tel.Stats(); st.LoadErrors != 4 {
		t.Fatalf("LoadErrors = %d, want 4", st.LoadErrors)
	}
	// The keys are usable again from scratch.
	tel.Record("torn", []float64{0}, []float64{1}, []float64{0.5})
	if snap, ok := tel.Snapshot("torn"); !ok || snap.Recorded != 1 {
		t.Fatalf("post-recovery Record failed: ok=%v snap=%+v", ok, snap)
	}
}

// TestTelemetryCrashRestartProperty kills the flush at every mutation
// cut point and verifies a restarted reader observes the previous
// generation intact, the new generation intact, or an empty histogram —
// never torn counts, and never a boot failure.
func TestTelemetryCrashRestartProperty(t *testing.T) {
	const key = "k"
	lo, hi := []float64{0}, []float64{1}
	record := func(tel *Telemetry, n int) {
		for i := 0; i < n; i++ {
			tel.Record(key, lo, hi, []float64{0.25})
		}
	}

	// Clean pass: count the mutation cut points of one second-generation
	// flush (first generation already on disk).
	counter := faultfs.NewInjector(nil, faultfs.Config{Seed: 1})
	{
		tel := openTel(t, t.TempDir(), TelemetryOptions{Buckets: 4, FS: counter})
		record(tel, 1)
		if err := tel.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := counter.Mutations()
	{
		tel := openTel(t, t.TempDir(), TelemetryOptions{Buckets: 4, FS: counter})
		record(tel, 1)
		if err := tel.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	cuts := counter.Mutations() - before
	if cuts < 3 {
		t.Fatalf("one flush performed only %d mutations — is it still going through the atomic write?", cuts)
	}
	t.Logf("one flush = %d mutation cut points", cuts)

	for cut := 1; cut <= cuts; cut++ {
		dir := t.TempDir()

		// Generation 1 lands cleanly: 1 recorded point.
		clean := openTel(t, dir, TelemetryOptions{Buckets: 4})
		record(clean, 1)
		if err := clean.Flush(); err != nil {
			t.Fatal(err)
		}

		// Generation 2 (3 recorded points) crashes mid-flush.
		inj := faultfs.NewInjector(nil, faultfs.Config{Seed: 1})
		inj.CrashAfterMutations(cut)
		crashy := openTel(t, dir, TelemetryOptions{Buckets: 4, FS: inj})
		record(crashy, 2) // on top of the reloaded 1 → recorded=3
		if err := crashy.Flush(); err == nil {
			t.Fatalf("cut %d: flush survived its own crash", cut)
		} else if !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("cut %d: flush error = %v, want ErrCrashed", cut, err)
		}

		// A restarted process must boot and see a consistent world.
		re, err := OpenTelemetry(dir, TelemetryOptions{Buckets: 4})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		snap, ok := re.Snapshot(key)
		switch {
		case !ok:
			// Acceptable only if the file degraded to a load error, not a
			// silent disappearance of a healthy file.
			if st := re.Stats(); st.LoadErrors == 0 {
				t.Errorf("cut %d: histogram silently missing after a clean generation-1 flush", cut)
			}
		case snap.Recorded != 1 && snap.Recorded != 3:
			t.Errorf("cut %d: torn generation: recorded = %d, want 1 or 3", cut, snap.Recorded)
		default:
			if snap.Counts[0][1] != snap.Recorded {
				t.Errorf("cut %d: counts %v inconsistent with recorded %d", cut, snap.Counts, snap.Recorded)
			}
		}

		// Self-heal: a real-filesystem record+flush succeeds and reloads.
		record(re, 1)
		if err := re.Flush(); err != nil {
			t.Errorf("cut %d: healing flush failed: %v", cut, err)
			continue
		}
		re2 := openTel(t, dir, TelemetryOptions{Buckets: 4})
		if _, ok := re2.Snapshot(key); !ok {
			t.Errorf("cut %d: post-heal reload lost the histogram", cut)
		}
	}
}

func TestTelemetryFlushErrorIsCountedAndRetried(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, faultfs.Config{Seed: 1})
	inj.CrashAfterMutations(1)
	tel := openTel(t, dir, TelemetryOptions{Buckets: 4, FS: inj})
	tel.Record("k", []float64{0}, []float64{1}, []float64{0.5})
	if err := tel.Flush(); err == nil {
		t.Fatal("flush through a crashed fs succeeded")
	}
	st := tel.Stats()
	if st.FlushErrors != 1 || st.Flushes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The histogram stays dirty: once the fs heals, Flush retries it.
	// (Re-arming far in the future clears the crashed latch.)
	inj.CrashAfterMutations(1 << 20)
	if err := tel.Flush(); err != nil {
		t.Fatalf("healed flush: %v", err)
	}
	if st := tel.Stats(); st.Flushes != 1 {
		t.Fatalf("healed stats = %+v", st)
	}
}
