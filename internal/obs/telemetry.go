package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mpq/internal/faultfs"
	"mpq/internal/fleet"
)

// Pick-point telemetry: bounded per-dimension histograms of the
// parameter points Pick/PickBatch actually served, keyed by plan-set
// key (one template per key). This is the recording half of
// workload-driven re-optimization (ROADMAP direction 2): a consumer
// can re-center index split planes or leaf budgets on where traffic
// concentrates, instead of treating the whole parameter box uniformly.
//
// The record path is atomic adds only (plus one RLock map lookup), and
// a sampling knob bounds even that; persistence is explicitly
// flush-driven (never on the pick path) through the fleet package's
// fsync'd temp+rename write, so files are either a complete JSON
// document or absent — a torn file from a crash mid-rename fails to
// parse at boot and degrades to an empty histogram, never a crash.

// TelemetryOptions configures a Telemetry recorder.
type TelemetryOptions struct {
	// Buckets is the per-dimension bucket count (default 32).
	Buckets int
	// SampleEvery records every Nth offered point (default 1 = every
	// point) — the knob that keeps recording off the hot path under
	// extreme pick rates.
	SampleEvery int64
	// FS is the filesystem persistence goes through (nil = the real
	// one) — the fault-injection seam for crash tests.
	FS faultfs.FS
}

// TelemetryStats is a snapshot of the recorder's counters.
type TelemetryStats struct {
	// Templates is the number of per-template histograms resident.
	Templates int
	// Offered counts points offered to Record; Recorded the sampled
	// subset actually binned; OutOfRange the recorded points outside a
	// histogram's box (clamped into the edge buckets).
	Offered    int64
	Recorded   int64
	OutOfRange int64
	// Flushes counts histogram files written; FlushErrors the failed
	// writes. LoadErrors counts files that failed to parse at boot and
	// were discarded (torn writes recover as empty histograms).
	Flushes     int64
	FlushErrors int64
	LoadErrors  int64
}

// TemplateTelemetry is one template's per-dimension histogram.
type TemplateTelemetry struct {
	key     string
	lo, hi  []float64
	buckets int
	counts  []atomic.Int64 // [dim*buckets + bucket]

	recorded   atomic.Int64
	outOfRange atomic.Int64
	flushedAt  atomic.Int64 // recorded count at the last flush
}

// TelemetrySnapshot is the JSON document one template's histogram
// persists to — and the read-side view Snapshot returns.
type TelemetrySnapshot struct {
	Version int       `json:"version"`
	Key     string    `json:"key"`
	Buckets int       `json:"buckets"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	// Counts[d][b] is the number of recorded points whose dimension d
	// fell into bucket b of [Lo[d], Hi[d]].
	Counts     [][]int64 `json:"counts"`
	Recorded   int64     `json:"recorded"`
	OutOfRange int64     `json:"out_of_range"`
}

const telemetrySuffix = ".telemetry.json"

// Telemetry records pick-point distributions per plan-set key and
// persists them as one JSON file per key under a directory. All
// methods are safe for concurrent use; Record is designed for request
// paths, Flush for shutdown and periodic background sweeps.
type Telemetry struct {
	dir         string
	fs          faultfs.FS
	buckets     int
	sampleEvery int64

	offered atomic.Int64

	mu   sync.RWMutex
	tmpl map[string]*TemplateTelemetry

	statsMu                          sync.Mutex
	flushes, flushErrors, loadErrors int64
}

// OpenTelemetry opens (creating if needed) a telemetry directory and
// reloads every histogram persisted in it, so distributions survive
// restarts. A file that fails to parse — a torn write from a crash, a
// foreign file — is skipped and counted, never fatal.
func OpenTelemetry(dir string, opts TelemetryOptions) (*Telemetry, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: telemetry dir must not be empty")
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 32
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 1
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("obs: telemetry dir: %w", err)
	}
	t := &Telemetry{
		dir:         dir,
		fs:          fsys,
		buckets:     opts.Buckets,
		sampleEvery: opts.SampleEvery,
		tmpl:        make(map[string]*TemplateTelemetry),
	}
	if err := t.loadAll(); err != nil {
		return nil, err
	}
	return t, nil
}

// loadAll reloads every *.telemetry.json in the directory.
func (t *Telemetry) loadAll() error {
	names, err := os.ReadDir(t.dir)
	if err != nil {
		return fmt.Errorf("obs: scanning telemetry dir: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, telemetrySuffix) {
			continue
		}
		h, ok := t.loadFile(filepath.Join(t.dir, name), strings.TrimSuffix(name, telemetrySuffix))
		if !ok {
			t.statsMu.Lock()
			t.loadErrors++
			t.statsMu.Unlock()
			continue
		}
		t.tmpl[h.key] = h
	}
	return nil
}

// loadFile parses one persisted histogram; any defect (unreadable,
// torn, key mismatch, inconsistent shape) is a recoverable miss.
func (t *Telemetry) loadFile(path, key string) (*TemplateTelemetry, bool) {
	raw, err := t.fs.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var doc TelemetrySnapshot
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, false
	}
	dim := len(doc.Lo)
	if doc.Version != 1 || doc.Key != key || doc.Buckets <= 0 || dim == 0 ||
		len(doc.Hi) != dim || len(doc.Counts) != dim || doc.Buckets != t.buckets {
		return nil, false
	}
	h := newTemplateTelemetry(key, doc.Lo, doc.Hi, t.buckets)
	for d, row := range doc.Counts {
		if len(row) != doc.Buckets {
			return nil, false
		}
		for b, n := range row {
			h.counts[d*t.buckets+b].Store(n)
		}
	}
	h.recorded.Store(doc.Recorded)
	h.outOfRange.Store(doc.OutOfRange)
	h.flushedAt.Store(doc.Recorded)
	return h, true
}

func newTemplateTelemetry(key string, lo, hi []float64, buckets int) *TemplateTelemetry {
	dim := len(lo)
	h := &TemplateTelemetry{
		key:     key,
		lo:      append([]float64(nil), lo...),
		hi:      append([]float64(nil), hi...),
		buckets: buckets,
		counts:  make([]atomic.Int64, dim*buckets),
	}
	return h
}

// Record offers one served pick point for key, whose plan set spans
// the box [lo, hi]. Subject to the sampling knob, the point is binned
// per dimension with atomic adds; the box is fixed by the key's first
// Record (or its reloaded file), so reloaded distributions keep
// accumulating consistently.
func (t *Telemetry) Record(key string, lo, hi, x []float64) {
	n := t.offered.Add(1)
	if t.sampleEvery > 1 && n%t.sampleEvery != 0 {
		return
	}
	if len(x) == 0 || len(lo) != len(x) || len(hi) != len(x) {
		return
	}
	t.mu.RLock()
	h := t.tmpl[key]
	t.mu.RUnlock()
	if h == nil {
		t.mu.Lock()
		if h = t.tmpl[key]; h == nil {
			h = newTemplateTelemetry(key, lo, hi, t.buckets)
			t.tmpl[key] = h
		}
		t.mu.Unlock()
	}
	if len(h.lo) != len(x) {
		return // key collision across incompatible dimensions; drop
	}
	for d := range x {
		span := h.hi[d] - h.lo[d]
		b := 0
		if span > 0 {
			b = int(float64(h.buckets) * (x[d] - h.lo[d]) / span)
		}
		if b < 0 {
			b = 0
			h.outOfRange.Add(1)
		} else if b >= h.buckets {
			if x[d] > h.hi[d] {
				h.outOfRange.Add(1)
			}
			b = h.buckets - 1
		}
		h.counts[d*h.buckets+b].Add(1)
	}
	h.recorded.Add(1)
}

// snapshot copies one histogram's current state.
func (h *TemplateTelemetry) snapshot() TelemetrySnapshot {
	dim := len(h.lo)
	doc := TelemetrySnapshot{
		Version:    1,
		Key:        h.key,
		Buckets:    h.buckets,
		Lo:         append([]float64(nil), h.lo...),
		Hi:         append([]float64(nil), h.hi...),
		Counts:     make([][]int64, dim),
		Recorded:   h.recorded.Load(),
		OutOfRange: h.outOfRange.Load(),
	}
	for d := 0; d < dim; d++ {
		row := make([]int64, h.buckets)
		for b := 0; b < h.buckets; b++ {
			row[b] = h.counts[d*h.buckets+b].Load()
		}
		doc.Counts[d] = row
	}
	return doc
}

// Snapshot returns the current histogram for a key.
func (t *Telemetry) Snapshot(key string) (TelemetrySnapshot, bool) {
	t.mu.RLock()
	h := t.tmpl[key]
	t.mu.RUnlock()
	if h == nil {
		return TelemetrySnapshot{}, false
	}
	return h.snapshot(), true
}

// Keys returns the resident template keys, sorted.
func (t *Telemetry) Keys() []string {
	t.mu.RLock()
	out := make([]string, 0, len(t.tmpl))
	for k := range t.tmpl {
		out = append(out, k)
	}
	t.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Flush persists every histogram with records newer than its last
// flush, through the fsync'd atomic temp+rename write. It returns the
// first write error after attempting every dirty histogram.
func (t *Telemetry) Flush() error {
	t.mu.RLock()
	dirty := make([]*TemplateTelemetry, 0, len(t.tmpl))
	for _, h := range t.tmpl {
		if h.recorded.Load() > h.flushedAt.Load() {
			dirty = append(dirty, h)
		}
	}
	t.mu.RUnlock()
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].key < dirty[j].key })
	var first error
	for _, h := range dirty {
		doc := h.snapshot()
		raw, err := json.MarshalIndent(doc, "", " ")
		if err == nil {
			err = fleet.WriteFileAtomicFS(t.fs, t.dir, filepath.Join(t.dir, h.key+telemetrySuffix), raw)
		}
		t.statsMu.Lock()
		if err != nil {
			t.flushErrors++
			if first == nil {
				first = fmt.Errorf("obs: flushing telemetry for %s: %w", h.key, err)
			}
		} else {
			t.flushes++
			h.flushedAt.Store(doc.Recorded)
		}
		t.statsMu.Unlock()
	}
	return first
}

// Stats returns a snapshot of the recorder's counters.
func (t *Telemetry) Stats() TelemetryStats {
	st := TelemetryStats{Offered: t.offered.Load()}
	t.mu.RLock()
	st.Templates = len(t.tmpl)
	for _, h := range t.tmpl {
		st.Recorded += h.recorded.Load()
		st.OutOfRange += h.outOfRange.Load()
	}
	t.mu.RUnlock()
	t.statsMu.Lock()
	st.Flushes = t.flushes
	st.FlushErrors = t.flushErrors
	st.LoadErrors = t.loadErrors
	t.statsMu.Unlock()
	return st
}

// Dir returns the telemetry directory.
func (t *Telemetry) Dir() string { return t.dir }
