package pwl

import (
	"math"
	"testing"

	"mpq/internal/geometry"
)

func TestApproximateLinearIsExact(t *testing.T) {
	f := func(x geometry.Vector) float64 { return 3*x[0] - 2*x[1] + 1 }
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	a := Approximate(f, lo, hi, 2)
	if err := MaxAbsError(a, f, lo, hi, 9); err > 1e-9 {
		t.Errorf("linear approximation error = %v, want ~0", err)
	}
}

func TestApproximate1DQuadratic(t *testing.T) {
	f := func(x geometry.Vector) float64 { return x[0] * x[0] }
	lo, hi := geometry.Vector{0}, geometry.Vector{1}
	coarse := Approximate(f, lo, hi, 2)
	fine := Approximate(f, lo, hi, 8)
	errCoarse := MaxAbsError(coarse, f, lo, hi, 33)
	errFine := MaxAbsError(fine, f, lo, hi, 33)
	if errFine >= errCoarse {
		t.Errorf("finer grid should reduce error: coarse=%v fine=%v", errCoarse, errFine)
	}
	// Error of chord interpolation of x^2 on width-h cells is h^2/4 at
	// the cell midpoint.
	if want := 1.0 / (4 * 64); errFine > want+1e-9 {
		t.Errorf("fine error = %v, want <= %v", errFine, want)
	}
	// Exact at grid vertices.
	for i := 0; i <= 8; i++ {
		x := geometry.Vector{float64(i) / 8}
		v, _ := fine.Eval(x)
		if !almostEqual(v, f(x), 1e-9) {
			t.Errorf("vertex %v: approx=%v f=%v", x, v, f(x))
		}
	}
}

func TestApproximate2DBilinear(t *testing.T) {
	// The bilinear x1*x2 is the canonical nonlinear cardinality term for
	// two parameterized predicates (DESIGN.md).
	f := func(x geometry.Vector) float64 { return x[0] * x[1] }
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	a := Approximate(f, lo, hi, 4)
	// 4x4 cells, 2 simplices each.
	if a.NumPieces() != 32 {
		t.Errorf("pieces = %d, want 32", a.NumPieces())
	}
	if err := MaxAbsError(a, f, lo, hi, 17); err > 0.05 {
		t.Errorf("bilinear approximation error = %v, want <= 0.05", err)
	}
	// Exact at vertices.
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			x := geometry.Vector{float64(i) / 4, float64(j) / 4}
			v, ok := a.Eval(x)
			if !ok || !almostEqual(v, f(x), 1e-9) {
				t.Errorf("vertex %v: approx=%v ok=%v f=%v", x, v, ok, f(x))
			}
		}
	}
}

func TestApproximateCoversDomain(t *testing.T) {
	// Every point of the box must be inside some piece region.
	f := func(x geometry.Vector) float64 { return math.Sin(3*x[0]) + x[1] }
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	a := Approximate(f, lo, hi, 3)
	for _, x := range geometry.SamplePointsInBox(lo, hi, 11, 200) {
		if _, ok := a.Eval(x); !ok {
			t.Errorf("point %v not covered by any piece", x)
		}
	}
}

func TestApproximateNonUnitBox(t *testing.T) {
	f := func(x geometry.Vector) float64 { return x[0] / (3 + x[1]) }
	lo, hi := geometry.Vector{2, -1}, geometry.Vector{6, 3}
	a := Approximate(f, lo, hi, 4)
	// Vertices exact.
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			x := geometry.Vector{2 + float64(i), -1 + float64(j)}
			v, ok := a.Eval(x)
			if !ok || !almostEqual(v, f(x), 1e-9) {
				t.Errorf("vertex %v: approx=%v ok=%v f=%v", x, v, ok, f(x))
			}
		}
	}
}

func TestApproximate3D(t *testing.T) {
	f := func(x geometry.Vector) float64 { return x[0] * x[1] * x[2] }
	lo, hi := geometry.Vector{0, 0, 0}, geometry.Vector{1, 1, 1}
	a := Approximate(f, lo, hi, 2)
	// 8 cells * 3! simplices = 48 pieces.
	if a.NumPieces() != 48 {
		t.Errorf("pieces = %d, want 48", a.NumPieces())
	}
	if err := MaxAbsError(a, f, lo, hi, 5); err > 0.2 {
		t.Errorf("error = %v, want <= 0.2", err)
	}
}

func TestPermutations(t *testing.T) {
	ps := permutations(3)
	if len(ps) != 6 {
		t.Fatalf("got %d permutations, want 6", len(ps))
	}
	seen := map[[3]int]bool{}
	for _, p := range ps {
		seen[[3]int{p[0], p[1], p[2]}] = true
	}
	if len(seen) != 6 {
		t.Errorf("permutations not distinct: %v", ps)
	}
}
