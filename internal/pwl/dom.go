package pwl

import (
	"mpq/internal/geometry"
)

// domPoly is a dominance polytope together with provenance: the region
// it was cut from and the dominance halfspaces applied, enabling
// LP-free full-dimensionality certificates and partition-based pruning
// in the cross-metric product.
type domPoly struct {
	poly *geometry.Polytope
	base *geometry.Polytope
	cuts []geometry.Halfspace // poly == base.With(cuts...)
}

// Dom computes a set of convex polytopes covering the parameter-space
// region in which cost function c1 dominates cost function c2, i.e. the
// region {x : c1_m(x) <= c2_m(x) for every metric m}. This is function
// Dom of Algorithm 3 in the paper:
//
//  1. For each metric m, collect the polytopes where c1 is better than
//     or equal to c2 according to m: for every pair of linear pieces the
//     region is the piece-region intersection further constrained by the
//     linear inequality (w1-w2)·x <= b2-b1 (Theorem 2: this is a convex
//     polytope inside a linear region).
//  2. Combine metrics by intersecting one polytope per metric, over all
//     combinations (the last line of Algorithm 3).
//
// Polytopes that are not full-dimensional are dropped: they cannot
// contribute to covering a full-dimensional relevance region and would
// otherwise bloat cutout lists (see DESIGN.md). Pairs of polytopes cut
// from distinct cells of one partition family are skipped in step 2
// because their intersection is lower-dimensional by construction.
func Dom(ctx *geometry.Context, c1, c2 *Multi) []*geometry.Polytope {
	nM := c1.NumMetrics()
	if c2.NumMetrics() != nM {
		panic("pwl: dominance between functions with different metric counts")
	}
	perMetric := make([][]domPoly, nM)
	for m := 0; m < nM; m++ {
		polys := domSingle(ctx, c1.Component(m), c2.Component(m))
		if len(polys) == 0 {
			return nil // c1 nowhere at-least-as-good on metric m
		}
		perMetric[m] = polys
	}
	result := perMetric[0]
	for m := 1; m < nM; m++ {
		var next []domPoly
		for _, a := range result {
			for _, b := range perMetric[m] {
				if merged, ok := intersectDomPolys(ctx, a, b); ok {
					next = append(next, merged)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		result = next
	}
	out := make([]*geometry.Polytope, len(result))
	for i, dp := range result {
		out[i] = dp.poly
	}
	return out
}

// intersectDomPolys intersects two dominance polytopes, keeping only
// full-dimensional results.
func intersectDomPolys(ctx *geometry.Context, a, b domPoly) (domPoly, bool) {
	if geometry.SameFamilyDisjoint(a.base, b.base) {
		// Distinct cells of one partition: lower-dimensional overlap.
		return domPoly{}, false
	}
	if a.base == b.base {
		cuts := make([]geometry.Halfspace, 0, len(a.cuts)+len(b.cuts))
		cuts = append(cuts, a.cuts...)
		cuts = append(cuts, b.cuts...)
		if ctx.BallCertifiesFullDim(a.base, cuts...) {
			return domPoly{poly: a.base.With(cuts...), base: a.base, cuts: cuts}, true
		}
		p := a.base.With(cuts...)
		if ctx.IsFullDim(p) {
			return domPoly{poly: p, base: a.base, cuts: cuts}, true
		}
		return domPoly{}, false
	}
	p := a.poly.Intersect(b.poly)
	if !ctx.IsFullDim(p) {
		return domPoly{}, false
	}
	return domPoly{poly: p, base: p}, true
}

// domSingle returns dominance polytopes covering {x : f(x) <= g(x)} for
// single-objective PWL functions. Shared-partition fast paths mirror
// those of the combination operators: cross pairs of a common partition
// have lower-dimensional intersections and are skipped without solving
// LPs; a memoized Chebyshev-ball certificate avoids the LP for cuts that
// clearly retain an interior ball.
func domSingle(ctx *geometry.Context, f, g *Function) []domPoly {
	var polys []domPoly
	emit := func(r *geometry.Polytope, fp, gp Piece) {
		h := geometry.Halfspace{W: fp.W.Sub(gp.W), B: gp.B - fp.B}
		if ctx.BallCertifiesFullDim(r, h) {
			polys = append(polys, domPoly{poly: r.With(h), base: r, cuts: []geometry.Halfspace{h}})
			return
		}
		rDom := r.With(h)
		if ctx.IsFullDim(rDom) {
			polys = append(polys, domPoly{poly: rDom, base: r, cuts: []geometry.Halfspace{h}})
		}
	}
	sharedCover := f.cover != nil && f.cover == g.cover
	switch {
	case sharedCover && len(f.pieces) == 1:
		for _, gp := range g.pieces {
			emit(gp.Region, f.pieces[0], gp)
		}
	case sharedCover && len(g.pieces) == 1:
		for _, fp := range f.pieces {
			emit(fp.Region, fp, g.pieces[0])
		}
	case sharedCover && alignedPartitions(f, g):
		for i, fp := range f.pieces {
			emit(fp.Region, fp, g.pieces[i])
		}
	default:
		for _, fp := range f.pieces {
			for _, gp := range g.pieces {
				if geometry.SameFamilyDisjoint(fp.Region, gp.Region) {
					continue
				}
				var r *geometry.Polytope
				if fp.Region == gp.Region {
					r = fp.Region
				} else {
					r = fp.Region.Intersect(gp.Region)
					if !ctx.IsFullDim(r) {
						continue
					}
				}
				emit(r, fp, gp)
			}
		}
	}
	return polys
}

// DomScaled computes convex polytopes covering the parameter-space
// region {x : s1·c1_m(x) <= s2·c2_m(x) for every metric m} — the
// scaled-dominance primitive of the ε-approximate prune. With
// s1 = 1, s2 = 1+ε the result covers the region where c1 is within a
// multiplicative (1+ε) factor of dominating c2; with s1 = 1+ε, s2 = 1
// it covers the strict inverse (c1 at most c2/(1+ε)). The scales are
// folded directly into each piece-pair halfspace — no division, so the
// construction is exactly as numerically stable as the exact Dom. The
// structure mirrors Dom piece for piece (shared-cover fast paths,
// partition-family skips, full-dimensionality certificates); the exact
// path never calls this function, keeping ε = 0 runs byte-identical to
// the historical algorithm.
func DomScaled(ctx *geometry.Context, c1, c2 *Multi, s1, s2 float64) []*geometry.Polytope {
	nM := c1.NumMetrics()
	if c2.NumMetrics() != nM {
		panic("pwl: scaled dominance between functions with different metric counts")
	}
	perMetric := make([][]domPoly, nM)
	for m := 0; m < nM; m++ {
		polys := domSingleScaled(ctx, c1.Component(m), c2.Component(m), s1, s2)
		if len(polys) == 0 {
			return nil // s1·c1 nowhere at most s2·c2 on metric m
		}
		perMetric[m] = polys
	}
	result := perMetric[0]
	for m := 1; m < nM; m++ {
		var next []domPoly
		for _, a := range result {
			for _, b := range perMetric[m] {
				if merged, ok := intersectDomPolys(ctx, a, b); ok {
					next = append(next, merged)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		result = next
	}
	out := make([]*geometry.Polytope, len(result))
	for i, dp := range result {
		out[i] = dp.poly
	}
	return out
}

// domSingleScaled returns dominance polytopes covering
// {x : s1·f(x) <= s2·g(x)} for single-objective PWL functions: per
// piece pair the halfspace (s1·w_f − s2·w_g)·x <= s2·b_g − s1·b_f.
// Fast paths and full-dimensionality handling mirror domSingle.
func domSingleScaled(ctx *geometry.Context, f, g *Function, s1, s2 float64) []domPoly {
	var polys []domPoly
	emit := func(r *geometry.Polytope, fp, gp Piece) {
		h := geometry.Halfspace{W: fp.W.Scale(s1).Sub(gp.W.Scale(s2)), B: s2*gp.B - s1*fp.B}
		if ctx.BallCertifiesFullDim(r, h) {
			polys = append(polys, domPoly{poly: r.With(h), base: r, cuts: []geometry.Halfspace{h}})
			return
		}
		rDom := r.With(h)
		if ctx.IsFullDim(rDom) {
			polys = append(polys, domPoly{poly: rDom, base: r, cuts: []geometry.Halfspace{h}})
		}
	}
	sharedCover := f.cover != nil && f.cover == g.cover
	switch {
	case sharedCover && len(f.pieces) == 1:
		for _, gp := range g.pieces {
			emit(gp.Region, f.pieces[0], gp)
		}
	case sharedCover && len(g.pieces) == 1:
		for _, fp := range f.pieces {
			emit(fp.Region, fp, g.pieces[0])
		}
	case sharedCover && alignedPartitions(f, g):
		for i, fp := range f.pieces {
			emit(fp.Region, fp, g.pieces[i])
		}
	default:
		for _, fp := range f.pieces {
			for _, gp := range g.pieces {
				if geometry.SameFamilyDisjoint(fp.Region, gp.Region) {
					continue
				}
				var r *geometry.Polytope
				if fp.Region == gp.Region {
					r = fp.Region
				} else {
					r = fp.Region.Intersect(gp.Region)
					if !ctx.IsFullDim(r) {
						continue
					}
				}
				emit(r, fp, gp)
			}
		}
	}
	return polys
}

// DominatesEverywhere reports whether c1 dominates c2 on the entire
// domain polytope: the dominance polytopes of Dom must cover the domain.
func DominatesEverywhere(ctx *geometry.Context, c1, c2 *Multi, domain *geometry.Polytope) bool {
	polys := Dom(ctx, c1, c2)
	if len(polys) == 0 {
		return false
	}
	return ctx.UnionCovers(domain, polys)
}
