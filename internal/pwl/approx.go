package pwl

import (
	"fmt"

	"mpq/internal/geometry"
)

// Approximate builds a piecewise-linear interpolation of an arbitrary
// cost function f on the box [lo, hi], with cells subdivisions per
// dimension, using the Kuhn (simplicial) triangulation of every grid
// cell: each cell is split into d! simplices and f is interpolated
// linearly on the vertices of every simplex. The interpolation agrees
// with f exactly at all grid vertices; if f is linear the result
// reproduces it exactly. This is the PWL-approximation strategy the
// parametric query optimization literature prescribes for nonlinear cost
// functions (Hulgeri & Sudarshan, cited as [17, 18] by the paper).
func Approximate(f func(geometry.Vector) float64, lo, hi geometry.Vector, cells int) *Function {
	return NewGrid(lo, hi, cells).Interpolate(f)
}

// Grid is a Kuhn (simplicial) triangulation of a box, precomputed once
// so that all cost functions approximated on it share the same region
// objects. Shared regions let the combination and dominance operators
// use their partition-aligned fast paths (see Function.Cover).
type Grid struct {
	lo, hi  geometry.Vector
	cells   int
	regions []*geometry.Polytope
	verts   [][]geometry.Vector // d+1 simplex vertices per region
	cover   *geometry.Polytope
}

// NewGrid triangulates [lo, hi] with cells subdivisions per dimension.
func NewGrid(lo, hi geometry.Vector, cells int) *Grid {
	dim := len(lo)
	if dim != len(hi) {
		panic("pwl: approximation bounds dimension mismatch")
	}
	if dim == 0 {
		panic("pwl: zero-dimensional approximation")
	}
	if cells < 1 {
		cells = 1
	}
	h := geometry.NewVector(dim) // cell widths
	for i := 0; i < dim; i++ {
		h[i] = (hi[i] - lo[i]) / float64(cells)
		if h[i] <= 0 {
			panic(fmt.Sprintf("pwl: empty approximation box in dimension %d", i))
		}
	}
	g := &Grid{lo: lo.Clone(), hi: hi.Clone(), cells: cells, cover: geometry.Box(lo, hi)}
	family := geometry.NewFamily("kuhn-grid")
	perms := permutations(dim)
	idx := make([]int, dim)
	for {
		cellLo := geometry.NewVector(dim)
		for i := 0; i < dim; i++ {
			cellLo[i] = lo[i] + float64(idx[i])*h[i]
		}
		for _, perm := range perms {
			region, verts := kuhnSimplex(cellLo, h, perm)
			region.MarkFamily(family)
			g.regions = append(g.regions, region)
			g.verts = append(g.verts, verts)
		}
		// Advance odometer.
		i := 0
		for ; i < dim; i++ {
			idx[i]++
			if idx[i] < cells {
				break
			}
			idx[i] = 0
		}
		if i == dim {
			break
		}
	}
	return g
}

// Cover returns the triangulated box.
func (g *Grid) Cover() *geometry.Polytope { return g.cover }

// NumRegions returns the number of simplices.
func (g *Grid) NumRegions() int { return len(g.regions) }

// Interpolate builds the PWL interpolation of f on the grid, exact at
// all simplex vertices. The returned function shares the grid's region
// objects and carries the grid box as its cover.
func (g *Grid) Interpolate(f func(geometry.Vector) float64) *Function {
	dim := len(g.lo)
	pieces := make([]Piece, 0, len(g.regions))
	a := make([][]float64, dim+1)
	rhs := make([]float64, dim+1)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for ri, region := range g.regions {
		verts := g.verts[ri]
		for r := 0; r <= dim; r++ {
			copy(a[r], verts[r])
			a[r][dim] = 1
			rhs[r] = f(verts[r])
		}
		sol, ok := geometry.SolveLinearSystem(a, rhs)
		if !ok {
			continue
		}
		pieces = append(pieces, Piece{
			Region: region,
			W:      geometry.Vector(sol[:dim]).Clone(),
			B:      sol[dim],
		})
	}
	fn := NewFunction(pieces...)
	fn.cover = g.cover
	return fn
}

// kuhnSimplex builds the region and vertices of the Kuhn simplex of the
// cell [cellLo, cellLo+h] induced by the permutation perm: the simplex
// with vertices v_0 = cellLo, v_j = v_{j-1} + h[perm[j-1]] * e_{perm[j-1]},
// described by the ordering constraints t_{perm[0]} >= ... >=
// t_{perm[d-1]} on the normalized cell coordinates
// t_i = (x_i - cellLo_i)/h_i.
func kuhnSimplex(cellLo, h geometry.Vector, perm []int) (*geometry.Polytope, []geometry.Vector) {
	dim := len(cellLo)
	verts := make([]geometry.Vector, dim+1)
	verts[0] = cellLo.Clone()
	for j := 1; j <= dim; j++ {
		v := verts[j-1].Clone()
		v[perm[j-1]] += h[perm[j-1]]
		verts[j] = v
	}
	var hs []geometry.Halfspace
	// t_{perm[0]} <= 1  ⇔  x_{perm[0]} <= cellLo + h.
	first := perm[0]
	wFirst := geometry.NewVector(dim)
	wFirst[first] = 1
	hs = append(hs, geometry.Halfspace{W: wFirst, B: cellLo[first] + h[first]})
	// t_{perm[d-1]} >= 0  ⇔  -x_{perm[d-1]} <= -cellLo.
	last := perm[dim-1]
	wLast := geometry.NewVector(dim)
	wLast[last] = -1
	hs = append(hs, geometry.Halfspace{W: wLast, B: -cellLo[last]})
	// Ordering: t_{perm[j]} >= t_{perm[j+1]}, i.e.
	// (x_{perm[j+1]}-cellLo)/h_{perm[j+1]} - (x_{perm[j]}-cellLo)/h_{perm[j]} <= 0.
	for j := 0; j+1 < dim; j++ {
		p, q := perm[j], perm[j+1]
		w := geometry.NewVector(dim)
		w[q] = 1 / h[q]
		w[p] = -1 / h[p]
		b := cellLo[q]/h[q] - cellLo[p]/h[p]
		hs = append(hs, geometry.Halfspace{W: w, B: b})
	}
	return geometry.NewPolytope(dim, hs...), verts
}

// permutations enumerates all permutations of 0..n-1.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// MaxAbsError samples the approximation error |approx(x) - f(x)| on a
// grid of sample points and returns the maximum, a diagnostic used by
// tests and the cost-model calibration.
func MaxAbsError(approx *Function, f func(geometry.Vector) float64, lo, hi geometry.Vector, samplesPerDim int) float64 {
	pts := geometry.SamplePointsInBox(lo, hi, samplesPerDim, 10000)
	worst := 0.0
	for _, x := range pts {
		v, _ := approx.Eval(x)
		d := v - f(x)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
