package pwl

import (
	"mpq/internal/geometry"
)

// AccumMode selects how the cost of two sub-plans is combined into the
// cost of their parent (Section 6.1: "standard accumulation functions
// such as minimum, maximum, and weighted sum").
type AccumMode int

const (
	// AccumSum adds the sub-plan costs (sequential execution; additive
	// metrics such as monetary fees).
	AccumSum AccumMode = iota
	// AccumMax takes the maximum (execution time of sub-plans executed
	// in parallel).
	AccumMax
	// AccumMin takes the minimum.
	AccumMin
)

func (m AccumMode) String() string {
	switch m {
	case AccumSum:
		return "sum"
	case AccumMax:
		return "max"
	case AccumMin:
		return "min"
	}
	return "unknown"
}

// Add returns f + g. The parameter space is partitioned into regions in
// which both functions are linear (piece-region intersections); in each
// non-empty region the weight vectors and base costs are added, exactly
// as illustrated by Figure 11 of the paper. Pieces whose region is not
// full-dimensional are dropped.
func Add(ctx *geometry.Context, f, g *Function) *Function {
	return combine(ctx, f, g, func(r *geometry.Polytope, fp, gp Piece) []Piece {
		return []Piece{{Region: r, W: fp.W.Add(gp.W), B: fp.B + gp.B}}
	})
}

// Max returns the pointwise maximum of f and g. Each pair of overlapping
// pieces is split by the hyperplane where the two linear functions
// cross.
func Max(ctx *geometry.Context, f, g *Function) *Function {
	return combine(ctx, f, g, func(r *geometry.Polytope, fp, gp Piece) []Piece {
		// f >= g where (gp.W - fp.W)·x <= fp.B - gp.B.
		return splitPieces(ctx, r,
			Piece{W: fp.W, B: fp.B}, geometry.Halfspace{W: gp.W.Sub(fp.W), B: fp.B - gp.B},
			Piece{W: gp.W, B: gp.B}, geometry.Halfspace{W: fp.W.Sub(gp.W), B: gp.B - fp.B})
	})
}

// Min returns the pointwise minimum of f and g.
func Min(ctx *geometry.Context, f, g *Function) *Function {
	return combine(ctx, f, g, func(r *geometry.Polytope, fp, gp Piece) []Piece {
		return splitPieces(ctx, r,
			Piece{W: fp.W, B: fp.B}, geometry.Halfspace{W: gp.W.Sub(fp.W), B: fp.B - gp.B}.Flip(),
			Piece{W: gp.W, B: gp.B}, geometry.Halfspace{W: fp.W.Sub(gp.W), B: gp.B - fp.B}.Flip())
	})
}

// splitPieces cuts region r by the crossing hyperplane, keeping only the
// full-dimensional halves; the Chebyshev-ball certificate of r avoids an
// LP when a half clearly retains an interior ball.
func splitPieces(ctx *geometry.Context, r *geometry.Polytope, pa Piece, ha geometry.Halfspace, pb Piece, hb geometry.Halfspace) []Piece {
	out := make([]Piece, 0, 2)
	for _, half := range []struct {
		p Piece
		h geometry.Halfspace
	}{{pa, ha}, {pb, hb}} {
		if ctx.BallCertifiesFullDim(r, half.h) {
			out = append(out, Piece{Region: r.With(half.h), W: half.p.W, B: half.p.B})
			continue
		}
		side := r.With(half.h)
		if ctx.IsFullDim(side) {
			out = append(out, Piece{Region: side, W: half.p.W, B: half.p.B})
		}
	}
	return out
}

// Scale returns s * f.
func Scale(f *Function, s float64) *Function {
	pieces := make([]Piece, len(f.pieces))
	for i, p := range f.pieces {
		pieces[i] = Piece{Region: p.Region, W: p.W.Scale(s), B: p.B * s}
	}
	return &Function{dim: f.dim, pieces: pieces, cover: f.cover}
}

// AddConstant returns f + c.
func AddConstant(f *Function, c float64) *Function {
	pieces := make([]Piece, len(f.pieces))
	for i, p := range f.pieces {
		pieces[i] = Piece{Region: p.Region, W: p.W.Clone(), B: p.B + c}
	}
	return &Function{dim: f.dim, pieces: pieces, cover: f.cover}
}

// combine applies build to every full-dimensional intersection of a
// piece of f with a piece of g.
//
// Fast paths exploit shared partitions: when f and g carry the same
// cover polytope, a single-piece function spans the whole partition of
// the other (no intersection checks needed), and two functions whose
// piece regions are pairwise identical pointers combine piece-by-piece
// because cross pairs of a common partition have lower-dimensional
// intersections by construction.
func combine(ctx *geometry.Context, f, g *Function, build func(*geometry.Polytope, Piece, Piece) []Piece) *Function {
	if f.dim != g.dim {
		panic("pwl: combining functions of different dimensions")
	}
	// build must return only pieces that are valid to keep: its result
	// regions are either r itself or full-dimensional cuts of r (the
	// split helpers filter internally).
	var out []Piece
	emit := func(r *geometry.Polytope, fp, gp Piece) {
		out = append(out, build(r, fp, gp)...)
	}
	sharedCover := f.cover != nil && f.cover == g.cover
	switch {
	case sharedCover && len(f.pieces) == 1:
		fp := f.pieces[0]
		for _, gp := range g.pieces {
			emit(gp.Region, fp, gp)
		}
	case sharedCover && len(g.pieces) == 1:
		gp := g.pieces[0]
		for _, fp := range f.pieces {
			emit(fp.Region, fp, gp)
		}
	case sharedCover && alignedPartitions(f, g):
		for i, fp := range f.pieces {
			emit(fp.Region, fp, g.pieces[i])
		}
	default:
		for _, fp := range f.pieces {
			for _, gp := range g.pieces {
				r := fp.Region.Intersect(gp.Region)
				if !ctx.IsFullDim(r) {
					continue
				}
				emit(r, fp, gp)
			}
		}
	}
	if len(out) == 0 {
		// Functions with disjoint domains: keep an explicit empty-domain
		// representation to avoid panics downstream.
		empty := geometry.NewPolytope(f.dim, geometry.Halfspace{W: geometry.NewVector(f.dim), B: -1})
		out = []Piece{{Region: empty, W: geometry.NewVector(f.dim), B: 0}}
	}
	res := &Function{dim: f.dim, pieces: out}
	if sharedCover {
		res.cover = f.cover
	}
	return res
}

// alignedPartitions reports whether f and g consist of pieces over the
// exact same region objects, in order.
func alignedPartitions(f, g *Function) bool {
	if len(f.pieces) != len(g.pieces) {
		return false
	}
	for i := range f.pieces {
		if f.pieces[i].Region != g.pieces[i].Region {
			return false
		}
	}
	return true
}

// WeightedSum scalarizes a multi-objective function into a single
// objective using non-negative metric weights.
func WeightedSum(ctx *geometry.Context, m *Multi, weights []float64) *Function {
	if len(weights) != m.NumMetrics() {
		panic("pwl: weight count mismatch")
	}
	acc := Scale(m.Component(0), weights[0])
	for i := 1; i < m.NumMetrics(); i++ {
		acc = Add(ctx, acc, Scale(m.Component(i), weights[i]))
	}
	return acc
}

// AccumulateMulti combines the costs of two sub-plans and the cost of the
// operator that joins them into the cost of the new plan (Algorithm 3,
// AccumulateCost, generalized per footnote 1: sub-plan costs are combined
// first, the operator cost is added in a second step). modes selects the
// per-metric combination of the sub-plan costs; the operator cost is
// always additive.
func AccumulateMulti(ctx *geometry.Context, modes []AccumMode, opCost, c1, c2 *Multi) *Multi {
	nM := c1.NumMetrics()
	if c2.NumMetrics() != nM || opCost.NumMetrics() != nM || len(modes) != nM {
		panic("pwl: metric count mismatch in accumulation")
	}
	comps := make([]*Function, nM)
	for m := 0; m < nM; m++ {
		var combined *Function
		switch modes[m] {
		case AccumSum:
			combined = Add(ctx, c1.Component(m), c2.Component(m))
		case AccumMax:
			combined = Max(ctx, c1.Component(m), c2.Component(m))
		case AccumMin:
			combined = Min(ctx, c1.Component(m), c2.Component(m))
		default:
			panic("pwl: unknown accumulation mode")
		}
		comps[m] = Add(ctx, combined, opCost.Component(m))
	}
	return NewMulti(comps...)
}

// Simplify removes redundant linear constraints from every piece region
// (first refinement of Section 6.2). The represented function is
// unchanged.
func Simplify(ctx *geometry.Context, f *Function) *Function {
	pieces := make([]Piece, len(f.pieces))
	for i, p := range f.pieces {
		pieces[i] = Piece{Region: ctx.RemoveRedundant(p.Region), W: p.W, B: p.B}
	}
	return &Function{dim: f.dim, pieces: pieces, cover: f.cover}
}

// SimplifyMulti applies Simplify to every component.
func SimplifyMulti(ctx *geometry.Context, m *Multi) *Multi {
	comps := make([]*Function, m.NumMetrics())
	for i := range comps {
		comps[i] = Simplify(ctx, m.Component(i))
	}
	return NewMulti(comps...)
}

// Compact merges pieces that share the same linear function whenever
// their union is convex (recognized with the Bemporad et al. algorithm),
// reducing piece counts after accumulation.
func Compact(ctx *geometry.Context, f *Function) *Function {
	groups := make(map[string][]Piece)
	var order []string
	for _, p := range f.pieces {
		k := pieceKey(p)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	var out []Piece
	for _, k := range order {
		ps := groups[k]
		if len(ps) == 1 {
			out = append(out, ps[0])
			continue
		}
		regions := make([]*geometry.Polytope, len(ps))
		for i, p := range ps {
			regions[i] = p.Region
		}
		if u, convex := ctx.UnionConvex(regions); convex && u != nil {
			out = append(out, Piece{Region: u, W: ps[0].W, B: ps[0].B})
		} else {
			out = append(out, ps...)
		}
	}
	return &Function{dim: f.dim, pieces: out, cover: f.cover}
}

func pieceKey(p Piece) string {
	key := make([]byte, 0, 16*(len(p.W)+1))
	appendF := func(v float64) {
		key = appendFloat(key, v)
	}
	for _, w := range p.W {
		appendF(w)
	}
	appendF(p.B)
	return string(key)
}

func appendFloat(b []byte, v float64) []byte {
	// Round to 10 decimal digits for grouping.
	const scale = 1e10
	r := int64(v * scale)
	for i := 0; i < 8; i++ {
		b = append(b, byte(r>>(8*i)))
	}
	return append(b, '|')
}
