package pwl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpq/internal/geometry"
)

// randPWL builds a random single-objective PWL function on [0,1]^dim by
// approximating a random quadratic on a random grid.
func randPWL(r *rand.Rand, dim int) *Function {
	a := make([]float64, dim)
	b := make([]float64, dim)
	for i := range a {
		a[i] = r.Float64()*4 - 2
		b[i] = r.Float64()*4 - 2
	}
	c := r.Float64() * 3
	f := func(x geometry.Vector) float64 {
		s := c
		for i := range x {
			s += a[i]*x[i]*x[i] + b[i]*x[i]
		}
		return s
	}
	lo := geometry.NewVector(dim)
	hi := geometry.NewVector(dim)
	for i := range hi {
		hi[i] = 1
	}
	return Approximate(f, lo, hi, 1+r.Intn(2))
}

func TestAddPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := geometry.NewContext()
	for trial := 0; trial < 25; trial++ {
		dim := 1 + rng.Intn(2)
		f, g := randPWL(rng, dim), randPWL(rng, dim)
		sum := Add(ctx, f, g)
		lo := geometry.NewVector(dim)
		hi := geometry.NewVector(dim)
		for i := range hi {
			hi[i] = 1
		}
		for _, x := range geometry.SamplePointsInBox(lo, hi, 5, 50) {
			fv, _ := f.Eval(x)
			gv, _ := g.Eval(x)
			sv, ok := sum.Eval(x)
			if !ok {
				t.Fatalf("trial %d: sum undefined at %v", trial, x)
			}
			if !almostEqual(sv, fv+gv, 1e-6) {
				t.Fatalf("trial %d: sum(%v)=%v, want %v", trial, x, sv, fv+gv)
			}
		}
	}
}

func TestMinMaxPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ctx := geometry.NewContext()
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(2)
		f, g := randPWL(rng, dim), randPWL(rng, dim)
		mn := Min(ctx, f, g)
		mx := Max(ctx, f, g)
		lo := geometry.NewVector(dim)
		hi := geometry.NewVector(dim)
		for i := range hi {
			hi[i] = 1
		}
		for _, x := range geometry.SamplePointsInBox(lo, hi, 5, 50) {
			fv, _ := f.Eval(x)
			gv, _ := g.Eval(x)
			mnv, _ := mn.Eval(x)
			mxv, _ := mx.Eval(x)
			if !almostEqual(mnv, math.Min(fv, gv), 1e-6) {
				t.Fatalf("trial %d: min(%v)=%v, want %v", trial, x, mnv, math.Min(fv, gv))
			}
			if !almostEqual(mxv, math.Max(fv, gv), 1e-6) {
				t.Fatalf("trial %d: max(%v)=%v, want %v", trial, x, mxv, math.Max(fv, gv))
			}
		}
	}
}

func TestScaleAddConstant(t *testing.T) {
	f := Linear(unitInterval(), geometry.Vector{2}, 1)
	g := Scale(f, 3)
	v, _ := g.Eval(geometry.Vector{0.5})
	if !almostEqual(v, 6, 1e-12) {
		t.Errorf("scale: got %v, want 6", v)
	}
	h := AddConstant(f, 10)
	v, _ = h.Eval(geometry.Vector{0.5})
	if !almostEqual(v, 12, 1e-12) {
		t.Errorf("addconst: got %v, want 12", v)
	}
}

func TestWeightedSum(t *testing.T) {
	ctx := geometry.NewContext()
	dom := unitInterval()
	m := NewMulti(
		Linear(dom, geometry.Vector{1}, 0), // time = x
		Constant(dom, 4),                   // fees = 4
	)
	ws := WeightedSum(ctx, m, []float64{2, 0.5})
	v, _ := ws.Eval(geometry.Vector{0.5})
	if !almostEqual(v, 2*0.5+0.5*4, 1e-9) {
		t.Errorf("weighted sum = %v, want 3", v)
	}
}

func TestAccumulateMultiSum(t *testing.T) {
	ctx := geometry.NewContext()
	dom := unitInterval()
	c1 := NewMulti(Linear(dom, geometry.Vector{1}, 0), Constant(dom, 1))
	c2 := NewMulti(Linear(dom, geometry.Vector{2}, 1), Constant(dom, 2))
	op := NewMulti(Constant(dom, 0.5), Constant(dom, 0.25))
	acc := AccumulateMulti(ctx, []AccumMode{AccumSum, AccumSum}, op, c1, c2)
	v, _ := acc.Eval(geometry.Vector{0.5})
	want := geometry.Vector{0.5 + 2 + 0.5, 1 + 2 + 0.25}
	if !v.Equal(want, 1e-9) {
		t.Errorf("accumulated = %v, want %v", v, want)
	}
}

func TestAccumulateMultiMax(t *testing.T) {
	ctx := geometry.NewContext()
	dom := unitInterval()
	// time(c1) = x, time(c2) = 1-x: max crosses at 0.5.
	c1 := NewMulti(Linear(dom, geometry.Vector{1}, 0))
	c2 := NewMulti(Linear(dom, geometry.Vector{-1}, 1))
	op := NewMulti(Constant(dom, 0))
	acc := AccumulateMulti(ctx, []AccumMode{AccumMax}, op, c1, c2)
	for _, x := range []float64{0.1, 0.5, 0.9} {
		v, _ := acc.Eval(geometry.Vector{x})
		want := math.Max(x, 1-x)
		if !almostEqual(v[0], want, 1e-9) {
			t.Errorf("max-accum(%v) = %v, want %v", x, v[0], want)
		}
	}
}

func TestSimplifyPreservesFunction(t *testing.T) {
	ctx := geometry.NewContext()
	// Build a function whose piece regions carry redundant constraints.
	r := geometry.Interval(0, 1).With(
		geometry.Halfspace{W: geometry.Vector{1}, B: 5},
		geometry.Halfspace{W: geometry.Vector{-1}, B: 3},
	)
	f := NewFunction(Piece{Region: r, W: geometry.Vector{1}, B: 0})
	s := Simplify(ctx, f)
	if s.Pieces()[0].Region.NumConstraints() >= r.NumConstraints() {
		t.Errorf("simplify did not remove redundant constraints: %d -> %d",
			r.NumConstraints(), s.Pieces()[0].Region.NumConstraints())
	}
	for _, x := range []float64{0, 0.3, 1} {
		a, _ := f.Eval(geometry.Vector{x})
		b, _ := s.Eval(geometry.Vector{x})
		if !almostEqual(a, b, 1e-12) {
			t.Errorf("simplify changed value at %v: %v vs %v", x, a, b)
		}
	}
}

func TestCompactMergesPieces(t *testing.T) {
	ctx := geometry.NewContext()
	// Same linear function on two adjacent intervals: should merge.
	f := NewFunction(
		Piece{Region: geometry.Interval(0, 0.5), W: geometry.Vector{2}, B: 1},
		Piece{Region: geometry.Interval(0.5, 1), W: geometry.Vector{2}, B: 1},
		Piece{Region: geometry.Interval(0, 1), W: geometry.Vector{3}, B: 0},
	)
	c := Compact(ctx, f)
	if c.NumPieces() != 2 {
		t.Fatalf("compact produced %d pieces, want 2", c.NumPieces())
	}
	// Disjoint regions with the same function must NOT merge.
	g := NewFunction(
		Piece{Region: geometry.Interval(0, 0.2), W: geometry.Vector{2}, B: 1},
		Piece{Region: geometry.Interval(0.8, 1), W: geometry.Vector{2}, B: 1},
	)
	cg := Compact(ctx, g)
	if cg.NumPieces() != 2 {
		t.Fatalf("compact merged disjoint regions: %d pieces", cg.NumPieces())
	}
}

// TestDomMatchesPointwise is the central property test of the dominance
// computation: a sampled point is inside some dominance polytope exactly
// when c1 is at most c2 on every metric at that point.
func TestDomMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := geometry.NewContext()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(2)
		nM := 1 + r.Intn(2)
		mk := func() *Multi {
			comps := make([]*Function, nM)
			for i := range comps {
				comps[i] = randPWL(r, dim)
			}
			return NewMulti(comps...)
		}
		c1, c2 := mk(), mk()
		polys := Dom(ctx, c1, c2)
		lo := geometry.NewVector(dim)
		hi := geometry.NewVector(dim)
		for i := range hi {
			hi[i] = 1
		}
		for _, x := range geometry.SamplePointsInBox(lo, hi, 6, 40) {
			v1, _ := c1.Eval(x)
			v2, _ := c2.Eval(x)
			dominates := true
			margin := math.Inf(1)
			for m := 0; m < nM; m++ {
				if v1[m] > v2[m]+1e-9 {
					dominates = false
				}
				if d := v2[m] - v1[m]; d < margin {
					margin = d
				}
			}
			inPoly := false
			for _, p := range polys {
				if p.ContainsPoint(x, 1e-7) {
					inPoly = true
					break
				}
			}
			// Only check points with a clear margin to avoid boundary
			// ambiguity (dominance regions are closed; thin regions are
			// dropped by design).
			if margin > 1e-3 && !inPoly {
				return false
			}
			if margin < -1e-3 && inPoly {
				return false
			}
			_ = dominates
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDominatesEverywhere(t *testing.T) {
	ctx := geometry.NewContext()
	dom := unitInterval()
	cheap := NewMulti(Linear(dom, geometry.Vector{1}, 0), Constant(dom, 1))
	expensive := NewMulti(Linear(dom, geometry.Vector{1}, 1), Constant(dom, 2))
	if !DominatesEverywhere(ctx, cheap, expensive, dom) {
		t.Error("cheap should dominate expensive everywhere")
	}
	if DominatesEverywhere(ctx, expensive, cheap, dom) {
		t.Error("expensive should not dominate cheap")
	}
	// Equal functions dominate each other everywhere (ties count).
	if !DominatesEverywhere(ctx, cheap, cheap, dom) {
		t.Error("function should dominate itself")
	}
	// Crossing functions: neither dominates everywhere.
	a := NewMulti(Linear(dom, geometry.Vector{1}, 0), Constant(dom, 1))
	b := NewMulti(Linear(dom, geometry.Vector{-1}, 1), Constant(dom, 1))
	if DominatesEverywhere(ctx, a, b, dom) || DominatesEverywhere(ctx, b, a, dom) {
		t.Error("crossing functions must not dominate everywhere")
	}
}

func TestDomDisjointOnAllMetrics(t *testing.T) {
	ctx := geometry.NewContext()
	dom := unitInterval()
	// c1 strictly worse on metric 0 everywhere: no dominance region.
	c1 := NewMulti(Constant(dom, 5), Constant(dom, 1))
	c2 := NewMulti(Constant(dom, 1), Constant(dom, 5))
	if polys := Dom(ctx, c1, c2); len(polys) != 0 {
		t.Errorf("Dom returned %d polytopes, want none", len(polys))
	}
}
