package pwl

import (
	"math/rand"
	"testing"

	"mpq/internal/geometry"
)

// TestAlignedFastPathMatchesGeneral: combining two functions built on
// the same grid (fast path) must produce the same function values as
// combining structurally identical functions without shared region
// objects (general path).
func TestAlignedFastPathMatchesGeneral(t *testing.T) {
	ctx := geometry.NewContext()
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	fClosure := func(x geometry.Vector) float64 { return x[0]*x[1] + 1 }
	gClosure := func(x geometry.Vector) float64 { return 2*x[0] - x[1]*x[1] + 3 }

	grid := NewGrid(lo, hi, 2)
	fShared, gShared := grid.Interpolate(fClosure), grid.Interpolate(gClosure)
	// Independent grids: same geometry, different region objects.
	fIndep := NewGrid(lo, hi, 2).Interpolate(fClosure)
	gIndep := NewGrid(lo, hi, 2).Interpolate(gClosure)

	sumShared := Add(ctx, fShared, gShared)
	sumIndep := Add(ctx, fIndep, gIndep)
	maxShared := Max(ctx, fShared, gShared)
	maxIndep := Max(ctx, fIndep, gIndep)

	for _, x := range geometry.SamplePointsInBox(lo, hi, 7, 100) {
		a, _ := sumShared.Eval(x)
		b, _ := sumIndep.Eval(x)
		if !almostEqual(a, b, 1e-9) {
			t.Fatalf("Add mismatch at %v: %v vs %v", x, a, b)
		}
		a, _ = maxShared.Eval(x)
		b, _ = maxIndep.Eval(x)
		if !almostEqual(a, b, 1e-9) {
			t.Fatalf("Max mismatch at %v: %v vs %v", x, a, b)
		}
	}
	// The fast path must not blow up piece counts.
	if sumShared.NumPieces() > grid.NumRegions() {
		t.Errorf("aligned Add produced %d pieces on a %d-region grid",
			sumShared.NumPieces(), grid.NumRegions())
	}
}

// TestAlignedFastPathSavesLPs: combining aligned functions must solve
// strictly fewer LPs than the general cross-product path.
func TestAlignedFastPathSavesLPs(t *testing.T) {
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	f := func(x geometry.Vector) float64 { return x[0] * x[1] }
	g := func(x geometry.Vector) float64 { return x[0] + x[1]*x[1] }

	grid := NewGrid(lo, hi, 3)
	ctxShared := geometry.NewContext()
	Add(ctxShared, grid.Interpolate(f), grid.Interpolate(g))
	shared := ctxShared.Stats.LPs

	ctxIndep := geometry.NewContext()
	Add(ctxIndep, NewGrid(lo, hi, 3).Interpolate(f), NewGrid(lo, hi, 3).Interpolate(g))
	indep := ctxIndep.Stats.LPs

	if shared >= indep {
		t.Errorf("aligned path solved %d LPs, general %d — expected savings", shared, indep)
	}
	if shared != 0 {
		t.Errorf("aligned path solved %d LPs, want 0", shared)
	}
}

// TestDomFastPathMatchesGeneral: dominance regions computed via the
// aligned fast path must classify sample points like the general path.
func TestDomFastPathMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{1, 1}
	for trial := 0; trial < 10; trial++ {
		a0, a1 := rng.Float64()*2, rng.Float64()*2
		f := func(x geometry.Vector) float64 { return a0*x[0]*x[1] + x[0] }
		g := func(x geometry.Vector) float64 { return a1 * (x[0] + x[1]) }
		grid := NewGrid(lo, hi, 2)
		ctx := geometry.NewContext()
		shared := Dom(ctx, NewMulti(grid.Interpolate(f)), NewMulti(grid.Interpolate(g)))
		indep := Dom(ctx, NewMulti(NewGrid(lo, hi, 2).Interpolate(f)), NewMulti(NewGrid(lo, hi, 2).Interpolate(g)))
		for _, x := range geometry.SamplePointsInBox(lo, hi, 5, 30) {
			inShared := pointInAny(shared, x)
			inIndep := pointInAny(indep, x)
			// Allow disagreement only near dominance boundaries.
			fv := evalOn(grid, f, x)
			gv := evalOn(grid, g, x)
			if d := gv - fv; d > 1e-3 || d < -1e-3 {
				if inShared != inIndep {
					t.Fatalf("trial %d: fast/general dominance mismatch at %v (margin %v)", trial, x, d)
				}
			}
		}
	}
}

func pointInAny(polys []*geometry.Polytope, x geometry.Vector) bool {
	for _, p := range polys {
		if p.ContainsPoint(x, 1e-7) {
			return true
		}
	}
	return false
}

func evalOn(g *Grid, f func(geometry.Vector) float64, x geometry.Vector) float64 {
	v, _ := g.Interpolate(f).Eval(x)
	return v
}

func TestWithCover(t *testing.T) {
	dom := geometry.Interval(0, 1)
	f := NewFunction(Piece{Region: dom, W: geometry.Vector{1}, B: 0})
	if f.Cover() != nil {
		t.Error("raw function should have no cover")
	}
	g := f.WithCover(dom)
	if g.Cover() != dom {
		t.Error("WithCover did not set cover")
	}
	// Linear/Constant carry their domain as cover automatically.
	if Linear(dom, geometry.Vector{1}, 0).Cover() != dom {
		t.Error("Linear missing cover")
	}
	if Constant(dom, 1).Cover() != dom {
		t.Error("Constant missing cover")
	}
	// Scale/AddConstant/Simplify preserve the cover.
	ctx := geometry.NewContext()
	if Scale(g, 2).Cover() != dom || AddConstant(g, 1).Cover() != dom {
		t.Error("Scale/AddConstant dropped cover")
	}
	if Simplify(ctx, g).Cover() != dom {
		t.Error("Simplify dropped cover")
	}
}

func TestGridProperties(t *testing.T) {
	lo, hi := geometry.Vector{0, 0}, geometry.Vector{2, 4}
	g := NewGrid(lo, hi, 3)
	if g.NumRegions() != 3*3*2 {
		t.Errorf("regions = %d, want 18", g.NumRegions())
	}
	ctx := geometry.NewContext()
	// The regions cover the box.
	if !ctx.UnionCovers(geometry.Box(lo, hi), g.regions) {
		t.Error("grid regions do not cover the box")
	}
	// Distinct regions are family-disjoint.
	if !geometry.SameFamilyDisjoint(g.regions[0], g.regions[1]) {
		t.Error("grid regions not marked as one partition family")
	}
}
