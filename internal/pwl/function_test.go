package pwl

import (
	"math"
	"testing"

	"mpq/internal/geometry"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func unitInterval() *geometry.Polytope { return geometry.Interval(0, 1) }

func TestConstantEval(t *testing.T) {
	f := Constant(unitInterval(), 3.5)
	v, ok := f.Eval(geometry.Vector{0.4})
	if !ok || !almostEqual(v, 3.5, 1e-12) {
		t.Errorf("Eval = %v ok=%v, want 3.5", v, ok)
	}
}

func TestLinearEval(t *testing.T) {
	f := Linear(unitInterval(), geometry.Vector{2}, 1)
	v, ok := f.Eval(geometry.Vector{0.25})
	if !ok || !almostEqual(v, 1.5, 1e-12) {
		t.Errorf("Eval = %v ok=%v, want 1.5", v, ok)
	}
}

func TestPiecewiseEvalSelectsPiece(t *testing.T) {
	// f(x) = x on [0, 0.5], f(x) = 1 - x on [0.5, 1].
	f := NewFunction(
		Piece{Region: geometry.Interval(0, 0.5), W: geometry.Vector{1}, B: 0},
		Piece{Region: geometry.Interval(0.5, 1), W: geometry.Vector{-1}, B: 1},
	)
	cases := []struct{ x, want float64 }{
		{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.2}, {1, 0},
	}
	for _, c := range cases {
		v, ok := f.Eval(geometry.Vector{c.x})
		if !ok || !almostEqual(v, c.want, 1e-9) {
			t.Errorf("Eval(%v) = %v ok=%v, want %v", c.x, v, ok, c.want)
		}
	}
}

func TestEvalOutsideDomainFallsBack(t *testing.T) {
	f := Linear(unitInterval(), geometry.Vector{1}, 0)
	v, ok := f.Eval(geometry.Vector{2})
	if ok {
		t.Error("Eval outside domain reported ok")
	}
	if !almostEqual(v, 2, 1e-9) {
		t.Errorf("fallback value = %v, want extrapolated 2", v)
	}
}

func TestMultiEval(t *testing.T) {
	dom := unitInterval()
	m := NewMulti(
		Linear(dom, geometry.Vector{1}, 0),
		Constant(dom, 2),
	)
	v, ok := m.Eval(geometry.Vector{0.5})
	if !ok || !v.Equal(geometry.Vector{0.5, 2}, 1e-12) {
		t.Errorf("Eval = %v ok=%v, want (0.5, 2)", v, ok)
	}
	if m.NumMetrics() != 2 || m.Dim() != 1 || m.TotalPieces() != 2 {
		t.Errorf("metadata wrong: metrics=%d dim=%d pieces=%d", m.NumMetrics(), m.Dim(), m.TotalPieces())
	}
}

func TestFigure11Addition(t *testing.T) {
	// Figure 11 of the paper: two single-objective cost functions over a
	// two-dimensional parameter space; weight vectors are added per
	// linear region. Function 1 has three linear regions with weights
	// (1,2), (3,2), (2,4); function 2 has two regions with weights
	// (0,2), (1,3). We reconstruct a compatible geometry: function 1
	// splits the unit square vertically at x1=1/3 and the right part
	// horizontally at x2=1/2; function 2 splits vertically at x1=2/3.
	ctx := geometry.NewContext()
	sq := geometry.UnitBox(2)
	f := NewFunction(
		Piece{Region: sq.With(geometry.Halfspace{W: geometry.Vector{1, 0}, B: 1.0 / 3}), W: geometry.Vector{1, 2}, B: 0},
		Piece{Region: sq.With(
			geometry.Halfspace{W: geometry.Vector{-1, 0}, B: -1.0 / 3},
			geometry.Halfspace{W: geometry.Vector{0, 1}, B: 0.5},
		), W: geometry.Vector{3, 2}, B: 0},
		Piece{Region: sq.With(
			geometry.Halfspace{W: geometry.Vector{-1, 0}, B: -1.0 / 3},
			geometry.Halfspace{W: geometry.Vector{0, -1}, B: -0.5},
		), W: geometry.Vector{2, 4}, B: 0},
	)
	g := NewFunction(
		Piece{Region: sq.With(geometry.Halfspace{W: geometry.Vector{1, 0}, B: 2.0 / 3}), W: geometry.Vector{0, 2}, B: 0},
		Piece{Region: sq.With(geometry.Halfspace{W: geometry.Vector{-1, 0}, B: -2.0 / 3}), W: geometry.Vector{1, 3}, B: 0},
	)
	sum := Add(ctx, f, g)
	// Expected weights of the sum (Figure 11 right): (1,4), (3,4),
	// (2,6) on the left of x1=2/3 and (4,5), (3,7) on the right.
	wantWeights := map[[2]float64]bool{
		{1, 4}: true, {3, 4}: true, {2, 6}: true, {4, 5}: true, {3, 7}: true,
	}
	if sum.NumPieces() != 5 {
		t.Fatalf("sum has %d pieces, want 5: %v", sum.NumPieces(), sum)
	}
	for _, p := range sum.Pieces() {
		k := [2]float64{p.W[0], p.W[1]}
		if !wantWeights[k] {
			t.Errorf("unexpected weight vector %v in sum", p.W)
		}
	}
	// Pointwise check on a sample grid.
	for _, x := range geometry.SamplePointsInBox(geometry.Vector{0, 0}, geometry.Vector{1, 1}, 7, 100) {
		fv, _ := f.Eval(x)
		gv, _ := g.Eval(x)
		sv, _ := sum.Eval(x)
		if !almostEqual(sv, fv+gv, 1e-9) {
			t.Errorf("sum(%v) = %v, want %v", x, sv, fv+gv)
		}
	}
}

func TestNewFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFunction with no pieces did not panic")
		}
	}()
	NewFunction()
}

func TestNewMultiPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMulti with mismatched dims did not panic")
		}
	}()
	NewMulti(Constant(geometry.Interval(0, 1), 1), Constant(geometry.UnitBox(2), 1))
}
