// Package pwl implements piecewise-linear (PWL) cost functions for
// multi-objective parametric query optimization, mirroring the data
// structures of Figure 9 in the paper: a multi-objective PWL cost
// function has one single-objective PWL component per cost metric; a
// single-objective PWL function is a set of linear pieces, each valid on
// a convex polytope of the parameter space.
//
// The package provides the elementary operations of Algorithm 3
// (accumulating cost functions, computing dominance regions) plus the
// accumulation variants mentioned in Section 6.1 (sum, minimum, maximum,
// weighted sum) and PWL approximation of arbitrary cost functions on
// simplicial grids, the standard technique of the parametric query
// optimization literature (Hulgeri & Sudarshan).
package pwl

import (
	"fmt"
	"math"
	"strings"

	"mpq/internal/geometry"
)

// Piece is a linear cost function W·x + B valid on a convex polytope of
// the parameter space (attributes reg, w, b of Figure 9).
type Piece struct {
	Region *geometry.Polytope
	W      geometry.Vector
	B      float64
}

// Eval evaluates the linear function of the piece (ignoring the region).
func (p Piece) Eval(x geometry.Vector) float64 { return p.W.Dot(x) + p.B }

// String renders the piece.
func (p Piece) String() string {
	return fmt.Sprintf("%s + %g on %s", p.W, p.B, p.Region)
}

// Function is a single-objective piecewise-linear cost function: a set of
// linear pieces whose regions have pairwise disjoint interiors and cover
// the function's domain.
//
// When cover is non-nil the pieces are asserted to exactly partition
// that polytope; two functions sharing the same cover pointer allow the
// combination operators to skip the geometric emptiness checks for
// cross pairs (see combine). Cost models exploit this by building all
// cost functions against one shared parameter-space polytope.
type Function struct {
	dim    int
	pieces []Piece
	cover  *geometry.Polytope
	// full is non-nil for restricted views (see Restrict): when no
	// restricted piece contains the evaluation point, Eval delegates to
	// the full function so results stay byte-identical to an
	// unrestricted scan.
	full *Function
}

// NewFunction builds a PWL function from pieces. At least one piece is
// required; all pieces must share the same parameter-space dimension.
func NewFunction(pieces ...Piece) *Function {
	if len(pieces) == 0 {
		panic("pwl: function with no pieces")
	}
	dim := len(pieces[0].W)
	for _, p := range pieces {
		if len(p.W) != dim || p.Region.Dim() != dim {
			panic("pwl: inconsistent piece dimensions")
		}
	}
	return &Function{dim: dim, pieces: pieces}
}

// Constant returns the PWL function with constant value c on domain.
func Constant(domain *geometry.Polytope, c float64) *Function {
	f := NewFunction(Piece{Region: domain, W: geometry.NewVector(domain.Dim()), B: c})
	f.cover = domain
	return f
}

// Linear returns the PWL function W·x + B on domain.
func Linear(domain *geometry.Polytope, w geometry.Vector, b float64) *Function {
	if len(w) != domain.Dim() {
		panic("pwl: weight dimension mismatch")
	}
	f := NewFunction(Piece{Region: domain, W: w.Clone(), B: b})
	f.cover = domain
	return f
}

// Dim returns the parameter-space dimension.
func (f *Function) Dim() int { return f.dim }

// Cover returns the polytope the pieces exactly partition, or nil when
// unknown.
func (f *Function) Cover() *geometry.Polytope { return f.cover }

// WithCover asserts that the pieces of f exactly partition domain and
// returns a function carrying that annotation. The caller is responsible
// for the partition property; combination operators rely on it to skip
// redundant geometric checks.
func (f *Function) WithCover(domain *geometry.Polytope) *Function {
	return &Function{dim: f.dim, pieces: f.pieces, cover: domain}
}

// Pieces returns the linear pieces. The slice must not be modified.
func (f *Function) Pieces() []Piece { return f.pieces }

// Restrict returns a view of f that evaluates only the pieces at the
// given indices (which must be ascending positions into Pieces), falling
// back to the full function when none of them contains the evaluation
// point. Eval through the view is byte-identical to Eval on f whenever
// the dropped pieces provably do not contain the point within Eval's
// tolerance — the contract point-location indexes rely on: a piece may
// be dropped for a parameter-space cell only when one of its normalized
// constraints is violated beyond the tolerance everywhere in the cell.
// f must not itself be a restricted view.
func (f *Function) Restrict(keep []int) *Function {
	if f.full != nil {
		panic("pwl: Restrict of a restricted view")
	}
	pieces := make([]Piece, len(keep))
	for i, k := range keep {
		pieces[i] = f.pieces[k]
	}
	return &Function{dim: f.dim, pieces: pieces, full: f}
}

// NumPieces returns the number of linear pieces.
func (f *Function) NumPieces() int { return len(f.pieces) }

// Eval evaluates f at x by locating a piece whose region contains x. When
// x lies on a shared boundary any adjacent piece may be used. When no
// region contains x exactly (a numerical gap), the piece with the
// smallest maximum constraint violation is used and ok is false.
func (f *Function) Eval(x geometry.Vector) (val float64, ok bool) {
	const eps = geometry.CompareEps
	best := -1
	bestViolation := math.Inf(1)
	for i, p := range f.pieces {
		v := maxViolation(p.Region, x)
		if v <= eps {
			return p.Eval(x), true
		}
		if v < bestViolation {
			bestViolation = v
			best = i
		}
	}
	if f.full != nil {
		// Restricted view with the point outside every hinted piece:
		// delegate to the full function so both the fallback piece and
		// the not-ok outcome match an unrestricted scan exactly.
		return f.full.Eval(x)
	}
	if best < 0 {
		return 0, false
	}
	return f.pieces[best].Eval(x), false
}

// MustEval evaluates f at x and panics when x is far outside every piece.
func (f *Function) MustEval(x geometry.Vector) float64 {
	v, ok := f.Eval(x)
	if !ok {
		panic(fmt.Sprintf("pwl: evaluation at %v outside all pieces", x))
	}
	return v
}

func maxViolation(p *geometry.Polytope, x geometry.Vector) float64 {
	// Inlined h.Normalize().W.Dot(x) - n.B with the exact same float
	// operations but no per-constraint vector allocation — Eval is the
	// serving layer's hottest loop, and the two Normalize allocations
	// per constraint dominated pick cost.
	worst := 0.0
	for _, h := range p.Constraints() {
		m := h.W.NormInf()
		var v float64
		if m < 1e-300 {
			v = h.W.Dot(x) - h.B
		} else {
			s := 1 / m
			dot := 0.0
			for i, w := range h.W {
				dot += (w * s) * x[i]
			}
			v = dot - h.B/m
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}

// String renders the function piece by piece.
func (f *Function) String() string {
	parts := make([]string, len(f.pieces))
	for i, p := range f.pieces {
		parts[i] = p.String()
	}
	return "PWL[" + strings.Join(parts, " | ") + "]"
}

// Multi is a multi-objective PWL cost function: one single-objective
// component per cost metric (the comps relationship of Figure 9).
type Multi struct {
	comps []*Function
}

// NewMulti builds a multi-objective function from per-metric components.
func NewMulti(comps ...*Function) *Multi {
	if len(comps) == 0 {
		panic("pwl: multi-objective function with no components")
	}
	dim := comps[0].Dim()
	for _, c := range comps {
		if c.Dim() != dim {
			panic("pwl: inconsistent component dimensions")
		}
	}
	return &Multi{comps: append([]*Function(nil), comps...)}
}

// NumMetrics returns the number of cost metrics.
func (m *Multi) NumMetrics() int { return len(m.comps) }

// Dim returns the parameter-space dimension.
func (m *Multi) Dim() int { return m.comps[0].Dim() }

// Component returns the single-objective function for metric i.
func (m *Multi) Component(i int) *Function { return m.comps[i] }

// Eval evaluates all components at x.
func (m *Multi) Eval(x geometry.Vector) (geometry.Vector, bool) {
	return m.EvalInto(nil, x)
}

// EvalInto evaluates all components at x into dst, reusing its backing
// array when the capacity suffices (allocating otherwise). Values are
// identical to Eval's; selection's single-choice policies use this to
// scan large candidate sets without a cost-vector allocation per
// candidate.
func (m *Multi) EvalInto(dst geometry.Vector, x geometry.Vector) (geometry.Vector, bool) {
	if cap(dst) < len(m.comps) {
		dst = geometry.NewVector(len(m.comps))
	} else {
		dst = dst[:len(m.comps)]
	}
	allOK := true
	for i, c := range m.comps {
		v, ok := c.Eval(x)
		if !ok {
			allOK = false
		}
		dst[i] = v
	}
	return dst, allOK
}

// TotalPieces returns the summed piece count across components, a size
// measure used by optimizer statistics.
func (m *Multi) TotalPieces() int {
	n := 0
	for _, c := range m.comps {
		n += c.NumPieces()
	}
	return n
}

func (m *Multi) String() string {
	parts := make([]string, len(m.comps))
	for i, c := range m.comps {
		parts[i] = fmt.Sprintf("metric%d: %s", i, c)
	}
	return strings.Join(parts, "\n")
}
