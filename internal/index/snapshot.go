package index

import (
	"fmt"
	"math"
)

// Snapshot is the serialized form of an Index — the store format's v3
// "index" stanza. Nodes are the preorder flattening of the tree;
// Right == 0 marks a leaf (the root is never a child). The build
// options that shaped the tree are persisted for provenance; the build
// parallelism is a runtime knob and is not.
type Snapshot struct {
	LeafTarget int            `json:"leaf_target"`
	MaxDepth   int            `json:"max_depth"`
	MaxLeaves  int            `json:"max_leaves"`
	Lo         []float64      `json:"lo"`
	Hi         []float64      `json:"hi"`
	Nodes      []SnapshotNode `json:"nodes"`
}

// SnapshotNode is one serialized tree node: Dim/Split/Left/Right for
// internal nodes, Cands (ascending candidate ids) for leaves.
type SnapshotNode struct {
	Dim   int     `json:"dim,omitempty"`
	Split float64 `json:"split,omitempty"`
	Left  int     `json:"left,omitempty"`
	Right int     `json:"right,omitempty"`
	Cands []int32 `json:"cands,omitempty"`
}

// Snapshot returns the serialized form of the index. Serializing a
// reconstructed index reproduces the snapshot exactly (the store
// round-trip identity depends on it). The leaf candidate slices are
// shared with the index (and, after FromSnapshot, with the snapshot
// passed in) — like Pieces and Cutouts elsewhere, they must not be
// modified.
func (ix *Index) Snapshot() *Snapshot {
	s := &Snapshot{
		LeafTarget: ix.opts.LeafTarget,
		MaxDepth:   ix.opts.MaxDepth,
		MaxLeaves:  ix.opts.MaxLeaves,
		Lo:         append([]float64(nil), ix.lo...),
		Hi:         append([]float64(nil), ix.hi...),
		Nodes:      make([]SnapshotNode, len(ix.nodes)),
	}
	for i, n := range ix.nodes {
		if n.right == 0 {
			s.Nodes[i] = SnapshotNode{Cands: n.cands}
		} else {
			s.Nodes[i] = SnapshotNode{Dim: int(n.dim), Split: n.split, Left: int(n.left), Right: int(n.right)}
		}
	}
	return s
}

// FromSnapshot reconstructs an Index from its serialized form,
// validating the tree structure against the plan count and parameter
// dimension of the enclosing document. The reconstructed index carries
// no build time (nothing was built).
func FromSnapshot(s *Snapshot, numCands, dim int) (*Index, error) {
	if len(s.Lo) != dim || len(s.Hi) != dim || dim <= 0 {
		return nil, fmt.Errorf("index: snapshot box dimension %d/%d, want %d", len(s.Lo), len(s.Hi), dim)
	}
	for i := 0; i < dim; i++ {
		if !(s.Lo[i] < s.Hi[i]) || math.IsNaN(s.Lo[i]) || math.IsNaN(s.Hi[i]) {
			return nil, fmt.Errorf("index: snapshot box [%v, %v] invalid in dimension %d", s.Lo[i], s.Hi[i], i)
		}
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("index: snapshot without nodes")
	}
	ix := &Index{
		dim: dim,
		lo:  append([]float64(nil), s.Lo...),
		hi:  append([]float64(nil), s.Hi...),
		opts: Options{
			LeafTarget: s.LeafTarget,
			MaxDepth:   s.MaxDepth,
			MaxLeaves:  s.MaxLeaves,
		}.withDefaults(),
		nodes: make([]node, len(s.Nodes)),
	}
	for i, sn := range s.Nodes {
		if sn.Right == 0 {
			// Leaf: candidate ids must be valid, strictly ascending plan
			// positions (the order the linear scan would visit).
			prev := int32(-1)
			for _, id := range sn.Cands {
				if id <= prev || int(id) >= numCands {
					return nil, fmt.Errorf("index: leaf %d has invalid candidate id %d (plans: %d)", i, id, numCands)
				}
				prev = id
			}
			ix.nodes[i] = node{cands: sn.Cands}
			continue
		}
		// Internal: preorder children — left is the next node, right
		// past the left subtree, both in range.
		if sn.Dim < 0 || sn.Dim >= dim {
			return nil, fmt.Errorf("index: node %d splits dimension %d of %d", i, sn.Dim, dim)
		}
		if sn.Left != i+1 || sn.Right <= sn.Left || sn.Right >= len(s.Nodes) {
			return nil, fmt.Errorf("index: node %d has non-preorder children %d/%d", i, sn.Left, sn.Right)
		}
		if math.IsNaN(sn.Split) {
			return nil, fmt.Errorf("index: node %d has NaN split", i)
		}
		if len(sn.Cands) > 0 {
			return nil, fmt.Errorf("index: internal node %d carries candidate ids", i)
		}
		ix.nodes[i] = node{dim: int32(sn.Dim), split: sn.Split, left: int32(sn.Left), right: int32(sn.Right)}
	}
	if err := ix.verifyTree(); err != nil {
		return nil, err
	}
	return ix, nil
}

// verifyTree walks the reconstructed tree, checks that the preorder
// node array is exactly the reachable set, and computes the leaf
// statistics.
func (ix *Index) verifyTree() error {
	var walk func(i int32, depth int) (int32, error)
	walk = func(i int32, depth int) (int32, error) {
		n := &ix.nodes[i]
		if depth > ix.maxDepth {
			ix.maxDepth = depth
		}
		if n.right == 0 {
			ix.leaves++
			ix.leafCandTotal += int64(len(n.cands))
			return i + 1, nil
		}
		next, err := walk(n.left, depth+1)
		if err != nil {
			return 0, err
		}
		if next != n.right {
			return 0, fmt.Errorf("index: node %d's right child %d does not follow its left subtree (ends at %d)", i, n.right, next)
		}
		return walk(n.right, depth+1)
	}
	end, err := walk(0, 0)
	if err != nil {
		return err
	}
	if int(end) != len(ix.nodes) {
		return fmt.Errorf("index: %d nodes serialized, %d reachable", len(ix.nodes), end)
	}
	return nil
}
