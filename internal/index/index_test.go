package index_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// buildWorkers returns the index build parallelism the equivalence
// property runs with: the CI worker-count matrix (MPQ_TEST_WORKERS, 0
// meaning GOMAXPROCS) when set, otherwise GOMAXPROCS — so the race job
// exercises concurrent subtree builds.
func buildWorkers(t *testing.T) int {
	if env := os.Getenv("MPQ_TEST_WORKERS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("MPQ_TEST_WORKERS=%q: %v", env, err)
		}
		if n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// loadSet optimizes a workload and round-trips it through the store
// format, returning the serving-side candidate set.
func loadSet(t *testing.T, cfg workload.Config) (*store.PlanSet, []selection.Candidate, *geometry.Solver) {
	t.Helper()
	schema, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = 1
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	return ps, cands, ctx
}

// randomPoints returns deterministic pseudo-random points inside the
// parameter space (a box for all generated workloads), including points
// snapped onto the box faces to stress cell boundaries.
func randomPoints(t *testing.T, s *geometry.Solver, space *geometry.Polytope, n int, seed int64) []geometry.Vector {
	t.Helper()
	lo, hi, ok := s.BoundingBox(space)
	if !ok {
		t.Fatal("parameter space without bounding box")
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vector, 0, n)
	for len(pts) < n {
		x := geometry.NewVector(space.Dim())
		for d := range x {
			x[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
			// Every eighth coordinate lands exactly on a face.
			if rng.Intn(8) == 0 {
				if rng.Intn(2) == 0 {
					x[d] = lo[d]
				} else {
					x[d] = hi[d]
				}
			}
		}
		if space.ContainsPoint(x, 1e-9) {
			pts = append(pts, x)
		}
	}
	return pts
}

// renderPolicy runs one policy and renders result plus error so the
// comparison covers both.
func renderPolicy(cands []selection.Candidate, x geometry.Vector, policy int) string {
	switch policy {
	case 0:
		return fmt.Sprintf("%v", selection.Frontier(cands, x))
	case 1:
		c, err := selection.WeightedSum(cands, x, []float64{1, 10000})
		return fmt.Sprintf("%v|%v", c, err)
	case 2:
		c, err := selection.MinimizeSubjectTo(cands, x, 0, []selection.Bound{{Metric: 1, Max: 1e300}})
		return fmt.Sprintf("%v|%v", c, err)
	default:
		c, err := selection.Lexicographic(cands, x, []int{1, 0})
		return fmt.Sprintf("%v|%v", c, err)
	}
}

var policyNames = []string{"frontier", "weighted", "bound", "lex"}

// TestIndexLinearEquivalence is the index's central property: for
// random plan sets of every join-graph shape and random parameter
// points, every selection policy returns byte-identical results through
// the index (leaf candidate subsets with piece-restricted costs) and
// through the full linear scan. Run under -race, the parallel subtree
// build is exercised too (MPQ_TEST_WORKERS pins the parallelism in the
// CI matrix).
func TestIndexLinearEquivalence(t *testing.T) {
	cases := []workload.Config{
		{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 3},
		{Tables: 5, Params: 1, Shape: workload.Star, Seed: 11},
		{Tables: 5, Params: 2, Shape: workload.Cycle, Seed: 5},
		{Tables: 4, Params: 2, Shape: workload.Clique, Seed: 7},
	}
	workers := buildWorkers(t)
	for _, cfg := range cases {
		t.Run(fmt.Sprintf("%s-%dp-%dt", cfg.Shape, cfg.Params, cfg.Tables), func(t *testing.T) {
			ps, cands, solver := loadSet(t, cfg)
			ix, err := index.Build(solver, ps.Space, cands, index.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Leaves() < 1 {
				t.Fatalf("index with %d leaves", ix.Leaves())
			}
			leafCands := ix.LeafCandidates(cands)
			points := randomPoints(t, solver, ps.Space, 200, 99+cfg.Seed)
			misrouted := 0
			for _, x := range points {
				leaf, ids, ok := ix.Locate(x)
				sub := cands
				if ok {
					sub = leafCands[leaf]
					if len(sub) != len(ids) {
						t.Fatalf("leaf %d: %d materialized candidates, %d ids", leaf, len(sub), len(ids))
					}
				} else {
					misrouted++
				}
				// The filtered evaluation must be identical, not just the
				// policy outcome: omitted candidates are irrelevant at x
				// and restricted costs evaluate identically.
				full := selection.Evaluate(cands, x)
				viaIndex := selection.Evaluate(sub, x)
				if !reflect.DeepEqual(full, viaIndex) {
					t.Fatalf("Evaluate at %v differs: linear %v, index %v", x, full, viaIndex)
				}
				for p := range policyNames {
					lin := renderPolicy(cands, x, p)
					idx := renderPolicy(sub, x, p)
					if lin != idx {
						t.Errorf("%s at %v: linear %s, index %s", policyNames[p], x, lin, idx)
					}
				}
			}
			if misrouted > 0 {
				t.Errorf("%d of %d in-space points fell outside the index box", misrouted, len(points))
			}
		})
	}
}

// TestBuildDeterministicAcrossWorkers: the tree (and hence the
// persisted stanza) must not depend on build parallelism.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	ps, cands, solver := loadSet(t, workload.Config{Tables: 5, Params: 2, Shape: workload.Star, Seed: 2})
	base, err := index.Build(solver, ps.Space, cands, index.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		ix, err := index.Build(solver, ps.Space, cands, index.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Snapshot(), ix.Snapshot()) {
			t.Errorf("workers=%d: tree differs from the sequential build", workers)
		}
	}
}

// TestLocateOutsideBox: points outside the padded parameter box are
// reported, so callers fall back to the linear scan instead of being
// routed to an unsound cell.
func TestLocateOutsideBox(t *testing.T) {
	ps, cands, solver := loadSet(t, workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 8})
	ix, err := index.Build(solver, ps.Space, cands, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ix.Locate(geometry.Vector{5}); ok {
		t.Error("far-outside point located")
	}
	if _, _, ok := ix.Locate(geometry.Vector{math.NaN()}); ok {
		t.Error("NaN point located")
	}
	if _, _, ok := ix.Locate(geometry.Vector{0.5, 0.5}); ok {
		t.Error("wrong-dimension point located")
	}
	if _, _, ok := ix.Locate(geometry.Vector{0.5}); !ok {
		t.Error("interior point not located")
	}
}

// TestIndexPrunes: on a multi-plan set the index must actually reduce
// the average scanned candidate count below the full set (otherwise it
// is dead weight).
func TestIndexPrunes(t *testing.T) {
	ps, cands, solver := loadSet(t, workload.Config{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 3})
	if len(cands) < 4 {
		t.Skipf("plan set too small (%d plans)", len(cands))
	}
	ix, err := index.Build(solver, ps.Space, cands, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if avg := ix.AvgLeafCandidates(); avg >= float64(len(cands)) {
		t.Errorf("avg %.1f candidates per leaf, full set has %d — index prunes nothing", avg, len(cands))
	}
}
