// Package index implements a point-location pick index over a prepared
// Pareto plan set's parameter space: an adaptive binary-split (kd-tree
// style) decomposition of the parameter box whose leaves store the ids
// of the candidates whose relevance regions intersect the leaf cell.
// Run-time plan selection then scans only a leaf's candidate subset
// instead of every candidate — the precomputed decision structure the
// serving layer uses to turn high pick rates over one plan set into
// cell lookups (in the spirit of plan diagrams, which discretize
// parametric optimizer output the same way).
//
// The index is *conservative*: a candidate is dropped from a cell only
// when one of its relevance-region cutouts provably contains the whole
// cell beyond the containment tolerance of the selection policies
// (selection.ContainsEps), and a cost piece is dropped from a leaf's
// evaluation view only when one of its normalized constraints is
// violated beyond pwl's evaluation tolerance everywhere in the cell
// (with the full piece scan as the in-view fallback). Every selection
// policy therefore returns byte-identical results through the index and
// through the full linear scan; internal/index's property test and the
// serving layer's stress tests assert this end to end.
//
// Builds are deterministic for any Options.Workers: the tree shape
// depends only on the candidate set and the build options, never on
// goroutine scheduling, so persisted indexes (the store's v3 "index"
// stanza) are byte-stable across processes and pool sizes.
package index

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/selection"
)

// Tolerances of the conservative cell tests. Candidate exclusion must
// be strict with respect to selection.ContainsEps (a dropped candidate
// must fail the policy's containment test at *every* point routed to
// the cell), piece exclusion with respect to pwl's 1e-9 evaluation
// tolerance; both margins are three orders of magnitude wider, plus a
// relative term absorbing the closed-form box arithmetic error.
const (
	cellStrictEps = 1e-6
	cellRelEps    = geometry.CompareEps
	// boxPadFactor pads the root bounding box so that every point the
	// serving layer accepts (inside the parameter space within 1e-9,
	// with LP-tolerance bounding-box edges) is strictly inside the
	// padded box.
	boxPadFactor = 1e-6
)

// Options configures an index build. The zero value selects the
// defaults.
type Options struct {
	// LeafTarget stops splitting once a cell holds at most this many
	// *prunable* candidates (candidates with relevance-region cutouts;
	// always-relevant candidates appear in every leaf and do not count).
	// Zero selects 4.
	LeafTarget int
	// MaxDepth bounds the tree depth. Zero selects 16.
	MaxDepth int
	// MaxLeaves bounds the leaf count; the budget is divided evenly
	// between subtrees at every split, so the bound is deterministic and
	// independent of build parallelism. Zero selects 4096.
	MaxLeaves int
	// Workers is the build parallelism: subtrees near the root are built
	// by concurrent goroutines. The resulting tree is identical for any
	// value. Zero selects 1.
	Workers int
}

// withDefaults normalizes zero fields.
func (o Options) withDefaults() Options {
	if o.LeafTarget <= 0 {
		o.LeafTarget = 4
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	if o.MaxLeaves <= 0 {
		o.MaxLeaves = 4096
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Index is a built point-location index. It is immutable and safe for
// concurrent use.
type Index struct {
	dim    int
	lo, hi geometry.Vector // padded bounding box of the parameter space
	opts   Options         // build options (normalized; Workers not persisted)
	nodes  []node          // preorder, nodes[0] is the root

	leaves        int
	leafCandTotal int64
	maxDepth      int
	buildTime     time.Duration
}

// node is one tree node. Internal nodes route by x[dim] < split; leaves
// hold the candidate ids (ascending plan order). right == 0 marks a
// leaf: in preorder the root is never a child, so no internal node can
// reference index 0.
type node struct {
	dim   int32
	left  int32
	right int32
	split float64
	cands []int32
}

// Build constructs the index for a candidate set over the given
// parameter space. The solver is used only to compute the space's
// bounding box; the build itself is closed-form box arithmetic,
// parallelized across opts.Workers goroutines with a deterministic
// result.
func Build(s *geometry.Solver, space *geometry.Polytope, cands []selection.Candidate, opts Options) (*Index, error) {
	start := time.Now() //mpq:wallclock build-time stat (Stats.Index.BuildTime); never reaches the tree shape
	opts = opts.withDefaults()
	dim := space.Dim()
	lo, hi, ok := s.BoundingBox(space)
	if !ok {
		return nil, fmt.Errorf("index: parameter space has no bounded box")
	}
	// Pad so every servable point (inside the space within the pick
	// tolerance) is strictly interior to the root box.
	for i := 0; i < dim; i++ {
		pad := boxPadFactor * (1 + math.Abs(hi[i]-lo[i]))
		lo[i] -= pad
		hi[i] += pad
	}
	ids := make([]int32, len(cands))
	for i := range ids {
		ids[i] = int32(i)
	}
	b := &builder{cands: cands, opts: opts}
	// Spawn goroutines only near the root: ~log2(Workers)+1 levels keep
	// every worker busy without flooding the scheduler.
	for d := 1; d < opts.Workers; d *= 2 {
		b.parDepth++
	}
	root := b.build(lo, hi, ids, 0, opts.MaxLeaves)
	ix := &Index{dim: dim, lo: lo, hi: hi, opts: opts}
	ix.flatten(root, 0)
	ix.buildTime = time.Since(start) //mpq:wallclock build-time stat; never reaches the tree shape
	return ix, nil
}

// builder carries the immutable build inputs.
type builder struct {
	cands    []selection.Candidate
	opts     Options
	parDepth int
}

// bnode is the pointer-linked build-time tree, flattened to the
// preorder node array once the build completes.
type bnode struct {
	dim         int
	split       float64
	left, right *bnode
	cands       []int32
}

// build recursively decomposes the closed cell [lo,hi]. budget is the
// maximum number of leaves this subtree may produce (split evenly
// between children, so the bound is schedule-independent).
func (b *builder) build(lo, hi geometry.Vector, ids []int32, depth, budget int) *bnode {
	prunable := 0
	for _, id := range ids {
		if prunableCandidate(b.cands[id]) {
			prunable++
		}
	}
	if prunable <= b.opts.LeafTarget || depth >= b.opts.MaxDepth ||
		budget < 2 || !b.refinable(lo, hi, ids) {
		return &bnode{cands: ids}
	}
	// Split the widest dimension at its midpoint (lowest dimension on
	// ties — deterministic).
	d := 0
	for i := 1; i < len(lo); i++ {
		if hi[i]-lo[i] > hi[d]-lo[d] {
			d = i
		}
	}
	split := (lo[d] + hi[d]) / 2
	if !(split > lo[d] && split < hi[d]) {
		// Degenerate cell (zero width or non-finite bounds): stop.
		return &bnode{cands: ids}
	}
	leftHi := hi.Clone()
	leftHi[d] = split
	rightLo := lo.Clone()
	rightLo[d] = split
	leftIDs := b.filter(lo, leftHi, ids)
	rightIDs := b.filter(rightLo, hi, ids)
	lb := (budget + 1) / 2
	rb := budget - lb
	n := &bnode{dim: d, split: split}
	if depth < b.parDepth {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.left = b.build(lo, leftHi, leftIDs, depth+1, lb)
		}()
		n.right = b.build(rightLo, hi, rightIDs, depth+1, rb)
		wg.Wait()
	} else {
		n.left = b.build(lo, leftHi, leftIDs, depth+1, lb)
		n.right = b.build(rightLo, hi, rightIDs, depth+1, rb)
	}
	return n
}

// refinable reports whether splitting the cell further can still shed a
// candidate: some kept candidate must have a cutout that overlaps the
// cell (a cutout provably disjoint from the cell can never contain a
// descendant cell, and a cutout containing the whole cell would already
// have excluded the candidate). Purely a termination heuristic — it
// cannot affect soundness, only tree size.
func (b *builder) refinable(lo, hi geometry.Vector, ids []int32) bool {
	for _, id := range ids {
		c := b.cands[id]
		if !prunableCandidate(c) {
			continue
		}
		for _, cut := range c.RR.Cutouts() {
			if !boxDisjoint(lo, hi, cut) {
				return true
			}
		}
	}
	return false
}

// boxDisjoint reports whether the cutout is provably disjoint from the
// box: some constraint's box minimum already exceeds its bound.
func boxDisjoint(lo, hi geometry.Vector, c *geometry.Polytope) bool {
	for _, h := range c.Constraints() {
		mn := 0.0
		for i, w := range h.W {
			if w > 0 {
				mn += w * lo[i]
			} else {
				mn += w * hi[i]
			}
		}
		if mn > h.B {
			return true
		}
	}
	return false
}

// filter keeps the candidates whose relevance region may intersect the
// closed cell box, preserving order.
func (b *builder) filter(lo, hi geometry.Vector, ids []int32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		c := b.cands[id]
		if prunableCandidate(c) && cellExcluded(c.RR.Cutouts(), lo, hi) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// coverProbeDepth bounds the recursive union-coverage refinement of
// cellExcluded: a cell is also excluded when, after up to this many
// binary subdivisions, every sub-box is strictly inside some single
// cutout — catching the common case of a cell covered by the union of
// several dominance cutouts, none of which contains it alone.
const coverProbeDepth = 4

// prunableCandidate reports whether the candidate can ever be excluded
// from a cell: it must carry a relevance region with cutouts (a nil
// region means always relevant; a cutout-free region restricts only to
// the parameter space, which every served point is inside).
func prunableCandidate(c selection.Candidate) bool {
	return c.RR != nil && c.RR.NumCutouts() > 0
}

// cellExcluded reports whether the cutouts strictly cover the whole
// closed cell box — then every point routed to the cell fails the
// policies' containment test and the candidate cannot influence any
// pick there. A single containing cutout decides immediately;
// otherwise the cell is subdivided up to coverProbeDepth times and
// every sub-box must end up strictly inside some cutout (union
// coverage). Cutouts provably disjoint from a sub-box are dropped from
// its recursion.
func cellExcluded(cutouts []*geometry.Polytope, lo, hi geometry.Vector) bool {
	return unionCovers(cutouts, lo, hi, coverProbeDepth)
}

func unionCovers(cutouts []*geometry.Polytope, lo, hi geometry.Vector, depth int) bool {
	overlapping := 0
	for _, c := range cutouts {
		if boxStrictlyInside(lo, hi, c) {
			return true
		}
		if !boxDisjoint(lo, hi, c) {
			overlapping++
		}
	}
	if depth == 0 || overlapping < 2 {
		// One overlapping cutout cannot cover a box it does not contain.
		return false
	}
	rest := make([]*geometry.Polytope, 0, overlapping)
	for _, c := range cutouts {
		if !boxDisjoint(lo, hi, c) {
			rest = append(rest, c)
		}
	}
	d := 0
	for i := 1; i < len(lo); i++ {
		if hi[i]-lo[i] > hi[d]-lo[d] {
			d = i
		}
	}
	mid := (lo[d] + hi[d]) / 2
	if !(mid > lo[d] && mid < hi[d]) {
		return false
	}
	leftHi := hi.Clone()
	leftHi[d] = mid
	if !unionCovers(rest, lo, leftHi, depth-1) {
		return false
	}
	rightLo := lo.Clone()
	rightLo[d] = mid
	return unionCovers(rest, rightLo, hi, depth-1)
}

// boxStrictlyInside reports whether every point of the box satisfies
// every constraint of c with margin beyond selection.ContainsEps: the
// box maximum of each W·x (closed form over the box corners) must stay
// below B by the strict margin plus a relative term covering the
// summation error.
func boxStrictlyInside(lo, hi geometry.Vector, c *geometry.Polytope) bool {
	for _, h := range c.Constraints() {
		m := 0.0
		scale := math.Abs(h.B)
		for i, w := range h.W {
			if w > 0 {
				m += w * hi[i]
			} else {
				m += w * lo[i]
			}
			scale += math.Abs(w) * math.Max(math.Abs(lo[i]), math.Abs(hi[i]))
		}
		if m > h.B-cellStrictEps-cellRelEps*scale {
			return false
		}
	}
	return true
}

// flatten appends the subtree rooted at bn to ix.nodes in preorder and
// returns its node id, accumulating the leaf statistics.
func (ix *Index) flatten(bn *bnode, depth int) int32 {
	id := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, node{})
	if depth > ix.maxDepth {
		ix.maxDepth = depth
	}
	if bn.left == nil {
		ix.nodes[id] = node{cands: bn.cands}
		ix.leaves++
		ix.leafCandTotal += int64(len(bn.cands))
		return id
	}
	l := ix.flatten(bn.left, depth+1)
	r := ix.flatten(bn.right, depth+1)
	ix.nodes[id] = node{dim: int32(bn.dim), split: bn.split, left: l, right: r}
	return id
}

// Dim returns the parameter-space dimension.
func (ix *Index) Dim() int { return ix.dim }

// Leaves returns the leaf count.
func (ix *Index) Leaves() int { return ix.leaves }

// MaxDepth returns the deepest leaf's depth.
func (ix *Index) MaxDepth() int { return ix.maxDepth }

// AvgLeafCandidates returns the mean candidate-id count per leaf.
func (ix *Index) AvgLeafCandidates() float64 {
	if ix.leaves == 0 {
		return 0
	}
	return float64(ix.leafCandTotal) / float64(ix.leaves)
}

// LeafCandidateTotal returns the summed candidate-id count over all
// leaves.
func (ix *Index) LeafCandidateTotal() int64 { return ix.leafCandTotal }

// BuildTime returns the wall-clock build duration (zero for indexes
// reconstructed from a snapshot).
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Locate routes x to its leaf and returns the leaf id and the ids of
// the candidates possibly relevant there. ok is false when x falls
// outside the index's padded parameter box — callers must then fall
// back to the full candidate scan.
func (ix *Index) Locate(x geometry.Vector) (leaf int32, ids []int32, ok bool) {
	if len(x) != ix.dim {
		return 0, nil, false
	}
	for i := 0; i < ix.dim; i++ {
		// Negated form so NaN coordinates fail the check and fall back
		// to the linear scan instead of descending to an arbitrary leaf.
		if !(x[i] >= ix.lo[i] && x[i] <= ix.hi[i]) {
			return 0, nil, false
		}
	}
	i := int32(0)
	for {
		n := &ix.nodes[i]
		if n.right == 0 {
			return i, n.cands, true
		}
		if x[n.dim] < n.split {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the total node count (for sizing per-leaf caches:
// leaf ids index into [0, NumNodes)).
func (ix *Index) NumNodes() int { return len(ix.nodes) }

// MemBytes estimates the resident memory of the index structure: the
// preorder node array, the per-leaf candidate id lists, and the padded
// box. The serving layer's memory-accounted cache charges each plan
// set its serialized document size plus this estimate, so eviction
// decisions track what an indexed entry actually holds live.
func (ix *Index) MemBytes() int64 {
	// One node: three int32s plus padding (16), one float64 (8), one
	// slice header (24) — 48 bytes on 64-bit platforms.
	const nodeBytes = 48
	return int64(len(ix.nodes))*nodeBytes +
		ix.leafCandTotal*4 + // candidate ids (int32)
		int64(2*ix.dim)*8 // lo/hi box vectors
}

// LeafCandidates materializes, for every leaf id, the candidate subset
// to run the selection policies on: the leaf's candidates with their
// cost functions restricted to the pieces that may contain a point of
// the leaf cell (pwl.Restrict — dropped pieces are provably outside
// the cell beyond the evaluation tolerance, and the view falls back to
// the full scan when no hinted piece contains the point, so policy
// results through these subsets are byte-identical to the full linear
// scan). The returned slice is indexed by leaf id (non-leaf slots are
// nil).
func (ix *Index) LeafCandidates(cands []selection.Candidate) [][]selection.Candidate {
	out := make([][]selection.Candidate, len(ix.nodes))
	ix.walkLeaves(0, ix.lo.Clone(), ix.hi.Clone(), func(leaf int32, lo, hi geometry.Vector) {
		ids := ix.nodes[leaf].cands
		sub := make([]selection.Candidate, len(ids))
		for i, id := range ids {
			sub[i] = restrictCandidate(cands[id], lo, hi)
		}
		out[leaf] = sub
	})
	return out
}

// walkLeaves visits every leaf with its cell box. The boxes are
// recomputed from the splits, so lo/hi are scratch and mutated in
// place.
func (ix *Index) walkLeaves(i int32, lo, hi geometry.Vector, fn func(leaf int32, lo, hi geometry.Vector)) {
	n := &ix.nodes[i]
	if n.right == 0 {
		fn(i, lo, hi)
		return
	}
	d := n.dim
	save := hi[d]
	hi[d] = n.split
	ix.walkLeaves(n.left, lo, hi, fn)
	hi[d] = save
	save = lo[d]
	lo[d] = n.split
	ix.walkLeaves(n.right, lo, hi, fn)
	lo[d] = save
}

// restrictCandidate returns the candidate with each cost component
// restricted to the pieces that may contain a point of the cell, and
// its relevance region restricted to the cutouts that can decide a
// containment test inside the cell.
func restrictCandidate(c selection.Candidate, lo, hi geometry.Vector) selection.Candidate {
	if c.RR != nil {
		cutouts := c.RR.Cutouts()
		kept := make([]*geometry.Polytope, 0, len(cutouts))
		for _, cut := range cutouts {
			if trimmed, decidable := trimCutout(cut, lo, hi); decidable {
				kept = append(kept, trimmed)
			}
		}
		if len(kept) == 0 {
			// No cutout can decide containment in this cell, and every
			// served point is inside the space: the candidate is always
			// relevant here — selection's nil fast path skips the test
			// entirely.
			c.RR = nil
		} else {
			// The view drops the per-candidate space test (served points
			// are validated in-space before selection) and scans only the
			// kept cutouts with their undecided constraints.
			c.RR = c.RR.ContainmentView(kept)
		}
	}
	m := c.Cost
	comps := make([]*pwl.Function, m.NumMetrics())
	changed := false
	for k := 0; k < m.NumMetrics(); k++ {
		f := m.Component(k)
		pieces := f.Pieces()
		keep := make([]int, 0, len(pieces))
		for i := range pieces {
			if !pieceExcluded(&pieces[i], lo, hi) {
				keep = append(keep, i)
			}
		}
		if len(keep) < len(pieces) {
			comps[k] = f.Restrict(keep)
			changed = true
		} else {
			comps[k] = f
		}
	}
	if changed {
		c.Cost = pwl.NewMulti(comps...)
	}
	return c
}

// trimCutout restricts a cutout to the constraints still undecided in
// the cell. decidable is false when the cutout provably cannot decide
// a containment test anywhere in the cell: some constraint's box
// minimum already exceeds its bound by more than the strict
// containment tolerance, so no cell point is strictly inside the
// cutout and dropping it from the scan cannot change any Contains
// outcome. Constraints *strictly satisfied* everywhere in the cell
// (box maximum below the bound by more than the tolerance) can never
// flip a cell point's containment test to false and are dropped from
// the kept cutout; at least one constraint always survives (a cutout
// with every constraint strictly satisfied contains the cell, so the
// candidate was excluded during the build).
func trimCutout(c *geometry.Polytope, lo, hi geometry.Vector) (trimmed *geometry.Polytope, decidable bool) {
	hs := c.Constraints()
	kept := make([]geometry.Halfspace, 0, len(hs))
	for _, h := range hs {
		mn, mx := 0.0, 0.0
		scale := math.Abs(h.B)
		for i, w := range h.W {
			if w > 0 {
				mn += w * lo[i]
				mx += w * hi[i]
			} else {
				mn += w * hi[i]
				mx += w * lo[i]
			}
			scale += math.Abs(w) * math.Max(math.Abs(lo[i]), math.Abs(hi[i]))
		}
		margin := cellStrictEps + cellRelEps*scale
		if mn-h.B > margin {
			return nil, false // violated everywhere: cutout undecidable
		}
		if mx <= h.B-margin {
			continue // satisfied everywhere: constraint never decides
		}
		kept = append(kept, h)
	}
	if len(kept) == len(hs) {
		return c, true
	}
	return geometry.NewPolytope(c.Dim(), kept...), true
}

// pieceExcluded reports whether the piece's region provably excludes
// the whole cell: some normalized constraint is violated by more than
// pwl's evaluation tolerance at every point of the box (the box
// minimum of the normalized W·x stays above B by the strict margin).
func pieceExcluded(p *pwl.Piece, lo, hi geometry.Vector) bool {
	for _, h := range p.Region.Constraints() {
		nrm := h.W.NormInf()
		if nrm < 1e-300 {
			continue
		}
		s := 1 / nrm
		mn := 0.0
		scale := math.Abs(h.B) * s
		for i, w := range h.W {
			w *= s
			if w > 0 {
				mn += w * lo[i]
			} else {
				mn += w * hi[i]
			}
			scale += math.Abs(w) * math.Max(math.Abs(lo[i]), math.Abs(hi[i]))
		}
		if mn-h.B*s > cellStrictEps+cellRelEps*scale {
			return true
		}
	}
	return false
}
