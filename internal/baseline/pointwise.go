package baseline

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// PointwiseAlgebra is an exact, LP-free cost algebra that represents a
// cost function by its values at a fixed list of sample points. It
// supports sum-accumulated metrics (the cloud model's semantics) and is
// used to enumerate ground-truth plan costs cheaply when validating
// RRPA's completeness: because both the optimizer and the enumeration
// consume the same PWL step costs, values agree up to floating-point
// error while enumeration avoids all geometric work.
//
// Dom is not supported: PointwiseAlgebra is for enumeration and
// evaluation only, not for pruning.
type PointwiseAlgebra struct {
	Points []geometry.Vector
}

type pointwiseCost struct {
	vals []geometry.Vector // cost vector per sample point
}

// Accumulate implements core.Algebra for sum accumulation.
func (a *PointwiseAlgebra) Accumulate(step, c1, c2 core.Cost) core.Cost {
	s := a.toPointwise(step)
	v1 := a.toPointwise(c1)
	v2 := a.toPointwise(c2)
	out := make([]geometry.Vector, len(a.Points))
	for i := range a.Points {
		out[i] = s.vals[i].Add(v1.vals[i]).Add(v2.vals[i])
	}
	return &pointwiseCost{vals: out}
}

// Eval implements core.Algebra; x must be one of the sample points.
func (a *PointwiseAlgebra) Eval(c core.Cost, x geometry.Vector) geometry.Vector {
	pc := a.toPointwise(c)
	for i, p := range a.Points {
		if p.Equal(x, 1e-12) {
			return pc.vals[i]
		}
	}
	panic(fmt.Sprintf("baseline: point %v is not a registered sample point", x))
}

// Dom is unsupported.
func (a *PointwiseAlgebra) Dom(c1, c2 core.Cost) []*geometry.Polytope {
	panic("baseline: PointwiseAlgebra does not support dominance regions")
}

// toPointwise converts PWL step costs lazily; pointwise costs pass
// through.
func (a *PointwiseAlgebra) toPointwise(c core.Cost) *pointwiseCost {
	switch v := c.(type) {
	case *pointwiseCost:
		return v
	case *pwl.Multi:
		vals := make([]geometry.Vector, len(a.Points))
		for i, p := range a.Points {
			vec, _ := v.Eval(p)
			vals[i] = vec
		}
		return &pointwiseCost{vals: vals}
	}
	panic(fmt.Sprintf("baseline: unsupported cost type %T", c))
}

var _ core.Algebra = (*PointwiseAlgebra)(nil)
