package baseline

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// BlowupInstance constructs the synthetic scenario of Section 1.1 that
// shows why cost metrics cannot be modeled as parameters: k alternative
// plans for the same result with fees i = 1..k USD, where the plan
// priced at mStar has the lowest execution time of all plans with fees
// >= mStar. Execution time additionally depends on one genuine
// selectivity parameter x in [0,1] (a uniform shift, so Pareto
// relationships are parameter-independent).
//
// The MPQ result set contains exactly the plans {p1..pmStar}: every more
// expensive plan is strictly dominated by pmStar. A PQ algorithm that
// encodes fees as a parameter must cover the entire fee range with
// time-optimal plans of that fee, generating all k plans — larger than
// the MPQ result by the arbitrary factor k/mStar (the result-set blowup
// argument of Section 1.1).
func BlowupInstance(k, mStar int) ([]core.Alternative, *geometry.Polytope) {
	if mStar < 1 || mStar > k {
		panic("baseline: mStar out of range")
	}
	space := geometry.Interval(0, 1)
	alts := make([]core.Alternative, 0, k)
	for i := 1; i <= k; i++ {
		d := i - mStar
		if d < 0 {
			d = -d
		}
		base := float64(d + 1)
		time := pwl.Linear(space, geometry.Vector{1}, base) // base + x
		fees := pwl.Constant(space, float64(i))
		alts = append(alts, core.Alternative{
			Op:   fmt.Sprintf("p%d", i),
			Cost: pwl.NewMulti(time, fees),
		})
	}
	return alts, space
}

// PQEncodedSetSize computes the result-set size of the parameter-space
// covering semantics of PQ applied to the blow-up instance: for every
// possible fee value b in 1..k the PQ result must contain a plan with
// minimal execution time among the plans of that fee level ("generate
// plans with minimal execution time for each possible cost value",
// Section 1.1). With distinct fee levels this retains every plan.
func PQEncodedSetSize(alts []core.Alternative, algebra core.Algebra, x geometry.Vector) int {
	type key struct{ fees int64 }
	kept := make(map[key]int)
	for i, alt := range alts {
		v := algebra.Eval(alt.Cost, x)
		fees := int64(v[1]*1000 + 0.5)
		k := key{fees}
		if old, ok := kept[k]; ok {
			// Keep the faster plan at this fee level.
			vOld := algebra.Eval(alts[old].Cost, x)
			if v[0] < vOld[0] {
				kept[k] = i
			}
			continue
		}
		kept[k] = i
	}
	return len(kept)
}
