// Package baseline implements the comparison algorithms the paper's
// analysis refers to (Sections 1.1 and 3), plus exhaustive plan
// enumeration used as ground truth for validating RRPA's completeness
// guarantee (Theorem 3):
//
//   - EnumerateAll: every bushy plan, no pruning (ground truth).
//   - Selinger: classical single-objective query optimization at fixed
//     parameter values (Selinger et al. [26]).
//   - ParetoMQ: multi-objective query optimization at fixed parameter
//     values with Pareto pruning of constant cost vectors (Ganguly et
//     al. [14]).
//   - PQSingleMetric: parametric query optimization for a single metric,
//     pruning plans dominated on the entire parameter space.
package baseline

import (
	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
)

// EnumPlan is a fully enumerated plan with its cost.
type EnumPlan struct {
	Plan *plan.Node
	Cost core.Cost
}

// EnumerateAll generates every bushy plan for the query without any
// pruning (all ordered splits, all operators, all sub-plan
// combinations), the plan space RRPA searches. Exponential: intended for
// validation on small queries.
func EnumerateAll(schema *catalog.Schema, model core.CostModel, algebra core.Algebra, postponeCartesian bool) []EnumPlan {
	memo := make(map[catalog.TableSet][]EnumPlan)
	all := schema.AllTables()
	fullyConnected := schema.Connected(all)
	var rec func(q catalog.TableSet) []EnumPlan
	rec = func(q catalog.TableSet) []EnumPlan {
		if plans, ok := memo[q]; ok {
			return plans
		}
		var out []EnumPlan
		if q.Count() == 1 {
			t := q.Single()
			for _, alt := range model.ScanAlternatives(t) {
				out = append(out, EnumPlan{Plan: plan.Scan(t, alt.Op), Cost: alt.Cost})
			}
			memo[q] = out
			return out
		}
		if postponeCartesian && fullyConnected && !schema.Connected(q) {
			memo[q] = nil
			return nil
		}
		gen := func(requireEdge bool) {
			q.SubsetsProper(func(q1 catalog.TableSet) bool {
				q2 := q.Minus(q1)
				if requireEdge && postponeCartesian && !schema.HasEdgeBetween(q1, q2) {
					return true
				}
				p1s, p2s := rec(q1), rec(q2)
				if len(p1s) == 0 || len(p2s) == 0 {
					return true
				}
				alts := model.JoinAlternatives(q1, q2)
				for _, p1 := range p1s {
					for _, p2 := range p2s {
						for _, alt := range alts {
							out = append(out, EnumPlan{
								Plan: plan.Join(alt.Op, p1.Plan, p2.Plan),
								Cost: algebra.Accumulate(alt.Cost, p1.Cost, p2.Cost),
							})
						}
					}
				}
				return true
			})
		}
		gen(true)
		if len(out) == 0 {
			gen(false)
		}
		memo[q] = out
		return out
	}
	return rec(all)
}

// TrueFrontAt computes the exact Pareto front of cost vectors over all
// enumerated plans at parameter vector x. Duplicate vectors are
// collapsed.
func TrueFrontAt(plans []EnumPlan, algebra core.Algebra, x geometry.Vector) []geometry.Vector {
	costs := make([]geometry.Vector, len(plans))
	for i, p := range plans {
		costs[i] = algebra.Eval(p.Cost, x)
	}
	var front []geometry.Vector
	for i, c := range costs {
		dominated := false
		for j, other := range costs {
			if i == j {
				continue
			}
			if WeaklyDominates(other, c) {
				if !other.Equal(c, 1e-12) {
					dominated = true
					break
				}
				if j < i { // collapse exact duplicates
					dominated = true
					break
				}
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// WeaklyDominates reports a <= b component-wise within tolerance.
func WeaklyDominates(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-9 {
			return false
		}
	}
	return true
}

// Selinger runs classical single-objective dynamic programming at fixed
// parameter values: for each table set it keeps only the plan minimizing
// the chosen metric. Returns the best plan and its cost value.
func Selinger(schema *catalog.Schema, model core.CostModel, algebra core.Algebra, x geometry.Vector, metric int, postponeCartesian bool) (*plan.Node, float64) {
	type best struct {
		p    *plan.Node
		c    core.Cost
		cost float64
	}
	memo := make(map[catalog.TableSet]*best)
	for i := range schema.Tables {
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		for _, alt := range model.ScanAlternatives(t) {
			cost := algebra.Eval(alt.Cost, x)[metric]
			if b := memo[q]; b == nil || cost < b.cost {
				memo[q] = &best{p: plan.Scan(t, alt.Op), c: alt.Cost, cost: cost}
			}
		}
	}
	all := schema.AllTables()
	fullyConnected := schema.Connected(all)
	n := schema.NumTables()
	for k := 2; k <= n; k++ {
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if postponeCartesian && fullyConnected && !schema.Connected(mask) {
				continue
			}
			try := func(requireEdge bool) bool {
				found := false
				mask.SubsetsProper(func(q1 catalog.TableSet) bool {
					q2 := mask.Minus(q1)
					if requireEdge && postponeCartesian && !schema.HasEdgeBetween(q1, q2) {
						return true
					}
					b1, b2 := memo[q1], memo[q2]
					if b1 == nil || b2 == nil {
						return true
					}
					for _, alt := range model.JoinAlternatives(q1, q2) {
						c := algebra.Accumulate(alt.Cost, b1.c, b2.c)
						cost := algebra.Eval(c, x)[metric]
						if b := memo[mask]; b == nil || cost < b.cost {
							memo[mask] = &best{p: plan.Join(alt.Op, b1.p, b2.p), c: c, cost: cost}
						}
						found = true
					}
					return true
				})
				return found
			}
			if !try(true) {
				try(false)
			}
		}
	}
	if b := memo[all]; b != nil {
		return b.p, b.cost
	}
	return nil, 0
}

// VecPlan is a plan with its constant cost vector at a fixed parameter
// point.
type VecPlan struct {
	Plan *plan.Node
	Cost core.Cost
	Vec  geometry.Vector
}

// ParetoMQ runs multi-objective dynamic programming at fixed parameter
// values: plans joining the same tables are compared by their constant
// cost vectors, non-Pareto-optimal plans are discarded (the MQ baseline
// of Ganguly et al. [14], which supports multiple metrics but no
// parameters).
func ParetoMQ(schema *catalog.Schema, model core.CostModel, algebra core.Algebra, x geometry.Vector, postponeCartesian bool) []VecPlan {
	memo := make(map[catalog.TableSet][]VecPlan)
	insert := func(q catalog.TableSet, vp VecPlan) {
		for _, old := range memo[q] {
			if WeaklyDominates(old.Vec, vp.Vec) {
				return
			}
		}
		kept := memo[q][:0]
		for _, old := range memo[q] {
			if !WeaklyDominates(vp.Vec, old.Vec) {
				kept = append(kept, old)
			}
		}
		memo[q] = append(kept, vp)
	}
	for i := range schema.Tables {
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		for _, alt := range model.ScanAlternatives(t) {
			insert(q, VecPlan{Plan: plan.Scan(t, alt.Op), Cost: alt.Cost, Vec: algebra.Eval(alt.Cost, x)})
		}
	}
	all := schema.AllTables()
	fullyConnected := schema.Connected(all)
	n := schema.NumTables()
	for k := 2; k <= n; k++ {
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if postponeCartesian && fullyConnected && !schema.Connected(mask) {
				continue
			}
			try := func(requireEdge bool) bool {
				found := false
				mask.SubsetsProper(func(q1 catalog.TableSet) bool {
					q2 := mask.Minus(q1)
					if requireEdge && postponeCartesian && !schema.HasEdgeBetween(q1, q2) {
						return true
					}
					p1s, p2s := memo[q1], memo[q2]
					if len(p1s) == 0 || len(p2s) == 0 {
						return true
					}
					for _, alt := range model.JoinAlternatives(q1, q2) {
						for _, p1 := range p1s {
							for _, p2 := range p2s {
								c := algebra.Accumulate(alt.Cost, p1.Cost, p2.Cost)
								insert(mask, VecPlan{
									Plan: plan.Join(alt.Op, p1.Plan, p2.Plan),
									Cost: c,
									Vec:  algebra.Eval(c, x),
								})
								found = true
							}
						}
					}
					return true
				})
				return found
			}
			if !try(true) {
				try(false)
			}
		}
	}
	return memo[all]
}

// PQSingleMetric runs parametric query optimization for a single cost
// metric with PWL cost functions: a plan is pruned when some retained
// plan's cost function is at most its own over the entire parameter
// space. The result is a parametric optimal set for the chosen metric
// (possibly non-minimal), the PQ baseline of Section 1.1.
func PQSingleMetric(schema *catalog.Schema, model core.CostModel, ctx *geometry.Context, metric int, postponeCartesian bool) []EnumPlan {
	space := model.Space()
	memo := make(map[catalog.TableSet][]EnumPlan)
	dominatedEverywhere := func(a, b *pwl.Function) bool {
		// a <= b everywhere on space?
		one := pwl.NewMulti(a)
		other := pwl.NewMulti(b)
		return pwl.DominatesEverywhere(ctx, one, other, space)
	}
	insert := func(q catalog.TableSet, ep EnumPlan) {
		newF := ep.Cost.(*pwl.Multi).Component(metric)
		for _, old := range memo[q] {
			if dominatedEverywhere(old.Cost.(*pwl.Multi).Component(metric), newF) {
				return
			}
		}
		kept := memo[q][:0]
		for _, old := range memo[q] {
			if !dominatedEverywhere(newF, old.Cost.(*pwl.Multi).Component(metric)) {
				kept = append(kept, old)
			}
		}
		memo[q] = append(kept, ep)
	}
	algebra := &core.PWLAlgebra{Ctx: ctx, Modes: make([]pwl.AccumMode, len(model.MetricNames())), Compact: true}
	for i := range schema.Tables {
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		for _, alt := range model.ScanAlternatives(t) {
			insert(q, EnumPlan{Plan: plan.Scan(t, alt.Op), Cost: alt.Cost})
		}
	}
	all := schema.AllTables()
	fullyConnected := schema.Connected(all)
	n := schema.NumTables()
	for k := 2; k <= n; k++ {
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if postponeCartesian && fullyConnected && !schema.Connected(mask) {
				continue
			}
			try := func(requireEdge bool) bool {
				found := false
				mask.SubsetsProper(func(q1 catalog.TableSet) bool {
					q2 := mask.Minus(q1)
					if requireEdge && postponeCartesian && !schema.HasEdgeBetween(q1, q2) {
						return true
					}
					p1s, p2s := memo[q1], memo[q2]
					if len(p1s) == 0 || len(p2s) == 0 {
						return true
					}
					for _, alt := range model.JoinAlternatives(q1, q2) {
						for _, p1 := range p1s {
							for _, p2 := range p2s {
								c := algebra.Accumulate(alt.Cost, p1.Cost, p2.Cost)
								insert(mask, EnumPlan{Plan: plan.Join(alt.Op, p1.Plan, p2.Plan), Cost: c})
								found = true
							}
						}
					}
					return true
				})
				return found
			}
			if !try(true) {
				try(false)
			}
		}
	}
	return memo[all]
}
