package baseline

import (
	"math"
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/workload"
)

func testSetup(t *testing.T, tables, params int, shape workload.Shape, seed int64) (*catalog.Schema, *cloud.Model, *core.PWLAlgebra, *geometry.Context) {
	t.Helper()
	schema, err := workload.Generate(workload.Config{Tables: tables, Params: params, Shape: shape, Seed: seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	algebra := core.NewPWLAlgebra(ctx, 2)
	return schema, model, algebra, ctx
}

func TestEnumerateAllCounts(t *testing.T) {
	schema, model, algebra, _ := testSetup(t, 3, 1, workload.Chain, 1)
	plans := EnumerateAll(schema, model, algebra, true)
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	// Chain T1-T2-T3, 2 join operators, T1 has idx+scan, T2/T3 scan
	// only. Sub-plans: {T1,T2}: 2 (T1 scans) * 1 * 2 ops * 2 orders = 8;
	// {T2,T3}: 1*1*2*2 = 4. Full plans: splits T1|{T2,T3}: 2*4*2*2(order)
	// ... count must at least be the connected bushy space; just check
	// all plans join all 3 tables and are distinct.
	seen := make(map[string]bool)
	for _, p := range plans {
		if p.Plan.Set != schema.AllTables() {
			t.Fatalf("plan %v does not join all tables", p.Plan)
		}
		if seen[p.Plan.Shape()] {
			t.Fatalf("duplicate plan %v", p.Plan)
		}
		seen[p.Plan.Shape()] = true
	}
}

func TestSelingerMatchesExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		schema, model, algebra, _ := testSetup(t, 4, 1, workload.Chain, seed)
		plans := EnumerateAll(schema, model, algebra, true)
		for _, xv := range []float64{0.05, 0.5, 0.95} {
			x := geometry.Vector{xv}
			for metric := 0; metric < 2; metric++ {
				_, got := Selinger(schema, model, algebra, x, metric, true)
				want := math.Inf(1)
				for _, p := range plans {
					if c := algebra.Eval(p.Cost, x)[metric]; c < want {
						want = c
					}
				}
				if math.Abs(got-want) > 1e-6*(1+want) {
					t.Errorf("seed %d x=%v metric %d: selinger=%v exhaustive=%v", seed, xv, metric, got, want)
				}
			}
		}
	}
}

func TestParetoMQMatchesExhaustiveFront(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		schema, model, algebra, _ := testSetup(t, 4, 1, workload.Star, seed)
		plans := EnumerateAll(schema, model, algebra, true)
		for _, xv := range []float64{0.1, 0.7} {
			x := geometry.Vector{xv}
			front := TrueFrontAt(plans, algebra, x)
			mq := ParetoMQ(schema, model, algebra, x, true)
			// Every true front vector must be matched (weakly dominated)
			// by some MQ plan, and every MQ plan must be on the front.
			for _, f := range front {
				matched := false
				for _, vp := range mq {
					if WeaklyDominates(vp.Vec, f) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("seed %d x=%v: front point %v not covered by MQ result", seed, xv, f)
				}
			}
			for _, vp := range mq {
				for _, p := range plans {
					c := algebra.Eval(p.Cost, x)
					if WeaklyDominates(c, vp.Vec) && !c.Equal(vp.Vec, 1e-9) {
						t.Errorf("seed %d x=%v: MQ kept dominated plan %v (%v beaten by %v)",
							seed, xv, vp.Plan, vp.Vec, c)
					}
				}
			}
		}
	}
}

func TestPQSingleMetricCoversOptimum(t *testing.T) {
	schema, model, algebra, ctx := testSetup(t, 3, 1, workload.Chain, 7)
	for metric := 0; metric < 2; metric++ {
		set := PQSingleMetric(schema, model, ctx, metric, true)
		if len(set) == 0 {
			t.Fatalf("metric %d: empty PQ set", metric)
		}
		// At every sampled parameter point, the PQ set must contain a
		// plan achieving the Selinger optimum for that metric.
		for _, xv := range []float64{0.05, 0.35, 0.65, 0.95} {
			x := geometry.Vector{xv}
			_, want := Selinger(schema, model, algebra, x, metric, true)
			best := math.Inf(1)
			for _, p := range set {
				if c := algebra.Eval(p.Cost, x)[metric]; c < best {
					best = c
				}
			}
			if best > want+1e-6*(1+want) {
				t.Errorf("metric %d x=%v: PQ best %v, optimum %v", metric, xv, best, want)
			}
		}
	}
}

func TestBlowupInstance(t *testing.T) {
	const k, mStar = 20, 5
	alts, space := BlowupInstance(k, mStar)
	if len(alts) != k {
		t.Fatalf("got %d alternatives, want %d", len(alts), k)
	}
	ctx := geometry.NewContext()
	algebra := core.NewPWLAlgebra(ctx, 2)

	// MPQ keeps exactly p1..pmStar.
	schema := core.StaticSchema(1, []float64{0}, []float64{1})
	model := &core.StaticModel{ParamSpace: space, Metrics: []string{"time", "fees"}, Plans: alts}
	res, err := core.Optimize(schema, model, core.DefaultOptions())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if len(res.Plans) != mStar {
		t.Errorf("MPQ result size = %d, want %d", len(res.Plans), mStar)
	}

	// The PQ fee-as-parameter encoding keeps all k plans.
	pqSize := PQEncodedSetSize(alts, algebra, geometry.Vector{0.5})
	if pqSize != k {
		t.Errorf("PQ-encoded size = %d, want %d", pqSize, k)
	}
	// The blow-up factor grows with k (arbitrary factor, Section 1.1).
	if ratio := float64(pqSize) / float64(len(res.Plans)); ratio < 3.9 {
		t.Errorf("blow-up ratio = %v, want ~%v", ratio, float64(k)/float64(mStar))
	}
}
