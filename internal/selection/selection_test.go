package selection

import (
	"errors"
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
)

func candidates() []Candidate {
	space := geometry.Interval(0, 1)
	mk := func(op string, timeW, timeB, fees float64) Candidate {
		return Candidate{
			Plan: plan.Scan(0, op),
			Cost: pwl.NewMulti(
				pwl.Linear(space, geometry.Vector{timeW}, timeB),
				pwl.Constant(space, fees),
			),
		}
	}
	return []Candidate{
		mk("fast-expensive", 0, 1, 10), // time 1, fees 10
		mk("slow-cheap", 2, 2, 1),      // time 2+2x, fees 1
		mk("balanced", 1, 1.5, 4),      // time 1.5+x, fees 4
		mk("dominated", 3, 4, 12),      // never optimal
	}
}

func TestFrontier(t *testing.T) {
	x := geometry.Vector{0.5}
	front := Frontier(candidates(), x)
	// Costs at 0.5: fast (1,10), cheap (3,1), balanced (2,4),
	// dominated (5.5,12). The first three are Pareto-optimal.
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %v", len(front), front)
	}
	// Sorted by time.
	if front[0].Plan.Op != "fast-expensive" || front[2].Plan.Op != "slow-cheap" {
		t.Errorf("front order wrong: %v", front)
	}
	for _, c := range front {
		if c.Plan.Op == "dominated" {
			t.Error("dominated plan on the frontier")
		}
	}
}

func TestFrontierRespectsRelevanceRegions(t *testing.T) {
	ctx := geometry.NewContext()
	cands := candidates()
	// Restrict the fast plan to x <= 0.3.
	rr := region.New(ctx, geometry.Interval(0, 1), region.Options{})
	rr.Subtract(ctx, geometry.Interval(0.3, 1))
	cands[0].RR = rr
	front := Frontier(cands, geometry.Vector{0.5})
	for _, c := range front {
		if c.Plan.Op == "fast-expensive" {
			t.Error("plan outside its relevance region selected")
		}
	}
	front = Frontier(cands, geometry.Vector{0.1})
	found := false
	for _, c := range front {
		if c.Plan.Op == "fast-expensive" {
			found = true
		}
	}
	if !found {
		t.Error("plan missing inside its relevance region")
	}
}

func TestWeightedSum(t *testing.T) {
	x := geometry.Vector{0.5}
	// Heavily weight time: the fast plan wins.
	c, err := WeightedSum(candidates(), x, []float64{10, 0.01})
	if err != nil || c.Plan.Op != "fast-expensive" {
		t.Errorf("time-weighted pick = %v err=%v", c.Plan, err)
	}
	// Heavily weight fees: the cheap plan wins.
	c, err = WeightedSum(candidates(), x, []float64{0.01, 10})
	if err != nil || c.Plan.Op != "slow-cheap" {
		t.Errorf("fee-weighted pick = %v err=%v", c.Plan, err)
	}
	if _, err := WeightedSum(candidates(), x, []float64{0, 0}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := WeightedSum(candidates(), x, []float64{-1, 1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestMinimizeSubjectTo(t *testing.T) {
	x := geometry.Vector{0.5}
	// Cheapest plan within a latency budget of 2.5s: balanced (time 2,
	// fees 4) vs fast (time 1, fees 10); cheap has time 3 — excluded.
	c, err := MinimizeSubjectTo(candidates(), x, 1, []Bound{{Metric: 0, Max: 2.5}})
	if err != nil || c.Plan.Op != "balanced" {
		t.Errorf("budgeted pick = %v err=%v", c.Plan, err)
	}
	// Impossible budget.
	_, err = MinimizeSubjectTo(candidates(), x, 1, []Bound{{Metric: 0, Max: 0.1}})
	if !errors.Is(err, ErrNoFeasiblePlan) {
		t.Errorf("err = %v, want ErrNoFeasiblePlan", err)
	}
	// No bounds: global minimum of fees.
	c, err = MinimizeSubjectTo(candidates(), x, 1, nil)
	if err != nil || c.Plan.Op != "slow-cheap" {
		t.Errorf("unbounded pick = %v err=%v", c.Plan, err)
	}
}

func TestLexicographic(t *testing.T) {
	x := geometry.Vector{0.5}
	c, err := Lexicographic(candidates(), x, []int{0, 1})
	if err != nil || c.Plan.Op != "fast-expensive" {
		t.Errorf("time-first pick = %v err=%v", c.Plan, err)
	}
	c, err = Lexicographic(candidates(), x, []int{1, 0})
	if err != nil || c.Plan.Op != "slow-cheap" {
		t.Errorf("fees-first pick = %v err=%v", c.Plan, err)
	}
	// Tie on the first metric broken by the second.
	space := geometry.Interval(0, 1)
	tie := []Candidate{
		{Plan: plan.Scan(0, "a"), Cost: pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 5))},
		{Plan: plan.Scan(0, "b"), Cost: pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 3))},
	}
	c, err = Lexicographic(tie, x, []int{0, 1})
	if err != nil || c.Plan.Op != "b" {
		t.Errorf("tie-break pick = %v err=%v", c.Plan, err)
	}
}

// TestFrontierDeterministicOnTies: plans tied on the first metric (but
// Pareto-incomparable on the remaining ones, which needs at least three
// metrics) must come back in the same lexicographic cost order for
// every candidate order. Regression test for the non-stable
// first-metric-only sort.
func TestFrontierDeterministicOnTies(t *testing.T) {
	space := geometry.Interval(0, 1)
	mk := func(op string, costs ...float64) Candidate {
		comps := make([]*pwl.Function, len(costs))
		for i, c := range costs {
			comps[i] = pwl.Constant(space, c)
		}
		return Candidate{Plan: plan.Scan(0, op), Cost: pwl.NewMulti(comps...)}
	}
	// All tied on metric 0; pairwise incomparable on metrics 1 and 2.
	cands := []Candidate{
		mk("a", 1, 5, 1),
		mk("b", 1, 1, 5),
		mk("c", 1, 3, 3),
		mk("d", 2, 0, 0), // untied control, sorts last
	}
	x := geometry.Vector{0.5}
	want := []string{"b", "c", "a", "d"} // lexicographic by full cost vector
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	for _, perm := range perms {
		shuffled := make([]Candidate, len(cands))
		for i, p := range perm {
			shuffled[i] = cands[p]
		}
		front := Frontier(shuffled, x)
		if len(front) != len(want) {
			t.Fatalf("perm %v: front size = %d, want %d", perm, len(front), len(want))
		}
		for i, c := range front {
			if c.Plan.Op != want[i] {
				t.Fatalf("perm %v: front order = %v, want %v", perm, frontOps(front), want)
			}
		}
	}
}

func frontOps(front []Choice) []string {
	ops := make([]string, len(front))
	for i, c := range front {
		ops[i] = c.Plan.Op
	}
	return ops
}

func TestEmptyCandidates(t *testing.T) {
	x := geometry.Vector{0.5}
	if got := Frontier(nil, x); len(got) != 0 {
		t.Error("frontier of no candidates not empty")
	}
	if _, err := WeightedSum(nil, x, []float64{1}); !errors.Is(err, ErrNoFeasiblePlan) {
		t.Error("weighted sum with no candidates should fail")
	}
	if _, err := Lexicographic(nil, x, []int{0}); !errors.Is(err, ErrNoFeasiblePlan) {
		t.Error("lexicographic with no candidates should fail")
	}
}
