// Package selection implements the run-time half of the MPQ workflow
// (Figure 2 of the paper): given a precomputed Pareto plan set, concrete
// parameter values, and user preferences, pick the plan to execute. No
// query optimization happens at run time.
//
// Three preference policies cover the scenarios of the paper's
// introduction: a weighted scalarization (Cloud users weighting money
// against time), bounded metrics with a minimized objective (a latency
// budget or a minimum result precision), and lexicographic preference
// order.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
)

// Candidate is a plan available for run-time selection.
type Candidate struct {
	Plan *plan.Node
	Cost *pwl.Multi
	// RR optionally restricts the candidate to its relevance region;
	// when nil the candidate is always considered.
	RR *region.Region
}

// Choice is a selected plan with its cost vector at the parameter
// point.
type Choice struct {
	Plan *plan.Node
	Cost geometry.Vector
}

// ErrNoFeasiblePlan is returned when constraints exclude every plan.
var ErrNoFeasiblePlan = errors.New("selection: no plan satisfies the constraints")

// Frontier evaluates all candidates at x and returns the Pareto-optimal
// choices sorted by the first metric — the tradeoff visualization shown
// to users in Scenario 1. Candidates whose relevance region excludes x
// are skipped (the relevance mapping of Section 2 guarantees the
// remaining plans cover the front).
func Frontier(candidates []Candidate, x geometry.Vector) []Choice {
	evaluated := evaluate(candidates, x)
	var front []Choice
	for i, c := range evaluated {
		dominated := false
		for j, other := range evaluated {
			if i == j {
				continue
			}
			if weaklyDominates(other.Cost, c.Cost) {
				if !other.Cost.Equal(c.Cost, 1e-12) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	// Stable sort with a full lexicographic cost tie-break: plans tied
	// on the first metric (possible with three or more metrics) must
	// come back in the same order on every run regardless of candidate
	// order, so that serving-layer responses are reproducible.
	sort.SliceStable(front, func(i, j int) bool { return lexVecLess(front[i].Cost, front[j].Cost) })
	return front
}

// lexVecLess compares cost vectors lexicographically across all
// metrics.
func lexVecLess(a, b geometry.Vector) bool {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return true
		case a[i] > b[i]:
			return false
		}
	}
	return false
}

// WeightedSum picks the plan minimizing the weighted sum of metric
// values at x. Weights must be non-negative and at least one positive.
func WeightedSum(candidates []Candidate, x geometry.Vector, weights []float64) (Choice, error) {
	positive := false
	for _, w := range weights {
		if w < 0 {
			return Choice{}, fmt.Errorf("selection: negative weight %v", w)
		}
		if w > 0 {
			positive = true
		}
	}
	if !positive {
		return Choice{}, errors.New("selection: all weights are zero")
	}
	evaluated := evaluate(candidates, x)
	if len(evaluated) == 0 {
		return Choice{}, ErrNoFeasiblePlan
	}
	best := evaluated[0]
	bestVal := scalarize(best.Cost, weights)
	for _, c := range evaluated[1:] {
		if v := scalarize(c.Cost, weights); v < bestVal {
			best, bestVal = c, v
		}
	}
	return best, nil
}

// Bound is an upper limit on one metric.
type Bound struct {
	Metric int
	Max    float64
}

// MinimizeSubjectTo picks the plan minimizing the given metric among
// plans satisfying all bounds at x — e.g. minimize fees subject to a
// latency budget, or minimize time subject to a precision-loss limit
// (Scenario 2).
func MinimizeSubjectTo(candidates []Candidate, x geometry.Vector, minimize int, bounds []Bound) (Choice, error) {
	evaluated := evaluate(candidates, x)
	var best *Choice
	for i := range evaluated {
		c := evaluated[i]
		ok := true
		for _, b := range bounds {
			if c.Cost[b.Metric] > b.Max+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || c.Cost[minimize] < best.Cost[minimize] {
			best = &c
		}
	}
	if best == nil {
		return Choice{}, ErrNoFeasiblePlan
	}
	return *best, nil
}

// Lexicographic picks the plan minimizing metrics in the given priority
// order, breaking ties by the next metric (within tolerance).
func Lexicographic(candidates []Candidate, x geometry.Vector, order []int) (Choice, error) {
	evaluated := evaluate(candidates, x)
	if len(evaluated) == 0 {
		return Choice{}, ErrNoFeasiblePlan
	}
	best := evaluated[0]
	for _, c := range evaluated[1:] {
		if lexLess(c.Cost, best.Cost, order) {
			best = c
		}
	}
	return best, nil
}

func lexLess(a, b geometry.Vector, order []int) bool {
	const tol = 1e-12
	for _, m := range order {
		switch {
		case a[m] < b[m]-tol:
			return true
		case a[m] > b[m]+tol:
			return false
		}
	}
	return false
}

func evaluate(candidates []Candidate, x geometry.Vector) []Choice {
	out := make([]Choice, 0, len(candidates))
	for _, cand := range candidates {
		if cand.RR != nil && !cand.RR.Contains(x, 1e-9) {
			continue
		}
		v, _ := cand.Cost.Eval(x)
		out = append(out, Choice{Plan: cand.Plan, Cost: v})
	}
	return out
}

func scalarize(cost geometry.Vector, weights []float64) float64 {
	s := 0.0
	for i, w := range weights {
		s += w * cost[i]
	}
	return s
}

func weaklyDominates(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}
