// Package selection implements the run-time half of the MPQ workflow
// (Figure 2 of the paper): given a precomputed Pareto plan set, concrete
// parameter values, and user preferences, pick the plan to execute. No
// query optimization happens at run time.
//
// Three preference policies cover the scenarios of the paper's
// introduction: a weighted scalarization (Cloud users weighting money
// against time), bounded metrics with a minimized objective (a latency
// budget or a minimum result precision), and lexicographic preference
// order.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
)

// Candidate is a plan available for run-time selection.
type Candidate struct {
	Plan *plan.Node
	Cost *pwl.Multi
	// RR optionally restricts the candidate to its relevance region;
	// when nil the candidate is always considered.
	RR *region.Region
}

// Choice is a selected plan with its cost vector at the parameter
// point.
type Choice struct {
	Plan *plan.Node
	Cost geometry.Vector
}

// ErrNoFeasiblePlan is returned when constraints exclude every plan.
var ErrNoFeasiblePlan = errors.New("selection: no plan satisfies the constraints")

// Frontier evaluates all candidates at x and returns the Pareto-optimal
// choices sorted by the first metric — the tradeoff visualization shown
// to users in Scenario 1. Candidates whose relevance region excludes x
// are skipped (the relevance mapping of Section 2 guarantees the
// remaining plans cover the front).
func Frontier(candidates []Candidate, x geometry.Vector) []Choice {
	evaluated := Evaluate(candidates, x)
	var front []Choice
	for i, c := range evaluated {
		dominated := false
		for j, other := range evaluated {
			if i == j {
				continue
			}
			if weaklyDominates(other.Cost, c.Cost) {
				if !other.Cost.Equal(c.Cost, 1e-12) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	// Stable sort with a full lexicographic cost tie-break: plans tied
	// on the first metric (possible with three or more metrics) must
	// come back in the same order on every run regardless of candidate
	// order, so that serving-layer responses are reproducible.
	sort.SliceStable(front, func(i, j int) bool { return lexVecLess(front[i].Cost, front[j].Cost) })
	return front
}

// lexVecLess compares cost vectors lexicographically across all
// metrics.
func lexVecLess(a, b geometry.Vector) bool {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return true
		case a[i] > b[i]:
			return false
		}
	}
	return false
}

// WeightedSum picks the plan minimizing the weighted sum of metric
// values at x. Weights must be non-negative and at least one positive.
func WeightedSum(candidates []Candidate, x geometry.Vector, weights []float64) (Choice, error) {
	positive := false
	for _, w := range weights {
		if w < 0 {
			return Choice{}, fmt.Errorf("selection: negative weight %v", w)
		}
		if w > 0 {
			positive = true
		}
	}
	if !positive {
		return Choice{}, errors.New("selection: all weights are zero")
	}
	// Stream over the relevant candidates with two reused cost buffers
	// instead of materializing the full evaluated list: same iteration
	// order and comparisons, so the winner (and its cost values) is
	// identical to the materialized scan.
	var cur, best geometry.Vector
	var bestPlan *plan.Node
	bestVal := 0.0
	for _, cand := range candidates {
		if cand.RR != nil && !cand.RR.Contains(x, ContainsEps) {
			continue
		}
		cur, _ = cand.Cost.EvalInto(cur, x)
		if v := scalarize(cur, weights); bestPlan == nil || v < bestVal {
			bestPlan, bestVal = cand.Plan, v
			cur, best = best, cur
		}
	}
	if bestPlan == nil {
		return Choice{}, ErrNoFeasiblePlan
	}
	return Choice{Plan: bestPlan, Cost: best}, nil
}

// Bound is an upper limit on one metric.
type Bound struct {
	Metric int
	Max    float64
}

// MinimizeSubjectTo picks the plan minimizing the given metric among
// plans satisfying all bounds at x — e.g. minimize fees subject to a
// latency budget, or minimize time subject to a precision-loss limit
// (Scenario 2).
func MinimizeSubjectTo(candidates []Candidate, x geometry.Vector, minimize int, bounds []Bound) (Choice, error) {
	var cur, best geometry.Vector
	var bestPlan *plan.Node
	for _, cand := range candidates {
		if cand.RR != nil && !cand.RR.Contains(x, ContainsEps) {
			continue
		}
		cur, _ = cand.Cost.EvalInto(cur, x)
		ok := true
		for _, b := range bounds {
			if cur[b.Metric] > b.Max+1e-12 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if bestPlan == nil || cur[minimize] < best[minimize] {
			bestPlan = cand.Plan
			cur, best = best, cur
		}
	}
	if bestPlan == nil {
		return Choice{}, ErrNoFeasiblePlan
	}
	return Choice{Plan: bestPlan, Cost: best}, nil
}

// Lexicographic picks the plan minimizing metrics in the given priority
// order, breaking ties by the next metric (within tolerance).
func Lexicographic(candidates []Candidate, x geometry.Vector, order []int) (Choice, error) {
	var cur, best geometry.Vector
	var bestPlan *plan.Node
	for _, cand := range candidates {
		if cand.RR != nil && !cand.RR.Contains(x, ContainsEps) {
			continue
		}
		cur, _ = cand.Cost.EvalInto(cur, x)
		if bestPlan == nil || lexLess(cur, best, order) {
			bestPlan = cand.Plan
			cur, best = best, cur
		}
	}
	if bestPlan == nil {
		return Choice{}, ErrNoFeasiblePlan
	}
	return Choice{Plan: bestPlan, Cost: best}, nil
}

func lexLess(a, b geometry.Vector, order []int) bool {
	const tol = 1e-12
	for _, m := range order {
		switch {
		case a[m] < b[m]-tol:
			return true
		case a[m] > b[m]+tol:
			return false
		}
	}
	return false
}

// ContainsEps is the relevance-region containment tolerance of the
// selection policies: a candidate participates at x unless x is inside
// one of its region's cutouts by more than this margin. Point-location
// indexes over candidate sets (internal/index) must prune candidates
// conservatively with respect to this tolerance to keep policy results
// byte-identical to a full scan. It aliases geometry.CompareEps, the
// one comparison epsilon shared across the numeric layers.
const ContainsEps = geometry.CompareEps

// Evaluate filters candidates by their relevance regions at x and
// evaluates the survivors' cost functions — the shared first step of
// every policy, exported so index structures can validate their leaf
// candidate sets against it.
func Evaluate(candidates []Candidate, x geometry.Vector) []Choice {
	// At any one point only a small fraction of a large candidate set is
	// relevant; start with a small buffer instead of one sized for the
	// full set (append grows it in the rare wide-front case).
	capHint := len(candidates)
	if capHint > 16 {
		capHint = 16
	}
	out := make([]Choice, 0, capHint)
	for _, cand := range candidates {
		if cand.RR != nil && !cand.RR.Contains(x, ContainsEps) {
			continue
		}
		v, _ := cand.Cost.Eval(x)
		out = append(out, Choice{Plan: cand.Plan, Cost: v})
	}
	return out
}

func scalarize(cost geometry.Vector, weights []float64) float64 {
	s := 0.0
	for i, w := range weights {
		s += w * cost[i]
	}
	return s
}

func weaklyDominates(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}
