package region

import (
	"testing"

	"mpq/internal/geometry"
)

// TestWitnessRegeneration: after a geometric non-emptiness verdict, a
// witness point is cached so that further emptiness checks on an
// unchanged region cost no LPs.
func TestWitnessRegeneration(t *testing.T) {
	for _, strat := range []EmptinessStrategy{StrategyBemporad, StrategyCoverDiff} {
		ctx := geometry.NewContext()
		r := New(ctx, geometry.UnitBox(1), Options{Strategy: strat})
		// Without relevance points, the first check is geometric.
		r.Subtract(ctx, geometry.Interval(0, 0.6))
		if r.IsEmpty(ctx) {
			t.Fatalf("%v: not empty", strat)
		}
		lps := ctx.Stats.LPs
		if r.IsEmpty(ctx) {
			t.Fatalf("%v: became empty", strat)
		}
		if ctx.Stats.LPs != lps {
			t.Errorf("%v: repeated IsEmpty solved %d LPs, want 0 (witness cached)", strat, ctx.Stats.LPs-lps)
		}
		// A cutout covering the witness forces a new geometric check,
		// which must still report non-empty (gap at (0.6, 0.7)).
		r.Subtract(ctx, geometry.Interval(0.7, 1))
		if r.IsEmpty(ctx) {
			t.Fatalf("%v: gap (0.6,0.7) lost", strat)
		}
		// Finally cover everything.
		r.Subtract(ctx, geometry.Interval(0.55, 0.75))
		if !r.IsEmpty(ctx) {
			t.Errorf("%v: fully covered region not empty", strat)
		}
	}
}

// TestWitnessInsideRegion: regenerated witnesses must lie inside the
// region (strictly outside all cutouts).
func TestWitnessInsideRegion(t *testing.T) {
	ctx := geometry.NewContext()
	r := New(ctx, geometry.UnitBox(2), Options{Strategy: StrategyCoverDiff})
	r.Subtract(ctx,
		geometry.Box(geometry.Vector{0, 0}, geometry.Vector{1, 0.5}),
		geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.5, 1}),
	)
	if r.IsEmpty(ctx) {
		t.Fatal("L-shaped cover should leave the corner")
	}
	w, ok := r.Witness(ctx)
	if !ok {
		t.Fatal("no witness")
	}
	if !r.Contains(w, 1e-9) {
		t.Errorf("witness %v outside region", w)
	}
	if w[0] < 0.5 || w[1] < 0.5 {
		t.Errorf("witness %v not in the uncovered corner", w)
	}
}
