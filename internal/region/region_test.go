package region

import (
	"math/rand"
	"testing"

	"mpq/internal/geometry"
)

func noRefinements(strategy EmptinessStrategy) Options {
	return Options{Strategy: strategy}
}

func TestNewRegionNotEmpty(t *testing.T) {
	ctx := geometry.NewContext()
	for _, opts := range []Options{DefaultOptions(), noRefinements(StrategyBemporad), noRefinements(StrategyCoverDiff)} {
		r := New(ctx, geometry.UnitBox(2), opts)
		if r.IsEmpty(ctx) {
			t.Errorf("fresh region empty with opts %+v", opts)
		}
	}
}

func TestSubtractFigure7(t *testing.T) {
	// Figure 7 of the paper: plan 2's RR is [0,1]; after pruning with
	// plan 1 it is reduced by [0, 0.25], leaving [0.25, 1].
	ctx := geometry.NewContext()
	r := New(ctx, geometry.Interval(0, 1), DefaultOptions())
	r.Subtract(ctx, geometry.Interval(0, 0.25))
	if r.IsEmpty(ctx) {
		t.Fatal("region empty after one cutout")
	}
	if r.Contains(geometry.Vector{0.1}, 1e-9) {
		t.Error("0.1 should be cut out")
	}
	if !r.Contains(geometry.Vector{0.5}, 1e-9) {
		t.Error("0.5 should remain relevant")
	}
	pieces := r.Pieces(ctx)
	if len(pieces) != 1 {
		t.Fatalf("got %d pieces, want 1", len(pieces))
	}
	lo, hi, ok := ctx.Vertices1D(pieces[0])
	if !ok || lo < 0.25-1e-6 || lo > 0.25+1e-6 || hi < 1-1e-6 {
		t.Errorf("remaining region = [%v,%v], want [0.25,1]", lo, hi)
	}
}

func TestIsEmptyFullCoverBothStrategies(t *testing.T) {
	for _, strat := range []EmptinessStrategy{StrategyBemporad, StrategyCoverDiff} {
		ctx := geometry.NewContext()
		r := New(ctx, geometry.Interval(0, 1), noRefinements(strat))
		r.Subtract(ctx, geometry.Interval(0, 0.6))
		if r.IsEmpty(ctx) {
			t.Errorf("%v: region empty with partial cover", strat)
		}
		r.Subtract(ctx, geometry.Interval(0.5, 1))
		if !r.IsEmpty(ctx) {
			t.Errorf("%v: region not empty after full cover", strat)
		}
	}
}

func TestIsEmptyNonConvexCover(t *testing.T) {
	// Cover the unit square by two overlapping rectangles whose union IS
	// the square (convex), and by an L-shape that does not cover.
	for _, strat := range []EmptinessStrategy{StrategyBemporad, StrategyCoverDiff} {
		ctx := geometry.NewContext()
		r := New(ctx, geometry.UnitBox(2), noRefinements(strat))
		r.Subtract(ctx,
			geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.7, 1}),
			geometry.Box(geometry.Vector{0.5, 0}, geometry.Vector{1, 1}))
		if !r.IsEmpty(ctx) {
			t.Errorf("%v: two covering rectangles should empty the region", strat)
		}

		r2 := New(ctx, geometry.UnitBox(2), noRefinements(strat))
		r2.Subtract(ctx,
			geometry.Box(geometry.Vector{0, 0}, geometry.Vector{1, 0.5}),
			geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.5, 1}))
		if r2.IsEmpty(ctx) {
			t.Errorf("%v: L-shaped cover should leave the region non-empty", strat)
		}
		if !r2.Contains(geometry.Vector{0.9, 0.9}, 1e-9) {
			t.Errorf("%v: (0.9,0.9) should remain relevant", strat)
		}
	}
}

func TestRelevancePointsSkipGeometry(t *testing.T) {
	ctx := geometry.NewContext()
	opts := Options{Strategy: StrategyBemporad, RelevancePoints: 16}
	r := New(ctx, geometry.UnitBox(2), opts)
	r.Subtract(ctx, geometry.Box(geometry.Vector{0, 0}, geometry.Vector{0.3, 0.3}))
	lpsBefore := ctx.Stats.LPs
	if r.IsEmpty(ctx) {
		t.Fatal("region should not be empty")
	}
	if ctx.Stats.LPs != lpsBefore {
		t.Errorf("IsEmpty solved %d LPs despite surviving relevance points", ctx.Stats.LPs-lpsBefore)
	}
}

func TestRelevancePointsAllConsumed(t *testing.T) {
	ctx := geometry.NewContext()
	opts := Options{Strategy: StrategyCoverDiff, RelevancePoints: 9}
	r := New(ctx, geometry.UnitBox(1), opts)
	// Cover everything: points must all be deleted and the geometric
	// check must report empty.
	r.Subtract(ctx, geometry.Interval(-0.1, 1.1))
	if !r.IsEmpty(ctx) {
		t.Error("fully covered region must be empty")
	}
}

func TestRedundantCutoutElimination(t *testing.T) {
	ctx := geometry.NewContext()
	opts := Options{Strategy: StrategyCoverDiff, EliminateRedundantCutouts: true}
	r := New(ctx, geometry.UnitBox(1), opts)
	r.Subtract(ctx, geometry.Interval(0.2, 0.4))
	r.Subtract(ctx, geometry.Interval(0.25, 0.35)) // inside previous: dropped
	if r.NumCutouts() != 1 {
		t.Errorf("cutouts = %d, want 1 (nested cutout dropped)", r.NumCutouts())
	}
	r.Subtract(ctx, geometry.Interval(0.1, 0.5)) // covers previous: replaces it
	if r.NumCutouts() != 1 {
		t.Errorf("cutouts = %d, want 1 (superseded cutout dropped)", r.NumCutouts())
	}
	// Semantics unchanged: [0.1,0.5] cut out.
	if r.Contains(geometry.Vector{0.3}, 1e-9) {
		t.Error("0.3 should be cut out")
	}
	if !r.Contains(geometry.Vector{0.05}, 1e-9) {
		t.Error("0.05 should be relevant")
	}
}

func TestWitness(t *testing.T) {
	ctx := geometry.NewContext()
	r := New(ctx, geometry.Interval(0, 1), noRefinements(StrategyCoverDiff))
	r.Subtract(ctx, geometry.Interval(0, 0.7))
	w, ok := r.Witness(ctx)
	if !ok {
		t.Fatal("no witness for non-empty region")
	}
	if !r.Contains(w, 1e-6) {
		t.Errorf("witness %v not inside region", w)
	}
	r.Subtract(ctx, geometry.Interval(0.6, 1))
	if _, ok := r.Witness(ctx); ok {
		t.Error("witness returned for empty region")
	}
}

// TestStrategiesAgreeRandom: the two emptiness strategies must agree on
// random cutout configurations (same tolerance regime).
func TestStrategiesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(2)
		var cutouts []*geometry.Polytope
		n := rng.Intn(4)
		for k := 0; k < n; k++ {
			lo, hi := geometry.NewVector(dim), geometry.NewVector(dim)
			for i := 0; i < dim; i++ {
				a := rng.Float64() * 1.2
				b := a + rng.Float64()*1.2
				lo[i], hi[i] = a-0.1, b-0.1
			}
			cutouts = append(cutouts, geometry.Box(lo, hi))
		}
		results := make([]bool, 2)
		for si, strat := range []EmptinessStrategy{StrategyBemporad, StrategyCoverDiff} {
			ctx := geometry.NewContext()
			r := New(ctx, geometry.UnitBox(dim), noRefinements(strat))
			r.Subtract(ctx, cutouts...)
			results[si] = r.IsEmpty(ctx)
		}
		if results[0] != results[1] {
			t.Fatalf("trial %d: strategies disagree (bemporad=%v coverdiff=%v), cutouts=%v",
				trial, results[0], results[1], cutouts)
		}
	}
}

// TestSubtractContainsConsistency: after random subtractions, Contains
// must agree with membership in the materialized pieces.
func TestSubtractContainsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ctx := geometry.NewContext()
	for trial := 0; trial < 20; trial++ {
		r := New(ctx, geometry.UnitBox(1), noRefinements(StrategyCoverDiff))
		for k := 0; k < 3; k++ {
			a := rng.Float64()
			b := a + rng.Float64()*0.3
			r.Subtract(ctx, geometry.Interval(a, b))
		}
		pieces := r.Pieces(ctx)
		for s := 0; s <= 20; s++ {
			x := geometry.Vector{float64(s) / 20}
			inPieces := false
			for _, p := range pieces {
				if p.ContainsPoint(x, 1e-9) {
					inPieces = true
					break
				}
			}
			// Contains and pieces can disagree only on cutout
			// boundaries; check with a strict margin.
			if r.Contains(x, -1e-6) && !inPieces {
				// x strictly inside region but not in pieces: only
				// acceptable on a piece boundary; verify by nudging.
				if !r.Contains(x, 1e-6) {
					continue
				}
				t.Fatalf("trial %d: %v in region but not in pieces", trial, x)
			}
		}
	}
}
