// Package region implements relevance regions (RRs) for the relevance
// region pruning algorithm. Following Theorem 4 and Figure 8 of the
// paper, a relevance region is represented as the complement of a set of
// convex polytopes, the cutouts: a parameter-space point belongs to the
// region iff it is contained in no cutout.
//
// The package implements both elementary operations of Algorithm 2
// (SubtractPolys and IsEmpty) and the three refinements of Section 6.2:
// redundant-constraint elimination happens in the geometry package,
// redundant-cutout elimination and relevance points are implemented
// here.
package region

import (
	"fmt"

	"mpq/internal/geometry"
)

// EmptinessStrategy selects how Region.IsEmpty decides coverage of the
// parameter space by the cutouts.
type EmptinessStrategy int

const (
	// StrategyBemporad is the paper's Algorithm 2: check whether the
	// union of the cutouts is convex (Bemporad et al. convexity
	// recognition); if so, the region is empty iff the resulting
	// polytope contains the parameter space (Theorem 5).
	StrategyBemporad EmptinessStrategy = iota
	// StrategyCoverDiff checks directly whether the cutouts cover the
	// parameter space using region difference with early exit.
	StrategyCoverDiff
)

func (s EmptinessStrategy) String() string {
	switch s {
	case StrategyBemporad:
		return "bemporad"
	case StrategyCoverDiff:
		return "coverdiff"
	}
	return "unknown"
}

// ParseStrategy converts a strategy name (as produced by String) back to
// an EmptinessStrategy, for configuration files and serialized plan-set
// documents.
func ParseStrategy(name string) (EmptinessStrategy, error) {
	switch name {
	case "bemporad":
		return StrategyBemporad, nil
	case "coverdiff":
		return StrategyCoverDiff, nil
	}
	return 0, fmt.Errorf("region: unknown emptiness strategy %q", name)
}

// Options configures the refinements of Section 6.2.
type Options struct {
	// Strategy selects the emptiness check.
	Strategy EmptinessStrategy
	// RelevancePoints is the number of deterministic sample points
	// distributed across the parameter space when a region is created;
	// as long as one point survives all cutouts the region cannot be
	// empty and the expensive emptiness check is skipped (third
	// refinement of Section 6.2). Zero disables the heuristic.
	RelevancePoints int
	// EliminateRedundantCutouts drops cutouts that are covered by a
	// single other cutout (second refinement of Section 6.2).
	EliminateRedundantCutouts bool
}

// DefaultOptions returns the configuration used by the paper's
// experiments: all refinements enabled.
func DefaultOptions() Options {
	return Options{
		Strategy:                  StrategyBemporad,
		RelevancePoints:           16,
		EliminateRedundantCutouts: true,
	}
}

// Region is a relevance region: the subset of the parameter space not
// covered by any cutout.
//
// Whenever a geometric emptiness check proves the region non-empty, a
// witness point of the uncovered part is added to the relevance points,
// so the expensive geometry is only re-evaluated after new cutouts have
// covered that witness — a regeneration of the paper's relevance-point
// refinement that is crucial for pruning-heavy workloads.
type Region struct {
	space   *geometry.Polytope
	cutouts []*geometry.Polytope
	points  []geometry.Vector // surviving relevance points
	opts    Options
	// assumeInSpace marks read-only containment views (ContainmentView):
	// Contains skips the parameter-space test because the caller
	// guarantees queried points lie inside the space.
	assumeInSpace bool
}

// New creates the full relevance region over the given parameter space
// (Algorithm 1 line 36: the RR of a new plan is initialized by the full
// parameter space).
func New(ctx *geometry.Context, space *geometry.Polytope, opts Options) *Region {
	// Warm the space's Chebyshev memo deterministically: emptiness
	// checks peek at it (Contains' fast rejection), and with parallel
	// workers a lazily computed memo would make the peek outcome — and
	// with it the LP count — depend on scheduling.
	ctx.Chebyshev(space)
	r := &Region{space: space, opts: opts}
	if opts.RelevancePoints > 0 {
		r.points = seedPoints(ctx, space, opts.RelevancePoints)
	}
	return r
}

// seedPoints distributes deterministic points across the parameter
// space: a grid over the bounding box filtered to the space, plus the
// Chebyshev center.
func seedPoints(ctx *geometry.Context, space *geometry.Polytope, n int) []geometry.Vector {
	lo, hi, ok := ctx.BoundingBox(space)
	if !ok {
		return nil
	}
	dim := space.Dim()
	perDim := 2
	for {
		total := 1
		for i := 0; i < dim; i++ {
			total *= perDim
			if total >= n {
				break
			}
		}
		if total >= n || perDim > 64 {
			break
		}
		perDim++
	}
	var pts []geometry.Vector
	for _, p := range geometry.SamplePointsInBox(lo, hi, perDim, n) {
		if space.ContainsPoint(p, 1e-9) {
			pts = append(pts, p)
		}
	}
	if c, rad, ok := ctx.Chebyshev(space); ok && rad > 0 {
		pts = append(pts, c)
	}
	return pts
}

// Space returns the parameter space polytope.
func (r *Region) Space() *geometry.Polytope { return r.space }

// Options returns the refinement configuration the region was created
// with, so that serialized regions can be rebuilt identically at load
// time.
func (r *Region) Options() Options { return r.opts }

// Cutouts returns the current cutout list. The slice must not be
// modified.
func (r *Region) Cutouts() []*geometry.Polytope { return r.cutouts }

// ContainmentView returns a read-only view of the region that tests
// the given cutouts instead of the region's own. Contains through the
// view skips the parameter-space test; it is identical to the full
// region for every in-space point where the replaced cutout list is
// containment-equivalent — the contract of the pick index's cell
// restriction, which drops cutouts (and individual cutout constraints)
// that provably cannot decide a containment test inside a
// parameter-space cell, and only answers points validated to lie
// inside the space. The view must not be mutated (Subtract/IsEmpty) or
// serialized; it carries no relevance points.
func (r *Region) ContainmentView(cutouts []*geometry.Polytope) *Region {
	return &Region{space: r.space, cutouts: cutouts, opts: r.opts, assumeInSpace: true}
}

// NumCutouts returns the number of stored cutouts.
func (r *Region) NumCutouts() int { return len(r.cutouts) }

// Contains reports whether x belongs to the relevance region: inside the
// parameter space and outside every cutout. Views built with
// ContainmentView assume x is inside the space and test only the
// cutouts.
func (r *Region) Contains(x geometry.Vector, eps float64) bool {
	if !r.assumeInSpace && !r.space.ContainsPoint(x, eps) {
		return false
	}
	for _, c := range r.cutouts {
		if c.ContainsPoint(x, -eps) { // strictly inside a cutout
			return false
		}
	}
	return true
}

// Subtract reduces the region by the given polytopes by adding them as
// cutouts (Algorithm 2, SubtractPolys; Figure 10). Relevance points
// falling inside a new cutout are deleted; with redundant-cutout
// elimination enabled, cutouts covered by another single cutout are
// dropped.
func (r *Region) Subtract(ctx *geometry.Context, polys ...*geometry.Polytope) {
	for _, p := range polys {
		if p == nil {
			continue
		}
		r.addCutout(ctx, p)
	}
}

func (r *Region) addCutout(ctx *geometry.Context, c *geometry.Polytope) {
	// Filter relevance points.
	if len(r.points) > 0 {
		kept := r.points[:0]
		for _, pt := range r.points {
			if !c.ContainsPoint(pt, 0) {
				kept = append(kept, pt)
			}
		}
		r.points = kept
	}
	if r.opts.EliminateRedundantCutouts {
		// Drop the new cutout if covered by an existing one.
		for _, old := range r.cutouts {
			if ctx.Contains(old, c) {
				return
			}
		}
		// Drop existing cutouts covered by the new one.
		kept := r.cutouts[:0]
		for _, old := range r.cutouts {
			if !ctx.Contains(c, old) {
				kept = append(kept, old)
			}
		}
		r.cutouts = kept
	}
	r.cutouts = append(r.cutouts, c)
}

// IsEmpty reports whether the relevance region is empty, i.e. whether
// the cutouts cover the parameter space (Algorithm 2, IsEmpty; Theorem
// 5). Coverage is decided up to lower-dimensional slivers (see
// DESIGN.md). While relevance points survive, the region is trivially
// non-empty and no geometry is evaluated.
func (r *Region) IsEmpty(ctx *geometry.Context) bool {
	if len(r.points) > 0 {
		return false
	}
	if len(r.cutouts) == 0 {
		return !ctx.IsFullDim(r.space)
	}
	switch r.opts.Strategy {
	case StrategyCoverDiff:
		w := ctx.UncoveredWitness(r.space, r.cutouts)
		if w == nil {
			return true
		}
		r.regeneratePoint(ctx, w)
		return false
	default: // StrategyBemporad
		u, convex := ctx.UnionConvex(r.cutouts)
		if !convex {
			// A non-convex union cannot equal the (convex) parameter
			// space, hence cannot cover it entirely (Theorem 5). Find a
			// witness so the next checks are point-based.
			if w := ctx.UncoveredWitness(r.space, r.cutouts); w != nil {
				r.regeneratePoint(ctx, w)
			}
			return false
		}
		if u == nil {
			return !ctx.IsFullDim(r.space)
		}
		if ctx.Contains(u, r.space) {
			return true
		}
		if w := ctx.UncoveredWitness(r.space, r.cutouts); w != nil {
			r.regeneratePoint(ctx, w)
		}
		return false
	}
}

// regeneratePoint records the Chebyshev center of an uncovered residual
// as a fresh relevance point.
func (r *Region) regeneratePoint(ctx *geometry.Context, residual *geometry.Polytope) {
	c, _, ok := ctx.Chebyshev(residual)
	if ok && r.space.ContainsPoint(c, 1e-9) {
		r.points = append(r.points, c)
	}
}

// Witness returns a point in the relevance region, preferring a
// surviving relevance point and falling back to a region-difference
// witness. ok is false when the region is empty.
func (r *Region) Witness(ctx *geometry.Context) (geometry.Vector, bool) {
	if len(r.points) > 0 {
		return r.points[0], true
	}
	w := ctx.UncoveredWitness(r.space, r.cutouts)
	if w == nil {
		return nil, false
	}
	c, _, ok := ctx.Chebyshev(w)
	if !ok {
		return nil, false
	}
	return c, true
}

// Pieces materializes the relevance region as a set of convex polytopes
// via region difference, used for reporting and tests.
func (r *Region) Pieces(ctx *geometry.Context) []*geometry.Polytope {
	return ctx.RegionDiff(r.space, r.cutouts)
}

func (r *Region) String() string {
	return fmt.Sprintf("RR{space=%s cutouts=%d points=%d}", r.space, len(r.cutouts), len(r.points))
}
