package store

import (
	"bytes"
	"strings"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/workload"
)

func optimizeSample(t *testing.T) (*core.Result, []string, *geometry.Polytope) {
	t.Helper()
	schema, err := workload.Generate(workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, model.MetricNames(), model.Space()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var buf bytes.Buffer
	if err := Save(&buf, metrics, space, res.Plans); err != nil {
		t.Fatalf("save: %v", err)
	}
	ps, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ps.Plans) != len(res.Plans) {
		t.Fatalf("loaded %d plans, want %d", len(ps.Plans), len(res.Plans))
	}
	if len(ps.Metrics) != 2 {
		t.Fatalf("metrics = %v", ps.Metrics)
	}
	// Plan trees and cost functions survive the round trip.
	for i, lp := range ps.Plans {
		orig := res.Plans[i]
		if lp.Plan.String() != orig.Plan.String() {
			t.Errorf("plan %d tree %q != %q", i, lp.Plan, orig.Plan)
		}
		origCost := orig.Cost.(*pwl.Multi)
		for _, xv := range []float64{0.01, 0.3, 0.7, 0.99} {
			x := geometry.Vector{xv}
			a, _ := lp.Cost.Eval(x)
			b, _ := origCost.Eval(x)
			if !a.Equal(b, 1e-9) {
				t.Errorf("plan %d cost at %v: %v != %v", i, xv, a, b)
			}
			// Relevance regions agree pointwise (strict interior).
			if lp.RR.Contains(x, -1e-6) != orig.RR.Contains(x, -1e-6) {
				t.Errorf("plan %d RR membership differs at %v", i, xv)
			}
		}
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"wrong version":  `{"version":99,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"no metrics":     `{"version":1,"metrics":[],"space":{"dim":1},"plans":[]}`,
		"zero dim space": `{"version":1,"metrics":["t"],"space":{"dim":0},"plans":[]}`,
		"bad constraint": `{"version":1,"metrics":["t"],"space":{"dim":2,"constraints":[{"w":[1],"b":0}]},"plans":[]}`,
		"scan with kids": `{"version":1,"metrics":["t"],"space":{"dim":1},"plans":[{"tree":{"op":"x","table":0,"left":{"op":"s","table":1}},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]},"cutouts":[]}]}`,
		"metric count":   `{"version":1,"metrics":["t","f"],"space":{"dim":1},"plans":[{"tree":{"op":"s","table":0},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]},"cutouts":[]}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveRejectsNonPWLCosts(t *testing.T) {
	space := geometry.Interval(0, 1)
	plans := []*core.PlanInfo{{Plan: nil, Cost: "not a pwl cost"}}
	var buf bytes.Buffer
	// Plan field is unused before the cost type check fails on a scan
	// node — construct a real node to be safe.
	schema := core.StaticSchema(1, []float64{0}, []float64{1})
	_ = schema
	model := &core.StaticModel{ParamSpace: space, Metrics: []string{"t"}, Plans: []core.Alternative{
		{Op: "s", Cost: pwl.NewMulti(pwl.Constant(space, 1))},
	}}
	res, err := core.Optimize(core.StaticSchema(1, []float64{0}, []float64{1}), model, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans[0].Plan = res.Plans[0].Plan
	if err := Save(&buf, []string{"t"}, space, plans); err == nil {
		t.Error("non-PWL cost accepted")
	}
}

// TestRoundTripStability: saving a loaded plan set reproduces an
// equivalent document.
func TestRoundTripStability(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var first bytes.Buffer
	if err := Save(&first, metrics, space, res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Convert loaded plans back to PlanInfo for a second save.
	infos := make([]*core.PlanInfo, len(ps.Plans))
	for i, lp := range ps.Plans {
		infos[i] = &core.PlanInfo{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	var second bytes.Buffer
	if err := Save(&second, ps.Metrics, ps.Space, infos); err != nil {
		t.Fatal(err)
	}
	ps2, err := Load(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps2.Plans) != len(ps.Plans) {
		t.Fatalf("second load has %d plans, want %d", len(ps2.Plans), len(ps.Plans))
	}
	for i := range ps2.Plans {
		if ps2.Plans[i].Plan.String() != ps.Plans[i].Plan.String() {
			t.Errorf("plan %d differs after double round trip", i)
		}
	}
}
