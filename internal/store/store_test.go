package store

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/region"
	"mpq/internal/workload"
)

func optimizeSample(t *testing.T) (*core.Result, []string, *geometry.Polytope) {
	t.Helper()
	schema, err := workload.Generate(workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, model.MetricNames(), model.Space()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var buf bytes.Buffer
	if err := Save(&buf, metrics, space, res.Plans); err != nil {
		t.Fatalf("save: %v", err)
	}
	ps, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ps.Plans) != len(res.Plans) {
		t.Fatalf("loaded %d plans, want %d", len(ps.Plans), len(res.Plans))
	}
	if len(ps.Metrics) != 2 {
		t.Fatalf("metrics = %v", ps.Metrics)
	}
	// Plan trees and cost functions survive the round trip.
	for i, lp := range ps.Plans {
		orig := res.Plans[i]
		if lp.Plan.String() != orig.Plan.String() {
			t.Errorf("plan %d tree %q != %q", i, lp.Plan, orig.Plan)
		}
		origCost := orig.Cost.(*pwl.Multi)
		for _, xv := range []float64{0.01, 0.3, 0.7, 0.99} {
			x := geometry.Vector{xv}
			a, _ := lp.Cost.Eval(x)
			b, _ := origCost.Eval(x)
			if !a.Equal(b, 1e-9) {
				t.Errorf("plan %d cost at %v: %v != %v", i, xv, a, b)
			}
			// Relevance regions agree pointwise (strict interior).
			if lp.RR.Contains(x, -1e-6) != orig.RR.Contains(x, -1e-6) {
				t.Errorf("plan %d RR membership differs at %v", i, xv)
			}
		}
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"wrong version":  `{"version":99,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"no metrics":     `{"version":1,"metrics":[],"space":{"dim":1},"plans":[]}`,
		"zero dim space": `{"version":1,"metrics":["t"],"space":{"dim":0},"plans":[]}`,
		"bad constraint": `{"version":1,"metrics":["t"],"space":{"dim":2,"constraints":[{"w":[1],"b":0}]},"plans":[]}`,
		"scan with kids": `{"version":1,"metrics":["t"],"space":{"dim":1},"plans":[{"tree":{"op":"x","table":0,"left":{"op":"s","table":1}},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]},"cutouts":[]}]}`,
		"metric count":   `{"version":1,"metrics":["t","f"],"space":{"dim":1},"plans":[{"tree":{"op":"s","table":0},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]},"cutouts":[]}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadRejectsDimensionMismatches: documents whose piece or cutout
// polytopes are internally consistent but of the wrong dimension must
// be rejected with a descriptive error instead of panicking deep inside
// the geometry layer at selection time.
func TestLoadRejectsDimensionMismatches(t *testing.T) {
	// A valid 1-parameter document skeleton: one scan plan, one linear
	// cost piece, one cutout. %s slots: piece region, cutout list,
	// extra plan fields.
	const tmpl = `{"version":2,"metrics":["t"],"space":{"dim":1,"constraints":[{"w":[1],"b":1},{"w":[-1],"b":0}]},` +
		`"region_options":{"strategy":"bemporad","relevance_points":16,"eliminate_redundant_cutouts":true},` +
		`"plans":[{"tree":{"op":"s","table":0},"cost":{"components":[{"pieces":[{"region":%s,"w":[1],"b":0}]}]}%s}]}`
	good2D := `{"dim":2,"constraints":[{"w":[1,0],"b":1},{"w":[-1,0],"b":0}]}`
	good1D := `{"dim":1,"constraints":[{"w":[1],"b":1}]}`
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{
			name:    "piece region dim",
			doc:     fmt.Sprintf(tmpl, good2D, ""),
			wantErr: "piece region dimension 2, want space dimension 1",
		},
		{
			name:    "cutout dim",
			doc:     fmt.Sprintf(tmpl, good1D, `,"cutouts":[`+good2D+`]`),
			wantErr: "cutout: dimension 2, want space dimension 1",
		},
		{
			name:    "always-relevant with cutouts",
			doc:     fmt.Sprintf(tmpl, good1D, `,"always_relevant":true,"cutouts":[`+good1D+`]`),
			wantErr: "always-relevant",
		},
		{
			name:    "bad strategy name",
			doc:     strings.Replace(fmt.Sprintf(tmpl, good1D, ""), "bemporad", "quantum", 1),
			wantErr: "unknown emptiness strategy",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The skeleton itself must be valid.
			if tc.name == "piece region dim" {
				if _, err := Load(strings.NewReader(fmt.Sprintf(tmpl, good1D, ""))); err != nil {
					t.Fatalf("valid skeleton rejected: %v", err)
				}
			}
			_, err := Load(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("bad document accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestLoadUsesSavedRegionOptions: regression test — Load must rebuild
// relevance regions with the options persisted at save time (the
// Section 6.2 refinements), not with the zero value.
func TestLoadUsesSavedRegionOptions(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var buf bytes.Buffer
	if err := Save(&buf, metrics, space, res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Plans[0].RR.Options()
	if want != region.DefaultOptions() {
		t.Fatalf("sample was not optimized with default region options: %+v", want)
	}
	for i, lp := range ps.Plans {
		if lp.RR == nil {
			continue
		}
		if got := lp.RR.Options(); got != want {
			t.Errorf("plan %d loaded with region options %+v, want the saved %+v", i, got, want)
		}
	}
}

// TestLoadRoundTripsNonDefaultRegionOptions: a plan set optimized with
// non-default refinements must come back with exactly those options.
func TestLoadRoundTripsNonDefaultRegionOptions(t *testing.T) {
	schema, err := workload.Generate(workload.Config{Tables: 3, Params: 1, Shape: workload.Chain, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Region = region.Options{Strategy: region.StrategyCoverDiff, RelevancePoints: 3}
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, lp := range ps.Plans {
		if lp.RR == nil {
			continue
		}
		if got := lp.RR.Options(); got != opts.Region {
			t.Errorf("plan %d loaded with region options %+v, want %+v", i, got, opts.Region)
		}
	}
}

// TestRoundTripPreservesAlwaysRelevant: regression test — a plan saved
// with a nil relevance region (always relevant) must load with a nil
// region, keeping selection's no-containment fast path, while a plan
// with a real region must load with one.
func TestRoundTripPreservesAlwaysRelevant(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	if len(res.Plans) < 2 {
		t.Skip("need at least two plans")
	}
	infos := make([]*core.PlanInfo, len(res.Plans))
	for i, info := range res.Plans {
		copied := *info
		if i == 0 {
			copied.RR = nil // always relevant
		}
		infos[i] = &copied
	}
	var buf bytes.Buffer
	if err := Save(&buf, metrics, space, infos); err != nil {
		t.Fatal(err)
	}
	ps, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Plans[0].RR != nil {
		t.Error("nil relevance region became non-nil after round trip")
	}
	for i := 1; i < len(ps.Plans); i++ {
		if ps.Plans[i].RR == nil {
			t.Errorf("plan %d lost its relevance region", i)
		}
	}
}

// TestLoadVersion1Document: version 1 documents (no options stanza, no
// always-relevant marker) still load: default refinements, absent
// cutouts meaning always relevant.
func TestLoadVersion1Document(t *testing.T) {
	const doc = `{"version":1,"metrics":["t"],"space":{"dim":1,"constraints":[{"w":[1],"b":1},{"w":[-1],"b":0}]},` +
		`"plans":[` +
		`{"tree":{"op":"s","table":0},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]}},` +
		`{"tree":{"op":"s","table":1},"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[2],"b":0}]}]},` +
		`"cutouts":[{"dim":1,"constraints":[{"w":[1],"b":0.5}]}]}` +
		`]}`
	ps, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Plans[0].RR != nil {
		t.Error("v1 plan without cutouts should load always-relevant")
	}
	if ps.Plans[1].RR == nil {
		t.Fatal("v1 plan with cutouts lost its region")
	}
	if got := ps.Plans[1].RR.Options(); got != region.DefaultOptions() {
		t.Errorf("v1 region options = %+v, want defaults", got)
	}
}

// TestLoadVersion2Document: version 2 documents (no index stanza)
// still load, with a nil PlanSet.Index.
func TestLoadVersion2Document(t *testing.T) {
	const doc = `{"version":2,"metrics":["t"],"space":{"dim":1,"constraints":[{"w":[1],"b":1},{"w":[-1],"b":0}]},` +
		`"region_options":{"strategy":"bemporad","relevance_points":16,"eliminate_redundant_cutouts":true},` +
		`"plans":[{"tree":{"op":"s","table":0},"always_relevant":true,` +
		`"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]}}]}`
	ps, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Index != nil {
		t.Error("v2 document loaded with an index")
	}
}

// TestLoadRejectsBadIndexStanza: malformed index stanzas (out-of-range
// candidate ids, non-preorder children, wrong box dimension) are
// rejected with descriptive errors instead of misrouting picks later.
func TestLoadRejectsBadIndexStanza(t *testing.T) {
	const tmpl = `{"version":3,"metrics":["t"],"space":{"dim":1,"constraints":[{"w":[1],"b":1},{"w":[-1],"b":0}]},` +
		`"region_options":{"strategy":"bemporad","relevance_points":16,"eliminate_redundant_cutouts":true},` +
		`"plans":[{"tree":{"op":"s","table":0},"always_relevant":true,` +
		`"cost":{"components":[{"pieces":[{"region":{"dim":1},"w":[1],"b":0}]}]}}],` +
		`"index":%s}`
	good := `{"leaf_target":4,"max_depth":16,"max_leaves":4096,"lo":[0],"hi":[1],"nodes":[{"cands":[0]}]}`
	if _, err := Load(strings.NewReader(fmt.Sprintf(tmpl, good))); err != nil {
		t.Fatalf("valid indexed skeleton rejected: %v", err)
	}
	cases := map[string]string{
		"candidate id out of range": `{"lo":[0],"hi":[1],"nodes":[{"cands":[5]}]}`,
		"box dimension":             `{"lo":[0,0],"hi":[1,1],"nodes":[{"cands":[0]}]}`,
		"inverted box":              `{"lo":[1],"hi":[0],"nodes":[{"cands":[0]}]}`,
		"no nodes":                  `{"lo":[0],"hi":[1],"nodes":[]}`,
		"non-preorder children":     `{"lo":[0],"hi":[1],"nodes":[{"split":0.5,"left":2,"right":1},{"cands":[0]},{"cands":[0]}]}`,
		"split dim out of range":    `{"lo":[0],"hi":[1],"nodes":[{"dim":3,"split":0.5,"left":1,"right":2},{"cands":[0]},{"cands":[0]}]}`,
		"unsorted candidate ids":    `{"lo":[0],"hi":[1],"nodes":[{"cands":[0,0]}]}`,
		"unreachable node":          `{"lo":[0],"hi":[1],"nodes":[{"cands":[0]},{"cands":[0]}]}`,
	}
	for name, ixDoc := range cases {
		if _, err := Load(strings.NewReader(fmt.Sprintf(tmpl, ixDoc))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveRejectsNonPWLCosts(t *testing.T) {
	space := geometry.Interval(0, 1)
	plans := []*core.PlanInfo{{Plan: nil, Cost: "not a pwl cost"}}
	var buf bytes.Buffer
	// Plan field is unused before the cost type check fails on a scan
	// node — construct a real node to be safe.
	schema := core.StaticSchema(1, []float64{0}, []float64{1})
	_ = schema
	model := &core.StaticModel{ParamSpace: space, Metrics: []string{"t"}, Plans: []core.Alternative{
		{Op: "s", Cost: pwl.NewMulti(pwl.Constant(space, 1))},
	}}
	res, err := core.Optimize(core.StaticSchema(1, []float64{0}, []float64{1}), model, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans[0].Plan = res.Plans[0].Plan
	if err := Save(&buf, []string{"t"}, space, plans); err == nil {
		t.Error("non-PWL cost accepted")
	}
}

// TestRoundTripStability: saving a loaded plan set reproduces an
// equivalent document.
func TestRoundTripStability(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var first bytes.Buffer
	if err := Save(&first, metrics, space, res.Plans); err != nil {
		t.Fatal(err)
	}
	ps, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Convert loaded plans back to PlanInfo for a second save.
	infos := make([]*core.PlanInfo, len(ps.Plans))
	for i, lp := range ps.Plans {
		infos[i] = &core.PlanInfo{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	var second bytes.Buffer
	if err := Save(&second, ps.Metrics, ps.Space, infos); err != nil {
		t.Fatal(err)
	}
	ps2, err := Load(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps2.Plans) != len(ps.Plans) {
		t.Fatalf("second load has %d plans, want %d", len(ps2.Plans), len(ps.Plans))
	}
	for i := range ps2.Plans {
		if ps2.Plans[i].Plan.String() != ps.Plans[i].Plan.String() {
			t.Errorf("plan %d differs after double round trip", i)
		}
	}
}
