// Package store serializes Pareto plan sets so that the MPQ workflow of
// the paper's Figure 2 can span processes: plans are computed once per
// query template at preprocessing time, persisted, and loaded at run
// time where a plan is selected for concrete parameter values — without
// re-running the optimizer (the classical use case of parametric query
// optimization for embedded SQL).
//
// The format is versioned JSON: operator trees, piecewise-linear cost
// functions (weights, bases, and region constraint systems per piece)
// and the relevance-region cutouts are stored explicitly.
package store

import (
	"encoding/json"
	"fmt"
	"io"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
)

// FormatVersion identifies the serialization layout.
const FormatVersion = 1

// Document is the top-level serialized form of an optimization result.
type Document struct {
	Version int        `json:"version"`
	Metrics []string   `json:"metrics"`
	Space   polytopeJS `json:"space"`
	Plans   []planEnt  `json:"plans"`
}

type planEnt struct {
	Tree    nodeJS       `json:"tree"`
	Cost    multiJS      `json:"cost"`
	Cutouts []polytopeJS `json:"cutouts"`
}

type nodeJS struct {
	Op    string  `json:"op"`
	Table *int    `json:"table,omitempty"`
	Left  *nodeJS `json:"left,omitempty"`
	Right *nodeJS `json:"right,omitempty"`
}

type multiJS struct {
	Components []functionJS `json:"components"`
}

type functionJS struct {
	Pieces []pieceJS `json:"pieces"`
}

type pieceJS struct {
	Region polytopeJS `json:"region"`
	W      []float64  `json:"w"`
	B      float64    `json:"b"`
}

type polytopeJS struct {
	Dim         int           `json:"dim"`
	Constraints []halfspaceJS `json:"constraints"`
}

type halfspaceJS struct {
	W []float64 `json:"w"`
	B float64   `json:"b"`
}

// Save writes the plan set of a result (plans, PWL costs, relevance
// regions) to w. Only results produced with the PWL algebra can be
// serialized.
func Save(w io.Writer, metrics []string, space *geometry.Polytope, plans []*core.PlanInfo) error {
	doc := Document{
		Version: FormatVersion,
		Metrics: metrics,
		Space:   polytopeToJS(space),
	}
	for _, info := range plans {
		cost, ok := info.Cost.(*pwl.Multi)
		if !ok {
			return fmt.Errorf("store: cost of plan %v is %T, want *pwl.Multi", info.Plan, info.Cost)
		}
		ent := planEnt{
			Tree: nodeToJS(info.Plan),
			Cost: multiToJS(cost),
		}
		if info.RR != nil {
			for _, c := range info.RR.Cutouts() {
				ent.Cutouts = append(ent.Cutouts, polytopeToJS(c))
			}
		}
		doc.Plans = append(doc.Plans, ent)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadedPlan is a deserialized plan with its cost function and
// relevance region.
type LoadedPlan struct {
	Plan *plan.Node
	Cost *pwl.Multi
	RR   *region.Region
}

// PlanSet is a deserialized plan set ready for run-time selection.
type PlanSet struct {
	Metrics []string
	Space   *geometry.Polytope
	Plans   []LoadedPlan
}

// Load reads a serialized plan set.
func Load(r io.Reader) (*PlanSet, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d", doc.Version)
	}
	if len(doc.Metrics) == 0 {
		return nil, fmt.Errorf("store: document without metrics")
	}
	space, err := polytopeFromJS(doc.Space)
	if err != nil {
		return nil, err
	}
	ps := &PlanSet{Metrics: doc.Metrics, Space: space}
	ctx := geometry.NewContext()
	for i, ent := range doc.Plans {
		node, err := nodeFromJS(&ent.Tree)
		if err != nil {
			return nil, fmt.Errorf("store: plan %d: %w", i, err)
		}
		cost, err := multiFromJS(ent.Cost, len(doc.Metrics), space.Dim())
		if err != nil {
			return nil, fmt.Errorf("store: plan %d: %w", i, err)
		}
		rr := region.New(ctx, space, region.Options{})
		for _, cj := range ent.Cutouts {
			c, err := polytopeFromJS(cj)
			if err != nil {
				return nil, fmt.Errorf("store: plan %d cutout: %w", i, err)
			}
			rr.Subtract(ctx, c)
		}
		ps.Plans = append(ps.Plans, LoadedPlan{Plan: node, Cost: cost, RR: rr})
	}
	return ps, nil
}

func nodeToJS(n *plan.Node) nodeJS {
	if n.IsScan() {
		tbl := int(n.Table)
		return nodeJS{Op: n.Op, Table: &tbl}
	}
	l := nodeToJS(n.Left)
	r := nodeToJS(n.Right)
	return nodeJS{Op: n.Op, Left: &l, Right: &r}
}

func nodeFromJS(j *nodeJS) (*plan.Node, error) {
	if j.Table != nil {
		if j.Left != nil || j.Right != nil {
			return nil, fmt.Errorf("scan node with children")
		}
		return plan.Scan(catalog.TableID(*j.Table), j.Op), nil
	}
	if j.Left == nil || j.Right == nil {
		return nil, fmt.Errorf("join node missing children")
	}
	l, err := nodeFromJS(j.Left)
	if err != nil {
		return nil, err
	}
	r, err := nodeFromJS(j.Right)
	if err != nil {
		return nil, err
	}
	if !l.Set.Intersect(r.Set).IsEmpty() {
		return nil, fmt.Errorf("join children overlap")
	}
	return plan.Join(j.Op, l, r), nil
}

func multiToJS(m *pwl.Multi) multiJS {
	out := multiJS{}
	for i := 0; i < m.NumMetrics(); i++ {
		f := m.Component(i)
		fj := functionJS{}
		for _, p := range f.Pieces() {
			fj.Pieces = append(fj.Pieces, pieceJS{
				Region: polytopeToJS(p.Region),
				W:      append([]float64(nil), p.W...),
				B:      p.B,
			})
		}
		out.Components = append(out.Components, fj)
	}
	return out
}

func multiFromJS(j multiJS, metrics, dim int) (*pwl.Multi, error) {
	if len(j.Components) != metrics {
		return nil, fmt.Errorf("cost with %d components, want %d", len(j.Components), metrics)
	}
	comps := make([]*pwl.Function, metrics)
	for i, fj := range j.Components {
		if len(fj.Pieces) == 0 {
			return nil, fmt.Errorf("component %d has no pieces", i)
		}
		pieces := make([]pwl.Piece, 0, len(fj.Pieces))
		for _, pj := range fj.Pieces {
			if len(pj.W) != dim {
				return nil, fmt.Errorf("piece weight dimension %d, want %d", len(pj.W), dim)
			}
			reg, err := polytopeFromJS(pj.Region)
			if err != nil {
				return nil, err
			}
			pieces = append(pieces, pwl.Piece{
				Region: reg,
				W:      geometry.Vector(append([]float64(nil), pj.W...)),
				B:      pj.B,
			})
		}
		comps[i] = pwl.NewFunction(pieces...)
	}
	return pwl.NewMulti(comps...), nil
}

func polytopeToJS(p *geometry.Polytope) polytopeJS {
	out := polytopeJS{Dim: p.Dim()}
	for _, h := range p.Constraints() {
		out.Constraints = append(out.Constraints, halfspaceJS{
			W: append([]float64(nil), h.W...),
			B: h.B,
		})
	}
	return out
}

func polytopeFromJS(j polytopeJS) (*geometry.Polytope, error) {
	if j.Dim <= 0 {
		return nil, fmt.Errorf("polytope with dimension %d", j.Dim)
	}
	hs := make([]geometry.Halfspace, 0, len(j.Constraints))
	for _, hj := range j.Constraints {
		if len(hj.W) != j.Dim {
			return nil, fmt.Errorf("constraint dimension %d, want %d", len(hj.W), j.Dim)
		}
		hs = append(hs, geometry.Halfspace{
			W: geometry.Vector(append([]float64(nil), hj.W...)),
			B: hj.B,
		})
	}
	return geometry.NewPolytope(j.Dim, hs...), nil
}
