// Package store serializes Pareto plan sets so that the MPQ workflow of
// the paper's Figure 2 can span processes: plans are computed once per
// query template at preprocessing time, persisted, and loaded at run
// time where a plan is selected for concrete parameter values — without
// re-running the optimizer (the classical use case of parametric query
// optimization for embedded SQL).
//
// The format is versioned JSON: operator trees, piecewise-linear cost
// functions (weights, bases, and region constraint systems per piece)
// and the relevance-region cutouts are stored explicitly.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/plan"
	"mpq/internal/pwl"
	"mpq/internal/region"
)

// FormatVersion identifies the serialization layout. Version 4 added
// the epsilon stanza recording the approximation factor of an
// ε-approximate plan set (SaveIndexedEpsilon); version 3 added the
// optional point-location pick-index stanza (SaveIndexed); version 2
// added the region-options stanza and the explicit always-relevant
// marker. Older documents are still readable: version 2 documents
// simply carry no index (callers rebuild one on load when they want
// it), and version 1 regions load with the paper's default refinements
// and treat plans without cutouts as always relevant, the only
// semantics version 1 could express.
//
// Exact plan sets (epsilon 0) are still written as version 3 — byte
// for byte the historical output — so the version number itself
// certifies the tier: a version 4 document is an ε-approximate set and
// must say so, an exact set has exactly one canonical serialized form.
const FormatVersion = 4

// formatVersionExact is the version written for exact (epsilon 0)
// plan sets: the canonical pre-epsilon layout.
const formatVersionExact = 3

// minFormatVersion is the oldest version Load still accepts.
const minFormatVersion = 1

// Document is the top-level serialized form of an optimization result.
type Document struct {
	Version int `json:"version"`
	// Epsilon is the multiplicative approximation factor the plan set
	// was computed with (core.Options.Epsilon). Present exactly when
	// nonzero, which is exactly when Version >= 4: loading an
	// ε-approximate set as if it were exact (or vice versa) is a format
	// error, not a silent wrong answer.
	Epsilon float64    `json:"epsilon,omitempty"`
	Metrics []string   `json:"metrics"`
	Space   polytopeJS `json:"space"`
	// RegionOptions records the Section 6.2 refinement configuration the
	// relevance regions were built with, so Load rebuilds them with the
	// same options instead of whatever the current defaults happen to
	// be. Absent in version 1 documents (which load with the defaults).
	RegionOptions *regionOptionsJS `json:"region_options,omitempty"`
	Plans         []planEnt        `json:"plans"`
	// Index is the optional point-location pick index over the plan
	// set's parameter space (version 3). Absent when the set was saved
	// without one; loaders that want an index rebuild it from the plans.
	Index *index.Snapshot `json:"index,omitempty"`
}

type planEnt struct {
	Tree nodeJS  `json:"tree"`
	Cost multiJS `json:"cost"`
	// AlwaysRelevant marks a plan whose relevance region was nil at save
	// time: selection must keep considering it at every parameter point
	// without any containment test. Distinct from a region with zero
	// cutouts, which still restricts the plan to the parameter space.
	AlwaysRelevant bool         `json:"always_relevant,omitempty"`
	Cutouts        []polytopeJS `json:"cutouts,omitempty"`
}

type regionOptionsJS struct {
	Strategy                  string `json:"strategy"`
	RelevancePoints           int    `json:"relevance_points"`
	EliminateRedundantCutouts bool   `json:"eliminate_redundant_cutouts"`
}

func regionOptionsToJS(o region.Options) *regionOptionsJS {
	return &regionOptionsJS{
		Strategy:                  o.Strategy.String(),
		RelevancePoints:           o.RelevancePoints,
		EliminateRedundantCutouts: o.EliminateRedundantCutouts,
	}
}

func regionOptionsFromJS(j *regionOptionsJS) (region.Options, error) {
	if j == nil {
		// Version 1 documents carry no stanza; they were written when
		// save and load both meant the paper's default refinements.
		return region.DefaultOptions(), nil
	}
	strategy, err := region.ParseStrategy(j.Strategy)
	if err != nil {
		return region.Options{}, fmt.Errorf("store: region options: %w", err)
	}
	return region.Options{
		Strategy:                  strategy,
		RelevancePoints:           j.RelevancePoints,
		EliminateRedundantCutouts: j.EliminateRedundantCutouts,
	}, nil
}

type nodeJS struct {
	Op    string  `json:"op"`
	Table *int    `json:"table,omitempty"`
	Left  *nodeJS `json:"left,omitempty"`
	Right *nodeJS `json:"right,omitempty"`
}

type multiJS struct {
	Components []functionJS `json:"components"`
}

type functionJS struct {
	Pieces []pieceJS `json:"pieces"`
}

type pieceJS struct {
	Region polytopeJS `json:"region"`
	W      []float64  `json:"w"`
	B      float64    `json:"b"`
}

type polytopeJS struct {
	Dim         int           `json:"dim"`
	Constraints []halfspaceJS `json:"constraints"`
}

type halfspaceJS struct {
	W []float64 `json:"w"`
	B float64   `json:"b"`
}

// Save writes the plan set of a result (plans, PWL costs, relevance
// regions) to w. Only results produced with the PWL algebra can be
// serialized. The region options of the first plan with a relevance
// region are persisted alongside the regions (all regions of one
// optimizer run share their options), so Load rebuilds regions exactly
// as they were configured at save time.
func Save(w io.Writer, metrics []string, space *geometry.Polytope, plans []*core.PlanInfo) error {
	return SaveIndexed(w, metrics, space, plans, nil)
}

// SaveIndexed is Save with an optional point-location pick index built
// over the same plan order (nil saves no index stanza). The index's
// leaf candidate ids refer to positions in plans; Load returns the
// reconstructed index alongside the plan set.
func SaveIndexed(w io.Writer, metrics []string, space *geometry.Polytope, plans []*core.PlanInfo, ix *index.Index) error {
	return SaveIndexedEpsilon(w, metrics, space, plans, ix, 0)
}

// SaveIndexedEpsilon is SaveIndexed for ε-approximate plan sets: the
// document records the approximation factor the optimizer ran with, so
// loaders can tell tiers apart. Epsilon 0 writes the canonical exact
// form (version 3, byte-identical to SaveIndexed); epsilon > 0 writes
// a version 4 document.
func SaveIndexedEpsilon(w io.Writer, metrics []string, space *geometry.Polytope, plans []*core.PlanInfo, ix *index.Index, epsilon float64) error {
	if epsilon < 0 || math.IsNaN(epsilon) {
		return fmt.Errorf("store: invalid epsilon %v", epsilon)
	}
	version := FormatVersion
	if epsilon == 0 {
		version = formatVersionExact
	}
	doc := Document{
		Version: version,
		Epsilon: epsilon,
		Metrics: metrics,
		Space:   polytopeToJS(space),
	}
	for _, info := range plans {
		cost, ok := info.Cost.(*pwl.Multi)
		if !ok {
			return fmt.Errorf("store: cost of plan %v is %T, want *pwl.Multi", info.Plan, info.Cost)
		}
		ent := planEnt{
			Tree: nodeToJS(info.Plan),
			Cost: multiToJS(cost),
		}
		if info.RR == nil {
			ent.AlwaysRelevant = true
		} else {
			if doc.RegionOptions == nil {
				doc.RegionOptions = regionOptionsToJS(info.RR.Options())
			}
			for _, c := range info.RR.Cutouts() {
				ent.Cutouts = append(ent.Cutouts, polytopeToJS(c))
			}
		}
		doc.Plans = append(doc.Plans, ent)
	}
	if doc.RegionOptions == nil {
		// No plan carried a region; record the defaults so a future
		// default change cannot silently alter reload semantics.
		doc.RegionOptions = regionOptionsToJS(region.DefaultOptions())
	}
	if ix != nil {
		if ix.Dim() != space.Dim() {
			return fmt.Errorf("store: index dimension %d, want space dimension %d", ix.Dim(), space.Dim())
		}
		doc.Index = ix.Snapshot()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadedPlan is a deserialized plan with its cost function and
// relevance region.
type LoadedPlan struct {
	Plan *plan.Node
	Cost *pwl.Multi
	RR   *region.Region
}

// PlanSet is a deserialized plan set ready for run-time selection.
type PlanSet struct {
	Metrics []string
	Space   *geometry.Polytope
	// Epsilon is the approximation factor the set was computed with: 0
	// for an exact Pareto set, ε > 0 for an ε-approximate frontier
	// whose picks are within a multiplicative (1+ε) of optimal on every
	// metric. Callers serving multiple precision tiers key their caches
	// on it.
	Epsilon float64
	Plans   []LoadedPlan
	// Index is the point-location pick index persisted with the set,
	// or nil when the document carried none (pre-v3 documents, or sets
	// saved without one). Its leaf candidate ids index Plans.
	Index *index.Index
}

// Load reads a serialized plan set.
func Load(r io.Reader) (*PlanSet, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	if doc.Version < minFormatVersion || doc.Version > FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d", doc.Version)
	}
	// The version number and the epsilon stanza certify each other: a
	// pre-v4 document cannot carry an epsilon, and a v4 document must —
	// the canonical form of an exact set is version 3. A mismatch means
	// the document was tampered with or corrupted, and trusting either
	// half could serve approximate plans as exact.
	if doc.Epsilon < 0 || math.IsNaN(doc.Epsilon) {
		return nil, fmt.Errorf("store: invalid epsilon %v", doc.Epsilon)
	}
	if doc.Version < FormatVersion && doc.Epsilon != 0 {
		return nil, fmt.Errorf("store: version %d document carries epsilon %v (epsilon requires version %d)", doc.Version, doc.Epsilon, FormatVersion)
	}
	if doc.Version == FormatVersion && doc.Epsilon == 0 {
		return nil, fmt.Errorf("store: version %d document without epsilon (canonical exact form is version %d)", FormatVersion, formatVersionExact)
	}
	if len(doc.Metrics) == 0 {
		return nil, fmt.Errorf("store: document without metrics")
	}
	space, err := polytopeFromJS(doc.Space)
	if err != nil {
		return nil, err
	}
	regionOpts, err := regionOptionsFromJS(doc.RegionOptions)
	if err != nil {
		return nil, err
	}
	ps := &PlanSet{Metrics: doc.Metrics, Space: space, Epsilon: doc.Epsilon}
	ctx := geometry.NewContext()
	for i, ent := range doc.Plans {
		node, err := nodeFromJS(&ent.Tree)
		if err != nil {
			return nil, fmt.Errorf("store: plan %d: %w", i, err)
		}
		cost, err := multiFromJS(ent.Cost, len(doc.Metrics), space.Dim())
		if err != nil {
			return nil, fmt.Errorf("store: plan %d: %w", i, err)
		}
		lp := LoadedPlan{Plan: node, Cost: cost}
		// A nil relevance region ("always relevant") must survive the
		// round trip: selection's documented fast path skips all
		// containment work for it. Version 1 documents had no explicit
		// marker; there an absent cutout list is the only way a nil
		// region could have been written.
		always := ent.AlwaysRelevant || (doc.Version < 2 && len(ent.Cutouts) == 0)
		if always {
			if len(ent.Cutouts) > 0 {
				return nil, fmt.Errorf("store: plan %d is marked always-relevant but has %d cutouts", i, len(ent.Cutouts))
			}
		} else {
			rr := region.New(ctx, space, regionOpts)
			for _, cj := range ent.Cutouts {
				if cj.Dim != space.Dim() {
					return nil, fmt.Errorf("store: plan %d cutout: dimension %d, want space dimension %d", i, cj.Dim, space.Dim())
				}
				c, err := polytopeFromJS(cj)
				if err != nil {
					return nil, fmt.Errorf("store: plan %d cutout: %w", i, err)
				}
				rr.Subtract(ctx, c)
			}
			lp.RR = rr
		}
		ps.Plans = append(ps.Plans, lp)
	}
	if doc.Index != nil {
		ix, err := index.FromSnapshot(doc.Index, len(ps.Plans), space.Dim())
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		ps.Index = ix
	}
	return ps, nil
}

func nodeToJS(n *plan.Node) nodeJS {
	if n.IsScan() {
		tbl := int(n.Table)
		return nodeJS{Op: n.Op, Table: &tbl}
	}
	l := nodeToJS(n.Left)
	r := nodeToJS(n.Right)
	return nodeJS{Op: n.Op, Left: &l, Right: &r}
}

func nodeFromJS(j *nodeJS) (*plan.Node, error) {
	if j.Table != nil {
		if j.Left != nil || j.Right != nil {
			return nil, fmt.Errorf("scan node with children")
		}
		return plan.Scan(catalog.TableID(*j.Table), j.Op), nil
	}
	if j.Left == nil || j.Right == nil {
		return nil, fmt.Errorf("join node missing children")
	}
	l, err := nodeFromJS(j.Left)
	if err != nil {
		return nil, err
	}
	r, err := nodeFromJS(j.Right)
	if err != nil {
		return nil, err
	}
	if !l.Set.Intersect(r.Set).IsEmpty() {
		return nil, fmt.Errorf("join children overlap")
	}
	return plan.Join(j.Op, l, r), nil
}

func multiToJS(m *pwl.Multi) multiJS {
	out := multiJS{}
	for i := 0; i < m.NumMetrics(); i++ {
		f := m.Component(i)
		fj := functionJS{}
		for _, p := range f.Pieces() {
			fj.Pieces = append(fj.Pieces, pieceJS{
				Region: polytopeToJS(p.Region),
				W:      append([]float64(nil), p.W...),
				B:      p.B,
			})
		}
		out.Components = append(out.Components, fj)
	}
	return out
}

func multiFromJS(j multiJS, metrics, dim int) (*pwl.Multi, error) {
	if len(j.Components) != metrics {
		return nil, fmt.Errorf("cost with %d components, want %d", len(j.Components), metrics)
	}
	comps := make([]*pwl.Function, metrics)
	for i, fj := range j.Components {
		if len(fj.Pieces) == 0 {
			return nil, fmt.Errorf("component %d has no pieces", i)
		}
		pieces := make([]pwl.Piece, 0, len(fj.Pieces))
		for _, pj := range fj.Pieces {
			if len(pj.W) != dim {
				return nil, fmt.Errorf("piece weight dimension %d, want %d", len(pj.W), dim)
			}
			if pj.Region.Dim != dim {
				// An internally consistent polytope of the wrong
				// dimension would pass construction and panic deep in
				// the geometry layer at selection time; reject it here.
				return nil, fmt.Errorf("piece region dimension %d, want space dimension %d", pj.Region.Dim, dim)
			}
			reg, err := polytopeFromJS(pj.Region)
			if err != nil {
				return nil, err
			}
			pieces = append(pieces, pwl.Piece{
				Region: reg,
				W:      geometry.Vector(append([]float64(nil), pj.W...)),
				B:      pj.B,
			})
		}
		comps[i] = pwl.NewFunction(pieces...)
	}
	return pwl.NewMulti(comps...), nil
}

func polytopeToJS(p *geometry.Polytope) polytopeJS {
	out := polytopeJS{Dim: p.Dim()}
	for _, h := range p.Constraints() {
		out.Constraints = append(out.Constraints, halfspaceJS{
			W: append([]float64(nil), h.W...),
			B: h.B,
		})
	}
	return out
}

func polytopeFromJS(j polytopeJS) (*geometry.Polytope, error) {
	if j.Dim <= 0 {
		return nil, fmt.Errorf("polytope with dimension %d", j.Dim)
	}
	hs := make([]geometry.Halfspace, 0, len(j.Constraints))
	for _, hj := range j.Constraints {
		if len(hj.W) != j.Dim {
			return nil, fmt.Errorf("constraint dimension %d, want %d", len(hj.W), j.Dim)
		}
		hs = append(hs, geometry.Halfspace{
			W: geometry.Vector(append([]float64(nil), hj.W...)),
			B: hj.B,
		})
	}
	return geometry.NewPolytope(j.Dim, hs...), nil
}
