package store

import (
	"bytes"
	"strings"
	"testing"
)

// TestEpsilonRoundTrip: an ε-approximate plan set round-trips with its
// approximation factor, re-serializes byte-identically (the document is
// a pure function of the plan set), and the ε = 0 path stays
// byte-identical to the historical exact writer.
func TestEpsilonRoundTrip(t *testing.T) {
	res, metrics, space := optimizeSample(t)

	var exact, exactEps bytes.Buffer
	if err := SaveIndexed(&exact, metrics, space, res.Plans, nil); err != nil {
		t.Fatalf("save exact: %v", err)
	}
	if err := SaveIndexedEpsilon(&exactEps, metrics, space, res.Plans, nil, 0); err != nil {
		t.Fatalf("save exact via epsilon writer: %v", err)
	}
	if !bytes.Equal(exact.Bytes(), exactEps.Bytes()) {
		t.Error("epsilon=0 output differs from the historical exact form")
	}
	if strings.Contains(exact.String(), `"epsilon"`) {
		t.Error("exact document carries an epsilon stanza")
	}

	var buf bytes.Buffer
	if err := SaveIndexedEpsilon(&buf, metrics, space, res.Plans, nil, 0.05); err != nil {
		t.Fatalf("save: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	ps, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if ps.Epsilon != 0.05 {
		t.Errorf("loaded epsilon %v, want 0.05", ps.Epsilon)
	}
	if len(ps.Plans) != len(res.Plans) {
		t.Fatalf("loaded %d plans, want %d", len(ps.Plans), len(res.Plans))
	}

	// Save→Load→Save byte identity for the ε tier: re-serialize from
	// the original plans with the loaded epsilon (the loaded plan set
	// carries rebuilt regions, the document is keyed on the inputs).
	var second bytes.Buffer
	if err := SaveIndexedEpsilon(&second, metrics, space, res.Plans, nil, ps.Epsilon); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Error("epsilon document is not byte-stable across save/load/save")
	}
}

// TestSaveRejectsInvalidEpsilon: negative and NaN factors must fail at
// save time, not round-trip into documents Load would reject.
func TestSaveRejectsInvalidEpsilon(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var buf bytes.Buffer
	if err := SaveIndexedEpsilon(&buf, metrics, space, res.Plans, nil, -0.1); err == nil {
		t.Error("negative epsilon accepted")
	}
	nan := 0.0
	nan /= nan
	if err := SaveIndexedEpsilon(&buf, metrics, space, res.Plans, nil, nan); err == nil {
		t.Error("NaN epsilon accepted")
	}
}

// TestLoadRejectsEpsilonStanzaErrors: the version number and the
// epsilon stanza must certify each other. A v4 document without an
// epsilon, a pre-v4 document with one, a negative factor, or a
// malformed/truncated stanza are all format errors — never a silent
// load under the wrong tier.
func TestLoadRejectsEpsilonStanzaErrors(t *testing.T) {
	cases := map[string]string{
		"v4 without epsilon": `{"version":4,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"v4 zero epsilon":    `{"version":4,"epsilon":0,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"v3 with epsilon":    `{"version":3,"epsilon":0.05,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"v1 with epsilon":    `{"version":1,"epsilon":0.05,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"negative epsilon":   `{"version":4,"epsilon":-0.05,"metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"malformed epsilon":  `{"version":4,"epsilon":"five percent","metrics":["t"],"space":{"dim":1},"plans":[]}`,
		"truncated stanza":   `{"version":4,"epsilon":0.0`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadEpsilonDocumentTruncated: an ε document cut off at every
// prefix length must error or load with the correct epsilon — a
// truncation can never flip the tier.
func TestLoadEpsilonDocumentTruncated(t *testing.T) {
	res, metrics, space := optimizeSample(t)
	var buf bytes.Buffer
	if err := SaveIndexedEpsilon(&buf, metrics, space, res.Plans, nil, 0.25); err != nil {
		t.Fatalf("save: %v", err)
	}
	raw := buf.Bytes()
	step := len(raw)/64 + 1
	for n := 0; n < len(raw); n += step {
		ps, err := Load(bytes.NewReader(raw[:n]))
		if err != nil {
			continue
		}
		if ps.Epsilon != 0.25 {
			t.Fatalf("truncation at %d/%d loaded with epsilon %v, want 0.25", n, len(raw), ps.Epsilon)
		}
	}
}
