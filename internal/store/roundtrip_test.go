package store

import (
	"bytes"
	"fmt"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/pwl"
	"mpq/internal/selection"
	"mpq/internal/workload"
)

// TestRoundTripProperty is the store's round-trip property test over
// chain, star and clique workloads:
//
//  1. Save→Load→Save produces byte-identical documents (the format is
//     a fixed point of the round trip);
//  2. Load(Save(result)) preserves the plan count, the plan trees, the
//     cost vectors at sampled parameter points, and the nil-ness of
//     every relevance region.
func TestRoundTripProperty(t *testing.T) {
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique}
	for _, shape := range shapes {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("%v/seed=%d", shape, seed), func(t *testing.T) {
				schema, err := workload.Generate(workload.Config{
					Tables: 4, Params: 1, Shape: shape, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				ctx := geometry.NewContext()
				model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.Context = ctx
				res, err := core.Optimize(schema, model, opts)
				if err != nil {
					t.Fatal(err)
				}
				// Mix in an always-relevant plan so nil-ness is part of
				// the property, not just the optimizer's usual output.
				infos := make([]*core.PlanInfo, len(res.Plans))
				for i, info := range res.Plans {
					copied := *info
					if i == 0 {
						copied.RR = nil
					}
					infos[i] = &copied
				}
				checkRoundTrip(t, model.MetricNames(), model.Space(), infos)
			})
		}
	}
}

func checkRoundTrip(t *testing.T, metrics []string, space *geometry.Polytope, infos []*core.PlanInfo) {
	t.Helper()
	var first bytes.Buffer
	if err := Save(&first, metrics, space, infos); err != nil {
		t.Fatalf("first save: %v", err)
	}
	ps, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	// Property 2: the loaded set preserves count, trees, sampled cost
	// values and region nil-ness.
	if len(ps.Plans) != len(infos) {
		t.Fatalf("loaded %d plans, want %d", len(ps.Plans), len(infos))
	}
	samples := samplePoints(space, 5)
	for i, lp := range ps.Plans {
		orig := infos[i]
		if lp.Plan.String() != orig.Plan.String() {
			t.Errorf("plan %d tree %q != %q", i, lp.Plan, orig.Plan)
		}
		if (lp.RR == nil) != (orig.RR == nil) {
			t.Errorf("plan %d region nil-ness changed: loaded nil=%v, saved nil=%v",
				i, lp.RR == nil, orig.RR == nil)
		}
		origCost := orig.Cost.(*pwl.Multi)
		for _, x := range samples {
			a, okA := lp.Cost.Eval(x)
			b, okB := origCost.Eval(x)
			if okA != okB || (okA && !a.Equal(b, 1e-9)) {
				t.Errorf("plan %d cost at %v: %v (ok=%v) != %v (ok=%v)", i, x, a, okA, b, okB)
			}
		}
	}

	// Property 1: saving the loaded set reproduces the exact document.
	loaded := make([]*core.PlanInfo, len(ps.Plans))
	for i, lp := range ps.Plans {
		loaded[i] = &core.PlanInfo{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	var second bytes.Buffer
	if err := Save(&second, ps.Metrics, ps.Space, loaded); err != nil {
		t.Fatalf("second save: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("Save∘Load is not the identity: document sizes %d vs %d",
			first.Len(), second.Len())
	}
}

// TestRoundTripPropertyIndexed is the v3 round-trip property: a
// document saved with a pick-index stanza loads the index back and
// saving the loaded set with its loaded index reproduces the exact
// bytes (Save∘Load is the identity for indexed documents too).
func TestRoundTripPropertyIndexed(t *testing.T) {
	for _, shape := range []workload.Shape{workload.Chain, workload.Star, workload.Clique} {
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			schema, err := workload.Generate(workload.Config{
				Tables: 4, Params: 2, Shape: shape, Seed: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := geometry.NewContext()
			model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Context = ctx
			res, err := core.Optimize(schema, model, opts)
			if err != nil {
				t.Fatal(err)
			}
			cands := make([]selection.Candidate, len(res.Plans))
			for i, info := range res.Plans {
				cands[i] = selection.Candidate{Plan: info.Plan, Cost: info.Cost.(*pwl.Multi), RR: info.RR}
			}
			ix, err := index.Build(ctx, model.Space(), cands, index.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := SaveIndexed(&first, model.MetricNames(), model.Space(), res.Plans, ix); err != nil {
				t.Fatalf("first save: %v", err)
			}
			ps, err := Load(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if ps.Index == nil {
				t.Fatal("indexed document loaded without an index")
			}
			if ps.Index.Leaves() != ix.Leaves() || ps.Index.LeafCandidateTotal() != ix.LeafCandidateTotal() ||
				ps.Index.MaxDepth() != ix.MaxDepth() {
				t.Errorf("loaded index shape (leaves=%d cands=%d depth=%d) != built (leaves=%d cands=%d depth=%d)",
					ps.Index.Leaves(), ps.Index.LeafCandidateTotal(), ps.Index.MaxDepth(),
					ix.Leaves(), ix.LeafCandidateTotal(), ix.MaxDepth())
			}
			loaded := make([]*core.PlanInfo, len(ps.Plans))
			for i, lp := range ps.Plans {
				loaded[i] = &core.PlanInfo{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
			}
			var second bytes.Buffer
			if err := SaveIndexed(&second, ps.Metrics, ps.Space, loaded, ps.Index); err != nil {
				t.Fatalf("second save: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("SaveIndexed∘Load is not the identity: document sizes %d vs %d",
					first.Len(), second.Len())
			}
		})
	}
}

// samplePoints returns a deterministic grid of points inside the
// parameter-space box.
func samplePoints(space *geometry.Polytope, n int) []geometry.Vector {
	ctx := geometry.NewContext()
	lo, hi, ok := ctx.BoundingBox(space)
	if !ok {
		return nil
	}
	return geometry.SamplePointsInBox(lo, hi, n, n)
}
