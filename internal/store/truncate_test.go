package store

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/pwl"
	"mpq/internal/selection"
)

// saveIndexedSample serializes a real optimized plan set with a built
// pick index — the exact bytes a fleet's shared store would hold.
func saveIndexedSample(t *testing.T) []byte {
	t.Helper()
	res, metrics, space := optimizeSample(t)
	cands := make([]selection.Candidate, 0, len(res.Plans))
	for _, info := range res.Plans {
		cands = append(cands, selection.Candidate{Plan: info.Plan, Cost: info.Cost.(*pwl.Multi), RR: info.RR})
	}
	ix, err := index.Build(geometry.NewContext(), space, cands, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndexed(&buf, metrics, space, res.Plans, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadTruncatedIndexedDocument: a v3 document cut off anywhere
// inside its index stanza — the torn-write shape an unsynchronized
// shared store could expose — must fail Load with an error, never load
// a partial index.
func TestLoadTruncatedIndexedDocument(t *testing.T) {
	doc := saveIndexedSample(t)
	if _, err := Load(bytes.NewReader(doc)); err != nil {
		t.Fatalf("intact document rejected: %v", err)
	}
	start := bytes.Index(doc, []byte(`"index":`))
	if start < 0 {
		t.Fatal("document carries no index stanza")
	}
	// Cut at several points from the start of the stanza to just before
	// the end of the document.
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
		cut := start + int(frac*float64(len(doc)-start))
		if cut >= len(doc) {
			cut = len(doc) - 1
		}
		if _, err := Load(bytes.NewReader(doc[:cut])); err == nil {
			t.Errorf("document truncated at byte %d/%d loaded successfully", cut, len(doc))
		}
	}
}

// TestLoadIndexStanzaMissingNodes: a structurally valid JSON document
// whose index stanza lost its trailing nodes (the structured version
// of a truncation) is rejected by the tree verification.
func TestLoadIndexStanzaMissingNodes(t *testing.T) {
	doc := saveIndexedSample(t)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatal(err)
	}
	var ix struct {
		LeafTarget int               `json:"leaf_target"`
		MaxDepth   int               `json:"max_depth"`
		MaxLeaves  int               `json:"max_leaves"`
		Lo         []float64         `json:"lo"`
		Hi         []float64         `json:"hi"`
		Nodes      []json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal(m["index"], &ix); err != nil {
		t.Fatal(err)
	}
	if len(ix.Nodes) < 2 {
		t.Skipf("index has %d nodes; nothing to drop", len(ix.Nodes))
	}
	ix.Nodes = ix.Nodes[:len(ix.Nodes)-1]
	raw, err := json.Marshal(ix)
	if err != nil {
		t.Fatal(err)
	}
	m["index"] = raw
	mut, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("index stanza with a missing node loaded successfully")
	}
	if !strings.Contains(err.Error(), "index") {
		t.Errorf("error %q does not point at the index stanza", err)
	}
}
