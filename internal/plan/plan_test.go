package plan

import (
	"strings"
	"testing"

	"mpq/internal/catalog"
)

func TestScanNode(t *testing.T) {
	s := Scan(2, "idxscan")
	if !s.IsScan() {
		t.Error("scan node not recognized")
	}
	if s.Set != catalog.SetOf(2) {
		t.Errorf("set = %v", s.Set)
	}
	if s.Operators() != 1 {
		t.Errorf("operators = %d", s.Operators())
	}
	if s.String() != "idxscan(T3)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestJoinNode(t *testing.T) {
	j := Join("hash", Scan(0, "scan"), Scan(1, "scan"))
	if j.IsScan() {
		t.Error("join node reported as scan")
	}
	if j.Set != catalog.SetOf(0, 1) {
		t.Errorf("set = %v", j.Set)
	}
	if j.Operators() != 3 {
		t.Errorf("operators = %d", j.Operators())
	}
	if j.String() != "hash(scan(T1), scan(T2))" {
		t.Errorf("String = %q", j.String())
	}
}

func TestJoinOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("joining overlapping sets did not panic")
		}
	}()
	Join("hash", Scan(0, "scan"), Scan(0, "scan"))
}

func TestBushyTree(t *testing.T) {
	left := Join("hash", Scan(0, "scan"), Scan(1, "scan"))
	right := Join("parhash8", Scan(2, "idxscan"), Scan(3, "scan"))
	root := Join("hash", left, right)
	if root.Set != catalog.FullSet(4) {
		t.Errorf("set = %v", root.Set)
	}
	if root.Operators() != 7 {
		t.Errorf("operators = %d", root.Operators())
	}
	expl := root.Explain()
	if !strings.Contains(expl, "parhash8") || !strings.Contains(expl, "idxscan on T3") {
		t.Errorf("explain missing operators:\n%s", expl)
	}
	// Indentation depth reflects tree depth.
	lines := strings.Split(strings.TrimRight(expl, "\n"), "\n")
	if len(lines) != 7 {
		t.Errorf("explain has %d lines, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("explain not indented:\n%s", expl)
	}
}

func TestShapeDistinguishesPlans(t *testing.T) {
	a := Join("hash", Scan(0, "scan"), Scan(1, "scan"))
	b := Join("hash", Scan(1, "scan"), Scan(0, "scan"))
	if a.Shape() == b.Shape() {
		t.Error("swapped operands produce identical shapes")
	}
	c := Join("parhash8", Scan(0, "scan"), Scan(1, "scan"))
	if a.Shape() == c.Shape() {
		t.Error("different operators produce identical shapes")
	}
}
