// Package plan represents query plans: operator trees that specify the
// join order and the operators executing scan and join operations
// (Section 2 of the paper).
package plan

import (
	"fmt"
	"strings"

	"mpq/internal/catalog"
)

// Node is a query plan node: either a scan of a base table or a join of
// two sub-plans with a named operator. The paper's Combine(p1, p2, o)
// corresponds to Join(o, p1, p2).
type Node struct {
	// Set is the set of base tables joined by this plan.
	Set catalog.TableSet
	// Op names the operator executing this node.
	Op string
	// Table is the scanned table (scan nodes only).
	Table catalog.TableID
	// Left and Right are the sub-plans (join nodes only).
	Left, Right *Node
}

// Scan builds a scan plan for table t using the named scan operator.
func Scan(t catalog.TableID, op string) *Node {
	return &Node{Set: catalog.SetOf(t), Op: op, Table: t}
}

// Join combines two plans joining disjoint table sets with the named
// join operator (the paper's Combine function).
func Join(op string, left, right *Node) *Node {
	if !left.Set.Intersect(right.Set).IsEmpty() {
		panic(fmt.Sprintf("plan: joining overlapping table sets %v and %v", left.Set, right.Set))
	}
	return &Node{Set: left.Set.Union(right.Set), Op: op, Left: left, Right: right}
}

// IsScan reports whether the node scans a base table.
func (n *Node) IsScan() bool { return n.Left == nil }

// Operators counts the operators in the plan tree.
func (n *Node) Operators() int {
	if n.IsScan() {
		return 1
	}
	return 1 + n.Left.Operators() + n.Right.Operators()
}

// String renders the plan as a compact expression, e.g.
// "hash(idxscan(T1), scan(T2))".
func (n *Node) String() string {
	if n.IsScan() {
		return fmt.Sprintf("%s(T%d)", n.Op, int(n.Table)+1)
	}
	return fmt.Sprintf("%s(%s, %s)", n.Op, n.Left, n.Right)
}

// Explain renders an indented operator tree for human consumption.
func (n *Node) Explain() string {
	var sb strings.Builder
	n.explain(&sb, 0)
	return sb.String()
}

func (n *Node) explain(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	if n.IsScan() {
		fmt.Fprintf(sb, "%s on T%d\n", n.Op, int(n.Table)+1)
		return
	}
	fmt.Fprintf(sb, "%s %v\n", n.Op, n.Set)
	n.Left.explain(sb, depth+1)
	n.Right.explain(sb, depth+1)
}

// Shape returns a canonical string identifying the tree structure and
// operators, used to detect duplicate plans in tests.
func (n *Node) Shape() string { return n.String() }
