package cloud

import (
	"math"
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/geometry"
)

// TestFigure7PruningWithCloudModel reproduces Example 3 / Figure 7 on
// the actual cloud cost model: plans joining the same two tables with a
// single-node hash join vs a parallel hash join. Single-node plans
// dominate parallel plans for small selectivities (no shuffle overhead,
// small input), so pruning removes the parallel plans' relevance there;
// for large selectivities parallelization pays off in time while fees
// stay higher (Scenario 1 tradeoff).
func TestFigure7PruningWithCloudModel(t *testing.T) {
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 4e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 2e5, TupleBytes: 100},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 1e-6}},
		NumParams: 1,
	}
	ctx := geometry.NewContext()
	model, err := NewModel(schema, DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string][]*core.PlanInfo{}
	for _, info := range res.Plans {
		byOp[info.Plan.Op] = append(byOp[info.Plan.Op], info)
	}
	if len(byOp[OpHashJoin]) == 0 {
		t.Fatal("no single-node hash plan in the Pareto set")
	}
	if len(byOp[OpParallelHash(8)]) == 0 {
		t.Fatal("no parallel hash plan in the Pareto set (expected a time/fees tradeoff)")
	}
	anyRelevant := func(op string, x float64) bool {
		for _, info := range byOp[op] {
			if info.RR.Contains(geometry.Vector{x}, 1e-9) {
				return true
			}
		}
		return false
	}
	// Interior low-selectivity point: parallel plans must be pruned —
	// single-node plans are both faster and cheaper there (Figure 7).
	if anyRelevant(OpParallelHash(8), 0.01) {
		t.Error("a parallel plan is relevant at selectivity 0.01 — single-node should dominate")
	}
	// High selectivity: parallelization pays off.
	if !anyRelevant(OpParallelHash(8), 0.95) {
		t.Error("no parallel plan relevant at selectivity 0.95")
	}
	// Some single-node plan stays relevant everywhere: it is always the
	// cheapest option.
	for _, x := range []float64{0.01, 0.5, 0.95} {
		if !anyRelevant(OpHashJoin, x) {
			t.Errorf("no single-node plan relevant at %v", x)
		}
	}
	// Cost shape: best parallel vs best single-node time/fees at both
	// ends.
	algebra := core.NewPWLAlgebra(ctx, 2)
	best := func(op string, x float64, metric int) float64 {
		v := math.Inf(1)
		for _, info := range byOp[op] {
			if c := algebra.Eval(info.Cost, geometry.Vector{x}); c[metric] < v {
				v = c[metric]
			}
		}
		return v
	}
	if best(OpParallelHash(8), 0.01, MetricTime) < best(OpHashJoin, 0.01, MetricTime) {
		t.Error("parallel beats single-node on time at low selectivity")
	}
	if best(OpParallelHash(8), 0.95, MetricTime) >= best(OpHashJoin, 0.95, MetricTime) {
		t.Error("parallel not faster than single-node at high selectivity")
	}
	for _, x := range []float64{0.01, 0.95} {
		if best(OpParallelHash(8), x, MetricFees) <= best(OpHashJoin, x, MetricFees) {
			t.Errorf("parallel fees not higher at %v (fees proportional to total work)", x)
		}
	}
}
