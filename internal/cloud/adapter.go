package cloud

import (
	"mpq/internal/catalog"
	"mpq/internal/core"
)

// ScanAlternatives implements core.CostModel.
func (m *Model) ScanAlternatives(t catalog.TableID) []core.Alternative {
	scans := m.ScanCosts(t)
	out := make([]core.Alternative, len(scans))
	for i, s := range scans {
		out[i] = core.Alternative{Op: s.Op, Cost: s.Cost}
	}
	return out
}

// JoinAlternatives implements core.CostModel.
func (m *Model) JoinAlternatives(left, right catalog.TableSet) []core.Alternative {
	joins := m.JoinCosts(left, right)
	out := make([]core.Alternative, len(joins))
	for i, j := range joins {
		out[i] = core.Alternative{Op: j.Op, Cost: j.Cost}
	}
	return out
}

var _ core.CostModel = (*Model)(nil)
