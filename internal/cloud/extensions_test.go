package cloud

import (
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/geometry"
)

func extendedConfig() Config {
	cfg := DefaultConfig()
	cfg.EnableSortMerge = true
	cfg.EnableBroadcast = true
	return cfg
}

func bigSchema() *catalog.Schema {
	return &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 4e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 8e6, TupleBytes: 100},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 1e-7}},
		NumParams: 1,
	}
}

func TestExtendedOperatorsPresent(t *testing.T) {
	ctx := geometry.NewContext()
	m, err := NewModel(bigSchema(), extendedConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	ops := map[string]bool{}
	for _, j := range joins {
		ops[j.Op] = true
	}
	for _, want := range []string{OpHashJoin, OpParallelHash(8), OpSortMerge, OpBroadcast(8)} {
		if !ops[want] {
			t.Errorf("missing join operator %s (have %v)", want, ops)
		}
	}
	if len(joins) != 4 {
		t.Errorf("got %d join alternatives, want 4", len(joins))
	}
}

// TestBroadcastBeatsShuffleForSmallBuild: with a tiny build side and a
// huge probe side, broadcasting the build side avoids shuffling the
// probe side and must be faster than the partitioned parallel join.
func TestBroadcastBeatsShuffleForSmallBuild(t *testing.T) {
	ctx := geometry.NewContext()
	m, err := NewModel(bigSchema(), extendedConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	costs := map[string]*JoinCost{}
	for i := range joins {
		costs[joins[i].Op] = &joins[i]
	}
	// Small selectivity: build side (T1 filtered) is small.
	x := geometry.Vector{0.005}
	bc, _ := costs[OpBroadcast(8)].Cost.Eval(x)
	par, _ := costs[OpParallelHash(8)].Cost.Eval(x)
	if bc[MetricTime] >= par[MetricTime] {
		t.Errorf("broadcast (%v) not faster than shuffle (%v) for a small build side",
			bc[MetricTime], par[MetricTime])
	}
	// Large build side: broadcasting the whole thing loses.
	x = geometry.Vector{1}
	bc, _ = costs[OpBroadcast(8)].Cost.Eval(x)
	par, _ = costs[OpParallelHash(8)].Cost.Eval(x)
	if bc[MetricTime] <= par[MetricTime] {
		t.Errorf("broadcast (%v) not slower than shuffle (%v) for a large build side",
			bc[MetricTime], par[MetricTime])
	}
}

// TestSortMergeAvoidsSpillCliff: once the hash join spills, sort-merge
// can win; below the spill boundary the hash join is cheaper.
func TestSortMergeAvoidsSpillCliff(t *testing.T) {
	ctx := geometry.NewContext()
	cfg := extendedConfig()
	m, err := NewModel(bigSchema(), cfg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	costs := map[string]*JoinCost{}
	for i := range joins {
		costs[joins[i].Op] = &joins[i]
	}
	// Below spill (build = 4e6*0.05 = 2e5 tuples = 20 MB < 32 MB).
	x := geometry.Vector{0.05}
	hj, _ := costs[OpHashJoin].Cost.Eval(x)
	sm, _ := costs[OpSortMerge].Cost.Eval(x)
	if hj[MetricTime] >= sm[MetricTime] {
		t.Errorf("below spill: hash (%v) not faster than sort-merge (%v)", hj[MetricTime], sm[MetricTime])
	}
	// Far above spill the hash join pays the extra partitioning pass.
	x = geometry.Vector{1}
	hj, _ = costs[OpHashJoin].Cost.Eval(x)
	sm, _ = costs[OpSortMerge].Cost.Eval(x)
	if sm[MetricTime] >= hj[MetricTime] {
		t.Errorf("above spill: sort-merge (%v) not faster than hash (%v)", sm[MetricTime], hj[MetricTime])
	}
}

// TestExtendedOperatorsThroughOptimizer: the optimizer must handle the
// richer operator space and keep at least as many tradeoffs.
func TestExtendedOperatorsThroughOptimizer(t *testing.T) {
	run := func(cfg Config) *core.Result {
		ctx := geometry.NewContext()
		m, err := NewModel(bigSchema(), cfg, ctx)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Context = ctx
		res, err := core.Optimize(bigSchema(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	basic := run(DefaultConfig())
	extended := run(extendedConfig())
	if extended.Stats.CreatedPlans <= basic.Stats.CreatedPlans {
		t.Errorf("extended operator space created %d plans, basic %d",
			extended.Stats.CreatedPlans, basic.Stats.CreatedPlans)
	}
	// The extended result must cover the basic result's tradeoffs.
	algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
	for _, xv := range []float64{0.01, 0.5, 0.99} {
		x := geometry.Vector{xv}
		for _, b := range basic.Plans {
			bc := algebra.Eval(b.Cost, x)
			covered := false
			for _, e := range extended.Plans {
				ec := algebra.Eval(e.Cost, x)
				ok := true
				for i := range ec {
					if ec[i] > bc[i]+1e-6*(1+bc[i]) {
						ok = false
						break
					}
				}
				if ok {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("extended result does not cover basic plan %v at %v", b.Plan, xv)
			}
		}
	}
}
