// Package cloud implements the Cloud cost model of the paper's
// experimental evaluation (Section 7): query processing on a simulated
// cluster of EC2-like nodes with two cost metrics, execution time and
// monetary fees. A parallel hash join shuffles its inputs across the
// network — parallelization increases the total amount of work (and
// hence fees, which are proportional to node-seconds) while decreasing
// execution time for sufficiently large inputs; index seeks beat full
// scans only for selective predicates. Both tradeoffs depend on the
// parameterized predicate selectivities, producing the Pareto structure
// illustrated by Figures 1 and 7 of the paper.
package cloud

import (
	"fmt"
	"math"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// Config describes the simulated cluster and pricing. The defaults model
// an EC2 "general purpose medium" style node (the paper's setup): a few
// GB of memory, commodity sequential I/O, and per-node-second pricing
// derived from an hourly rate.
type Config struct {
	// NodeMemBytes is the node main-memory size (EC2 m3.medium: 3.75 GB).
	NodeMemBytes float64
	// WorkMemBytes is the per-operator hash work memory; a hash join
	// whose build side exceeds it pays an extra partitioning pass
	// (Grace hash join), introducing a piecewise-linear kink.
	WorkMemBytes float64
	// ScanBytesPerSec is the sequential scan rate.
	ScanBytesPerSec float64
	// CPUTupleSec is the CPU cost per tuple for hash build/probe.
	CPUTupleSec float64
	// IndexLookupSec is the cost per matching tuple of an index seek
	// (random I/O dominated).
	IndexLookupSec float64
	// NetworkBytesPerSec is the per-node network bandwidth used when
	// shuffling inputs for a parallel join.
	NetworkBytesPerSec float64
	// ParallelStartupSec is the fixed coordination overhead of starting
	// a parallel join.
	ParallelStartupSec float64
	// PricePerNodeSec is the monetary price of one node-second (EC2
	// hourly rate / 3600).
	PricePerNodeSec float64
	// ParallelDegrees lists the available parallel join widths. The
	// paper's setup has one parallel hash join next to the single-node
	// hash join.
	ParallelDegrees []int
	// ApproxCells is the grid resolution per parameter dimension for
	// the PWL approximation of nonlinear cost terms.
	ApproxCells int
	// EnableSortMerge adds a single-node sort-merge join alternative
	// (extension beyond the paper's two join operators).
	EnableSortMerge bool
	// EnableBroadcast adds a broadcast hash join per parallel degree:
	// the build side is replicated to all nodes, the probe side stays
	// partitioned — cheaper than a full shuffle when the build side is
	// small (extension).
	EnableBroadcast bool
	// SortCPUTupleSec is the per-tuple-per-comparison cost of sorting
	// (multiplied by log2 of the input size).
	SortCPUTupleSec float64
}

// DefaultConfig returns the cluster model used by the experiments.
func DefaultConfig() Config {
	return Config{
		NodeMemBytes:       3.75e9,
		WorkMemBytes:       32e6,
		ScanBytesPerSec:    1.5e8,
		CPUTupleSec:        1e-6,
		IndexLookupSec:     5e-5,
		NetworkBytesPerSec: 1.25e8,
		ParallelStartupSec: 0.5,
		PricePerNodeSec:    0.087 / 3600,
		ParallelDegrees:    []int{8},
		ApproxCells:        0, // auto: 4 cells for one parameter, 2 for more
		SortCPUTupleSec:    5e-8,
	}
}

// Metric indices of the model.
const (
	MetricTime = 0
	MetricFees = 1
)

// Model derives multi-objective PWL cost functions (time, fees) for scan
// and join operator applications from catalog statistics. All produced
// functions are built against one shared parameter-space polytope and
// one shared approximation grid, so the combination and dominance
// operators of the pwl package can use their partition-aligned fast
// paths.
type Model struct {
	cfg    Config
	schema *catalog.Schema
	ctx    *geometry.Context
	space  *geometry.Polytope
	lo, hi geometry.Vector
	grid   *pwl.Grid
}

// NewModel builds a cost model for the schema. The schema must have at
// least one parameter (the MPQ setting). An ApproxCells of zero selects
// a resolution automatically: 4 cells for one parameter, 2 for more
// (piece counts grow as cells^d * d!).
func NewModel(schema *catalog.Schema, cfg Config, ctx *geometry.Context) (*Model, error) {
	if schema.NumParams < 1 {
		return nil, fmt.Errorf("cloud: schema must have at least one parameter")
	}
	if cfg.ApproxCells < 1 {
		if schema.NumParams == 1 {
			cfg.ApproxCells = 4
		} else {
			cfg.ApproxCells = 2
		}
	}
	if len(cfg.ParallelDegrees) == 0 {
		cfg.ParallelDegrees = []int{8}
	}
	lo, hi := schema.ParameterBounds()
	return &Model{
		cfg:    cfg,
		schema: schema,
		ctx:    ctx,
		space:  schema.ParameterSpace(),
		lo:     lo,
		hi:     hi,
		grid:   pwl.NewGrid(lo, hi, cfg.ApproxCells),
	}, nil
}

// Space returns the parameter space polytope.
func (m *Model) Space() *geometry.Polytope { return m.space }

// MetricNames returns the cost metric names, index-aligned with the
// components of the produced cost functions.
func (m *Model) MetricNames() []string { return []string{"time", "fees"} }

// AccumModes returns the per-metric accumulation of sub-plan costs:
// sub-plans execute sequentially, so both time and fees add up.
func (m *Model) AccumModes() []pwl.AccumMode {
	return []pwl.AccumMode{pwl.AccumSum, pwl.AccumSum}
}

// Schema returns the underlying schema.
func (m *Model) Schema() *catalog.Schema { return m.schema }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// ScanOp names.
const (
	OpTableScan = "scan"
	OpIndexSeek = "idxscan"
	OpHashJoin  = "hash"
)

// OpParallelHash names the parallel hash join of the given degree.
func OpParallelHash(degree int) string { return fmt.Sprintf("parhash%d", degree) }

// OpSortMerge names the single-node sort-merge join.
const OpSortMerge = "sortmerge"

// OpBroadcast names the broadcast hash join of the given degree.
func OpBroadcast(degree int) string { return fmt.Sprintf("bcast%d", degree) }

// ScanCosts returns the available scan alternatives for table t as
// (operator name, cost function) pairs: a full table scan always, and an
// index seek when the table has an indexed predicate.
func (m *Model) ScanCosts(t catalog.TableID) []ScanCost {
	tab := m.schema.Tables[t]
	out := []ScanCost{{Op: OpTableScan, Cost: m.tableScanCost(tab)}}
	if tab.Pred != nil && tab.HasIndex {
		out = append(out, ScanCost{Op: OpIndexSeek, Cost: m.indexSeekCost(t, tab)})
	}
	return out
}

// ScanCost pairs a scan operator with its cost function.
type ScanCost struct {
	Op   string
	Cost *pwl.Multi
}

// JoinCost pairs a join operator with the cost of executing only the
// final join step (inputs already produced).
type JoinCost struct {
	Op   string
	Cost *pwl.Multi
}

// tableScanCost models a full scan with predicate evaluation: time is
// independent of the predicate selectivity.
func (m *Model) tableScanCost(tab catalog.Table) *pwl.Multi {
	time := tab.Card * (tab.TupleBytes/m.cfg.ScanBytesPerSec + m.cfg.CPUTupleSec)
	fees := time * m.cfg.PricePerNodeSec
	return pwl.NewMulti(
		pwl.Constant(m.space, time),
		pwl.Constant(m.space, fees),
	)
}

// indexSeekCost models an index seek retrieving the matching tuples:
// cost proportional to selectivity * cardinality, hence linear in the
// parameter when the selectivity is parameterized.
func (m *Model) indexSeekCost(t catalog.TableID, tab catalog.Table) *pwl.Multi {
	perTuple := m.cfg.IndexLookupSec
	var timeF *pwl.Function
	if tab.Pred.Parametric() {
		w := geometry.NewVector(m.schema.NumParams)
		w[tab.Pred.ParamIndex] = tab.Card * perTuple
		timeF = pwl.Linear(m.space, w, 0)
	} else {
		timeF = pwl.Constant(m.space, tab.Pred.ConstSel*tab.Card*perTuple)
	}
	feesF := pwl.Scale(timeF, m.cfg.PricePerNodeSec)
	return pwl.NewMulti(timeF, feesF)
}

// JoinCosts returns the available join operator alternatives for joining
// the results of left and right (left is the build side). Each cost
// covers only the final join step.
func (m *Model) JoinCosts(left, right catalog.TableSet) []JoinCost {
	out := make([]JoinCost, 0, 2+2*len(m.cfg.ParallelDegrees))
	out = append(out, JoinCost{Op: OpHashJoin, Cost: m.singleNodeHashCost(left, right)})
	for _, n := range m.cfg.ParallelDegrees {
		out = append(out, JoinCost{Op: OpParallelHash(n), Cost: m.parallelHashCost(left, right, n)})
	}
	if m.cfg.EnableSortMerge {
		out = append(out, JoinCost{Op: OpSortMerge, Cost: m.sortMergeCost(left, right)})
	}
	if m.cfg.EnableBroadcast {
		for _, n := range m.cfg.ParallelDegrees {
			out = append(out, JoinCost{Op: OpBroadcast(n), Cost: m.broadcastHashCost(left, right, n)})
		}
	}
	return out
}

// sortMergeCost: sort both inputs (n log n), then merge. No work-memory
// cliff (external sort is modeled inside the n log n constant), so it
// can beat the hash join exactly when the hash join spills — the
// crossover depends on the parameterized selectivities.
func (m *Model) sortMergeCost(left, right catalog.TableSet) *pwl.Multi {
	timeAt := func(x geometry.Vector) float64 {
		l := m.schema.OutputCard(left, x)
		r := m.schema.OutputCard(right, x)
		return sortCost(l, m.cfg.SortCPUTupleSec) + sortCost(r, m.cfg.SortCPUTupleSec) +
			(l+r)*m.cfg.CPUTupleSec
	}
	timeF := m.approximate(timeAt)
	feesF := pwl.Scale(timeF, m.cfg.PricePerNodeSec)
	return pwl.NewMulti(timeF, feesF)
}

func sortCost(n, perTuple float64) float64 {
	if n < 2 {
		return 0
	}
	return n * math.Log2(n) * perTuple
}

// broadcastHashCost: replicate the build side to all n nodes over the
// network, probe in place with the locally partitioned probe side. No
// probe-side shuffle, so it beats the partitioned parallel join when
// the build side is small relative to the probe side.
func (m *Model) broadcastHashCost(left, right catalog.TableSet, n int) *pwl.Multi {
	nf := float64(n)
	lBytes := m.tupleBytes(left)
	timeAt := func(x geometry.Vector) float64 {
		l := m.schema.OutputCard(left, x)
		r := m.schema.OutputCard(right, x)
		broadcast := l * lBytes / m.cfg.NetworkBytesPerSec // every node receives the full build side
		work := (l + r/nf) * m.cfg.CPUTupleSec
		if l*lBytes > m.cfg.WorkMemBytes {
			work += 2 * (l*lBytes + r*m.tupleBytes(right)/nf) / m.cfg.ScanBytesPerSec
		}
		return m.cfg.ParallelStartupSec + broadcast + work
	}
	timeF := m.approximate(timeAt)
	feesF := pwl.Scale(timeF, nf*m.cfg.PricePerNodeSec)
	return pwl.NewMulti(timeF, feesF)
}

// singleNodeHashCost: build a hash table over the left input, probe with
// the right input on one node. When the build side exceeds work memory
// both inputs pay an extra partitioning pass (Grace hash join).
func (m *Model) singleNodeHashCost(left, right catalog.TableSet) *pwl.Multi {
	tupleBytes := m.tupleBytes(left)
	timeAt := func(x geometry.Vector) float64 {
		l := m.schema.OutputCard(left, x)
		r := m.schema.OutputCard(right, x)
		t := (l + r) * m.cfg.CPUTupleSec
		if l*tupleBytes > m.cfg.WorkMemBytes {
			// Partition both inputs to disk and re-read them.
			t += 2 * (l*tupleBytes + r*m.tupleBytes(right)) / m.cfg.ScanBytesPerSec
		}
		return t
	}
	timeF := m.approximate(timeAt)
	feesF := pwl.Scale(timeF, m.cfg.PricePerNodeSec)
	return pwl.NewMulti(timeF, feesF)
}

// parallelHashCost: shuffle both inputs across n nodes, then build and
// probe in parallel. Fees are proportional to total node-seconds
// (n * elapsed time), so parallelization always costs more money while
// potentially saving time — the central tradeoff of Scenario 1.
func (m *Model) parallelHashCost(left, right catalog.TableSet, n int) *pwl.Multi {
	nf := float64(n)
	lBytes, rBytes := m.tupleBytes(left), m.tupleBytes(right)
	timeAt := func(x geometry.Vector) float64 {
		l := m.schema.OutputCard(left, x)
		r := m.schema.OutputCard(right, x)
		shuffle := (l*lBytes + r*rBytes) / (m.cfg.NetworkBytesPerSec * nf)
		work := (l + r) * m.cfg.CPUTupleSec / nf
		if l*lBytes/nf > m.cfg.WorkMemBytes {
			work += 2 * (l*lBytes + r*rBytes) / (m.cfg.ScanBytesPerSec * nf)
		}
		return m.cfg.ParallelStartupSec + shuffle + work
	}
	timeF := m.approximate(timeAt)
	feesF := pwl.Scale(timeF, nf*m.cfg.PricePerNodeSec)
	return pwl.NewMulti(timeF, feesF)
}

// tupleBytes estimates the row width of an intermediate result: the sum
// of the widths of the participating tables.
func (m *Model) tupleBytes(set catalog.TableSet) float64 {
	w := 0.0
	for _, t := range set.Tables() {
		w += m.schema.Tables[t].TupleBytes
	}
	return w
}

// approximate converts a cost closure into a PWL function. Closures that
// are (numerically) linear over the parameter space are represented
// exactly with a single piece; others are interpolated on the shared
// Kuhn grid so that piece regions of different cost functions align and
// accumulation does not multiply piece counts. All results carry the
// model's parameter space as their cover.
func (m *Model) approximate(f func(geometry.Vector) float64) *pwl.Function {
	if lin, ok := m.linearFit(f); ok {
		return lin
	}
	return m.grid.Interpolate(f).WithCover(m.space)
}

// linearFit interpolates f linearly from d+1 probe points and accepts
// the fit when it matches f on a verification grid within a small
// relative tolerance.
func (m *Model) linearFit(f func(geometry.Vector) float64) (*pwl.Function, bool) {
	d := m.schema.NumParams
	// Probe points: lo corner and lo+span*e_i.
	probes := make([]geometry.Vector, d+1)
	probes[0] = m.lo.Clone()
	for i := 0; i < d; i++ {
		p := m.lo.Clone()
		p[i] = m.hi[i]
		probes[i+1] = p
	}
	a := make([][]float64, d+1)
	rhs := make([]float64, d+1)
	for r, p := range probes {
		row := make([]float64, d+1)
		copy(row, p)
		row[d] = 1
		a[r] = row
		rhs[r] = f(p)
	}
	sol, ok := geometry.SolveLinearSystem(a, rhs)
	if !ok {
		return nil, false
	}
	w := geometry.Vector(sol[:d]).Clone()
	b := sol[d]
	// Verify on a grid.
	scale := 1.0
	for _, v := range rhs {
		if av := abs(v); av > scale {
			scale = av
		}
	}
	for _, x := range geometry.SamplePointsInBox(m.lo, m.hi, 5, 200) {
		if abs(w.Dot(x)+b-f(x)) > 1e-9*scale {
			return nil, false
		}
	}
	return pwl.Linear(m.space, w, b), true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
