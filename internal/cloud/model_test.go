package cloud

import (
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/workload"
)

func testModel(t *testing.T, tables, params int, seed int64) (*Model, *catalog.Schema, *geometry.Context) {
	t.Helper()
	schema, err := workload.Generate(workload.Config{Tables: tables, Params: params, Shape: workload.Chain, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	m, err := NewModel(schema, DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	return m, schema, ctx
}

func TestScanCostsAlternatives(t *testing.T) {
	m, schema, _ := testModel(t, 3, 1, 1)
	// Table 0 has an indexed predicate: scan + index seek.
	scans := m.ScanCosts(0)
	if len(scans) != 2 {
		t.Fatalf("table 0 has %d scan alternatives, want 2", len(scans))
	}
	// Tables without predicates: full scan only.
	if got := len(m.ScanCosts(1)); got != 1 {
		t.Fatalf("table 1 has %d scan alternatives, want 1", got)
	}
	// Full scan time is independent of selectivity; index seek grows
	// with it.
	var scan, idx *ScanCost
	for i := range scans {
		switch scans[i].Op {
		case OpTableScan:
			scan = &scans[i]
		case OpIndexSeek:
			idx = &scans[i]
		}
	}
	if scan == nil || idx == nil {
		t.Fatal("missing scan or index alternative")
	}
	low, _ := scan.Cost.Eval(geometry.Vector{0.01})
	high, _ := scan.Cost.Eval(geometry.Vector{0.9})
	if low[MetricTime] != high[MetricTime] {
		t.Error("full scan time depends on selectivity")
	}
	idxLow, _ := idx.Cost.Eval(geometry.Vector{0.01})
	idxHigh, _ := idx.Cost.Eval(geometry.Vector{0.9})
	if idxLow[MetricTime] >= idxHigh[MetricTime] {
		t.Error("index seek time not increasing in selectivity")
	}
	_ = schema
}

// TestIndexScanCrossover: the index seek must beat the full scan for
// selective predicates and lose for unselective ones — the tradeoff the
// paper's Section 7 highlights ("plans must often be kept for both
// cases").
func TestIndexScanCrossover(t *testing.T) {
	m, _, _ := testModel(t, 3, 1, 1)
	scans := m.ScanCosts(0)
	var scan, idx *ScanCost
	for i := range scans {
		switch scans[i].Op {
		case OpTableScan:
			scan = &scans[i]
		case OpIndexSeek:
			idx = &scans[i]
		}
	}
	sLow, _ := scan.Cost.Eval(geometry.Vector{0.001})
	iLow, _ := idx.Cost.Eval(geometry.Vector{0.001})
	if iLow[MetricTime] >= sLow[MetricTime] {
		t.Errorf("index (%v) not faster than scan (%v) at selectivity 0.001",
			iLow[MetricTime], sLow[MetricTime])
	}
	sHigh, _ := scan.Cost.Eval(geometry.Vector{1})
	iHigh, _ := idx.Cost.Eval(geometry.Vector{1})
	if iHigh[MetricTime] <= sHigh[MetricTime] {
		t.Errorf("index (%v) not slower than scan (%v) at selectivity 1",
			iHigh[MetricTime], sHigh[MetricTime])
	}
}

// TestParallelJoinTradeoff verifies the central Scenario-1 economics on
// a join step: the parallel join always costs more money (fees
// proportional to total work including shuffle), and for large inputs it
// is faster than the single-node join (Figure 7 / Example 3).
func TestParallelJoinTradeoff(t *testing.T) {
	// A large parameterized build side against a small probe side puts
	// the parallel crossover inside the selectivity domain.
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 2e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 1e5, TupleBytes: 100},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 1e-6}},
		NumParams: 1,
	}
	ctx := geometry.NewContext()
	m, err := NewModel(schema, DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	if len(joins) != 2 {
		t.Fatalf("got %d join alternatives, want 2 (single-node + parallel)", len(joins))
	}
	single, parallel := joins[0], joins[1]
	if single.Op != OpHashJoin {
		t.Fatalf("first join is %q, want %q", single.Op, OpHashJoin)
	}
	for _, sel := range []float64{0.01, 0.25, 0.5, 1} {
		x := geometry.Vector{sel}
		sc, _ := single.Cost.Eval(x)
		pc, _ := parallel.Cost.Eval(x)
		if pc[MetricFees] <= sc[MetricFees] {
			t.Errorf("sel %v: parallel fees %v not higher than single-node %v",
				sel, pc[MetricFees], sc[MetricFees])
		}
	}
	// Small input: single-node faster. Large input: parallel faster.
	sc, _ := single.Cost.Eval(geometry.Vector{0.001})
	pc, _ := parallel.Cost.Eval(geometry.Vector{0.001})
	if sc[MetricTime] >= pc[MetricTime] {
		t.Errorf("small input: single %v not faster than parallel %v", sc[MetricTime], pc[MetricTime])
	}
	sc, _ = single.Cost.Eval(geometry.Vector{1})
	pc, _ = parallel.Cost.Eval(geometry.Vector{1})
	if pc[MetricTime] >= sc[MetricTime] {
		t.Errorf("large input: parallel %v not faster than single %v", pc[MetricTime], sc[MetricTime])
	}
}

func TestCostsPositiveEverywhere(t *testing.T) {
	m, schema, _ := testModel(t, 4, 2, 5)
	lo, hi := schema.ParameterBounds()
	pts := geometry.SamplePointsInBox(lo, hi, 4, 32)
	check := func(op string, c interface {
		Eval(geometry.Vector) (geometry.Vector, bool)
	}) {
		for _, x := range pts {
			v, _ := c.Eval(x)
			for mIdx, val := range v {
				if val <= 0 {
					t.Errorf("%s: non-positive %s cost %v at %v", op, m.MetricNames()[mIdx], val, x)
				}
			}
		}
	}
	for i := range schema.Tables {
		for _, s := range m.ScanCosts(catalog.TableID(i)) {
			check(s.Op, s.Cost)
		}
	}
	for _, split := range [][2]catalog.TableSet{
		{catalog.SetOf(0), catalog.SetOf(1)},
		{catalog.SetOf(0, 1), catalog.SetOf(2)},
		{catalog.SetOf(2, 3), catalog.SetOf(0, 1)},
	} {
		for _, j := range m.JoinCosts(split[0], split[1]) {
			check(j.Op, j.Cost)
		}
	}
}

// TestLinearClosuresExact: with one parameter and no memory spill inside
// the domain, the hash-join step cost is linear in the selectivity and
// must be represented by a single exact piece.
func TestLinearClosuresExact(t *testing.T) {
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 10000, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 10000, TupleBytes: 100},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 1e-4}},
		NumParams: 1,
	}
	ctx := geometry.NewContext()
	m, err := NewModel(schema, DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	for _, j := range joins {
		if n := j.Cost.Component(MetricTime).NumPieces(); n != 1 {
			t.Errorf("%s: time has %d pieces, want 1 (linear closure)", j.Op, n)
		}
	}
	// Verify against the closed form for the single-node join:
	// (|L| + |R|) * CPUTupleSec with |L| = 10000*x filtered and
	// |R| = 10000.
	cfg := m.Config()
	single := joins[0]
	for _, sel := range []float64{0.1, 0.5, 1} {
		x := geometry.Vector{sel}
		v, _ := single.Cost.Eval(x)
		l := 10000 * sel
		r := 10000.0
		want := (l + r) * cfg.CPUTupleSec
		if d := v[MetricTime] - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("sel %v: single-node time %v, want %v", sel, v[MetricTime], want)
		}
	}
}

// TestSpillCreatesPieces: when the build side crosses the work-memory
// boundary inside the parameter domain, the time cost must be genuinely
// piecewise (more than one piece).
func TestSpillCreatesPieces(t *testing.T) {
	// Build side: 1e6 tuples * 100 bytes * x crosses 32 MB at x = 0.32.
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 1e6, TupleBytes: 100, Pred: &catalog.Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 1e5, TupleBytes: 100},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 1e-5}},
		NumParams: 1,
	}
	ctx := geometry.NewContext()
	m, err := NewModel(schema, DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	joins := m.JoinCosts(catalog.SetOf(0), catalog.SetOf(1))
	single := joins[0]
	if n := single.Cost.Component(MetricTime).NumPieces(); n < 2 {
		t.Errorf("spill crossing should produce multiple pieces, got %d", n)
	}
	// Below the boundary no spill cost; above it the extra I/O pass
	// makes the true cost strictly larger than the no-spill line.
	cfg := m.Config()
	noSpill := func(sel float64) float64 {
		l := 1e6 * sel
		r := 1e5
		return (l + r) * cfg.CPUTupleSec
	}
	v, _ := single.Cost.Eval(geometry.Vector{0.9})
	if v[MetricTime] <= noSpill(0.9)+1e-9 {
		t.Errorf("spilled cost %v not above no-spill line %v", v[MetricTime], noSpill(0.9))
	}
}

func TestNewModelRequiresParams(t *testing.T) {
	schema := &catalog.Schema{
		Tables:    []catalog.Table{{Name: "T1", Card: 10, TupleBytes: 10}},
		NumParams: 0,
	}
	if _, err := NewModel(schema, DefaultConfig(), geometry.NewContext()); err == nil {
		t.Error("model accepted schema without parameters")
	}
}

func TestMetricNamesAndModes(t *testing.T) {
	m, _, _ := testModel(t, 2, 1, 1)
	names := m.MetricNames()
	if len(names) != 2 || names[MetricTime] != "time" || names[MetricFees] != "fees" {
		t.Errorf("metric names = %v", names)
	}
	if len(m.AccumModes()) != 2 {
		t.Errorf("accum modes = %v", m.AccumModes())
	}
}
