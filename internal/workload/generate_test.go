package workload

import (
	"testing"

	"mpq/internal/catalog"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Tables: 6, Params: 2, Shape: Chain, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tables {
		if a.Tables[i].Card != b.Tables[i].Card {
			t.Fatalf("table %d cards differ: %v vs %v", i, a.Tables[i].Card, b.Tables[i].Card)
		}
	}
	for i := range a.Edges {
		if a.Edges[i].Sel != b.Edges[i].Sel {
			t.Fatalf("edge %d selectivities differ", i)
		}
	}
	c, err := Generate(Config{Tables: 6, Params: 2, Shape: Chain, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tables {
		if a.Tables[i].Card != c.Tables[i].Card {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cardinalities")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, tc := range []struct {
		shape Shape
		n     int
		edges int
	}{
		{Chain, 5, 4},
		{Star, 5, 4},
		{Cycle, 5, 5},
		{Clique, 5, 10},
	} {
		s, err := Generate(Config{Tables: tc.n, Params: 1, Shape: tc.shape, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", tc.shape, err)
		}
		if len(s.Edges) != tc.edges {
			t.Errorf("%v: %d edges, want %d", tc.shape, len(s.Edges), tc.edges)
		}
		if !s.Connected(s.AllTables()) {
			t.Errorf("%v: graph not connected", tc.shape)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v: invalid schema: %v", tc.shape, err)
		}
	}
	// Star: every edge touches the center.
	s, _ := Generate(Config{Tables: 6, Params: 1, Shape: Star, Seed: 2})
	for _, e := range s.Edges {
		if e.A != 0 && e.B != 0 {
			t.Errorf("star edge %v-%v misses center", e.A, e.B)
		}
	}
	// Chain: consecutive tables.
	s, _ = Generate(Config{Tables: 6, Params: 1, Shape: Chain, Seed: 2})
	for i, e := range s.Edges {
		if int(e.A) != i || int(e.B) != i+1 {
			t.Errorf("chain edge %d = %v-%v", i, e.A, e.B)
		}
	}
}

func TestGenerateParams(t *testing.T) {
	s, err := Generate(Config{Tables: 5, Params: 2, Shape: Chain, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumParams != 2 {
		t.Fatalf("NumParams = %d", s.NumParams)
	}
	pts := s.ParametricTables()
	if len(pts) != 2 {
		t.Fatalf("parametric tables = %v, want 2", pts)
	}
	for i, tid := range pts {
		tab := s.Tables[tid]
		if tab.Pred == nil || tab.Pred.ParamIndex != i {
			t.Errorf("table %d predicate wrong: %+v", tid, tab.Pred)
		}
		if !tab.HasIndex {
			t.Errorf("table %d missing index (Section 7: index per predicate column)", tid)
		}
	}
	for i := 2; i < 5; i++ {
		if s.Tables[i].Pred != nil {
			t.Errorf("table %d unexpectedly has predicate", i)
		}
	}
}

func TestGenerateBoundsAndRanges(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, err := Generate(Config{Tables: 8, Params: 1, Shape: Star, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range s.Tables {
			if tab.Card < 1000 || tab.Card > 100000 {
				t.Errorf("seed %d: card %v out of [1000,100000]", seed, tab.Card)
			}
		}
		for _, e := range s.Edges {
			if e.Sel <= 0 || e.Sel > 1 {
				t.Errorf("seed %d: selectivity %v out of (0,1]", seed, e.Sel)
			}
			// Domain sizes are at most 10% of cardinality, so the
			// selectivity is at least 1/(0.1*maxCard).
			if e.Sel < 1/(0.1*100000)-1e-12 {
				t.Errorf("seed %d: selectivity %v below Steinbrunn bound", seed, e.Sel)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Tables: 0, Shape: Chain}); err == nil {
		t.Error("0 tables accepted")
	}
	if _, err := Generate(Config{Tables: 64, Shape: Chain}); err == nil {
		t.Error("64 tables accepted")
	}
	if _, err := Generate(Config{Tables: 3, Params: 4, Shape: Chain}); err == nil {
		t.Error("params > tables accepted")
	}
	if _, err := Generate(Config{Tables: 2, Shape: Cycle}); err == nil {
		t.Error("2-table cycle accepted")
	}
}

func TestParseShape(t *testing.T) {
	for _, name := range []string{"chain", "star", "cycle", "clique"} {
		sh, err := ParseShape(name)
		if err != nil {
			t.Errorf("ParseShape(%q): %v", name, err)
		}
		if sh.String() != name {
			t.Errorf("round trip %q -> %v", name, sh)
		}
	}
	if _, err := ParseShape("tree"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestGeneratedSchemaUsableByCatalog(t *testing.T) {
	s, err := Generate(Config{Tables: 4, Params: 1, Shape: Chain, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	full := catalog.FullSet(4)
	if s.OutputCard(full, []float64{0.5}) <= 0 {
		t.Error("non-positive output cardinality")
	}
}
