// Package workload generates random queries following the method of
// Steinbrunn, Moerkotte and Kemper ("Heuristic and randomized
// optimization for the join ordering problem", VLDB Journal 1997), the
// generator used by the paper's experiments: random table cardinalities,
// join selectivities derived from attribute domain sizes of up to 10 %
// of the table cardinality, and join graphs shaped as chains or stars
// (plus cycles and cliques as an extension).
package workload

import (
	"fmt"
	"math"
	"math/rand" //mpq:rand workloads are generated from Config.Seed; byte-reproducible per seed

	"mpq/internal/catalog"
)

// Shape is the join graph structure. Chain and star are the shapes
// evaluated in Figure 12 of the paper.
type Shape int

const (
	// Chain joins T1-T2-...-Tn linearly.
	Chain Shape = iota
	// Star joins the center T1 with each of T2..Tn.
	Star
	// Cycle is a chain closed back to the first table (extension).
	Cycle
	// Clique joins every table pair (extension).
	Clique
)

func (s Shape) String() string {
	switch s {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Cycle:
		return "cycle"
	case Clique:
		return "clique"
	}
	return "unknown"
}

// ParseShape converts a shape name to a Shape.
func ParseShape(name string) (Shape, error) {
	switch name {
	case "chain":
		return Chain, nil
	case "star":
		return Star, nil
	case "cycle":
		return Cycle, nil
	case "clique":
		return Clique, nil
	}
	return 0, fmt.Errorf("workload: unknown shape %q", name)
}

// Config controls query generation.
type Config struct {
	// Tables is the number of tables to join.
	Tables int
	// Params is the number of parameters: the first Params tables carry
	// an equality predicate whose selectivity is an optimization
	// parameter (one parameter per table with a predicate, Section 7).
	Params int
	// Shape selects the join graph structure.
	Shape Shape
	// Seed makes generation deterministic.
	Seed int64
	// MinCard and MaxCard bound table cardinalities; rows are drawn
	// log-uniformly. Defaults: 1 000 and 100 000.
	MinCard, MaxCard float64
	// TupleBytes is the row width in bytes; default 100.
	TupleBytes float64
	// MaxDomainFraction bounds attribute domain sizes relative to table
	// cardinality ("unique values occupy up to 10% of a table column",
	// Section 7); default 0.1.
	MaxDomainFraction float64
}

func (c Config) withDefaults() Config {
	if c.MinCard == 0 {
		c.MinCard = 1000
	}
	if c.MaxCard == 0 {
		c.MaxCard = 100000
	}
	if c.TupleBytes == 0 {
		c.TupleBytes = 100
	}
	if c.MaxDomainFraction == 0 {
		c.MaxDomainFraction = 0.1
	}
	return c
}

// Generate builds a random query schema. Generation is fully determined
// by cfg (including Seed).
func Generate(cfg Config) (*catalog.Schema, error) {
	cfg = cfg.withDefaults()
	if cfg.Tables < 1 {
		return nil, fmt.Errorf("workload: need at least 1 table, got %d", cfg.Tables)
	}
	if cfg.Tables > 63 {
		return nil, fmt.Errorf("workload: at most 63 tables, got %d", cfg.Tables)
	}
	if cfg.Params < 0 || cfg.Params > cfg.Tables {
		return nil, fmt.Errorf("workload: params %d out of range [0,%d]", cfg.Params, cfg.Tables)
	}
	if cfg.Shape == Cycle && cfg.Tables < 3 {
		return nil, fmt.Errorf("workload: cycle needs at least 3 tables")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &catalog.Schema{NumParams: cfg.Params}
	for i := 0; i < cfg.Tables; i++ {
		card := logUniform(rng, cfg.MinCard, cfg.MaxCard)
		t := catalog.Table{
			Name:       fmt.Sprintf("T%d", i+1),
			Card:       math.Round(card),
			TupleBytes: cfg.TupleBytes,
		}
		if i < cfg.Params {
			// Parameterized equality predicate with an index (Section 7:
			// indices are available for each column with a predicate).
			t.Pred = &catalog.Predicate{Column: fmt.Sprintf("a%d", i+1), ParamIndex: i}
			t.HasIndex = true
		}
		s.Tables = append(s.Tables, t)
	}
	for _, e := range edgesForShape(cfg.Shape, cfg.Tables) {
		sel := joinSelectivity(rng, s.Tables[e[0]].Card, s.Tables[e[1]].Card, cfg.MaxDomainFraction)
		s.Edges = append(s.Edges, catalog.JoinEdge{A: catalog.TableID(e[0]), B: catalog.TableID(e[1]), Sel: sel})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// edgesForShape lists the table index pairs joined under the shape.
func edgesForShape(shape Shape, n int) [][2]int {
	var edges [][2]int
	switch shape {
	case Chain:
		for i := 0; i+1 < n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
	case Star:
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{0, i})
		}
	case Cycle:
		for i := 0; i+1 < n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		edges = append(edges, [2]int{n - 1, 0})
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}

// joinSelectivity derives an equi-join selectivity 1/max(V(A), V(B))
// from random attribute domain sizes, each up to maxFrac of the table
// cardinality (Steinbrunn's recipe).
func joinSelectivity(rng *rand.Rand, cardA, cardB, maxFrac float64) float64 {
	vA := 1 + rng.Float64()*(maxFrac*cardA-1)
	vB := 1 + rng.Float64()*(maxFrac*cardB-1)
	sel := 1 / math.Max(vA, vB)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// logUniform draws from [lo, hi] log-uniformly, giving the wide spread
// of table sizes typical of Steinbrunn workloads.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}
