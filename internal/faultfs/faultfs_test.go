package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	f, err := OS.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "final")
	if err := OS.Rename(f.Name(), path); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if fi, err := OS.Stat(path); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat = %v, %v", fi, err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorZeroConfigIsPassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, Config{Seed: 1})
	f, err := in.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(f.Name(), filepath.Join(dir, "x")); err != nil {
		t.Fatal(err)
	}
	if got, err := in.ReadFile(filepath.Join(dir, "x")); err != nil || string(got) != "x" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if in.Injected() != 0 {
		t.Errorf("zero-config injector fired %d faults", in.Injected())
	}
	// CreateTemp + Write + Close + Rename = 4 mutations counted.
	if in.Mutations() != 4 {
		t.Errorf("mutations = %d, want 4", in.Mutations())
	}
}

func TestInjectorErrorScheduleDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("data"), 0o666); err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		in := NewInjector(nil, Config{Seed: 42, ErrorRate: 0.5})
		var fired []bool
		for i := 0; i < 64; i++ {
			_, err := in.ReadFile(path)
			fired = append(fired, errors.Is(err, ErrInjected))
		}
		return fired
	}
	a, b := run(), run()
	var any bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Error("error rate 0.5 fired nothing in 64 ops")
	}
}

func TestInjectorCrashTearsWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, Config{Seed: 1})
	// CreateTemp is mutation 1, Write is mutation 2: crash on the write.
	in.CrashAfterMutations(2)
	f, err := in.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdefgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write error = %v, want ErrCrashed", err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Errorf("torn write persisted %q, want the half prefix", got)
	}
	// Everything after the crash fails outright.
	if _, err := in.ReadFile(f.Name()); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash ReadFile = %v, want ErrCrashed", err)
	}
	if err := in.Rename(f.Name(), filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash Rename = %v, want ErrCrashed", err)
	}
}

func TestInjectorCrashPartialRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("abcdefgh"), 0o666); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil, Config{Seed: 1})
	in.CrashAfterMutations(1)
	if err := in.Rename(src, dst); !errors.Is(err, ErrCrashed) {
		t.Fatalf("partial rename error = %v, want ErrCrashed", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Errorf("partial rename left %q at destination, want the half prefix", got)
	}
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector(nil, Config{Seed: 7, Latency: 2 * time.Millisecond, LatencyRate: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := in.ReadFile(path); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("5 ops at 2ms forced latency took %v", d)
	}
}
