// Package faultfs is an injectable filesystem seam for the fleet
// store and the serving layer's persistence: production code performs
// every filesystem operation through an FS value, which defaults to a
// zero-overhead passthrough to the os package, and tests swap in an
// Injector that deterministically injects errors, latency, torn
// writes, and partial renames from a seeded schedule. The crash-safety
// claims of DirStore (fsync'd temp+rename, atomic manifest replace)
// are proven by killing the store at every mutation cut point and
// checking what a fresh reader observes.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand" //mpq:rand injection schedules are seeded and replayable; fallback seeding routes through entropy.SeedOrNow
	"os"
	"sync"
	"time"

	"mpq/internal/entropy"
)

// FS is the set of filesystem operations the plan-set stores perform.
// Implementations must be safe for concurrent use.
type FS interface {
	ReadFile(path string) ([]byte, error)
	Stat(path string) (fs.FileInfo, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir fsyncs a directory so completed renames survive a crash.
	// Some platforms refuse to fsync directories; implementations may
	// ignore that refusal, matching os.File.Sync callers in the tree.
	SyncDir(dir string) error
}

// File is the writable handle CreateTemp returns — the subset of
// *os.File the atomic-write path uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// OS is the production FS: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error              { return os.Remove(path) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	_ = f.Sync()
	return nil
}

// Sentinel errors the Injector produces. Both unwrap to fs.ErrIO-style
// descriptive failures, never to fs.ErrNotExist — an injected fault
// must read as an I/O problem, not a missing file.
var (
	// ErrInjected marks a fault from the seeded error schedule.
	ErrInjected = errors.New("faultfs: injected I/O error")
	// ErrCrashed marks every operation at or after the crash point: the
	// process is considered dead, and the partially-applied state on
	// disk is what a post-crash reader will see.
	ErrCrashed = errors.New("faultfs: crashed")
)

// Config parameterizes an Injector. The schedule is deterministic: one
// seed produces one exact sequence of faults for a fixed sequence of
// operations.
type Config struct {
	// Seed drives the fault schedule (0 picks an arbitrary seed).
	Seed int64
	// ErrorRate is the probability in [0,1) that a mutating or reading
	// operation fails with ErrInjected.
	ErrorRate float64
	// Latency, when nonzero, is the sleep injected before an operation
	// with probability LatencyRate.
	Latency     time.Duration
	LatencyRate float64
}

// Injector wraps a base FS with deterministic fault injection. The
// zero-value schedule (no error rate, no crash point) is a pure
// passthrough.
//
// Crash semantics: CrashAfterMutations(n) arms a countdown over
// mutating operations (temp-file writes, syncs, closes, renames,
// removes). The n-th mutation is performed *partially* — a torn write
// persists a prefix of the data, a partial rename leaves a prefix copy
// of the source at the destination instead of an atomic switch — and
// fails with ErrCrashed; every subsequent operation fails with
// ErrCrashed outright. That emulates powering off mid-operation on a
// filesystem without atomicity guarantees, which is strictly harsher
// than POSIX rename; store code that survives it survives a real
// crash.
type Injector struct {
	base FS

	mu        sync.Mutex
	rng       *rand.Rand
	cfg       Config
	crashIn   int // mutations until crash; -1 = disarmed
	crashed   bool
	mutations int
	injected  int
}

// NewInjector wraps base (nil selects OS) with the given schedule.
func NewInjector(base FS, cfg Config) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{
		base:    base,
		rng:     rand.New(rand.NewSource(entropy.SeedOrNow(cfg.Seed))),
		cfg:     cfg,
		crashIn: -1,
	}
}

// CrashAfterMutations arms the crash countdown: the n-th mutating
// operation from now (1-based) is torn mid-flight and everything after
// it fails with ErrCrashed. n <= 0 disarms.
func (in *Injector) CrashAfterMutations(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		in.crashIn = -1
		return
	}
	in.crashIn = n
	in.crashed = false
}

// Mutations returns the number of mutating operations performed so
// far — tests run one clean pass to count the cut points, then replay
// with CrashAfterMutations(i) for each i.
func (in *Injector) Mutations() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.mutations
}

// Injected returns how many faults the error schedule has fired.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// step injects latency/error for one operation; mutating operations
// additionally advance the crash countdown. Returns (crashNow, err):
// crashNow means this very operation must be performed partially and
// then reported as ErrCrashed.
func (in *Injector) step(mutating bool) (bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, ErrCrashed
	}
	if in.cfg.Latency > 0 && in.rng.Float64() < in.cfg.LatencyRate {
		d := in.cfg.Latency
		in.mu.Unlock()
		time.Sleep(d)
		in.mu.Lock()
		if in.crashed {
			return false, ErrCrashed
		}
	}
	if mutating {
		in.mutations++
		if in.crashIn > 0 {
			in.crashIn--
			if in.crashIn == 0 {
				in.crashed = true
				return true, nil
			}
		}
	}
	if in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate {
		in.injected++
		return false, ErrInjected
	}
	return false, nil
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if _, err := in.step(false); err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	return in.base.ReadFile(path)
}

func (in *Injector) Stat(path string) (fs.FileInfo, error) {
	if _, err := in.step(false); err != nil {
		return nil, fmt.Errorf("stat %s: %w", path, err)
	}
	return in.base.Stat(path)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	crash, err := in.step(true)
	if err != nil {
		return nil, fmt.Errorf("create temp in %s: %w", dir, err)
	}
	f, ferr := in.base.CreateTemp(dir, pattern)
	if ferr != nil {
		return nil, ferr
	}
	if crash {
		f.Close()
		return nil, fmt.Errorf("create temp in %s: %w", dir, ErrCrashed)
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	crash, err := in.step(true)
	if err != nil {
		return fmt.Errorf("rename %s: %w", oldpath, err)
	}
	if crash {
		// Partial rename: the destination ends up with a prefix of the
		// source — the non-atomic worst case a store must tolerate.
		if data, rerr := in.base.ReadFile(oldpath); rerr == nil && len(data) > 0 {
			in.tearInto(newpath, data[:(len(data)+1)/2])
		}
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	return in.base.Rename(oldpath, newpath)
}

// tearInto force-writes torn bytes at path through the base FS,
// bypassing the (now crashed) schedule.
func (in *Injector) tearInto(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data)
	f.Close()
}

func (in *Injector) Remove(path string) error {
	crash, err := in.step(true)
	if err != nil {
		return fmt.Errorf("remove %s: %w", path, err)
	}
	if crash {
		return fmt.Errorf("remove %s: %w", path, ErrCrashed)
	}
	return in.base.Remove(path)
}

func (in *Injector) SyncDir(dir string) error {
	crash, err := in.step(true)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	if crash {
		return fmt.Errorf("sync dir %s: %w", dir, ErrCrashed)
	}
	return in.base.SyncDir(dir)
}

// injFile wraps a File with the injector's schedule: writes, syncs and
// closes are mutations; a torn write persists half the buffer.
type injFile struct {
	in *Injector
	f  File
}

func (w *injFile) Name() string { return w.f.Name() }

func (w *injFile) Write(p []byte) (int, error) {
	crash, err := w.in.step(true)
	if err != nil {
		return 0, fmt.Errorf("write %s: %w", w.f.Name(), err)
	}
	if crash {
		n, _ := w.f.Write(p[:(len(p)+1)/2])
		w.f.Close()
		return n, fmt.Errorf("write %s: %w", w.f.Name(), ErrCrashed)
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	crash, err := w.in.step(true)
	if err != nil {
		return fmt.Errorf("sync %s: %w", w.f.Name(), err)
	}
	if crash {
		w.f.Close()
		return fmt.Errorf("sync %s: %w", w.f.Name(), ErrCrashed)
	}
	return w.f.Sync()
}

func (w *injFile) Close() error {
	crash, err := w.in.step(true)
	if err != nil {
		w.f.Close()
		return fmt.Errorf("close %s: %w", w.f.Name(), err)
	}
	if crash {
		w.f.Close()
		return fmt.Errorf("close %s: %w", w.f.Name(), ErrCrashed)
	}
	return w.f.Close()
}
