// Package atomicfield implements the mpqatomicfield analyzer: a
// variable that is accessed through sync/atomic anywhere must be
// accessed atomically everywhere. Mixing a plain read or write with
// atomic operations is a data race the race detector only catches on
// the interleavings a test happens to execute; this analyzer catches
// it on every path at compile time.
//
// The analyzer marks every struct field and package-level variable
// whose address is passed to a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&ready), ...) and
// exports the mark as an object fact, so mixed access is detected
// across package boundaries. Any other mention of a marked variable —
// a plain read, a plain assignment, or taking its address for a
// non-atomic callee — is reported unless annotated
// `//mpq:nonatomic <reason>` (for provably race-free access, e.g. a
// read after all writers have joined).
//
// Struct-literal field initialization is exempt: keyed composite
// literals run before the value escapes to other goroutines. Prefer
// the typed atomic.Int64-style API for new code — it makes plain
// access inexpressible and this analyzer unnecessary.
package atomicfield

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"mpq/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "mpqatomicfield",
	Doc:       "flag plain accesses to variables that are accessed via sync/atomic elsewhere",
	Run:       run,
	FactTypes: []analysis.Fact{(*atomicallyAccessed)(nil)},
}

// atomicallyAccessed marks a struct field or package-level var whose
// address is passed to a sync/atomic function somewhere.
type atomicallyAccessed struct{}

func (*atomicallyAccessed) AFact()         {}
func (*atomicallyAccessed) String() string { return "atomicallyAccessed" }

var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapPointer": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadPointer": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true,
	"StoreInt32": true, "StoreInt64": true, "StorePointer": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapPointer": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Collect(pass)
	dirs.ReportUndocumented(pass, directive.NonAtomic)

	marked := make(map[types.Object]bool)    // objects atomically accessed (this package or deps)
	sanctioned := make(map[ast.Expr]bool)    // the &x operands of atomic calls themselves
	literalKeys := make(map[*ast.Ident]bool) // keys of keyed composite literals

	// Phase 1: find atomic accesses, mark their targets.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							literalKeys[id] = true
						}
					}
				}
			case *ast.CallExpr:
				fn := callee(pass, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				target := ast.Unparen(addr.X)
				obj := trackedObject(pass, target)
				if obj == nil {
					return true
				}
				sanctioned[target] = true
				marked[obj] = true
				if obj.Pkg() == pass.Pkg {
					pass.ExportObjectFact(obj, &atomicallyAccessed{})
				}
			}
			return true
		})
	}

	// Phase 2: every other mention of a marked object is a report.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			var id *ast.Ident
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj = trackedObject(pass, n)
				id = n.Sel
			case *ast.Ident:
				obj = trackedObject(pass, n)
				id = n
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if !marked[obj] && !pass.ImportObjectFact(obj, &atomicallyAccessed{}) {
				return true
			}
			if expr, ok := n.(ast.Expr); ok && sanctioned[expr] {
				return false // the atomic call's own &x argument
			}
			if literalKeys[id] {
				return true // keyed struct-literal initialization
			}
			if dirs.Allowed(directive.NonAtomic, n.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(), "%s is accessed via sync/atomic elsewhere; this plain access is a data race — use the atomic API, or annotate a provably race-free site //mpq:nonatomic <reason>", obj.Name())
			return false
		})
	}
	return nil, nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// trackedObject resolves expr to a struct field or package-level
// variable — the only object classes the analyzer tracks (locals
// cannot be shared without escaping through one of these).
func trackedObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Qualified package-level var (pkg.Var).
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && (v.IsField() || isPackageLevel(v)) {
			return v
		}
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
