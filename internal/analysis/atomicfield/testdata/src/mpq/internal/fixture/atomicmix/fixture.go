// Package atomicmix exercises the mpqatomicfield analyzer: every
// variable touched by sync/atomic must be touched atomically
// everywhere.
package atomicmix

import "sync/atomic"

// Counter mixes atomic and plain access to n.
type Counter struct {
	n    int64
	name string
}

// Inc is the atomic writer that marks Counter.n.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read is a racy plain read of an atomically-written field.
func (c *Counter) Read() int64 {
	return c.n // want "accessed via sync/atomic elsewhere"
}

// Reset is a racy plain write.
func (c *Counter) Reset() {
	c.n = 0 // want "accessed via sync/atomic elsewhere"
}

// Alias leaks the field's address to non-atomic code.
func (c *Counter) Alias() *int64 {
	return &c.n // want "accessed via sync/atomic elsewhere"
}

// Name touches only the untracked field — no finding.
func (c *Counter) Name() string {
	return c.name
}

// NewCounter initializes through a keyed literal, which runs before
// the value can be shared — exempt.
func NewCounter() *Counter {
	return &Counter{n: 5, name: "fixture"}
}

// Drain reads after every writer joined; the suppression documents
// why that is race-free.
func (c *Counter) Drain() int64 {
	return c.n //mpq:nonatomic called after Wait(); all writers joined, no concurrent access remains
}

// Peek carries a suppression with no reason.
func (c *Counter) Peek() int64 {
	return c.n //mpq:nonatomic // want "requires a reason"
}

// hits is a package-level var accessed atomically below.
var hits int64

// Hit marks the package-level var.
func Hit() { atomic.AddInt64(&hits, 1) }

// Hits reads it plainly.
func Hits() int64 {
	return hits // want "accessed via sync/atomic elsewhere"
}
