package atomicfield_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/atomicfield"
)

func TestMixedAccess(t *testing.T) {
	analysistest.Run(t, ".", atomicfield.Analyzer, "mpq/internal/fixture/atomicmix")
}
