// Package directive is the shared configuration layer of the mpqlint
// analyzers: it parses `//mpq:<kind> <reason>` suppression directives
// out of a package's comments and answers, for any diagnostic position,
// whether a directive of a given kind sanctions it.
//
// Directive grammar
//
//	//mpq:<kind> <reason>
//
// where <kind> is one of the known kinds below and <reason> is free
// text explaining why the invariant is deliberately waived at this
// site. A directive with an empty reason still suppresses the
// underlying diagnostic, but is itself reported by the analyzer that
// owns the kind — an undocumented suppression is a lint violation.
//
// A directive attaches to code at three granularities:
//
//   - line: written at the end of the offending line, or alone on the
//     line immediately above it;
//   - declaration: written in the doc comment of a func, type, var, or
//     import declaration, covering the whole declaration;
//   - file: written above the package clause, covering the whole file.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Kind names one invariant that a directive may waive.
type Kind string

// The known directive kinds. Each is owned by exactly one analyzer,
// which validates that its directives carry a reason.
const (
	// OrderInvariant sanctions a range over a map in a
	// deterministic-output package (owner: mpqdeterminism).
	OrderInvariant Kind = "orderinvariant"
	// Wallclock sanctions a time.Now/time.Since call — timing and
	// stats code that never reaches results (owner: mpqdeterminism).
	Wallclock Kind = "wallclock"
	// Rand sanctions a math/rand import — seeded, reproducible
	// generators only (owner: mpqdeterminism).
	Rand Kind = "rand"
	// CtxRoot sanctions a context.Background/context.TODO call — a
	// deliberate root of a new context tree (owner: mpqctxflow).
	CtxRoot Kind = "ctxroot"
	// FloatExact sanctions an exact ==/!= on floating-point values
	// (owner: mpqfloateq).
	FloatExact Kind = "floatexact"
	// NonAtomic sanctions a plain access to a field that is accessed
	// atomically elsewhere — e.g. a read under a mutex after all
	// writers joined (owner: mpqatomicfield).
	NonAtomic Kind = "nonatomic"
)

// Known reports whether k is a recognized directive kind.
func Known(k Kind) bool {
	switch k {
	case OrderInvariant, Wallclock, Rand, CtxRoot, FloatExact, NonAtomic:
		return true
	}
	return false
}

const prefix = "//mpq:"

// A Directive is one parsed //mpq: comment.
type Directive struct {
	Kind   Kind
	Reason string
	Pos    token.Pos // position of the comment
}

type span struct {
	kind       Kind
	start, end token.Pos
}

// A Set holds every directive of one package, indexed for suppression
// lookups.
type Set struct {
	fset   *token.FileSet
	all    []Directive
	byLine map[string]map[int][]Kind // filename -> line of directive comment -> kinds
	spans  []span                    // declaration- and file-level coverage
}

// Collect parses the directives of every file in the pass.
func Collect(pass *analysis.Pass) *Set {
	s := &Set{fset: pass.Fset, byLine: make(map[string]map[int][]Kind)}
	for _, f := range pass.Files {
		s.collectFile(f)
	}
	return s
}

func (s *Set) collectFile(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parse(c)
			if !ok {
				continue
			}
			s.all = append(s.all, d)
			pos := s.fset.Position(c.Slash)
			lines := s.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]Kind)
				s.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], d.Kind)
			// File-level: any directive group before the package
			// clause covers the whole file.
			if c.Slash < f.Package {
				s.spans = append(s.spans, span{d.Kind, f.FileStart, f.FileEnd})
			}
		}
	}
	// Declaration-level: directives in doc comments cover the
	// declaration they document.
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if d, ok := parse(c); ok {
				s.spans = append(s.spans, span{d.Kind, decl.Pos(), decl.End()})
			}
		}
	}
}

func parse(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	rest := c.Text[len(prefix):]
	// Fixture support: a trailing "// want ..." expectation inside the
	// directive comment belongs to the analysistest harness, not to the
	// reason text.
	if i := strings.Index(rest, "// want "); i >= 0 {
		rest = rest[:i]
	}
	kind, reason, _ := strings.Cut(rest, " ")
	return Directive{Kind: Kind(kind), Reason: strings.TrimSpace(reason), Pos: c.Slash}, true
}

// Allowed reports whether a directive of the given kind sanctions a
// diagnostic at pos: same line, the line above, an enclosing annotated
// declaration, or an annotated file.
func (s *Set) Allowed(kind Kind, pos token.Pos) bool {
	p := s.fset.Position(pos)
	if lines, ok := s.byLine[p.Filename]; ok {
		for _, k := range lines[p.Line] {
			if k == kind {
				return true
			}
		}
		for _, k := range lines[p.Line-1] {
			if k == kind {
				return true
			}
		}
	}
	for _, sp := range s.spans {
		if sp.kind == kind && sp.start <= pos && pos < sp.end {
			return true
		}
	}
	return false
}

// ReportUndocumented reports every directive of the owned kinds that
// carries no reason text. It is called by the analyzer that owns each
// kind, so a suppression without a rationale is itself a finding.
func (s *Set) ReportUndocumented(pass *analysis.Pass, owned ...Kind) {
	for _, d := range s.all {
		if d.Reason != "" {
			continue
		}
		for _, k := range owned {
			if d.Kind == k {
				pass.Reportf(d.Pos, "mpq:%s directive requires a reason explaining why the invariant is waived here", d.Kind)
			}
		}
	}
}

// ReportUnknown reports directives whose kind is not recognized. It is
// called from exactly one analyzer (mpqdeterminism, which runs over
// every package) to avoid duplicate diagnostics.
func (s *Set) ReportUnknown(pass *analysis.Pass) {
	for _, d := range s.all {
		if !Known(d.Kind) {
			pass.Reportf(d.Pos, "unknown directive mpq:%s (known: orderinvariant, wallclock, rand, ctxroot, floatexact, nonatomic)", d.Kind)
		}
	}
}

// InModule reports whether path names a package of this module — the
// analyzers never report on vendored or standard-library code.
func InModule(path string) bool {
	return path == "mpq" || strings.HasPrefix(path, "mpq/")
}

// InScope reports whether path is one of the listed package paths or a
// subpackage of one.
func InScope(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
