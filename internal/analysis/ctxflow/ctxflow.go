// Package ctxflow implements the mpqctxflow analyzer: it enforces the
// PR 6 cancellation contract — context flows from the caller down
// through every blocking entry point, and new context roots are
// created only at deliberate, documented boundaries.
//
// Two rules:
//
//  1. Module-wide (outside package main and _test.go files), calls to
//     context.Background() and context.TODO() are flagged unless
//     annotated `//mpq:ctxroot <reason>`. A library that mints its own
//     root silently detaches work from the caller's deadline and
//     cancellation — exactly the bug class PR 6 eliminated.
//
//  2. In the serving packages (the mpq facade, internal/serve,
//     internal/fleet), every exported function, method, and interface
//     method that accepts a context.Context must take it as the first
//     parameter, matching the standard library convention the rest of
//     the repo relies on.
//
// The analyzer owns the ctxroot directive and reports undocumented
// uses of it.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mpq/internal/analysis/directive"
)

// CtxFirstPkgs are the packages whose exported APIs must take ctx
// first; rule 2 applies here and in the root mpq facade (matched
// exactly — every other module package is a subpath of "mpq").
var CtxFirstPkgs = []string{
	"mpq/internal/serve",
	"mpq/internal/fleet",
	"mpq/internal/refine",
}

var Analyzer = &analysis.Analyzer{
	Name: "mpqctxflow",
	Doc:  "flag context.Background/TODO outside annotated roots and exported serving APIs whose context.Context is not the first parameter",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Collect(pass)
	dirs.ReportUndocumented(pass, directive.CtxRoot)

	path := pass.Pkg.Path()
	if !directive.InModule(path) {
		return nil, nil
	}
	rootScope := pass.Pkg.Name() != "main"
	firstScope := path == "mpq" || directive.InScope(path, CtxFirstPkgs)

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go") {
			continue
		}
		if rootScope {
			checkRoots(pass, dirs, f)
		}
		if firstScope {
			checkCtxFirst(pass, f)
		}
	}
	return nil, nil
}

// checkRoots flags context.Background/TODO calls without a
// //mpq:ctxroot annotation.
func checkRoots(pass *analysis.Pass, dirs *directive.Set, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name != "Background" && name != "TODO" {
			return true
		}
		if dirs.Allowed(directive.CtxRoot, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s creates a new context root, detaching this work from the caller's deadline and cancellation; thread the caller's ctx, or annotate a deliberate root //mpq:ctxroot <reason>", fn.Name())
		return true
	})
}

// checkCtxFirst flags exported funcs, methods, and interface methods
// whose context.Context parameter is not first.
func checkCtxFirst(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() {
				checkParamOrder(pass, d.Name.Name, d.Type)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, m := range it.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					for _, name := range m.Names {
						if name.IsExported() {
							checkParamOrder(pass, ts.Name.Name+"."+name.Name, ft)
						}
					}
				}
			}
		}
	}
}

func checkParamOrder(pass *analysis.Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "exported serving API %s must take context.Context as its first parameter", name)
			return
		}
		idx += n
	}
}

func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
