package ctxflow_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/ctxflow"
)

func TestServingPackage(t *testing.T) {
	analysistest.Run(t, ".", ctxflow.Analyzer, "mpq/internal/serve/fixture")
}

func TestOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, ".", ctxflow.Analyzer, "mpq/internal/catalog/fixture")
}
