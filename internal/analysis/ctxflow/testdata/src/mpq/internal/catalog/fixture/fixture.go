// Package fixture exercises the mpqctxflow analyzer outside the
// serving packages: parameter order is free, context roots are not.
package fixture

import "context"

// LateCtx is fine here — rule 2 covers only the serving packages.
func LateCtx(key string, ctx context.Context) error {
	_ = ctx
	return nil
}

// Detached is still flagged module-wide.
func Detached() context.Context {
	return context.Background() // want "creates a new context root"
}
