// Package fixture exercises the mpqctxflow analyzer inside a serving
// package (both rules apply).
package fixture

import "context"

// Prepareish takes ctx first — the convention.
func Prepareish(ctx context.Context, key string) error {
	_ = ctx
	return nil
}

// Misordered buries its context. // want is on the param below.
func Misordered(key string, ctx context.Context) error { // want "must take context.Context as its first parameter"
	_ = ctx
	return nil
}

// Picker is an exported interface: its methods carry the convention
// too.
type Picker interface {
	Pick(ctx context.Context, key string) error
	PickLate(key string, ctx context.Context) error // want "must take context.Context as its first parameter"
}

// unexported funcs are uninteresting to rule 2.
func helper(key string, ctx context.Context) error {
	_ = ctx
	return nil
}

// Detached mints a context root without sanction.
func Detached() error {
	ctx := context.Background() // want "creates a new context root"
	return Prepareish(ctx, "k")
}

// Todo is the same violation via TODO.
func Todo() context.Context {
	return context.TODO() // want "creates a new context root"
}

// Root is a documented, deliberate context root.
func Root() context.Context {
	return context.Background() //mpq:ctxroot fixture daemon root: no caller exists to inherit from
}

// Unjustified carries a suppression with no reason.
func Unjustified() context.Context {
	return context.Background() //mpq:ctxroot // want "requires a reason"
}
