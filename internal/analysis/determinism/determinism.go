// Package determinism implements the mpqdeterminism analyzer: it
// defends the repo's bit-for-bit reproducibility contract (identical
// plans, serialized bytes, and LP stats for any worker count) at
// compile time.
//
// Two rules:
//
//  1. In the deterministic-output packages (core, geometry, pwl,
//     region, selection, index, store, plan), a `range` over a map is
//     flagged: map iteration order is randomized per run, so any map
//     order that can reach results or serialized bytes silently breaks
//     determinism. A range is sanctioned if the enclosing function
//     sorts after the loop (the collect-then-sort idiom) or if it is
//     annotated `//mpq:orderinvariant <reason>`.
//
//  2. Module-wide (outside package main and _test.go files), calls to
//     time.Now/time.Since and imports of math/rand are flagged unless
//     annotated `//mpq:wallclock <reason>` / `//mpq:rand <reason>`.
//     Timing-stat code is expected to carry the annotation; seeds must
//     route through the single sanctioned fallback in internal/entropy.
//
// The analyzer also validates directive syntax suite-wide: unknown
// //mpq: kinds are reported here (it is the one analyzer that visits
// every package), and orderinvariant/wallclock/rand directives without
// a reason are reported as undocumented suppressions.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mpq/internal/analysis/directive"
)

// DeterministicPkgs are the packages whose outputs must be
// reproducible byte-for-byte; rule 1 applies only here.
var DeterministicPkgs = []string{
	"mpq/internal/core",
	"mpq/internal/geometry",
	"mpq/internal/pwl",
	"mpq/internal/region",
	"mpq/internal/selection",
	"mpq/internal/index",
	"mpq/internal/store",
	"mpq/internal/plan",
}

var Analyzer = &analysis.Analyzer{
	Name: "mpqdeterminism",
	Doc:  "flag nondeterministic map iteration in deterministic-output packages and unsanctioned wall-clock/rand use module-wide",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Collect(pass)
	dirs.ReportUnknown(pass)
	dirs.ReportUndocumented(pass, directive.OrderInvariant, directive.Wallclock, directive.Rand)

	path := pass.Pkg.Path()
	if !directive.InModule(path) {
		return nil, nil
	}
	mapRangeScope := directive.InScope(path, DeterministicPkgs)
	wallclockScope := pass.Pkg.Name() != "main"

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if mapRangeScope {
			checkMapRanges(pass, dirs, f)
		}
		if wallclockScope {
			checkWallclock(pass, dirs, f)
			checkRandImports(pass, dirs, f)
		}
	}
	return nil, nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go")
}

// checkMapRanges flags `range` statements over map-typed operands
// unless the enclosing function sorts after the loop or the loop is
// annotated.
func checkMapRanges(pass *analysis.Pass, dirs *directive.Set, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok {
			checkMapRangesIn(pass, dirs, fd)
		}
	}
}

func checkMapRangesIn(pass *analysis.Pass, dirs *directive.Set, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv := pass.TypesInfo.TypeOf(rs.X)
		if tv == nil {
			return true
		}
		if _, isMap := tv.Underlying().(*types.Map); !isMap {
			return true
		}
		if dirs.Allowed(directive.OrderInvariant, rs.Pos()) {
			return true
		}
		if sortFollows(pass, fd, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), "range over map %s: iteration order is nondeterministic and this package's outputs must be byte-reproducible; sort after collecting, or annotate //mpq:orderinvariant <reason>", types.TypeString(tv, types.RelativeTo(pass.Pkg)))
		return true
	})
}

// sortFollows recognizes the collect-then-sort idiom: a call to a
// sort.* or slices.Sort* function lexically after the range loop in
// the same function body sanctions the loop.
func sortFollows(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				found = true
			case "slices":
				if strings.HasPrefix(fn.Name(), "Sort") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkWallclock flags calls to time.Now and time.Since without a
// //mpq:wallclock annotation.
func checkWallclock(pass *analysis.Pass, dirs *directive.Set, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if name := fn.Name(); name != "Now" && name != "Since" {
			return true
		}
		if dirs.Allowed(directive.Wallclock, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(), "time.%s reads the wall clock, which must not influence deterministic outputs; annotate timing/stat code //mpq:wallclock <reason>", fn.Name())
		return true
	})
}

// checkRandImports flags math/rand imports without a //mpq:rand
// annotation.
func checkRandImports(pass *analysis.Pass, dirs *directive.Set, f *ast.File) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if p != "math/rand" && p != "math/rand/v2" {
			continue
		}
		if dirs.Allowed(directive.Rand, imp.Pos()) {
			continue
		}
		pass.Reportf(imp.Pos(), "import of %s: random sources break reproducibility unless explicitly seeded; seed via internal/entropy and annotate //mpq:rand <reason>", p)
	}
}
