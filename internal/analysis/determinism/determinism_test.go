package determinism_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/determinism"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, ".", determinism.Analyzer, "mpq/internal/core/fixture")
}

func TestOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, ".", determinism.Analyzer, "mpq/internal/bench/fixture")
}
