// Package fixture exercises the mpqdeterminism analyzer outside the
// deterministic-output packages: map ranges are free, the wall clock
// still is not.
package fixture

import "time"

// MapOrderElsewhere is fine here — this package's outputs carry no
// byte-reproducibility contract.
func MapOrderElsewhere(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Clock is still flagged module-wide.
func Clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
