// Package fixture exercises the mpqdeterminism analyzer inside a
// deterministic-output package (both rules apply).
package fixture

import (
	"sort"
	"time"
)

// MapOrder collects results from map iterations.
func MapOrder(m map[string]int) []string {
	var bad []string
	for k := range m { // want "range over map"
		bad = append(bad, k)
	}
	return bad
}

// SortedAfter uses the sanctioned collect-then-sort idiom.
func SortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Annotated carries a documented suppression.
func Annotated(m map[string]int) int {
	n := 0
	//mpq:orderinvariant pure accumulation; addition is commutative
	for range m {
		n++
	}
	return n
}

// Undocumented suppressions are themselves findings.
func Undocumented(m map[string]int) int {
	n := 0
	for range m { //mpq:orderinvariant // want "requires a reason"
		n++
	}
	return n
}

// Clock reads the wall clock without sanction.
func Clock() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.Unix()
}

// Elapsed uses time.Since without sanction.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// Timed is sanctioned stat code.
func Timed() time.Time {
	return time.Now() //mpq:wallclock timing stat for the fixture; never reaches outputs
}

//mpq:bogus not a real directive kind // want "unknown directive"
var _ = 0
