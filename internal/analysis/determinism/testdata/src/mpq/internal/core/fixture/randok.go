package fixture

import (
	"math/rand" //mpq:rand fixture generator is seeded and reproducible
)

// DrawSeeded draws from an explicitly seeded generator.
func DrawSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Int()
}
