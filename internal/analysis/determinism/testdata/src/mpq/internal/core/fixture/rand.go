package fixture

import (
	"math/rand" // want "import of math/rand"
)

// Draw uses an unsanctioned random source.
func Draw() int { return rand.Int() }
