// Package fixture exercises the mpqfloateq analyzer outside the
// numeric packages: exact float comparison is not its concern there.
package fixture

// EqElsewhere is out of scope — no finding.
func EqElsewhere(a, b float64) bool {
	return a == b
}
