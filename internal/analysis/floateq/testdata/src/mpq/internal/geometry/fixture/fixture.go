// Package fixture exercises the mpqfloateq analyzer inside an
// epsilon-disciplined numeric package.
package fixture

// Eq compares costs exactly — the classic latent bug.
func Eq(a, b float64) bool {
	return a == b // want "exact == on floating-point values"
}

// Neq is the same violation negated.
func Neq(a, b float64) bool {
	return a != b // want "exact != on floating-point values"
}

// Ints are not floats.
func Ints(a, b int) bool {
	return a == b
}

// IsNaN uses the sanctioned self-comparison idiom.
func IsNaN(x float64) bool {
	return x != x
}

// Scalar is a named float type; the underlying type decides.
type Scalar float64

// EqScalar is flagged through the named type.
func EqScalar(a, b Scalar) bool {
	return a == b // want "exact == on floating-point values"
}

// Pivot documents a deliberately exact test.
func Pivot(f float64) bool {
	return f == 0 //mpq:floatexact exact-zero skip is algebraically a no-op
}

// Sloppy suppresses without a reason.
func Sloppy(f float64) bool {
	return f == 0 //mpq:floatexact // want "requires a reason"
}

// Classify switches on a float tag.
func Classify(x float64) int {
	switch x { // want "switch on a floating-point value"
	case 0:
		return 0
	default:
		return 1
	}
}

// renderCmp is allowlisted by the test as an approved helper.
func renderCmp(w float64) bool {
	return w == 1
}
