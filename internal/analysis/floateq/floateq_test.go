package floateq_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/floateq"
)

func TestNumericPackage(t *testing.T) {
	floateq.ApprovedHelpers["mpq/internal/geometry/fixture"] = []string{"renderCmp"}
	defer delete(floateq.ApprovedHelpers, "mpq/internal/geometry/fixture")
	analysistest.Run(t, ".", floateq.Analyzer, "mpq/internal/geometry/fixture")
}

func TestOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, ".", floateq.Analyzer, "mpq/internal/core/fixture")
}
