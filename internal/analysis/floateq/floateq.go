// Package floateq implements the mpqfloateq analyzer: in the numeric
// kernel packages (geometry, pwl, selection), exact ==/!= comparisons
// of floating-point values are flagged. The repo's geometric
// predicates are epsilon-disciplined (geometry.CompareEps, shared by
// selection.ContainsEps and the pwl comparators); a bare == on a
// computed cost or coordinate is
// almost always a latent determinism or correctness bug — two
// mathematically equal values can differ in the last ulp depending on
// evaluation order.
//
// Sanctioned exact comparisons:
//
//   - the self-comparison NaN idiom (x != x);
//   - bodies of the approved epsilon-comparator helpers, listed in
//     ApprovedHelpers, which by definition implement the tolerance;
//   - sites annotated `//mpq:floatexact <reason>` — e.g. exact-zero
//     pivot tests in the simplex kernel, where skipping an exactly-zero
//     multiplier is sound and a tolerance would be wrong.
//
// switch statements over a floating-point tag are flagged
// unconditionally (annotate the switch if ever needed).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mpq/internal/analysis/directive"
)

// ScopePkgs are the epsilon-disciplined numeric packages.
var ScopePkgs = []string{
	"mpq/internal/geometry",
	"mpq/internal/pwl",
	"mpq/internal/selection",
}

// ApprovedHelpers names functions (per package path) whose whole body
// may compare floats exactly: they are the epsilon comparators
// themselves, or wrappers whose exactness is the contract.
var ApprovedHelpers = map[string][]string{
	// Halfspace.String renders coefficients: its ==0/==1 tests choose
	// formatting, never geometry.
	"mpq/internal/geometry": {"Halfspace.String"},
}

var Analyzer = &analysis.Analyzer{
	Name: "mpqfloateq",
	Doc:  "flag exact ==/!= on floating-point values in the epsilon-disciplined numeric packages",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Collect(pass)
	dirs.ReportUndocumented(pass, directive.FloatExact)

	if !directive.InScope(pass.Pkg.Path(), ScopePkgs) {
		return nil, nil
	}
	approved := make(map[string]bool)
	for _, name := range ApprovedHelpers[pass.Pkg.Path()] {
		approved[name] = true
	}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if approved[funcKey(fd)] {
				continue
			}
			checkBody(pass, dirs, fd.Body)
		}
	}
	return nil, nil
}

// funcKey names a function for the allowlist: "Name" for functions,
// "Type.Name" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkBody(pass *analysis.Pass, dirs *directive.Set, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !isFloat(pass, n.X) && !isFloat(pass, n.Y) {
				return true
			}
			if selfCompare(n) {
				return true // x != x is the NaN test — exact by design
			}
			if dirs.Allowed(directive.FloatExact, n.Pos()) {
				return true
			}
			pass.Reportf(n.OpPos, "exact %s on floating-point values: use an epsilon comparator (geometry.CompareEps discipline), or annotate a deliberately exact test //mpq:floatexact <reason>", n.Op)
		case *ast.SwitchStmt:
			if n.Tag != nil && isFloat(pass, n.Tag) && !dirs.Allowed(directive.FloatExact, n.Pos()) {
				pass.Reportf(n.Switch, "switch on a floating-point value compares exactly; use epsilon comparisons, or annotate //mpq:floatexact <reason>")
			}
		}
		return true
	})
}

func isFloat(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// selfCompare recognizes `x op x` for a side-effect-free x.
func selfCompare(n *ast.BinaryExpr) bool {
	return exprString(n.X) != "" && exprString(n.X) == exprString(n.Y)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		// x[i] != x[i] with simple operands.
		if x, i := exprString(e.X), exprString(e.Index); x != "" && i != "" {
			return x + "[" + i + "]"
		}
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}
