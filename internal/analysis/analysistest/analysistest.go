// Package analysistest is a minimal offline stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over a fixture package under testdata/src/<importpath> and checks
// its diagnostics against `// want "regexp"` comments.
//
// Fixtures are parsed and type-checked with the standard library's
// source importer, so they may import any std package but nothing
// else. Object and package facts are backed by an in-memory store,
// which is all a single-package fixture needs. The driver-level fact
// propagation across packages is exercised by the real runs of
// cmd/mpqlint in CI, not here.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// One shared FileSet + source importer: the importer memoizes
// type-checked std packages, so successive Run calls in one test
// binary pay the source-import cost once.
var (
	mu   sync.Mutex
	fset = token.NewFileSet()
	imp  = importer.ForCompiler(fset, "source", nil)
)

// Run analyzes the fixture package with import path pkgpath rooted at
// dir/testdata/src/pkgpath and reports mismatches between the
// analyzer's diagnostics and the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	src := filepath.Join(dir, "testdata", "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(src, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files under %s", src)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var diags []analysis.Diagnostic
	objFacts := make(map[factKey]analysis.Fact)
	pkgFacts := make(map[reflect.Type]analysis.Fact)
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			f, ok := objFacts[factKey{obj, reflect.TypeOf(fact)}]
			if ok {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			}
			return ok
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			objFacts[factKey{obj, reflect.TypeOf(fact)}] = fact
		},
		ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
			f, ok := pkgFacts[reflect.TypeOf(fact)]
			if ok {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			}
			return ok
		},
		ExportPackageFact: func(fact analysis.Fact) { pkgFacts[reflect.TypeOf(fact)] = fact },
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for k, f := range objFacts {
				out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for _, f := range pkgFacts {
				out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
			}
			return out
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	check(t, files, diags)
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// check matches diagnostics against want comments one-to-one: every
// want must be hit by exactly one diagnostic on its line, and every
// diagnostic must hit a want.
func check(t *testing.T, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", position(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
