package catalog

import (
	"errors"
	"fmt"

	"mpq/internal/geometry"
)

// Predicate is an equality predicate on a table column. Its selectivity
// is either a constant or one of the optimization parameters (an
// unspecified predicate of a query template, Scenario 1 of the paper).
type Predicate struct {
	// Column names the predicate column (for display).
	Column string
	// ParamIndex is the index of the parameter representing the
	// selectivity, or -1 when the selectivity is the constant ConstSel.
	ParamIndex int
	// ConstSel is the constant selectivity used when ParamIndex < 0.
	ConstSel float64
}

// Parametric reports whether the predicate selectivity is a parameter.
func (p *Predicate) Parametric() bool { return p != nil && p.ParamIndex >= 0 }

// Table describes a base table.
type Table struct {
	// Name is the table name.
	Name string
	// Card is the base cardinality (number of rows).
	Card float64
	// TupleBytes is the width of a row in bytes.
	TupleBytes float64
	// Pred is the optional equality predicate on the table.
	Pred *Predicate
	// HasIndex reports whether an index exists on the predicate column.
	HasIndex bool
}

// JoinEdge is a join predicate between two tables with a fixed
// selectivity.
type JoinEdge struct {
	A, B TableID
	Sel  float64
}

// Schema is a query: the set of tables to join (Section 2: "a query is
// represented by a set of tables that need to be joined"), the join
// predicates, and the parameter space of unspecified predicate
// selectivities.
type Schema struct {
	Tables []Table
	Edges  []JoinEdge
	// NumParams is the dimensionality of the parameter space.
	NumParams int
	// ParamLo and ParamHi bound each parameter; when empty they default
	// to [0, 1] (selectivities).
	ParamLo, ParamHi []float64
}

// NumTables returns the number of tables.
func (s *Schema) NumTables() int { return len(s.Tables) }

// AllTables returns the set of all tables.
func (s *Schema) AllTables() TableSet { return FullSet(len(s.Tables)) }

// Validate checks structural consistency.
func (s *Schema) Validate() error {
	if len(s.Tables) == 0 {
		return errors.New("catalog: schema without tables")
	}
	if len(s.Tables) > 63 {
		return errors.New("catalog: more than 63 tables")
	}
	for i, t := range s.Tables {
		if t.Card <= 0 {
			return fmt.Errorf("catalog: table %d has non-positive cardinality", i)
		}
		if t.Pred != nil && t.Pred.ParamIndex >= s.NumParams {
			return fmt.Errorf("catalog: table %d references parameter %d (have %d)", i, t.Pred.ParamIndex, s.NumParams)
		}
		if t.Pred != nil && t.Pred.ParamIndex < 0 && (t.Pred.ConstSel <= 0 || t.Pred.ConstSel > 1) {
			return fmt.Errorf("catalog: table %d has invalid constant selectivity %v", i, t.Pred.ConstSel)
		}
	}
	for _, e := range s.Edges {
		if int(e.A) >= len(s.Tables) || int(e.B) >= len(s.Tables) || e.A == e.B {
			return fmt.Errorf("catalog: invalid edge %v-%v", e.A, e.B)
		}
		if e.Sel <= 0 || e.Sel > 1 {
			return fmt.Errorf("catalog: edge %v-%v has invalid selectivity %v", e.A, e.B, e.Sel)
		}
	}
	if s.ParamLo != nil && (len(s.ParamLo) != s.NumParams || len(s.ParamHi) != s.NumParams) {
		return errors.New("catalog: parameter bound length mismatch")
	}
	return nil
}

// ParameterBounds returns the per-parameter bounds, defaulting to
// [0.001, 1] per dimension: selectivities of equality predicates are
// positive and at most one.
func (s *Schema) ParameterBounds() (lo, hi geometry.Vector) {
	lo = geometry.NewVector(s.NumParams)
	hi = geometry.NewVector(s.NumParams)
	for i := 0; i < s.NumParams; i++ {
		if s.ParamLo != nil {
			lo[i], hi[i] = s.ParamLo[i], s.ParamHi[i]
		} else {
			lo[i], hi[i] = 0.001, 1
		}
	}
	return lo, hi
}

// ParameterSpace returns the parameter space X as a convex polytope (a
// box), the standard assumption of PWL-MPQ (Section 2).
func (s *Schema) ParameterSpace() *geometry.Polytope {
	lo, hi := s.ParameterBounds()
	return geometry.Box(lo, hi)
}

// PredSelectivity evaluates the predicate selectivity of table t at
// parameter vector x (1 when the table has no predicate).
func (s *Schema) PredSelectivity(t TableID, x geometry.Vector) float64 {
	p := s.Tables[t].Pred
	if p == nil {
		return 1
	}
	if p.ParamIndex >= 0 {
		return x[p.ParamIndex]
	}
	return p.ConstSel
}

// BaseOutputCard is the output cardinality of scanning table t with its
// predicate applied, at parameter vector x.
func (s *Schema) BaseOutputCard(t TableID, x geometry.Vector) float64 {
	return s.Tables[t].Card * s.PredSelectivity(t, x)
}

// OutputCard estimates the result cardinality of joining the tables in
// set at parameter vector x with the textbook product formula:
// product of filtered base cardinalities times the selectivities of all
// join edges inside the set.
func (s *Schema) OutputCard(set TableSet, x geometry.Vector) float64 {
	card := 1.0
	for _, t := range set.Tables() {
		card *= s.BaseOutputCard(t, x)
	}
	for _, e := range s.Edges {
		if set.Contains(e.A) && set.Contains(e.B) {
			card *= e.Sel
		}
	}
	return card
}

// HasEdgeBetween reports whether some join edge connects set a with set
// b, used for Cartesian-product postponement.
func (s *Schema) HasEdgeBetween(a, b TableSet) bool {
	for _, e := range s.Edges {
		if (a.Contains(e.A) && b.Contains(e.B)) || (a.Contains(e.B) && b.Contains(e.A)) {
			return true
		}
	}
	return false
}

// Connected reports whether the join graph restricted to set is
// connected. Empty and singleton sets are connected.
func (s *Schema) Connected(set TableSet) bool {
	if set.Count() <= 1 {
		return true
	}
	tables := set.Tables()
	start := SetOf(tables[0])
	frontier := start
	reached := start
	for !frontier.IsEmpty() {
		var next TableSet
		for _, e := range s.Edges {
			if set.Contains(e.A) && set.Contains(e.B) {
				if frontier.Contains(e.A) && !reached.Contains(e.B) {
					next = next.With(e.B)
				}
				if frontier.Contains(e.B) && !reached.Contains(e.A) {
					next = next.With(e.A)
				}
			}
		}
		reached = reached.Union(next)
		frontier = next
	}
	return reached == set
}

// ParametricTables lists the tables whose predicate selectivity is a
// parameter.
func (s *Schema) ParametricTables() []TableID {
	var out []TableID
	for i, t := range s.Tables {
		if t.Pred.Parametric() {
			out = append(out, TableID(i))
		}
	}
	return out
}
