package catalog

import (
	"testing"

	"mpq/internal/geometry"
)

func TestTableSetBasics(t *testing.T) {
	s := SetOf(0, 2, 5)
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if !s.Contains(2) || s.Contains(1) {
		t.Error("Contains wrong")
	}
	if got := s.With(1).Count(); got != 4 {
		t.Errorf("With: count = %d, want 4", got)
	}
	if got := s.Without(2).Count(); got != 2 {
		t.Errorf("Without: count = %d, want 2", got)
	}
	if s.Union(SetOf(1)).Count() != 4 {
		t.Error("Union wrong")
	}
	if s.Intersect(SetOf(2, 3)).Count() != 1 {
		t.Error("Intersect wrong")
	}
	if s.Minus(SetOf(0)).Contains(0) {
		t.Error("Minus wrong")
	}
	tables := s.Tables()
	if len(tables) != 3 || tables[0] != 0 || tables[1] != 2 || tables[2] != 5 {
		t.Errorf("Tables = %v", tables)
	}
	if SetOf(3).Single() != 3 {
		t.Error("Single wrong")
	}
	if s.String() != "{T1,T3,T6}" {
		t.Errorf("String = %q", s.String())
	}
	if FullSet(3) != SetOf(0, 1, 2) {
		t.Error("FullSet wrong")
	}
}

func TestSubsetsProper(t *testing.T) {
	s := SetOf(0, 1, 2)
	var subs []TableSet
	s.SubsetsProper(func(sub TableSet) bool {
		subs = append(subs, sub)
		return true
	})
	// 2^3 - 2 = 6 proper non-empty subsets.
	if len(subs) != 6 {
		t.Fatalf("got %d subsets, want 6", len(subs))
	}
	seen := map[TableSet]bool{}
	for _, sub := range subs {
		if sub.IsEmpty() || sub == s {
			t.Errorf("subset %v not proper/non-empty", sub)
		}
		if sub.Minus(s) != 0 {
			t.Errorf("subset %v not within %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
	}
	// Early exit.
	count := 0
	s.SubsetsProper(func(sub TableSet) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early exit visited %d, want 2", count)
	}
}

func chainSchema() *Schema {
	return &Schema{
		Tables: []Table{
			{Name: "T1", Card: 1000, TupleBytes: 100, Pred: &Predicate{Column: "a", ParamIndex: 0}, HasIndex: true},
			{Name: "T2", Card: 2000, TupleBytes: 100},
			{Name: "T3", Card: 4000, TupleBytes: 100},
		},
		Edges: []JoinEdge{
			{A: 0, B: 1, Sel: 0.01},
			{A: 1, B: 2, Sel: 0.001},
		},
		NumParams: 1,
	}
}

func TestSchemaValidate(t *testing.T) {
	s := chainSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := chainSchema()
	bad.Tables[0].Card = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cardinality accepted")
	}
	bad = chainSchema()
	bad.Tables[0].Pred.ParamIndex = 5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range parameter accepted")
	}
	bad = chainSchema()
	bad.Edges[0].Sel = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero join selectivity accepted")
	}
	bad = chainSchema()
	bad.Edges[0].B = 9
	if err := bad.Validate(); err == nil {
		t.Error("dangling edge accepted")
	}
	if err := (&Schema{}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestSelectivityAndCard(t *testing.T) {
	s := chainSchema()
	x := geometry.Vector{0.5}
	if got := s.PredSelectivity(0, x); got != 0.5 {
		t.Errorf("parametric selectivity = %v, want 0.5", got)
	}
	if got := s.PredSelectivity(1, x); got != 1 {
		t.Errorf("no-predicate selectivity = %v, want 1", got)
	}
	if got := s.BaseOutputCard(0, x); got != 500 {
		t.Errorf("base card = %v, want 500", got)
	}
	// {T1,T2}: 1000*0.5 * 2000 * 0.01 = 10000.
	if got := s.OutputCard(SetOf(0, 1), x); got != 10000 {
		t.Errorf("join card = %v, want 10000", got)
	}
	// Full: 10000 * 4000 * 0.001 = 40000.
	if got := s.OutputCard(SetOf(0, 1, 2), x); got != 40000 {
		t.Errorf("full card = %v, want 40000", got)
	}
	// Disconnected set {T1,T3}: no edge applies.
	if got := s.OutputCard(SetOf(0, 2), x); got != 500*4000 {
		t.Errorf("cartesian card = %v, want %v", got, 500.0*4000)
	}
}

func TestConnectivity(t *testing.T) {
	s := chainSchema()
	if !s.Connected(SetOf(0, 1)) || !s.Connected(SetOf(0, 1, 2)) {
		t.Error("connected sets reported disconnected")
	}
	if s.Connected(SetOf(0, 2)) {
		t.Error("{T1,T3} reported connected in a chain")
	}
	if !s.Connected(SetOf(1)) || !s.Connected(TableSet(0)) {
		t.Error("trivial sets must be connected")
	}
	if !s.HasEdgeBetween(SetOf(0), SetOf(1, 2)) {
		t.Error("edge T1-T2 not found between {T1} and {T2,T3}")
	}
	if s.HasEdgeBetween(SetOf(0), SetOf(2)) {
		t.Error("phantom edge between T1 and T3")
	}
}

func TestParameterSpace(t *testing.T) {
	s := chainSchema()
	lo, hi := s.ParameterBounds()
	if len(lo) != 1 || lo[0] <= 0 || hi[0] != 1 {
		t.Errorf("default bounds = %v..%v", lo, hi)
	}
	space := s.ParameterSpace()
	if space.Dim() != 1 {
		t.Errorf("space dim = %d", space.Dim())
	}
	s.ParamLo, s.ParamHi = []float64{0.2}, []float64{0.8}
	lo, hi = s.ParameterBounds()
	if lo[0] != 0.2 || hi[0] != 0.8 {
		t.Errorf("custom bounds = %v..%v", lo, hi)
	}
}

func TestParametricTables(t *testing.T) {
	s := chainSchema()
	pts := s.ParametricTables()
	if len(pts) != 1 || pts[0] != 0 {
		t.Errorf("parametric tables = %v, want [0]", pts)
	}
}
