// Package catalog models the database schema and statistics that drive
// cost estimation: tables with cardinalities, optional equality
// predicates whose selectivities are either constants or optimization
// parameters, indexes, and join edges with selectivities. It matches the
// experimental setup of Section 7 of the paper: "Base tables are
// associated with equality predicates whose selectivities are
// represented by parameters; one parameter is required for each table
// with a predicate. Indices are available for each column with a
// predicate."
package catalog

import (
	"fmt"
	"math/bits"
	"strings"
)

// TableID identifies a table by its index in the schema.
type TableID int

// TableSet is a set of tables represented as a bitmask; it supports
// queries over up to 64 tables, far beyond the exhaustive optimization
// range.
type TableSet uint64

// SetOf builds a TableSet from table IDs.
func SetOf(ts ...TableID) TableSet {
	var s TableSet
	for _, t := range ts {
		s |= 1 << uint(t)
	}
	return s
}

// FullSet returns the set {0, ..., n-1}.
func FullSet(n int) TableSet {
	if n >= 64 {
		panic("catalog: table sets support at most 63 tables")
	}
	return TableSet((1 << uint(n)) - 1)
}

// Contains reports whether t is in the set.
func (s TableSet) Contains(t TableID) bool { return s&(1<<uint(t)) != 0 }

// With returns the set extended by t.
func (s TableSet) With(t TableID) TableSet { return s | 1<<uint(t) }

// Without returns the set with t removed.
func (s TableSet) Without(t TableID) TableSet { return s &^ (1 << uint(t)) }

// Union returns the union of s and o.
func (s TableSet) Union(o TableSet) TableSet { return s | o }

// Intersect returns the intersection of s and o.
func (s TableSet) Intersect(o TableSet) TableSet { return s & o }

// Minus returns s \ o.
func (s TableSet) Minus(o TableSet) TableSet { return s &^ o }

// IsEmpty reports whether the set has no tables.
func (s TableSet) IsEmpty() bool { return s == 0 }

// Count returns the number of tables in the set.
func (s TableSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Tables lists the members in ascending order.
func (s TableSet) Tables() []TableID {
	out := make([]TableID, 0, s.Count())
	for m := s; m != 0; {
		t := TableID(bits.TrailingZeros64(uint64(m)))
		out = append(out, t)
		m &= m - 1
	}
	return out
}

// Single returns the only member of a singleton set.
func (s TableSet) Single() TableID {
	if s.Count() != 1 {
		panic(fmt.Sprintf("catalog: Single on set of size %d", s.Count()))
	}
	return TableID(bits.TrailingZeros64(uint64(s)))
}

// SubsetsProper invokes fn for every non-empty proper subset of s,
// enumerated with the standard bitmask-subset trick.
func (s TableSet) SubsetsProper(fn func(sub TableSet) bool) {
	for sub := (s - 1) & s; sub != 0; sub = (sub - 1) & s {
		if !fn(sub) {
			return
		}
	}
}

// String renders the set as {T1, T3, ...} using 1-based table numbers.
func (s TableSet) String() string {
	parts := make([]string, 0, s.Count())
	for _, t := range s.Tables() {
		parts = append(parts, fmt.Sprintf("T%d", int(t)+1))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
