// Package refine implements the generation-refinement subsystem
// between the optimizer and the serving layer: the machinery that turns
// a deadline-budgeted Prepare from "eat the full optimization" into
// "serve a coarse ε-generation now, refine in the background".
//
// A Ladder is a descending sequence of approximation factors (e.g.
// 0.5 → 0.1 → 0). The serving layer answers a deadline-bounded Prepare
// with the coarsest generation, then schedules the remaining steps on a
// Refiner: a background executor with a server-lifecycle context whose
// jobs recompute the template at each finer ε and atomically swap the
// result into the serve cache and shared store. Every generation is a
// full, regret-certified plan set (PR 8's ε contract: every dropped
// plan is within (1+ε) of a kept one everywhere), so a pick served
// mid-refinement is coarse but never wrong.
//
// The Refiner executes jobs serially on one goroutine — background
// refinement load is bounded by construction — while the optimization
// inside each job parallelizes elastically through core.DonorPool
// donation (idle serving workers join mid-run, see internal/core).
// Shutdown is part of the failure-domain contract: cancelling the
// lifecycle context aborts the in-flight job at the optimizer's
// passive checkpoints and drains the queue, and Close does not return
// until the subsystem is quiescent.
package refine

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Ladder is a strictly descending sequence of approximation factors,
// each in [0, 1). The first entry is the coarsest generation a
// deadline-bounded Prepare may serve; a template's effective ladder
// always ends at its own resolved ε (see For).
type Ladder []float64

// ParseLadder parses a comma-separated factor list ("0.5,0.1,0") and
// validates it.
func ParseLadder(s string) (Ladder, error) {
	var l Ladder
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("refine: ladder step %q: %w", part, err)
		}
		l = append(l, v)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// Validate checks the ladder invariants: non-empty, every factor in
// [0, 1), strictly descending (coarse to fine).
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return errors.New("refine: empty ladder")
	}
	for i, v := range l {
		if v < 0 || v >= 1 {
			return fmt.Errorf("refine: ladder step %g out of range [0, 1)", v)
		}
		if i > 0 && v >= l[i-1] {
			return fmt.Errorf("refine: ladder not strictly descending at step %g", v)
		}
	}
	return nil
}

// String renders the ladder in ParseLadder's format.
func (l Ladder) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// For returns the template-effective ladder for a resolved
// approximation factor: the configured steps strictly coarser than
// final, then final itself as the last generation. A single-step result
// means no coarse generation exists and anytime behavior degenerates to
// the exact path.
func (l Ladder) For(final float64) Ladder {
	out := make(Ladder, 0, len(l)+1)
	for _, v := range l {
		if v > final {
			out = append(out, v)
		}
	}
	return append(out, final)
}

// Jobs returns the refinement jobs that upgrade key from the resident
// generation at eps down to the ladder's final step, in execution
// order. l must be a template-effective ladder (see For); Gen indexes
// into it.
func (l Ladder) Jobs(key string, eps float64) []Job {
	var jobs []Job
	for i, v := range l {
		if v < eps {
			jobs = append(jobs, Job{Key: key, Epsilon: v, Gen: i, Final: i == len(l)-1})
		}
	}
	return jobs
}

// Job is one background refinement step: compute generation Gen of the
// plan set under Key at approximation factor Epsilon and swap it in.
type Job struct {
	Key     string
	Epsilon float64
	Gen     int  // index into the template-effective ladder (0 = coarsest)
	Final   bool // last ladder step: the template's resolved ε
}

// ErrObsolete is the Runner's skip sentinel: the generation this job
// would compute is already superseded by an equal-or-finer resident
// one (a peer refined first, or a straggling schedule). The job counts
// as Skipped and the chain continues.
var ErrObsolete = errors.New("refine: generation already superseded")

// Runner executes one refinement job. It runs on the Refiner's
// goroutine under the lifecycle context — a cancelled ctx must abort
// promptly (the optimizer's passive checkpoints give that for free).
type Runner func(ctx context.Context, job Job) error

// Stats is a snapshot of the refiner's counters. Pending and Running
// are gauges; the rest are monotonic.
type Stats struct {
	// Scheduled counts ladder steps enqueued for background refinement.
	Scheduled int64
	// Completed counts jobs whose generation was computed and swapped.
	Completed int64
	// Cancelled counts jobs aborted by shutdown or context
	// cancellation, including queued jobs dropped when their chain's
	// predecessor failed or the refiner closed.
	Cancelled int64
	// Failed counts jobs whose Runner returned a non-context error.
	Failed int64
	// Skipped counts jobs obsoleted by an already-finer resident
	// generation (ErrObsolete).
	Skipped int64
	// Pending is the number of queued jobs (gauge).
	Pending int64
	// Running is 1 while a job executes (gauge).
	Running int64
}

// Refiner executes refinement jobs serially in the background, FIFO
// across templates so no template's deep ladder starves another's
// first upgrade. All methods are safe for concurrent use.
type Refiner struct {
	runner Runner
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Job
	keys   map[string]int // queued jobs per key, for dedupe and chain drops
	stats  Stats
	closed bool

	wg sync.WaitGroup
}

// New starts a refiner whose jobs run under ctx — the server lifecycle
// context, never context.Background(): cancelling it (or calling
// Close) aborts the in-flight job and drains the queue.
func New(ctx context.Context, runner Runner) *Refiner {
	rctx, cancel := context.WithCancel(ctx)
	r := &Refiner{runner: runner, ctx: rctx, cancel: cancel, keys: make(map[string]int)}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(2)
	go r.watch()
	go r.loop()
	return r
}

// watch turns lifecycle-context cancellation into a queue shutdown.
func (r *Refiner) watch() {
	defer r.wg.Done()
	<-r.ctx.Done()
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Schedule enqueues a key's refinement chain. A key with jobs already
// queued is not re-enqueued (the pending chain subsumes the request);
// the return value reports whether the jobs were accepted.
func (r *Refiner) Schedule(jobs []Job) bool {
	if len(jobs) == 0 {
		return false
	}
	key := jobs[0].Key
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.keys[key] > 0 {
		return false
	}
	r.queue = append(r.queue, jobs...)
	r.keys[key] = len(jobs)
	r.stats.Scheduled += int64(len(jobs))
	r.cond.Broadcast()
	return true
}

// loop is the background executor: one job at a time, FIFO.
func (r *Refiner) loop() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for !r.closed && len(r.queue) == 0 {
			r.cond.Wait()
		}
		if r.closed {
			r.stats.Cancelled += int64(len(r.queue))
			r.queue = nil
			clear(r.keys)
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		job := r.queue[0]
		r.queue = append(r.queue[:0:0], r.queue[1:]...)
		r.keys[job.Key]--
		r.stats.Running = 1
		r.mu.Unlock()

		err := r.runner(r.ctx, job)

		r.mu.Lock()
		r.stats.Running = 0
		switch {
		case err == nil:
			r.stats.Completed++
		case errors.Is(err, ErrObsolete):
			r.stats.Skipped++
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			r.stats.Cancelled++
			r.dropChainLocked(job.Key)
		default:
			r.stats.Failed++
			// The chain's later steps would hit the same failure (or
			// compute a generation whose predecessor never landed);
			// drop them — a fresh Prepare reschedules.
			r.dropChainLocked(job.Key)
		}
		if r.keys[job.Key] == 0 {
			delete(r.keys, job.Key)
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// dropChainLocked removes the queued remainder of key's chain,
// counting each dropped job as cancelled.
func (r *Refiner) dropChainLocked(key string) {
	if r.keys[key] == 0 {
		return
	}
	kept := r.queue[:0]
	for _, j := range r.queue {
		if j.Key == key {
			r.stats.Cancelled++
			continue
		}
		kept = append(kept, j)
	}
	r.queue = kept
	r.keys[key] = 0
}

// Wait blocks until the refiner is quiescent — no queued or running
// job — or ctx is done. Closing (or cancelling the lifecycle context)
// quiesces the refiner, but not instantaneously: the in-flight job
// still has to abort at a checkpoint and the queue still has to drain
// as cancelled, so Wait keeps blocking until the executor has actually
// retired the work rather than fast-pathing on the closed flag — the
// flag flips the moment the lifecycle context is cancelled, while the
// ledger settles only when the executor observes it.
func (r *Refiner) Wait(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		case <-stop:
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.queue) == 0 && r.stats.Running == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		r.cond.Wait()
	}
}

// Stats returns a snapshot of the counters.
func (r *Refiner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Pending = int64(len(r.queue))
	return st
}

// Close cancels the lifecycle context, aborts the in-flight job, drains
// the queue (queued jobs count as cancelled) and waits until both
// internal goroutines have retired. Safe to call more than once.
func (r *Refiner) Close() {
	r.cancel()
	r.wg.Wait()
}
