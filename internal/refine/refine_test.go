package refine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseLadder(t *testing.T) {
	good := map[string]string{
		"0.5,0.1,0":   "0.5,0.1,0",
		" 0.5, 0.25 ": "0.5,0.25",
		"0.9":         "0.9",
	}
	for in, want := range good {
		l, err := ParseLadder(in)
		if err != nil {
			t.Errorf("ParseLadder(%q): %v", in, err)
			continue
		}
		if l.String() != want {
			t.Errorf("ParseLadder(%q) = %q, want %q", in, l.String(), want)
		}
	}
	bad := []string{"", "0.1,0.5", "0.5,0.5", "1.0,0.5", "-0.1", "x"}
	for _, in := range bad {
		if _, err := ParseLadder(in); err == nil {
			t.Errorf("ParseLadder(%q) accepted", in)
		}
	}
}

func TestLadderForAndJobs(t *testing.T) {
	l := Ladder{0.5, 0.1}
	eff := l.For(0)
	if eff.String() != "0.5,0.1,0" {
		t.Fatalf("For(0) = %q", eff.String())
	}
	// A template whose own ε sits inside the ladder truncates it.
	if got := l.For(0.25).String(); got != "0.5,0.25" {
		t.Errorf("For(0.25) = %q, want 0.5,0.25", got)
	}
	// Jobs from the coarsest resident generation: every finer step.
	jobs := eff.Jobs("k", 0.5)
	if len(jobs) != 2 {
		t.Fatalf("Jobs from 0.5 = %+v, want 2 steps", jobs)
	}
	if jobs[0] != (Job{Key: "k", Epsilon: 0.1, Gen: 1}) {
		t.Errorf("first job = %+v", jobs[0])
	}
	if jobs[1] != (Job{Key: "k", Epsilon: 0, Gen: 2, Final: true}) {
		t.Errorf("final job = %+v", jobs[1])
	}
	// Already final: nothing to do.
	if jobs := eff.Jobs("k", 0); len(jobs) != 0 {
		t.Errorf("Jobs from final = %+v, want none", jobs)
	}
}

// TestRefinerRunsChainsInOrder: jobs execute serially, FIFO, each chain
// in ladder order, and Wait observes quiescence.
func TestRefinerRunsChainsInOrder(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := New(ctx, func(_ context.Context, job Job) error {
		mu.Lock()
		ran = append(ran, fmt.Sprintf("%s@%g", job.Key, job.Epsilon))
		mu.Unlock()
		return nil
	})
	defer r.Close()

	eff := Ladder{0.5, 0.1}.For(0)
	if !r.Schedule(eff.Jobs("a", 0.5)) {
		t.Fatal("schedule a refused")
	}
	if !r.Schedule(eff.Jobs("b", 0.5)) {
		t.Fatal("schedule b refused")
	}
	// A key with queued work is deduped.
	if r.Schedule(eff.Jobs("a", 0.5)) {
		t.Error("duplicate chain for a accepted")
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := r.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := fmt.Sprint(ran)
	mu.Unlock()
	want := fmt.Sprint([]string{"a@0.1", "a@0", "b@0.1", "b@0"})
	if got != want {
		t.Errorf("execution order %s, want %s", got, want)
	}
	st := r.Stats()
	if st.Scheduled != 4 || st.Completed != 4 || st.Pending != 0 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRefinerDropsChainOnFailure: a failing step cancels the rest of
// its chain but not other keys'; an ErrObsolete step is skipped and
// the chain continues.
func TestRefinerFailureAndObsolete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var ran []string
	r := New(ctx, func(_ context.Context, job Job) error {
		mu.Lock()
		ran = append(ran, fmt.Sprintf("%s@%g", job.Key, job.Epsilon))
		mu.Unlock()
		if job.Key == "bad" && job.Epsilon == 0.1 {
			return errors.New("boom")
		}
		if job.Key == "peer" && job.Epsilon == 0.1 {
			return ErrObsolete // a peer already refined this step
		}
		return nil
	})
	defer r.Close()

	eff := Ladder{0.5, 0.1}.For(0)
	r.Schedule(eff.Jobs("bad", 0.5))
	r.Schedule(eff.Jobs("peer", 0.5))
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := r.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := fmt.Sprint(ran)
	mu.Unlock()
	// bad@0 must not run; peer@0 must.
	want := fmt.Sprint([]string{"bad@0.1", "peer@0.1", "peer@0"})
	if got != want {
		t.Errorf("execution order %s, want %s", got, want)
	}
	st := r.Stats()
	if st.Failed != 1 || st.Cancelled != 1 || st.Skipped != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The failed key's chain is gone: it can be rescheduled.
	if !r.Schedule(eff.Jobs("bad", 0.5)) {
		t.Error("reschedule after failure refused")
	}
}

// TestRefinerCloseQuiesces: Close aborts the in-flight job through the
// lifecycle context, drains the queue as cancelled, and only returns
// once the executor has retired.
func TestRefinerCloseQuiesces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once // job b may also start if it wins the race with the close watcher
	r := New(ctx, func(jctx context.Context, job Job) error {
		once.Do(func() { close(started) })
		<-jctx.Done() // a long optimization aborted at a checkpoint
		return jctx.Err()
	})
	eff := Ladder{0.5}.For(0)
	r.Schedule(eff.Jobs("a", 0.5)) // one in-flight…
	r.Schedule(eff.Jobs("b", 0.5)) // …one queued
	<-started
	r.Close()
	st := r.Stats()
	if st.Running != 0 || st.Pending != 0 {
		t.Fatalf("refiner not quiescent after Close: %+v", st)
	}
	if st.Cancelled != 2 {
		t.Errorf("cancelled = %d, want 2 (in-flight + queued)", st.Cancelled)
	}
	// Post-close schedules are refused.
	if r.Schedule(eff.Jobs("c", 0.5)) {
		t.Error("Schedule accepted after Close")
	}
	// Wait on a closed refiner returns immediately.
	if err := r.Wait(context.Background()); err != nil {
		t.Error(err)
	}
}
