package core

import (
	"mpq/internal/catalog"
	"mpq/internal/geometry"
)

// Alternative pairs an operator name with a cost: for scans the full
// cost of producing the table's (filtered) tuples, for joins the cost of
// executing only the final join step.
type Alternative struct {
	Op   string
	Cost Cost
}

// CostModel supplies operator alternatives and their parametric cost
// functions to the optimizer. The concrete Cost type must match the
// Algebra in use. When Options.Workers enables the parallel wavefront,
// ScanAlternatives and JoinAlternatives may be called from multiple
// goroutines concurrently; implementations must be read-only or
// internally synchronized (the cloud model and StaticModel are
// read-only).
type CostModel interface {
	// Space is the parameter space X, a convex polytope (the standard
	// PWL-MPQ assumption, Section 2).
	Space() *geometry.Polytope
	// MetricNames names the cost metrics, index-aligned with cost
	// vector components.
	MetricNames() []string
	// ScanAlternatives lists the access paths for a base table.
	ScanAlternatives(t catalog.TableID) []Alternative
	// JoinAlternatives lists the join operators applicable to joining
	// the results of left and right (left is the build side), with the
	// cost of the final join step.
	JoinAlternatives(left, right catalog.TableSet) []Alternative
}

// StaticModel is a CostModel for a single result with an explicit list
// of alternative plans, used for the paper's hand-constructed examples
// (Example 2, Figures 4-6) and for unit tests: every alternative is an
// access path of the single pseudo-table.
type StaticModel struct {
	ParamSpace *geometry.Polytope
	Metrics    []string
	Plans      []Alternative
}

// StaticSchema returns the one-table schema matching a StaticModel.
func StaticSchema(numParams int, lo, hi []float64) *catalog.Schema {
	return &catalog.Schema{
		Tables:    []catalog.Table{{Name: "T1", Card: 1, TupleBytes: 1}},
		NumParams: numParams,
		ParamLo:   lo,
		ParamHi:   hi,
	}
}

// Space implements CostModel.
func (m *StaticModel) Space() *geometry.Polytope { return m.ParamSpace }

// MetricNames implements CostModel.
func (m *StaticModel) MetricNames() []string { return m.Metrics }

// ScanAlternatives implements CostModel.
func (m *StaticModel) ScanAlternatives(t catalog.TableID) []Alternative { return m.Plans }

// JoinAlternatives implements CostModel; a StaticModel has no joins.
func (m *StaticModel) JoinAlternatives(left, right catalog.TableSet) []Alternative { return nil }
