package core_test

import (
	"fmt"
	"testing"

	"mpq/internal/baseline"
	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/region"
	"mpq/internal/workload"
)

func cloudSetup(t *testing.T, tables, params int, shape workload.Shape, seed int64) (*catalog.Schema, *cloud.Model, *geometry.Context) {
	t.Helper()
	schema, err := workload.Generate(workload.Config{Tables: tables, Params: params, Shape: shape, Seed: seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return schema, model, ctx
}

func sampleParams(schema *catalog.Schema, perDim int) []geometry.Vector {
	lo, hi := schema.ParameterBounds()
	return geometry.SamplePointsInBox(lo, hi, perDim, 64)
}

// TestTheorem3Completeness is the executable form of the paper's main
// correctness result: the plan set produced by PWL-RRPA must contain,
// for every possible plan p and every parameter point x, a plan that
// weakly dominates p at x. We verify against exhaustive enumeration of
// the full bushy plan space on randomly generated chain and star
// queries.
func TestTheorem3Completeness(t *testing.T) {
	cases := []struct {
		tables, params int
		shape          workload.Shape
	}{
		{3, 1, workload.Chain},
		{4, 1, workload.Chain},
		{4, 1, workload.Star},
		{3, 2, workload.Chain},
		{4, 2, workload.Star},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%s-%dt-%dp-seed%d", tc.shape, tc.tables, tc.params, seed)
			t.Run(name, func(t *testing.T) {
				schema, model, ctx := cloudSetup(t, tc.tables, tc.params, tc.shape, seed)
				opts := core.DefaultOptions()
				opts.Context = ctx
				res, err := core.Optimize(schema, model, opts)
				if err != nil {
					t.Fatalf("optimize: %v", err)
				}
				// Ground truth: enumerate the full bushy plan space with
				// the LP-free pointwise algebra over the sample grid.
				points := sampleParams(schema, 5)
				pointwise := &baseline.PointwiseAlgebra{Points: points}
				all := baseline.EnumerateAll(schema, model, pointwise, true)
				if len(all) == 0 {
					t.Fatal("no plans enumerated")
				}
				pwlAlg := core.NewPWLAlgebra(geometry.NewContext(), 2)
				for _, x := range points {
					keptCosts := make([]geometry.Vector, len(res.Plans))
					for i, kept := range res.Plans {
						keptCosts[i] = pwlAlg.Eval(kept.Cost, x)
					}
					for _, p := range all {
						pc := pointwise.Eval(p.Cost, x)
						covered := false
						for _, kc := range keptCosts {
							if weaklyDominatesTol(kc, pc, 1e-6) {
								covered = true
								break
							}
						}
						if !covered {
							t.Fatalf("plan %v with cost %v at x=%v not dominated by any of %d kept plans",
								p.Plan, pc, x, len(res.Plans))
						}
					}
				}
			})
		}
	}
}

func weaklyDominatesTol(a, b geometry.Vector, rtol float64) bool {
	for i := range a {
		if a[i] > b[i]+rtol*(1+b[i]) {
			return false
		}
	}
	return true
}

// TestCompletenessAcrossOptions re-runs the completeness check under
// every combination of emptiness strategy and refinement flags: the
// refinements must not change the correctness guarantee.
func TestCompletenessAcrossOptions(t *testing.T) {
	schema, model, _ := cloudSetup(t, 4, 1, workload.Chain, 11)
	algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
	all := baseline.EnumerateAll(schema, model, algebra, true)

	for _, strat := range []region.EmptinessStrategy{region.StrategyBemporad, region.StrategyCoverDiff} {
		for _, points := range []int{0, 16} {
			for _, elim := range []bool{false, true} {
				name := fmt.Sprintf("%v-pts%d-elim%v", strat, points, elim)
				t.Run(name, func(t *testing.T) {
					ctx := geometry.NewContext()
					opts := core.Options{
						Region: region.Options{
							Strategy:                  strat,
							RelevancePoints:           points,
							EliminateRedundantCutouts: elim,
						},
						PostponeCartesian: true,
						Context:           ctx,
					}
					res, err := core.Optimize(schema, model, opts)
					if err != nil {
						t.Fatalf("optimize: %v", err)
					}
					for _, x := range sampleParams(schema, 5) {
						front := baseline.TrueFrontAt(all, algebra, x)
						for _, f := range front {
							covered := false
							for _, kept := range res.Plans {
								if weaklyDominatesTol(algebra.Eval(kept.Cost, x), f, 1e-6) {
									covered = true
									break
								}
							}
							if !covered {
								t.Fatalf("front point %v at x=%v uncovered", f, x)
							}
						}
					}
				})
			}
		}
	}
}

// TestOptimizeKeepPerSet verifies intermediate plan sets are retained on
// request and every stored table set has at least one plan.
func TestOptimizeKeepPerSet(t *testing.T) {
	schema, model, ctx := cloudSetup(t, 4, 1, workload.Chain, 3)
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.KeepPerSet = true
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.PerSet == nil {
		t.Fatal("PerSet not populated")
	}
	// Chain over 4 tables: connected subsets are contiguous runs:
	// 4 singletons + 3 pairs + 2 triples + 1 quad = 10.
	if len(res.PerSet) != 10 {
		t.Errorf("PerSet has %d table sets, want 10 (connected subsets of a 4-chain)", len(res.PerSet))
	}
	for set, plans := range res.PerSet {
		if len(plans) == 0 {
			t.Errorf("table set %v has empty plan set", set)
		}
		for _, info := range plans {
			if info.Plan.Set != set {
				t.Errorf("plan %v stored under wrong set %v", info.Plan, set)
			}
		}
	}
}

// TestPostponeCartesianReducesWork: with Cartesian postponement the
// optimizer must create no more plans than without, and both must cover
// the true Pareto front.
func TestPostponeCartesianReducesWork(t *testing.T) {
	schema, model, _ := cloudSetup(t, 4, 1, workload.Chain, 5)
	run := func(postpone bool) *core.Result {
		opts := core.DefaultOptions()
		opts.PostponeCartesian = postpone
		opts.Context = geometry.NewContext()
		res, err := core.Optimize(schema, model, opts)
		if err != nil {
			t.Fatalf("optimize(postpone=%v): %v", postpone, err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if with.Stats.CreatedPlans >= without.Stats.CreatedPlans {
		t.Errorf("postponement created %d plans, without %d — expected fewer",
			with.Stats.CreatedPlans, without.Stats.CreatedPlans)
	}
	// Both plan sets must mutually cover each other at sample points.
	algebra := core.NewPWLAlgebra(geometry.NewContext(), 2)
	for _, x := range sampleParams(schema, 5) {
		for _, a := range with.Plans {
			ac := algebra.Eval(a.Cost, x)
			covered := false
			for _, b := range without.Plans {
				if weaklyDominatesTol(algebra.Eval(b.Cost, x), ac, 1e-6) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("plan %v at x=%v not covered by full search space result", a.Plan, x)
			}
		}
	}
}
