package core_test

import (
	"fmt"
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/workload"
)

// optimizeWorkload runs one optimizer invocation on a generated query
// with the given worker count and returns the result.
func optimizeWorkload(t *testing.T, cfg workload.Config, regionOpts *core.Options, workers int) *core.Result {
	t.Helper()
	schema, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	if regionOpts != nil {
		opts = *regionOpts
	}
	opts.Context = ctx
	opts.Workers = workers
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// planKey renders a plan tree and its relevance footprint for
// order-insensitive comparison.
func planKey(info *core.PlanInfo) string {
	return fmt.Sprintf("%s cutouts=%d", planString(info.Plan), info.RR.NumCutouts())
}

func planString(n *plan.Node) string {
	if n.IsScan() {
		return fmt.Sprintf("%s(%d)", n.Op, n.Table)
	}
	return fmt.Sprintf("%s(%s,%s)", n.Op, planString(n.Left), planString(n.Right))
}

// TestParallelWavefrontDeterminism asserts the historical determinism
// contract, now upheld by the dependency scheduler: for a fixed
// workload seed, any worker count produces the identical Pareto plan
// set (same plans in the same order) and identical aggregate
// statistics — created plans, pruned plans, and every geometry counter
// including the Figure 12 LP count. Running this under -race
// additionally exercises the reentrant solver and the synchronized
// Chebyshev memo. TestSchedulerStoreEquivalence sharpens the plan-set
// half of this contract to byte-identical store documents.
func TestParallelWavefrontDeterminism(t *testing.T) {
	cases := []workload.Config{
		{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 3},
		{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 7},
		{Tables: 4, Params: 2, Shape: workload.Star, Seed: 11},
	}
	for _, cfg := range cases {
		t.Run(fmt.Sprintf("%s-%dp-%dt", cfg.Shape, cfg.Params, cfg.Tables), func(t *testing.T) {
			seq := optimizeWorkload(t, cfg, nil, 1)
			for _, workers := range []int{2, 4} {
				par := optimizeWorkload(t, cfg, nil, workers)
				if par.Stats.Workers != workers {
					t.Fatalf("run used %d workers, want %d", par.Stats.Workers, workers)
				}
				if got, want := len(par.Plans), len(seq.Plans); got != want {
					t.Fatalf("workers=%d: %d final plans, sequential %d", workers, got, want)
				}
				for i := range par.Plans {
					if g, w := planKey(par.Plans[i]), planKey(seq.Plans[i]); g != w {
						t.Errorf("workers=%d: plan %d = %s, sequential %s", workers, i, g, w)
					}
				}
				if par.Stats.CreatedPlans != seq.Stats.CreatedPlans ||
					par.Stats.PrunedPlans != seq.Stats.PrunedPlans ||
					par.Stats.FinalPlans != seq.Stats.FinalPlans ||
					par.Stats.MaxPlansPerSet != seq.Stats.MaxPlansPerSet {
					t.Errorf("workers=%d: plan stats %+v, sequential %+v", workers, par.Stats, seq.Stats)
				}
				if par.Stats.Geometry != seq.Stats.Geometry {
					t.Errorf("workers=%d: geometry stats %v, sequential %v",
						workers, par.Stats.Geometry, seq.Stats.Geometry)
				}
			}
		})
	}
}

// TestParallelFallbackForNonForkableAlgebra: a custom algebra that does
// not implement ForkableAlgebra must force the sequential path instead
// of racing on shared solver state.
func TestParallelFallbackForNonForkableAlgebra(t *testing.T) {
	schema, err := workload.Generate(workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = 4
	opts.Algebra = nonForkable{core.NewPWLAlgebra(ctx, 2)}
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("non-forkable algebra ran with %d workers, want 1", res.Stats.Workers)
	}
}

// nonForkable hides the Fork method of the wrapped algebra.
type nonForkable struct{ inner core.Algebra }

func (n nonForkable) Dom(c1, c2 core.Cost) []*geometry.Polytope { return n.inner.Dom(c1, c2) }
func (n nonForkable) Accumulate(step, c1, c2 core.Cost) core.Cost {
	return n.inner.Accumulate(step, c1, c2)
}
func (n nonForkable) Eval(c core.Cost, x geometry.Vector) geometry.Vector {
	return n.inner.Eval(c, x)
}

// TestParallelKeepPerSet: the per-set snapshot must contain identical
// table sets with identically sized Pareto sets under any worker count.
func TestParallelKeepPerSet(t *testing.T) {
	mk := func(workers int) *core.Result {
		opts := core.DefaultOptions()
		opts.KeepPerSet = true
		opts.Workers = workers
		cfg := workload.Config{Tables: 5, Params: 2, Shape: workload.Star, Seed: 2}
		return optimizeWorkload(t, cfg, &opts, workers)
	}
	seq, par := mk(1), mk(3)
	if len(seq.PerSet) != len(par.PerSet) {
		t.Fatalf("per-set maps differ in size: %d vs %d", len(seq.PerSet), len(par.PerSet))
	}
	for set, plans := range seq.PerSet {
		pp, ok := par.PerSet[set]
		if !ok {
			t.Errorf("parallel run missing table set %v", set)
			continue
		}
		if len(pp) != len(plans) {
			t.Errorf("set %v: %d plans parallel, %d sequential", set, len(pp), len(plans))
		}
	}
	_ = catalog.TableSet(0)
}
