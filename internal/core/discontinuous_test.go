package core

import (
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// TestDiscontinuousCostFunctions: Section 2 notes that "PWL cost
// functions may have discontinuities between regions in which they are
// linear" — e.g. a plan whose cost jumps when a hash table stops
// fitting in memory. RRPA must handle plans whose dominance flips at a
// jump point.
func TestDiscontinuousCostFunctions(t *testing.T) {
	space := geometry.Interval(0, 1)
	// Plan "cliff": time 1 on [0, 0.5], jumps to 10 on [0.5, 1]
	// (discontinuous at 0.5); fees constant 1.
	cliff := pwl.NewMulti(
		pwl.NewFunction(
			pwl.Piece{Region: geometry.Interval(0, 0.5), W: geometry.Vector{0}, B: 1},
			pwl.Piece{Region: geometry.Interval(0.5, 1), W: geometry.Vector{0}, B: 10},
		),
		pwl.Constant(space, 1),
	)
	// Plan "steady": time 2 everywhere, fees 2.
	steady := pwl.NewMulti(pwl.Constant(space, 2), pwl.Constant(space, 2))
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "cliff", Cost: cliff},
		{Op: "steady", Cost: steady},
	})
	if len(res.Plans) != 2 {
		t.Fatalf("PPS size = %d, want 2", len(res.Plans))
	}
	byName := planNames(res)
	// cliff dominates steady on [0, 0.5] (1 <= 2 on time, 1 <= 2 fees);
	// steady is better on time beyond the jump but worse on fees, so
	// both stay relevant there... check the relevance regions.
	if !byName["cliff"].RR.Contains(geometry.Vector{0.25}, 1e-9) {
		t.Error("cliff should be relevant before the jump")
	}
	// steady is dominated before the jump (strictly worse on both).
	if byName["steady"].RR.Contains(geometry.Vector{0.25}, 1e-9) {
		t.Error("steady should be dominated before the jump")
	}
	if !byName["steady"].RR.Contains(geometry.Vector{0.75}, 1e-9) {
		t.Error("steady should be relevant after the jump (faster there)")
	}
	// Fronts flip across the discontinuity.
	ctx := geometry.NewContext()
	algebra := NewPWLAlgebra(ctx, 2)
	front := res.ParetoFrontAt(algebra, geometry.Vector{0.25})
	if len(front) != 1 || front[0].Plan.Op != "cliff" {
		t.Errorf("front before jump = %v, want just cliff", front)
	}
	front = res.ParetoFrontAt(algebra, geometry.Vector{0.75})
	if len(front) != 2 {
		t.Errorf("front after jump has %d plans, want 2 (time/fees tradeoff)", len(front))
	}
}

// TestBufferSpaceParameter: parameters need not be selectivities — the
// classical PQ literature also parameterizes on available buffer space
// (Section 1, Scenario 2). Model a plan whose cost falls with available
// buffer pages against a buffer-independent plan, on a non-unit
// parameter domain.
func TestBufferSpaceParameter(t *testing.T) {
	// Parameter: buffer pages in [16, 512].
	space := geometry.Interval(16, 512)
	memSensitive := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{-0.01}, 6), // time 6 - 0.01*pages
		pwl.Constant(space, 1),
	)
	memOblivious := pwl.NewMulti(
		pwl.Constant(space, 3.5),
		pwl.Constant(space, 1),
	)
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "memSensitive", Cost: memSensitive},
		{Op: "memOblivious", Cost: memOblivious},
	})
	if len(res.Plans) != 2 {
		t.Fatalf("PPS size = %d, want 2", len(res.Plans))
	}
	byName := planNames(res)
	// Crossover at pages = 250: memSensitive wins above, loses below.
	if byName["memSensitive"].RR.Contains(geometry.Vector{100}, 1e-9) {
		t.Error("memSensitive should be dominated at 100 pages")
	}
	if !byName["memSensitive"].RR.Contains(geometry.Vector{400}, 1e-9) {
		t.Error("memSensitive should be relevant at 400 pages")
	}
	if !byName["memOblivious"].RR.Contains(geometry.Vector{100}, 1e-9) {
		t.Error("memOblivious should be relevant at 100 pages")
	}
}
