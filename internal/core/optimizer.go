package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/region"
)

// Options configures an optimizer run.
type Options struct {
	// Region configures relevance regions (emptiness strategy and the
	// Section 6.2 refinements).
	Region region.Options
	// PostponeCartesian skips splits without a connecting join
	// predicate whenever an edged split exists, the heuristic of
	// state-of-the-art optimizers adopted by the paper's experiments.
	PostponeCartesian bool
	// Context supplies tolerances and LP counters; a fresh context is
	// created when nil. With Workers > 1 it remains the solver of the
	// first worker and receives the merged Stats of all workers.
	Context *geometry.Context
	// Algebra supplies cost operations; defaults to a PWLAlgebra over
	// Context with sum accumulation on every metric. Custom algebras
	// must implement ForkableAlgebra to enable the parallel wavefront.
	Algebra Algebra
	// KeepPerSet retains the Pareto plan sets of all intermediate table
	// sets in the result, for inspection and validation.
	KeepPerSet bool
	// Workers is the number of goroutines planning each wavefront of
	// equal-cardinality table sets (see DESIGN.md, "Parallel wavefront
	// RRPA"). Zero selects GOMAXPROCS; 1 runs the sequential path. Any
	// worker count produces identical plan sets and identical aggregate
	// geometry Stats: the wavefront barrier, the per-polytope Chebyshev
	// memo and per-worker solvers make results independent of
	// scheduling. The CostModel must tolerate concurrent calls when
	// Workers > 1.
	Workers int
}

// DefaultOptions mirrors the configuration of the paper's experiments.
func DefaultOptions() Options {
	return Options{
		Region:            region.DefaultOptions(),
		PostponeCartesian: true,
	}
}

// PlanInfo is a plan of a Pareto plan set together with its cost
// function and relevance region (the relevance mapping of Section 2).
type PlanInfo struct {
	Plan *plan.Node
	Cost Cost
	RR   *region.Region
}

// Stats reports the work of an optimizer run; CreatedPlans and the LP
// count inside Geometry are the quantities of Figure 12.
type Stats struct {
	// CreatedPlans counts every generated plan, including partial plans
	// and plans pruned during optimization (Figure 12, middle row).
	CreatedPlans int
	// PrunedPlans counts plans discarded because their relevance region
	// became empty.
	PrunedPlans int
	// FinalPlans is the size of the returned Pareto plan set.
	FinalPlans int
	// MaxPlansPerSet is the largest Pareto set size over all table sets
	// (bounded in expectation by Theorem 6).
	MaxPlansPerSet int
	// Workers is the worker count the run actually used.
	Workers int
	// Geometry carries LP counts (Figure 12, bottom row) and related
	// counters, merged across all workers.
	Geometry geometry.Stats
	// Duration is the wall-clock optimization time (Figure 12, top
	// row).
	Duration time.Duration
}

// Result of an optimization: the Pareto plan set for the full query with
// the relevance mapping, plus statistics.
type Result struct {
	// Query is the full table set.
	Query catalog.TableSet
	// Plans is the Pareto plan set (PPS) for the query.
	Plans []*PlanInfo
	// PerSet holds the PPS of every planned table set (only when
	// Options.KeepPerSet).
	PerSet map[catalog.TableSet][]*PlanInfo
	// Stats is the run's work summary.
	Stats Stats
}

// Optimize runs RRPA (Algorithm 1) on the query described by schema,
// with operator costs from model, and returns a Pareto plan set for the
// full query. With the default PWL algebra this is PWL-RRPA.
func Optimize(schema *catalog.Schema, model CostModel, opts Options) (*Result, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = geometry.NewContext()
	}
	algebra := opts.Algebra
	if algebra == nil {
		algebra = NewPWLAlgebra(ctx, len(model.MetricNames()))
	}
	o := &optimizer{
		schema: schema,
		model:  model,
		ctx:    ctx,
		opts:   opts,
		best:   make(map[catalog.TableSet][]*PlanInfo),
	}
	o.setupWorkers(algebra)
	return o.run()
}

type optimizer struct {
	schema  *catalog.Schema
	model   CostModel
	ctx     *geometry.Context
	opts    Options
	best    map[catalog.TableSet][]*PlanInfo
	stats   Stats
	workers []*worker
}

// worker is the per-goroutine state of the parallel wavefront: a forked
// geometry solver, an algebra bound to it, and local plan counters.
// workers[0] aliases the optimizer's own solver and algebra, so the
// sequential path (Workers == 1) is exactly the historical single-
// threaded execution.
type worker struct {
	o       *optimizer
	solver  *geometry.Solver
	algebra Algebra
	created int
	pruned  int
}

// setupWorkers decides the worker count and builds per-worker state.
// The parallel path requires a ForkableAlgebra; otherwise the run falls
// back to one worker.
func (o *optimizer) setupWorkers(algebra Algebra) {
	n := o.opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	forkable, ok := algebra.(ForkableAlgebra)
	if !ok {
		n = 1
	}
	o.workers = make([]*worker, n)
	o.workers[0] = &worker{o: o, solver: o.ctx, algebra: algebra}
	for i := 1; i < n; i++ {
		s := o.ctx.Fork()
		o.workers[i] = &worker{o: o, solver: s, algebra: forkable.Fork(s)}
	}
	o.stats.Workers = n
}

func (o *optimizer) run() (*Result, error) {
	start := time.Now()
	statsBefore := o.ctx.Stats

	// Initialize plan sets for base tables (Algorithm 1 lines 3-6):
	// consider all scan plans and prune. Base tables run on the first
	// worker; this also deterministically warms the shared parameter-
	// space memos before any parallel wavefront starts.
	w0 := o.workers[0]
	for i := range o.schema.Tables {
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		var cur []*PlanInfo
		for _, alt := range o.model.ScanAlternatives(t) {
			cur = w0.prune(cur, plan.Scan(t, alt.Op), alt.Cost)
		}
		if len(cur) == 0 {
			return nil, fmt.Errorf("core: no scan plan for table %d", i)
		}
		o.best[q] = cur
	}

	// Consider table sets of increasing cardinality (lines 7-13). Within
	// one cardinality no table set depends on another — planSet(mask)
	// only reads Pareto sets of strictly smaller cardinality — so each
	// wavefront's masks are partitioned across the workers and the
	// results are installed at the wavefront barrier.
	n := o.schema.NumTables()
	all := o.schema.AllTables()
	fullyConnected := o.schema.Connected(all)
	var masks []catalog.TableSet
	for k := 2; k <= n; k++ {
		masks = masks[:0]
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if o.opts.PostponeCartesian && fullyConnected && !o.schema.Connected(mask) {
				// Plans for disconnected subsets are never needed when
				// Cartesian products are postponed in a connected query
				// graph.
				continue
			}
			masks = append(masks, mask)
		}
		o.runWavefront(masks)
	}

	for _, w := range o.workers {
		o.stats.CreatedPlans += w.created
		o.stats.PrunedPlans += w.pruned
		if w != w0 {
			o.ctx.Stats.Add(w.solver.Stats)
		}
	}

	final := o.best[all]
	if len(final) == 0 && n > 0 {
		return nil, errors.New("core: no plan for the full query")
	}
	o.stats.FinalPlans = len(final)
	for _, infos := range o.best {
		if len(infos) > o.stats.MaxPlansPerSet {
			o.stats.MaxPlansPerSet = len(infos)
		}
	}
	o.stats.Duration = time.Since(start)
	o.stats.Geometry = o.ctx.Stats
	o.stats.Geometry.Sub(statsBefore)

	res := &Result{Query: all, Plans: final, Stats: o.stats}
	if o.opts.KeepPerSet {
		res.PerSet = o.best
	}
	return res, nil
}

// runWavefront plans every mask of one cardinality and installs the
// resulting Pareto sets into o.best. With more than one worker the
// masks are distributed over a goroutine pool; each mask is planned by
// exactly one worker against the immutable state of all previous
// wavefronts, so the result (and, via the merged per-worker counters,
// every aggregate statistic) is identical for any worker count and any
// scheduling.
func (o *optimizer) runWavefront(masks []catalog.TableSet) {
	nw := len(o.workers)
	if nw > len(masks) {
		nw = len(masks)
	}
	if nw <= 1 {
		for _, q := range masks {
			o.install(q, o.workers[0].planSet(q))
		}
		return
	}
	results := make([][]*PlanInfo, len(masks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, w := range o.workers[:nw] {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(masks) {
					return
				}
				results[i] = w.planSet(masks[i])
			}
		}(w)
	}
	wg.Wait()
	for i, q := range masks {
		o.install(q, results[i])
	}
}

// install records a mask's Pareto set. Empty sets are not stored,
// matching the sequential algorithm (which never inserts into an empty
// set without keeping at least the inserted plan).
func (o *optimizer) install(q catalog.TableSet, infos []*PlanInfo) {
	if len(infos) > 0 {
		o.best[q] = infos
	}
}

// planSet generates the Pareto plan set for joining table set q
// (Algorithm 1, GenerateParetoPlanSet): all splits into two non-empty
// subsets, all join operators, all pairs of sub-plans. With Cartesian
// postponement, splits without a connecting join predicate are only
// considered when no edged split produced plans. The result is
// accumulated locally and only published by the caller, so concurrent
// workers never write shared state.
func (w *worker) planSet(q catalog.TableSet) []*PlanInfo {
	cur, produced := w.trySplits(nil, q, true)
	if !produced {
		cur, _ = w.trySplits(cur, q, false)
	}
	return cur
}

func (w *worker) trySplits(cur []*PlanInfo, q catalog.TableSet, requireEdge bool) ([]*PlanInfo, bool) {
	o := w.o
	produced := false
	q.SubsetsProper(func(q1 catalog.TableSet) bool {
		q2 := q.Minus(q1)
		p1s, p2s := o.best[q1], o.best[q2]
		if len(p1s) == 0 || len(p2s) == 0 {
			return true
		}
		if o.opts.PostponeCartesian && requireEdge && !o.schema.HasEdgeBetween(q1, q2) {
			return true
		}
		alts := o.model.JoinAlternatives(q1, q2)
		if len(alts) == 0 {
			return true
		}
		for _, i1 := range p1s {
			for _, i2 := range p2s {
				for _, alt := range alts {
					// Construct the new plan and accumulate its cost
					// (lines 23-26).
					pn := plan.Join(alt.Op, i1.Plan, i2.Plan)
					cost := w.algebra.Accumulate(alt.Cost, i1.Cost, i2.Cost)
					cur = w.prune(cur, pn, cost)
					produced = true
				}
			}
		}
		return true
	})
	return cur, produced
}

// prune implements the pruning function of Algorithm 1 (lines 33-57)
// against the worker-local plan set cur: the relevance region of the
// new plan starts as the full parameter space and is reduced by the
// dominance regions of all existing plans; if it empties, the plan is
// discarded. Otherwise the existing plans' relevance regions are
// reduced by the new plan's dominance regions and plans with empty
// regions are dropped; finally the new plan is inserted.
func (w *worker) prune(cur []*PlanInfo, pn *plan.Node, cost Cost) []*PlanInfo {
	o := w.o
	w.created++
	rr := region.New(w.solver, o.model.Space(), o.opts.Region)
	for _, old := range cur {
		rr.Subtract(w.solver, w.algebra.Dom(old.Cost, cost)...)
		if rr.IsEmpty(w.solver) {
			w.pruned++
			return cur // do not insert the new plan
		}
	}
	// The new plan will be inserted; discard irrelevant old plans.
	kept := cur[:0]
	for _, old := range cur {
		old.RR.Subtract(w.solver, w.algebra.Dom(cost, old.Cost)...)
		if old.RR.IsEmpty(w.solver) {
			w.pruned++
			continue
		}
		kept = append(kept, old)
	}
	return append(kept, &PlanInfo{Plan: pn, Cost: cost, RR: rr})
}

// ParetoFrontAt evaluates the result's plan set at a concrete parameter
// vector and returns the plans whose cost vectors are Pareto-optimal
// within the set, in plan order — the run-time plan-selection step of
// Figure 2.
func (r *Result) ParetoFrontAt(algebra Algebra, x geometry.Vector) []*PlanInfo {
	type entry struct {
		info *PlanInfo
		cost geometry.Vector
	}
	entries := make([]entry, 0, len(r.Plans))
	for _, info := range r.Plans {
		entries = append(entries, entry{info, algebra.Eval(info.Cost, x)})
	}
	var out []*PlanInfo
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if dominatesVec(other.cost, e.cost) && !other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
			// Among equal-cost plans keep only the first.
			if j < i && other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, e.info)
		}
	}
	return out
}

// dominatesVec reports a <= b component-wise (with tolerance).
func dominatesVec(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}
