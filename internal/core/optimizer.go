package core

import (
	"errors"
	"fmt"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/region"
)

// Options configures an optimizer run.
type Options struct {
	// Region configures relevance regions (emptiness strategy and the
	// Section 6.2 refinements).
	Region region.Options
	// PostponeCartesian skips splits without a connecting join
	// predicate whenever an edged split exists, the heuristic of
	// state-of-the-art optimizers adopted by the paper's experiments.
	PostponeCartesian bool
	// Context supplies tolerances and LP counters; a fresh context is
	// created when nil.
	Context *geometry.Context
	// Algebra supplies cost operations; defaults to a PWLAlgebra over
	// Context with sum accumulation on every metric.
	Algebra Algebra
	// KeepPerSet retains the Pareto plan sets of all intermediate table
	// sets in the result, for inspection and validation.
	KeepPerSet bool
}

// DefaultOptions mirrors the configuration of the paper's experiments.
func DefaultOptions() Options {
	return Options{
		Region:            region.DefaultOptions(),
		PostponeCartesian: true,
	}
}

// PlanInfo is a plan of a Pareto plan set together with its cost
// function and relevance region (the relevance mapping of Section 2).
type PlanInfo struct {
	Plan *plan.Node
	Cost Cost
	RR   *region.Region
}

// Stats reports the work of an optimizer run; CreatedPlans and the LP
// count inside Geometry are the quantities of Figure 12.
type Stats struct {
	// CreatedPlans counts every generated plan, including partial plans
	// and plans pruned during optimization (Figure 12, middle row).
	CreatedPlans int
	// PrunedPlans counts plans discarded because their relevance region
	// became empty.
	PrunedPlans int
	// FinalPlans is the size of the returned Pareto plan set.
	FinalPlans int
	// MaxPlansPerSet is the largest Pareto set size over all table sets
	// (bounded in expectation by Theorem 6).
	MaxPlansPerSet int
	// Geometry carries LP counts (Figure 12, bottom row) and related
	// counters.
	Geometry geometry.Stats
	// Duration is the wall-clock optimization time (Figure 12, top
	// row).
	Duration time.Duration
}

// Result of an optimization: the Pareto plan set for the full query with
// the relevance mapping, plus statistics.
type Result struct {
	// Query is the full table set.
	Query catalog.TableSet
	// Plans is the Pareto plan set (PPS) for the query.
	Plans []*PlanInfo
	// PerSet holds the PPS of every planned table set (only when
	// Options.KeepPerSet).
	PerSet map[catalog.TableSet][]*PlanInfo
	// Stats is the run's work summary.
	Stats Stats
}

// Optimize runs RRPA (Algorithm 1) on the query described by schema,
// with operator costs from model, and returns a Pareto plan set for the
// full query. With the default PWL algebra this is PWL-RRPA.
func Optimize(schema *catalog.Schema, model CostModel, opts Options) (*Result, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = geometry.NewContext()
	}
	algebra := opts.Algebra
	if algebra == nil {
		algebra = NewPWLAlgebra(ctx, len(model.MetricNames()))
	}
	o := &optimizer{
		schema:  schema,
		model:   model,
		algebra: algebra,
		ctx:     ctx,
		opts:    opts,
		best:    make(map[catalog.TableSet][]*PlanInfo),
	}
	return o.run()
}

type optimizer struct {
	schema  *catalog.Schema
	model   CostModel
	algebra Algebra
	ctx     *geometry.Context
	opts    Options
	best    map[catalog.TableSet][]*PlanInfo
	stats   Stats
}

func (o *optimizer) run() (*Result, error) {
	start := time.Now()
	lpsBefore := o.ctx.Stats

	// Initialize plan sets for base tables (Algorithm 1 lines 3-6):
	// consider all scan plans and prune.
	for i := range o.schema.Tables {
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		for _, alt := range o.model.ScanAlternatives(t) {
			o.prune(q, plan.Scan(t, alt.Op), alt.Cost)
		}
		if len(o.best[q]) == 0 {
			return nil, fmt.Errorf("core: no scan plan for table %d", i)
		}
	}

	// Consider table sets of increasing cardinality (lines 7-13).
	n := o.schema.NumTables()
	all := o.schema.AllTables()
	fullyConnected := o.schema.Connected(all)
	for k := 2; k <= n; k++ {
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if o.opts.PostponeCartesian && fullyConnected && !o.schema.Connected(mask) {
				// Plans for disconnected subsets are never needed when
				// Cartesian products are postponed in a connected query
				// graph.
				continue
			}
			o.planSet(mask)
		}
	}

	final := o.best[all]
	if len(final) == 0 && n > 0 {
		return nil, errors.New("core: no plan for the full query")
	}
	o.stats.FinalPlans = len(final)
	for _, infos := range o.best {
		if len(infos) > o.stats.MaxPlansPerSet {
			o.stats.MaxPlansPerSet = len(infos)
		}
	}
	o.stats.Duration = time.Since(start)
	o.stats.Geometry = o.ctx.Stats
	o.stats.Geometry.LPs -= lpsBefore.LPs
	o.stats.Geometry.LPIterations -= lpsBefore.LPIterations
	o.stats.Geometry.RegionDiffs -= lpsBefore.RegionDiffs
	o.stats.Geometry.ConvexityChecks -= lpsBefore.ConvexityChecks

	res := &Result{Query: all, Plans: final, Stats: o.stats}
	if o.opts.KeepPerSet {
		res.PerSet = o.best
	}
	return res, nil
}

// planSet generates the Pareto plan set for joining table set q
// (Algorithm 1, GenerateParetoPlanSet): all splits into two non-empty
// subsets, all join operators, all pairs of sub-plans. With Cartesian
// postponement, splits without a connecting join predicate are only
// considered when no edged split produced plans.
func (o *optimizer) planSet(q catalog.TableSet) {
	produced := o.trySplits(q, true)
	if !produced {
		o.trySplits(q, false)
	}
}

func (o *optimizer) trySplits(q catalog.TableSet, requireEdge bool) bool {
	produced := false
	q.SubsetsProper(func(q1 catalog.TableSet) bool {
		q2 := q.Minus(q1)
		p1s, p2s := o.best[q1], o.best[q2]
		if len(p1s) == 0 || len(p2s) == 0 {
			return true
		}
		if o.opts.PostponeCartesian && requireEdge && !o.schema.HasEdgeBetween(q1, q2) {
			return true
		}
		alts := o.model.JoinAlternatives(q1, q2)
		if len(alts) == 0 {
			return true
		}
		for _, i1 := range p1s {
			for _, i2 := range p2s {
				for _, alt := range alts {
					// Construct the new plan and accumulate its cost
					// (lines 23-26).
					pn := plan.Join(alt.Op, i1.Plan, i2.Plan)
					cost := o.algebra.Accumulate(alt.Cost, i1.Cost, i2.Cost)
					o.prune(q, pn, cost)
					produced = true
				}
			}
		}
		return true
	})
	return produced
}

// prune implements the pruning function of Algorithm 1 (lines 33-57):
// the relevance region of the new plan starts as the full parameter
// space and is reduced by the dominance regions of all existing plans;
// if it empties, the plan is discarded. Otherwise the existing plans'
// relevance regions are reduced by the new plan's dominance regions and
// plans with empty regions are dropped; finally the new plan is
// inserted.
func (o *optimizer) prune(q catalog.TableSet, pn *plan.Node, cost Cost) {
	o.stats.CreatedPlans++
	rr := region.New(o.ctx, o.model.Space(), o.opts.Region)
	for _, old := range o.best[q] {
		rr.Subtract(o.ctx, o.algebra.Dom(old.Cost, cost)...)
		if rr.IsEmpty(o.ctx) {
			o.stats.PrunedPlans++
			return // do not insert the new plan
		}
	}
	// The new plan will be inserted; discard irrelevant old plans.
	kept := o.best[q][:0]
	for _, old := range o.best[q] {
		old.RR.Subtract(o.ctx, o.algebra.Dom(cost, old.Cost)...)
		if old.RR.IsEmpty(o.ctx) {
			o.stats.PrunedPlans++
			continue
		}
		kept = append(kept, old)
	}
	o.best[q] = append(kept, &PlanInfo{Plan: pn, Cost: cost, RR: rr})
}

// ParetoFrontAt evaluates the result's plan set at a concrete parameter
// vector and returns the plans whose cost vectors are Pareto-optimal
// within the set, in plan order — the run-time plan-selection step of
// Figure 2.
func (r *Result) ParetoFrontAt(algebra Algebra, x geometry.Vector) []*PlanInfo {
	type entry struct {
		info *PlanInfo
		cost geometry.Vector
	}
	entries := make([]entry, 0, len(r.Plans))
	for _, info := range r.Plans {
		entries = append(entries, entry{info, algebra.Eval(info.Cost, x)})
	}
	var out []*PlanInfo
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if dominatesVec(other.cost, e.cost) && !other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
			// Among equal-cost plans keep only the first.
			if j < i && other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, e.info)
		}
	}
	return out
}

// dominatesVec reports a <= b component-wise (with tolerance).
func dominatesVec(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}
