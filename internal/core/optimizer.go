package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/region"
)

// Options configures an optimizer run.
type Options struct {
	// Region configures relevance regions (emptiness strategy and the
	// Section 6.2 refinements).
	Region region.Options
	// PostponeCartesian skips splits without a connecting join
	// predicate whenever an edged split exists, the heuristic of
	// state-of-the-art optimizers adopted by the paper's experiments.
	PostponeCartesian bool
	// Context supplies tolerances and LP counters; a fresh context is
	// created when nil. With Workers > 1 it remains the solver of the
	// first worker and receives the merged Stats of all workers.
	Context *geometry.Context
	// Algebra supplies cost operations; defaults to a PWLAlgebra over
	// Context with sum accumulation on every metric. Custom algebras
	// must implement ForkableAlgebra to enable the parallel scheduler.
	Algebra Algebra
	// KeepPerSet retains the Pareto plan sets of all intermediate table
	// sets in the result, for inspection and validation. The returned
	// map and its slices are fresh copies, so reshaping them cannot
	// affect other result fields; the *PlanInfo values themselves are
	// shared with Result.Plans and must be treated as read-only.
	KeepPerSet bool
	// Workers is the number of goroutines pulling runnable table sets
	// from the dependency scheduler (see DESIGN.md, "Concurrency
	// model"). Zero selects GOMAXPROCS; 1 runs the sequential path. Any
	// worker count produces identical plan sets and identical aggregate
	// geometry Stats: per-mask work is self-contained, the sharded
	// store publishes complete sets atomically, the per-polytope
	// Chebyshev memo solves every memoized LP exactly once, and
	// intra-mask split jobs merge through an order-preserving
	// reduction. The CostModel must tolerate concurrent calls when
	// Workers > 1.
	Workers int
	// Donor, when non-nil, lends transient goroutines to this run's
	// intra-mask split jobs: whenever a wide mask is split, the
	// scheduler offers chunk work to the donor's idle capacity (the
	// serving layer donates idle solver-pool workers this way — elastic
	// intra-query parallelism). Donated workers run on their own solver
	// and algebra forks, so results and aggregate LP statistics are
	// identical with or without donation; a Donor also activates the
	// dependency scheduler (and split jobs) for Workers == 1 runs,
	// which would otherwise use the sequential drain. Requires a
	// ForkableAlgebra; ignored otherwise.
	Donor DonorPool
	// Epsilon enables the ε-approximate prune: a candidate plan is
	// dropped outright when, everywhere in the parameter space, some
	// already-kept plan's cost is within a multiplicative (1+ε_l)
	// factor of dominating it on every metric. Near-dominated cluster
	// members never enter the set, shrinking the Pareto plan set (and
	// with it LP counts, store bytes, and pick latency downstream) at
	// the price of a certified bound on regret: the cost of the best
	// kept plan exceeds the best exact plan by at most a (1+Epsilon)
	// factor per metric. The per-level slack is allocated as ε_l =
	// (1+Epsilon)^(1/L) − 1 over the L lattice levels; each pruned
	// plan's witness is a kept plan whose region then only shrinks
	// under exact dominance, so the factor compounds once per level
	// and bottom-up to exactly (1+Epsilon) — see pruneEps for why the
	// gate-only design is what makes this sound. Zero runs the exact
	// algorithm, bit-for-bit the historical path. Negative values are
	// rejected; positive values require an EpsilonAlgebra. Plans for
	// each table set arrive in deterministic enumeration order, so the
	// worker-count determinism contract holds at every Epsilon.
	Epsilon float64
	// MaxPlansPerSet aborts the run with ErrPlanBudget as soon as any
	// table set's Pareto plan set exceeds this size — the guard that
	// turns an exponentially exploding many-objective frontier into a
	// clean error instead of an unbounded computation (raise Epsilon to
	// shrink the frontier under the budget). Zero means unlimited. The
	// budget only converts runs into errors — it never alters the plan
	// sets of runs that complete — and whether it trips is independent
	// of the worker count, so it is not part of the plan-set identity.
	MaxPlansPerSet int
	// SplitCandidates is the estimated-work threshold at which a single
	// wide mask is planned with intra-mask split parallelism (multiple
	// workers accumulate candidate costs, one reduction prunes them in
	// sequential order). Work is cost-aware: candidate plans weighted
	// by a piece-pair estimate — for PWL costs, the summed per-metric
	// products of the joined sides' piece counts — so cheap wide masks
	// (many candidates, few pieces) split less eagerly than piece-rich
	// ones; the estimate is always at least the candidate count. Zero
	// selects a default threshold and splits only when workers are
	// idle; an explicit value forces splitting whenever the estimate
	// meets it. Results are identical either way — this knob only
	// trades scheduling overhead against pipelining.
	SplitCandidates int
}

// DefaultOptions mirrors the configuration of the paper's experiments.
func DefaultOptions() Options {
	return Options{
		Region:            region.DefaultOptions(),
		PostponeCartesian: true,
	}
}

// PlanInfo is a plan of a Pareto plan set together with its cost
// function and relevance region (the relevance mapping of Section 2).
type PlanInfo struct {
	Plan *plan.Node
	Cost Cost
	RR   *region.Region
}

// Stats reports the work of an optimizer run; CreatedPlans and the LP
// count inside Geometry are the quantities of Figure 12.
type Stats struct {
	// CreatedPlans counts every generated plan, including partial plans
	// and plans pruned during optimization (Figure 12, middle row).
	CreatedPlans int
	// PrunedPlans counts plans discarded because their relevance region
	// became empty.
	PrunedPlans int
	// FinalPlans is the size of the returned Pareto plan set.
	FinalPlans int
	// MaxPlansPerSet is the largest Pareto set size over all table sets
	// (bounded in expectation by Theorem 6).
	MaxPlansPerSet int
	// Workers is the worker count the run actually used.
	Workers int
	// Geometry carries LP counts (Figure 12, bottom row) and related
	// counters, merged across all workers.
	Geometry geometry.Stats
	// Scheduler reports the dependency scheduler's pipeline metrics
	// (tasks, split jobs, worker utilization). These are scheduling
	// metrics, not determinism-contract quantities: they may differ
	// between runs and worker counts.
	Scheduler SchedulerStats
	// Duration is the wall-clock optimization time (Figure 12, top
	// row).
	Duration time.Duration
}

// PipelineUtilization returns the mean fraction of the worker pool kept
// busy while the dependency scheduler ran (1.0 = perfectly pipelined).
func (s Stats) PipelineUtilization() float64 {
	return s.Scheduler.Utilization(s.Workers)
}

// Result of an optimization: the Pareto plan set for the full query with
// the relevance mapping, plus statistics.
type Result struct {
	// Query is the full table set.
	Query catalog.TableSet
	// Plans is the Pareto plan set (PPS) for the query.
	Plans []*PlanInfo
	// PerSet holds the PPS of every planned table set (only when
	// Options.KeepPerSet). The map and its slices are fresh copies
	// owned by the caller; the *PlanInfo values are shared with Plans
	// and must be treated as read-only.
	PerSet map[catalog.TableSet][]*PlanInfo
	// Stats is the run's work summary.
	Stats Stats
}

// ErrPlanBudget reports a run aborted because a table set's Pareto
// plan set exceeded Options.MaxPlansPerSet. Raising Epsilon (or the
// budget) lets the run complete.
var ErrPlanBudget = errors.New("core: plan-set budget exceeded")

// Optimize runs RRPA (Algorithm 1) on the query described by schema,
// with operator costs from model, and returns a Pareto plan set for the
// full query. With the default PWL algebra this is PWL-RRPA.
func Optimize(schema *catalog.Schema, model CostModel, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), schema, model, opts) //mpq:ctxroot legacy ctx-less API is a deliberate root; new callers use OptimizeCtx
}

// OptimizeCtx is Optimize with cooperative cancellation: the run
// checks runCtx between scheduler tasks (masks, split chunks) and
// stops promptly — workers, donated goroutines, and the caller all
// unwind — returning runCtx's error. Cancellation is strictly
// cooperative and checkpoint-based, so any run that completes without
// observing a done context is byte-identical to an uncancelled run.
func OptimizeCtx(runCtx context.Context, schema *catalog.Schema, model CostModel, opts Options) (*Result, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if runCtx == nil {
		runCtx = context.Background() //mpq:ctxroot nil ctx from legacy callers defaults to an uncancellable root at the API boundary
	}
	if err := runCtx.Err(); err != nil {
		return nil, fmt.Errorf("core: optimize: %w", err)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = geometry.NewContext()
	}
	algebra := opts.Algebra
	if algebra == nil {
		algebra = NewPWLAlgebra(ctx, len(model.MetricNames()))
	}
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("core: optimize: negative epsilon %v", opts.Epsilon)
	}
	if opts.Epsilon > 0 {
		if _, ok := algebra.(EpsilonAlgebra); !ok {
			return nil, fmt.Errorf("core: optimize: epsilon %v requires an EpsilonAlgebra, got %T", opts.Epsilon, algebra)
		}
	}
	o := &optimizer{
		schema: schema,
		model:  model,
		ctx:    ctx,
		opts:   opts,
		runCtx: runCtx,
	}
	o.setupWorkers(algebra)
	return o.run()
}

type optimizer struct {
	schema  *catalog.Schema
	model   CostModel
	ctx     *geometry.Context
	opts    Options
	runCtx  context.Context // cancellation signal; never nil
	store   *planStore
	stats   Stats
	workers []*worker
	// forkable is the algebra's ForkableAlgebra side, kept for forking
	// donated workers mid-run (nil when the algebra cannot fork).
	forkable ForkableAlgebra
	// epsLevel is the per-prune multiplicative slack of the
	// ε-approximate prune, (1+Epsilon)^(1/L) − 1 over the L lattice
	// levels; zero on exact runs (which never consult it).
	epsLevel float64
	// budgetExceeded flips when a completed table set's plan count
	// exceeds Options.MaxPlansPerSet; the scheduler aborts and run()
	// reports ErrPlanBudget.
	budgetExceeded atomic.Bool
}

// noteSetSize records a completed table set's plan count against
// Options.MaxPlansPerSet and reports whether the budget tripped. Set
// sizes are schedule-independent (the determinism contract), so the
// outcome is identical for any worker count.
func (o *optimizer) noteSetSize(n int) bool {
	if o.opts.MaxPlansPerSet > 0 && n > o.opts.MaxPlansPerSet {
		o.budgetExceeded.Store(true)
		return true
	}
	return false
}

func (o *optimizer) budgetErr() error {
	return fmt.Errorf("core: optimize: %w: a table set exceeded %d plans (raise Epsilon or MaxPlansPerSet)",
		ErrPlanBudget, o.opts.MaxPlansPerSet)
}

// worker is the per-goroutine state of the parallel scheduler: a forked
// geometry solver, an algebra bound to it, and local plan counters.
// workers[0] aliases the optimizer's own solver and algebra, so the
// sequential path (Workers == 1) is exactly the historical single-
// threaded execution.
type worker struct {
	o       *optimizer
	solver  *geometry.Solver
	algebra Algebra
	created int
	pruned  int
	busy    time.Duration
}

// setupWorkers decides the worker count and builds per-worker state.
// The parallel path requires a ForkableAlgebra; otherwise the run falls
// back to one worker.
func (o *optimizer) setupWorkers(algebra Algebra) {
	n := o.opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	forkable, ok := algebra.(ForkableAlgebra)
	if !ok {
		n = 1
	} else {
		o.forkable = forkable
	}
	o.workers = make([]*worker, n)
	o.workers[0] = &worker{o: o, solver: o.ctx, algebra: algebra}
	for i := 1; i < n; i++ {
		s := o.ctx.Fork()
		o.workers[i] = &worker{o: o, solver: s, algebra: forkable.Fork(s)}
	}
	o.stats.Workers = n
}

func (o *optimizer) run() (*Result, error) {
	start := time.Now() //mpq:wallclock Stats.Duration timing; never reaches plan bytes
	statsBefore := o.ctx.Stats

	// Decide the schedule up front: every scheduled table set gets a
	// slot in the sharded store, so completion marks and dependency
	// counts refer to a fixed universe.
	n := o.schema.NumTables()
	all := o.schema.AllTables()
	masks := o.scheduleMasks()
	storeMasks := make([]catalog.TableSet, 0, n+len(masks))
	for i := 0; i < n; i++ {
		storeMasks = append(storeMasks, catalog.SetOf(catalog.TableID(i)))
	}
	storeMasks = append(storeMasks, masks...)
	o.store = newPlanStore(n, storeMasks)

	// ε-approximate runs allocate the (1+ε) factor over the lattice
	// depth up front, so every prune at every level applies identical
	// slack regardless of the schedule.
	if o.opts.Epsilon > 0 && n > 0 {
		o.epsLevel = math.Pow(1+o.opts.Epsilon, 1/float64(n)) - 1
	}

	// Initialize plan sets for base tables (Algorithm 1 lines 3-6):
	// consider all scan plans and prune. Base tables run on the first
	// worker; this also deterministically warms the shared parameter-
	// space memos before any parallel task starts.
	w0 := o.workers[0]
	for i := range o.schema.Tables {
		if err := o.runCtx.Err(); err != nil {
			return nil, fmt.Errorf("core: optimize: %w", err)
		}
		t := catalog.TableID(i)
		q := catalog.SetOf(t)
		var cur []*PlanInfo
		for _, alt := range o.model.ScanAlternatives(t) {
			cur = w0.prune(cur, plan.Scan(t, alt.Op), alt.Cost)
		}
		if len(cur) == 0 {
			return nil, fmt.Errorf("core: no scan plan for table %d", i)
		}
		o.store.complete(q, cur)
		if o.noteSetSize(len(cur)) {
			return nil, o.budgetErr()
		}
	}

	// Plan the join masks through the dependency scheduler (Algorithm 1
	// lines 7-13, pipelined): a mask runs the moment every scheduled
	// strict subset has completed, not when its whole cardinality class
	// has. With one worker the scheduler degenerates to the historical
	// in-order sequential drain.
	sched := newScheduler(o, masks)
	if len(o.workers) > 1 || (o.opts.Donor != nil && o.forkable != nil) {
		o.stats.Scheduler = sched.run()
	} else {
		o.stats.Scheduler = sched.runSequential()
	}
	// A budget trip aborted the schedule: the plan sets computed so far
	// are valid but the run as a whole cannot answer the query within
	// the budget. Checked before the context error — a budget abort is
	// the more specific cause.
	if o.budgetExceeded.Load() {
		return nil, o.budgetErr()
	}
	// A run cancelled mid-schedule left masks unplanned; report the
	// context error rather than a misleading "no plan". A cancellation
	// that arrived after the last mask completed changes nothing — the
	// finished result is returned as usual.
	if sched.incomplete() {
		if err := o.runCtx.Err(); err != nil {
			return nil, fmt.Errorf("core: optimize: %w", err)
		}
	}

	for _, w := range o.workers {
		o.stats.CreatedPlans += w.created
		o.stats.PrunedPlans += w.pruned
		if w != w0 {
			o.ctx.Stats.Add(w.solver.DrainStats())
		}
	}
	// Donated workers (scheduler-offered split-job help from outside
	// the pool) contribute the same way; sched.run has already waited
	// for all of them.
	for _, w := range sched.donated {
		o.stats.CreatedPlans += w.created
		o.stats.PrunedPlans += w.pruned
		o.ctx.Stats.Add(w.solver.DrainStats())
	}

	final := o.store.get(all)
	if len(final) == 0 && n > 0 {
		return nil, errors.New("core: no plan for the full query")
	}
	o.stats.FinalPlans = len(final)
	o.stats.MaxPlansPerSet = o.store.maxSetSize()
	o.stats.Duration = time.Since(start) //mpq:wallclock Stats.Duration timing; never reaches plan bytes
	o.stats.Geometry = o.ctx.Stats
	o.stats.Geometry.Sub(statsBefore)

	res := &Result{Query: all, Plans: final, Stats: o.stats}
	if o.opts.KeepPerSet {
		res.PerSet = o.store.snapshot()
	}
	return res, nil
}

// scheduleMasks lists the join masks (cardinality >= 2) the run will
// plan, in deterministic cardinality-then-value order. Disconnected
// subsets of a connected query graph are never needed when Cartesian
// products are postponed, exactly as in the sequential algorithm.
func (o *optimizer) scheduleMasks() []catalog.TableSet {
	n := o.schema.NumTables()
	all := o.schema.AllTables()
	fullyConnected := o.schema.Connected(all)
	var masks []catalog.TableSet
	for k := 2; k <= n; k++ {
		for mask := catalog.TableSet(1); mask <= all; mask++ {
			if mask.Count() != k {
				continue
			}
			if o.opts.PostponeCartesian && fullyConnected && !o.schema.Connected(mask) {
				continue
			}
			masks = append(masks, mask)
		}
	}
	return masks
}

// prune dispatches one candidate plan through the pruning function:
// the historical exact prune, or the ε-approximate prune when
// Options.Epsilon > 0. Both call sites (the per-mask loop and the
// split-job reduction) and the base-table loop go through this one
// method, so the dispatch can never diverge between paths.
func (w *worker) prune(cur []*PlanInfo, pn *plan.Node, cost Cost) []*PlanInfo {
	if w.o.epsLevel > 0 {
		return w.pruneEps(cur, pn, cost)
	}
	return w.pruneExact(cur, pn, cost)
}

// pruneExact implements the pruning function of Algorithm 1 (lines
// 33-57) against the worker-local plan set cur: the relevance region
// of the new plan starts as the full parameter space and is reduced by
// the dominance regions of all existing plans; if it empties, the plan
// is discarded. Otherwise the existing plans' relevance regions are
// reduced by the new plan's dominance regions and plans with empty
// regions are dropped; finally the new plan is inserted.
func (w *worker) pruneExact(cur []*PlanInfo, pn *plan.Node, cost Cost) []*PlanInfo {
	w.created++
	return w.pruneInsert(cur, pn, cost)
}

// pruneInsert is the body of the exact prune, shared verbatim by the
// exact path and the post-gate half of the ε path.
func (w *worker) pruneInsert(cur []*PlanInfo, pn *plan.Node, cost Cost) []*PlanInfo {
	o := w.o
	rr := region.New(w.solver, o.model.Space(), o.opts.Region)
	for _, old := range cur {
		rr.Subtract(w.solver, w.algebra.Dom(old.Cost, cost)...)
		if rr.IsEmpty(w.solver) {
			w.pruned++
			return cur // do not insert the new plan
		}
	}
	// The new plan will be inserted; discard irrelevant old plans.
	kept := cur[:0]
	for _, old := range cur {
		old.RR.Subtract(w.solver, w.algebra.Dom(cost, old.Cost)...)
		if old.RR.IsEmpty(w.solver) {
			w.pruned++
			continue
		}
		kept = append(kept, old)
	}
	return append(kept, &PlanInfo{Plan: pn, Cost: cost, RR: rr})
}

// pruneEps is the ε-approximate prune: the exact prune behind an
// ε-admission gate. A newcomer is dropped outright when the union of
// the established plans' relaxed dominance regions ({old <=
// (1+ε_l)·new}, supersets of exact dominance) covers the entire
// parameter space — everywhere, some established plan is within a
// (1+ε_l) factor of dominating it. Newcomers that pass the gate go
// through the unmodified exact prune, so relevance-region geometry is
// exactly the exact algorithm's: the approximation can never open a
// coverage hole the exact path would not have.
//
// The gate-only design is what keeps the slack from compounding.
// Relaxed dominance is not antisymmetric — inside a near-tied cluster
// every plan relaxed-dominates every other, so any scheme that
// SUBTRACTS relaxed regions lets cluster members remove each other's
// regions in a cycle until no plan covers a point. Here relaxed
// dominance only ever blocks insertion: a dropped newcomer's witness
// is a plan that was already inserted, and inserted plans cede region
// exclusively through exact dominance, whose pointwise-non-increasing
// witness chains terminate at a survivor. Every dropped plan is
// therefore covered by a survivor within a single (1+ε_l) factor, and
// the factors compound only across the L lattice levels, which the
// ε_l = (1+ε)^(1/L)−1 allocation accounts for. Candidates for one
// table set arrive in split-enumeration order on a single worker
// regardless of the worker count (the determinism contract), so the
// gate's drops — and with them the whole plan set — are bit-for-bit
// identical for any worker count.
func (w *worker) pruneEps(cur []*PlanInfo, pn *plan.Node, cost Cost) []*PlanInfo {
	o := w.o
	w.created++
	alg := w.algebra.(EpsilonAlgebra) // validated by OptimizeCtx
	scale := 1 + o.epsLevel
	var relaxed []*geometry.Polytope
	for _, old := range cur {
		relaxed = append(relaxed, alg.DomScaled(old.Cost, cost, 1, scale)...)
	}
	if len(relaxed) > 0 && w.solver.UnionCovers(o.model.Space(), relaxed) {
		w.pruned++
		return cur // absorbed: some established plan is ε-close everywhere
	}
	return w.pruneInsert(cur, pn, cost)
}

// ParetoFrontAt evaluates the result's plan set at a concrete parameter
// vector and returns the plans whose cost vectors are Pareto-optimal
// within the set, in plan order — the run-time plan-selection step of
// Figure 2.
func (r *Result) ParetoFrontAt(algebra Algebra, x geometry.Vector) []*PlanInfo {
	type entry struct {
		info *PlanInfo
		cost geometry.Vector
	}
	entries := make([]entry, 0, len(r.Plans))
	for _, info := range r.Plans {
		entries = append(entries, entry{info, algebra.Eval(info.Cost, x)})
	}
	var out []*PlanInfo
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if dominatesVec(other.cost, e.cost) && !other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
			// Among equal-cost plans keep only the first.
			if j < i && other.cost.Equal(e.cost, 1e-12) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, e.info)
		}
	}
	return out
}

// dominatesVec reports a <= b component-wise (with tolerance).
func dominatesVec(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}
