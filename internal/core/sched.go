package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/plan"
	"mpq/internal/pwl"
)

// defaultSplitWork is the estimated accumulation work at which a mask
// becomes "wide" enough for intra-mask split parallelism when Options
// leaves the threshold at zero. Work is measured in piece-pair units
// (see splitWorkEstimate): a candidate's accumulation cost is driven by
// the product of its sides' per-metric piece counts, so a mask with
// many single-piece candidates (cheap, fast to accumulate) no longer
// splits as eagerly as one whose candidates carry rich PWL costs.
// Below the threshold, the fixed cost of publishing a split job
// exceeds the accumulation work it parallelizes.
const defaultSplitWork = 512

// SchedulerStats reports the pipeline behavior of the dependency
// scheduler. Unlike the plan and LP counters, these are scheduling
// metrics: Tasks and SplitJobs depend on runtime idleness heuristics and
// Busy/Wall on wall-clock time, so they are NOT part of the determinism
// contract and may differ between runs and worker counts.
type SchedulerStats struct {
	// Tasks counts executed scheduler tasks: mask plans, split chunks,
	// and split reductions.
	Tasks int
	// SplitJobs counts masks planned with intra-mask split parallelism.
	SplitJobs int
	// SplitChunks counts parallel accumulation chunks executed across
	// all split jobs.
	SplitChunks int
	// DonatedTasks counts work stints executed by goroutines lent
	// through Options.Donor (each stint claims split chunks or whole
	// ready masks until none are immediately runnable). Zero without a
	// donor.
	DonatedTasks int
	// DonatedMasks counts whole masks planned by donated workers —
	// mask-level donation raises the effective worker count mid-run, so
	// narrow queries without split jobs parallelize too. Zero without a
	// donor.
	DonatedMasks int
	// Busy is the summed per-worker time spent inside tasks, including
	// donated workers.
	Busy time.Duration
	// Wall is the wall-clock duration of the scheduling phase.
	Wall time.Duration
}

// DonorPool lends idle goroutines to an optimizer run — the
// scheduler-aware serving hook: a serving layer whose request queue is
// empty donates its idle solver-pool workers to an in-flight Prepare's
// split jobs instead of letting them sleep. Implementations must be
// safe for concurrent use.
type DonorPool interface {
	// Idle returns a momentary estimate of the goroutines the pool
	// could lend right now. The scheduler uses it to decide whether
	// splitting a mask is worthwhile; it may be stale by the time
	// Offer is called.
	Idle() int
	// Offer proposes a transient task. The pool either arranges for
	// task to run promptly on an idle goroutine and returns true, or
	// declines with false (no idle capacity). task returns when the
	// donated work is exhausted; the scheduler waits for every accepted
	// task before its run completes.
	Offer(task func()) bool
}

// Utilization returns the mean fraction of the worker pool kept busy
// while the scheduler ran: Busy / (Wall × workers). 1.0 means perfectly
// pipelined; the wavefront barrier of earlier versions dropped well
// below that on small-wavefront shapes (cliques, star hubs).
func (s SchedulerStats) Utilization(workers int) float64 {
	if s.Wall <= 0 || workers <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Wall) * float64(workers))
	if u > 1 {
		u = 1
	}
	return u
}

// splitGroup is one split of a table set: the Pareto sets of the two
// sides and the join alternatives connecting them. Candidate plans of a
// group are ordered exactly like the historical triple loop — first
// side's plans outermost, join alternatives innermost.
type splitGroup struct {
	p1s, p2s []*PlanInfo
	alts     []Alternative
}

func (g *splitGroup) candidates() int { return len(g.p1s) * len(g.p2s) * len(g.alts) }

// workEstimate approximates the group's accumulation cost in piece-pair
// units: accumulating one candidate intersects its sides' piece
// partitions per metric, so the cost of the whole group is the summed
// per-metric product of the sides' total piece counts, times the join
// alternatives. Non-PWL costs count one piece per metric, so the
// estimate is always at least the candidate count.
func (g *splitGroup) workEstimate() int {
	metrics := 0
	for _, p := range g.p1s {
		if m, ok := p.Cost.(*pwl.Multi); ok {
			metrics = m.NumMetrics()
		}
		break
	}
	if metrics == 0 {
		return g.candidates()
	}
	work := 0
	for m := 0; m < metrics; m++ {
		s1, ok1 := sidePieces(g.p1s, m)
		s2, ok2 := sidePieces(g.p2s, m)
		if !ok1 || !ok2 {
			return g.candidates()
		}
		work += s1 * s2
	}
	return len(g.alts) * work
}

// sidePieces sums the piece counts of metric m over one side's plans;
// ok is false when a cost is not PWL.
func sidePieces(plans []*PlanInfo, m int) (int, bool) {
	total := 0
	for _, p := range plans {
		multi, ok := p.Cost.(*pwl.Multi)
		if !ok {
			return 0, false
		}
		total += multi.Component(m).NumPieces()
	}
	return total, true
}

// enumerateSplits lists the split groups of q in the exact order and
// with the exact CostModel call pattern of the sequential algorithm:
// one pass over splits with a connecting join predicate; when it yields
// no candidate, a second pass over all splits (the Cartesian
// postponement fallback of the paper's experiments).
func (o *optimizer) enumerateSplits(q catalog.TableSet) []splitGroup {
	groups, produced := o.collectSplits(q, true)
	if !produced {
		groups, _ = o.collectSplits(q, false)
	}
	return groups
}

func (o *optimizer) collectSplits(q catalog.TableSet, requireEdge bool) ([]splitGroup, bool) {
	var groups []splitGroup
	produced := false
	q.SubsetsProper(func(q1 catalog.TableSet) bool {
		q2 := q.Minus(q1)
		p1s, p2s := o.store.get(q1), o.store.get(q2)
		if len(p1s) == 0 || len(p2s) == 0 {
			return true
		}
		if o.opts.PostponeCartesian && requireEdge && !o.schema.HasEdgeBetween(q1, q2) {
			return true
		}
		alts := o.model.JoinAlternatives(q1, q2)
		if len(alts) == 0 {
			return true
		}
		groups = append(groups, splitGroup{p1s: p1s, p2s: p2s, alts: alts})
		produced = true
		return true
	})
	return groups, produced
}

// forEachCandidate invokes fn for every candidate of the split groups
// in the canonical order: split order, then first side's plans, second
// side's plans, join alternatives (the historical triple loop). Both
// the sequential path and the split-job reduction iterate through this
// one function, so their candidate orders can never diverge — the
// byte-identity contract depends on that. splitJob.candidate decodes
// the same order for random access; keep the two in sync.
func forEachCandidate(groups []splitGroup, fn func(idx int, i1, i2 *PlanInfo, alt Alternative)) {
	idx := 0
	for gi := range groups {
		g := &groups[gi]
		for _, i1 := range g.p1s {
			for _, i2 := range g.p2s {
				for _, alt := range g.alts {
					fn(idx, i1, i2, alt)
					idx++
				}
			}
		}
	}
}

// planGroups generates and prunes every candidate plan of the split
// groups in order — the historical GenerateParetoPlanSet loop body,
// operating on a worker-local candidate set.
func (w *worker) planGroups(groups []splitGroup) []*PlanInfo {
	var cur []*PlanInfo
	forEachCandidate(groups, func(_ int, i1, i2 *PlanInfo, alt Alternative) {
		pn := plan.Join(alt.Op, i1.Plan, i2.Plan)
		cur = w.prune(cur, pn, w.algebra.Accumulate(alt.Cost, i1.Cost, i2.Cost))
	})
	return cur
}

// splitJob is the intra-mask split parallelism of one wide mask. Phase
// A: workers claim chunks of the candidate sequence and accumulate each
// candidate's cost on their own algebra fork (candidate accumulation is
// self-contained — it reads only immutable subset costs — so the chunk
// partition cannot change any result or counter; memoized geometry is
// computed and counted exactly once per polytope in every schedule).
// Phase B: whichever worker finishes the last chunk prunes all
// candidates in the exact sequential order against a single evolving
// candidate set — the order-preserving reduction that makes the merged
// result byte-identical to the sequential one.
type splitJob struct {
	q       catalog.TableSet
	groups  []splitGroup
	offsets []int  // offsets[i] = first candidate index of groups[i]
	costs   []Cost // per-candidate accumulated costs (phase A output)
	chunk   int    // candidates per chunk
	chunks  int
	next    atomic.Int64 // next unclaimed chunk
	left    atomic.Int64 // chunks not yet finished
}

func newSplitJob(q catalog.TableSet, groups []splitGroup, total, workers int) *splitJob {
	j := &splitJob{
		q:       q,
		groups:  groups,
		offsets: make([]int, len(groups)+1),
		costs:   make([]Cost, total),
	}
	for i := range groups {
		j.offsets[i+1] = j.offsets[i] + groups[i].candidates()
	}
	// Aim for a few chunks per worker so late joiners still find work,
	// without shrinking chunks into scheduling overhead.
	j.chunk = total / (4 * workers)
	if j.chunk < 4 {
		j.chunk = 4
	}
	j.chunks = (total + j.chunk - 1) / j.chunk
	j.left.Store(int64(j.chunks))
	return j
}

func (j *splitJob) exhausted() bool { return j.next.Load() >= int64(j.chunks) }

// candidate returns the decoded candidate at index idx of group gi:
// its sub-plans and the join alternative, following the triple-loop
// order (i1 outer, i2 middle, alt inner).
func (j *splitJob) candidate(gi, idx int) (i1, i2 *PlanInfo, alt Alternative) {
	g := &j.groups[gi]
	r := idx - j.offsets[gi]
	na, n2 := len(g.alts), len(g.p2s)
	ai := r % na
	r /= na
	b := r % n2
	a := r / n2
	return g.p1s[a], g.p2s[b], g.alts[ai]
}

// runChunk accumulates the costs of chunk c on worker w.
func (j *splitJob) runChunk(w *worker, c int) {
	lo := c * j.chunk
	hi := lo + j.chunk
	if hi > len(j.costs) {
		hi = len(j.costs)
	}
	gi := 0
	for j.offsets[gi+1] <= lo {
		gi++
	}
	for idx := lo; idx < hi; idx++ {
		for j.offsets[gi+1] <= idx {
			gi++
		}
		i1, i2, alt := j.candidate(gi, idx)
		j.costs[idx] = w.algebra.Accumulate(alt.Cost, i1.Cost, i2.Cost)
	}
}

// reduce prunes every candidate in sequential order using the costs of
// phase A. It runs exactly once, after the last chunk completes.
func (j *splitJob) reduce(w *worker) []*PlanInfo {
	var cur []*PlanInfo
	forEachCandidate(j.groups, func(idx int, i1, i2 *PlanInfo, alt Alternative) {
		pn := plan.Join(alt.Op, i1.Plan, i2.Plan)
		cur = w.prune(cur, pn, j.costs[idx])
	})
	return cur
}

// scheduler drives the dependency-pipelined execution of a run's join
// masks: a mask becomes runnable the moment every scheduled strict
// subset has completed (not when its whole cardinality class has),
// workers pull runnable masks from the ready queue, and completed
// Pareto sets are published into the sharded store. See DESIGN.md,
// "Concurrency model".
type scheduler struct {
	o *optimizer

	// Immutable dependency structure over the scheduled masks (k >= 2),
	// in deterministic cardinality-then-value order.
	masks      []catalog.TableSet
	idx        map[catalog.TableSet]int32
	dependents [][]int32

	mu        sync.Mutex
	cond      *sync.Cond
	deps      []int32 // remaining incomplete scheduled subsets per mask
	ready     []int32 // runnable mask indices (FIFO)
	readyHead int
	jobs      []*splitJob // split jobs with unclaimed chunks (LIFO)
	remaining int         // masks not yet completed
	idle      int         // workers waiting for a task

	tasks       atomic.Int64
	splitJobs   atomic.Int64
	splitChunks atomic.Int64

	// aborted flips when the run's context is done: workers stop
	// claiming tasks at the next checkpoint (between masks and between
	// split chunks) and unwind. Checkpoints are passive reads, so a run
	// that never observes the flag executes exactly like one without a
	// cancellable context — the byte-identity contract is untouched.
	aborted atomic.Bool

	// Donated helpers (Options.Donor): accepted offers are tracked by
	// donateWG so the run cannot complete (and stats cannot be read)
	// while a donated worker is still mid-chunk or mid-mask; finished
	// helpers park their worker state in donated for the stat merge.
	donateWG     sync.WaitGroup
	donatedMu    sync.Mutex
	donated      []*worker
	donatedTasks atomic.Int64
	donatedMasks atomic.Int64
}

// newScheduler builds the dependency graph: deps[i] counts the
// scheduled strict subsets of masks[i] (base tables are complete before
// the scheduler starts and are not counted), dependents[i] lists the
// masks unblocked by masks[i]'s completion.
func newScheduler(o *optimizer, masks []catalog.TableSet) *scheduler {
	s := &scheduler{
		o:          o,
		masks:      masks,
		idx:        make(map[catalog.TableSet]int32, len(masks)),
		deps:       make([]int32, len(masks)),
		dependents: make([][]int32, len(masks)),
		remaining:  len(masks),
	}
	s.cond = sync.NewCond(&s.mu)
	for i, q := range masks {
		s.idx[q] = int32(i)
	}
	for i, q := range masks {
		q.SubsetsProper(func(sub catalog.TableSet) bool {
			if si, ok := s.idx[sub]; ok {
				s.deps[i]++
				s.dependents[si] = append(s.dependents[si], int32(i))
			}
			return true
		})
	}
	for i := range masks {
		if s.deps[i] == 0 {
			s.ready = append(s.ready, int32(i))
		}
	}
	return s
}

// run executes all masks on the optimizer's workers and returns the
// scheduler metrics.
func (s *scheduler) run() SchedulerStats {
	start := time.Now() //mpq:wallclock SchedulerStats.Wall timing; never reaches plan bytes
	// Watch the run context: on cancellation, set the abort flag and
	// wake every worker parked in next()'s cond.Wait so the pool drains
	// promptly instead of on its next natural wakeup.
	stopWatch := make(chan struct{})
	if done := s.o.runCtx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				s.abort()
			case <-stopWatch:
			}
		}()
	}
	// The initial ready queue (no scheduled dependencies) is the first
	// chance for mask-level donation: lend idle pool goroutines before
	// the resident workers have even started.
	s.tryDonateMasks()
	var wg sync.WaitGroup
	for _, w := range s.o.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			s.workerLoop(w)
		}(w)
	}
	wg.Wait()
	// Accepted donations may still be draining their final chunks;
	// every donated worker must retire before stats (and the caller's
	// result) are assembled.
	s.donateWG.Wait()
	close(stopWatch)
	st := SchedulerStats{
		Tasks:        int(s.tasks.Load()),
		SplitJobs:    int(s.splitJobs.Load()),
		SplitChunks:  int(s.splitChunks.Load()),
		DonatedTasks: int(s.donatedTasks.Load()),
		DonatedMasks: int(s.donatedMasks.Load()),
		Wall:         time.Since(start), //mpq:wallclock SchedulerStats.Wall timing; never reaches plan bytes
	}
	for _, w := range s.o.workers {
		st.Busy += w.busy
	}
	for _, w := range s.donated {
		st.Busy += w.busy
	}
	return st
}

// runSequential drains the masks in deterministic cardinality order on
// the single worker — bit-for-bit the historical sequential execution.
// The run context is checked between masks, the same checkpoint
// granularity as the parallel path.
func (s *scheduler) runSequential() SchedulerStats {
	start := time.Now() //mpq:wallclock SchedulerStats timing; never reaches plan bytes
	w := s.o.workers[0]
	done := 0
	for _, q := range s.masks {
		if s.o.runCtx.Err() != nil {
			break
		}
		infos := w.planGroups(s.o.enumerateSplits(q))
		s.o.store.complete(q, infos)
		done++
		if s.o.noteSetSize(len(infos)) {
			break
		}
	}
	s.mu.Lock()
	s.remaining -= done
	s.mu.Unlock()
	wall := time.Since(start) //mpq:wallclock SchedulerStats timing; never reaches plan bytes
	return SchedulerStats{Tasks: done, Busy: wall, Wall: wall}
}

// abort flips the abort flag and wakes every parked worker.
func (s *scheduler) abort() {
	s.aborted.Store(true)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// incomplete reports whether any scheduled mask has not completed.
func (s *scheduler) incomplete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remaining > 0
}

// workerLoop pulls tasks until every mask has completed.
func (s *scheduler) workerLoop(w *worker) {
	for {
		j, mi := s.next()
		if j == nil && mi < 0 {
			return
		}
		start := time.Now() //mpq:wallclock per-worker busy-time stat; never reaches plan bytes
		if j != nil {
			s.runJobChunks(w, j)
		} else {
			s.planMask(w, s.masks[mi])
		}
		w.busy += time.Since(start) //mpq:wallclock per-worker busy-time stat; never reaches plan bytes
	}
}

// next blocks until a task is available. Split chunks are preferred over
// fresh masks: they finish work already in flight, unblocking
// dependents sooner. Returns (nil, -1) when the run is complete.
func (s *scheduler) next() (*splitJob, int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.aborted.Load() {
			return nil, -1
		}
		for len(s.jobs) > 0 {
			j := s.jobs[len(s.jobs)-1]
			if j.exhausted() {
				s.jobs = s.jobs[:len(s.jobs)-1]
				continue
			}
			return j, -1
		}
		if s.readyHead < len(s.ready) {
			mi := s.ready[s.readyHead]
			s.readyHead++
			return nil, mi
		}
		if s.remaining == 0 {
			return nil, -1
		}
		s.idle++
		s.cond.Wait()
		s.idle--
	}
}

// planMask plans one mask. Wide masks with idle workers available are
// split into a parallel accumulation job; everything else runs the
// sequential per-mask path. Both paths produce identical plan sets and
// counters, so the activation heuristic only affects wall-clock time.
// Activation is cost-aware: the mask's estimated accumulation work
// (candidates weighted by a piece-pair estimate, see workEstimate) is
// compared against the threshold, so a wide mask of cheap single-piece
// candidates no longer splits eagerly while a narrower mask of
// piece-rich costs still does.
func (s *scheduler) planMask(w *worker, q catalog.TableSet) {
	s.tasks.Add(1)
	groups := s.o.enumerateSplits(q)
	total, work := 0, 0
	for i := range groups {
		total += groups[i].candidates()
		work += groups[i].workEstimate()
	}
	threshold := s.o.opts.SplitCandidates
	force := threshold > 0
	if threshold <= 0 {
		threshold = defaultSplitWork
	}
	donorIdle := s.donorIdle()
	if work >= threshold && (force || s.idleWorkers() > 0 || donorIdle > 0) {
		// Chunk for the parallelism actually in reach: the pool plus
		// whatever the donor estimates it could lend (chunking only
		// shapes scheduling; results are identical for any chunking).
		j := newSplitJob(q, groups, total, len(s.o.workers)+donorIdle)
		s.splitJobs.Add(1)
		s.publishJob(j)
		s.tryDonate(j, donorIdle)
		s.runJobChunks(w, j)
		return
	}
	s.complete(q, w.planGroups(groups))
}

// donorIdle estimates the goroutines Options.Donor could lend right
// now (0 without a usable donor).
func (s *scheduler) donorIdle() int {
	if s.o.opts.Donor == nil || s.o.forkable == nil {
		return 0
	}
	n := s.o.opts.Donor.Idle()
	if n < 0 {
		return 0
	}
	return n
}

// tryDonate offers split-job help to the donor pool: up to want
// transient workers, each claiming chunks of j until none remain. Each
// donated worker runs on its own solver and algebra fork, so donation
// cannot change results or aggregate counters — only wall-clock time.
func (s *scheduler) tryDonate(j *splitJob, want int) {
	donor := s.o.opts.Donor
	if donor == nil || s.o.forkable == nil {
		return
	}
	if max := j.chunks - 1; want > max {
		// The publishing worker processes chunks too; more helpers than
		// remaining chunks would go straight back idle.
		want = max
	}
	for i := 0; i < want; i++ {
		s.donateWG.Add(1)
		accepted := donor.Offer(func() {
			defer s.donateWG.Done()
			solver := s.o.ctx.Fork()
			w := &worker{o: s.o, solver: solver, algebra: s.o.forkable.Fork(solver)}
			start := time.Now() //mpq:wallclock donated-worker busy-time stat; never reaches plan bytes
			s.runJobChunks(w, j)
			w.busy = time.Since(start) //mpq:wallclock donated-worker busy-time stat; never reaches plan bytes
			s.donatedTasks.Add(1)
			s.donatedMu.Lock()
			s.donated = append(s.donated, w)
			s.donatedMu.Unlock()
		})
		if !accepted {
			s.donateWG.Done()
			return
		}
	}
}

// tryDonateMasks offers whole-mask help to the donor pool: up to one
// transient worker per runnable mask beyond what the resident pool can
// absorb, each claiming ready masks (and split chunks) until none are
// immediately runnable, then retiring back to the pool. A mask is a
// self-contained unit — it reads only completed subset sets and
// publishes through complete() — so mask-level donation is exactly a
// mid-run raise of the effective worker count: results and plan/LP
// counters are identical for every donation schedule, only wall-clock
// time changes (the byte-identity contract of DESIGN.md, "Concurrency
// model", covers any worker count).
func (s *scheduler) tryDonateMasks() {
	donor := s.o.opts.Donor
	if donor == nil || s.o.forkable == nil {
		return
	}
	want := s.donorIdle()
	s.mu.Lock()
	if backlog := len(s.ready) - s.readyHead - s.idle; want > backlog {
		// Parked resident workers will absorb part of the queue the
		// moment they wake; only lend for the excess.
		want = backlog
	}
	s.mu.Unlock()
	for i := 0; i < want; i++ {
		s.donateWG.Add(1)
		accepted := donor.Offer(func() {
			defer s.donateWG.Done()
			solver := s.o.ctx.Fork()
			w := &worker{o: s.o, solver: solver, algebra: s.o.forkable.Fork(solver)}
			start := time.Now() //mpq:wallclock donated-worker busy-time stat; never reaches plan bytes
			s.runReadyTasks(w)
			w.busy = time.Since(start) //mpq:wallclock donated-worker busy-time stat; never reaches plan bytes
			s.donatedTasks.Add(1)
			s.donatedMu.Lock()
			s.donated = append(s.donated, w)
			s.donatedMu.Unlock()
		})
		if !accepted {
			s.donateWG.Done()
			return
		}
	}
}

// runReadyTasks is a donated worker's stint: claim split chunks and
// ready masks without ever parking — donated goroutines belong to the
// serving pool and must return the moment nothing is immediately
// runnable.
func (s *scheduler) runReadyTasks(w *worker) {
	for {
		j, mi := s.tryNext()
		if j == nil && mi < 0 {
			return
		}
		if j != nil {
			s.runJobChunks(w, j)
		} else {
			s.donatedMasks.Add(1)
			s.planMask(w, s.masks[mi])
		}
	}
}

// tryNext is next() without the blocking wait: it returns (nil, -1)
// when no task is immediately runnable instead of parking.
func (s *scheduler) tryNext() (*splitJob, int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted.Load() {
		return nil, -1
	}
	for len(s.jobs) > 0 {
		j := s.jobs[len(s.jobs)-1]
		if j.exhausted() {
			s.jobs = s.jobs[:len(s.jobs)-1]
			continue
		}
		return j, -1
	}
	if s.readyHead < len(s.ready) {
		mi := s.ready[s.readyHead]
		s.readyHead++
		return nil, mi
	}
	return nil, -1
}

// runJobChunks claims and processes chunks of j until none remain. The
// worker finishing the last chunk runs the order-preserving reduction
// and completes the mask.
func (s *scheduler) runJobChunks(w *worker, j *splitJob) {
	for {
		if s.aborted.Load() {
			return
		}
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		s.tasks.Add(1)
		s.splitChunks.Add(1)
		j.runChunk(w, c)
		if j.left.Add(-1) == 0 {
			s.tasks.Add(1)
			s.complete(j.q, j.reduce(w))
		}
	}
}

func (s *scheduler) publishJob(j *splitJob) {
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) idleWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idle
}

// complete publishes a mask's Pareto set into the sharded store and
// unblocks every dependent whose last dependency this was.
func (s *scheduler) complete(q catalog.TableSet, infos []*PlanInfo) {
	s.o.store.complete(q, infos)
	if s.o.noteSetSize(len(infos)) {
		// Plan-set budget tripped: stop handing out work. The
		// bookkeeping below still runs so dependents don't deadlock on
		// this mask, and the broadcast wakes parked workers to observe
		// the abort.
		s.aborted.Store(true)
	}
	s.mu.Lock()
	s.remaining--
	readied := 0
	if i, ok := s.idx[q]; ok {
		for _, di := range s.dependents[i] {
			s.deps[di]--
			if s.deps[di] == 0 {
				s.ready = append(s.ready, di)
				readied++
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if readied > 0 {
		// Freshly runnable masks are another donation opportunity: lend
		// idle pool goroutines for whatever the resident workers cannot
		// absorb right now.
		s.tryDonateMasks()
	}
}
