package core

import (
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/plan"
	"mpq/internal/pwl"
)

// planWithPieces builds a PlanInfo whose single-metric PWL cost has n
// pieces over [0,1].
func planWithPieces(t *testing.T, metrics, n int) *PlanInfo {
	t.Helper()
	comps := make([]*pwl.Function, metrics)
	for m := 0; m < metrics; m++ {
		pieces := make([]pwl.Piece, n)
		for i := 0; i < n; i++ {
			lo, hi := float64(i)/float64(n), float64(i+1)/float64(n)
			pieces[i] = pwl.Piece{
				Region: geometry.Interval(lo, hi),
				W:      geometry.Vector{1},
				B:      float64(i),
			}
		}
		comps[m] = pwl.NewFunction(pieces...)
	}
	return &PlanInfo{Plan: plan.Scan(0, "s"), Cost: pwl.NewMulti(comps...)}
}

// TestSplitWorkEstimate: the activation estimate must scale with the
// sides' piece counts — a group of single-piece candidates weighs its
// candidate count (times metrics), a piece-rich group weighs the
// per-metric piece-count products — and must never undercount the
// candidate count (so explicit SplitCandidates thresholds of 1 still
// force split jobs everywhere, the contract of the equivalence tests).
func TestSplitWorkEstimate(t *testing.T) {
	cheap := splitGroup{
		p1s:  []*PlanInfo{planWithPieces(t, 2, 1), planWithPieces(t, 2, 1)},
		p2s:  []*PlanInfo{planWithPieces(t, 2, 1), planWithPieces(t, 2, 1)},
		alts: []Alternative{{Op: "J"}},
	}
	// 2 metrics × (2 pieces × 2 pieces) = 8; candidates = 4.
	if got, want := cheap.workEstimate(), 8; got != want {
		t.Errorf("cheap group work = %d, want %d", got, want)
	}
	rich := splitGroup{
		p1s:  []*PlanInfo{planWithPieces(t, 2, 8), planWithPieces(t, 2, 8)},
		p2s:  []*PlanInfo{planWithPieces(t, 2, 8), planWithPieces(t, 2, 8)},
		alts: []Alternative{{Op: "J"}},
	}
	// 2 metrics × (16 × 16) = 512 for the same 4 candidates.
	if got, want := rich.workEstimate(), 512; got != want {
		t.Errorf("rich group work = %d, want %d", got, want)
	}
	if cheap.workEstimate() < cheap.candidates() || rich.workEstimate() < rich.candidates() {
		t.Error("work estimate undercounts the candidate count")
	}
	// Non-PWL costs fall back to the candidate count.
	opaque := splitGroup{
		p1s:  []*PlanInfo{{Plan: plan.Scan(0, "s"), Cost: "opaque"}},
		p2s:  []*PlanInfo{{Plan: plan.Scan(1, "s"), Cost: "opaque"}},
		alts: []Alternative{{Op: "J"}, {Op: "K"}},
	}
	if got, want := opaque.workEstimate(), 2; got != want {
		t.Errorf("opaque group work = %d, want %d", got, want)
	}
}
