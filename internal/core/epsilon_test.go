package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
	"mpq/internal/workload"
)

// optimizeEps runs one optimizer invocation with the given epsilon and
// worker count, returning the result together with the model (for
// sampling and evaluation in regret checks).
func optimizeEps(t *testing.T, cfg workload.Config, eps float64, workers int) (*core.Result, core.CostModel) {
	t.Helper()
	schema, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = workers
	opts.Epsilon = eps
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, model
}

// TestEpsilonValidation: negative epsilon and epsilon on an algebra
// without the EpsilonAlgebra operations must fail fast rather than
// silently running the exact prune.
func TestEpsilonValidation(t *testing.T) {
	schema, err := workload.Generate(workload.Config{Tables: 3, Params: 1, Shape: workload.Chain, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Epsilon = -0.1
	if _, err := core.Optimize(schema, model, opts); err == nil {
		t.Error("negative epsilon accepted")
	}
	opts.Epsilon = 0.1
	opts.Algebra = nonForkable{core.NewPWLAlgebra(ctx, 2)}
	_, err = core.Optimize(schema, model, opts)
	if err == nil {
		t.Fatal("epsilon with non-EpsilonAlgebra accepted")
	}
	if !strings.Contains(err.Error(), "EpsilonAlgebra") {
		t.Errorf("error %q does not name the missing interface", err)
	}
}

// TestEpsilonDeterminismAcrossWorkers asserts the determinism contract
// of the ε-approximate prune: for a fixed workload seed and fixed ε,
// every worker count produces the identical plan set (same plans, same
// order, same relevance footprints) and identical plan statistics. The
// ε-admission gate sees candidates for each table set in the same
// enumeration order on every schedule (one worker completes a set), so
// the parallel wavefront cannot perturb which plans it drops.
func TestEpsilonDeterminismAcrossWorkers(t *testing.T) {
	cases := []workload.Config{
		{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 3},
		{Tables: 4, Params: 2, Shape: workload.Star, Seed: 11},
	}
	for _, cfg := range cases {
		for _, eps := range []float64{0, 0.05, 0.1} {
			t.Run(fmt.Sprintf("%s-%dp-%dt/eps=%g", cfg.Shape, cfg.Params, cfg.Tables, eps), func(t *testing.T) {
				seq, _ := optimizeEps(t, cfg, eps, 1)
				for _, workers := range []int{2, 4, 0} {
					par, _ := optimizeEps(t, cfg, eps, workers)
					if got, want := len(par.Plans), len(seq.Plans); got != want {
						t.Fatalf("workers=%d: %d final plans, sequential %d", workers, got, want)
					}
					for i := range par.Plans {
						if g, w := planKey(par.Plans[i]), planKey(seq.Plans[i]); g != w {
							t.Errorf("workers=%d: plan %d = %s, sequential %s", workers, i, g, w)
						}
					}
					if par.Stats.CreatedPlans != seq.Stats.CreatedPlans ||
						par.Stats.PrunedPlans != seq.Stats.PrunedPlans ||
						par.Stats.FinalPlans != seq.Stats.FinalPlans ||
						par.Stats.MaxPlansPerSet != seq.Stats.MaxPlansPerSet {
						t.Errorf("workers=%d: plan stats %+v, sequential %+v", workers, par.Stats, seq.Stats)
					}
				}
			})
		}
	}
}

// TestEpsilonZeroMatchesExact: Epsilon = 0 must take the historical
// exact code path — identical plans and identical statistics, LP counts
// included, to a run that never heard of the epsilon knob.
func TestEpsilonZeroMatchesExact(t *testing.T) {
	cfg := workload.Config{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 7}
	exact := optimizeWorkload(t, cfg, nil, 1)
	zero, _ := optimizeEps(t, cfg, 0, 1)
	if len(exact.Plans) != len(zero.Plans) {
		t.Fatalf("eps=0: %d plans, exact %d", len(zero.Plans), len(exact.Plans))
	}
	for i := range exact.Plans {
		if g, w := planKey(zero.Plans[i]), planKey(exact.Plans[i]); g != w {
			t.Errorf("plan %d = %s, exact %s", i, g, w)
		}
	}
	if exact.Stats.Geometry != zero.Stats.Geometry {
		t.Errorf("eps=0 geometry stats %v, exact %v", zero.Stats.Geometry, exact.Stats.Geometry)
	}
}

// TestEpsilonReducesPlansWithBoundedRegret: raising ε must not grow the
// final plan set, must shrink it at ε = 0.1 on this workload, and every
// surviving set must cover the exact frontier within a multiplicative
// (1+ε) at every sampled parameter point: for each exact plan relevant
// at x there is an ε-tier plan relevant at x whose cost vector is at
// most (1+ε) times the exact plan's on every metric.
func TestEpsilonReducesPlansWithBoundedRegret(t *testing.T) {
	cfg := workload.Config{Tables: 6, Params: 1, Shape: workload.Chain, Seed: 3}
	exact, model := optimizeEps(t, cfg, 0, 1)
	lo, hi, err := catalogBounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	points := make([]geometry.Vector, 40)
	for i := range points {
		x := geometry.NewVector(len(lo))
		for d := range x {
			x[d] = lo[d] + (0.05+0.9*rng.Float64())*(hi[d]-lo[d])
		}
		points[i] = x
	}
	_ = model
	prev := len(exact.Plans)
	for _, eps := range []float64{0.01, 0.1} {
		res, _ := optimizeEps(t, cfg, eps, 1)
		if len(res.Plans) > prev {
			t.Errorf("eps=%g: %d plans, exceeds smaller-eps count %d", eps, len(res.Plans), prev)
		}
		prev = len(res.Plans)
		bound := (1 + eps) * (1 + 1e-9)
		for _, x := range points {
			for _, p := range exact.Plans {
				if !p.RR.Contains(x, 1e-9) {
					continue
				}
				pv, _ := p.Cost.(*pwl.Multi).Eval(x)
				best := maxRegretAt(res.Plans, x, pv)
				if best > bound {
					t.Fatalf("eps=%g: regret %v > %v at x=%v", eps, best, bound, x)
				}
			}
		}
	}
	small, _ := optimizeEps(t, cfg, 0.1, 1)
	if len(small.Plans) >= len(exact.Plans) {
		t.Errorf("eps=0.1 kept %d plans, exact %d: no reduction on this workload", len(small.Plans), len(exact.Plans))
	}
}

// maxRegretAt returns the smallest over relevant plans of the largest
// per-metric ratio against the reference cost vector ref.
func maxRegretAt(plans []*core.PlanInfo, x geometry.Vector, ref geometry.Vector) float64 {
	best := 0.0
	first := true
	for _, q := range plans {
		if !q.RR.Contains(x, 1e-9) {
			continue
		}
		qv, _ := q.Cost.(*pwl.Multi).Eval(x)
		worst := 0.0
		for m := range ref {
			var r float64
			switch {
			case ref[m] > 1e-12:
				r = qv[m] / ref[m]
			case qv[m] > 1e-12:
				r = 1e18 // reference ~0, candidate not: unbounded regret
			default:
				r = 1
			}
			if r > worst {
				worst = r
			}
		}
		if first || worst < best {
			best, first = worst, false
		}
	}
	if first {
		return 1e18 // no relevant plan at x: coverage hole
	}
	return best
}

// catalogBounds regenerates the workload schema and returns its
// parameter bounds for sampling.
func catalogBounds(cfg workload.Config) (lo, hi geometry.Vector, err error) {
	schema, err := workload.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	lo, hi = schema.ParameterBounds()
	return lo, hi, nil
}

// manyObjModel is a CostModel with an arbitrary number of metrics whose
// per-operator costs are constants 1.0 plus a deterministic sub-1%%
// jitter: generic enough that almost every pair of plans is
// Pareto-incomparable (the exact frontier of a k-table set grows with
// the number of join trees times operator assignments), yet so close in
// value that a coarse ε collapses each set to its single cheapest
// representative.
type manyObjModel struct {
	space   *geometry.Polytope
	metrics []string
}

func newManyObjModel(metrics int) *manyObjModel {
	names := make([]string, metrics)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	space := geometry.Box(geometry.Vector{0}, geometry.Vector{1})
	return &manyObjModel{space: space, metrics: names}
}

func (m *manyObjModel) Space() *geometry.Polytope { return m.space }
func (m *manyObjModel) MetricNames() []string     { return m.metrics }

// cost builds the constant multi-metric cost 1 + 0.01·jitter(tags, m).
func (m *manyObjModel) cost(tags ...uint64) core.Cost {
	comps := make([]*pwl.Function, len(m.metrics))
	for i := range comps {
		comps[i] = pwl.Constant(m.space, 1+0.01*jitterHash(append(tags, uint64(i))...))
	}
	return pwl.NewMulti(comps...)
}

func (m *manyObjModel) ScanAlternatives(t catalog.TableID) []core.Alternative {
	return []core.Alternative{
		{Op: "scanA", Cost: m.cost(1, uint64(t))},
		{Op: "scanB", Cost: m.cost(2, uint64(t))},
	}
}

func (m *manyObjModel) JoinAlternatives(left, right catalog.TableSet) []core.Alternative {
	return []core.Alternative{
		{Op: "joinA", Cost: m.cost(3, uint64(left), uint64(right))},
		{Op: "joinB", Cost: m.cost(4, uint64(left), uint64(right))},
	}
}

// jitterHash maps integer tags to a deterministic value in [0, 1)
// (FNV-1a folded to three decimal digits).
func jitterHash(tags ...uint64) float64 {
	h := uint64(1469598103934665603)
	for _, b := range tags {
		h ^= b
		h *= 1099511628211
	}
	return float64(h%1000) / 1000
}

// manyObjSchema is a chain of n unit tables joined left to right.
func manyObjSchema(n int) *catalog.Schema {
	s := &catalog.Schema{NumParams: 1}
	for i := 0; i < n; i++ {
		s.Tables = append(s.Tables, catalog.Table{Name: fmt.Sprintf("T%d", i+1), Card: 1, TupleBytes: 1})
		if i > 0 {
			s.Edges = append(s.Edges, catalog.JoinEdge{A: catalog.TableID(i - 1), B: catalog.TableID(i), Sel: 1})
		}
	}
	return s
}

// TestManyObjectiveRequiresEpsilon: with four near-tied metrics almost
// every candidate is Pareto-incomparable, so the exact optimizer blows
// through any reasonable per-set plan budget — deterministically, for
// any worker count. The same workload under a coarse ε collapses each
// table set to a single representative and completes inside the same
// budget. This is the gated many-objective configuration of the
// ε-frontier design: exact is infeasible, approximate is cheap.
func TestManyObjectiveRequiresEpsilon(t *testing.T) {
	schema := manyObjSchema(5)
	model := newManyObjModel(4)
	run := func(eps float64, workers int) (*core.Result, error) {
		opts := core.DefaultOptions()
		opts.Context = geometry.NewContext()
		opts.Workers = workers
		opts.Epsilon = eps
		opts.MaxPlansPerSet = 100
		return core.Optimize(schema, model, opts)
	}
	for _, workers := range []int{1, 2, 4} {
		if _, err := run(0, workers); !errors.Is(err, core.ErrPlanBudget) {
			t.Fatalf("workers=%d: exact run error = %v, want ErrPlanBudget", workers, err)
		}
	}
	res, err := run(0.5, 1)
	if err != nil {
		t.Fatalf("eps=0.5 run failed: %v", err)
	}
	if res.Stats.MaxPlansPerSet > 100 {
		t.Errorf("eps run max plans per set %d exceeds budget", res.Stats.MaxPlansPerSet)
	}
	if len(res.Plans) == 0 {
		t.Fatal("eps run produced no plans")
	}
	for _, workers := range []int{2, 4} {
		par, err := run(0.5, workers)
		if err != nil {
			t.Fatalf("eps=0.5 workers=%d failed: %v", workers, err)
		}
		if len(par.Plans) != len(res.Plans) {
			t.Fatalf("workers=%d: %d plans, sequential %d", workers, len(par.Plans), len(res.Plans))
		}
		for i := range par.Plans {
			if g, w := planKey(par.Plans[i]), planKey(res.Plans[i]); g != w {
				t.Errorf("workers=%d: plan %d = %s, sequential %s", workers, i, g, w)
			}
		}
	}
}
