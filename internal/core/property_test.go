package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// randStaticAlternatives builds random piecewise-linear plan
// alternatives over [0,1]^dim: each metric is a PWL interpolation of a
// random quadratic.
func randStaticAlternatives(r *rand.Rand, space *geometry.Polytope, dim, nM, plans int) []Alternative {
	lo := geometry.NewVector(dim)
	hi := geometry.NewVector(dim)
	for i := range hi {
		hi[i] = 1
	}
	grid := pwl.NewGrid(lo, hi, 1+r.Intn(2))
	alts := make([]Alternative, 0, plans)
	for p := 0; p < plans; p++ {
		comps := make([]*pwl.Function, nM)
		for m := 0; m < nM; m++ {
			a := r.Float64()*4 - 2
			b := r.Float64()*4 - 2
			c := r.Float64() * 3
			f := func(x geometry.Vector) float64 {
				s := c
				for i := range x {
					s += a*x[i]*x[i] + b*x[i]
				}
				return s
			}
			comps[m] = grid.Interpolate(f).WithCover(space)
		}
		alts = append(alts, Alternative{Op: fmt.Sprintf("p%d", p), Cost: pwl.NewMulti(comps...)})
	}
	return alts
}

// TestStaticParetoProperty is the quick-check form of Theorem 3 for
// static plan sets: at every sampled parameter point, every alternative
// must be weakly dominated by some kept plan.
func TestStaticParetoProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(2)
		nM := 1 + r.Intn(2)
		plans := 3 + r.Intn(8)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range hi {
			hi[i] = 1
		}
		space := geometry.Box(lo, hi)
		alts := randStaticAlternatives(r, space, dim, nM, plans)
		schema := StaticSchema(dim, lo, hi)
		model := &StaticModel{ParamSpace: space, Metrics: metricNames(nM), Plans: alts}
		res, err := Optimize(schema, model, DefaultOptions())
		if err != nil {
			return false
		}
		if len(res.Plans) == 0 || len(res.Plans) > plans {
			return false
		}
		for _, x := range geometry.SamplePointsInBox(geometry.Vector(lo), geometry.Vector(hi), 4, 20) {
			for _, alt := range alts {
				av, _ := alt.Cost.(*pwl.Multi).Eval(x)
				covered := false
				for _, kept := range res.Plans {
					kv, _ := kept.Cost.(*pwl.Multi).Eval(x)
					dominates := true
					for m := range kv {
						if kv[m] > av[m]+1e-6*(1+abs(av[m])) {
							dominates = false
							break
						}
					}
					if dominates {
						covered = true
						break
					}
				}
				if !covered {
					t.Logf("seed %d: alternative %s uncovered at %v", seed, alt.Op, x)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestRelevanceRegionsCoverSpace: at every sampled point, at least one
// kept plan must be relevant — the relevance mapping property of
// Section 2 (for each x some plan with x in its RR dominates).
func TestRelevanceRegionsCoverSpace(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(2)
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := range hi {
			hi[i] = 1
		}
		space := geometry.Box(lo, hi)
		alts := randStaticAlternatives(r, space, dim, 2, 4+r.Intn(6))
		schema := StaticSchema(dim, lo, hi)
		model := &StaticModel{ParamSpace: space, Metrics: metricNames(2), Plans: alts}
		res, err := Optimize(schema, model, DefaultOptions())
		if err != nil {
			return false
		}
		// Interior sample points (strictly inside the box) must be in
		// some relevance region.
		pts := geometry.SamplePointsInBox(
			geometry.Vector(lo).Add(uniformVec(dim, 0.05)),
			geometry.Vector(hi).Sub(uniformVec(dim, 0.05)), 3, 9)
		for _, x := range pts {
			found := false
			for _, kept := range res.Plans {
				if kept.RR.Contains(x, 1e-9) {
					found = true
					break
				}
			}
			if !found {
				t.Logf("seed %d: no relevant plan at %v", seed, x)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func uniformVec(dim int, v float64) geometry.Vector {
	out := geometry.NewVector(dim)
	for i := range out {
		out[i] = v
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
