package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// randomLinearAlternatives draws plan cost functions with independent
// random linear weights, the probabilistic model of Theorem 6.
func randomLinearAlternatives(rng *rand.Rand, space *geometry.Polytope, nX, nM, plans int) []Alternative {
	alts := make([]Alternative, 0, plans)
	for p := 0; p < plans; p++ {
		comps := make([]*pwl.Function, nM)
		for m := 0; m < nM; m++ {
			w := geometry.NewVector(nX)
			for i := range w {
				w[i] = rng.Float64()
			}
			comps[m] = pwl.Linear(space, w, rng.Float64())
		}
		alts = append(alts, Alternative{Op: fmt.Sprintf("p%d", p), Cost: pwl.NewMulti(comps...)})
	}
	return alts
}

// TestTheorem6Bound checks the paper's complexity result empirically:
// with random independent cost weights, the expected number of Pareto
// plans per table set is at most 2^((nX+1)*nM). The empirical mean over
// several seeds must respect the bound (the bound is loose, so this
// holds with large margin), and the kept plans must be exactly the
// plans not dominated across the parameter space.
func TestTheorem6Bound(t *testing.T) {
	cases := []struct{ nX, nM int }{
		{1, 1}, {1, 2}, {2, 2},
	}
	const plans = 48
	const seeds = 8
	for _, tc := range cases {
		bound := 1 << uint((tc.nX+1)*tc.nM)
		total := 0
		for seed := int64(1); seed <= seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			lo := make([]float64, tc.nX)
			hi := make([]float64, tc.nX)
			for i := range hi {
				hi[i] = 1
			}
			space := geometry.Box(lo, hi)
			alts := randomLinearAlternatives(rng, space, tc.nX, tc.nM, plans)
			schema := StaticSchema(tc.nX, lo, hi)
			model := &StaticModel{ParamSpace: space, Metrics: metricNames(tc.nM), Plans: alts}
			res, err := Optimize(schema, model, DefaultOptions())
			if err != nil {
				t.Fatalf("nX=%d nM=%d seed=%d: %v", tc.nX, tc.nM, seed, err)
			}
			total += len(res.Plans)
		}
		mean := float64(total) / seeds
		if mean > float64(bound) {
			t.Errorf("nX=%d nM=%d: mean Pareto plans %.1f exceeds Theorem 6 bound %d",
				tc.nX, tc.nM, mean, bound)
		}
		t.Logf("nX=%d nM=%d: mean Pareto plans %.1f (Theorem 6 bound %d)", tc.nX, tc.nM, mean, bound)
	}
}

// TestTheorem6MoreMetricsMorePlans: adding a metric cannot shrink (in
// expectation) the Pareto set — single-metric optimization keeps ~1
// plan while two metrics keep several.
func TestTheorem6MoreMetricsMorePlans(t *testing.T) {
	const plans = 40
	count := func(nM int) int {
		total := 0
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			space := geometry.Interval(0, 1)
			alts := randomLinearAlternatives(rng, space, 1, nM, plans)
			schema := StaticSchema(1, []float64{0}, []float64{1})
			model := &StaticModel{ParamSpace: space, Metrics: metricNames(nM), Plans: alts}
			res, err := Optimize(schema, model, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			total += len(res.Plans)
		}
		return total
	}
	one := count(1)
	two := count(2)
	if two <= one {
		t.Errorf("plans with 2 metrics (%d) not larger than with 1 metric (%d)", two, one)
	}
}
