package core

import (
	"fmt"
	"sync/atomic"

	"mpq/internal/catalog"
)

// planStore is the cardinality-sharded Pareto-plan-set store behind the
// dependency scheduler (see DESIGN.md, "Concurrency model"). The full
// set of table sets a run will plan is known up front, so every shard is
// sized and indexed at construction and never changes shape afterwards;
// the only mutation is the one-shot publication of a completed Pareto
// set through an atomic pointer, which doubles as the completion mark.
// Readers therefore need no locks: a non-nil slot is complete and — by
// the release/acquire semantics of the atomic pointer — fully visible,
// a nil slot is still in flight, and a table set without a slot was
// never scheduled (disconnected subsets under Cartesian postponement),
// which planning treats exactly like an empty plan set.
type planStore struct {
	// shards[k] holds the scheduled table sets of cardinality k.
	shards []storeShard
}

type storeShard struct {
	// index maps a table set to its slot; immutable after construction.
	index map[catalog.TableSet]int
	slots []storeSlot
}

type storeSlot struct {
	plans atomic.Pointer[[]*PlanInfo]
}

// emptyPlanSet is the completion mark of a table set whose Pareto set
// came out empty: distinguishable from "in flight" (nil pointer) while
// behaving like an absent entry for readers (length zero).
var emptyPlanSet []*PlanInfo

// newPlanStore builds the store for the given scheduled table sets
// (base tables and join masks alike).
func newPlanStore(numTables int, masks []catalog.TableSet) *planStore {
	st := &planStore{shards: make([]storeShard, numTables+1)}
	counts := make([]int, numTables+1)
	for _, q := range masks {
		counts[q.Count()]++
	}
	for k := range st.shards {
		st.shards[k] = storeShard{
			index: make(map[catalog.TableSet]int, counts[k]),
			slots: make([]storeSlot, counts[k]),
		}
	}
	next := make([]int, numTables+1)
	for _, q := range masks {
		k := q.Count()
		sh := &st.shards[k]
		if _, dup := sh.index[q]; dup {
			panic(fmt.Sprintf("core: table set %v scheduled twice", q))
		}
		sh.index[q] = next[k]
		next[k]++
	}
	return st
}

// complete publishes the final Pareto set of q and marks it complete.
// Each slot completes exactly once.
func (st *planStore) complete(q catalog.TableSet, plans []*PlanInfo) {
	sh := &st.shards[q.Count()]
	i, ok := sh.index[q]
	if !ok {
		panic(fmt.Sprintf("core: completing unscheduled table set %v", q))
	}
	if plans == nil {
		plans = emptyPlanSet
	}
	if !sh.slots[i].plans.CompareAndSwap(nil, &plans) {
		panic(fmt.Sprintf("core: table set %v completed twice", q))
	}
}

// get returns the completed Pareto set of q. An unscheduled q yields an
// empty result (such sets are never planned, matching the sequential
// algorithm's absent map entries); a scheduled-but-incomplete q is a
// scheduler bug — the dependency ordering must have published every
// strict subset before a mask starts — and panics loudly instead of
// silently corrupting determinism.
func (st *planStore) get(q catalog.TableSet) []*PlanInfo {
	k := q.Count()
	if k >= len(st.shards) {
		return nil
	}
	sh := &st.shards[k]
	i, ok := sh.index[q]
	if !ok {
		return nil
	}
	p := sh.slots[i].plans.Load()
	if p == nil {
		panic(fmt.Sprintf("core: reading incomplete table set %v (scheduler dependency bug)", q))
	}
	return *p
}

// snapshot returns a fresh map of every completed non-empty Pareto set
// with copied slices, so callers can never alias or corrupt store
// state (Result.PerSet hands this to the API surface).
func (st *planStore) snapshot() map[catalog.TableSet][]*PlanInfo {
	out := make(map[catalog.TableSet][]*PlanInfo)
	for k := range st.shards {
		sh := &st.shards[k]
		//mpq:orderinvariant populates another map keyed by the same q; no order-dependent output can form
		for q, i := range sh.index {
			p := sh.slots[i].plans.Load()
			if p == nil || len(*p) == 0 {
				continue
			}
			cp := make([]*PlanInfo, len(*p))
			copy(cp, *p)
			out[q] = cp
		}
	}
	return out
}

// maxSetSize returns the largest completed Pareto set size across all
// shards (the Stats.MaxPlansPerSet quantity).
func (st *planStore) maxSetSize() int {
	max := 0
	for k := range st.shards {
		sh := &st.shards[k]
		for i := range sh.slots {
			if p := sh.slots[i].plans.Load(); p != nil && len(*p) > max {
				max = len(*p)
			}
		}
	}
	return max
}
