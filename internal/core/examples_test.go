package core

import (
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// staticOptimize runs RRPA on a set of alternative plans for one result.
func staticOptimize(t *testing.T, space *geometry.Polytope, metrics int, alts []Alternative) *Result {
	t.Helper()
	lo, hi, ok := geometry.NewContext().BoundingBox(space)
	if !ok {
		t.Fatal("static space must be bounded")
	}
	schema := StaticSchema(space.Dim(), lo, hi)
	model := &StaticModel{ParamSpace: space, Metrics: metricNames(metrics), Plans: alts}
	res, err := Optimize(schema, model, DefaultOptions())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return res
}

func metricNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return names
}

func planNames(res *Result) map[string]*PlanInfo {
	out := make(map[string]*PlanInfo, len(res.Plans))
	for _, p := range res.Plans {
		out[p.Plan.Op] = p
	}
	return out
}

// TestExample2 reproduces Example 2 of the paper: one selectivity
// parameter x in [0,1], metrics {time, fees};
// p1 = (2x, 3), p2 = p3 = (0.5+x, 2). Expected: p2 and p3 mutually
// dominate, so exactly one survives with the full parameter space as
// relevance region; p1 survives with relevance region [0, 0.5].
func TestExample2(t *testing.T) {
	space := geometry.Interval(0, 1)
	mk := func(timeW, timeB, fees float64) Cost {
		return pwl.NewMulti(
			pwl.Linear(space, geometry.Vector{timeW}, timeB),
			pwl.Constant(space, fees),
		)
	}
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "p1", Cost: mk(2, 0, 3)},
		{Op: "p2", Cost: mk(1, 0.5, 2)},
		{Op: "p3", Cost: mk(1, 0.5, 2)},
	})
	if len(res.Plans) != 2 {
		t.Fatalf("PPS size = %d, want 2 ({p1, p2} or {p1, p3}): %v", len(res.Plans), res.Plans)
	}
	byName := planNames(res)
	p1, ok := byName["p1"]
	if !ok {
		t.Fatal("p1 missing from PPS")
	}
	if _, ok := byName["p2"]; !ok {
		if _, ok := byName["p3"]; !ok {
			t.Fatal("neither p2 nor p3 in PPS")
		}
	}
	// RR of p1 must be [0, 0.5]: relevant at 0.2, cut out at 0.8.
	if !p1.RR.Contains(geometry.Vector{0.2}, 1e-9) {
		t.Error("p1 should be relevant at x=0.2")
	}
	if p1.RR.Contains(geometry.Vector{0.8}, 1e-9) {
		t.Error("p1 should not be relevant at x=0.8")
	}
	// Run-time plan selection: at x=0.2 both plans are Pareto-optimal
	// (p1 = (0.4, 3) vs p2 = (0.7, 2)); at x=0.8 only p2 (p1 = (1.6, 3)
	// vs p2 = (1.3, 2) dominates).
	ctx := geometry.NewContext()
	algebra := NewPWLAlgebra(ctx, 2)
	front := res.ParetoFrontAt(algebra, geometry.Vector{0.2})
	if len(front) != 2 {
		t.Errorf("front at 0.2 has %d plans, want 2", len(front))
	}
	front = res.ParetoFrontAt(algebra, geometry.Vector{0.8})
	if len(front) != 1 || front[0].Plan.Op == "p1" {
		t.Errorf("front at 0.8 = %v, want just the cheap plan", front)
	}
}

// TestFigure4 reproduces the counter-example of Figure 4 / statement M1:
// plan 2 is Pareto-optimal for small and large parameter values but not
// in between, so its relevance region is disconnected — impossible in
// single-metric parametric query optimization (statement S1).
// Construction: domain [0,3]; c(p1) = (2-x, x); c(p2) = (1, 2).
// p1 dominates p2 exactly on [1, 2].
func TestFigure4(t *testing.T) {
	space := geometry.Interval(0, 3)
	p1 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{-1}, 2),
		pwl.Linear(space, geometry.Vector{1}, 0),
	)
	p2 := pwl.NewMulti(
		pwl.Constant(space, 1),
		pwl.Constant(space, 2),
	)
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "p1", Cost: p1},
		{Op: "p2", Cost: p2},
	})
	if len(res.Plans) != 2 {
		t.Fatalf("PPS size = %d, want 2", len(res.Plans))
	}
	rr2 := planNames(res)["p2"].RR
	// Pareto at the edges, dominated in the middle.
	for _, x := range []float64{0.5, 2.5} {
		if !rr2.Contains(geometry.Vector{x}, 1e-9) {
			t.Errorf("p2 should be relevant at x=%v", x)
		}
	}
	if rr2.Contains(geometry.Vector{1.5}, 1e-9) {
		t.Error("p2 should be dominated at x=1.5 (M1: not Pareto between two Pareto points)")
	}
	// The relevance region of p2 is disconnected: two full-dimensional
	// pieces (first half of statement M2).
	ctx := geometry.NewContext()
	if got := len(rr2.Pieces(ctx)); got != 2 {
		t.Errorf("RR(p2) has %d pieces, want 2 (disconnected)", got)
	}
	// p1 is Pareto everywhere.
	rr1 := planNames(res)["p1"].RR
	for _, x := range []float64{0.1, 1.5, 2.9} {
		if !rr1.Contains(geometry.Vector{x}, 1e-9) {
			t.Errorf("p1 should be relevant at x=%v", x)
		}
	}
}

// TestFigure5 reproduces Figure 5 / statement M2: with the
// two-dimensional parameter space [0,2]^2, c(p1)(x) = (x1, x2) and
// c(p2) = (1, 1), the region where p1 dominates p2 is the unit box, so
// the Pareto region of p2 (its complement) is not convex.
func TestFigure5(t *testing.T) {
	space := geometry.Box(geometry.Vector{0, 0}, geometry.Vector{2, 2})
	p1 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{1, 0}, 0),
		pwl.Linear(space, geometry.Vector{0, 1}, 0),
	)
	p2 := pwl.NewMulti(
		pwl.Constant(space, 1),
		pwl.Constant(space, 1),
	)
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "p1", Cost: p1},
		{Op: "p2", Cost: p2},
	})
	if len(res.Plans) != 2 {
		t.Fatalf("PPS size = %d, want 2", len(res.Plans))
	}
	rr2 := planNames(res)["p2"].RR
	inside := geometry.Vector{0.5, 0.5}  // p1 = (0.5, 0.5) dominates
	corner1 := geometry.Vector{1.5, 0.5} // p1 worse on metric 1
	corner2 := geometry.Vector{0.5, 1.5} // p1 worse on metric 2
	if rr2.Contains(inside, 1e-9) {
		t.Error("p2 should be dominated inside the unit box")
	}
	if !rr2.Contains(corner1, 1e-9) || !rr2.Contains(corner2, 1e-9) {
		t.Error("p2 should be relevant outside the unit box")
	}
	// Non-convexity: the midpoint of two relevant points is dominated.
	mid := corner1.Add(corner2).Scale(0.5) // (1,1): tie with p1 at (1,1)?
	_ = mid
	// Use strictly interior witnesses: (1.5,0.5) and (0.5,1.5) are in
	// the RR but (1.0-eps... ) their segment passes through the
	// dominated box corner region: point (0.9, 0.9) lies on the segment
	// x1+x2=2? No — use (0.75, 0.75)-line: take midpoint (1,1): it is
	// the box corner where costs tie; step slightly inside instead.
	notConvexWitness := geometry.Vector{0.95, 0.95}
	if rr2.Contains(notConvexWitness, 1e-9) {
		t.Error("p2 should be dominated at (0.95, 0.95): Pareto region is not convex")
	}
}

// TestFigure6 reproduces Figure 6 / statement M3b: plan 3 is
// Pareto-optimal strictly inside (0.5, 1.5) but not on [0, 0.5] or
// [1.5, 2]; plans 1 and 2 are Pareto everywhere. Construction on [0,2]:
// c(p1) = (x, 2-x), c(p2) = (2-x, x),
// c(p3) = (1, max(2.5-2x, 1, 2x-1.5)).
func TestFigure6(t *testing.T) {
	space := geometry.Interval(0, 2)
	p1 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{1}, 0),
		pwl.Linear(space, geometry.Vector{-1}, 2),
	)
	p2 := pwl.NewMulti(
		pwl.Linear(space, geometry.Vector{-1}, 2),
		pwl.Linear(space, geometry.Vector{1}, 0),
	)
	p3MetricB := pwl.NewFunction(
		pwl.Piece{Region: geometry.Interval(0, 0.75), W: geometry.Vector{-2}, B: 2.5},
		pwl.Piece{Region: geometry.Interval(0.75, 1.25), W: geometry.Vector{0}, B: 1},
		pwl.Piece{Region: geometry.Interval(1.25, 2), W: geometry.Vector{2}, B: -1.5},
	)
	p3 := pwl.NewMulti(pwl.Constant(space, 1), p3MetricB)
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "p1", Cost: p1},
		{Op: "p2", Cost: p2},
		{Op: "p3", Cost: p3},
	})
	if len(res.Plans) != 3 {
		t.Fatalf("PPS size = %d, want 3", len(res.Plans))
	}
	byName := planNames(res)
	rr3 := byName["p3"].RR
	if !rr3.Contains(geometry.Vector{1.0}, 1e-9) {
		t.Error("p3 should be relevant at x=1 (M3b: Pareto inside the polytope)")
	}
	if rr3.Contains(geometry.Vector{0.25}, 1e-9) {
		t.Error("p3 should be dominated at x=0.25")
	}
	if rr3.Contains(geometry.Vector{1.75}, 1e-9) {
		t.Error("p3 should be dominated at x=1.75")
	}
	// p1 and p2 relevant across the whole domain.
	for _, name := range []string{"p1", "p2"} {
		rr := byName[name].RR
		for _, x := range []float64{0.1, 1.0, 1.9} {
			if !rr.Contains(geometry.Vector{x}, 1e-9) {
				t.Errorf("%s should be relevant at x=%v", name, x)
			}
		}
	}
	// M3a/M3b at the vertex level: at the domain vertices x=0 and x=2
	// the Pareto front excludes p3, yet p3 is Pareto at an interior
	// point (x=0.9, where p3 = (1,1) is incomparable to p1 = (0.9, 1.1)
	// and p2 = (1.1, 0.9); at x=1 exactly all three plans tie).
	ctx := geometry.NewContext()
	algebra := NewPWLAlgebra(ctx, 2)
	for _, x := range []float64{0, 2} {
		for _, info := range res.ParetoFrontAt(algebra, geometry.Vector{x}) {
			if info.Plan.Op == "p3" {
				t.Errorf("p3 in Pareto front at vertex x=%v", x)
			}
		}
	}
	foundP3 := false
	for _, info := range res.ParetoFrontAt(algebra, geometry.Vector{0.9}) {
		if info.Plan.Op == "p3" {
			foundP3 = true
		}
	}
	if !foundP3 {
		t.Error("p3 missing from Pareto front at x=0.9")
	}
}

// TestStaticIdenticalPlansKeepOne: mutual dominance must keep exactly
// one of a group of identical plans, regardless of group size.
func TestStaticIdenticalPlansKeepOne(t *testing.T) {
	space := geometry.Interval(0, 1)
	alts := make([]Alternative, 0, 5)
	for i := 0; i < 5; i++ {
		alts = append(alts, Alternative{
			Op: string(rune('a' + i)),
			Cost: pwl.NewMulti(
				pwl.Linear(space, geometry.Vector{1}, 1),
				pwl.Constant(space, 2),
			),
		})
	}
	res := staticOptimize(t, space, 2, alts)
	if len(res.Plans) != 1 {
		t.Fatalf("PPS size = %d, want 1", len(res.Plans))
	}
}

// TestStaticDominatedChainPrunesAll: strictly increasing costs leave
// only the first plan.
func TestStaticDominatedChainPrunesAll(t *testing.T) {
	space := geometry.Interval(0, 1)
	var alts []Alternative
	for i := 0; i < 6; i++ {
		alts = append(alts, Alternative{
			Op: string(rune('a' + i)),
			Cost: pwl.NewMulti(
				pwl.Linear(space, geometry.Vector{1}, float64(i)),
				pwl.Constant(space, float64(1+i)),
			),
		})
	}
	res := staticOptimize(t, space, 2, alts)
	if len(res.Plans) != 1 || res.Plans[0].Plan.Op != "a" {
		t.Fatalf("PPS = %v, want just plan a", res.Plans)
	}
	if res.Stats.PrunedPlans != 5 {
		t.Errorf("pruned = %d, want 5", res.Stats.PrunedPlans)
	}
	if res.Stats.CreatedPlans != 6 {
		t.Errorf("created = %d, want 6", res.Stats.CreatedPlans)
	}
}

func TestStatsPopulated(t *testing.T) {
	space := geometry.Interval(0, 1)
	res := staticOptimize(t, space, 2, []Alternative{
		{Op: "a", Cost: pwl.NewMulti(pwl.Linear(space, geometry.Vector{1}, 0), pwl.Constant(space, 2))},
		{Op: "b", Cost: pwl.NewMulti(pwl.Linear(space, geometry.Vector{-1}, 1), pwl.Constant(space, 1))},
	})
	if res.Stats.FinalPlans != len(res.Plans) {
		t.Errorf("FinalPlans = %d, want %d", res.Stats.FinalPlans, len(res.Plans))
	}
	if res.Stats.Geometry.LPs <= 0 {
		t.Error("LP counter not populated")
	}
	if res.Stats.Duration <= 0 {
		t.Error("duration not populated")
	}
	if res.Stats.MaxPlansPerSet < 1 {
		t.Error("MaxPlansPerSet not populated")
	}
}

func TestUnsatisfiableSchema(t *testing.T) {
	schema := &catalog.Schema{} // no tables
	model := &StaticModel{ParamSpace: geometry.Interval(0, 1), Metrics: []string{"t"}}
	if _, err := Optimize(schema, model, DefaultOptions()); err == nil {
		t.Error("expected error for empty schema")
	}
}
