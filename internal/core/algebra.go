// Package core implements the paper's primary contribution: the
// Relevance Region Pruning Algorithm (RRPA, Algorithm 1) for
// multi-objective parametric query optimization, and its specialization
// PWL-RRPA for piecewise-linear cost functions (Section 6).
//
// RRPA is generic over the class of cost functions: the dynamic program
// only needs two operations — accumulating the cost of a new plan from
// its sub-plans and the join operator, and computing the parameter-space
// region in which one cost function dominates another. Those operations
// are abstracted by the Algebra interface; PWLAlgebra instantiates them
// with the exact piecewise-linear operations of Algorithm 3, yielding
// PWL-RRPA. The sampled algebra in mpq/internal/sampled demonstrates the
// generic algorithm on arbitrary (non-PWL) cost closures.
package core

import (
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// Cost is an opaque plan cost function; its concrete type is fixed by
// the Algebra in use (e.g. *pwl.Multi for PWLAlgebra).
type Cost any

// Algebra supplies the cost-function operations RRPA needs. An Algebra
// must treat dominance inclusively: ties count as dominance, matching
// the paper's Dom definition.
type Algebra interface {
	// Dom returns convex polytopes covering the parameter-space region
	// in which c1 dominates c2 (c1 at most c2 on every metric).
	Dom(c1, c2 Cost) []*geometry.Polytope
	// Accumulate combines the costs of two sub-plans and the cost of
	// the join step into the cost of the combined plan (the paper's
	// AccumulateCost).
	Accumulate(step, c1, c2 Cost) Cost
	// Eval evaluates the cost vector at a parameter point, for
	// diagnostics, plan selection, and tests.
	Eval(c Cost, x geometry.Vector) geometry.Vector
}

// ForkableAlgebra is an Algebra that can clone itself onto a different
// geometry solver. The dependency scheduler gives every worker its own
// fork so that concurrent Dom/Accumulate calls never share simplex
// scratch state — workers plan independent table sets concurrently and
// may accumulate candidate costs of a single wide table set in
// parallel chunks; algebras that hold no solver may return themselves.
// An Algebra that does not implement ForkableAlgebra forces the
// optimizer onto the sequential path regardless of Options.Workers.
type ForkableAlgebra interface {
	Algebra
	// Fork returns an equivalent Algebra whose geometric operations run
	// through s.
	Fork(s *geometry.Solver) Algebra
}

// EpsilonAlgebra extends Algebra with the scaled dominance regions of
// the ε-approximate prune (Options.Epsilon > 0). An algebra that does
// not implement EpsilonAlgebra cannot run approximate optimizations —
// OptimizeCtx reports an error rather than silently falling back to
// the exact prune.
type EpsilonAlgebra interface {
	Algebra
	// DomScaled returns convex polytopes covering the parameter-space
	// region {x : s1·c1(x) <= s2·c2(x) on every metric}. With
	// (s1, s2) = (1, 1+ε) this is the ε-relaxed dominance region of c1
	// over c2 — the region where c1 is within a (1+ε) factor of
	// dominating c2.
	DomScaled(c1, c2 Cost, s1, s2 float64) []*geometry.Polytope
}

// PWLAlgebra implements Algebra for piecewise-linear cost functions
// (*pwl.Multi), turning RRPA into PWL-RRPA.
type PWLAlgebra struct {
	// Ctx carries tolerances and the LP counter.
	Ctx *geometry.Context
	// Modes is the per-metric accumulation of sub-plan costs.
	Modes []pwl.AccumMode
	// Compact merges equal-function pieces after accumulation, keeping
	// piece counts near the shared approximation grid size.
	Compact bool
	// SimplifyRegions removes redundant constraints from piece regions
	// after accumulation (first refinement of Section 6.2).
	SimplifyRegions bool
}

// NewPWLAlgebra returns a PWLAlgebra with compaction enabled and
// sum-accumulation on every metric.
func NewPWLAlgebra(ctx *geometry.Context, metrics int) *PWLAlgebra {
	modes := make([]pwl.AccumMode, metrics)
	return &PWLAlgebra{Ctx: ctx, Modes: modes, Compact: true}
}

// Fork implements ForkableAlgebra: the copy shares all configuration
// but runs its geometry through s.
func (a *PWLAlgebra) Fork(s *geometry.Solver) Algebra {
	cp := *a
	cp.Ctx = s
	return &cp
}

// Dom implements Algebra using the exact PWL dominance-region
// computation of Algorithm 3.
func (a *PWLAlgebra) Dom(c1, c2 Cost) []*geometry.Polytope {
	return pwl.Dom(a.Ctx, c1.(*pwl.Multi), c2.(*pwl.Multi))
}

// Accumulate implements Algebra with the piecewise addition (and
// min/max) of Algorithm 3.
func (a *PWLAlgebra) Accumulate(step, c1, c2 Cost) Cost {
	acc := pwl.AccumulateMulti(a.Ctx, a.Modes, step.(*pwl.Multi), c1.(*pwl.Multi), c2.(*pwl.Multi))
	if a.Compact {
		comps := make([]*pwl.Function, acc.NumMetrics())
		for i := range comps {
			comps[i] = pwl.Compact(a.Ctx, acc.Component(i))
		}
		acc = pwl.NewMulti(comps...)
	}
	if a.SimplifyRegions {
		acc = pwl.SimplifyMulti(a.Ctx, acc)
	}
	return acc
}

// Eval implements Algebra.
func (a *PWLAlgebra) Eval(c Cost, x geometry.Vector) geometry.Vector {
	v, _ := c.(*pwl.Multi).Eval(x)
	return v
}

// DomScaled implements EpsilonAlgebra with the scaled PWL dominance
// regions of pwl.DomScaled.
func (a *PWLAlgebra) DomScaled(c1, c2 Cost, s1, s2 float64) []*geometry.Polytope {
	return pwl.DomScaled(a.Ctx, c1.(*pwl.Multi), c2.(*pwl.Multi), s1, s2)
}
