package core

import (
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// twoTableModel is a minimal cost model over two tables with one scan
// alternative each and one join operator, with configurable costs.
type twoTableModel struct {
	space     *geometry.Polytope
	scanCosts []*pwl.Multi
	joinCost  *pwl.Multi
}

func (m *twoTableModel) Space() *geometry.Polytope { return m.space }
func (m *twoTableModel) MetricNames() []string     { return []string{"time", "fees"} }
func (m *twoTableModel) ScanAlternatives(t catalog.TableID) []Alternative {
	return []Alternative{{Op: "scan", Cost: m.scanCosts[t]}}
}
func (m *twoTableModel) JoinAlternatives(left, right catalog.TableSet) []Alternative {
	return []Alternative{{Op: "join", Cost: m.joinCost}}
}

// TestDisconnectedGraphCartesianFallback: with no join edges at all, the
// optimizer must still produce plans via Cartesian products even with
// postponement enabled.
func TestDisconnectedGraphCartesianFallback(t *testing.T) {
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 10, TupleBytes: 10},
			{Name: "T2", Card: 20, TupleBytes: 10},
		},
		NumParams: 1,
	}
	space := geometry.Interval(0, 1)
	model := &twoTableModel{
		space: space,
		scanCosts: []*pwl.Multi{
			pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 1)),
			pwl.NewMulti(pwl.Constant(space, 2), pwl.Constant(space, 2)),
		},
		joinCost: pwl.NewMulti(pwl.Constant(space, 0.5), pwl.Constant(space, 0.5)),
	}
	opts := DefaultOptions()
	res, err := Optimize(schema, model, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("no plan for the disconnected query")
	}
	// Cost must be scan1 + scan2 + join on both metrics.
	algebra := NewPWLAlgebra(geometry.NewContext(), 2)
	c := algebra.Eval(res.Plans[0].Cost, geometry.Vector{0.5})
	if !c.Equal(geometry.Vector{3.5, 3.5}, 1e-9) {
		t.Errorf("cost = %v, want (3.5, 3.5)", c)
	}
}

// TestSingleTableQuery: optimization of a single table reduces to scan
// selection.
func TestSingleTableQuery(t *testing.T) {
	schema := &catalog.Schema{
		Tables:    []catalog.Table{{Name: "T1", Card: 10, TupleBytes: 10}},
		NumParams: 1,
	}
	space := geometry.Interval(0, 1)
	model := &StaticModel{
		ParamSpace: space,
		Metrics:    []string{"time", "fees"},
		Plans: []Alternative{
			{Op: "fast", Cost: pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 5))},
			{Op: "cheap", Cost: pwl.NewMulti(pwl.Constant(space, 5), pwl.Constant(space, 1))},
			{Op: "bad", Cost: pwl.NewMulti(pwl.Constant(space, 6), pwl.Constant(space, 6))},
		},
	}
	res, err := Optimize(schema, model, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 2 {
		t.Fatalf("plan set size = %d, want 2", len(res.Plans))
	}
}

// TestMaxAccumulationThroughOptimizer: with AccumMax on the time metric
// (sub-plans executed in parallel), the accumulated plan time is the
// maximum of the children plus the join step, while fees stay additive —
// the accumulation variants called out in Sections 3 and 6.1.
func TestMaxAccumulationThroughOptimizer(t *testing.T) {
	schema := &catalog.Schema{
		Tables: []catalog.Table{
			{Name: "T1", Card: 10, TupleBytes: 10},
			{Name: "T2", Card: 20, TupleBytes: 10},
		},
		Edges:     []catalog.JoinEdge{{A: 0, B: 1, Sel: 0.1}},
		NumParams: 1,
	}
	space := geometry.Interval(0, 1)
	// Child times: 3 and x+1 (crossing at x=2 — outside the domain, so
	// max = 3 everywhere... use x+2.5 to cross at 0.5).
	model := &twoTableModel{
		space: space,
		scanCosts: []*pwl.Multi{
			pwl.NewMulti(pwl.Constant(space, 3), pwl.Constant(space, 1)),
			pwl.NewMulti(pwl.Linear(space, geometry.Vector{1}, 2.5), pwl.Constant(space, 2)),
		},
		joinCost: pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 0.5)),
	}
	ctx := geometry.NewContext()
	algebra := &PWLAlgebra{Ctx: ctx, Modes: []pwl.AccumMode{pwl.AccumMax, pwl.AccumSum}, Compact: true}
	opts := DefaultOptions()
	opts.Context = ctx
	opts.Algebra = algebra
	res, err := Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("no plans")
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		c := algebra.Eval(res.Plans[0].Cost, geometry.Vector{x})
		wantTime := 3.0
		if x+2.5 > 3 {
			wantTime = x + 2.5
		}
		wantTime++ // join step
		if !almostEqualF(c[0], wantTime, 1e-9) {
			t.Errorf("time at %v = %v, want %v (max accumulation)", x, c[0], wantTime)
		}
		if !almostEqualF(c[1], 3.5, 1e-9) {
			t.Errorf("fees at %v = %v, want 3.5 (sum accumulation)", x, c[1])
		}
	}
}

func almostEqualF(a, b, tol float64) bool {
	d := a - b
	return d <= tol && d >= -tol
}

// TestPruneInsertionOrderInvariance: the Pareto plan set must cover the
// same cost tradeoffs regardless of the order in which alternatives are
// inserted.
func TestPruneInsertionOrderInvariance(t *testing.T) {
	space := geometry.Interval(0, 1)
	mk := func(w, b, fees float64) Cost {
		return pwl.NewMulti(pwl.Linear(space, geometry.Vector{w}, b), pwl.Constant(space, fees))
	}
	alts := []Alternative{
		{Op: "a", Cost: mk(1, 0, 3)},
		{Op: "b", Cost: mk(-1, 1, 2)},
		{Op: "c", Cost: mk(0, 0.4, 4)},
		{Op: "d", Cost: mk(2, 0.1, 1)},
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	var fronts []map[string]bool
	for _, perm := range perms {
		ordered := make([]Alternative, len(alts))
		for i, j := range perm {
			ordered[i] = alts[j]
		}
		schema := StaticSchema(1, []float64{0}, []float64{1})
		model := &StaticModel{ParamSpace: space, Metrics: []string{"t", "f"}, Plans: ordered}
		res, err := Optimize(schema, model, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		algebra := NewPWLAlgebra(geometry.NewContext(), 2)
		// Record which plans are on the front at sample points.
		front := map[string]bool{}
		for _, xv := range []float64{0.1, 0.5, 0.9} {
			for _, info := range res.ParetoFrontAt(algebra, geometry.Vector{xv}) {
				front[info.Plan.Op] = true
			}
		}
		fronts = append(fronts, front)
	}
	for i := 1; i < len(fronts); i++ {
		if len(fronts[i]) != len(fronts[0]) {
			t.Errorf("front plan sets differ across insertion orders: %v vs %v", fronts[0], fronts[i])
		}
		for op := range fronts[0] {
			if !fronts[i][op] {
				t.Errorf("plan %s missing from front under permutation %d", op, i)
			}
		}
	}
}
