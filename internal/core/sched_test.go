package core_test

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// optimizeAndSave runs one optimizer invocation on a generated query
// and serializes the resulting Pareto plan set through the store
// format, the byte-level fingerprint of the determinism contract.
func optimizeAndSave(t *testing.T, cfg workload.Config, opts core.Options) (*core.Result, []byte) {
	t.Helper()
	schema, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts.Context = ctx
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// equivalenceWorkerCounts returns the worker counts the equivalence
// property test compares against the first sequential run. The
// MPQ_TEST_WORKERS environment variable (the CI worker-count matrix)
// narrows the set to one value; 0 means GOMAXPROCS. A count of 1
// compares an *independent* sequential rerun against the first —
// run-to-run reproducibility with fresh solvers and memos — while
// counts > 1 compare the parallel scheduler against the sequential
// path. Duplicates are dropped so each heavy optimization runs once
// per distinct count.
func equivalenceWorkerCounts(t *testing.T) []int {
	raw := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("MPQ_TEST_WORKERS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("MPQ_TEST_WORKERS=%q: %v", env, err)
		}
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		raw = []int{n}
	}
	var counts []int
	for _, n := range raw {
		dup := false
		for _, seen := range counts {
			dup = dup || seen == n
		}
		if !dup {
			counts = append(counts, n)
		}
	}
	return counts
}

// TestSchedulerStoreEquivalence is the scheduler's central property
// test: for every join-graph shape, the pipelined dependency scheduler
// must produce a plan set that serializes to byte-identical store
// documents for any worker count — including intra-mask split
// parallelism — and every aggregate counter of the determinism
// contract (created/pruned plans, all geometry Stats, the Figure 12 LP
// count) must match the Workers=1 sequential run exactly. Running
// under -race additionally exercises the sharded store's atomic
// publication and the scheduler's dependency bookkeeping.
func TestSchedulerStoreEquivalence(t *testing.T) {
	cases := []workload.Config{
		{Tables: 5, Params: 2, Shape: workload.Chain, Seed: 3},
		{Tables: 5, Params: 1, Shape: workload.Star, Seed: 11},
		{Tables: 5, Params: 2, Shape: workload.Cycle, Seed: 5},
		{Tables: 4, Params: 2, Shape: workload.Clique, Seed: 7},
	}
	workerCounts := equivalenceWorkerCounts(t)
	for _, cfg := range cases {
		t.Run(fmt.Sprintf("%s-%dp-%dt", cfg.Shape, cfg.Params, cfg.Tables), func(t *testing.T) {
			seqOpts := core.DefaultOptions()
			seqOpts.Workers = 1
			seq, seqBytes := optimizeAndSave(t, cfg, seqOpts)
			for _, workers := range workerCounts {
				opts := core.DefaultOptions()
				opts.Workers = workers
				par, parBytes := optimizeAndSave(t, cfg, opts)
				if par.Stats.Workers != workers {
					t.Fatalf("run used %d workers, want %d", par.Stats.Workers, workers)
				}
				if !bytes.Equal(seqBytes, parBytes) {
					t.Errorf("workers=%d: store.Save output differs from sequential (%d vs %d bytes)",
						workers, len(parBytes), len(seqBytes))
				}
				assertDeterministicStats(t, workers, seq, par)
			}
		})
	}
}

// TestSchedulerSplitJobEquivalence forces intra-mask split parallelism
// onto every mask (threshold 1) and asserts the order-preserving
// reduction still reproduces the sequential bytes and counters.
func TestSchedulerSplitJobEquivalence(t *testing.T) {
	cfg := workload.Config{Tables: 5, Params: 2, Shape: workload.Star, Seed: 2}
	seqOpts := core.DefaultOptions()
	seqOpts.Workers = 1
	seq, seqBytes := optimizeAndSave(t, cfg, seqOpts)
	for _, workers := range []int{2, 3} {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.SplitCandidates = 1 // force split jobs regardless of idleness
		par, parBytes := optimizeAndSave(t, cfg, opts)
		if par.Stats.Scheduler.SplitJobs == 0 {
			t.Errorf("workers=%d: SplitCandidates=1 ran no split jobs", workers)
		}
		if par.Stats.Scheduler.SplitChunks < par.Stats.Scheduler.SplitJobs {
			t.Errorf("workers=%d: %d chunks for %d split jobs", workers,
				par.Stats.Scheduler.SplitChunks, par.Stats.Scheduler.SplitJobs)
		}
		if !bytes.Equal(seqBytes, parBytes) {
			t.Errorf("workers=%d: split-job store.Save output differs from sequential", workers)
		}
		assertDeterministicStats(t, workers, seq, par)
	}
}

// assertDeterministicStats checks every counter of the determinism
// contract. Scheduler metrics (tasks, utilization) are deliberately
// excluded: they reflect runtime scheduling, not results.
func assertDeterministicStats(t *testing.T, workers int, seq, par *core.Result) {
	t.Helper()
	if par.Stats.CreatedPlans != seq.Stats.CreatedPlans ||
		par.Stats.PrunedPlans != seq.Stats.PrunedPlans ||
		par.Stats.FinalPlans != seq.Stats.FinalPlans ||
		par.Stats.MaxPlansPerSet != seq.Stats.MaxPlansPerSet {
		t.Errorf("workers=%d: plan counters (created=%d pruned=%d final=%d max=%d), sequential (created=%d pruned=%d final=%d max=%d)",
			workers,
			par.Stats.CreatedPlans, par.Stats.PrunedPlans, par.Stats.FinalPlans, par.Stats.MaxPlansPerSet,
			seq.Stats.CreatedPlans, seq.Stats.PrunedPlans, seq.Stats.FinalPlans, seq.Stats.MaxPlansPerSet)
	}
	if par.Stats.Geometry != seq.Stats.Geometry {
		t.Errorf("workers=%d: geometry stats %v, sequential %v", workers, par.Stats.Geometry, seq.Stats.Geometry)
	}
}

// TestSchedulerStats: the pipeline metrics must be populated — tasks
// executed, busy time measured, utilization within (0, 1].
func TestSchedulerStats(t *testing.T) {
	cfg := workload.Config{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 4}
	for _, workers := range []int{1, 3} {
		opts := core.DefaultOptions()
		opts.Workers = workers
		res, _ := optimizeAndSave(t, cfg, opts)
		sc := res.Stats.Scheduler
		if sc.Tasks <= 0 || sc.Wall <= 0 || sc.Busy <= 0 {
			t.Errorf("workers=%d: empty scheduler stats %+v", workers, sc)
		}
		u := res.Stats.PipelineUtilization()
		if u <= 0 || u > 1 {
			t.Errorf("workers=%d: utilization %v out of (0,1]", workers, u)
		}
		if workers == 1 && u != 1 {
			t.Errorf("sequential utilization = %v, want exactly 1", u)
		}
	}
}

// TestPerSetIsACopy: Result.PerSet must be a fresh map with fresh
// slices — mutating it must not corrupt the result (it used to alias
// the optimizer's internal plan map).
func TestPerSetIsACopy(t *testing.T) {
	cfg := workload.Config{Tables: 4, Params: 1, Shape: workload.Chain, Seed: 9}
	opts := core.DefaultOptions()
	opts.KeepPerSet = true
	res, _ := optimizeAndSave(t, cfg, opts)
	full, ok := res.PerSet[res.Query]
	if !ok || len(full) != len(res.Plans) {
		t.Fatalf("PerSet[%v] has %d plans, result has %d", res.Query, len(full), len(res.Plans))
	}
	if &full[0] == &res.Plans[0] {
		t.Error("PerSet aliases the result's plan slice")
	}
	// Corrupt the returned map thoroughly; the result must be unharmed.
	for q, infos := range res.PerSet {
		for i := range infos {
			infos[i] = nil
		}
		delete(res.PerSet, q)
	}
	for i, info := range res.Plans {
		if info == nil {
			t.Fatalf("result plan %d destroyed by mutating PerSet", i)
		}
	}
}
