package core_test

import (
	"bytes"
	"sync"
	"testing"

	"mpq/internal/core"
	"mpq/internal/workload"
)

// poolDonor is a DonorPool over a fixed set of idle goroutine slots —
// the shape of the serving layer's idle solver-pool workers.
type poolDonor struct {
	slots    chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	accepted int
	declined int
}

func newPoolDonor(n int) *poolDonor {
	d := &poolDonor{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		d.slots <- struct{}{}
	}
	return d
}

func (d *poolDonor) Idle() int { return len(d.slots) }

func (d *poolDonor) Offer(task func()) bool {
	select {
	case <-d.slots:
	default:
		d.mu.Lock()
		d.declined++
		d.mu.Unlock()
		return false
	}
	d.mu.Lock()
	d.accepted++
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer func() { d.slots <- struct{}{} }()
		task()
	}()
	return true
}

// TestDonatedWorkersPreserveDeterminism: a Workers=1 run with donated
// split-job helpers must produce byte-identical plan sets and exactly
// the sequential run's plan and LP counters — donation may only change
// wall-clock time.
func TestDonatedWorkersPreserveDeterminism(t *testing.T) {
	cfgs := []workload.Config{
		{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 21},
		{Tables: 4, Params: 2, Shape: workload.Clique, Seed: 7},
	}
	for _, cfg := range cfgs {
		seq := core.DefaultOptions()
		seq.Workers = 1
		resSeq, bytesSeq := optimizeAndSave(t, cfg, seq)

		donor := newPoolDonor(3)
		don := core.DefaultOptions()
		don.Workers = 1
		don.SplitCandidates = 1 // force split jobs so donation has work
		don.Donor = donor
		resDon, bytesDon := optimizeAndSave(t, cfg, don)
		donor.wg.Wait()

		if !bytes.Equal(bytesSeq, bytesDon) {
			t.Errorf("%v: donated run's plan set differs from the sequential run", cfg)
		}
		if resSeq.Stats.CreatedPlans != resDon.Stats.CreatedPlans ||
			resSeq.Stats.PrunedPlans != resDon.Stats.PrunedPlans ||
			resSeq.Stats.FinalPlans != resDon.Stats.FinalPlans {
			t.Errorf("%v: plan counters differ: sequential %+v, donated %+v",
				cfg, resSeq.Stats, resDon.Stats)
		}
		if resSeq.Stats.Geometry != resDon.Stats.Geometry {
			t.Errorf("%v: geometry counters differ: sequential %+v, donated %+v",
				cfg, resSeq.Stats.Geometry, resDon.Stats.Geometry)
		}
		if resDon.Stats.Scheduler.SplitJobs == 0 {
			t.Errorf("%v: forced splits did not activate under donation", cfg)
		}
		if donor.accepted == 0 {
			t.Errorf("%v: donor pool was never asked for help", cfg)
		}
		if resDon.Stats.Scheduler.DonatedTasks == 0 {
			t.Errorf("%v: no donated work stints recorded (accepted offers: %d)", cfg, donor.accepted)
		}
	}
}

// inlineDonor accepts every offer and runs the stint synchronously on
// the offering goroutine — the most hostile schedule for mask-level
// donation (stints steal masks before the resident worker even starts)
// and a deterministic one, so the DonatedMasks assertion cannot flake.
type inlineDonor struct {
	idle   int
	stints int
}

func (d *inlineDonor) Idle() int { return d.idle }

func (d *inlineDonor) Offer(task func()) bool {
	d.stints++
	task()
	return true
}

// TestMaskDonationParallelizesNarrowQueries: a Workers=1 run whose
// masks stay below the split threshold must still hand whole ready
// masks to donated workers — and stay byte-identical to the sequential
// run, with identical plan and LP counters. Mask-level donation is a
// mid-run raise of the effective worker count, nothing more.
func TestMaskDonationParallelizesNarrowQueries(t *testing.T) {
	cfgs := []workload.Config{
		{Tables: 5, Params: 1, Shape: workload.Chain, Seed: 21},
		{Tables: 4, Params: 2, Shape: workload.Star, Seed: 7},
	}
	for _, cfg := range cfgs {
		seq := core.DefaultOptions()
		seq.Workers = 1
		resSeq, bytesSeq := optimizeAndSave(t, cfg, seq)

		donor := &inlineDonor{idle: 2}
		don := core.DefaultOptions()
		don.Workers = 1
		don.Donor = donor
		resDon, bytesDon := optimizeAndSave(t, cfg, don)

		if !bytes.Equal(bytesSeq, bytesDon) {
			t.Errorf("%v: mask-donated run's plan set differs from the sequential run", cfg)
		}
		if resSeq.Stats.CreatedPlans != resDon.Stats.CreatedPlans ||
			resSeq.Stats.PrunedPlans != resDon.Stats.PrunedPlans ||
			resSeq.Stats.FinalPlans != resDon.Stats.FinalPlans {
			t.Errorf("%v: plan counters differ: sequential %+v, donated %+v",
				cfg, resSeq.Stats, resDon.Stats)
		}
		if resSeq.Stats.Geometry != resDon.Stats.Geometry {
			t.Errorf("%v: geometry counters differ: sequential %+v, donated %+v",
				cfg, resSeq.Stats.Geometry, resDon.Stats.Geometry)
		}
		if resDon.Stats.Scheduler.DonatedMasks == 0 {
			t.Errorf("%v: no whole masks were donated (stints: %d)", cfg, donor.stints)
		}
	}
}

// TestDonorWithoutSplitsIsHarmless: a donor on a run whose masks never
// reach the split threshold changes nothing, and a declining donor
// (zero idle capacity) never blocks the run.
func TestDonorWithoutSplitsIsHarmless(t *testing.T) {
	cfg := workload.Config{Tables: 4, Params: 1, Shape: workload.Star, Seed: 3}
	seq := core.DefaultOptions()
	seq.Workers = 1
	_, bytesSeq := optimizeAndSave(t, cfg, seq)

	empty := newPoolDonor(0) // Idle() == 0: splitting never activates
	don := core.DefaultOptions()
	don.Workers = 1
	don.Donor = empty
	res, bytesDon := optimizeAndSave(t, cfg, don)
	if !bytes.Equal(bytesSeq, bytesDon) {
		t.Error("idle-less donor changed the plan set")
	}
	if res.Stats.Scheduler.DonatedTasks != 0 {
		t.Errorf("idle-less donor recorded %d donated tasks", res.Stats.Scheduler.DonatedTasks)
	}
}
