package fleet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// PlanSetPath is the HTTP path prefix under which every mpqserve
// process exposes its prepared plan-set documents (GET
// <peer>/planset/<key> returns the serialized document bytes, 404 when
// the peer does not hold the key). PeerClient fetches through it.
const PlanSetPath = "/planset/"

// maxPeerDoc bounds a fetched document (a corrupt or hostile peer must
// not balloon memory); real documents are a few MB at most.
const maxPeerDoc = 1 << 30

// PeerStats counts the peer backend's traffic.
type PeerStats struct {
	// Fetches counts Fetch calls; Hits the subset answered by some
	// peer.
	Fetches int64
	Hits    int64
	// Errors counts per-peer request failures (unreachable peer, non-OK
	// non-404 status, truncated body). A Fetch that errors on one peer
	// can still hit on the next.
	Errors int64
}

// PeerClient fetches prepared plan-set documents from sibling servers
// over HTTP, so a fleet member consults its peers' caches before
// optimizing. Peers are tried in order; the first 200 wins, 404 moves
// on, and transport errors are counted and skipped — a fleet member
// must keep serving when its peers are down.
type PeerClient struct {
	peers  []string
	client *http.Client

	fetches, hits, errors atomic.Int64
}

// NewPeerClient returns a client for the given peer base URLs (e.g.
// "http://mpq-2:8080"). Zero timeout selects 5s per peer request.
func NewPeerClient(peers []string, timeout time.Duration) *PeerClient {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	cleaned := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		cleaned = append(cleaned, p)
	}
	return &PeerClient{
		peers:  cleaned,
		client: &http.Client{Timeout: timeout},
	}
}

// Peers returns the configured peer base URLs.
func (p *PeerClient) Peers() []string {
	return append([]string(nil), p.peers...)
}

// Fetch asks each peer for the document published under key. ok is
// false when no peer holds it; err then aggregates any transport
// failures encountered along the way (all-404 yields a nil error).
func (p *PeerClient) Fetch(key string) (doc []byte, ok bool, err error) {
	p.fetches.Add(1)
	var errs []error
	for _, peer := range p.peers {
		doc, found, ferr := p.fetchOne(peer, key)
		if ferr != nil {
			p.errors.Add(1)
			errs = append(errs, ferr)
			continue
		}
		if found {
			p.hits.Add(1)
			return doc, true, nil
		}
	}
	return nil, false, errors.Join(errs...)
}

func (p *PeerClient) fetchOne(peer, key string) ([]byte, bool, error) {
	resp, err := p.client.Get(peer + PlanSetPath + key)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		doc, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerDoc))
		if err != nil {
			return nil, false, fmt.Errorf("fleet: peer %s: reading %s: %w", peer, key, err)
		}
		return doc, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("fleet: peer %s: %s for %s", peer, resp.Status, key)
	}
}

// Stats returns a snapshot of the traffic counters.
func (p *PeerClient) Stats() PeerStats {
	return PeerStats{
		Fetches: p.fetches.Load(),
		Hits:    p.hits.Load(),
		Errors:  p.errors.Load(),
	}
}
