package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand" //mpq:rand retry jitter is seeded for replayable chaos tests; fallback seeding routes through entropy.SeedOrNow
	"net/http"
	"strings"
	"sync"
	"time"

	"mpq/internal/entropy"
)

// PlanSetPath is the HTTP path prefix under which every mpqserve
// process exposes its prepared plan-set documents (GET
// <peer>/planset/<key> returns the serialized document bytes, 404 when
// the peer does not hold the key). PeerClient fetches through it.
const PlanSetPath = "/planset/"

// DocHashHeader carries the hex SHA-256 of the served document bytes.
// mpqserve's /planset handler sets it; PeerClient validates it when
// present, so a response corrupted in flight degrades to a counted
// miss instead of poisoning the fetcher's cache.
const DocHashHeader = "X-Mpq-Doc-Sha256"

// PeerState labels a peer's circuit-breaker state.
type PeerState string

const (
	// PeerClosed: requests flow normally.
	PeerClosed PeerState = "closed"
	// PeerOpen: the breaker tripped; requests are skipped until the
	// cooldown elapses.
	PeerOpen PeerState = "open"
	// PeerHalfOpen: the cooldown elapsed; a single probe request is in
	// flight to decide between closing and reopening.
	PeerHalfOpen PeerState = "half-open"
)

// PeerStats counts the peer backend's traffic.
type PeerStats struct {
	// Fetches counts Fetch calls; Hits the subset answered by some
	// peer.
	Fetches int64
	Hits    int64
	// Errors counts per-peer request failures (unreachable peer, non-OK
	// non-404 status, truncated or corrupt body) after retries. A Fetch
	// that errors on one peer can still hit on the next.
	Errors int64
	// Retries counts re-attempts of failed peer requests.
	Retries int64
	// BreakerTrips counts closed→open transitions across all peers;
	// BreakerSkips counts requests not sent because a breaker was open.
	BreakerTrips int64
	BreakerSkips int64
	// Corrupt counts responses rejected by integrity validation (size
	// limit, content-hash mismatch, non-document body).
	Corrupt int64
	// Peers describes each configured peer's current breaker state.
	Peers []PeerInfo
}

// PeerInfo is one peer's slice of PeerStats.
type PeerInfo struct {
	URL      string
	State    PeerState
	Failures int // consecutive failures since the last success
	Trips    int64
	Hits     int64
	Errors   int64
}

// PeerOptions parameterizes a PeerClient. The zero value selects
// production defaults.
type PeerOptions struct {
	// Timeout bounds one peer request (0 = 5s). Fetch's context caps it
	// further.
	Timeout time.Duration
	// Retries is how many times a failed request to one peer is retried
	// before moving to the next peer (0 = 2; negative = none). Only
	// transport errors and 5xx responses are retried — a 404 or a
	// corrupt-but-delivered body will not improve on retry.
	Retries int
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between retries (0 = 25ms base, 500ms max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (0 = 5; negative = never).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// allowing a half-open probe (0 = 10s).
	BreakerCooldown time.Duration
	// MaxDoc bounds a fetched document's size (0 = 1 GiB); real
	// documents are a few MB at most.
	MaxDoc int64
	// Seed makes the backoff jitter deterministic for tests (0 = from
	// the clock).
	Seed int64
}

func (o PeerOptions) withDefaults() PeerOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.MaxDoc <= 0 {
		o.MaxDoc = 1 << 30
	}
	return o
}

// peer is one configured peer's breaker + counters, guarded by the
// client's mu.
type peer struct {
	url      string
	state    PeerState
	failures int       // consecutive failures since last success
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    int64
	hits     int64
	errors   int64
}

// PeerClient fetches prepared plan-set documents from sibling servers
// over HTTP, so a fleet member consults its peers' caches before
// optimizing. Peers are tried in order; the first valid 200 wins, 404
// moves on, and failures are retried with jittered exponential backoff,
// counted, and skipped — a fleet member must keep serving when its
// peers are down. A peer that fails BreakerThreshold times in a row is
// circuit-broken: skipped outright until BreakerCooldown elapses, then
// probed by a single half-open request that decides between closing
// and reopening. Responses are validated (size limit, optional
// content-hash header, document probe) so a corrupt peer response
// degrades to a miss, never a poisoned cache entry.
type PeerClient struct {
	opts   PeerOptions
	client *http.Client

	mu      sync.Mutex
	peers   []*peer
	rng     *rand.Rand
	fetches int64
	hits    int64
	errors  int64
	retries int64
	trips   int64
	skips   int64
	corrupt int64
}

// NewPeerClient returns a client for the given peer base URLs (e.g.
// "http://mpq-2:8080") with default resilience options. Zero timeout
// selects 5s per peer request.
func NewPeerClient(peers []string, timeout time.Duration) *PeerClient {
	return NewPeerClientOptions(peers, PeerOptions{Timeout: timeout})
}

// NewPeerClientOptions is NewPeerClient with explicit retry/breaker
// parameters.
func NewPeerClientOptions(urls []string, opts PeerOptions) *PeerClient {
	opts = opts.withDefaults()
	var peers []*peer
	for _, p := range urls {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, &peer{url: p, state: PeerClosed})
	}
	return &PeerClient{
		opts:   opts,
		client: &http.Client{Timeout: opts.Timeout},
		peers:  peers,
		rng:    rand.New(rand.NewSource(entropy.SeedOrNow(opts.Seed))),
	}
}

// Peers returns the configured peer base URLs.
func (p *PeerClient) Peers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	urls := make([]string, len(p.peers))
	for i, pr := range p.peers {
		urls[i] = pr.url
	}
	return urls
}

// admit decides whether a request to pr may be sent now, advancing the
// breaker open→half-open when the cooldown has elapsed.
func (p *PeerClient) admit(pr *peer) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch pr.state {
	case PeerClosed:
		return true
	case PeerOpen:
		if time.Since(pr.openedAt) < p.opts.BreakerCooldown { //mpq:wallclock breaker cooldown is wall-time by design; never reaches plan bytes
			p.skips++
			return false
		}
		pr.state = PeerHalfOpen
		pr.probing = true
		return true
	default: // half-open: one probe at a time
		if pr.probing {
			p.skips++
			return false
		}
		pr.probing = true
		return true
	}
}

// settle records a request outcome on pr's breaker.
func (p *PeerClient) settle(pr *peer, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr.probing = false
	if ok {
		pr.state = PeerClosed
		pr.failures = 0
		return
	}
	pr.failures++
	if pr.state == PeerHalfOpen ||
		(p.opts.BreakerThreshold > 0 && pr.failures >= p.opts.BreakerThreshold && pr.state == PeerClosed) {
		pr.state = PeerOpen
		pr.openedAt = time.Now() //mpq:wallclock breaker trip timestamp is wall-time by design; never reaches plan bytes
		pr.trips++
		p.trips++
	}
}

// backoff returns the jittered exponential delay before retry attempt
// (attempt 1 = first retry).
func (p *PeerClient) backoff(attempt int) time.Duration {
	d := p.opts.BackoffBase << (attempt - 1)
	if d > p.opts.BackoffMax || d <= 0 {
		d = p.opts.BackoffMax
	}
	p.mu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(d) + 1))
	p.mu.Unlock()
	return d/2 + jitter/2
}

// Fetch asks each peer for the document published under key,
// respecting ctx. ok is false when no peer holds it; err then
// aggregates any failures encountered along the way (all-404 yields a
// nil error).
func (p *PeerClient) Fetch(ctx context.Context, key string) (doc []byte, ok bool, err error) {
	p.mu.Lock()
	p.fetches++
	peers := p.peers
	p.mu.Unlock()
	var errs []error
	for _, pr := range peers {
		if ctx.Err() != nil {
			errs = append(errs, ctx.Err())
			break
		}
		if !p.admit(pr) {
			continue
		}
		doc, found, ferr := p.fetchRetrying(ctx, pr, key)
		p.settle(pr, ferr == nil)
		if ferr != nil {
			p.mu.Lock()
			p.errors++
			pr.errors++
			p.mu.Unlock()
			errs = append(errs, ferr)
			continue
		}
		if found {
			p.mu.Lock()
			p.hits++
			pr.hits++
			p.mu.Unlock()
			return doc, true, nil
		}
	}
	return nil, false, errors.Join(errs...)
}

// fetchRetrying is fetchOne plus bounded, backed-off retries of
// retryable failures (transport errors, 5xx). Non-retryable failures
// (corrupt body, unexpected 4xx) return immediately.
func (p *PeerClient) fetchRetrying(ctx context.Context, pr *peer, key string) ([]byte, bool, error) {
	var last error
	for attempt := 0; ; attempt++ {
		doc, found, retryable, err := p.fetchOne(ctx, pr.url, key)
		if err == nil {
			return doc, found, nil
		}
		last = err
		if !retryable || attempt >= p.opts.Retries || ctx.Err() != nil {
			return nil, false, last
		}
		p.mu.Lock()
		p.retries++
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, false, errors.Join(last, ctx.Err())
		case <-time.After(p.backoff(attempt + 1)):
		}
	}
}

func (p *PeerClient) fetchOne(ctx context.Context, peerURL, key string) (doc []byte, found, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+PlanSetPath+key, nil)
	if err != nil {
		return nil, false, false, fmt.Errorf("fleet: peer %s: %w", peerURL, err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false, true, fmt.Errorf("fleet: peer %s: %w", peerURL, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		if resp.ContentLength > p.opts.MaxDoc {
			p.countCorrupt()
			return nil, false, false, fmt.Errorf("fleet: peer %s: document %s is %d bytes, limit %d", peerURL, key, resp.ContentLength, p.opts.MaxDoc)
		}
		doc, err := io.ReadAll(io.LimitReader(resp.Body, p.opts.MaxDoc+1))
		if err != nil {
			return nil, false, true, fmt.Errorf("fleet: peer %s: reading %s: %w", peerURL, key, err)
		}
		if err := p.validateDoc(peerURL, key, resp.Header.Get(DocHashHeader), doc); err != nil {
			p.countCorrupt()
			return nil, false, false, err
		}
		return doc, true, false, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, false, nil
	case resp.StatusCode >= 500:
		return nil, false, true, fmt.Errorf("fleet: peer %s: %s for %s", peerURL, resp.Status, key)
	default:
		return nil, false, false, fmt.Errorf("fleet: peer %s: %s for %s", peerURL, resp.Status, key)
	}
}

// validateDoc rejects oversized, hash-mismatched, or structurally
// invalid documents before they can reach a cache.
func (p *PeerClient) validateDoc(peerURL, key, wantHash string, doc []byte) error {
	if int64(len(doc)) > p.opts.MaxDoc {
		return fmt.Errorf("fleet: peer %s: document %s exceeds %d bytes", peerURL, key, p.opts.MaxDoc)
	}
	if wantHash != "" {
		if sum := contentHash(doc); sum != wantHash {
			return fmt.Errorf("fleet: peer %s: document %s content hash %s, header says %s", peerURL, key, sum, wantHash)
		}
	}
	if _, err := docDim(doc); err != nil {
		return fmt.Errorf("fleet: peer %s: document %s: %w", peerURL, key, err)
	}
	return nil
}

func (p *PeerClient) countCorrupt() {
	p.mu.Lock()
	p.corrupt++
	p.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters and per-peer
// breaker states.
func (p *PeerClient) Stats() PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PeerStats{
		Fetches:      p.fetches,
		Hits:         p.hits,
		Errors:       p.errors,
		Retries:      p.retries,
		BreakerTrips: p.trips,
		BreakerSkips: p.skips,
		Corrupt:      p.corrupt,
		Peers:        make([]PeerInfo, len(p.peers)),
	}
	for i, pr := range p.peers {
		st.Peers[i] = PeerInfo{
			URL:      pr.url,
			State:    pr.state,
			Failures: pr.failures,
			Trips:    pr.trips,
			Hits:     pr.hits,
			Errors:   pr.errors,
		}
	}
	return st
}
