package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mpq/internal/faultfs"
)

// TestDirStoreCrashRestartProperty is the crash-safety property test:
// kill the store at *every* mutation cut point of a second-generation
// Put and verify what a fresh post-crash reader observes. The
// contract: Get returns the previous generation intact, the new
// generation intact, or a descriptive error — never torn bytes, and
// never a silent miss of a key whose first Put succeeded without a
// descriptive error explaining why. A subsequent real-filesystem Put
// must always succeed and heal the key.
func TestDirStoreCrashRestartProperty(t *testing.T) {
	const key = "k"
	gen1 := testDoc(2, 1)
	gen2 := testDoc(2, 2)

	// Clean pass: count the mutation cut points of one Put.
	counter := faultfs.NewInjector(nil, faultfs.Config{Seed: 1})
	{
		d, err := NewDirStoreFS(t.TempDir(), counter)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put(key, gen1); err != nil {
			t.Fatal(err)
		}
		counter.CrashAfterMutations(0) // reset not needed; just count from here
	}
	before := counter.Mutations()
	{
		d, err := NewDirStoreFS(t.TempDir(), counter)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put(key, gen1); err != nil {
			t.Fatal(err)
		}
	}
	cuts := counter.Mutations() - before
	if cuts < 6 {
		t.Fatalf("one Put performed only %d mutations — the atomic-write path shrank?", cuts)
	}
	t.Logf("one Put = %d mutation cut points", cuts)

	for cut := 1; cut <= cuts; cut++ {
		dir := t.TempDir()

		// Generation 1 lands cleanly.
		clean, err := NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.Put(key, gen1); err != nil {
			t.Fatal(err)
		}

		// Generation 2's Put crashes at this cut point.
		inj := faultfs.NewInjector(nil, faultfs.Config{Seed: 1})
		inj.CrashAfterMutations(cut)
		crashy, err := NewDirStoreFS(dir, inj)
		if err != nil {
			t.Fatal(err)
		}
		if err := crashy.Put(key, gen2); err == nil {
			t.Fatalf("cut %d: Put survived its own crash", cut)
		} else if !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("cut %d: Put error = %v, want ErrCrashed", cut, err)
		}

		// A restarted process opens the directory with the real
		// filesystem and must see a consistent world.
		d2, err := NewDirStore(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		doc, ok, gerr := d2.Get(key)
		switch {
		case gerr != nil:
			// Acceptable only when descriptive — the reader must know
			// why, not be handed garbage.
			if !strings.Contains(gerr.Error(), "manifest") && !strings.Contains(gerr.Error(), key) {
				t.Errorf("cut %d: undescriptive post-crash error: %v", cut, gerr)
			}
		case ok:
			if !bytes.Equal(doc, gen1) && !bytes.Equal(doc, gen2) {
				t.Errorf("cut %d: post-crash Get returned torn bytes %q", cut, doc)
			}
		default:
			t.Errorf("cut %d: key silently missing after a successful generation-1 Put", cut)
		}

		// The store self-heals: a real-filesystem Put succeeds and the
		// key serves the new generation.
		if err := d2.Put(key, gen2); err != nil {
			t.Errorf("cut %d: healing Put failed: %v", cut, err)
			continue
		}
		if doc, ok, err := d2.Get(key); err != nil || !ok || !bytes.Equal(doc, gen2) {
			t.Errorf("cut %d: post-heal Get = ok=%v err=%v", cut, ok, err)
		}
	}
}

// TestDirStoreQuarantine is the corrupt-blob regression test: a blob
// whose bytes disagree with the manifest is reported once with a
// descriptive error and moved aside (<blob>.quarantine), so the next
// Get is a plain miss and a re-publish heals the key.
func TestDirStoreQuarantine(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := testDoc(2, 1)
	if err := d.Put("k", doc); err != nil {
		t.Fatal(err)
	}
	// Corrupt the blob in place: same length, different bytes, so only
	// the content-hash check can catch it.
	bad := bytes.Replace(doc, []byte(`"generation":1`), []byte(`"generation":9`), 1)
	if len(bad) != len(doc) {
		t.Fatal("corruption changed the length")
	}
	path := d.blobPath("k", contentHash(doc))
	if err := faultfs.OS.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(d.Dir(), path, bad); err != nil {
		t.Fatal(err)
	}

	// First Get: descriptive error, blob quarantined.
	if _, ok, err := d.Get("k"); err == nil || ok {
		t.Fatalf("Get of corrupt blob = ok=%v err=%v", ok, err)
	} else if !strings.Contains(err.Error(), "hash") {
		t.Errorf("corruption error %q does not mention the hash", err)
	}
	if got := d.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	if _, err := faultfs.OS.Stat(path + ".quarantine"); err != nil {
		t.Errorf("no quarantine file next to the bad blob: %v", err)
	}

	// Second Get: the blob is gone, so the key degrades to a miss.
	if _, ok, err := d.Get("k"); ok || err != nil {
		t.Fatalf("Get after quarantine = ok=%v err=%v, want a clean miss", ok, err)
	}

	// Re-publishing heals the key.
	if err := d.Put("k", doc); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d.Get("k"); err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("healed Get = %q ok=%v err=%v", got, ok, err)
	}
	if got := d.Quarantined(); got != 1 {
		t.Errorf("healing changed the quarantine count to %d", got)
	}
}

// TestDirStoreInjectedReadError checks that a transient injected I/O
// error surfaces as an error (treated as a miss by callers), not as a
// silent miss or wrong data, and that the store keeps working after.
func TestDirStoreInjectedReadError(t *testing.T) {
	inj := faultfs.NewInjector(nil, faultfs.Config{Seed: 3, ErrorRate: 0.3})
	d, err := NewDirStoreFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	doc := testDoc(2, 1)
	// Put may fail under injection; retry until it lands.
	for {
		if err := d.Put("k", doc); err == nil {
			break
		} else if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("Put failed with a non-injected error: %v", err)
		}
	}
	var hits, errs int
	for i := 0; i < 64; i++ {
		got, ok, err := d.Get("k")
		switch {
		case err != nil:
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Get failed with a non-injected error: %v", err)
			}
			errs++
		case ok:
			if !bytes.Equal(got, doc) {
				t.Fatalf("Get returned wrong bytes under injection: %q", got)
			}
			hits++
		default:
			t.Fatal("Get degraded to a miss under a transient error")
		}
	}
	if hits == 0 || errs == 0 {
		t.Errorf("injection schedule produced %d hits, %d errors — wanted both", hits, errs)
	}
	if d.Quarantined() != 0 {
		t.Errorf("transient errors quarantined %d blobs", d.Quarantined())
	}
}
