// Package fleet implements the fleet-scale serving subsystem: the
// layer between the optimizer-as-a-service (mpq/internal/serve) and a
// fleet of server processes sharing one corpus of prepared plan sets.
//
// The paper's whole premise is that MPQ plan sets are computed once and
// amortized over many run-time invocations; this package extends that
// amortization beyond a single process and beyond unbounded memory:
//
//   - Cache is a memory-accounted plan-set cache with size-aware LRU
//     eviction — documents report their serialized+index footprint,
//     in-flight entries are pinned against eviction, and the counters
//     balance exactly (admitted − evicted = resident).
//   - SharedStore is the shared plan-set document store: DirStore is a
//     concurrency-safe on-disk implementation (atomic rename writes,
//     content-hashed fsync'd manifest), PeerClient fetches documents
//     over HTTP from sibling servers.
//   - Admission is per-template admission control: one global cap
//     bounds how many expensive Prepares may occupy solver-pool
//     workers concurrently, so hot templates queue behind their own
//     key (the serving layer's singleflight) instead of starving the
//     pool.
//
// See DESIGN.md, "Fleet serving".
package fleet

import "sync"

// CacheStats reports the cache's accounting. The invariant
// AdmittedBytes − EvictedBytes = ResidentBytes (and likewise for entry
// counts) holds at every quiescent point; the serving layer's
// regression test asserts it.
type CacheStats struct {
	// ResidentEntries and ResidentBytes describe the current contents.
	ResidentEntries int
	ResidentBytes   int64
	// Admissions/AdmittedBytes count every entry accepted into the
	// cache; Evictions/EvictedBytes the entries removed to respect the
	// budget. The first Add of a key wins (a racing loser gets the
	// winner's value); only Replace swaps a key's value in place, and
	// its byte delta flows through AdmittedBytes/EvictedBytes so the
	// difference is exactly the resident set.
	Admissions    int64
	AdmittedBytes int64
	Evictions     int64
	EvictedBytes  int64
	// Replaced counts in-place value swaps (Replace with a satisfied
	// guard) — generation upgrades, not admissions or evictions.
	Replaced int64
	// Readmissions is the subset of Admissions whose key had been
	// admitted (and evicted) before — cache thrash at a glance.
	Readmissions int64
	// Hits and Misses count Get outcomes.
	Hits   int64
	Misses int64
	// Pinned is the number of currently pinned entries (in-flight use;
	// pinned entries are not evictable).
	Pinned int
	// CapBytes echoes the configured budget (0 = unbounded).
	CapBytes int64
}

// centry is one cached value on the intrusive LRU list.
type centry struct {
	key        string
	val        any
	bytes      int64
	pins       int
	prev, next *centry // LRU neighbors; head = most recently used
}

// Cache is a memory-accounted cache with size-aware LRU eviction. Each
// entry declares its footprint in bytes at admission; when the resident
// total exceeds the budget, least-recently-used unpinned entries are
// evicted until it fits. Pinned entries (in-flight use) are never
// evicted, so the resident total may transiently exceed the budget —
// the budget bounds reclaimable memory, not peak usage. All methods are
// safe for concurrent use.
type Cache struct {
	budget int64 // 0 = unbounded

	mu         sync.Mutex
	entries    map[string]*centry
	head, tail *centry
	everSeen   map[string]bool // keys ever admitted, for Readmissions
	stats      CacheStats
}

// NewCache returns a cache with the given byte budget (0 = unbounded).
func NewCache(budget int64) *Cache {
	if budget < 0 {
		budget = 0
	}
	return &Cache{
		budget:   budget,
		entries:  make(map[string]*centry),
		everSeen: make(map[string]bool),
	}
}

// Get returns the value cached under key, marking it most recently
// used. With pin, the entry is additionally pinned against eviction
// until a matching Unpin — callers pin for the duration of a pick so
// an entry cannot be evicted (and its footprint double-admitted by a
// racing reload) while in use.
func (c *Cache) Get(key string, pin bool) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.moveToFront(e)
	if pin {
		e.pins++
	}
	return e.val, true
}

// Unpin releases one pin of key. Unpinning may make the entry
// evictable again, but eviction only happens on the next admission —
// an unpin never evicts synchronously.
func (c *Cache) Unpin(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.pins > 0 {
		e.pins--
	}
}

// Add admits val under key with the given footprint and returns the
// resident value: the first Add of a key wins, so a racing loser gets
// the winner's value back (and its own value is dropped without ever
// being accounted). With pin, the returned resident entry is pinned.
// Admission evicts least-recently-used unpinned entries until the
// resident total fits the budget again; the just-admitted entry is
// exempt from its own admission's eviction pass, so an oversized
// document still serves (the budget is then exceeded until the next
// admission).
func (c *Cache) Add(key string, val any, bytes int64, pin bool) any {
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		if pin {
			e.pins++
		}
		return e.val
	}
	e := &centry{key: key, val: val, bytes: bytes}
	if pin {
		e.pins++
	}
	c.entries[key] = e
	c.pushFront(e)
	c.stats.Admissions++
	c.stats.AdmittedBytes += bytes
	c.stats.ResidentEntries++
	c.stats.ResidentBytes += bytes
	if c.everSeen[key] {
		c.stats.Readmissions++
	}
	c.everSeen[key] = true
	if c.budget > 0 {
		c.evictLocked(e)
	}
	return e.val
}

// Replace swaps the value resident under key in place when keep (given
// the resident value) returns false; a nil keep always swaps. When the
// key is absent, Replace admits val like Add. The centry — and with it
// every outstanding pin — carries over, so in-flight readers holding
// the old value finish on it undisturbed while new lookups see the new
// value: the linearization point is the swap under the cache lock, and
// a reader observes exactly one of the two values. The byte delta flows
// through AdmittedBytes/EvictedBytes (invariant preserved), counted
// under Replaced rather than Admissions/Evictions. Returns the value
// now resident and whether a swap (or fresh admission) happened.
func (c *Cache) Replace(key string, val any, bytes int64, keep func(old any) bool) (any, bool) {
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &centry{key: key, val: val, bytes: bytes}
		c.entries[key] = e
		c.pushFront(e)
		c.stats.Admissions++
		c.stats.AdmittedBytes += bytes
		c.stats.ResidentEntries++
		c.stats.ResidentBytes += bytes
		if c.everSeen[key] {
			c.stats.Readmissions++
		}
		c.everSeen[key] = true
		if c.budget > 0 {
			c.evictLocked(e)
		}
		return e.val, true
	}
	if keep != nil && keep(e.val) {
		return e.val, false
	}
	c.stats.AdmittedBytes += bytes
	c.stats.EvictedBytes += e.bytes
	c.stats.ResidentBytes += bytes - e.bytes
	c.stats.Replaced++
	e.val = val
	e.bytes = bytes
	c.moveToFront(e)
	if c.budget > 0 {
		c.evictLocked(e)
	}
	return e.val, true
}

// evictLocked removes least-recently-used unpinned entries (other than
// keep) until the resident total fits the budget or nothing evictable
// remains.
func (c *Cache) evictLocked(keep *centry) {
	e := c.tail
	for c.stats.ResidentBytes > c.budget && e != nil {
		prev := e.prev
		if e != keep && e.pins == 0 {
			c.removeLocked(e)
		}
		e = prev
	}
}

// removeLocked unlinks e and updates the accounting.
func (c *Cache) removeLocked(e *centry) {
	delete(c.entries, e.key)
	c.unlink(e)
	c.stats.Evictions++
	c.stats.EvictedBytes += e.bytes
	c.stats.ResidentEntries--
	c.stats.ResidentBytes -= e.bytes
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.ResidentEntries
}

// Stats returns a snapshot of the accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.CapBytes = c.budget
	for e := c.head; e != nil; e = e.next {
		if e.pins > 0 {
			st.Pinned++
		}
	}
	return st
}

// Range calls fn for every resident entry (most recently used first)
// while holding the cache lock; fn must not call back into the cache.
func (c *Cache) Range(fn func(key string, val any)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.head; e != nil; e = e.next {
		fn(e.key, e.val)
	}
}

// LRU list plumbing. head is the most recently used entry.

func (c *Cache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *centry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
