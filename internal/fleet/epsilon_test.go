package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mpq/internal/faultfs"
)

// testDocEps builds a minimal well-formed ε-tier document payload.
func testDocEps(dim int, eps float64) []byte {
	return []byte(fmt.Sprintf(`{"version":4,"epsilon":%g,"space":{"dim":%d}}`, eps, dim))
}

// TestDirStoreEpsilonRoundTrip: documents of both precision tiers
// publish and serve under their own keys, and the manifest records
// each document's approximation factor.
func TestDirStoreEpsilonRoundTrip(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exact := testDoc(2, 1)
	approx := testDocEps(2, 0.05)
	if err := d.Put("kexact", exact); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("kapprox", approx); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string][]byte{"kexact": exact, "kapprox": approx} {
		got, ok, err := d.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = %q ok=%v err=%v", key, got, ok, err)
		}
	}
	m, err := d.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Entries["kexact"].Epsilon; got != 0 {
		t.Errorf("exact manifest epsilon = %v, want 0", got)
	}
	if got := m.Entries["kapprox"].Epsilon; got != 0.05 {
		t.Errorf("approx manifest epsilon = %v, want 0.05", got)
	}
}

// TestDirStoreEpsilonMismatchQuarantine: a blob whose approximation
// factor disagrees with its manifest record must be reported with a
// descriptive error and quarantined — the size and content-hash checks
// cannot catch a manifest edited to relabel a tier, the epsilon check
// must.
func TestDirStoreEpsilonMismatchQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := testDocEps(2, 0.05)
	if err := d.Put("k", doc); err != nil {
		t.Fatal(err)
	}

	// Relabel the tier in the manifest only: bytes, hash, and dim still
	// match the blob.
	m, err := d.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	ent := m.Entries["k"]
	ent.Epsilon = 0.5
	m.Entries["k"] = ent
	d.mu.Lock()
	err = d.writeManifestLocked(m)
	d.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store (no cached manifest) must reject and quarantine.
	d2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d2.Get("k"); err == nil || ok {
		t.Fatalf("Get with relabeled tier = ok=%v err=%v, want error", ok, err)
	} else if !strings.Contains(err.Error(), "epsilon") {
		t.Errorf("mismatch error %q does not mention epsilon", err)
	}
	if got := d2.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	path := d2.blobPath("k", contentHash(doc))
	if _, err := faultfs.OS.Stat(path + ".quarantine"); err != nil {
		t.Errorf("no quarantine file next to the relabeled blob: %v", err)
	}

	// Degrades to a miss, then a re-publish heals the key and re-points
	// the manifest at the true tier.
	if _, ok, err := d2.Get("k"); ok || err != nil {
		t.Fatalf("Get after quarantine = ok=%v err=%v, want a clean miss", ok, err)
	}
	if err := d2.Put("k", doc); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d2.Get("k"); err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("healed Get = %q ok=%v err=%v", got, ok, err)
	}
}

// TestDirStorePutKeepsFinerGeneration: generation ordering — once a
// fine (low-ε) document is published under a key, a straggling coarser
// Put must leave the manifest pointing at the fine document, so no
// fleet member ever reads a downgrade. Equal-ε and finer re-publishes
// still overwrite.
func TestDirStorePutKeepsFinerGeneration(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coarse := testDocEps(2, 0.5)
	mid := testDocEps(2, 0.1)
	fine := testDocEps(2, 0)
	if err := d.Put("k", coarse); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", mid); err != nil { // refinement: overwrites
		t.Fatal(err)
	}
	if got, ok, err := d.Get("k"); err != nil || !ok || !bytes.Equal(got, mid) {
		t.Fatalf("after refining Put, Get = %q ok=%v err=%v, want the ε=0.1 doc", got, ok, err)
	}
	if err := d.Put("k", coarse); err != nil { // straggler: silently kept out
		t.Fatal(err)
	}
	if got, _, _ := d.Get("k"); !bytes.Equal(got, mid) {
		t.Fatal("a straggling coarse Put downgraded the manifest")
	}
	if err := d.Put("k", fine); err != nil { // final generation lands
		t.Fatal(err)
	}
	got, ok, err := d.Get("k")
	if err != nil || !ok || !bytes.Equal(got, fine) {
		t.Fatalf("final Get = %q ok=%v err=%v, want the exact doc", got, ok, err)
	}
	m, err := d.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Entries["k"].Epsilon; got != 0 {
		t.Errorf("manifest epsilon = %v, want 0 after full refinement", got)
	}
	// A fresh store over the same dir must validate and serve the final
	// generation (the superseded blobs still on disk are unreferenced).
	d2, err := NewDirStore(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d2.Get("k"); err != nil || !ok || !bytes.Equal(got, fine) {
		t.Fatalf("reopened Get = %q ok=%v err=%v", got, ok, err)
	}
}

// TestDirStorePutRejectsNegativeEpsilon: a document carrying a
// negative factor is refused at publication.
func TestDirStorePutRejectsNegativeEpsilon(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte(`{"version":4,"epsilon":-0.1,"space":{"dim":2}}`)); err == nil {
		t.Error("negative-epsilon document published")
	}
}
