package fleet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionCap(t *testing.T) {
	a := NewAdmission(2)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := a.Acquire()
			defer release()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds cap 2", p)
	}
	st := a.Stats()
	if st.Admitted != 16 {
		t.Errorf("admitted = %d, want 16", st.Admitted)
	}
	if st.Waited == 0 || st.WaitTime <= 0 {
		t.Errorf("no queueing recorded under contention: %+v", st)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("controller not quiescent after release: %+v", st)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1)
	release := a.Acquire() // occupy the only slot

	const waiters = 5
	order := make(chan int, waiters)
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize enqueue order: waiter i must be queued before
			// waiter i+1 starts.
			for a.Stats().Queued != i {
				time.Sleep(100 * time.Microsecond)
			}
			started.Done()
			r := a.Acquire()
			order <- i
			r()
		}(i)
		started.Wait()
		started = sync.WaitGroup{}
	}
	release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("waiter %d admitted before waiter %d (not FIFO)", got, want)
		}
		want++
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0)
	var releases []func()
	for i := 0; i < 8; i++ {
		releases = append(releases, a.Acquire())
	}
	st := a.Stats()
	if st.Waited != 0 || st.Running != 8 {
		t.Errorf("unlimited controller queued: %+v", st)
	}
	for _, r := range releases {
		r()
		r() // release is idempotent
	}
	if st := a.Stats(); st.Running != 0 {
		t.Errorf("running = %d after releases", st.Running)
	}
}
