package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionCap(t *testing.T) {
	a := NewAdmission(2)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := mustAcquire(a)
			defer release()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds cap 2", p)
	}
	st := a.Stats()
	if st.Admitted != 16 {
		t.Errorf("admitted = %d, want 16", st.Admitted)
	}
	if st.Waited == 0 || st.WaitTime <= 0 {
		t.Errorf("no queueing recorded under contention: %+v", st)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("controller not quiescent after release: %+v", st)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1)
	release := mustAcquire(a) // occupy the only slot

	const waiters = 5
	order := make(chan int, waiters)
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize enqueue order: waiter i must be queued before
			// waiter i+1 starts.
			for a.Stats().Queued != i {
				time.Sleep(100 * time.Microsecond)
			}
			started.Done()
			r := mustAcquire(a)
			order <- i
			r()
		}(i)
		started.Wait()
		started = sync.WaitGroup{}
	}
	release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("waiter %d admitted before waiter %d (not FIFO)", got, want)
		}
		want++
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0)
	var releases []func()
	for i := 0; i < 8; i++ {
		releases = append(releases, mustAcquire(a))
	}
	st := a.Stats()
	if st.Waited != 0 || st.Running != 8 {
		t.Errorf("unlimited controller queued: %+v", st)
	}
	for _, r := range releases {
		r()
		r() // release is idempotent
	}
	if st := a.Stats(); st.Running != 0 {
		t.Errorf("running = %d after releases", st.Running)
	}
}

// mustAcquire is Acquire with a background context, for tests that
// never cancel; it panics rather than returning an error so it can be
// called from helper goroutines.
func mustAcquire(a *Admission) func() {
	release, err := a.Acquire(context.Background())
	if err != nil {
		panic(err)
	}
	return release
}

// TestAdmissionCancelWhileQueued is the slot-leak regression test: a
// queued Acquire that gives up must vacate its FIFO slot and leave the
// accounting balanced — it is not admitted, it does not hold a slot,
// and the next waiter still gets through.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1)
	release := mustAcquire(a) // occupy the only slot

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		rel, err := a.Acquire(ctx)
		if rel != nil {
			rel()
		}
		errc <- err
	}()
	for a.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}

	st := a.Stats()
	if st.Queued != 0 {
		t.Errorf("cancelled waiter still queued: %+v", st)
	}
	if st.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", st.Cancelled)
	}
	if st.Admitted != 1 {
		t.Errorf("admitted = %d, want only the slot holder", st.Admitted)
	}

	// The slot still works: release it and a fresh Acquire sails through.
	release()
	done := make(chan struct{})
	go func() {
		mustAcquire(a)()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire blocked after a cancelled waiter — leaked slot")
	}
	if st := a.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("controller not quiescent: %+v", st)
	}
}

// TestAdmissionCancelRaceBalance hammers Acquire with a mix of live
// and instantly-cancelled contexts; whatever interleaving happens, the
// controller must end quiescent with Admitted = successful acquires
// and no leaked running count — the balance analogue of
// TestServeStatsAccountingBalance for the admission layer.
func TestAdmissionCancelRaceBalance(t *testing.T) {
	a := NewAdmission(2)
	var wg sync.WaitGroup
	var succeeded atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			} else if i%3 == 1 {
				c, cancel := context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
				defer cancel()
				ctx = c
			}
			rel, err := a.Acquire(ctx)
			if err != nil {
				if rel != nil {
					t.Error("Acquire returned both a release and an error")
				}
				return
			}
			succeeded.Add(1)
			time.Sleep(200 * time.Microsecond)
			rel()
		}(i)
	}
	wg.Wait()
	st := a.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("controller not quiescent after the race: %+v", st)
	}
	if st.Admitted != succeeded.Load() {
		t.Errorf("admitted = %d, successful acquires = %d — accounting drifted",
			st.Admitted, succeeded.Load())
	}
	if st.Admitted+st.Cancelled < 64 {
		t.Errorf("admitted %d + cancelled %d < 64 attempts", st.Admitted, st.Cancelled)
	}
}
