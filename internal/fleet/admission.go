package fleet

import (
	"context"
	"sync"
	"time"
)

// AdmissionStats reports the admission controller's behavior.
type AdmissionStats struct {
	// Admitted counts acquisitions that got a slot; Waited the subset
	// that had to queue first.
	Admitted int64
	Waited   int64
	// Cancelled counts acquisitions that gave up (context done) while
	// still queued — they never held a slot and never owe a release.
	Cancelled int64
	// WaitTime sums the queueing time of all Waited acquisitions.
	WaitTime time.Duration
	// Running and Queued describe the current moment.
	Running int
	Queued  int
	// MaxQueued is the high-water mark of the wait queue.
	MaxQueued int
	// Cap echoes the configured concurrency cap (0 = unlimited).
	Cap int
}

// Admission is the per-template admission controller of the serving
// layer: a global cap on concurrently *running* Prepares with a strict
// FIFO wait queue. Requests for one template key already collapse onto
// a single computation through the serving layer's singleflight — that
// is the per-key queue — so Admission only has to keep distinct
// expensive templates from occupying every solver-pool worker at once:
// with Cap < pool size, Picks always find a free worker no matter how
// many Prepares are queued.
type Admission struct {
	cap int

	mu      sync.Mutex
	running int
	waiters []chan struct{} // FIFO; head is the next to admit
	stats   AdmissionStats
}

// NewAdmission returns a controller admitting at most cap concurrent
// holders (cap <= 0 = unlimited, counting only).
func NewAdmission(cap int) *Admission {
	if cap < 0 {
		cap = 0
	}
	return &Admission{cap: cap}
}

// Acquire blocks until a slot is free (FIFO among waiters) or ctx is
// done. On success it returns the release function, which must be
// called exactly once; on cancellation it returns (nil, ctx.Err()) and
// the caller owes nothing — a queued waiter that gives up removes
// itself from the FIFO without consuming a slot, and if its slot
// transfer races the cancellation, the slot is handed straight onward
// so the running counter never leaks.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		a.mu.Lock()
		a.stats.Cancelled++
		a.mu.Unlock()
		return nil, err
	}
	a.mu.Lock()
	a.stats.Admitted++
	if a.cap <= 0 || a.running < a.cap {
		a.running++
		a.mu.Unlock()
		return a.releaseOnce(), nil
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	a.stats.Waited++
	if len(a.waiters) > a.stats.MaxQueued {
		a.stats.MaxQueued = len(a.waiters)
	}
	a.mu.Unlock()

	start := time.Now() //mpq:wallclock queue-wait stat (Stats.WaitTime); never reaches plan bytes
	select {
	case <-ch: // the releasing holder transferred its slot to us
		a.mu.Lock()
		a.stats.WaitTime += time.Since(start) //mpq:wallclock queue-wait stat; never reaches plan bytes
		a.mu.Unlock()
		return a.releaseOnce(), nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == ch {
				// Still queued: unqueue ourselves; no slot was consumed.
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.stats.Admitted-- // never admitted after all
				a.stats.Cancelled++
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.stats.Cancelled++
		a.mu.Unlock()
		// Not in the queue, so a release already closed our channel: we
		// hold a slot we no longer want. Hand it onward immediately.
		a.releaseOnce()()
		return nil, ctx.Err()
	}
}

// releaseOnce returns a release function that hands the slot to the
// oldest waiter (keeping running constant) or frees it.
func (a *Admission) releaseOnce() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			if len(a.waiters) > 0 {
				ch := a.waiters[0]
				a.waiters = a.waiters[1:]
				close(ch)
			} else {
				a.running--
			}
			a.mu.Unlock()
		})
	}
}

// Stats returns a snapshot of the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Running = a.running
	st.Queued = len(a.waiters)
	st.Cap = a.cap
	return st
}
