package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mpq/internal/faultfs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testDoc builds a minimal well-formed document payload with the given
// parameter dimension and a version marker to tell generations apart.
func testDoc(dim, generation int) []byte {
	return []byte(fmt.Sprintf(`{"space":{"dim":%d},"generation":%d}`, dim, generation))
}

func TestDirStoreRoundTrip(t *testing.T) {
	d, err := NewDirStore(filepath.Join(t.TempDir(), "shared"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get("missing"); ok || err != nil {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	doc := testDoc(2, 1)
	if err := d.Put("k1", doc); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.Get("k1")
	if err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("Get after Put = %q ok=%v err=%v", got, ok, err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	hits, misses, puts := d.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Errorf("stats = %d/%d/%d, want 1 hit, 1 miss, 1 put", hits, misses, puts)
	}

	// The manifest records size, content hash and dimension.
	m, err := readManifestFile(faultfs.OS, filepath.Join(d.Dir(), manifestName))
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := m.Entries["k1"]
	if !ok {
		t.Fatal("manifest has no entry for k1")
	}
	if ent.Bytes != int64(len(doc)) || ent.Dim != 2 || ent.SHA256 != contentHash(doc) {
		t.Errorf("manifest entry = %+v", ent)
	}

	// A second store over the same dir sees the document.
	d2, err := NewDirStore(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := d2.Get("k1"); err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("second store Get = %q ok=%v err=%v", got, ok, err)
	}
}

func TestDirStoreRejectsNonDocument(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("bad", []byte("not json")); err == nil {
		t.Error("Put accepted a non-document")
	}
	if err := d.Put("bad", []byte(`{"space":{"dim":0}}`)); err == nil {
		t.Error("Put accepted a dimension-less document")
	}
}

// corruptManifest rewrites one key's manifest entry in place.
func corruptManifest(t *testing.T, dir, key string, mutate func(*manifestEntry)) {
	t.Helper()
	path := filepath.Join(dir, manifestName)
	m, err := readManifestFile(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := m.Entries[key]
	if !ok {
		t.Fatalf("manifest has no entry for %s", key)
	}
	mutate(&ent)
	m.Entries[key] = ent
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
}

// corruptManifestDrop removes one key's manifest entry (simulating a
// lost cross-process merge; the blob stays on disk).
func corruptManifestDrop(t *testing.T, dir, key string) {
	t.Helper()
	path := filepath.Join(dir, manifestName)
	m, err := readManifestFile(faultfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	delete(m.Entries, key)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestDirStoreManifestValidation covers the load error paths: a
// wrong-dimension manifest entry, a wrong-size entry, and a
// wrong-content-hash entry must each fail Get with a descriptive
// error, while a document missing from the manifest (a concurrent
// writer lost the manifest merge) is still served.
func TestDirStoreManifestValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*manifestEntry)
		want   string
	}{
		{"wrong dim", func(e *manifestEntry) { e.Dim = 7 }, "dimension"},
		{"wrong size", func(e *manifestEntry) { e.Bytes += 3 }, "bytes"},
		// Corrupt the hash tail so the blob is still resolvable (the
		// filename uses the prefix) but the full-hash check fails.
		{"wrong hash", func(e *manifestEntry) {
			e.SHA256 = e.SHA256[:blobHashLen] + strings.Repeat("0", 64-blobHashLen)
		}, "hash"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("k", testDoc(2, 1)); err != nil {
				t.Fatal(err)
			}
			corruptManifest(t, d.Dir(), "k", tc.mutate)
			_, ok, err := d.Get("k")
			if err == nil || ok {
				t.Fatalf("Get with corrupt manifest = ok=%v err=%v", ok, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	t.Run("lost manifest merge degrades to a miss", func(t *testing.T) {
		// Simulate a cross-process writer whose manifest merge was lost:
		// the blob exists, the manifest does not mention the key. The
		// key reads as a miss (callers recompute and re-publish), never
		// as wrong data.
		d, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put("kept", testDoc(2, 1)); err != nil {
			t.Fatal(err)
		}
		if err := d.Put("lost", testDoc(2, 2)); err != nil {
			t.Fatal(err)
		}
		corruptManifestDrop(t, d.Dir(), "lost")
		if _, ok, err := d.Get("lost"); ok || err != nil {
			t.Fatalf("lost-merge Get = ok=%v err=%v, want a clean miss", ok, err)
		}
		if _, ok, err := d.Get("kept"); !ok || err != nil {
			t.Fatalf("kept Get = ok=%v err=%v", ok, err)
		}
		// Re-publishing heals the key.
		if err := d.Put("lost", testDoc(2, 2)); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := d.Get("lost"); !ok || err != nil {
			t.Fatalf("healed Get = ok=%v err=%v", ok, err)
		}
	})

	t.Run("transient manifest read error fails Put without rebuilding", func(t *testing.T) {
		// A manifest that cannot be *read* (here: it is a directory, so
		// ReadFile fails with a non-parse error) must fail the Put —
		// rebuilding from one entry would orphan every other key over a
		// passing I/O error.
		d, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put("existing", testDoc(2, 1)); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(d.Dir(), manifestName)
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(path, 0o777); err != nil {
			t.Fatal(err)
		}
		if err := d.Put("k", testDoc(2, 1)); err == nil {
			t.Fatal("Put with an unreadable (non-corrupt) manifest succeeded")
		}
	})

	t.Run("corrupt manifest does not block Put", func(t *testing.T) {
		d, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d.Dir(), manifestName), []byte("garbage"), 0o666); err != nil {
			t.Fatal(err)
		}
		if err := d.Put("k", testDoc(1, 1)); err != nil {
			t.Fatalf("Put with corrupt manifest: %v", err)
		}
		if _, ok, err := d.Get("k"); err != nil || !ok {
			t.Fatalf("Get after manifest rebuild = ok=%v err=%v", ok, err)
		}
	})
}

// TestDirStoreConcurrentLoadDuringSave is the atomic-rename race test
// (run under -race): readers loading a key while writers re-Put it must
// always observe a complete, self-consistent document of some
// generation — never a torn or failed read.
func TestDirStoreConcurrentLoadDuringSave(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "hot"
	if err := d.Put(key, testDoc(2, 0)); err != nil {
		t.Fatal(err)
	}

	// A second store handle over the same dir plays the "other process"
	// writer: its manifest merges go through a different in-process
	// mutex, exactly like a sibling server would.
	d2, err := NewDirStore(d.Dir())
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w, st := range map[int]*DirStore{0: d, 1: d2} {
		wg.Add(1)
		go func(w int, st *DirStore) {
			defer wg.Done()
			for g := 1; ; g++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := st.Put(key, testDoc(2, w*1000000+g)); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w, st)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			readers := []*DirStore{d, d2}
			for i := 0; i < 300; i++ {
				doc, ok, err := readers[i%2].Get(key)
				if err != nil || !ok {
					errCh <- fmt.Errorf("reader %d: ok=%v err=%w", r, ok, err)
					return
				}
				var probe struct {
					Space struct {
						Dim int `json:"dim"`
					} `json:"space"`
					Generation int `json:"generation"`
				}
				if err := json.Unmarshal(doc, &probe); err != nil {
					errCh <- fmt.Errorf("reader %d: torn document %q: %w", r, doc, err)
					return
				}
				if probe.Space.Dim != 2 {
					errCh <- fmt.Errorf("reader %d: document of dim %d", r, probe.Space.Dim)
					return
				}
			}
		}(r)
	}
	// Let readers finish, then stop the writers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestPeerClientFetch(t *testing.T) {
	docs := map[string][]byte{"k1": testDoc(2, 1)}
	hitsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, PlanSetPath)
		doc, ok := docs[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(doc)
	}))
	defer hitsrv.Close()
	downsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer downsrv.Close()

	// A dead peer, a broken peer, then the one that has it: Fetch must
	// skip past the failures and hit.
	p := NewPeerClient([]string{"http://127.0.0.1:1", downsrv.URL, hitsrv.URL}, time.Second)
	doc, ok, err := p.Fetch(context.Background(), "k1")
	if err != nil || !ok || !bytes.Equal(doc, docs["k1"]) {
		t.Fatalf("Fetch = %q ok=%v err=%v", doc, ok, err)
	}
	if _, ok, err := p.Fetch(context.Background(), "absent"); ok {
		t.Errorf("absent key ok=%v err=%v", ok, err)
	}
	st := p.Stats()
	if st.Fetches != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 fetches, 1 hit", st)
	}
	if st.Errors < 2 {
		t.Errorf("errors = %d, want >= 2 (dead + broken peer)", st.Errors)
	}

	// Peer URLs are normalized: scheme added, trailing slash trimmed.
	n := NewPeerClient([]string{" example.com/ ", ""}, 0)
	if got := n.Peers(); len(got) != 1 || got[0] != "http://example.com" {
		t.Errorf("normalized peers = %v", got)
	}
}
