package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mpq/internal/faultfs"
)

// SharedStore is a shared plan-set document store: a fleet of servers
// publishes prepared plan-set documents under their cache keys (the
// serving layer's SHA-256 template hash) and consults the store before
// optimizing, so each template is computed once per fleet instead of
// once per process. Documents are opaque serialized bytes (the store
// format of mpq/internal/store); implementations must be safe for
// concurrent use from multiple goroutines and — for on-disk stores —
// multiple processes.
type SharedStore interface {
	// Get returns the document published under key; ok is false when
	// the store holds none. A non-nil error means the store holds
	// something for the key but could not serve it intact (integrity
	// failure, I/O error) — callers treat that as a miss and recompute.
	Get(key string) (doc []byte, ok bool, err error)
	// Put publishes a document under key. Concurrent Puts of one key
	// are safe; every Prepare of one key produces identical bytes (the
	// store round-trip is deterministic), so any winner is valid.
	Put(key string, doc []byte) error
	// Flush forces durability of everything published so far (graceful
	// shutdown calls it before exiting).
	Flush() error
}

// manifest is the DirStore's fsync'd index and integrity record: for
// every published key, the document's size, content hash, and
// parameter-space dimension. The manifest is authoritative — a blob
// without a manifest entry is invisible — and lets a reader reject
// corrupt bytes before deserializing a multi-megabyte document.
type manifest struct {
	Version int                      `json:"version"`
	Entries map[string]manifestEntry `json:"entries"`
}

type manifestEntry struct {
	// Bytes and SHA256 describe the exact document content (the hex
	// SHA-256 of the file bytes — the same hash family as the cache
	// key, which hashes the template instead).
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
	// Dim is the document's parameter-space dimension, so a reader can
	// reject a manifest/document mismatch with a descriptive error
	// before pricing points against the wrong space.
	Dim int `json:"dim"`
	// Epsilon is the document's approximation factor (0 for exact plan
	// sets, whose documents omit the stanza). Recording it in the
	// manifest lets Get reject a blob whose precision tier disagrees
	// with what was published — a swapped or tampered file — before a
	// server trusts its plans.
	Epsilon float64 `json:"epsilon,omitempty"`
}

const manifestName = "MANIFEST.json"

// errManifestCorrupt marks a manifest that exists but cannot be
// parsed — distinct from a transient read failure, which must never be
// "repaired" by rewriting the manifest.
var errManifestCorrupt = errors.New("fleet: manifest corrupt")

// DirStore is the concurrency-safe on-disk SharedStore. Documents are
// content-addressed: a document published under cache key k is written
// once, via fsync'd temp-file-plus-rename, to <dir>/<k>.<h>.json where
// h is a prefix of the document's SHA-256 content hash (the same hash
// family as the cache key itself), and never rewritten — every blob on
// disk is immutable. An fsync'd MANIFEST.json maps each key to its
// current blob (size, full content hash, parameter dimension) and is
// replaced atomically.
//
// Consistency story: because blobs are immutable and both renames are
// atomic, a reader that loads the manifest and then the blob it points
// to always sees a complete, self-consistent document of *some*
// generation — a Save racing the Load can never expose torn bytes or a
// mismatched (manifest, document) pair. Puts from one process are
// serialized by an in-process mutex; concurrent writers from different
// processes can lose each other's manifest merge (last rename wins),
// which degrades to a cache miss for the lost key — the next Prepare
// recomputes identical bytes and re-publishes, so the store self-heals
// per key and never serves wrong data.
type DirStore struct {
	dir string
	fs  faultfs.FS

	// mu guards the parsed-manifest cache and serializes Put's
	// read-modify-write. The cache is invalidated by stat (size +
	// mtime): the manifest file is only ever atomically replaced, so a
	// changed stat is exactly a changed manifest — Gets on the serving
	// hot path (pick-time reloads) re-parse only after an actual Put.
	// The cached manifest is shared with readers; its Entries map is
	// never mutated in place (Put clones).
	mu      sync.Mutex
	man     *manifest
	manSize int64
	manMod  time.Time

	statsMu                         sync.Mutex
	hits, misses, puts, quarantined int64
}

// NewDirStore opens (creating if needed) an on-disk shared store rooted
// at dir.
func NewDirStore(dir string) (*DirStore, error) {
	return NewDirStoreFS(dir, nil)
}

// NewDirStoreFS is NewDirStore with an explicit filesystem (nil selects
// the real one) — the fault-injection seam for crash and I/O-error
// tests.
func NewDirStoreFS(dir string, fsys faultfs.FS) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("fleet: shared dir must not be empty")
	}
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("fleet: shared dir: %w", err)
	}
	return &DirStore{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (d *DirStore) Dir() string { return d.dir }

// blobHashLen is the content-hash prefix length in a blob filename —
// long enough that distinct generations of one key cannot collide in
// practice, short enough for readable directory listings.
const blobHashLen = 16

// blobPath is the immutable content-addressed file of one document
// generation.
func (d *DirStore) blobPath(key, sha string) string {
	return filepath.Join(d.dir, key+"."+sha[:blobHashLen]+".json")
}

// Get implements SharedStore: resolve the key through the manifest,
// read the immutable blob it points to, verify size, content hash and
// dimension. A blob that disagrees with its manifest entry is reported
// as an error, not silently served — and quarantined (renamed to
// <blob>.quarantine), so the very next Get degrades to a plain miss
// and the key heals through recompute-and-republish instead of staying
// permanently wedged on one corrupt file.
func (d *DirStore) Get(key string) ([]byte, bool, error) {
	m, err := d.readManifest()
	if err != nil {
		return nil, false, err
	}
	ent, ok := m.Entries[key]
	if !ok || len(ent.SHA256) < blobHashLen {
		d.count(&d.misses)
		return nil, false, nil
	}
	path := d.blobPath(key, ent.SHA256)
	doc, err := d.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			d.count(&d.misses)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("fleet: reading shared document %s: %w", key, err)
	}
	if err := validateEntry(key, ent, doc); err != nil {
		d.quarantine(path)
		return nil, false, err
	}
	d.count(&d.hits)
	return doc, true, nil
}

// quarantine moves a blob that failed integrity validation out of the
// way (best-effort — on failure the next Get re-detects the mismatch)
// and counts it. The manifest entry is left in place: with the blob
// gone, it degrades to a miss, and the key's next Put re-points it.
func (d *DirStore) quarantine(path string) {
	if err := d.fs.Rename(path, path+".quarantine"); err != nil {
		return
	}
	d.count(&d.quarantined)
}

func (d *DirStore) count(c *int64) {
	d.statsMu.Lock()
	*c++
	d.statsMu.Unlock()
}

// validateEntry checks a document against its manifest record.
func validateEntry(key string, ent manifestEntry, doc []byte) error {
	if ent.Bytes != int64(len(doc)) {
		return fmt.Errorf("fleet: shared document %s is %d bytes, manifest records %d", key, len(doc), ent.Bytes)
	}
	if sum := contentHash(doc); sum != ent.SHA256 {
		return fmt.Errorf("fleet: shared document %s content hash %s, manifest records %s", key, sum, ent.SHA256)
	}
	if dim, err := docDim(doc); err != nil {
		return fmt.Errorf("fleet: shared document %s: %w", key, err)
	} else if ent.Dim != dim {
		return fmt.Errorf("fleet: shared document %s has parameter dimension %d, manifest records %d", key, dim, ent.Dim)
	}
	if eps, err := docEpsilon(doc); err != nil {
		return fmt.Errorf("fleet: shared document %s: %w", key, err)
	} else if ent.Epsilon != eps {
		return fmt.Errorf("fleet: shared document %s has epsilon %v, manifest records %v", key, eps, ent.Epsilon)
	}
	return nil
}

// Put implements SharedStore: fsync'd atomic write of the immutable
// content-addressed blob, then a merged, fsync'd manifest update that
// points the key at it. Superseded blob generations are left in place
// so a reader holding an older manifest never loses its blob; in
// practice every Prepare of one key produces identical bytes, so a key
// has one generation.
func (d *DirStore) Put(key string, doc []byte) error {
	dim, err := docDim(doc)
	if err != nil {
		return fmt.Errorf("fleet: refusing to publish %s: %w", key, err)
	}
	eps, err := docEpsilon(doc)
	if err != nil {
		return fmt.Errorf("fleet: refusing to publish %s: %w", key, err)
	}
	sha := contentHash(doc)
	if err := writeFileAtomicFS(d.fs, d.dir, d.blobPath(key, sha), doc); err != nil {
		return fmt.Errorf("fleet: publishing %s: %w", key, err)
	}
	d.count(&d.puts)
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, err := d.cachedManifestLocked()
	if err != nil {
		if !errors.Is(err, errManifestCorrupt) {
			// A *transient* read failure must fail the Put rather than
			// rebuild: rewriting the manifest from one entry would
			// orphan every other key's blob over a passing I/O error.
			return fmt.Errorf("fleet: publishing %s: %w", key, err)
		}
		// A genuinely corrupt manifest must not block publication:
		// rebuild from this entry on. Keys indexed only by the lost
		// manifest degrade to misses and self-heal on their next
		// Prepare's re-publish.
		cur = &manifest{Version: 1, Entries: map[string]manifestEntry{}}
	}
	// Generation ordering: a key's manifest entry only ever moves
	// toward a finer approximation. Anytime refinement publishes a
	// ladder of generations (high ε first) under one key; a straggling
	// coarse Put — a slow peer, a replayed publish — must not clobber a
	// finer document some server already refined, or a fleet reading
	// through this store would downgrade. Equal ε re-publishes are
	// byte-identical by the determinism contract and overwrite
	// harmlessly. The blob itself stays on disk either way
	// (content-addressed); only the manifest pointer is guarded.
	if old, ok := cur.Entries[key]; ok && old.Epsilon < eps {
		return nil
	}
	// Clone before mutating: the cached manifest is shared with
	// concurrent readers.
	m := &manifest{Version: 1, Entries: make(map[string]manifestEntry, len(cur.Entries)+1)}
	for k, v := range cur.Entries {
		m.Entries[k] = v
	}
	m.Entries[key] = manifestEntry{
		Bytes:   int64(len(doc)),
		SHA256:  sha,
		Dim:     dim,
		Epsilon: eps,
	}
	if err := d.writeManifestLocked(m); err != nil {
		return err
	}
	// Cache what was just written so the next Get skips the re-parse.
	if fi, err := d.fs.Stat(filepath.Join(d.dir, manifestName)); err == nil {
		d.man, d.manSize, d.manMod = m, fi.Size(), fi.ModTime()
	}
	return nil
}

// Flush implements SharedStore: every Put is already fsync'd (document
// and manifest), so Flush only re-syncs the directory entry.
func (d *DirStore) Flush() error {
	return d.fs.SyncDir(d.dir)
}

// Stats returns the store's hit/miss/put counters.
func (d *DirStore) Stats() (hits, misses, puts int64) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.hits, d.misses, d.puts
}

// Quarantined returns how many corrupt blobs Get has moved aside.
func (d *DirStore) Quarantined() int64 {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.quarantined
}

// readManifest returns the parsed manifest (an absent manifest is an
// empty one), served from the stat-validated cache.
func (d *DirStore) readManifest() (*manifest, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cachedManifestLocked()
}

// cachedManifestLocked returns the parsed manifest, re-reading the
// file only when its stat (size, mtime) changed since the last parse —
// the manifest is only ever atomically replaced, so an unchanged stat
// means unchanged content. Callers hold d.mu and must not mutate the
// returned manifest's Entries. Parse errors are never cached.
func (d *DirStore) cachedManifestLocked() (*manifest, error) {
	path := filepath.Join(d.dir, manifestName)
	fi, err := d.fs.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{Version: 1, Entries: map[string]manifestEntry{}}, nil
		}
		return nil, fmt.Errorf("fleet: reading manifest: %w", err)
	}
	if d.man != nil && fi.Size() == d.manSize && fi.ModTime().Equal(d.manMod) {
		return d.man, nil
	}
	m, err := readManifestFile(d.fs, path)
	if err != nil {
		return nil, err
	}
	d.man, d.manSize, d.manMod = m, fi.Size(), fi.ModTime()
	return m, nil
}

func readManifestFile(fsys faultfs.FS, path string) (*manifest, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{Version: 1, Entries: map[string]manifestEntry{}}, nil
		}
		return nil, fmt.Errorf("fleet: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", errManifestCorrupt, err)
	}
	if m.Entries == nil {
		m.Entries = map[string]manifestEntry{}
	}
	return &m, nil
}

func (d *DirStore) writeManifestLocked(m *manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding manifest: %w", err)
	}
	if err := writeFileAtomicFS(d.fs, d.dir, filepath.Join(d.dir, manifestName), raw); err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	return nil
}

// WriteFileAtomic writes data to path via an fsync'd temp file in dir
// and an atomic rename, then syncs the directory so the rename itself
// is durable. It is the one atomic-write primitive for plan-set
// documents — the shared store and the serving layer's Options.Dir
// persistence both use it, so the same bytes get the same durability
// wherever they land.
func WriteFileAtomic(dir, path string, data []byte) error {
	return writeFileAtomicFS(faultfs.OS, dir, path, data)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem
// (nil selects the real one) — the injection seam the serving layer's
// Options.Dir persistence uses.
func WriteFileAtomicFS(fsys faultfs.FS, dir, path string, data []byte) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	return writeFileAtomicFS(fsys, dir, path, data)
}

func writeFileAtomicFS(fsys faultfs.FS, dir, path string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		fsys.Remove(tmp.Name())
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return fsys.SyncDir(dir)
}

// contentHash is the hex SHA-256 of a document's bytes.
func contentHash(doc []byte) string {
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// ContentHash is the hex SHA-256 of a document's bytes — the value the
// /planset endpoint carries in DocHashHeader and PeerClient validates.
func ContentHash(doc []byte) string { return contentHash(doc) }

// docDim extracts the parameter-space dimension from a serialized
// plan-set document without deserializing the plans.
func docDim(doc []byte) (int, error) {
	var probe struct {
		Space struct {
			Dim int `json:"dim"`
		} `json:"space"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil {
		return 0, fmt.Errorf("not a plan-set document: %w", err)
	}
	if probe.Space.Dim <= 0 {
		return 0, fmt.Errorf("document has no parameter-space dimension")
	}
	return probe.Space.Dim, nil
}

// docEpsilon probes a serialized plan-set document for its
// approximation factor without a full deserialization (the store
// package owns the format; this mirrors docDim). Exact documents omit
// the stanza and probe as 0.
func docEpsilon(doc []byte) (float64, error) {
	var probe struct {
		Epsilon float64 `json:"epsilon"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil {
		return 0, fmt.Errorf("not a plan-set document: %w", err)
	}
	if probe.Epsilon < 0 {
		return 0, fmt.Errorf("document has negative epsilon %v", probe.Epsilon)
	}
	return probe.Epsilon, nil
}
