package fleet

import (
	"fmt"
	"sync"
	"testing"
)

// checkBalance asserts the accounting invariant: admitted − evicted =
// resident, for both entry counts and bytes.
func checkBalance(t *testing.T, c *Cache) {
	t.Helper()
	st := c.Stats()
	if st.Admissions-st.Evictions != int64(st.ResidentEntries) {
		t.Errorf("entry accounting unbalanced: admitted %d − evicted %d != resident %d",
			st.Admissions, st.Evictions, st.ResidentEntries)
	}
	if st.AdmittedBytes-st.EvictedBytes != st.ResidentBytes {
		t.Errorf("byte accounting unbalanced: admitted %d − evicted %d != resident %d",
			st.AdmittedBytes, st.EvictedBytes, st.ResidentBytes)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	c.Add("a", "A", 40, false)
	c.Add("b", "B", 40, false)
	c.Add("c", "C", 40, false) // over budget: evicts a (LRU)
	if _, ok := c.Get("a", false); ok {
		t.Error("a survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k, false); !ok {
			t.Errorf("%s evicted prematurely", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != 40 {
		t.Errorf("evictions = %d/%d bytes, want 1/40", st.Evictions, st.EvictedBytes)
	}
	// Touching b makes c the LRU victim of the next admission.
	c.Get("b", false)
	c.Add("d", "D", 40, false)
	if _, ok := c.Get("c", false); ok {
		t.Error("c survived eviction despite being LRU")
	}
	if _, ok := c.Get("b", false); !ok {
		t.Error("recently used b was evicted")
	}
	checkBalance(t, c)
}

func TestCachePinningBlocksEviction(t *testing.T) {
	c := NewCache(100)
	if v, ok := c.Get("a", true); ok || v != nil {
		t.Error("Get on empty cache succeeded")
	}
	c.Add("a", "A", 60, true) // pinned
	c.Add("b", "B", 60, false)
	// Budget exceeded, but a is pinned: b (the newest) is exempt from
	// its own admission's pass, so nothing evictable remains.
	if _, ok := c.Get("a", false); !ok {
		t.Error("pinned entry evicted")
	}
	if st := c.Stats(); st.Pinned != 1 {
		t.Errorf("pinned = %d, want 1", st.Pinned)
	}
	c.Unpin("a")
	c.Get("b", false)          // a becomes LRU
	c.Add("c", "C", 10, false) // now a is evictable
	if _, ok := c.Get("a", false); ok {
		t.Error("unpinned LRU entry survived")
	}
	checkBalance(t, c)
}

func TestCacheFirstAddWins(t *testing.T) {
	c := NewCache(0)
	if got := c.Add("k", "first", 10, false); got != "first" {
		t.Errorf("first Add returned %v", got)
	}
	if got := c.Add("k", "second", 99, false); got != "first" {
		t.Errorf("losing Add returned %v, want the resident value", got)
	}
	st := c.Stats()
	if st.Admissions != 1 || st.AdmittedBytes != 10 {
		t.Errorf("losing Add was accounted: %d admissions / %d bytes", st.Admissions, st.AdmittedBytes)
	}
	checkBalance(t, c)
}

func TestCacheReplaceSwapsInPlace(t *testing.T) {
	c := NewCache(0)
	// Absent key: Replace admits like Add.
	if v, swapped := c.Replace("k", "gen0", 10, nil); v != "gen0" || !swapped {
		t.Errorf("Replace on absent key = (%v, %v), want (gen0, true)", v, swapped)
	}
	// Pin the resident value (an in-flight pick), then swap under it.
	c.Get("k", true)
	finer := func(old any) bool { return old == "gen1" } // keep only if already upgraded
	if v, swapped := c.Replace("k", "gen1", 30, finer); v != "gen1" || !swapped {
		t.Errorf("Replace = (%v, %v), want (gen1, true)", v, swapped)
	}
	// The pin carried over to the swapped entry.
	if st := c.Stats(); st.Pinned != 1 {
		t.Errorf("pinned = %d, want 1 (pin must survive the swap)", st.Pinned)
	}
	c.Unpin("k")
	// Guard satisfied: a straggling coarse generation must not downgrade.
	if v, swapped := c.Replace("k", "gen0-late", 10, finer); v != "gen1" || swapped {
		t.Errorf("guarded Replace = (%v, %v), want (gen1, false)", v, swapped)
	}
	st := c.Stats()
	if st.Replaced != 1 {
		t.Errorf("replaced = %d, want 1", st.Replaced)
	}
	if st.Admissions != 1 || st.ResidentBytes != 30 {
		t.Errorf("accounting after swap: %d admissions, %d resident bytes (want 1, 30)",
			st.Admissions, st.ResidentBytes)
	}
	checkBalance(t, c)
}

func TestCacheReplaceRespectsBudget(t *testing.T) {
	c := NewCache(100)
	c.Add("other", "O", 40, false)
	c.Add("k", "coarse", 40, false)
	// The refined generation is bigger; the swap must evict the LRU
	// entry to fit, never the just-swapped one.
	if _, swapped := c.Replace("k", "fine", 90, nil); !swapped {
		t.Fatal("swap refused")
	}
	if _, ok := c.Get("other", false); ok {
		t.Error("LRU entry survived a budget-exceeding swap")
	}
	if v, ok := c.Get("k", false); !ok || v != "fine" {
		t.Errorf("swapped entry = (%v, %v), want (fine, true)", v, ok)
	}
	checkBalance(t, c)
}

func TestCacheReadmission(t *testing.T) {
	c := NewCache(50)
	c.Add("a", "A", 40, false)
	c.Add("b", "B", 40, false) // evicts a
	c.Add("a", "A2", 40, false)
	st := c.Stats()
	if st.Readmissions != 1 {
		t.Errorf("readmissions = %d, want 1", st.Readmissions)
	}
	checkBalance(t, c)
}

func TestCacheOversizedEntryStillServes(t *testing.T) {
	c := NewCache(10)
	c.Add("big", "B", 1000, false)
	if _, ok := c.Get("big", false); !ok {
		t.Error("oversized entry not resident after admission")
	}
	// The next admission evicts it.
	c.Add("small", "s", 5, false)
	if _, ok := c.Get("big", false); ok {
		t.Error("oversized entry survived the next admission")
	}
	checkBalance(t, c)
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprint(i), i, 1<<20, false)
	}
	if c.Len() != 100 {
		t.Errorf("unbounded cache evicted down to %d entries", c.Len())
	}
	checkBalance(t, c)
}

// TestCacheConcurrentAccounting hammers the cache from many goroutines
// (run under -race) and checks the invariant afterwards.
func TestCacheConcurrentAccounting(t *testing.T) {
	c := NewCache(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint((g + i) % 32)
				if _, ok := c.Get(key, true); ok {
					c.Unpin(key)
				} else {
					c.Add(key, key, 256, false)
				}
			}
		}(g)
	}
	wg.Wait()
	checkBalance(t, c)
	if st := c.Stats(); st.Pinned != 0 {
		t.Errorf("pins leaked: %d", st.Pinned)
	}
}
