package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps retry/backoff delays negligible in tests.
func fastOpts(o PeerOptions) PeerOptions {
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func TestPeerRetriesRecoverFromTransient5xx(t *testing.T) {
	doc := testDoc(2, 1)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set(DocHashHeader, contentHash(doc))
		w.Write(doc)
	}))
	defer ts.Close()

	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{Retries: 2}))
	got, ok, err := p.Fetch(context.Background(), "k")
	if err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("Fetch = ok=%v err=%v", ok, err)
	}
	st := p.Stats()
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
	if st.Hits != 1 || st.Errors != 0 {
		t.Errorf("hits=%d errors=%d, want 1/0", st.Hits, st.Errors)
	}
	if st.Peers[0].State != PeerClosed || st.Peers[0].Failures != 0 {
		t.Errorf("peer after recovery: %+v", st.Peers[0])
	}
}

func TestPeerRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{Retries: 2}))
	if _, ok, err := p.Fetch(context.Background(), "k"); ok || err == nil {
		t.Fatalf("Fetch against an all-500 peer = ok=%v err=%v", ok, err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("peer saw %d requests, want 1 + 2 retries", got)
	}
	st := p.Stats()
	if st.Errors != 1 || st.Retries != 2 {
		t.Errorf("errors=%d retries=%d, want 1/2", st.Errors, st.Retries)
	}
}

func TestPeerNoRetryOn404(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{Retries: 3}))
	if _, ok, err := p.Fetch(context.Background(), "k"); ok || err != nil {
		t.Fatalf("miss = ok=%v err=%v", ok, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("a 404 was retried: %d requests", got)
	}
}

func TestPeerBreakerTripsAndRecovers(t *testing.T) {
	doc := testDoc(2, 1)
	var healthy atomic.Bool
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Header().Set(DocHashHeader, contentHash(doc))
		w.Write(doc)
	}))
	defer ts.Close()

	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{
		Retries:          -1, // isolate the breaker from retry effects
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
	}))

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, ok, err := p.Fetch(context.Background(), "k"); ok || err == nil {
			t.Fatalf("fetch %d against a down peer = ok=%v err=%v", i, ok, err)
		}
	}
	st := p.Stats()
	if st.BreakerTrips != 1 || st.Peers[0].State != PeerOpen {
		t.Fatalf("after 3 failures: trips=%d state=%s", st.BreakerTrips, st.Peers[0].State)
	}

	// While open, requests are skipped — the peer sees no traffic.
	before := calls.Load()
	for i := 0; i < 4; i++ {
		p.Fetch(context.Background(), "k")
	}
	if calls.Load() != before {
		t.Errorf("open breaker let %d requests through", calls.Load()-before)
	}
	if st := p.Stats(); st.BreakerSkips < 4 {
		t.Errorf("skips = %d, want >= 4", st.BreakerSkips)
	}

	// After the cooldown, a half-open probe against a recovered peer
	// closes the breaker again.
	healthy.Store(true)
	time.Sleep(40 * time.Millisecond)
	got, ok, err := p.Fetch(context.Background(), "k")
	if err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("probe fetch = ok=%v err=%v", ok, err)
	}
	if st := p.Stats(); st.Peers[0].State != PeerClosed {
		t.Errorf("peer state after successful probe = %s", st.Peers[0].State)
	}
}

func TestPeerBreakerReopensOnFailedProbe(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
	}))
	for i := 0; i < 2; i++ {
		p.Fetch(context.Background(), "k")
	}
	if st := p.Stats(); st.Peers[0].State != PeerOpen {
		t.Fatalf("state after threshold failures = %s", st.Peers[0].State)
	}
	time.Sleep(15 * time.Millisecond)
	p.Fetch(context.Background(), "k") // half-open probe fails
	st := p.Stats()
	if st.Peers[0].State != PeerOpen {
		t.Errorf("state after failed probe = %s, want reopened", st.Peers[0].State)
	}
	if st.BreakerTrips != 2 {
		t.Errorf("trips = %d, want 2 (initial + failed probe)", st.BreakerTrips)
	}
}

func TestPeerHashMismatchIsCorruptMiss(t *testing.T) {
	doc := testDoc(2, 1)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(DocHashHeader, contentHash([]byte("different bytes")))
		w.Write(doc)
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{Retries: 3}))
	if _, ok, err := p.Fetch(context.Background(), "k"); ok || err == nil {
		t.Fatalf("hash-mismatched fetch = ok=%v err=%v", ok, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("a corrupt body was retried: %d requests", got)
	}
	if st := p.Stats(); st.Corrupt != 1 || st.Hits != 0 {
		t.Errorf("corrupt=%d hits=%d, want 1/0", st.Corrupt, st.Hits)
	}
}

func TestPeerNonDocumentBodyIsCorruptMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>sorry</html>"))
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{}))
	if _, ok, err := p.Fetch(context.Background(), "k"); ok || err == nil {
		t.Fatalf("non-document fetch = ok=%v err=%v", ok, err)
	}
	if st := p.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
}

func TestPeerOversizedDocRejected(t *testing.T) {
	big := append([]byte(`{"space":{"dim":2},"pad":"`), bytes.Repeat([]byte("x"), 1024)...)
	big = append(big, []byte(`"}`)...)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(big)
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{MaxDoc: 64}))
	if _, ok, err := p.Fetch(context.Background(), "k"); ok || err == nil {
		t.Fatalf("oversized fetch = ok=%v err=%v", ok, err)
	}
	if st := p.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
}

func TestPeerFetchRespectsContext(t *testing.T) {
	doc := testDoc(2, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(doc)
	}))
	defer ts.Close()
	p := NewPeerClientOptions([]string{ts.URL}, fastOpts(PeerOptions{}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, err := p.Fetch(ctx, "k"); ok || err == nil {
		t.Fatalf("cancelled Fetch = ok=%v err=%v", ok, err)
	}

	// Cancellation also cuts the retry backoff short.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer slow.Close()
	p2 := NewPeerClientOptions([]string{slow.URL}, PeerOptions{
		Retries: 5, BackoffBase: time.Hour, BackoffMax: time.Hour, Seed: 1,
	})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, ok, err := p2.Fetch(ctx2, "k"); ok || err == nil {
		t.Fatalf("deadline Fetch = ok=%v err=%v", ok, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("Fetch slept through an hour-long backoff for %v despite the deadline", d)
	}
}
