package diagram

import (
	"bytes"
	"strings"
	"testing"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

func twoPlanSlice() *MultiSlice {
	space := geometry.Interval(0, 1)
	return &MultiSlice{
		Names: []string{"rising", "falling"},
		Costs: []*pwl.Multi{
			pwl.NewMulti(pwl.Linear(space, geometry.Vector{1}, 0), pwl.Constant(space, 1)),
			pwl.NewMulti(pwl.Linear(space, geometry.Vector{-1}, 1), pwl.Constant(space, 1)),
		},
	}
}

func TestFrontSize1D(t *testing.T) {
	// Metric 2 ties; metric 1 crosses at 0.5: each side has exactly one
	// Pareto plan, the crossing cell may see both.
	d, err := FrontSize(twoPlanSlice(), geometry.Vector{0}, geometry.Vector{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 8 {
		t.Fatalf("cells = %d", len(d.Cells))
	}
	for _, c := range d.Cells {
		if c.Value != 1 {
			t.Errorf("front size at %v = %d, want 1 (one plan dominates per side)", c.X, c.Value)
		}
	}
}

func TestFrontSizeWithTradeoff(t *testing.T) {
	space := geometry.Interval(0, 1)
	plans := &MultiSlice{
		Names: []string{"fast-expensive", "slow-cheap"},
		Costs: []*pwl.Multi{
			pwl.NewMulti(pwl.Constant(space, 1), pwl.Constant(space, 10)),
			pwl.NewMulti(pwl.Constant(space, 5), pwl.Constant(space, 1)),
		},
	}
	d, err := FrontSize(plans, geometry.Vector{0}, geometry.Vector{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if c.Value != 2 {
			t.Errorf("front size at %v = %d, want 2 (true tradeoff)", c.X, c.Value)
		}
	}
}

func TestWinnerDiagram1D(t *testing.T) {
	d, err := Winner(twoPlanSlice(), geometry.Vector{0}, geometry.Vector{1}, 10, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Low x: "rising" is cheaper on metric 0; high x: "falling".
	if d.Cells[0].Value != 0 {
		t.Errorf("low-x winner = %d, want 0", d.Cells[0].Value)
	}
	if d.Cells[9].Value != 1 {
		t.Errorf("high-x winner = %d, want 1", d.Cells[9].Value)
	}
	if d.Distinct() != 2 {
		t.Errorf("distinct winners = %d, want 2", d.Distinct())
	}
	if d.Legend[0] != "rising" || d.Legend[1] != "falling" {
		t.Errorf("legend = %v", d.Legend)
	}
}

func TestWinnerDiagram2D(t *testing.T) {
	space := geometry.Box(geometry.Vector{0, 0}, geometry.Vector{1, 1})
	plans := &MultiSlice{
		Names: []string{"p0", "p1"},
		Costs: []*pwl.Multi{
			pwl.NewMulti(pwl.Linear(space, geometry.Vector{1, 0}, 0)),
			pwl.NewMulti(pwl.Linear(space, geometry.Vector{0, 1}, 0)),
		},
	}
	d, err := Winner(plans, geometry.Vector{0, 0}, geometry.Vector{1, 1}, 6, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 36 {
		t.Fatalf("cells = %d", len(d.Cells))
	}
	// Below the diagonal (x1 < x2) plan p0 wins; above it p1.
	for _, c := range d.Cells {
		want := 0
		if c.X[1] < c.X[0] {
			want = 1
		}
		if c.Value != want {
			t.Errorf("winner at %v = %d, want %d", c.X, c.Value, want)
		}
	}
}

func TestRenderASCIIAndCSV(t *testing.T) {
	d, err := Winner(twoPlanSlice(), geometry.Vector{0}, geometry.Vector{1}, 6, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	d.RenderASCII(&buf)
	out := buf.String()
	if !strings.Contains(out, "000111") {
		t.Errorf("ASCII output missing winner row:\n%s", out)
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "rising") {
		t.Errorf("ASCII output missing legend:\n%s", out)
	}
	buf.Reset()
	d.WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 || lines[0] != "x1,value" {
		t.Errorf("CSV output wrong:\n%s", buf.String())
	}

	// 2D rendering.
	space := geometry.Box(geometry.Vector{0, 0}, geometry.Vector{1, 1})
	plans := &MultiSlice{
		Names: []string{"a"},
		Costs: []*pwl.Multi{pwl.NewMulti(pwl.Constant(space, 1))},
	}
	d2, err := Winner(plans, geometry.Vector{0, 0}, geometry.Vector{1, 1}, 3, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	d2.RenderASCII(&buf)
	if !strings.Contains(buf.String(), "000") {
		t.Errorf("2D ASCII wrong:\n%s", buf.String())
	}
	buf.Reset()
	d2.WriteCSV(&buf)
	if !strings.HasPrefix(buf.String(), "x1,x2,value") {
		t.Errorf("2D CSV wrong:\n%s", buf.String())
	}
}

func TestDiagramErrors(t *testing.T) {
	plans := twoPlanSlice()
	if _, err := FrontSize(plans, geometry.Vector{0, 0, 0}, geometry.Vector{1, 1, 1}, 4); err == nil {
		t.Error("3D diagram accepted")
	}
	if _, err := FrontSize(plans, geometry.Vector{0}, geometry.Vector{1}, 0); err == nil {
		t.Error("zero resolution accepted")
	}
}
