// Package diagram renders plan diagrams: discretizations of the
// parameter space recording which plans matter where. Plan diagrams are
// the standard visualization of parametric optimizer output (Reddy &
// Haritsa; Dey et al. — cited as [25, 12] by the paper). For MPQ the
// natural diagram shows, per parameter-space cell, either the size of
// the Pareto front (how much choice a user has) or the winning plan
// under a concrete preference policy.
package diagram

import (
	"fmt"
	"io"
	"strings"

	"mpq/internal/geometry"
	"mpq/internal/pwl"
)

// Cell is one grid cell of a diagram.
type Cell struct {
	// X is the cell's center in parameter space.
	X geometry.Vector
	// Value is the diagram value (front size, or winner index).
	Value int
}

// Diagram is a discretized map over a one- or two-dimensional parameter
// space.
type Diagram struct {
	// Lo and Hi bound the diagrammed box.
	Lo, Hi geometry.Vector
	// Resolution is the number of cells per dimension.
	Resolution int
	// Cells in row-major order (x2 outer, x1 inner for 2D).
	Cells []Cell
	// Legend maps values to descriptions (plan names for winner
	// diagrams).
	Legend map[int]string
}

// PlanCosts is the minimal interface diagrams need: evaluable
// multi-objective costs.
type PlanCosts interface {
	NumPlans() int
	PlanName(i int) string
	CostAt(i int, x geometry.Vector) geometry.Vector
}

// MultiSlice adapts a slice of (name, cost) pairs to PlanCosts.
type MultiSlice struct {
	Names []string
	Costs []*pwl.Multi
}

// NumPlans implements PlanCosts.
func (m *MultiSlice) NumPlans() int { return len(m.Costs) }

// PlanName implements PlanCosts.
func (m *MultiSlice) PlanName(i int) string { return m.Names[i] }

// CostAt implements PlanCosts.
func (m *MultiSlice) CostAt(i int, x geometry.Vector) geometry.Vector {
	v, _ := m.Costs[i].Eval(x)
	return v
}

// FrontSize builds the diagram of Pareto-front cardinalities: how many
// distinct cost tradeoffs are available per parameter cell.
func FrontSize(plans PlanCosts, lo, hi geometry.Vector, resolution int) (*Diagram, error) {
	d, err := newDiagram(lo, hi, resolution)
	if err != nil {
		return nil, err
	}
	for i := range d.Cells {
		x := d.Cells[i].X
		d.Cells[i].Value = len(paretoIndices(plans, x))
	}
	return d, nil
}

// Winner builds the diagram of winning plans under a weighted-sum
// preference. The legend maps values to plan names; value -1 marks
// cells without plans.
func Winner(plans PlanCosts, lo, hi geometry.Vector, resolution int, weights []float64) (*Diagram, error) {
	d, err := newDiagram(lo, hi, resolution)
	if err != nil {
		return nil, err
	}
	d.Legend = make(map[int]string)
	for i := range d.Cells {
		x := d.Cells[i].X
		best, bestVal := -1, 0.0
		for p := 0; p < plans.NumPlans(); p++ {
			c := plans.CostAt(p, x)
			v := 0.0
			for m, w := range weights {
				v += w * c[m]
			}
			if best < 0 || v < bestVal {
				best, bestVal = p, v
			}
		}
		d.Cells[i].Value = best
		if best >= 0 {
			d.Legend[best] = plans.PlanName(best)
		}
	}
	return d, nil
}

func newDiagram(lo, hi geometry.Vector, resolution int) (*Diagram, error) {
	dim := len(lo)
	if dim != 1 && dim != 2 {
		return nil, fmt.Errorf("diagram: only 1- and 2-dimensional parameter spaces supported, got %d", dim)
	}
	if resolution < 1 {
		return nil, fmt.Errorf("diagram: resolution %d < 1", resolution)
	}
	d := &Diagram{Lo: lo.Clone(), Hi: hi.Clone(), Resolution: resolution}
	if dim == 1 {
		for i := 0; i < resolution; i++ {
			x := geometry.Vector{cellCenter(lo[0], hi[0], resolution, i)}
			d.Cells = append(d.Cells, Cell{X: x})
		}
		return d, nil
	}
	for j := 0; j < resolution; j++ {
		for i := 0; i < resolution; i++ {
			x := geometry.Vector{
				cellCenter(lo[0], hi[0], resolution, i),
				cellCenter(lo[1], hi[1], resolution, j),
			}
			d.Cells = append(d.Cells, Cell{X: x})
		}
	}
	return d, nil
}

func cellCenter(lo, hi float64, res, i int) float64 {
	w := (hi - lo) / float64(res)
	return lo + (float64(i)+0.5)*w
}

// paretoIndices returns the indices of plans whose cost vectors are
// Pareto-optimal at x (duplicates collapse to the first).
func paretoIndices(plans PlanCosts, x geometry.Vector) []int {
	n := plans.NumPlans()
	costs := make([]geometry.Vector, n)
	for i := 0; i < n; i++ {
		costs[i] = plans.CostAt(i, x)
	}
	var out []int
	for i := 0; i < n; i++ {
		dominated := false
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if weaklyDominates(costs[j], costs[i]) {
				if !costs[j].Equal(costs[i], 1e-12) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func weaklyDominates(a, b geometry.Vector) bool {
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
	}
	return true
}

// glyphs used by RenderASCII; values index into this string, larger
// values wrap around.
const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// RenderASCII writes the diagram as text: one row for 1D, a grid for 2D
// (x1 rightward, x2 upward), followed by the legend if present.
func (d *Diagram) RenderASCII(w io.Writer) {
	glyph := func(v int) byte {
		if v < 0 {
			return '.'
		}
		return glyphs[v%len(glyphs)]
	}
	if len(d.Lo) == 1 {
		var sb strings.Builder
		for _, c := range d.Cells {
			sb.WriteByte(glyph(c.Value))
		}
		fmt.Fprintf(w, "x1: %.3g .. %.3g\n%s\n", d.Lo[0], d.Hi[0], sb.String())
	} else {
		fmt.Fprintf(w, "x1: %.3g..%.3g (right), x2: %.3g..%.3g (up)\n", d.Lo[0], d.Hi[0], d.Lo[1], d.Hi[1])
		for j := d.Resolution - 1; j >= 0; j-- {
			var sb strings.Builder
			for i := 0; i < d.Resolution; i++ {
				sb.WriteByte(glyph(d.Cells[j*d.Resolution+i].Value))
			}
			fmt.Fprintln(w, sb.String())
		}
	}
	if len(d.Legend) > 0 {
		fmt.Fprintln(w, "legend:")
		for v := 0; v < len(glyphs); v++ {
			if name, ok := d.Legend[v]; ok {
				fmt.Fprintf(w, "  %c = %s\n", glyphs[v%len(glyphs)], name)
			}
		}
	}
}

// WriteCSV emits cell centers and values.
func (d *Diagram) WriteCSV(w io.Writer) {
	if len(d.Lo) == 1 {
		fmt.Fprintln(w, "x1,value")
		for _, c := range d.Cells {
			fmt.Fprintf(w, "%g,%d\n", c.X[0], c.Value)
		}
		return
	}
	fmt.Fprintln(w, "x1,x2,value")
	for _, c := range d.Cells {
		fmt.Fprintf(w, "%g,%g,%d\n", c.X[0], c.X[1], c.Value)
	}
}

// Distinct returns the number of distinct values in the diagram — for
// winner diagrams, the number of plans that win somewhere (the "plan
// cardinality" of plan-diagram research).
func (d *Diagram) Distinct() int {
	seen := map[int]bool{}
	for _, c := range d.Cells {
		seen[c.Value] = true
	}
	return len(seen)
}
