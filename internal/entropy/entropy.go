// Package entropy is the repo's single sanctioned source of
// nondeterministic seeds. Everything else in the module is either
// bit-for-bit deterministic or explicitly seeded; the only place a
// wall-clock seed may enter is here, so the determinism analyzer
// (cmd/mpqlint) has exactly one annotated entry point to police.
// Callers that want reproducible runs pass a nonzero seed and never
// reach the clock.
package entropy

import "time"

// SeedOrNow returns seed unchanged when nonzero, and a wall-clock
// seed otherwise. Components with a Seed option (faultfs injectors,
// fleet peer-retry jitter) use it as their only fallback: a zero seed
// means the caller opted out of reproducibility.
func SeedOrNow(seed int64) int64 {
	if seed != 0 {
		return seed
	}
	return time.Now().UnixNano() //mpq:wallclock sanctioned seed fallback: zero seed means the caller opted out of reproducibility
}
