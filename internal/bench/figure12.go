// Package bench implements the experiment harness reproducing the
// paper's evaluation (Section 7, Figure 12): optimization time, number
// of generated plans, and number of solved linear programs for randomly
// generated chain and star queries with one and two parameters, as
// medians over repeated runs with different random queries.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/workload"
)

// Point is one data point of the Figure 12 series: medians over
// Repetitions random queries of one size.
type Point struct {
	Tables int
	// MedianTime is the median optimization time.
	MedianTime time.Duration
	// MedianPlans is the median number of created plans (including
	// partial and pruned plans).
	MedianPlans int
	// MedianLPs is the median number of solved linear programs.
	MedianLPs int64
	// MedianFinal is the median Pareto-plan-set size for the full query
	// (not part of Figure 12 but reported for Theorem 6 context).
	MedianFinal int
	// Repetitions is the number of random queries aggregated.
	Repetitions int
	// Workers is the optimizer worker count the runs used.
	Workers int
	// MedianUtilization is the median of the runs' pipeline
	// utilizations (Stats.PipelineUtilization) — how busy the
	// dependency scheduler kept the worker pool. Informational: a
	// scheduling metric, never gated.
	MedianUtilization float64
}

// Series is one curve of Figure 12: a shape and parameter count over a
// range of table counts.
type Series struct {
	Shape  workload.Shape
	Params int
	Points []Point
}

// Config controls the experiment scale.
type Config struct {
	// Shape of the join graph (chain and star in the paper).
	Shape workload.Shape
	// Params is the number of parameters (1 and 2 in the paper).
	Params int
	// MinTables and MaxTables bound the query sizes (2..12 for one
	// parameter and 2..10 for two parameters in the paper).
	MinTables, MaxTables int
	// Repetitions is the number of random queries per point (25 in the
	// paper).
	Repetitions int
	// Seed offsets the workload generator seeds, making runs
	// reproducible.
	Seed int64
	// Optimizer options; zero value means core.DefaultOptions.
	Options *core.Options
	// Workers overrides the optimizer worker count for every run
	// (0 keeps the Options value, whose own zero selects GOMAXPROCS).
	Workers int
	// Cloud cost model configuration; zero value means
	// cloud.DefaultConfig.
	Cloud *cloud.Config
	// Progress, when non-nil, receives a line per completed point.
	Progress io.Writer
}

// DefaultMaxTables returns the full-scale curve length for a shape and
// parameter count: the paper's ranges (2..12 tables for one parameter,
// 2..10 for two) for chain and star, and reduced ranges for the denser
// extension shapes and for three parameters, where work grows with both
// edge density and piece counts.
func DefaultMaxTables(shape workload.Shape, params int) int {
	switch shape {
	case workload.Cycle:
		switch {
		case params <= 1:
			return 10
		case params == 2:
			return 8
		default:
			return 4
		}
	case workload.Clique:
		switch {
		case params <= 1:
			return 8
		case params == 2:
			return 6
		default:
			return 4
		}
	default: // chain, star
		switch {
		case params <= 1:
			return 12
		case params == 2:
			return 10
		default:
			return 5
		}
	}
}

// QuickMaxTables returns the reduced curve length of quick runs (CI
// smoke and the bench-regression gate). Three-parameter curves stop at
// three tables: piece counts grow as cells^d · d!, so even one more
// table multiplies quick-run time by two orders of magnitude.
func QuickMaxTables(shape workload.Shape, params int) int {
	if params >= 3 {
		return 3
	}
	switch shape {
	case workload.Cycle:
		if params <= 1 {
			return 8
		}
		return 6
	case workload.Clique:
		if params <= 1 {
			return 6
		}
		return 5
	case workload.Star:
		if params <= 1 {
			return 9
		}
		return 6
	default: // chain
		if params <= 1 {
			return 10
		}
		return 7
	}
}

// RunSeries executes the experiment for one curve.
func RunSeries(cfg Config) (*Series, error) {
	if cfg.Repetitions < 1 {
		cfg.Repetitions = 1
	}
	if cfg.MinTables < 2 {
		cfg.MinTables = 2
	}
	if cfg.Shape == workload.Cycle && cfg.MinTables < 3 {
		// A cycle needs at least three tables.
		cfg.MinTables = 3
	}
	s := &Series{Shape: cfg.Shape, Params: cfg.Params}
	for n := cfg.MinTables; n <= cfg.MaxTables; n++ {
		p, err := RunPoint(cfg, n)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, *p)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s %dp n=%-2d  time=%-12v plans=%-7d LPs=%-8d final=%d\n",
				cfg.Shape, cfg.Params, n, p.MedianTime, p.MedianPlans, p.MedianLPs, p.MedianFinal)
		}
	}
	return s, nil
}

// RunPoint executes all repetitions for one query size and aggregates
// medians.
func RunPoint(cfg Config, tables int) (*Point, error) {
	times := make([]time.Duration, 0, cfg.Repetitions)
	plans := make([]int, 0, cfg.Repetitions)
	lps := make([]int64, 0, cfg.Repetitions)
	finals := make([]int, 0, cfg.Repetitions)
	utils := make([]float64, 0, cfg.Repetitions)
	params := cfg.Params
	if params > tables {
		params = tables
	}
	workers := 0
	for rep := 0; rep < cfg.Repetitions; rep++ {
		seed := cfg.Seed + int64(rep)*1000 + int64(tables)
		stats, err := RunOnce(cfg, tables, params, seed)
		if err != nil {
			return nil, err
		}
		times = append(times, stats.Duration)
		plans = append(plans, stats.CreatedPlans)
		lps = append(lps, stats.Geometry.LPs)
		finals = append(finals, stats.FinalPlans)
		utils = append(utils, stats.PipelineUtilization())
		workers = stats.Workers
	}
	return &Point{
		Tables:            tables,
		MedianTime:        medianDuration(times),
		MedianPlans:       medianInt(plans),
		MedianLPs:         medianInt64(lps),
		MedianFinal:       medianInt(finals),
		Repetitions:       cfg.Repetitions,
		Workers:           workers,
		MedianUtilization: medianFloat(utils),
	}, nil
}

// RunOnce optimizes a single random query and returns the optimizer
// statistics.
func RunOnce(cfg Config, tables, params int, seed int64) (*core.Stats, error) {
	schema, err := workload.Generate(workload.Config{
		Tables: tables,
		Params: params,
		Shape:  cfg.Shape,
		Seed:   seed,
	})
	if err != nil {
		return nil, err
	}
	ctx := geometry.NewContext()
	cloudCfg := cloud.DefaultConfig()
	if cfg.Cloud != nil {
		cloudCfg = *cfg.Cloud
	}
	model, err := cloud.NewModel(schema, cloudCfg, ctx)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	opts.Context = ctx
	if cfg.Workers != 0 {
		opts.Workers = cfg.Workers
	}
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		return nil, err
	}
	return &res.Stats, nil
}

// FormatTable renders series as the text analogue of Figure 12.
func FormatTable(w io.Writer, series []*Series) {
	for _, s := range series {
		fmt.Fprintf(w, "\n=== %s queries, %d parameter(s) — medians of %d random queries ===\n",
			s.Shape, s.Params, repsOf(s))
		fmt.Fprintf(w, "%-8s %-14s %-16s %-16s %s\n", "tables", "time(ms)", "created plans", "solved LPs", "final plans")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-8d %-14.1f %-16d %-16d %d\n",
				p.Tables, float64(p.MedianTime.Microseconds())/1000, p.MedianPlans, p.MedianLPs, p.MedianFinal)
		}
	}
}

// FormatCSV renders series as CSV rows for plotting.
func FormatCSV(w io.Writer, series []*Series) {
	fmt.Fprintln(w, "shape,params,tables,time_ms,created_plans,solved_lps,final_plans,repetitions")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%d,%d,%.3f,%d,%d,%d,%d\n",
				s.Shape, s.Params, p.Tables,
				float64(p.MedianTime.Microseconds())/1000,
				p.MedianPlans, p.MedianLPs, p.MedianFinal, p.Repetitions)
		}
	}
}

// JSONCase is one machine-readable result row of FormatJSON.
type JSONCase struct {
	Case         string  `json:"case"`
	Shape        string  `json:"shape"`
	Params       int     `json:"params"`
	Tables       int     `json:"tables"`
	NsPerOp      int64   `json:"ns_per_op"`
	TimeMs       float64 `json:"time_ms"`
	CreatedPlans int     `json:"created_plans"`
	SolvedLPs    int64   `json:"solved_lps"`
	FinalPlans   int     `json:"final_plans"`
	Workers      int     `json:"workers"`
	Repetitions  int     `json:"repetitions"`
	// PipelineUtilization is the median worker-pool utilization of the
	// optimizer's dependency scheduler (informational, never gated;
	// exactly 1 for sequential runs, omitted when unknown).
	PipelineUtilization float64 `json:"pipeline_utilization,omitempty"`
	// NumCPU records runtime.NumCPU() of the measuring machine for the
	// parallel and fleet cases (informational, never gated): it makes
	// the "utilization 1.0 on a 1-CPU box is vacuous" caveat
	// machine-checkable instead of a footnote.
	NumCPU int `json:"num_cpu,omitempty"`
	// SharedHitRate is the fraction of a fleet case's Prepares served
	// from the shared plan-set store (fleet cases only; gated — drift
	// beyond the plan tolerance fails).
	SharedHitRate float64 `json:"shared_hit_rate,omitempty"`
	// Epsilon is the approximation factor of an epsilon case; zero
	// (omitted) marks an exact row.
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxRegret is the certified worst per-metric cost ratio of the ε
	// tier's answers against the exact frontier at sampled points
	// (epsilon cases only). Gated for ε > 0 rows: a current value
	// above (1+ε) fails — the approximation contract replaces plan
	// equality there.
	MaxRegret float64 `json:"max_regret,omitempty"`
	// PlanReduction and LPReduction are the fractions of the exact
	// reference's final plans and solved LPs the ε tier avoided
	// (informational, never gated).
	PlanReduction float64 `json:"plan_reduction,omitempty"`
	LPReduction   float64 `json:"lp_reduction,omitempty"`
}

// JSONReport is the envelope FormatJSON emits, so snapshots carry their
// provenance alongside the rows.
type JSONReport struct {
	Experiment string     `json:"experiment"`
	Cases      []JSONCase `json:"cases"`
	// ParallelCases are informational wall-clock reference points run at
	// a parallel worker count (pipelining-sensitive shapes at Workers =
	// GOMAXPROCS). The regression gate compares Cases and PickCases but
	// not ParallelCases: parallel wall-clock depends on the machine's
	// core count, while the plan and LP counts of these rows match the
	// sequential cases by the scheduler's determinism contract.
	ParallelCases []JSONCase `json:"parallel_cases,omitempty"`
	// PickCases are the pick-throughput rows (mpqbench -picks): per
	// spec, a "/linear" and an "/index" row sharing the prepare's
	// deterministic plan and LP counts (gated: drift fails) with the
	// measured per-pick latency as the time field (drift warns).
	PickCases []JSONCase `json:"pick_cases,omitempty"`
	// FleetCases are the fleet-serving rows (mpqbench -fleet): per
	// spec, one row with the single compute's deterministic plan and
	// LP counts and the exact shared-store hit rate (gated: drift
	// fails) plus the fleet-concurrent pick latency as the time field
	// (drift warns).
	FleetCases []JSONCase `json:"fleet_cases,omitempty"`
	// EpsilonCases are the ε-approximation rows (mpqbench -epsilon):
	// per (spec, ε) one row. ε = 0 rows gate like Cases (plan and LP
	// drift fails); ε > 0 rows gate on the certified MaxRegret staying
	// within the (1+ε) contract instead.
	EpsilonCases []JSONCase `json:"epsilon_cases,omitempty"`
	// AnytimeCases are the anytime-refinement rows (mpqbench -anytime):
	// per (spec, ladder step) one row, in refinement order. They gate
	// like EpsilonCases — the final ε = 0 generation on exact counts,
	// the coarse generations on their certified per-step regret.
	AnytimeCases []JSONCase `json:"anytime_cases,omitempty"`
	// NumCPU records runtime.NumCPU() of the measuring machine
	// (informational, never gated): parallel wall-clock numbers and
	// utilization figures are vacuous on a single-CPU runner, and CI
	// surfaces that from this field instead of a footnote.
	NumCPU int `json:"num_cpu,omitempty"`
}

// BuildJSONReport converts series into the machine-readable report
// form used by FormatJSON and the CI regression gate.
func BuildJSONReport(series []*Series) *JSONReport {
	rep := &JSONReport{Experiment: "figure12"}
	for _, s := range series {
		for i := range s.Points {
			rep.Cases = append(rep.Cases, PointCase(s.Shape, s.Params, &s.Points[i], ""))
		}
	}
	return rep
}

// FormatJSON renders series as an indented JSON report for tooling
// (perf tracking, CI comparisons).
func FormatJSON(w io.Writer, series []*Series) error {
	return WriteJSONReport(w, BuildJSONReport(series))
}

// WriteJSONReport writes a report (e.g. one extended with parallel
// reference cases) as indented JSON.
func WriteJSONReport(w io.Writer, rep *JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PointCase converts one measured point into a JSON case row with the
// given name prefix.
func PointCase(shape workload.Shape, params int, p *Point, prefix string) JSONCase {
	return JSONCase{
		Case:                fmt.Sprintf("%s%s-%dp/tables=%d", prefix, shape, params, p.Tables),
		Shape:               shape.String(),
		Params:              params,
		Tables:              p.Tables,
		NsPerOp:             p.MedianTime.Nanoseconds(),
		TimeMs:              float64(p.MedianTime.Microseconds()) / 1000,
		CreatedPlans:        p.MedianPlans,
		SolvedLPs:           p.MedianLPs,
		FinalPlans:          p.MedianFinal,
		Workers:             p.Workers,
		Repetitions:         p.Repetitions,
		PipelineUtilization: p.MedianUtilization,
	}
}

func repsOf(s *Series) int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0].Repetitions
}

func medianDuration(v []time.Duration) time.Duration {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

func medianInt(v []int) int {
	sort.Ints(v)
	return v[len(v)/2]
}

func medianInt64(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

func medianFloat(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}
