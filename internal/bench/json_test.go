package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpq/internal/workload"
)

// TestFormatJSON runs a tiny series and checks the machine-readable
// report round-trips with the expected fields populated.
func TestFormatJSON(t *testing.T) {
	s, err := RunSeries(Config{
		Shape:       workload.Chain,
		Params:      1,
		MinTables:   2,
		MaxTables:   3,
		Repetitions: 1,
		Seed:        1,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatJSON(&buf, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Experiment != "figure12" {
		t.Errorf("experiment = %q, want figure12", rep.Experiment)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("%d cases, want 2", len(rep.Cases))
	}
	c := rep.Cases[0]
	if c.Case != "chain-1p/tables=2" || c.Shape != "chain" || c.Workers != 1 {
		t.Errorf("unexpected first case: %+v", c)
	}
	if c.NsPerOp <= 0 || c.SolvedLPs <= 0 || c.CreatedPlans <= 0 || c.FinalPlans <= 0 {
		t.Errorf("unpopulated metrics in %+v", c)
	}
}
