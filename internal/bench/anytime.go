package bench

import (
	"fmt"
	"io"
	"time"

	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/workload"
)

// AnytimeConfig controls the anytime-refinement experiment (mpqbench
// -anytime): for each spec, walk the refinement ladder a
// deadline-budgeted server walks — the coarsest ε generation first,
// then every finer step down to the exact ε = 0 generation — timing
// what each step costs to prepare and certifying the regret of the
// generation it would swap in. The per-step rows are the anytime
// latency profile: what waiting one more generation buys, and what
// serving the current one costs in certified regret.
type AnytimeConfig struct {
	Specs []PickSpec
	// Ladder is the descending sequence of approximation factors a
	// server's -refine-ladder would run. A final exact step (ε = 0) is
	// appended when absent, mirroring refine.Ladder.For(0).
	Ladder []float64
	// Points is the number of random certification points per plan set;
	// zero selects 256.
	Points int
	// Seed offsets the workload generator and the point sampler (the
	// same offsets as the picks and epsilon experiments, so all three
	// observe the same queries).
	Seed int64
	// Progress, when non-nil, receives a line per completed step.
	Progress io.Writer
}

// AnytimeMeasurement reports one (spec, ladder step) generation.
type AnytimeMeasurement struct {
	Spec PickSpec
	// Step is the generation index on the effective ladder; Final marks
	// the exact ε = 0 generation that ends every chain.
	Step    int
	Epsilon float64
	Final   bool
	// Prep is this generation's optimization statistics; Candidates is
	// the served plan-set size after the store round trip.
	Prep       core.Stats
	Candidates int
	// MaxRegret certifies this generation against the final exact one:
	// the worst per-metric cost ratio over all sampled points and all
	// exact-frontier choices. The ε-dominance contract bounds it by
	// (1+ε); the final step certifies as exactly 1.
	MaxRegret float64
	// PrepMs is this step's own preparation time; CumulativeMs is the
	// total from the cold start through this step.
	PrepMs       float64
	CumulativeMs float64
	// PlanReduction and LPReduction are the fractions of the exact
	// generation's final plans and solved LPs this step avoided.
	PlanReduction float64
	LPReduction   float64
	// Points certified.
	Points int
}

// RunAnytime executes the anytime-refinement experiment.
func RunAnytime(cfg AnytimeConfig) ([]AnytimeMeasurement, error) {
	if cfg.Points <= 0 {
		cfg.Points = 256
	}
	ladder, err := effectiveLadder(cfg.Ladder)
	if err != nil {
		return nil, fmt.Errorf("bench: anytime: %w", err)
	}
	var out []AnytimeMeasurement
	for _, spec := range cfg.Specs {
		ms, err := runAnytimeSpec(cfg, spec, ladder)
		if err != nil {
			return nil, fmt.Errorf("bench: anytime %s: %w", spec, err)
		}
		out = append(out, ms...)
		if cfg.Progress != nil {
			for _, m := range ms {
				fmt.Fprintf(cfg.Progress,
					"anytime %s step=%d eps=%-5g cands=%-4d regret=%.6f prep=%.1fms cum=%.1fms\n",
					spec, m.Step, m.Epsilon, m.Candidates, m.MaxRegret, m.PrepMs, m.CumulativeMs)
			}
		}
	}
	return out, nil
}

// effectiveLadder validates a ladder the way refine.ParseLadder does —
// strictly descending factors in [0, 1) — and appends the final exact
// step when absent, so the experiment always ends on the ε = 0
// generation the refiner converges to.
func effectiveLadder(ladder []float64) ([]float64, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("empty ladder")
	}
	for i, eps := range ladder {
		if eps < 0 || eps >= 1 {
			return nil, fmt.Errorf("step %g outside [0, 1)", eps)
		}
		if i > 0 && eps >= ladder[i-1] {
			return nil, fmt.Errorf("ladder not strictly descending at %g", eps)
		}
	}
	out := append([]float64(nil), ladder...)
	if out[len(out)-1] != 0 {
		out = append(out, 0)
	}
	return out, nil
}

func runAnytimeSpec(cfg AnytimeConfig, spec PickSpec, ladder []float64) ([]AnytimeMeasurement, error) {
	schema, err := workload.Generate(workload.Config{
		Tables: spec.Tables,
		Params: spec.Params,
		Shape:  spec.Shape,
		Seed:   cfg.Seed + int64(spec.Tables),
	})
	if err != nil {
		return nil, err
	}
	// Prepare every generation in ladder order first — the timing a
	// refiner would observe — then certify each against the last, which
	// is the exact reference by construction.
	tiers := make([]epsilonTier, len(ladder))
	prepMs := make([]float64, len(ladder))
	var space *geometry.Polytope
	for i, eps := range ladder {
		start := time.Now() //mpq:wallclock benchmark timing is the measurement itself
		tier, sp, err := prepareEpsilonTier(schema, eps)
		if err != nil {
			return nil, fmt.Errorf("step %d (eps=%g): %w", i, eps, err)
		}
		prepMs[i] = float64(time.Since(start).Microseconds()) / 1000 //mpq:wallclock benchmark timing is the measurement itself
		tiers[i] = tier
		space = sp
	}
	exact := tiers[len(tiers)-1]
	ctx := geometry.NewContext()
	points, err := pickPoints(ctx, space, cfg.Points, cfg.Seed+int64(spec.Tables)*7919)
	if err != nil {
		return nil, err
	}
	out := make([]AnytimeMeasurement, 0, len(ladder))
	cum := 0.0
	for i, eps := range ladder {
		regret, err := certifyRegret(exact.cands, tiers[i].cands, points)
		if err != nil {
			return nil, fmt.Errorf("step %d (eps=%g): %w", i, eps, err)
		}
		cum += prepMs[i]
		m := AnytimeMeasurement{
			Spec:         spec,
			Step:         i,
			Epsilon:      eps,
			Final:        eps == 0,
			Prep:         tiers[i].stats,
			Candidates:   len(tiers[i].cands),
			MaxRegret:    regret,
			PrepMs:       prepMs[i],
			CumulativeMs: cum,
			Points:       len(points),
		}
		if n := len(exact.cands); n > 0 {
			m.PlanReduction = 1 - float64(len(tiers[i].cands))/float64(n)
		}
		if lps := exact.stats.Geometry.LPs; lps > 0 {
			m.LPReduction = 1 - float64(tiers[i].stats.Geometry.LPs)/float64(lps)
		}
		out = append(out, m)
	}
	return out, nil
}

// AnytimeMeasurementCases converts the measurements into JSON cases:
// one "anytime/<spec>/step=<i>/eps=<ε>" row per generation. The final
// exact rows (ε = 0) gate like every other case — deterministic plan
// and LP counts must not drift — while the coarse ε > 0 rows gate on
// their certified MaxRegret staying within the (1+ε) contract, exactly
// as the epsilon rows do: the per-step regret contract is the
// invariant the anytime path promises, not a particular plan count.
func AnytimeMeasurementCases(ms []AnytimeMeasurement) []JSONCase {
	var cases []JSONCase
	for _, m := range ms {
		cases = append(cases, JSONCase{
			Case:          fmt.Sprintf("anytime/%s/step=%d/eps=%g", m.Spec, m.Step, m.Epsilon),
			Shape:         m.Spec.Shape.String(),
			Params:        m.Spec.Params,
			Tables:        m.Spec.Tables,
			NsPerOp:       int64(m.PrepMs * 1e6),
			TimeMs:        m.PrepMs,
			CreatedPlans:  m.Prep.CreatedPlans,
			SolvedLPs:     m.Prep.Geometry.LPs,
			FinalPlans:    m.Prep.FinalPlans,
			Workers:       1,
			Repetitions:   m.Points,
			Epsilon:       m.Epsilon,
			MaxRegret:     m.MaxRegret,
			PlanReduction: m.PlanReduction,
			LPReduction:   m.LPReduction,
		})
	}
	return cases
}
