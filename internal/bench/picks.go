package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand" //mpq:rand pick points are drawn from a per-spec seeded generator; byte-reproducible per seed
	"runtime"
	"time"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/index"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// PickSpec names one plan set of the pick-throughput experiment:
// a generated workload to prepare once and then pick against.
type PickSpec struct {
	Shape  workload.Shape
	Params int
	Tables int
}

func (s PickSpec) String() string {
	return fmt.Sprintf("%s-%dp/tables=%d", s.Shape, s.Params, s.Tables)
}

// PicksConfig controls the pick-throughput experiment (mpqbench
// -picks): prepare each spec's plan set once (sequentially, so the
// prepare counters stay gate-comparable), build the point-location
// index, verify that all four selection policies return byte-identical
// results through the index and through the linear scan at random
// points, and measure both paths' pick latency.
type PicksConfig struct {
	Specs []PickSpec
	// Points is the number of random pick points per plan set; every
	// point is evaluated under all four policies on both paths. Zero
	// selects 256.
	Points int
	// Seed offsets the workload generator and the point sampler.
	Seed int64
	// Index tunes the index build; zero fields take the defaults.
	Index index.Options
	// Progress, when non-nil, receives a line per completed spec.
	Progress io.Writer
}

// PickMeasurement reports one spec's results.
type PickMeasurement struct {
	Spec PickSpec
	// Prep is the one-time optimization's statistics (the gate's
	// plan/LP quantities).
	Prep core.Stats
	// Candidates is the served plan-set size (equals Prep.FinalPlans).
	Candidates int
	// Index shape and build cost.
	Leaves            int
	AvgLeafCandidates float64
	BuildTime         time.Duration
	// Points measured; LinearNs and IndexNs are the per-pick latencies
	// of the two paths (each pick = one point under one policy).
	Points   int
	LinearNs int64
	IndexNs  int64
	// Speedup is LinearNs / IndexNs.
	Speedup float64
}

// policyParams fixes the experiment's preference parameters for a
// metric count, built once per spec so the timed loops pay no
// per-pick parameter allocations.
type policyParams struct {
	weights []float64
	bounds  []selection.Bound
	order   []int
}

func newPolicyParams(metrics int) policyParams {
	p := policyParams{
		weights: make([]float64, metrics),
		bounds:  []selection.Bound{{Metric: metrics - 1, Max: 1e300}},
		order:   make([]int, metrics),
	}
	p.weights[0] = 1
	for i := 1; i < metrics; i++ {
		p.weights[i] = 10000
	}
	for i := range p.order {
		p.order[i] = metrics - 1 - i
	}
	return p
}

// runPolicy executes one of the four selection policies.
func (p policyParams) runPolicy(cands []selection.Candidate, x geometry.Vector, policy int) ([]selection.Choice, error) {
	switch policy {
	case 0:
		return selection.Frontier(cands, x), nil
	case 1:
		c, err := selection.WeightedSum(cands, x, p.weights)
		return []selection.Choice{c}, err
	case 2:
		c, err := selection.MinimizeSubjectTo(cands, x, 0, p.bounds)
		return []selection.Choice{c}, err
	default:
		c, err := selection.Lexicographic(cands, x, p.order)
		return []selection.Choice{c}, err
	}
}

const numPickPolicies = 4

// RunPicks executes the pick-throughput experiment.
func RunPicks(cfg PicksConfig) ([]PickMeasurement, error) {
	if cfg.Points <= 0 {
		cfg.Points = 256
	}
	var out []PickMeasurement
	for _, spec := range cfg.Specs {
		m, err := runPickSpec(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("bench: picks %s: %w", spec, err)
		}
		out = append(out, *m)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress,
				"picks %s cands=%d leaves=%d avgLeaf=%.1f build=%v linear=%v/pick index=%v/pick speedup=%.1fx\n",
				spec, m.Candidates, m.Leaves, m.AvgLeafCandidates, m.BuildTime,
				time.Duration(m.LinearNs), time.Duration(m.IndexNs), m.Speedup)
		}
	}
	return out, nil
}

func runPickSpec(cfg PicksConfig, spec PickSpec) (*PickMeasurement, error) {
	// Prepare once: optimize sequentially, round-trip through the store
	// (the serving layer's exact bytes), build the index.
	schema, err := workload.Generate(workload.Config{
		Tables: spec.Tables,
		Params: spec.Params,
		Shape:  spec.Shape,
		Seed:   cfg.Seed + int64(spec.Tables),
	})
	if err != nil {
		return nil, err
	}
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = 1
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := store.Save(&buf, model.MetricNames(), model.Space(), res.Plans); err != nil {
		return nil, err
	}
	ps, err := store.Load(&buf)
	if err != nil {
		return nil, err
	}
	cands := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	ix, err := index.Build(ctx, ps.Space, cands, cfg.Index)
	if err != nil {
		return nil, err
	}
	leafCands := ix.LeafCandidates(cands)

	points, err := pickPoints(ctx, ps.Space, cfg.Points, cfg.Seed+int64(spec.Tables)*7919)
	if err != nil {
		return nil, err
	}
	params := newPolicyParams(len(ps.Metrics))

	// Resolve every point's candidate subset (a pick still pays this
	// Locate during timing below; resolving here too keeps the
	// verification loop simple).
	subs := make([][]selection.Candidate, len(points))
	for i, x := range points {
		subs[i] = cands
		if leaf, _, ok := ix.Locate(x); ok {
			subs[i] = leafCands[leaf]
		}
	}

	// Verification sweep: all four policies, byte-identical results
	// (including errors) on both paths.
	for i, x := range points {
		for p := 0; p < numPickPolicies; p++ {
			lin, linErr := params.runPolicy(cands, x, p)
			idx, idxErr := params.runPolicy(subs[i], x, p)
			if fmt.Sprint(lin, linErr) != fmt.Sprint(idx, idxErr) {
				return nil, fmt.Errorf("policy %d at %v: index result %v (%v) differs from linear %v (%v)",
					p, x, idx, idxErr, lin, linErr)
			}
		}
	}

	// Throughput: time each path over all points × policies. Rounds are
	// interleaved (linear, index, linear, ...) with a GC in between so
	// machine noise and collector state hit both paths alike; the
	// fastest round of each path counts.
	linearNs, indexNs := timePickPaths(points,
		func(i int, x geometry.Vector, p int) {
			params.runPolicy(cands, x, p)
		},
		func(i int, x geometry.Vector, p int) {
			sub := cands
			if leaf, _, ok := ix.Locate(x); ok {
				sub = leafCands[leaf]
			}
			params.runPolicy(sub, x, p)
		})

	m := &PickMeasurement{
		Spec:              spec,
		Prep:              res.Stats,
		Candidates:        len(cands),
		Leaves:            ix.Leaves(),
		AvgLeafCandidates: ix.AvgLeafCandidates(),
		BuildTime:         ix.BuildTime(),
		Points:            len(points),
		LinearNs:          linearNs,
		IndexNs:           indexNs,
	}
	if indexNs > 0 {
		m.Speedup = float64(linearNs) / float64(indexNs)
	}
	return m, nil
}

// timePickPaths measures the per-pick latency of the two paths over
// all points and policies: three interleaved rounds per path with a
// collection in between, keeping each path's fastest round.
func timePickPaths(points []geometry.Vector, linear, indexed func(i int, x geometry.Vector, policy int)) (linearNs, indexNs int64) {
	const rounds = 3
	oneRound := func(fn func(i int, x geometry.Vector, policy int)) int64 {
		runtime.GC()
		start := time.Now() //mpq:wallclock benchmark timing is the measurement itself
		for i, x := range points {
			for p := 0; p < numPickPolicies; p++ {
				fn(i, x, p)
			}
		}
		return time.Since(start).Nanoseconds() / int64(len(points)*numPickPolicies) //mpq:wallclock benchmark timing is the measurement itself
	}
	for round := 0; round < rounds; round++ {
		if t := oneRound(linear); round == 0 || t < linearNs {
			linearNs = t
		}
		if t := oneRound(indexed); round == 0 || t < indexNs {
			indexNs = t
		}
	}
	return linearNs, indexNs
}

// pickPoints samples deterministic pseudo-random points inside the
// parameter space.
func pickPoints(ctx *geometry.Context, space *geometry.Polytope, n int, seed int64) ([]geometry.Vector, error) {
	lo, hi, ok := ctx.BoundingBox(space)
	if !ok {
		return nil, fmt.Errorf("parameter space without bounding box")
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vector, 0, n)
	for attempts := 0; len(pts) < n && attempts < 1000*n; attempts++ {
		x := geometry.NewVector(space.Dim())
		for d := range x {
			x[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
		}
		if space.ContainsPoint(x, geometry.CompareEps) {
			pts = append(pts, x)
		}
	}
	if len(pts) < n {
		return nil, fmt.Errorf("could not sample %d points inside the parameter space", n)
	}
	return pts, nil
}

// PickMeasurementCases converts the measurements into gate-comparable
// JSON cases: one "/linear" and one "/index" row per spec, both
// carrying the prepare's deterministic plan and LP counts (plan drift
// fails the gate) and the measured per-pick latency as the time field
// (drift warns).
func PickMeasurementCases(ms []PickMeasurement) []JSONCase {
	var cases []JSONCase
	for _, m := range ms {
		base := JSONCase{
			Shape:        m.Spec.Shape.String(),
			Params:       m.Spec.Params,
			Tables:       m.Spec.Tables,
			CreatedPlans: m.Prep.CreatedPlans,
			SolvedLPs:    m.Prep.Geometry.LPs,
			FinalPlans:   m.Prep.FinalPlans,
			Workers:      1,
			Repetitions:  m.Points,
		}
		linear := base
		linear.Case = fmt.Sprintf("picks/%s/linear", m.Spec)
		linear.NsPerOp = m.LinearNs
		linear.TimeMs = float64(m.LinearNs) / 1e6
		idx := base
		idx.Case = fmt.Sprintf("picks/%s/index", m.Spec)
		idx.NsPerOp = m.IndexNs
		idx.TimeMs = float64(m.IndexNs) / 1e6
		cases = append(cases, linear, idx)
	}
	return cases
}
