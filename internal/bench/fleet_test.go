package bench

import (
	"strings"
	"testing"

	"mpq/internal/workload"
)

func TestRunFleet(t *testing.T) {
	ms, err := RunFleet(t.Context(), FleetConfig{
		Servers: 2,
		Specs:   []PickSpec{{Shape: workload.Star, Params: 1, Tables: 4}},
		Points:  32,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements", len(ms))
	}
	m := ms[0]
	if m.HitRate < 0.5 {
		t.Errorf("hit rate %.3f below (N-1)/N = 0.5", m.HitRate)
	}
	if m.Prepares != 2 || m.SharedHits != 1 {
		t.Errorf("prepares/shared = %d/%d, want 2/1", m.Prepares, m.SharedHits)
	}
	if m.Prep.CreatedPlans == 0 || m.Prep.Geometry.LPs == 0 {
		t.Errorf("compute stats empty: %+v", m.Prep)
	}
	if m.PickNs <= 0 || m.NumCPU <= 0 {
		t.Errorf("measurement incomplete: pick=%dns cpus=%d", m.PickNs, m.NumCPU)
	}

	cases := FleetMeasurementCases(ms)
	if len(cases) != 1 {
		t.Fatalf("got %d cases", len(cases))
	}
	c := cases[0]
	if !strings.HasPrefix(c.Case, "fleet/star-1p/tables=4/servers=2") {
		t.Errorf("case name %q", c.Case)
	}
	if c.SharedHitRate != m.HitRate || c.NumCPU != m.NumCPU || c.CreatedPlans != m.Prep.CreatedPlans {
		t.Errorf("case fields do not mirror the measurement: %+v", c)
	}
}

// TestCompareGatesFleetCases: fleet cases participate in the gate —
// a missing case or a drifted hit rate fails, time drift only warns.
func TestCompareGatesFleetCases(t *testing.T) {
	base := &JSONReport{
		Cases: []JSONCase{{Case: "chain-1p/tables=3", Workers: 1, CreatedPlans: 10, SolvedLPs: 100, FinalPlans: 2, TimeMs: 1}},
		FleetCases: []JSONCase{{
			Case: "fleet/star-1p/tables=4/servers=2", Workers: 1,
			CreatedPlans: 20, SolvedLPs: 200, FinalPlans: 3, TimeMs: 0.1,
			SharedHitRate: 0.5, NumCPU: 1,
		}},
	}
	ok := &JSONReport{
		Cases: base.Cases,
		FleetCases: []JSONCase{{
			Case: "fleet/star-1p/tables=4/servers=2", Workers: 1,
			CreatedPlans: 20, SolvedLPs: 200, FinalPlans: 3, TimeMs: 9,
			SharedHitRate: 0.5, NumCPU: 64, // a different machine is fine
		}},
	}
	failures, warnings := Compare(base, ok, DefaultCompareOptions())
	if len(failures) != 0 {
		t.Errorf("matching fleet case failed the gate: %v", failures)
	}
	if len(warnings) != 1 || warnings[0].Field != "time_ms" {
		t.Errorf("time drift should warn once, got %v", warnings)
	}

	drifted := &JSONReport{
		Cases: base.Cases,
		FleetCases: []JSONCase{{
			Case: "fleet/star-1p/tables=4/servers=2", Workers: 1,
			CreatedPlans: 20, SolvedLPs: 200, FinalPlans: 3, TimeMs: 0.1,
			SharedHitRate: 0.0, // the fleet stopped sharing
		}},
	}
	failures, _ = Compare(base, drifted, DefaultCompareOptions())
	found := false
	for _, d := range failures {
		if d.Field == "shared_hit_rate" {
			found = true
		}
	}
	if !found {
		t.Errorf("hit-rate drift did not fail the gate: %v", failures)
	}

	missing := &JSONReport{Cases: base.Cases}
	failures, _ = Compare(base, missing, DefaultCompareOptions())
	found = false
	for _, d := range failures {
		if d.Case == "fleet/star-1p/tables=4/servers=2" && d.Field == "missing" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fleet case did not fail the gate: %v", failures)
	}
}
