package bench

import (
	"testing"

	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/region"
	"mpq/internal/workload"
)

// TestRunOnceWithOverrides exercises the custom optimizer-options and
// cloud-config paths used by the ablation experiments.
func TestRunOnceWithOverrides(t *testing.T) {
	opts := core.Options{
		Region: region.Options{
			Strategy:        region.StrategyCoverDiff,
			RelevancePoints: 4,
		},
		PostponeCartesian: true,
	}
	cloudCfg := cloud.DefaultConfig()
	cloudCfg.ParallelDegrees = []int{4, 16}
	cfg := Config{Shape: workload.Star, Options: &opts, Cloud: &cloudCfg}
	stats, err := RunOnce(cfg, 3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CreatedPlans <= 0 || stats.Geometry.LPs <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	// Three join operators (1 single-node + 2 parallel degrees) create
	// more plans than the default two.
	defStats, err := RunOnce(Config{Shape: workload.Star}, 3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CreatedPlans <= defStats.CreatedPlans {
		t.Errorf("extra parallel degree did not increase created plans: %d vs %d",
			stats.CreatedPlans, defStats.CreatedPlans)
	}
}

func TestRunOnceInvalidWorkload(t *testing.T) {
	if _, err := RunOnce(Config{Shape: workload.Cycle}, 2, 1, 1); err == nil {
		t.Error("2-table cycle accepted")
	}
}

func TestRunSeriesClampsMinTables(t *testing.T) {
	s, err := RunSeries(Config{Shape: workload.Chain, Params: 1, MinTables: 0, MaxTables: 2, Repetitions: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || s.Points[0].Tables != 2 {
		t.Errorf("points = %+v, want single point at 2 tables", s.Points)
	}
}
