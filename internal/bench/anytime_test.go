package bench

import (
	"strings"
	"testing"

	"mpq/internal/workload"
)

func TestRunAnytime(t *testing.T) {
	ms, err := RunAnytime(AnytimeConfig{
		Specs:  []PickSpec{{Shape: workload.Chain, Params: 1, Tables: 5}},
		Ladder: []float64{0.5, 0.1},
		Points: 32,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The implicit final exact step extends the two-step ladder.
	if len(ms) != 3 {
		t.Fatalf("got %d measurements, want 3", len(ms))
	}
	wantEps := []float64{0.5, 0.1, 0}
	cum := 0.0
	for i, m := range ms {
		if m.Step != i || m.Epsilon != wantEps[i] || m.Final != (i == 2) {
			t.Errorf("step %d = eps %g final %v, want eps %g final %v",
				m.Step, m.Epsilon, m.Final, wantEps[i], i == 2)
		}
		if bound := (1 + m.Epsilon) * (1 + 1e-9); m.MaxRegret > bound {
			t.Errorf("step %d certified regret %v exceeds bound %v", i, m.MaxRegret, bound)
		}
		cum += m.PrepMs
		if m.CumulativeMs != cum {
			t.Errorf("step %d cumulative %v, want running sum %v", i, m.CumulativeMs, cum)
		}
		if m.Candidates != m.Prep.FinalPlans || m.Points != 32 {
			t.Errorf("step %d measurement incomplete: %+v", i, m)
		}
	}
	final := ms[len(ms)-1]
	if final.MaxRegret != 1 {
		t.Errorf("final self-regret = %v, want exactly 1", final.MaxRegret)
	}
	if final.PlanReduction != 0 || final.LPReduction != 0 {
		t.Errorf("final reductions %v/%v, want 0/0", final.PlanReduction, final.LPReduction)
	}

	cases := AnytimeMeasurementCases(ms)
	if len(cases) != 3 {
		t.Fatalf("got %d cases", len(cases))
	}
	if got := cases[0].Case; got != "anytime/chain-1p/tables=5/step=0/eps=0.5" {
		t.Errorf("case name %q", got)
	}
	if got := cases[2].Case; !strings.HasSuffix(got, "/step=2/eps=0") {
		t.Errorf("case name %q", got)
	}
	c := cases[1]
	if c.Epsilon != 0.1 || c.MaxRegret != ms[1].MaxRegret ||
		c.FinalPlans != ms[1].Candidates || c.Workers != 1 {
		t.Errorf("case fields do not mirror the measurement: %+v", c)
	}
}

func TestEffectiveLadder(t *testing.T) {
	if _, err := effectiveLadder(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	for _, bad := range [][]float64{{0.1, 0.5}, {0.5, 0.5}, {1.0}, {-0.1}} {
		if _, err := effectiveLadder(bad); err == nil {
			t.Errorf("ladder %v accepted", bad)
		}
	}
	got, err := effectiveLadder([]float64{0.5, 0.1})
	if err != nil || len(got) != 3 || got[2] != 0 {
		t.Errorf("effectiveLadder(0.5,0.1) = %v, %v; want the final 0 appended", got, err)
	}
	got, err = effectiveLadder([]float64{0.5, 0})
	if err != nil || len(got) != 2 {
		t.Errorf("effectiveLadder(0.5,0) = %v, %v; want unchanged", got, err)
	}
}

// TestCompareGatesAnytimeCases: anytime rows gate like epsilon rows —
// the final exact generation on deterministic counts, the coarse
// generations on the certified per-step regret contract.
func TestCompareGatesAnytimeCases(t *testing.T) {
	base := &JSONReport{
		Cases: []JSONCase{{Case: "chain-1p/tables=3", Workers: 1, CreatedPlans: 10, SolvedLPs: 100, FinalPlans: 2, TimeMs: 1}},
		AnytimeCases: []JSONCase{
			{Case: "anytime/chain-1p/tables=5/step=0/eps=0.5", Workers: 1,
				CreatedPlans: 20, SolvedLPs: 200, FinalPlans: 3, TimeMs: 0.1,
				Epsilon: 0.5, MaxRegret: 1.2},
			{Case: "anytime/chain-1p/tables=5/step=1/eps=0", Workers: 1,
				CreatedPlans: 40, SolvedLPs: 400, FinalPlans: 8, TimeMs: 0.3, MaxRegret: 1},
		},
	}
	ok := &JSONReport{
		Cases: base.Cases,
		AnytimeCases: []JSONCase{
			{Case: "anytime/chain-1p/tables=5/step=0/eps=0.5", Workers: 1,
				// Counts drifted — fine for a coarse generation, the
				// per-step contract still holds.
				CreatedPlans: 15, SolvedLPs: 150, FinalPlans: 2, TimeMs: 0.1,
				Epsilon: 0.5, MaxRegret: 1.49},
			base.AnytimeCases[1],
		},
	}
	if failures, _ := Compare(base, ok, DefaultCompareOptions()); len(failures) != 0 {
		t.Errorf("in-contract anytime rows failed the gate: %v", failures)
	}

	broken := &JSONReport{
		Cases: base.Cases,
		AnytimeCases: []JSONCase{
			{Case: "anytime/chain-1p/tables=5/step=0/eps=0.5", Workers: 1,
				CreatedPlans: 20, SolvedLPs: 200, FinalPlans: 3, TimeMs: 0.1,
				Epsilon: 0.5, MaxRegret: 1.51},
			base.AnytimeCases[1],
		},
	}
	failures, _ := Compare(base, broken, DefaultCompareOptions())
	found := false
	for _, d := range failures {
		if d.Field == "max_regret" {
			found = true
		}
	}
	if !found {
		t.Errorf("out-of-contract per-step regret did not fail the gate: %v", failures)
	}

	drifted := &JSONReport{
		Cases: base.Cases,
		AnytimeCases: []JSONCase{
			base.AnytimeCases[0],
			{Case: "anytime/chain-1p/tables=5/step=1/eps=0", Workers: 1,
				CreatedPlans: 41, SolvedLPs: 400, FinalPlans: 8, TimeMs: 0.3, MaxRegret: 1},
		},
	}
	failures, _ = Compare(base, drifted, DefaultCompareOptions())
	found = false
	for _, d := range failures {
		if d.Field == "created_plans" {
			found = true
		}
	}
	if !found {
		t.Errorf("final-generation plan drift did not fail the gate: %v", failures)
	}

	missing := &JSONReport{Cases: base.Cases}
	failures, _ = Compare(base, missing, DefaultCompareOptions())
	if len(failures) != 2 {
		t.Errorf("dropped anytime rows: %d failures, want 2 missing: %v", len(failures), failures)
	}
}
