package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/cloud"
	"mpq/internal/core"
	"mpq/internal/geometry"
	"mpq/internal/selection"
	"mpq/internal/store"
	"mpq/internal/workload"
)

// EpsilonConfig controls the ε-approximation experiment (mpqbench
// -epsilon): for each spec, prepare the exact plan set once as the
// reference, then re-prepare at each requested approximation factor,
// certify the served frontier's regret against the exact frontier at
// random points, and report the plan-set and LP savings the factor
// bought.
type EpsilonConfig struct {
	Specs []PickSpec
	// Epsilons are the approximation factors to measure. 0 rows report
	// the exact reference itself (its regret certifies as exactly 1,
	// a self-check of the certification). The exact reference is
	// computed regardless of whether 0 is requested.
	Epsilons []float64
	// Points is the number of random certification points per plan
	// set; zero selects 256.
	Points int
	// Seed offsets the workload generator and the point sampler (the
	// same offsets as the picks experiment, so both observe the same
	// queries).
	Seed int64
	// Progress, when non-nil, receives a line per completed case.
	Progress io.Writer
}

// EpsilonMeasurement reports one (spec, ε) case.
type EpsilonMeasurement struct {
	Spec    PickSpec
	Epsilon float64
	// Prep is this tier's optimization statistics.
	Prep core.Stats
	// Candidates is the served plan-set size after the store round
	// trip (equals Prep.FinalPlans).
	Candidates int
	// MaxRegret is the certified approximation quality: over all
	// sampled points and all exact-frontier choices, the largest
	// per-metric cost ratio of the best ε-frontier answer to the
	// exact answer. The ε-dominance contract bounds it by (1+ε).
	MaxRegret float64
	// PlanReduction and LPReduction are the fractions of the exact
	// run's final plans and solved LPs this tier avoided.
	PlanReduction float64
	LPReduction   float64
	// Points certified; PickNs is the per-pick latency of the linear
	// path over this tier's candidates (each pick = one point under
	// one policy).
	Points int
	PickNs int64
}

// RunEpsilon executes the ε-approximation experiment.
func RunEpsilon(cfg EpsilonConfig) ([]EpsilonMeasurement, error) {
	if cfg.Points <= 0 {
		cfg.Points = 256
	}
	epsilons := append([]float64(nil), cfg.Epsilons...)
	sort.Float64s(epsilons)
	var out []EpsilonMeasurement
	for _, spec := range cfg.Specs {
		ms, err := runEpsilonSpec(cfg, spec, epsilons)
		if err != nil {
			return nil, fmt.Errorf("bench: epsilon %s: %w", spec, err)
		}
		out = append(out, ms...)
		if cfg.Progress != nil {
			for _, m := range ms {
				fmt.Fprintf(cfg.Progress,
					"epsilon %s eps=%-5g cands=%-4d regret=%.6f planRed=%.1f%% lpRed=%.1f%% pick=%v\n",
					spec, m.Epsilon, m.Candidates, m.MaxRegret,
					100*m.PlanReduction, 100*m.LPReduction, time.Duration(m.PickNs))
			}
		}
	}
	return out, nil
}

// epsilonTier is one prepared precision tier of a spec: the served
// candidates after the store round trip plus the run's statistics.
type epsilonTier struct {
	stats   core.Stats
	cands   []selection.Candidate
	metrics int
}

func runEpsilonSpec(cfg EpsilonConfig, spec PickSpec, epsilons []float64) ([]EpsilonMeasurement, error) {
	schema, err := workload.Generate(workload.Config{
		Tables: spec.Tables,
		Params: spec.Params,
		Shape:  spec.Shape,
		Seed:   cfg.Seed + int64(spec.Tables),
	})
	if err != nil {
		return nil, err
	}
	exact, space, err := prepareEpsilonTier(schema, 0)
	if err != nil {
		return nil, fmt.Errorf("exact reference: %w", err)
	}
	ctx := geometry.NewContext()
	points, err := pickPoints(ctx, space, cfg.Points, cfg.Seed+int64(spec.Tables)*7919)
	if err != nil {
		return nil, err
	}
	params := newPolicyParams(exact.metrics)

	var out []EpsilonMeasurement
	for _, eps := range epsilons {
		tier := exact
		if eps > 0 {
			tier, _, err = prepareEpsilonTier(schema, eps)
			if err != nil {
				return nil, fmt.Errorf("eps=%g: %w", eps, err)
			}
		}
		regret, err := certifyRegret(exact.cands, tier.cands, points)
		if err != nil {
			return nil, fmt.Errorf("eps=%g: %w", eps, err)
		}
		m := EpsilonMeasurement{
			Spec:       spec,
			Epsilon:    eps,
			Prep:       tier.stats,
			Candidates: len(tier.cands),
			MaxRegret:  regret,
			Points:     len(points),
			PickNs: timePicks(points, func(x geometry.Vector, p int) {
				params.runPolicy(tier.cands, x, p)
			}),
		}
		if n := len(exact.cands); n > 0 {
			m.PlanReduction = 1 - float64(len(tier.cands))/float64(n)
		}
		if lps := exact.stats.Geometry.LPs; lps > 0 {
			m.LPReduction = 1 - float64(tier.stats.Geometry.LPs)/float64(lps)
		}
		out = append(out, m)
	}
	return out, nil
}

// prepareEpsilonTier optimizes one precision tier sequentially (so the
// plan and LP counters stay gate-comparable) and round-trips the result
// through the store — the candidates a server of this tier would load.
func prepareEpsilonTier(schema *catalog.Schema, epsilon float64) (epsilonTier, *geometry.Polytope, error) {
	fail := func(err error) (epsilonTier, *geometry.Polytope, error) { return epsilonTier{}, nil, err }
	ctx := geometry.NewContext()
	model, err := cloud.NewModel(schema, cloud.DefaultConfig(), ctx)
	if err != nil {
		return fail(err)
	}
	opts := core.DefaultOptions()
	opts.Context = ctx
	opts.Workers = 1
	opts.Epsilon = epsilon
	res, err := core.Optimize(schema, model, opts)
	if err != nil {
		return fail(err)
	}
	var buf bytes.Buffer
	if err := store.SaveIndexedEpsilon(&buf, model.MetricNames(), model.Space(), res.Plans, nil, epsilon); err != nil {
		return fail(err)
	}
	ps, err := store.Load(&buf)
	if err != nil {
		return fail(err)
	}
	if ps.Epsilon != epsilon {
		return fail(fmt.Errorf("store round trip changed epsilon %g to %g", epsilon, ps.Epsilon))
	}
	cands := make([]selection.Candidate, len(ps.Plans))
	for i, lp := range ps.Plans {
		cands[i] = selection.Candidate{Plan: lp.Plan, Cost: lp.Cost, RR: lp.RR}
	}
	return epsilonTier{stats: res.Stats, cands: cands, metrics: len(ps.Metrics)}, ps.Space, nil
}

// certifyRegret measures the approximation quality the ε tier actually
// delivers: at every sampled point, for every exact-frontier choice,
// the ε frontier must offer a choice within a bounded per-metric cost
// ratio. The returned value is the worst such ratio — the empirical
// counterpart of the (1+ε) contract, computed from the served
// candidate sets themselves so the certificate covers the full save /
// load / select path.
func certifyRegret(exact, approx []selection.Candidate, points []geometry.Vector) (float64, error) {
	worst := 1.0
	for _, x := range points {
		ref := selection.Frontier(exact, x)
		if len(ref) == 0 {
			// The exact tier offers nothing here (plans tied exactly on
			// a region annihilate each other's relevance regions — a
			// property of the exact prune, not of the approximation);
			// there is no reference answer to certify against.
			continue
		}
		got := selection.Frontier(approx, x)
		if len(got) == 0 {
			return 0, fmt.Errorf("ε frontier empty at %v", x)
		}
		for _, rc := range ref {
			best := 0.0
			for i, gc := range got {
				r := regretRatio(gc.Cost, rc.Cost)
				if i == 0 || r < best {
					best = r
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	return worst, nil
}

// regretRatio is the largest per-metric cost ratio of a candidate
// answer over a reference answer, with near-zero references guarded:
// matching a (numerically) free reference costs nothing, failing to
// match one is unbounded regret.
func regretRatio(cand, ref geometry.Vector) float64 {
	const tiny = 1e-12
	worst := 0.0
	for m := range ref {
		var r float64
		switch {
		case ref[m] > tiny:
			r = cand[m] / ref[m]
		case cand[m] > tiny:
			r = 1e18
		default:
			r = 1
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// timePicks measures the per-pick latency of one candidate set over
// all points and policies: three rounds with a collection in between,
// keeping the fastest.
func timePicks(points []geometry.Vector, fn func(x geometry.Vector, policy int)) int64 {
	const rounds = 3
	var best int64
	for round := 0; round < rounds; round++ {
		runtime.GC()
		start := time.Now() //mpq:wallclock benchmark timing is the measurement itself
		for _, x := range points {
			for p := 0; p < numPickPolicies; p++ {
				fn(x, p)
			}
		}
		t := time.Since(start).Nanoseconds() / int64(len(points)*numPickPolicies) //mpq:wallclock benchmark timing is the measurement itself
		if round == 0 || t < best {
			best = t
		}
	}
	return best
}

// EpsilonMeasurementCases converts the measurements into JSON cases:
// one "epsilon/<spec>/eps=<ε>" row per tier. Exact rows (ε = 0) gate
// like every other case — their plan and LP counts are deterministic
// and must not drift. ε > 0 rows gate on the certified MaxRegret
// instead: their counts shift whenever the prune order or the factor
// allocation is tuned, and the invariant worth enforcing is the
// approximation contract, not a particular plan count.
func EpsilonMeasurementCases(ms []EpsilonMeasurement) []JSONCase {
	var cases []JSONCase
	for _, m := range ms {
		cases = append(cases, JSONCase{
			Case:          fmt.Sprintf("epsilon/%s/eps=%g", m.Spec, m.Epsilon),
			Shape:         m.Spec.Shape.String(),
			Params:        m.Spec.Params,
			Tables:        m.Spec.Tables,
			NsPerOp:       m.PickNs,
			TimeMs:        float64(m.PickNs) / 1e6,
			CreatedPlans:  m.Prep.CreatedPlans,
			SolvedLPs:     m.Prep.Geometry.LPs,
			FinalPlans:    m.Prep.FinalPlans,
			Workers:       1,
			Repetitions:   m.Points,
			Epsilon:       m.Epsilon,
			MaxRegret:     m.MaxRegret,
			PlanReduction: m.PlanReduction,
			LPReduction:   m.LPReduction,
		})
	}
	return cases
}
