package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpq/internal/workload"
)

func TestRunSeriesSmall(t *testing.T) {
	var progress bytes.Buffer
	s, err := RunSeries(Config{
		Shape:       workload.Chain,
		Params:      1,
		MinTables:   2,
		MaxTables:   4,
		Repetitions: 3,
		Seed:        7,
		Progress:    &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(s.Points))
	}
	for i, p := range s.Points {
		if p.Tables != 2+i {
			t.Errorf("point %d tables = %d", i, p.Tables)
		}
		if p.MedianPlans <= 0 || p.MedianLPs <= 0 || p.MedianTime <= 0 {
			t.Errorf("point %d has non-positive medians: %+v", i, p)
		}
		if p.MedianFinal < 1 {
			t.Errorf("point %d final plans = %d", i, p.MedianFinal)
		}
	}
	// Work grows with the number of tables.
	if s.Points[2].MedianPlans <= s.Points[0].MedianPlans {
		t.Errorf("plans did not grow: %d -> %d", s.Points[0].MedianPlans, s.Points[2].MedianPlans)
	}
	if progress.Len() == 0 {
		t.Error("no progress output")
	}
}

func TestRunPointMedianStability(t *testing.T) {
	cfg := Config{Shape: workload.Star, Params: 1, Repetitions: 3, Seed: 1}
	a, err := RunPoint(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic work metrics across identical runs (time may vary).
	if a.MedianPlans != b.MedianPlans || a.MedianLPs != b.MedianLPs {
		t.Errorf("medians not reproducible: %+v vs %+v", a, b)
	}
}

func TestParamsClampedToTables(t *testing.T) {
	cfg := Config{Shape: workload.Chain, Params: 2, Repetitions: 1, Seed: 3}
	// tables=2 with params=2 is fine; also works when params would
	// exceed tables after clamping.
	if _, err := RunPoint(cfg, 2); err != nil {
		t.Fatalf("RunPoint: %v", err)
	}
}

func TestFormatTableAndCSV(t *testing.T) {
	s := &Series{
		Shape:  workload.Chain,
		Params: 1,
		Points: []Point{
			{Tables: 2, MedianTime: 1500 * time.Microsecond, MedianPlans: 10, MedianLPs: 100, MedianFinal: 2, Repetitions: 5},
			{Tables: 3, MedianTime: 4 * time.Millisecond, MedianPlans: 30, MedianLPs: 400, MedianFinal: 3, Repetitions: 5},
		},
	}
	var tb bytes.Buffer
	FormatTable(&tb, []*Series{s})
	out := tb.String()
	if !strings.Contains(out, "chain queries, 1 parameter(s)") {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "1.5") {
		t.Errorf("missing ms value: %s", out)
	}
	var cb bytes.Buffer
	FormatCSV(&cb, []*Series{s})
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "chain,1,2,1.500,10,100,2,5") {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestMedianHelpers(t *testing.T) {
	if medianInt([]int{5, 1, 3}) != 3 {
		t.Error("medianInt wrong")
	}
	if medianInt64([]int64{4, 2}) != 4 { // upper median for even length
		t.Error("medianInt64 wrong")
	}
	if medianDuration([]time.Duration{3, 1, 2}) != 2 {
		t.Error("medianDuration wrong")
	}
}
